// The paper's FSM workload (Fig. 5/6): a zero-delay ensemble of interacting
// finite state machines — delta-cycle-heavy, the case where the paper found
// conservative synchronization strongest. This example simulates it under
// all four protocol configurations, verifies each run against the bit-true
// reference model, and prints the modeled speedups.
//
//	go run ./examples/fsm
package main

import (
	"fmt"
	"log"

	"govhdl"
	"govhdl/internal/pdes"
)

func main() {
	protocols := []struct {
		name string
		p    govhdl.Protocol
	}{
		{"conservative", govhdl.Conservative},
		{"optimistic", govhdl.Optimistic},
		{"mixed", govhdl.Mixed},
		{"dynamic", govhdl.Dynamic},
	}

	// Sequential baseline.
	base := govhdl.BenchmarkFSM(16)
	horizon := base.DefaultHorizon
	fmt.Printf("circuit: %v, horizon %v\n", base, horizon)
	seq, err := pdes.RunSequential(base.Design.Build(), horizon, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := base.Verify(horizon); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential: %d events, cost %.0f\n\n", seq.Metrics.Events, seq.Makespan)

	for _, proto := range protocols {
		c := govhdl.BenchmarkFSM(16)
		model := govhdl.FromDesign(c.Design)
		res, err := model.Simulate(govhdl.Options{
			Protocol:       proto.p,
			Workers:        8,
			Until:          horizon,
			NoTrace:        true,
			ThrottleWindow: 4 * c.ClockHalf,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := c.Verify(horizon); err != nil {
			log.Fatalf("%s: verification failed: %v", proto.name, err)
		}
		fmt.Printf("%-13s speedup %.2f  (%v)\n",
			proto.name, seq.Makespan/res.Run.Makespan, res.Run.Metrics)
	}
}
