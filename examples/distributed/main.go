// Distributed simulation over real TCP sockets, the paper's "distributed"
// half: two simulator nodes (run here as goroutines of one program, but
// speaking genuine gob-over-TCP through the loopback interface) share the
// workers of one VHDL simulation. The hub node hosts the GVT controller and
// worker 1, the peer hosts worker 2. Both build identical models; the
// partition assigns each worker its LPs deterministically.
//
//	go run ./examples/distributed
//
// For two real machines, see cmd/pvsim's -listen/-connect flags.
package main

import (
	"fmt"
	"log"
	"sync"

	"govhdl"
	"govhdl/internal/pdes"
	"govhdl/internal/transport"
)

const src = `
entity pingpong is end entity;
architecture sim of pingpong is
  signal ping, pong : std_logic := '0';
begin
  p1 : process (pong)
  begin
    ping <= not pong after 7 ns;
  end process;
  p2 : process (ping)
  begin
    pong <= ping after 11 ns;
  end process;
end architecture;
`

const (
	addr      = "127.0.0.1:9190"
	endpoints = 3 // controller + 2 workers
	horizon   = 500 * govhdl.NS
)

func build() *govhdl.Model {
	m, err := govhdl.Compile("pingpong", govhdl.Source{Name: "pp.vhd", Text: src})
	if err != nil {
		log.Fatal(err)
	}
	return m
}

func main() {
	cfg := pdes.Config{Workers: endpoints - 1, Protocol: pdes.ProtoDynamic}

	var wg sync.WaitGroup
	wg.Add(2)

	go func() { // hub: controller + worker 1
		defer wg.Done()
		node, err := transport.Listen(addr, endpoints, []int{0, 1})
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		m := build()
		res, err := pdes.RunOn(m.System(), cfg, horizon, nil, node.Endpoints())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("hub : GVT %v, %d events on this node, %d remote messages\n",
			res.GVT, res.Metrics.Events, res.Metrics.RemoteMsgs)
	}()

	go func() { // peer: worker 2
		defer wg.Done()
		// Dial retries with exponential backoff until the hub listens.
		node, err := transport.Dial(addr, endpoints, []int{2})
		if err != nil {
			log.Fatal(err)
		}
		defer node.Close()
		m := build()
		res, err := pdes.RunOn(m.System(), cfg, horizon, nil, node.Endpoints())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("peer: GVT %v, %d events on this node\n", res.GVT, res.Metrics.Events)
	}()

	wg.Wait()
	fmt.Println("distributed simulation completed consistently on both nodes")
}
