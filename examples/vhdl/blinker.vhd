-- Clock-divided blinker: a free-running 3-bit counter toggles the LED every
-- eighth rising edge. The testbench instantiates it under a 10 ns clock and
-- reports each LED transition.
library ieee;
use ieee.std_logic_1164.all;

entity blinker is
  port (clk : in std_logic;
        led : out std_logic);
end entity;

architecture rtl of blinker is
  signal cnt   : std_logic_vector(2 downto 0) := "000";
  signal state : std_logic := '0';
begin
  tick : process (clk)
  begin
    if rising_edge(clk) then
      cnt <= cnt + 1;
      if cnt = "111" then
        state <= not state;
      end if;
    end if;
  end process;

  led <= state;
end architecture;

entity blinker_tb is end entity;

architecture sim of blinker_tb is
  signal clk : std_logic := '0';
  signal led : std_logic;
begin
  clkgen : process
  begin
    wait for 5 ns;
    clk <= not clk;
  end process;

  dut : entity work.blinker port map (clk => clk, led => led);

  monitor : process (led)
  begin
    report "led toggled";
  end process;
end architecture;
