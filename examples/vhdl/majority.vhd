-- 2-of-3 majority voter with a self-checking testbench: the stimulus walks
-- through input combinations and asserts the voted output after each settle.
library ieee;
use ieee.std_logic_1164.all;

entity majority is
  port (a : in std_logic;
        b : in std_logic;
        c : in std_logic;
        y : out std_logic);
end entity;

architecture rtl of majority is
begin
  vote : y <= (a and b) or (a and c) or (b and c);
end architecture;

entity majority_tb is end entity;

architecture sim of majority_tb is
  signal a : std_logic := '0';
  signal b : std_logic := '0';
  signal c : std_logic := '0';
  signal y : std_logic;
begin
  dut : entity work.majority port map (a => a, b => b, c => c, y => y);

  stim : process
  begin
    a <= '1';
    b <= '1';
    wait for 2 ns;
    assert y = '1' report "majority(1,1,0) /= 1" severity error;
    a <= '0';
    wait for 2 ns;
    assert y = '0' report "majority(0,1,0) /= 0" severity error;
    c <= '1';
    wait for 2 ns;
    assert y = '1' report "majority(0,1,1) /= 1" severity error;
    wait;
  end process;
end architecture;
