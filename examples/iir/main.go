// The paper's gate-level Gray-Markel cascaded lattice IIR filter (Fig. 7/8),
// built bottom-up from gates: array multipliers, ripple adders, a subtractor
// and a clocked state register per lattice section. The example simulates a
// small instance, verifies it against the bit-true fixed-point reference,
// and writes a waveform dump.
//
//	go run ./examples/iir
package main

import (
	"fmt"
	"log"
	"os"

	"govhdl"
)

func main() {
	c := govhdl.BenchmarkIIR(2, 6) // 2 lattice sections, 6-bit datapath
	fmt.Printf("circuit: %v\n", c)
	fmt.Printf("clock half period %v (covers the multiplier/adder cascade)\n", c.ClockHalf)

	model := govhdl.FromDesign(c.Design)
	res, err := model.Simulate(govhdl.Options{
		Protocol:       govhdl.Mixed, // registers conservative, datapath optimistic
		Workers:        4,
		Until:          c.DefaultHorizon,
		ThrottleWindow: c.ClockHalf / 2, // bound optimism (memory window)
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := c.Verify(c.DefaultHorizon); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Printf("verified OK after %d events (%d rollbacks, efficiency %.3f)\n",
		res.Run.Metrics.Events, res.Run.Metrics.Rollbacks, res.Run.Metrics.Efficiency())

	// State registers of each section after the run.
	for _, name := range []string{"w0[5]", "w0[0]", "w1[5]", "w1[0]"} {
		if v, ok := model.SignalValue(name); ok {
			fmt.Printf("  %s = %v\n", name, v)
		}
	}

	f, err := os.Create("iir.vcd")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := res.WriteVCD(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote iir.vcd (open with any VCD waveform viewer)")
}
