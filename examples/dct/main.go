// The paper's gate-level DCT processor (Fig. 9/10): multiply-accumulate
// rows with mux-tree coefficient ROMs over a streamed input. The paper's
// headline result is that the dynamic self-adapting configuration doubles
// the speedup of the static ones on this circuit; this example compares the
// static optimistic configuration against the dynamic one.
//
//	go run ./examples/dct
package main

import (
	"fmt"
	"log"

	"govhdl"
	"govhdl/internal/pdes"
)

func main() {
	build := func() *govhdl.Benchmark { return govhdl.BenchmarkDCT(2, 6) }

	base := build()
	horizon := base.DefaultHorizon
	fmt.Printf("circuit: %v\n", base)
	seq, err := pdes.RunSequential(base.Design.Build(), horizon, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := base.Verify(horizon); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sequential: %d events\n\n", seq.Metrics.Events)

	for _, proto := range []struct {
		name string
		p    govhdl.Protocol
	}{{"optimistic", govhdl.Optimistic}, {"dynamic", govhdl.Dynamic}} {
		c := build()
		model := govhdl.FromDesign(c.Design)
		res, err := model.Simulate(govhdl.Options{
			Protocol:       proto.p,
			Workers:        8,
			Until:          horizon,
			NoTrace:        true,
			ThrottleWindow: 4 * c.ClockHalf,
		})
		if err != nil {
			log.Fatal(err)
		}
		if err := c.Verify(horizon); err != nil {
			log.Fatalf("%s: verification failed: %v", proto.name, err)
		}
		fmt.Printf("%-11s speedup %.2f  mode-switches %d  efficiency %.3f\n",
			proto.name, seq.Makespan/res.Run.Makespan,
			res.Run.Metrics.ModeSwitches, res.Run.Metrics.Efficiency())
	}
}
