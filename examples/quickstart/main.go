// Quickstart: compile a small VHDL testbench and simulate it in parallel
// with the dynamic self-adapting protocol, then print the committed value
// changes.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"govhdl"
)

const src = `
library ieee;
use ieee.std_logic_1164.all;

entity counter_tb is end entity;

architecture sim of counter_tb is
  signal clk : std_logic := '0';
  signal q   : std_logic_vector(3 downto 0) := (others => '0');
begin
  clkgen : process
  begin
    wait for 5 ns;
    clk <= not clk;
  end process;

  count : process (clk)
  begin
    if rising_edge(clk) then
      q <= q + 1;
    end if;
  end process;
end architecture;
`

func main() {
	model, err := govhdl.Compile("counter_tb", govhdl.Source{Name: "counter_tb.vhd", Text: src})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("elaborated %d LPs (%d signals + %d processes)\n",
		model.LPs(), model.Design.NumSignals(), model.Design.NumProcesses())

	res, err := model.Simulate(govhdl.Options{
		Protocol: govhdl.Dynamic,
		Workers:  4,
		Until:    100 * govhdl.NS,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("final GVT %v, %d events, %d GVT rounds\n",
		res.Run.GVT, res.Run.Metrics.Events, res.Run.Metrics.GVTRounds)
	for _, line := range res.TraceLines() {
		fmt.Println(line)
	}
	if v, ok := model.SignalValue("counter_tb.q"); ok {
		fmt.Printf("final q = %v\n", v)
	}
}
