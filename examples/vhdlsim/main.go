// A complete behavioral VHDL design — a traffic-light controller with an
// enumerated state type, a clocked process and a monitor with assertions —
// compiled by the front end and simulated in parallel. Demonstrates the
// full VHDL flow: hierarchy, generics, enumeration types, wait statements,
// reports.
//
//	go run ./examples/vhdlsim
package main

import (
	"fmt"
	"log"
	"strings"

	"govhdl"
)

const lightSrc = `
library ieee;
use ieee.std_logic_1164.all;

entity traffic is
  generic (GREEN_TICKS : integer := 3;
           YELLOW_TICKS : integer := 1);
  port (clk : in std_logic);
end entity;

architecture rtl of traffic is
  type light_t is (green, yellow, red);
  signal light : light_t := red;
  signal ticks : integer := 0;
begin
  fsm : process (clk)
    variable n : integer := 0;
  begin
    if rising_edge(clk) then
      n := n + 1;
      ticks <= n;
      case light is
        when red =>
          if n mod 2 = 0 then
            light <= green;
          end if;
        when green =>
          if n mod (GREEN_TICKS + 1) = 0 then
            light <= yellow;
          end if;
        when yellow =>
          light <= red;
      end case;
    end if;
  end process;

  monitor : process (light)
  begin
    report "light changed";
  end process;
end architecture;

entity top is end entity;
architecture sim of top is
  signal clk : std_logic := '0';
begin
  clkgen : process
  begin
    wait for 10 ns;
    clk <= not clk;
  end process;
  dut : entity work.traffic
    generic map (GREEN_TICKS => 3)
    port map (clk => clk);
end architecture;
`

func main() {
	model, err := govhdl.Compile("top", govhdl.Source{Name: "traffic.vhd", Text: lightSrc})
	if err != nil {
		log.Fatal(err)
	}
	res, err := model.Simulate(govhdl.Options{
		Protocol: govhdl.Dynamic,
		Workers:  4,
		Until:    400 * govhdl.NS,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d events, final GVT %v\n", res.Run.Metrics.Events, res.Run.GVT)
	for _, line := range res.TraceLines() {
		if strings.Contains(line, "light") && !strings.Contains(line, "report") {
			fmt.Println(line)
		}
	}
	if v, ok := model.SignalValue("top.dut.light"); ok {
		fmt.Printf("final light = %v\n", v)
	}
}
