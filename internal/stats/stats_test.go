package stats

import (
	"strings"
	"testing"
)

func TestSnapshotRoundTrip(t *testing.T) {
	var m Metrics
	m.Events.Add(100)
	m.RolledBack.Add(25)
	m.Rollbacks.Add(5)
	m.Antis.Add(7)
	m.Annihilated.Add(7)
	m.GVTRounds.Add(3)
	s := m.Snapshot()
	if s.Events != 100 || s.RolledBack != 25 || s.GVTRounds != 3 {
		t.Fatalf("snapshot %+v", s)
	}
	if got := s.Efficiency(); got != 0.75 {
		t.Errorf("Efficiency = %v, want 0.75", got)
	}
	if (Snapshot{}).Efficiency() != 1 {
		t.Error("empty snapshot efficiency should be 1")
	}
	str := s.String()
	for _, want := range []string{"events=100", "rolledback=25", "eff=0.750"} {
		if !strings.Contains(str, want) {
			t.Errorf("String() missing %q: %s", want, str)
		}
	}
}

func TestDefaultCostModelSane(t *testing.T) {
	c := Default()
	if c.EventCost != 1.0 {
		t.Error("EventCost must be the unit of the model")
	}
	for name, v := range map[string]float64{
		"StateSaveCost": c.StateSaveCost, "RollbackBase": c.RollbackBase,
		"RollbackPer": c.RollbackPer, "AntiCost": c.AntiCost,
		"LocalMsgCost": c.LocalMsgCost, "RemoteMsgCost": c.RemoteMsgCost,
		"RemoteLatency": c.RemoteLatency, "NullCost": c.NullCost,
		"GVTCost": c.GVTCost, "UserOrderCost": c.UserOrderCost,
	} {
		if v <= 0 {
			t.Errorf("%s = %v, want positive", name, v)
		}
	}
	if c.LocalMsgCost >= c.RemoteMsgCost {
		t.Error("local messages must be cheaper than remote ones")
	}
}

func TestFormatCurves(t *testing.T) {
	series := []Series{
		{Name: "cons", Rows: []SpeedupRow{{Workers: 1, Speedup: 0.9}, {Workers: 2, Speedup: 1.5}}},
		{Name: "opt", Rows: []SpeedupRow{{Workers: 1, Speedup: 0.8}, {Workers: 2, Speedup: 1.2}}},
	}
	out := FormatCurves("Figure X", series)
	for _, want := range []string{"Figure X", "procs", "cons", "opt", "0.90", "1.50", "1.20"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // title + header + 2 rows
		t.Errorf("got %d lines", len(lines))
	}
	if empty := FormatCurves("T", nil); !strings.Contains(empty, "T") {
		t.Error("empty series table broken")
	}
}

func TestMetricsConcurrentUse(t *testing.T) {
	var m Metrics
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				m.Events.Add(1)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if got := m.Snapshot().Events; got != 4000 {
		t.Errorf("Events = %d", got)
	}
}
