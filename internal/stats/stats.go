// Package stats holds the performance counters and the virtual-processor
// cost model used to reproduce the paper's speedup measurements.
//
// The paper measured wall-clock speedups on a 16-processor SGI Challenge.
// This reproduction runs on whatever hardware is available (possibly a single
// core), so wall-clock time cannot show parallel speedup. Instead, the
// parallel runner executes the real protocols (real rollbacks, anti-messages,
// null messages, GVT rounds) and charges every action to a modeled per-worker
// clock; cross-worker messages carry the sender's clock so waiting is modeled
// by the max() rule of a message-passing machine. The makespan of the modeled
// machine is the maximum worker clock at termination, and speedup is the
// modeled sequential cost divided by the makespan. Only the mapping from
// protocol work to time is modeled — the work itself is produced by the real
// algorithms.
package stats

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// CostModel maps protocol actions to modeled time, in arbitrary cost units
// (1.0 = one plain event execution). The default values are calibrated so the
// relative overheads follow the paper's observations: state saving is a
// moderate per-event tax on optimistic LPs, rollback cost grows with depth,
// null messages are cheap individually but numerous, remote messages cost an
// order of magnitude more than local ones, and a GVT round is a global
// barrier.
type CostModel struct {
	EventCost     float64 // executing one event at an LP
	StateSaveCost float64 // saving LP state before an optimistic event
	RollbackBase  float64 // fixed cost of initiating a rollback
	RollbackPer   float64 // per rolled-back event (state restore + requeue)
	AntiCost      float64 // sending one anti-message
	LocalMsgCost  float64 // event between LPs on the same worker
	RemoteMsgCost float64 // event crossing workers (send+receive halves)
	RemoteLatency float64 // wire latency added to a remote event's visibility
	NullCost      float64 // sending or receiving one null message
	GVTCost       float64 // per-worker cost of one GVT round (besides barrier)
	UserOrderCost float64 // ordering one event batch in user-consistent mode
}

// Default returns the calibrated default cost model.
func Default() CostModel {
	return CostModel{
		EventCost:     1.0,
		StateSaveCost: 0.25,
		RollbackBase:  1.0,
		RollbackPer:   0.6,
		AntiCost:      0.2,
		LocalMsgCost:  0.05,
		RemoteMsgCost: 0.3,
		RemoteLatency: 1.0,
		NullCost:      0.35,
		GVTCost:       2.0,
		UserOrderCost: 0.15,
	}
}

// Metrics is a set of atomic protocol counters. One Metrics instance is
// shared by all workers of a run.
type Metrics struct {
	Events       atomic.Uint64 // committed + later-rolled-back executions
	Committed    atomic.Uint64 // events below final GVT (approximate: events minus rolled back)
	Rollbacks    atomic.Uint64 // rollback episodes
	RolledBack   atomic.Uint64 // events undone by rollbacks
	CoastForward atomic.Uint64 // events re-executed silently after checkpoint restore
	Antis        atomic.Uint64 // anti-messages sent
	Annihilated  atomic.Uint64 // event/anti pairs annihilated
	Nulls        atomic.Uint64 // null messages sent
	LocalMsgs    atomic.Uint64 // same-worker events
	RemoteMsgs   atomic.Uint64 // cross-worker events
	GVTRounds    atomic.Uint64 // global synchronizations
	ModeSwitches atomic.Uint64 // dynamic protocol mode changes
	StateSaves   atomic.Uint64 // snapshots taken
	Fossils      atomic.Uint64 // history records reclaimed
	Blocked      atomic.Uint64 // times a conservative LP had events but none safe
	OrphanAntis  atomic.Uint64 // anti-messages never matched by a positive (bug indicator)
	MemThrottled  atomic.Uint64 // scheduling decisions withheld by the memory budget
	Cancelbacks   atomic.Uint64 // budget-driven rollbacks of furthest-ahead LPs
	StallRescues  atomic.Uint64 // blocked conservative LPs forced optimistic by stall rescue
	Migrations    atomic.Uint64 // LPs moved between workers at migration cuts
	ViewChanges   atomic.Uint64 // cluster view epochs observed (membership churn + migration cuts)
	ForwardedMsgs atomic.Uint64 // messages re-routed to an LP's new owner during handoff
	LateForwards  atomic.Uint64 // forwards arriving after the nominal handoff window closed
}

// Snapshot is a plain-value copy of Metrics for reporting.
type Snapshot struct {
	Events, Rollbacks, RolledBack, CoastForward uint64
	Antis, Annihilated, Nulls                   uint64
	LocalMsgs, RemoteMsgs                       uint64
	GVTRounds, ModeSwitches                     uint64
	StateSaves, Fossils, Blocked, OrphanAntis   uint64
	MemThrottled, Cancelbacks, StallRescues     uint64
	Migrations, ViewChanges, ForwardedMsgs      uint64
	LateForwards                                uint64
}

// Snapshot copies the counters.
func (m *Metrics) Snapshot() Snapshot {
	return Snapshot{
		Events:       m.Events.Load(),
		Rollbacks:    m.Rollbacks.Load(),
		RolledBack:   m.RolledBack.Load(),
		CoastForward: m.CoastForward.Load(),
		Antis:        m.Antis.Load(),
		Annihilated:  m.Annihilated.Load(),
		Nulls:        m.Nulls.Load(),
		LocalMsgs:    m.LocalMsgs.Load(),
		RemoteMsgs:   m.RemoteMsgs.Load(),
		GVTRounds:    m.GVTRounds.Load(),
		ModeSwitches: m.ModeSwitches.Load(),
		StateSaves:   m.StateSaves.Load(),
		Fossils:      m.Fossils.Load(),
		Blocked:      m.Blocked.Load(),
		OrphanAntis:  m.OrphanAntis.Load(),
		MemThrottled:  m.MemThrottled.Load(),
		Cancelbacks:   m.Cancelbacks.Load(),
		StallRescues:  m.StallRescues.Load(),
		Migrations:    m.Migrations.Load(),
		ViewChanges:   m.ViewChanges.Load(),
		ForwardedMsgs: m.ForwardedMsgs.Load(),
		LateForwards:  m.LateForwards.Load(),
	}
}

// Efficiency returns the fraction of executed events that were not rolled
// back. 1.0 means no wasted optimistic work.
func (s Snapshot) Efficiency() float64 {
	if s.Events == 0 {
		return 1
	}
	return 1 - float64(s.RolledBack)/float64(s.Events)
}

// String renders the snapshot as a compact single line. Supervision counters
// are appended only when nonzero so the common report stays short.
func (s Snapshot) String() string {
	out := fmt.Sprintf("events=%d rollbacks=%d rolledback=%d antis=%d annih=%d orphans=%d nulls=%d local=%d remote=%d gvt=%d switches=%d eff=%.3f",
		s.Events, s.Rollbacks, s.RolledBack, s.Antis, s.Annihilated, s.OrphanAntis, s.Nulls,
		s.LocalMsgs, s.RemoteMsgs, s.GVTRounds, s.ModeSwitches, s.Efficiency())
	if s.MemThrottled != 0 || s.Cancelbacks != 0 {
		out += fmt.Sprintf(" memthrottled=%d cancelbacks=%d", s.MemThrottled, s.Cancelbacks)
	}
	if s.StallRescues != 0 {
		out += fmt.Sprintf(" stallrescues=%d", s.StallRescues)
	}
	if s.Migrations != 0 || s.ForwardedMsgs != 0 {
		out += fmt.Sprintf(" migrations=%d viewchanges=%d forwarded=%d", s.Migrations, s.ViewChanges, s.ForwardedMsgs)
	}
	if s.LateForwards != 0 {
		out += fmt.Sprintf(" lateforwards=%d", s.LateForwards)
	}
	return out
}

// WallClockPoint is one wall-clock benchmark measurement: a complete verified
// simulation run timed on the host, with heap-allocation counters sampled
// around the run. Unlike the modeled makespan above, these numbers reflect the
// real engine overhead (allocation, locking, message passing) on the machine
// at hand.
type WallClockPoint struct {
	Circuit        string  `json:"circuit"`
	Config         string  `json:"config"`
	Workers        int     `json:"workers"`
	Shards         int     `json:"shards,omitempty"`
	GoMaxProcs     int     `json:"gomaxprocs,omitempty"`
	Events         uint64  `json:"events"`
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	BytesPerEvent  float64 `json:"bytes_per_event"`
	WallMs         float64 `json:"wall_ms"`
	// Makespan is the virtual-processor cost-model makespan of the run and
	// ModeledSpeedup the circuit's sequential cost divided by it — the same
	// quantity the speedup figures plot, recorded here so the trajectory file
	// tracks both real and modeled performance per configuration.
	Makespan       float64 `json:"makespan,omitempty"`
	ModeledSpeedup float64 `json:"modeled_speedup,omitempty"`
}

// WallClockReport is a full wall-clock benchmark sweep, serialized to
// BENCH_wallclock.json so successive PRs can track the perf trajectory.
type WallClockReport struct {
	Scale      string           `json:"scale"`
	Workers    int              `json:"workers"`
	GoMaxProcs int              `json:"gomaxprocs"`
	GoVersion  string           `json:"go_version"`
	Points     []WallClockPoint `json:"points"`
}

// Find returns the point for (circuit, config), or nil.
func (r *WallClockReport) Find(circuit, config string) *WallClockPoint {
	if r == nil {
		return nil
	}
	for i := range r.Points {
		if r.Points[i].Circuit == circuit && r.Points[i].Config == config {
			return &r.Points[i]
		}
	}
	return nil
}

// SpeedupRow is one point of a speedup curve.
type SpeedupRow struct {
	Workers  int
	Makespan float64 // modeled parallel cost
	Speedup  float64 // sequential cost / makespan
}

// Series is a named speedup curve, e.g. one protocol configuration.
type Series struct {
	Name string
	Rows []SpeedupRow
}

// FormatCurves renders speedup curves as an aligned text table with one
// column per series, matching the paper's figure data.
func FormatCurves(title string, series []Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-6s", "procs")
	for _, s := range series {
		fmt.Fprintf(&b, " %12s", s.Name)
	}
	b.WriteByte('\n')
	if len(series) == 0 {
		return b.String()
	}
	for i := range series[0].Rows {
		fmt.Fprintf(&b, "%-6d", series[0].Rows[i].Workers)
		for _, s := range series {
			if i < len(s.Rows) {
				fmt.Fprintf(&b, " %12.2f", s.Rows[i].Speedup)
			} else {
				fmt.Fprintf(&b, " %12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
