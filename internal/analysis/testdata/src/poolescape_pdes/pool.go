// Package poolescape_pdes mirrors the object-pool discipline of
// internal/pdes/pool.go (the real eventPool/msgPool are unexported) and is
// listed in Config.PoolPackages so the poolescape analyzer tracks it. The
// pool bodies themselves, like the real ones, produce no diagnostics: put's
// free-list append stores a parameter, not a tracked get() result.
package poolescape_pdes

type Event struct {
	ID uint64
}

type Msg struct {
	Kind int
	Ev   *Event
}

type eventPool struct{ free []*Event }

func (p *eventPool) get() *Event {
	if n := len(p.free) - 1; n >= 0 {
		e := p.free[n]
		p.free = p.free[:n]
		return e
	}
	return new(Event)
}

func (p *eventPool) put(e *Event) {
	p.free = append(p.free, e)
}

type msgPool struct{ free []*Msg }

func (p *msgPool) get() *Msg {
	if n := len(p.free) - 1; n >= 0 {
		m := p.free[n]
		p.free = p.free[:n]
		return m
	}
	return new(Msg)
}

func (p *msgPool) put(m *Msg) {
	p.free = append(p.free, m)
}

type worker struct {
	evPool  eventPool
	msgPool msgPool
	held    []*Event
}

var escapedGlobal *Event

// deliver stands in for the engine's ownership-transferring send path.
func (w *worker) deliver(e *Event) {}
