package poolescape_pdes

// Violations of rule 1: use after recycle on a straight-line path.

func useAfterRecycle(w *worker, e *Event) uint64 {
	w.evPool.put(e)
	return e.ID // want `use of e after recycle`
}

func doubleFree(w *worker, e *Event) {
	w.evPool.put(e)
	w.evPool.put(e) // want `e recycled twice on this path`
}

func useAfterRecycleInBranch(w *worker, m *Msg, cond bool) int {
	if cond {
		w.msgPool.put(m)
		return m.Kind // want `use of m after recycle`
	}
	return m.Kind // recycle was in the other branch: this path still owns m
}

// Violations of rule 2: retaining a pooled object outside itself.

func storeInField(w *worker) {
	e := w.evPool.get()
	w.held = append(w.held, e) // want `pooled e stored into w\.held`
}

func storeInGlobal(w *worker) {
	e := w.evPool.get()
	escapedGlobal = e // want `pooled e stored into escapedGlobal`
}

func storeInOtherPooled(w *worker) *Msg {
	e := w.evPool.get()
	m := w.msgPool.get()
	m.Ev = e // want `pooled e stored into m\.Ev`
	return m
}

func captureInClosure(w *worker) func() uint64 {
	e := w.evPool.get()
	return func() uint64 { return e.ID } // want `pooled e captured by closure`
}

// Allowed: the ownership discipline of pool.go, as written in the engine.

func fieldWritesAndHandoff(w *worker) {
	e := w.evPool.get()
	e.ID = 7     // writing the pooled object's OWN fields
	w.deliver(e) // ownership transfer through a call
}

func byValueRecord(w *worker, recs []uint64) []uint64 {
	e := w.evPool.get()
	recs = append(recs, e.ID) // copies a field by value, not the pointer
	w.deliver(e)
	return recs
}

func recycleThenRebind(w *worker) *Event {
	e := w.evPool.get()
	w.evPool.put(e)
	e = w.evPool.get() // rebinding ends the poisoning
	return e
}

func copyFieldsThenRecycle(w *worker, m *Msg) int {
	kind := m.Kind   // the handle() pattern: decode first,
	w.msgPool.put(m) // recycle last
	return kind
}

func justifiedOwnerSite(w *worker) *Msg {
	e := w.evPool.get()
	m := w.msgPool.get()
	//govhdlvet:owner the message carries the event to its receiver, which takes ownership
	m.Ev = e
	return m
}
