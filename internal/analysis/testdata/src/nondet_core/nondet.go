// Package nondet_core poses as a deterministic-core package (it is listed
// in Config.CorePackages) to exercise the nondeterminism analyzer: no
// wall-clock reads, no math/rand, no select-with-default races.
package nondet_core

import (
	"math/rand" // want `import of math/rand in deterministic core`
	"time"
)

func violations(ch chan int) (int, time.Time) {
	now := time.Now()            // want `wall-clock time\.Now in deterministic core`
	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep in deterministic core`
	select {                     // want `select with default in deterministic core`
	case v := <-ch:
		return v, now
	default:
	}
	return rand.Int(), now
}

func allowed(ch chan int) time.Duration {
	d := 3 * time.Millisecond // duration arithmetic is deterministic
	select {                  // no default clause: blocking receive, no race
	case <-ch:
	}
	return d
}

func suppressed() time.Time {
	//govhdlvet:nondet fixture: justified suppression
	return time.Now()
}
