package nondet_core

import "time"

// runner.go is named in Config.NondetAllowFiles: the timing shims that
// measure a run from OUTSIDE the event loop may read the wall clock freely.
// Nothing in this file is diagnosed.
func wallClock() time.Duration {
	start := time.Now()
	return time.Since(start)
}
