// Package vtcompare_use exercises the vtcompare analyzer: outside package
// vtime, ordering two vtime.VT values must go through Less/LessEq, never ad
// hoc PT/LT field comparisons.
package vtcompare_use

import "govhdl/internal/vtime"

type holder struct{ ts vtime.VT }

func violations(a, b vtime.VT, h holder, p *vtime.VT, win vtime.Time) {
	_ = a.PT < b.PT     // want `ad hoc ordering of vtime\.VT fields`
	_ = a.LT >= b.LT    // want `ad hoc ordering of vtime\.VT fields`
	_ = a.PT > b.PT+win // want `ad hoc ordering of vtime\.VT fields`
	_ = h.ts.PT <= b.PT // want `ad hoc ordering of vtime\.VT fields`
	_ = p.LT < b.LT     // want `ad hoc ordering of vtime\.VT fields`
	_ = a.PT == b.PT    // want `field-by-field vtime\.VT equality`
	_ = a.LT != b.LT    // want `field-by-field vtime\.VT equality`
}

func allowed(a, b vtime.VT, cur vtime.Time) {
	_ = a.Less(b)      // the lexicographic order, as intended
	_ = a.LessEq(b)    // likewise
	_ = a == b         // whole-value equality is exact
	_ = a.LT > 0       // single-sided: no pair ordering implied
	_ = a.PT != cur    // comparison against an independent physical time
	_ = a.PT+1 == b.PT // equality under arithmetic states a relation, not an order
}

func suppressed(a, b vtime.VT) {
	//govhdlvet:vtcompare fixture: justified suppression on the preceding line
	_ = a.PT < b.PT
	_ = a.LT > b.LT //govhdlvet:vtcompare fixture: justified suppression on the same line
}
