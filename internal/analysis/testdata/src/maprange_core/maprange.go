// Package maprange_core poses as a deterministic-core package (it is
// listed in Config.CorePackages) to exercise the maprange analyzer: no
// unordered map iteration, because Go randomizes the order per statement.
package maprange_core

import "sort"

type registry map[string]int

func violations(m map[string]int, r registry) int {
	sum := 0
	for k, v := range m { // want `range over map m in deterministic core`
		sum += v + len(k)
	}
	for k := range r { // want `range over map r in deterministic core`
		sum += len(k)
	}
	return sum
}

// sortedKeys is the prescribed remediation: collect, sort, then iterate the
// slice. The collection loop itself justifies its unordered iteration.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	//govhdlvet:ordered collecting keys to sort immediately below; order cannot leak
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// pickFrontier is the graph-partitioner shape that motivated the shard
// layer's dense-slice idiom: selecting the max-gain frontier vertex by
// ranging a gain map ties the partition (and with it LP placement, shard
// membership and the whole committed schedule) to Go's randomized iteration
// order whenever two vertices share the top gain.
func pickFrontier(gain map[int]int) int {
	best, bestGain := -1, -1
	for v, g := range gain { // want `range over map gain in deterministic core`
		if g > bestGain {
			best, bestGain = v, g
		}
	}
	return best
}

// pickFrontierDense is the prescribed remediation: index dense slices by
// vertex id so ties always resolve to the lowest id.
func pickFrontierDense(gain []int, inFrontier []bool) int {
	best, bestGain := -1, -1
	for v := 0; v < len(gain); v++ {
		if inFrontier[v] && gain[v] > bestGain {
			best, bestGain = v, gain[v]
		}
	}
	return best
}

func sliceAndChannelRanges(s []int, ch chan int) int {
	sum := 0
	for _, v := range s { // slices iterate in index order: fine
		sum += v
	}
	for v := range ch { // channel ranges are FIFO: fine
		sum += v
	}
	return sum
}
