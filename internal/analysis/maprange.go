package analysis

import (
	"go/ast"
	"go/types"
)

// MapRange bans unordered map iteration in the deterministic core. Go
// randomizes map iteration order per range statement, so any map range whose
// effects can reach event timestamps, message emission order, trace records,
// or LP numbering makes two runs (or two replicas of a distributed run)
// diverge. Inside the core packages every `range someMap` must either
// iterate a pre-sorted key slice instead, or carry a
//
//	//govhdlvet:ordered <why order cannot leak>
//
// justification on the statement (or the line above) when the iteration
// order provably cannot escape (e.g. building another map, or folding with
// a commutative operation).
var MapRange = &Analyzer{
	Name:      "maprange",
	Doc:       "no unordered map iteration in the deterministic core",
	Directive: "ordered",
	Run:       runMapRange,
}

func runMapRange(pass *Pass) {
	if !pass.Config.IsCore(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rs.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				pass.Reportf(rs.For,
					"range over map %s in deterministic core package %s; iterate sorted keys or justify with //govhdlvet:ordered",
					types.ExprString(rs.X), pass.Path)
			}
			return true
		})
	}
}
