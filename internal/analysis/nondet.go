package analysis

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strconv"
)

// Nondeterminism keeps the deterministic core deterministic: the optimistic
// engine's rollback/replay (coast-forward re-execution) and the committed
// trace's bit-identity with the sequential oracle both assume that event
// execution depends only on LP state and event content. Inside the core
// packages this analyzer flags:
//
//   - wall-clock reads and timers (time.Now, time.Since, time.Sleep,
//     time.After, ...): replaying an event must not observe a different
//     clock than the original execution;
//   - any import of math/rand or math/rand/v2: unseeded (or per-process
//     seeded) randomness diverges across replicas of a distributed run;
//   - select statements with a default clause: polling races make control
//     flow depend on scheduler timing.
//
// The timing shims that measure a run from outside the event loop
// (Config.NondetAllowFiles, e.g. runner.go and seq.go stamping Result.Wall)
// are allowlisted by filename.
var Nondeterminism = &Analyzer{
	Name:      "nondeterminism",
	Doc:       "no wall-clock reads, math/rand, or select-default races in the deterministic core",
	Directive: "nondet",
	Run:       runNondeterminism,
}

// nondetTimeFuncs are the package time functions that observe or depend on
// the wall clock. Conversions and constants (time.Duration, time.Nanosecond)
// stay legal.
var nondetTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"AfterFunc": true,
}

func runNondeterminism(pass *Pass) {
	if !pass.Config.IsCore(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		file := pass.Fset.Position(f.Pos()).Filename
		if contains(pass.Config.NondetAllowFiles, filepath.Base(file)) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ImportSpec:
				if path, err := strconv.Unquote(n.Path.Value); err == nil {
					if path == "math/rand" || path == "math/rand/v2" {
						pass.Reportf(n.Pos(),
							"import of %s in deterministic core package %s", path, pass.Path)
					}
				}
			case *ast.SelectorExpr:
				if pkg := importedPkgName(pass, n.X); pkg != nil &&
					pkg.Imported().Path() == "time" && nondetTimeFuncs[n.Sel.Name] {
					pass.Reportf(n.Pos(),
						"wall-clock time.%s in deterministic core package %s (event execution must be replayable)",
						n.Sel.Name, pass.Path)
				}
			case *ast.SelectStmt:
				for _, cl := range n.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
						pass.Reportf(n.Pos(),
							"select with default in deterministic core package %s races on scheduler timing", pass.Path)
					}
				}
			}
			return true
		})
	}
}

// importedPkgName returns the *types.PkgName if e is a reference to an
// imported package.
func importedPkgName(pass *Pass, e ast.Expr) *types.PkgName {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := pass.Info.Uses[id].(*types.PkgName)
	return pn
}
