package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestFixtures runs the full suite over every fixture package and requires
// the diagnostics to match the // want expectations exactly.
func TestFixtures(t *testing.T) {
	l := newTestLoader(t)
	cfg := DefaultConfig()
	for _, name := range []string{"vtcompare_use", "nondet_core", "maprange_core", "poolescape_pdes"} {
		t.Run(name, func(t *testing.T) {
			diags, problems, err := CheckFixture(l, Analyzers(), cfg, filepath.Join("testdata", "src", name))
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range problems {
				t.Error(p)
			}
			if len(diags) == 0 {
				t.Error("fixture produced no diagnostics at all; expectations cannot be live")
			}
		})
	}
}

// TestExactPositions pins the exact file:line:col and message of one
// representative diagnostic per analyzer, so reporting positions cannot
// silently drift.
func TestExactPositions(t *testing.T) {
	l := newTestLoader(t)
	cfg := DefaultConfig()
	cases := []struct {
		fixture  string
		analyzer string
		file     string
		line     int
		col      int
		message  string
	}{
		{
			fixture: "vtcompare_use", analyzer: "vtcompare",
			file: "vtcompare_use.go", line: 11, col: 11,
			message: "ad hoc ordering of vtime.VT fields; use VT.Less/LessEq (lexicographic (PT, LT) order)",
		},
		{
			fixture: "vtcompare_use", analyzer: "vtcompare",
			file: "vtcompare_use.go", line: 16, col: 11,
			message: "field-by-field vtime.VT equality; compare the VT values or use vtime helpers",
		},
		{
			fixture: "nondet_core", analyzer: "nondeterminism",
			file: "nondet.go", line: 12, col: 9,
			message: "wall-clock time.Now in deterministic core package govhdl/internal/analysis/testdata/src/nondet_core (event execution must be replayable)",
		},
		{
			fixture: "maprange_core", analyzer: "maprange",
			file: "maprange.go", line: 12, col: 2,
			message: "range over map m in deterministic core package govhdl/internal/analysis/testdata/src/maprange_core; iterate sorted keys or justify with //govhdlvet:ordered",
		},
		{
			fixture: "poolescape_pdes", analyzer: "poolescape",
			file: "escape.go", line: 7, col: 9,
			message: "use of e after recycle; the pool owns it once put returns",
		},
		{
			fixture: "poolescape_pdes", analyzer: "poolescape",
			file: "escape.go", line: 27, col: 9,
			message: "pooled e stored into w.held; ownership moves through sends, not shared structures (//govhdlvet:owner to justify)",
		},
	}
	byFixture := make(map[string][]Diagnostic)
	for _, c := range cases {
		diags, ok := byFixture[c.fixture]
		if !ok {
			var err error
			diags, _, err = CheckFixture(l, Analyzers(), cfg, filepath.Join("testdata", "src", c.fixture))
			if err != nil {
				t.Fatal(err)
			}
			byFixture[c.fixture] = diags
		}
		found := false
		for _, d := range diags {
			if filepath.Base(d.Pos.Filename) == c.file && d.Pos.Line == c.line {
				found = true
				if d.Pos.Column != c.col {
					t.Errorf("%s:%d: column = %d, want %d", c.file, c.line, d.Pos.Column, c.col)
				}
				if d.Message != c.message {
					t.Errorf("%s:%d: message = %q, want %q", c.file, c.line, d.Message, c.message)
				}
				if d.Analyzer != c.analyzer {
					t.Errorf("%s:%d: analyzer = %q, want %q", c.file, c.line, d.Analyzer, c.analyzer)
				}
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic at %s:%d (%s)", c.file, c.line, c.analyzer)
		}
	}
}

// TestRepositoryClean runs the suite over the entire module, exactly like
// `go run ./cmd/govhdlvet ./...` in CI: the repository itself must stay
// free of diagnostics (fixtures under testdata are excluded by pattern
// expansion, again matching the go tool's convention).
func TestRepositoryClean(t *testing.T) {
	l := newTestLoader(t)
	paths, err := l.Expand([]string{l.ModPath + "/..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("expected the whole module, got only %v", paths)
	}
	cfg := DefaultConfig()
	for _, path := range paths {
		if strings.Contains(path, "/testdata/") {
			t.Fatalf("pattern expansion leaked testdata package %s", path)
		}
		pkg, err := l.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		for _, d := range Run(pkg, Analyzers(), cfg) {
			t.Errorf("%s", d)
		}
	}
}

// TestSuppressionRequiresMatchingDirective checks that a directive for one
// analyzer does not silence another analyzer's diagnostic on the same line.
func TestSuppressionRequiresMatchingDirective(t *testing.T) {
	l := newTestLoader(t)
	cfg := DefaultConfig()
	// The vtcompare fixture's suppressed() function uses //govhdlvet:vtcompare;
	// were directives analyzer-agnostic, the matched-directive check below
	// would be vacuous. Assert the suppressed lines really are silent AND
	// that the directive string is what silenced them.
	diags, _, err := CheckFixture(l, Analyzers(), cfg, filepath.Join("testdata", "src", "vtcompare_use"))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		if d.Pos.Line >= 30 && d.Pos.Line <= 33 {
			t.Errorf("diagnostic on suppressed line: %s", d)
		}
	}
}

func TestExpandErrors(t *testing.T) {
	l := newTestLoader(t)
	for _, pat := range []string{"./no/such/dir", "govhdl/internal/nothing", "./testdata/src/empty/..."} {
		if _, err := l.Expand([]string{pat}); err == nil {
			t.Errorf("Expand(%q) unexpectedly succeeded", pat)
		}
	}
}
