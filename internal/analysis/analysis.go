// Package analysis is govhdl's custom static-analysis suite: a small,
// stdlib-only (go/ast + go/parser + go/types) framework plus the analyzers
// that machine-check the simulator invariants the Go type system cannot see.
//
// The paper's correctness story rests on three such invariants:
//
//   - Virtual time is the lexicographically-ordered pair (PT, LT). Ordering
//     two vtime.VT values field-by-field outside package vtime silently
//     drops the lexicographic tie-break (analyzer vtcompare).
//   - The optimistic engine's rollback/replay is only sound if the
//     deterministic core (kernel, vtime, the pdes event paths) never reads
//     wall-clock time, never consults math/rand, and never lets Go's
//     randomized map iteration order leak into event or trace order
//     (analyzers nondeterminism and maprange).
//   - Pooled Event/Msg objects are safe only under the strict
//     receiver-ownership discipline documented in internal/pdes/pool.go
//     (analyzer poolescape).
//
// Diagnostics can be suppressed — with a written justification — by a
// comment of the form
//
//	//govhdlvet:<directive> <justification>
//
// on the flagged line or the line immediately above it. Each analyzer names
// its directive (vtcompare, nondet, ordered, owner).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// An Analyzer is one independent pass over a type-checked package.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run selections.
	Name string
	// Doc is a one-line description of the enforced invariant.
	Doc string
	// Directive is the suppression directive: a //govhdlvet:<Directive>
	// comment on (or immediately above) a flagged line silences it.
	Directive string
	// Run reports diagnostics through pass.Reportf.
	Run func(pass *Pass)
}

// Analyzers is the suite in its stable reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{VTCompare, Nondeterminism, MapRange, PoolEscape}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// A Diagnostic is one finding, positioned for file:line:col reporting.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Config scopes the analyzers to the packages whose determinism the engine
// depends on. Paths are exact import paths as loaded.
type Config struct {
	// CorePackages form the deterministic core: no wall-clock reads, no
	// math/rand, no unordered map iteration (nondeterminism, maprange).
	CorePackages []string
	// NondetAllowFiles are base filenames inside core packages that are
	// allowed to touch wall-clock time: the timing shims that measure a
	// run from outside the event loop.
	NondetAllowFiles []string
	// PoolPackages are the packages whose eventPool/msgPool objects the
	// poolescape analyzer tracks.
	PoolPackages []string
	// VTimePackages define the VT type. vtcompare recognizes VT values by
	// these paths and skips analyzing the packages themselves (the
	// comparison methods must compare fields somewhere).
	VTimePackages []string
}

// FixturePrefix is the loaded import-path prefix of the analyzer test
// fixtures. DefaultConfig scopes the fixture packages exactly like the real
// core so `govhdlvet ./internal/analysis/testdata/src/...` exercises every
// analyzer end-to-end under the production driver.
const FixturePrefix = "govhdl/internal/analysis/testdata/src"

// DefaultConfig is the repository's production scoping.
func DefaultConfig() *Config {
	return &Config{
		CorePackages: []string{
			"govhdl/internal/kernel",
			"govhdl/internal/vtime",
			"govhdl/internal/pdes",
			"govhdl/internal/server",
			"govhdl/internal/trace",
			"govhdl/internal/supervise",
			"govhdl/internal/circuits",
			"govhdl/internal/chaos",
			"govhdl/internal/ckptio",
			FixturePrefix + "/nondet_core",
			FixturePrefix + "/maprange_core",
		},
		// watchdog.go hosts the wall-clock stall supervision, which observes
		// progress but never feeds time into event processing; runner.go and
		// seq.go time the run for reporting only.
		NondetAllowFiles: []string{"runner.go", "seq.go", "watchdog.go"},
		PoolPackages: []string{
			"govhdl/internal/pdes",
			FixturePrefix + "/poolescape_pdes",
		},
		VTimePackages: []string{"govhdl/internal/vtime"},
	}
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// IsCore reports whether path belongs to the deterministic core.
func (c *Config) IsCore(path string) bool { return contains(c.CorePackages, path) }

// IsPoolPackage reports whether path is scoped for poolescape.
func (c *Config) IsPoolPackage(path string) bool { return contains(c.PoolPackages, path) }

// IsVTimePackage reports whether path defines the VT type.
func (c *Config) IsVTimePackage(path string) bool { return contains(c.VTimePackages, path) }

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Path     string // import path the package was loaded as
	Pkg      *types.Package
	Info     *types.Info
	Config   *Config

	diags       *[]Diagnostic
	suppressed  map[string]map[int]string // filename -> line -> directive
	suppReady   bool
	suppPattern *regexp.Regexp
}

var directiveRE = regexp.MustCompile(`^//govhdlvet:([a-z]+)`)

// buildSuppressions indexes every //govhdlvet:<directive> comment by file
// and line.
func (p *Pass) buildSuppressions() {
	if p.suppReady {
		return
	}
	p.suppReady = true
	p.suppressed = make(map[string]map[int]string)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := directiveRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				byLine := p.suppressed[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]string)
					p.suppressed[pos.Filename] = byLine
				}
				byLine[pos.Line] = m[1]
			}
		}
	}
}

// Suppressed reports whether a diagnostic at pos is silenced by the pass's
// directive on the same line or the line immediately above.
func (p *Pass) Suppressed(pos token.Pos) bool {
	p.buildSuppressions()
	pp := p.Fset.Position(pos)
	byLine := p.suppressed[pp.Filename]
	if byLine == nil {
		return false
	}
	return byLine[pp.Line] == p.Analyzer.Directive || byLine[pp.Line-1] == p.Analyzer.Directive
}

// Reportf records a diagnostic at pos unless it is suppressed.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Suppressed(pos) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the analyzers to pkg and returns their diagnostics in
// position order.
func Run(pkg *Package, analyzers []*Analyzer, cfg *Config) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Path:     pkg.Path,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			Config:   cfg,
			diags:    &diags,
		}
		a.Run(pass)
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders diagnostics by file, line, column, then analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
