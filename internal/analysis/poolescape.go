package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PoolEscape enforces the receiver-ownership discipline of the pooled
// Event/Msg objects (internal/pdes/pool.go), which at runtime is guarded
// only by the poolCheck poisoning tests. Two conservative, intra-procedural
// rules per function body:
//
//  1. Use-after-recycle: once a variable is passed to eventPool.put /
//     msgPool.put, no later statement on the same straight-line path may
//     use it (including a second put — a double free). Recycles inside a
//     conditional only poison the remainder of that branch.
//
//  2. Retention: a variable bound to eventPool.get / msgPool.get must not
//     be stored into a struct field, global, or map/slice element rooted
//     outside the variable itself, and must not be captured by a closure:
//     ownership moves to the receiver through calls (deliver, Send), never
//     through shared structures. Writing the pooled object's OWN fields
//     (m.Kind = ...) is of course allowed.
//
// Legitimate owner sites (the pending heap, history records, coalescing
// buffers) justify themselves with //govhdlvet:owner.
//
// Both rules are deliberately conservative: only bare identifiers are
// tracked, and poisoning never propagates out of the block that recycled.
// That yields no false positives on the engine at the cost of missing some
// aliased escapes — the poolCheck property tests remain the runtime
// backstop.
var PoolEscape = &Analyzer{
	Name:      "poolescape",
	Doc:       "pooled Event/Msg objects follow the receiver-ownership discipline of pool.go",
	Directive: "owner",
	Run:       runPoolEscape,
}

func runPoolEscape(pass *Pass) {
	if !pass.Config.IsPoolPackage(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkPoolFunc(pass, fd.Body)
			}
		}
	}
}

// checkPoolFunc analyzes one function body, then recurses into nested
// function literals as independent functions.
func checkPoolFunc(pass *Pass, body *ast.BlockStmt) {
	pe := &poolEscapeCheck{pass: pass, pooled: make(map[types.Object]bool)}
	pe.collectPooled(body)
	pe.checkRetention(body)
	pe.checkBlock(body.List, make(map[types.Object]token.Pos))
	ast.Inspect(body, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok {
			checkPoolFunc(pass, fl.Body)
			return false
		}
		return true
	})
}

type poolEscapeCheck struct {
	pass   *Pass
	pooled map[types.Object]bool // vars bound to pool.get() in this body
}

// poolCall returns the call if e is a call of the named method (get/put) on
// an eventPool or msgPool defined in a pool package.
func poolCall(pass *Pass, e ast.Expr, name string) *ast.CallExpr {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return nil
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return nil
	}
	t := types.Unalias(tv.Type)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	obj := named.Obj()
	if obj.Name() != "eventPool" && obj.Name() != "msgPool" {
		return nil
	}
	return call
}

// objOf resolves an expression to the object of a bare identifier, or nil.
func (pe *poolEscapeCheck) objOf(e ast.Expr) types.Object {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pe.pass.Info.Uses[id]; obj != nil {
		return obj
	}
	return pe.pass.Info.Defs[id]
}

// forEachInBody walks body without descending into nested function
// literals (the literal itself is still visited, so callers can inspect
// captures; its body is analyzed as an independent function).
func forEachInBody(body *ast.BlockStmt, fn func(n ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			fn(n)
			return false
		}
		return fn(n)
	})
}

// collectPooled records variables assigned directly from pool get() calls.
func (pe *poolEscapeCheck) collectPooled(body *ast.BlockStmt) {
	forEachInBody(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		if poolCall(pe.pass, as.Rhs[0], "get") == nil {
			return true
		}
		if obj := pe.objOf(as.Lhs[0]); obj != nil {
			pe.pooled[obj] = true
		}
		return true
	})
}

// rootIdent returns the leftmost identifier of a selector/index chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// checkRetention flags pooled variables stored outside themselves or
// captured by closures (rule 2).
func (pe *poolEscapeCheck) checkRetention(body *ast.BlockStmt) {
	if len(pe.pooled) == 0 {
		return
	}
	forEachInBody(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				obj := pe.storedPooled(rhs)
				if obj == nil {
					continue
				}
				for _, lhs := range n.Lhs {
					if pe.escapingStore(lhs, obj) {
						pe.pass.Reportf(n.TokPos,
							"pooled %s stored into %s; ownership moves through sends, not shared structures (//govhdlvet:owner to justify)",
							obj.Name(), types.ExprString(lhs))
					}
				}
			}
		case *ast.FuncLit:
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := pe.pass.Info.Uses[id]; obj != nil && pe.pooled[obj] {
						pe.pass.Reportf(id.Pos(),
							"pooled %s captured by closure; ownership moves through sends, not shared structures (//govhdlvet:owner to justify)",
							obj.Name())
					}
				}
				return true
			})
			return false
		}
		return true
	})
}

// storedPooled returns the object of a pooled variable whose POINTER the
// expression stores when assigned: the bare identifier, its address, an
// append element, or a composite-literal element. Reading a field of a
// pooled object (antiRec{id: e.ID}) copies a value and is exactly the
// by-value recording the ownership model prescribes — not retention.
func (pe *poolEscapeCheck) storedPooled(e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj := pe.pass.Info.Uses[x]; obj != nil && pe.pooled[obj] {
			return obj
		}
	case *ast.UnaryExpr:
		return pe.storedPooled(x.X)
	case *ast.CallExpr:
		// append(dst, elems...) stores its elements; any other call
		// transfers ownership to the callee, which is the legal way for a
		// pooled object to leave the function.
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" {
			for _, a := range x.Args[1:] {
				if obj := pe.storedPooled(a); obj != nil {
					return obj
				}
			}
		}
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if obj := pe.storedPooled(el); obj != nil {
				return obj
			}
		}
	}
	return nil
}

// escapingStore reports whether assigning to lhs retains the pooled object
// outside itself: a field/element rooted at another object, or a
// package-level variable.
func (pe *poolEscapeCheck) escapingStore(lhs ast.Expr, pooled types.Object) bool {
	switch x := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		obj := pe.objOf(x)
		if obj == nil {
			return false
		}
		// Assigning to a package-level variable retains the object globally.
		return obj.Parent() == pe.pass.Pkg.Scope()
	case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		root := rootIdent(lhs)
		if root == nil {
			return true // too complex to prove local: flag conservatively
		}
		robj := pe.objOf(root)
		if robj == pooled {
			return false // writing the pooled object's own fields
		}
		if robj == nil {
			return true
		}
		// Storing into a field/element of a local value is still an escape
		// unless the root IS the pooled variable; struct fields and globals
		// are exactly the retention the ownership model forbids.
		return robj.Parent() == pe.pass.Pkg.Scope() || isFieldOrElem(lhs)
	}
	return false
}

// isFieldOrElem reports whether lhs writes through a selector or index.
func isFieldOrElem(lhs ast.Expr) bool {
	switch ast.Unparen(lhs).(type) {
	case *ast.SelectorExpr, *ast.IndexExpr:
		return true
	}
	return false
}

// checkBlock walks one statement list enforcing rule 1 (use-after-recycle)
// on straight-line paths. recycled maps a poisoned variable to the position
// of its put call; nested blocks get a copy, so conditional recycles only
// poison their own branch.
func (pe *poolEscapeCheck) checkBlock(list []ast.Stmt, recycled map[types.Object]token.Pos) {
	for _, stmt := range list {
		pe.checkStmt(stmt, recycled)
	}
}

func cloneRecycled(m map[types.Object]token.Pos) map[types.Object]token.Pos {
	c := make(map[types.Object]token.Pos, len(m))
	for k, v := range m { //govhdlvet:ordered analysis-internal scratch; order never reported
		c[k] = v
	}
	return c
}

func (pe *poolEscapeCheck) checkStmt(stmt ast.Stmt, recycled map[types.Object]token.Pos) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if call := poolCall(pe.pass, s.X, "put"); call != nil && len(call.Args) == 1 {
			if obj := pe.objOf(call.Args[0]); obj != nil {
				if _, dead := recycled[obj]; dead {
					pe.pass.Reportf(call.Args[0].Pos(),
						"%s recycled twice on this path (double free)", obj.Name())
				} else {
					recycled[obj] = call.Pos()
				}
				return
			}
		}
		pe.reportUses(s, recycled)
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			pe.reportUses(rhs, recycled)
		}
		for _, lhs := range s.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				// Rebinding ends the poisoning: the name now holds a live
				// object.
				if obj := pe.objOf(id); obj != nil {
					delete(recycled, obj)
				}
				continue
			}
			pe.reportUses(lhs, recycled)
		}
	case *ast.BlockStmt:
		pe.checkBlock(s.List, cloneRecycled(recycled))
	case *ast.IfStmt:
		if s.Init != nil {
			pe.checkStmt(s.Init, recycled)
		}
		pe.reportUses(s.Cond, recycled)
		pe.checkBlock(s.Body.List, cloneRecycled(recycled))
		if s.Else != nil {
			pe.checkStmt(s.Else, cloneRecycled(recycled))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			pe.checkStmt(s.Init, recycled)
		}
		if s.Cond != nil {
			pe.reportUses(s.Cond, recycled)
		}
		pe.checkBlock(s.Body.List, cloneRecycled(recycled))
	case *ast.RangeStmt:
		pe.reportUses(s.X, recycled)
		pe.checkBlock(s.Body.List, cloneRecycled(recycled))
	case *ast.SwitchStmt:
		if s.Init != nil {
			pe.checkStmt(s.Init, recycled)
		}
		if s.Tag != nil {
			pe.reportUses(s.Tag, recycled)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				pe.checkBlock(cc.Body, cloneRecycled(recycled))
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				pe.checkBlock(cc.Body, cloneRecycled(recycled))
			}
		}
	case *ast.LabeledStmt:
		pe.checkStmt(s.Stmt, recycled)
	default:
		pe.reportUses(stmt, recycled)
	}
}

// reportUses flags every reference to a poisoned variable under n.
func (pe *poolEscapeCheck) reportUses(n ast.Node, recycled map[types.Object]token.Pos) {
	if n == nil || len(recycled) == 0 {
		return
	}
	ast.Inspect(n, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pe.pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		if _, dead := recycled[obj]; dead {
			pe.pass.Reportf(id.Pos(),
				"use of %s after recycle; the pool owns it once put returns", id.Name)
		}
		return true
	})
}
