package analysis

import (
	"fmt"
	"regexp"
	"strconv"
)

// Fixture expectation harness, in the style of go/analysis's analysistest:
// fixture sources under testdata/src/<pkg>/ carry
//
//	// want `regexp` `regexp` ...
//
// comments (double-quoted strings work too) on the lines where diagnostics
// are expected. CheckFixture loads the package, runs the analyzers, and
// matches every diagnostic against an expectation on the same file and
// line — each unmatched side of the comparison is a mismatch.

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var (
	wantRE    = regexp.MustCompile(`^//\s*want\s+(.+)$`)
	wantArgRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")
)

// CheckFixture runs analyzers over the fixture package in dir and compares
// the diagnostics with the `// want` expectations. It returns the
// diagnostics and a list of human-readable mismatches, empty when the
// fixture is satisfied exactly.
func CheckFixture(l *Loader, analyzers []*Analyzer, cfg *Config, dir string) ([]Diagnostic, []string, error) {
	pkg, err := l.LoadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				args := wantArgRE.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					return nil, nil, fmt.Errorf("%s:%d: malformed want comment %q", pos.Filename, pos.Line, c.Text)
				}
				for _, a := range args {
					raw := a[1]
					if a[2] != "" || raw == "" {
						unq, err := strconv.Unquote(`"` + a[2] + `"`)
						if err != nil {
							return nil, nil, fmt.Errorf("%s:%d: bad want string: %v", pos.Filename, pos.Line, err)
						}
						raw = unq
					}
					re, err := regexp.Compile(raw)
					if err != nil {
						return nil, nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}

	diags := Run(pkg, analyzers, cfg)
	var problems []string
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
		}
	}
	for _, w := range wants {
		if !w.matched {
			problems = append(problems, fmt.Sprintf("%s:%d: no diagnostic matched want `%s`", w.file, w.line, w.raw))
		}
	}
	return diags, problems, nil
}
