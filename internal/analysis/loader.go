package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one parsed and type-checked package ready for analysis.
type Package struct {
	Path  string // import path it was loaded as
	Dir   string // directory holding its sources
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads packages of the enclosing module from source, without any
// dependency on golang.org/x/tools. Local (module) imports are resolved
// recursively from the module directory; everything else is resolved by the
// standard library's source importer (the module has no external
// dependencies, so every non-local import is stdlib).
type Loader struct {
	Fset    *token.FileSet
	ModRoot string // absolute module root directory
	ModPath string // module path from go.mod

	std   types.Importer
	cache map[string]*loadEntry
}

type loadEntry struct {
	pkg *Package
	err error
}

// NewLoader locates the enclosing module starting from dir (or the working
// directory when dir is empty).
func NewLoader(dir string) (*Loader, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return nil, err
		}
		dir = wd
	}
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModRoot: root,
		ModPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		cache:   make(map[string]*loadEntry),
	}, nil
}

// dirFor maps a module import path to its source directory.
func (l *Loader) dirFor(path string) string {
	if path == l.ModPath {
		return l.ModRoot
	}
	return filepath.Join(l.ModRoot, filepath.FromSlash(strings.TrimPrefix(path, l.ModPath+"/")))
}

// pathFor maps a directory inside the module to its import path.
func (l *Loader) pathFor(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModRoot, abs)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("%s is outside module %s", dir, l.ModPath)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// Import implements types.Importer over the module + stdlib split.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// Load parses and type-checks the package at the given module import path
// (non-test files only), caching the result.
func (l *Loader) Load(path string) (*Package, error) {
	if e, ok := l.cache[path]; ok {
		return e.pkg, e.err
	}
	// Reserve the slot to fail fast on import cycles instead of recursing.
	l.cache[path] = &loadEntry{err: fmt.Errorf("import cycle through %s", path)}
	pkg, err := l.load(path)
	l.cache[path] = &loadEntry{pkg: pkg, err: err}
	return pkg, err
}

func (l *Loader) load(path string) (*Package, error) {
	dir := l.dirFor(path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("no Go source files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// LoadDir loads the package in dir under its module-derived import path.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	path, err := l.pathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.Load(path)
}

// Expand resolves package patterns to module import paths. Supported
// patterns: relative or absolute directories ("./internal/pdes"), module
// import paths ("govhdl/internal/pdes"), and recursive variants of either
// ending in "/...". As with the go tool, testdata directories are skipped
// by "..." expansion unless the pattern root is itself inside one.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	var paths []string
	seen := make(map[string]bool)
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		recursive := false
		root := pat
		if root == "..." {
			root, recursive = ".", true
		} else if rest, ok := strings.CutSuffix(root, "/..."); ok {
			root, recursive = rest, true
		}
		var dir string
		if root == l.ModPath || strings.HasPrefix(root, l.ModPath+"/") {
			dir = l.dirFor(root)
		} else {
			dir = root
			if !filepath.IsAbs(dir) {
				dir = filepath.Join(".", dir)
			}
		}
		if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
			return nil, fmt.Errorf("pattern %q: no such directory %s", pat, dir)
		}
		if !recursive {
			p, err := l.pathFor(dir)
			if err != nil {
				return nil, fmt.Errorf("pattern %q: %v", pat, err)
			}
			if !hasGoFiles(dir) {
				return nil, fmt.Errorf("pattern %q: no Go files in %s", pat, dir)
			}
			add(p)
			continue
		}
		before := len(paths)
		insideTestdata := strings.Contains(filepath.ToSlash(dir)+"/", "/testdata/")
		err := filepath.WalkDir(dir, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			base := filepath.Base(p)
			if p != dir && (strings.HasPrefix(base, ".") || strings.HasPrefix(base, "_")) {
				return filepath.SkipDir
			}
			if base == "testdata" && !insideTestdata {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				ip, err := l.pathFor(p)
				if err != nil {
					return err
				}
				add(ip)
			}
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("pattern %q: %v", pat, err)
		}
		if len(paths) == before {
			return nil, fmt.Errorf("pattern %q matched no packages", pat)
		}
	}
	return paths, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}
