package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// VTCompare enforces the paper's lexicographic virtual-time order: outside
// package vtime, two vtime.VT values must be ordered through Less/LessEq
// (or Cmp/Min/Max), never by ad hoc comparison of their PT/LT fields. A
// field-by-field ordering silently drops the lexicographic tie-break that
// causally orders delta cycles and phases, which is exactly the kind of
// divergence the HDL formalization literature documents.
//
// Flagged:
//   - any <, <=, >, >= whose operands BOTH mention a PT or LT field of a
//     vtime.VT value (even inside arithmetic: ts.PT > gvt.PT+window);
//   - any == or != between two bare VT field selectors (a.PT == b.PT):
//     compare the VT values themselves, or use the vtime helpers.
//
// Comparing a single field against a constant or an independent quantity
// (v.LT > 0, e.TS.PT != curTime) is allowed: no pair ordering is implied.
var VTCompare = &Analyzer{
	Name:      "vtcompare",
	Doc:       "ordering two vtime.VT values must go through Less/LessEq, not raw PT/LT fields",
	Directive: "vtcompare",
	Run:       runVTCompare,
}

func runVTCompare(pass *Pass) {
	if pass.Config.IsVTimePackage(pass.Path) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok {
				return true
			}
			switch be.Op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				if mentionsVTField(pass, be.X) && mentionsVTField(pass, be.Y) {
					pass.Reportf(be.OpPos,
						"ad hoc ordering of vtime.VT fields; use VT.Less/LessEq (lexicographic (PT, LT) order)")
				}
			case token.EQL, token.NEQ:
				if isBareVTField(pass, be.X) && isBareVTField(pass, be.Y) {
					pass.Reportf(be.OpPos,
						"field-by-field vtime.VT equality; compare the VT values or use vtime helpers")
				}
			}
			return true
		})
	}
}

// mentionsVTField reports whether any subexpression of e selects the PT or
// LT field of a vtime.VT value.
func mentionsVTField(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if sel, ok := n.(*ast.SelectorExpr); ok && isVTFieldSel(pass, sel) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isBareVTField reports whether e (modulo parentheses) is exactly a PT/LT
// selector on a vtime.VT value, with no surrounding arithmetic.
func isBareVTField(pass *Pass, e ast.Expr) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	return ok && isVTFieldSel(pass, sel)
}

func isVTFieldSel(pass *Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "PT" && sel.Sel.Name != "LT" {
		return false
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok {
		return false
	}
	return isVTType(pass, tv.Type)
}

// isVTType reports whether t (or its pointer element) is the VT struct of a
// configured vtime package.
func isVTType(pass *Pass, t types.Type) bool {
	t = types.Unalias(t)
	if ptr, ok := t.(*types.Pointer); ok {
		t = types.Unalias(ptr.Elem())
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "VT" && obj.Pkg() != nil && pass.Config.IsVTimePackage(obj.Pkg().Path())
}
