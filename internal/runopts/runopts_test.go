package runopts

import (
	"strings"
	"testing"
	"time"

	"govhdl/internal/pdes"
	"govhdl/internal/vtime"
)

func TestParseTime(t *testing.T) {
	cases := map[string]vtime.Time{
		"100ns": 100 * vtime.NS,
		"2us":   2 * vtime.US,
		"1ms":   1 * vtime.MS,
		"5ps":   5 * vtime.PS,
		"7fs":   7,
		"3sec":  3 * vtime.S,
		"42":    42,
	}
	for in, want := range cases {
		got, err := ParseTime(in)
		if err != nil || got != want {
			t.Errorf("ParseTime(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	for _, bad := range []string{"", "ns", "1.5ns", "x42", "10 ns"} {
		if _, err := ParseTime(bad); err == nil {
			t.Errorf("ParseTime(%q) accepted", bad)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := ParseInts("0, 1,2")
	if err != nil || len(got) != 3 || got[0] != 0 || got[2] != 2 {
		t.Errorf("ParseInts = %v, %v", got, err)
	}
	if out, err := ParseInts(""); err != nil || out != nil {
		t.Errorf("empty = %v, %v", out, err)
	}
	if _, err := ParseInts("1,x"); err == nil {
		t.Error("bad list accepted")
	}
}

func TestParseProtocol(t *testing.T) {
	cases := map[string]pdes.Protocol{
		"seq": pdes.ProtoSequential, "sequential": pdes.ProtoSequential,
		"cons": pdes.ProtoConservative, "conservative": pdes.ProtoConservative,
		"opt": pdes.ProtoOptimistic, "OPTIMISTIC": pdes.ProtoOptimistic,
		"mixed": pdes.ProtoMixed,
		"dyn":   pdes.ProtoDynamic, "dynamic": pdes.ProtoDynamic,
	}
	for in, want := range cases {
		got, err := ParseProtocol(in)
		if err != nil || got != want {
			t.Errorf("ParseProtocol(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseProtocol("warp9"); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestValidate(t *testing.T) {
	// Baseline options that pass validation, mutated per case below.
	base := func() Opts {
		return Opts{StallPolicy: "fail"}
	}
	cases := []struct {
		name    string
		mutate  func(*Opts)
		proto   pdes.Protocol
		wantErr string
	}{
		{"baseline ok", func(o *Opts) {}, pdes.ProtoDynamic, ""},
		{"empty stall policy ok", func(o *Opts) {
			o.StallPolicy = ""
		}, pdes.ProtoDynamic, ""},
		{"restore with kill-writes", func(o *Opts) {
			o.Restore = "ck"
			o.FaultKillWrites = 10
		}, pdes.ProtoDynamic, "-restore cannot be combined"},
		{"restore with die-sends", func(o *Opts) {
			o.Restore = "ck"
			o.FaultDieSends = 10
		}, pdes.ProtoDynamic, "-restore cannot be combined"},
		{"restore with mute-sends", func(o *Opts) {
			o.Restore = "ck"
			o.FaultMuteSends = 10
		}, pdes.ProtoDynamic, "-restore cannot be combined"},
		{"fabric fault under seq", func(o *Opts) {
			o.FaultDieSends = 10
		}, pdes.ProtoSequential, "needs a parallel protocol"},
		{"failover without checkpointing", func(o *Opts) {
			o.Failover = true
		}, pdes.ProtoDynamic, "-failover needs -checkpoint-rounds"},
		{"failover on a connect worker", func(o *Opts) {
			o.Failover = true
			o.CkptRounds = 1
			o.Connect = "host:1"
			o.Endpoints = 3
		}, pdes.ProtoDynamic, "controller's process"},
		{"failover under seq", func(o *Opts) {
			o.Failover = true
			o.CkptRounds = 1
		}, pdes.ProtoSequential, "needs a parallel protocol"},
		{"failover ok", func(o *Opts) {
			o.Failover = true
			o.CkptRounds = 1
		}, pdes.ProtoDynamic, ""},
		{"bad stall policy", func(o *Opts) {
			o.StallPolicy = "panic"
		}, pdes.ProtoDynamic, "-stall-policy"},
		{"negative stall timeout", func(o *Opts) {
			o.StallTimeout = -time.Second
		}, pdes.ProtoDynamic, "-stall-timeout"},
		{"negative mem budget", func(o *Opts) {
			o.MemBudget = -1
		}, pdes.ProtoDynamic, "-mem-budget"},
		{"distributed without endpoints", func(o *Opts) {
			o.Listen = ":0"
		}, pdes.ProtoDynamic, "-endpoints >= 2"},
		{"sharded ok", func(o *Opts) {
			o.Shards = 4
			o.Workers = 4
		}, pdes.ProtoDynamic, ""},
		{"sharded topo ok", func(o *Opts) {
			o.Shards = 8
			o.Workers = 4
			o.Partition = "topo"
		}, pdes.ProtoConservative, ""},
		{"partition without shards ok", func(o *Opts) {
			o.Partition = "rr"
			o.Workers = 2
		}, pdes.ProtoOptimistic, ""},
		{"negative shards", func(o *Opts) {
			o.Shards = -1
		}, pdes.ProtoDynamic, "-shards must be >= 0"},
		{"bad partition name", func(o *Opts) {
			o.Partition = "metis"
		}, pdes.ProtoDynamic, "-partition must be"},
		{"shards under seq", func(o *Opts) {
			o.Shards = 2
			o.Workers = 1
		}, pdes.ProtoSequential, "needs a parallel protocol"},
		{"shards with user ordering", func(o *Opts) {
			o.Shards = 2
			o.Workers = 1
			o.User = true
		}, pdes.ProtoDynamic, "-user"},
		{"shards with restore", func(o *Opts) {
			o.Shards = 2
			o.Restore = "ck"
		}, pdes.ProtoDynamic, "recorded in the checkpoint"},
		{"partition with restore", func(o *Opts) {
			o.Partition = "topo"
			o.Restore = "ck"
		}, pdes.ProtoDynamic, "recorded in the checkpoint"},
		{"more workers than shards", func(o *Opts) {
			o.Shards = 2
			o.Workers = 4
		}, pdes.ProtoDynamic, "-workers <= -shards"},
		{"more distributed workers than shards", func(o *Opts) {
			o.Shards = 2
			o.Workers = 1
			o.Listen = ":0"
			o.Endpoints = 4
		}, pdes.ProtoDynamic, "-workers <= -shards"},
		{"bad migrate policy", func(o *Opts) {
			o.MigratePolicy = "chaos"
		}, pdes.ProtoDynamic, "-migrate-policy must be"},
		{"migrate policy off ok", func(o *Opts) {
			o.MigratePolicy = "off"
		}, pdes.ProtoDynamic, ""},
		{"migrate without distributed run", func(o *Opts) {
			o.MigratePolicy = "balance"
		}, pdes.ProtoDynamic, "needs a distributed run"},
		{"on-death without distributed run", func(o *Opts) {
			o.MigratePolicy = "on-death"
			o.Failover = true
			o.CkptRounds = 1
		}, pdes.ProtoDynamic, "needs a distributed run"},
		{"migrate under seq", func(o *Opts) {
			o.MigratePolicy = "balance"
			o.Listen = ":0"
			o.Endpoints = 3
		}, pdes.ProtoSequential, "needs a parallel protocol"},
		{"balance ok", func(o *Opts) {
			o.MigratePolicy = "balance"
			o.Listen = ":0"
			o.Endpoints = 3
		}, pdes.ProtoDynamic, ""},
		{"balance on a connect worker ok", func(o *Opts) {
			o.MigratePolicy = "balance"
			o.Connect = "host:1"
			o.Endpoints = 3
		}, pdes.ProtoDynamic, ""},
		{"on-death without failover", func(o *Opts) {
			o.MigratePolicy = "on-death"
			o.Listen = ":0"
			o.Endpoints = 3
		}, pdes.ProtoDynamic, "needs -failover"},
		{"on-death ok", func(o *Opts) {
			o.MigratePolicy = "on-death"
			o.Listen = ":0"
			o.Endpoints = 3
			o.Failover = true
			o.CkptRounds = 1
		}, pdes.ProtoDynamic, ""},
		{"on-death with min-nodes ok", func(o *Opts) {
			o.MigratePolicy = "on-death"
			o.Listen = ":0"
			o.Endpoints = 4
			o.Failover = true
			o.CkptRounds = 1
			o.MinNodes = 2
		}, pdes.ProtoDynamic, ""},
		{"min-nodes without migrate policy", func(o *Opts) {
			o.MinNodes = 2
		}, pdes.ProtoDynamic, "-min-nodes needs -migrate-policy"},
		{"min-nodes with balance", func(o *Opts) {
			o.MigratePolicy = "balance"
			o.Listen = ":0"
			o.Endpoints = 3
			o.MinNodes = 2
		}, pdes.ProtoDynamic, "-min-nodes needs -migrate-policy"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			o := base()
			c.mutate(&o)
			err := o.Validate(c.proto)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error = %v, want substring %q", err, c.wantErr)
			}
		})
	}
}
