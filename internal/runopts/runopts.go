// Package runopts holds the run-option surface shared by the pvsim CLI and
// the govhdld server: the tunables both frontends expose, the semantic
// validation of their combinations, and the little parsers ("100ns",
// "0,1,2", protocol names) requests and flags have in common. Keeping the
// rules in one place means a flag combination pvsim rejects is rejected the
// same way — with the same message — when it arrives over HTTP.
package runopts

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"govhdl/internal/pdes"
	"govhdl/internal/vtime"
)

// Opts is the shared subset of run tunables. pvsim embeds it in its flag
// struct; govhdld populates it from a session request. Field names keep the
// "-flag" spelling in error messages, which both frontends expose verbatim.
type Opts struct {
	Top       string
	Circuit   string
	Protocol  string
	Workers   int
	Until     string
	Lookahead bool
	User      bool
	Throttle  string
	SaveEvery int

	Shards    int
	Partition string

	Listen    string
	Connect   string
	Endpoints int

	CkptRounds int
	Restore    string
	Failover   bool

	// MigratePolicy selects live LP migration at GVT rounds: "" or "off"
	// (none), "on-death" (a dead node's LPs migrate onto the survivors at
	// failover, with a full absorb only when too few nodes remain), or
	// "balance" (sustained load imbalance triggers rebalancing moves with a
	// cooldown). MinNodes is the minimum surviving node count for an
	// on-death distributed recovery; below it the run falls back to a full
	// local absorb.
	MigratePolicy string
	MinNodes      int

	StallTimeout time.Duration
	StallPolicy  string
	MemBudget    int64

	FaultKillWrites int
	FaultDieSends   int
	FaultMuteSends  int

	// Vet requests design lint (internal/vhdl/lint) instead of simulation;
	// VetStrict additionally makes warnings fatal. Callers treat VetStrict
	// as implying Vet.
	Vet       bool
	VetStrict bool
}

// Validate rejects option combinations whose semantics conflict, before any
// expensive work happens. Callers must apply the -checkpoint-file =>
// -checkpoint-rounds default first. An empty StallPolicy means "fail".
func (o *Opts) Validate(proto pdes.Protocol) error {
	if (o.Vet || o.VetStrict) && o.Circuit != "" {
		return fmt.Errorf("-vet analyzes VHDL source: it cannot be combined with -circuit (built-in circuits carry no VHDL to lint)")
	}
	fault := o.FaultKillWrites > 0 || o.FaultDieSends > 0 || o.FaultMuteSends > 0
	if o.Restore != "" && fault {
		return fmt.Errorf("-restore cannot be combined with -fault-* flags: a restored run must replay the saved cut faithfully, not inject fresh faults")
	}
	if (o.FaultDieSends > 0 || o.FaultMuteSends > 0) && proto == pdes.ProtoSequential {
		return fmt.Errorf("fabric fault injection needs a parallel protocol")
	}
	if o.Failover {
		if o.CkptRounds <= 0 {
			return fmt.Errorf("-failover needs -checkpoint-rounds (or -checkpoint-file): recovery resumes from the latest GVT-consistent cut")
		}
		if o.Connect != "" {
			return fmt.Errorf("-failover belongs on the controller's process (the -listen hub or a single process), not on a -connect worker")
		}
		if proto == pdes.ProtoSequential {
			return fmt.Errorf("-failover needs a parallel protocol")
		}
	}
	switch o.MigratePolicy {
	case "", "off":
		if o.MinNodes != 0 {
			return fmt.Errorf("-min-nodes needs -migrate-policy=on-death: it bounds when a death falls back to a full absorb")
		}
	case "on-death", "balance":
		if proto == pdes.ProtoSequential {
			return fmt.Errorf("-migrate-policy needs a parallel protocol")
		}
		if o.Listen == "" && o.Connect == "" {
			return fmt.Errorf("-migrate-policy=%s needs a distributed run (-listen or -connect): live LP migration moves state between cluster nodes", o.MigratePolicy)
		}
		if o.MigratePolicy == "on-death" {
			if o.Connect == "" && !o.Failover {
				return fmt.Errorf("-migrate-policy=on-death needs -failover on the controller process: the dead node's LPs migrate when recovery reruns from the latest cut")
			}
			if o.MinNodes < 0 {
				return fmt.Errorf("-min-nodes must be >= 0")
			}
		} else if o.MinNodes != 0 {
			return fmt.Errorf("-min-nodes needs -migrate-policy=on-death: it bounds when a death falls back to a full absorb")
		}
	default:
		return fmt.Errorf("-migrate-policy must be off, on-death or balance, got %q", o.MigratePolicy)
	}
	switch o.StallPolicy {
	case "", "fail", "force-opt":
	default:
		return fmt.Errorf("-stall-policy must be \"fail\" or \"force-opt\", got %q", o.StallPolicy)
	}
	if o.StallTimeout < 0 {
		return fmt.Errorf("-stall-timeout must be >= 0 (0 disables the watchdog)")
	}
	if o.MemBudget < 0 {
		return fmt.Errorf("-mem-budget must be >= 0 (0 = unbounded)")
	}
	if (o.Listen != "" || o.Connect != "") && o.Endpoints < 2 {
		return fmt.Errorf("distributed mode needs -endpoints >= 2")
	}
	if o.Shards < 0 {
		return fmt.Errorf("-shards must be >= 0 (0 disables sharding)")
	}
	if o.Partition != "" {
		switch strings.ToLower(o.Partition) {
		case "rr", "roundrobin", "round-robin", "block", "topo":
		default:
			return fmt.Errorf("-partition must be rr, block or topo, got %q", o.Partition)
		}
	}
	if o.Restore != "" && (o.Shards > 0 || o.Partition != "") {
		return fmt.Errorf("-shards/-partition are recorded in the checkpoint file; -restore derives them (drop the explicit flags)")
	}
	if o.Shards > 0 {
		if proto == pdes.ProtoSequential {
			return fmt.Errorf("-shards needs a parallel protocol (the sequential kernel already runs as one shard)")
		}
		if o.User {
			return fmt.Errorf("-shards cannot be combined with -user: user-consistent ordering is defined on member events, which shards interleave internally")
		}
		workers := o.Workers
		if o.Listen != "" || o.Connect != "" {
			workers = o.Endpoints - 1
		}
		if workers > o.Shards {
			return fmt.Errorf("%d workers for %d shards: each shard is owned by one worker, so use -workers <= -shards", workers, o.Shards)
		}
	}
	return nil
}

// ParseProtocol maps a protocol name ("seq", "cons", "opt", "mixed",
// "dynamic" and their long forms) onto the engine constant.
func ParseProtocol(s string) (pdes.Protocol, error) {
	switch strings.ToLower(s) {
	case "seq", "sequential":
		return pdes.ProtoSequential, nil
	case "cons", "conservative":
		return pdes.ProtoConservative, nil
	case "opt", "optimistic":
		return pdes.ProtoOptimistic, nil
	case "mixed":
		return pdes.ProtoMixed, nil
	case "dyn", "dynamic":
		return pdes.ProtoDynamic, nil
	}
	return 0, fmt.Errorf("unknown protocol %q", s)
}

// ParseTime parses "100ns", "2us", "1ms", "42" (bare femtoseconds).
func ParseTime(s string) (vtime.Time, error) {
	units := []struct {
		suffix string
		mult   vtime.Time
	}{
		{"sec", vtime.S}, {"ms", vtime.MS}, {"us", vtime.US},
		{"ns", vtime.NS}, {"ps", vtime.PS}, {"fs", vtime.FS},
	}
	for _, u := range units {
		if strings.HasSuffix(s, u.suffix) {
			n, err := strconv.ParseUint(strings.TrimSuffix(s, u.suffix), 10, 64)
			if err != nil {
				return 0, fmt.Errorf("bad time %q", s)
			}
			return vtime.Time(n) * u.mult, nil
		}
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad time %q (use e.g. 100ns)", s)
	}
	return vtime.Time(n), nil
}

// ParseInts parses a comma-separated integer list; "" is nil.
func ParseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, n)
	}
	return out, nil
}
