package netlist

import (
	"fmt"
	"math/rand"
	"testing"

	"govhdl/internal/kernel"
	"govhdl/internal/pdes"
	"govhdl/internal/stdlogic"
	"govhdl/internal/vtime"
)

func settle(t *testing.T, b *Builder, until vtime.Time) *kernel.Design {
	t.Helper()
	d := b.Design()
	if _, err := pdes.RunSequential(d.Build(), until, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	return d
}

func TestGateTruthTables(t *testing.T) {
	cases := []struct {
		name string
		add  func(b *Builder, out, x, y *kernel.Signal)
		fn   func(x, y bool) bool
	}{
		{"and", func(b *Builder, o, x, y *kernel.Signal) { b.And(o, x, y) }, func(x, y bool) bool { return x && y }},
		{"or", func(b *Builder, o, x, y *kernel.Signal) { b.Or(o, x, y) }, func(x, y bool) bool { return x || y }},
		{"nand", func(b *Builder, o, x, y *kernel.Signal) { b.Nand(o, x, y) }, func(x, y bool) bool { return !(x && y) }},
		{"nor", func(b *Builder, o, x, y *kernel.Signal) { b.Nor(o, x, y) }, func(x, y bool) bool { return !(x || y) }},
		{"xor", func(b *Builder, o, x, y *kernel.Signal) { b.Xor(o, x, y) }, func(x, y bool) bool { return x != y }},
		{"xnor", func(b *Builder, o, x, y *kernel.Signal) { b.Xnor(o, x, y) }, func(x, y bool) bool { return x == y }},
	}
	for _, c := range cases {
		for bits := 0; bits < 4; bits++ {
			xv, yv := bits&1 != 0, bits&2 != 0
			b := New("g", vtime.NS)
			x, y, o := b.Wire("x"), b.Wire("y"), b.Wire("o")
			c.add(b, o, x, y)
			b.DriveBus(Bus{x}, []VecStep{{Delay: vtime.NS, Value: boolU(xv)}})
			b.DriveBus(Bus{y}, []VecStep{{Delay: vtime.NS, Value: boolU(yv)}})
			d := settle(t, b, 20*vtime.NS)
			got := d.Effective(o).(stdlogic.Std)
			if stdlogic.IsHigh(got) != c.fn(xv, yv) || !stdlogic.Is01(got) {
				t.Errorf("%s(%v,%v) = %v", c.name, xv, yv, got)
			}
		}
	}
}

func boolU(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func TestRippleAdderExhaustive4Bit(t *testing.T) {
	for a := uint64(0); a < 16; a++ {
		for x := uint64(0); x < 16; x++ {
			b := New("add", vtime.NS)
			ab := b.NewBus("a", 4)
			xb := b.NewBus("x", 4)
			sum := b.NewBus("s", 4)
			cout := b.RippleAdder(sum, ab, xb, nil)
			b.DriveBus(ab, []VecStep{{Delay: vtime.NS, Value: a}})
			b.DriveBus(xb, []VecStep{{Delay: vtime.NS, Value: x}})
			d := settle(t, b, 100*vtime.NS)
			got, ok := BusValue(d, sum)
			if !ok {
				t.Fatalf("%d+%d: sum not settled", a, x)
			}
			co := stdlogic.IsHigh(d.Effective(cout).(stdlogic.Std))
			total := got
			if co {
				total += 16
			}
			if total != a+x {
				t.Errorf("%d+%d = %d (cout=%v), want %d", a, x, got, co, a+x)
			}
		}
	}
}

func TestRippleAdderRandom16Bit(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 10; i++ {
		a, x := uint64(rng.Intn(1<<16)), uint64(rng.Intn(1<<16))
		b := New("add16", vtime.NS)
		ab := b.NewBus("a", 16)
		xb := b.NewBus("x", 16)
		sum := b.NewBus("s", 16)
		b.RippleAdder(sum, ab, xb, nil)
		b.DriveBus(ab, []VecStep{{Delay: vtime.NS, Value: a}})
		b.DriveBus(xb, []VecStep{{Delay: vtime.NS, Value: x}})
		d := settle(t, b, 200*vtime.NS)
		got, ok := BusValue(d, sum)
		if !ok || got != (a+x)&0xffff {
			t.Errorf("%d+%d = %d ok=%v, want %d", a, x, got, ok, (a+x)&0xffff)
		}
	}
}

func TestArrayMultiplier(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := [][2]uint64{{0, 0}, {1, 1}, {15, 15}, {1, 9}, {8, 8}}
	for i := 0; i < 8; i++ {
		cases = append(cases, [2]uint64{uint64(rng.Intn(16)), uint64(rng.Intn(16))})
	}
	for _, c := range cases {
		b := New("mul", vtime.NS)
		ab := b.NewBus("a", 4)
		xb := b.NewBus("x", 4)
		p := b.ArrayMultiplier(ab, xb)
		if len(p) != 8 {
			t.Fatalf("product width %d", len(p))
		}
		b.DriveBus(ab, []VecStep{{Delay: vtime.NS, Value: c[0]}})
		b.DriveBus(xb, []VecStep{{Delay: vtime.NS, Value: c[1]}})
		d := settle(t, b, 400*vtime.NS)
		got, ok := BusValue(d, p)
		if !ok || got != c[0]*c[1] {
			t.Errorf("%d*%d = %d ok=%v, want %d", c[0], c[1], got, ok, c[0]*c[1])
		}
	}
}

func TestRegisterCapturesOnRisingEdge(t *testing.T) {
	b := New("reg", vtime.NS)
	clk := b.Clock("clk", 10*vtime.NS)
	din := b.NewBus("d", 4)
	q := b.NewBus("q", 4)
	b.Register(q, din, clk)
	// Data becomes 0b1010 at 15ns: the edge at 10ns must not see it, the
	// edge at 30ns must.
	b.DriveBus(din, []VecStep{{Delay: 15 * vtime.NS, Value: 0b1010}})
	d := settle(t, b, 45*vtime.NS)
	if got, ok := BusValue(d, q); !ok || got != 0b1010 {
		t.Fatalf("q = %d ok=%v, want 0b1010", got, ok)
	}

	b2 := New("reg2", vtime.NS)
	clk2 := b2.Clock("clk", 10*vtime.NS)
	din2 := b2.NewBus("d", 4)
	q2 := b2.NewBus("q", 4)
	b2.Register(q2, din2, clk2)
	b2.DriveBus(din2, []VecStep{{Delay: 15 * vtime.NS, Value: 0b1010}})
	d2 := settle(t, b2, 25*vtime.NS) // only the 10ns edge has happened
	if got, ok := BusValue(d2, q2); !ok || got != 0 {
		t.Fatalf("q after first edge = %d ok=%v, want 0", got, ok)
	}
}

func TestMux2(t *testing.T) {
	for _, sel := range []uint64{0, 1} {
		b := New("mux", vtime.NS)
		s, x, y, o := b.Wire("s"), b.Wire("x"), b.Wire("y"), b.Wire("o")
		b.Mux2(o, s, x, y)
		b.DriveBus(Bus{s}, []VecStep{{Delay: vtime.NS, Value: sel}})
		b.DriveBus(Bus{x}, []VecStep{{Delay: vtime.NS, Value: 0}})
		b.DriveBus(Bus{y}, []VecStep{{Delay: vtime.NS, Value: 1}})
		d := settle(t, b, 20*vtime.NS)
		got := d.Effective(o).(stdlogic.Std)
		want := sel == 1 // out = y when sel='1'
		if stdlogic.IsHigh(got) != want {
			t.Errorf("mux sel=%d -> %v", sel, got)
		}
	}
}

func TestLPCountsAreBipartite(t *testing.T) {
	b := New("count", vtime.NS)
	ab := b.NewBus("a", 8)
	xb := b.NewBus("x", 8)
	sum := b.NewBus("s", 8)
	b.RippleAdder(sum, ab, xb, nil)
	d := b.Design()
	if d.NumLPs() != d.NumSignals()+d.NumProcesses() {
		t.Error("LP count is not signals + processes")
	}
	// 8 full adders at 5 gates each.
	if d.NumProcesses() != 40 {
		t.Errorf("8-bit ripple adder has %d gate processes, want 40", d.NumProcesses())
	}
	t.Logf("8-bit adder: %d signals + %d processes = %d LPs",
		d.NumSignals(), d.NumProcesses(), d.NumLPs())
}

func TestAdderParallelConsistency(t *testing.T) {
	// One gate-level adder simulated under the dynamic protocol with 4
	// workers must settle to the same answer.
	b := New("addp", vtime.NS)
	ab := b.NewBus("a", 8)
	xb := b.NewBus("x", 8)
	sum := b.NewBus("s", 8)
	b.RippleAdder(sum, ab, xb, nil)
	b.DriveBus(ab, []VecStep{{Delay: vtime.NS, Value: 123}})
	b.DriveBus(xb, []VecStep{{Delay: vtime.NS, Value: 99}})
	d := b.Design()
	if _, err := pdes.Run(d.Build(), pdes.Config{
		Workers: 4, Protocol: pdes.ProtoDynamic, GVTEvery: 128,
	}, 200*vtime.NS, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got, ok := BusValue(d, sum); !ok || got != (123+99)&0xff {
		t.Fatalf("parallel sum = %d ok=%v, want %d", got, ok, (123+99)&0xff)
	}
}

func ExampleBuilder() {
	b := New("half-adder", vtime.NS)
	x, y := b.Wire("x"), b.Wire("y")
	sum, carry := b.Wire("sum"), b.Wire("carry")
	b.Xor(sum, x, y)
	b.And(carry, x, y)
	fmt.Println(b.Design().NumLPs(), "LPs")
	// Output: 6 LPs
}
