// Package netlist builds gate-level circuits on top of the kernel: gates,
// flip-flops, ripple-carry adders and array multipliers, the building blocks
// of the paper's gate-level IIR filter and DCT processor benchmarks. Every
// gate is one VHDL process, every wire one VHDL signal — each becomes a
// PDES LP, which is what produces the paper's LP counts.
package netlist

import (
	"fmt"

	"govhdl/internal/kernel"
	"govhdl/internal/stdlogic"
	"govhdl/internal/vtime"
)

// Builder incrementally constructs a gate-level design.
type Builder struct {
	design *kernel.Design
	delay  vtime.Time // inertial delay of every gate
	ffDel  vtime.Time // clock-to-Q delay of storage elements
	zeroW  *kernel.Signal
	oneW   *kernel.Signal
	n      int // anonymous name counter
}

// New returns a builder for a design whose gates all have the given
// inertial delay (zero models ideal delta-delay logic, as in the paper's
// FSM benchmark).
func New(name string, gateDelay vtime.Time) *Builder {
	return &Builder{design: kernel.NewDesign(name), delay: gateDelay, ffDel: gateDelay}
}

// Design returns the underlying kernel design.
func (b *Builder) Design() *kernel.Design { return b.design }

// GateDelay returns the configured gate delay.
func (b *Builder) GateDelay() vtime.Time { return b.delay }

// SetDelay changes the inertial delay applied to gates created after the
// call, and the min-delay lookahead hint of wires declared after it (a
// wire's hint must not overstate its driver's delay, so declare each wire
// while the delay of the gate that will drive it is in effect). The
// clock-to-Q delay of storage elements stays as configured at New.
func (b *Builder) SetDelay(d vtime.Time) { b.delay = d }

func (b *Builder) autoName(prefix string) string {
	b.n++
	return fmt.Sprintf("%s%d", prefix, b.n)
}

// Wire declares a std_logic signal initialized to '0'.
func (b *Builder) Wire(name string) *kernel.Signal {
	if name == "" {
		name = b.autoName("w")
	}
	opts := []kernel.SignalOpt{}
	if b.delay > 0 {
		opts = append(opts, kernel.WithMinDelay(b.delay))
	}
	return b.design.AddSignal(name, stdlogic.L0, opts...)
}

// Bus is an ordered set of wires; index 0 is the MSB, matching
// stdlogic.Vec layout.
type Bus []*kernel.Signal

// NewBus declares width wires named name[width-1] .. name[0].
func (b *Builder) NewBus(name string, width int) Bus {
	bus := make(Bus, width)
	for i := 0; i < width; i++ {
		bus[i] = b.Wire(fmt.Sprintf("%s[%d]", name, width-1-i))
	}
	return bus
}

// gate adds one combinational process computing out from ins.
func (b *Builder) gate(kind string, out *kernel.Signal, eval func([]stdlogic.Std) stdlogic.Std, ins ...*kernel.Signal) {
	delay := b.delay
	nin := len(ins)
	behavior := kernel.NewComb(nin, func(c *kernel.ProcCtx) {
		vals := make([]stdlogic.Std, nin)
		for i := range vals {
			vals[i] = c.Std(i)
		}
		c.Assign(0, eval(vals), delay)
	})
	b.design.AddProcess(b.autoName(kind), behavior, ins, []*kernel.Signal{out},
		kernel.WithProcClass(kernel.ClassComb))
}

func reduce(f func(a, b stdlogic.Std) stdlogic.Std) func([]stdlogic.Std) stdlogic.Std {
	return func(vals []stdlogic.Std) stdlogic.Std {
		r := vals[0]
		for _, v := range vals[1:] {
			r = f(r, v)
		}
		return r
	}
}

// Not adds an inverter.
func (b *Builder) Not(out, in *kernel.Signal) {
	b.gate("not", out, func(v []stdlogic.Std) stdlogic.Std { return stdlogic.Not(v[0]) }, in)
}

// Buf adds a buffer.
func (b *Builder) Buf(out, in *kernel.Signal) {
	b.gate("buf", out, func(v []stdlogic.Std) stdlogic.Std { return v[0] }, in)
}

// And adds an AND gate.
func (b *Builder) And(out *kernel.Signal, ins ...*kernel.Signal) {
	b.gate("and", out, reduce(stdlogic.And), ins...)
}

// Or adds an OR gate.
func (b *Builder) Or(out *kernel.Signal, ins ...*kernel.Signal) {
	b.gate("or", out, reduce(stdlogic.Or), ins...)
}

// Nand adds a NAND gate.
func (b *Builder) Nand(out *kernel.Signal, ins ...*kernel.Signal) {
	b.gate("nand", out, func(v []stdlogic.Std) stdlogic.Std {
		return stdlogic.Not(reduce(stdlogic.And)(v))
	}, ins...)
}

// Nor adds a NOR gate.
func (b *Builder) Nor(out *kernel.Signal, ins ...*kernel.Signal) {
	b.gate("nor", out, func(v []stdlogic.Std) stdlogic.Std {
		return stdlogic.Not(reduce(stdlogic.Or)(v))
	}, ins...)
}

// Xor adds an XOR gate.
func (b *Builder) Xor(out *kernel.Signal, ins ...*kernel.Signal) {
	b.gate("xor", out, reduce(stdlogic.Xor), ins...)
}

// Xnor adds an XNOR gate.
func (b *Builder) Xnor(out *kernel.Signal, ins ...*kernel.Signal) {
	b.gate("xnor", out, func(v []stdlogic.Std) stdlogic.Std {
		return stdlogic.Not(reduce(stdlogic.Xor)(v))
	}, ins...)
}

// Mux2 adds a 2:1 multiplexer: out = a when sel='0' else d.
func (b *Builder) Mux2(out, sel, a, d *kernel.Signal) {
	b.gate("mux", out, func(v []stdlogic.Std) stdlogic.Std {
		switch {
		case stdlogic.IsLow(v[0]):
			return v[1]
		case stdlogic.IsHigh(v[0]):
			return v[2]
		default:
			return stdlogic.X
		}
	}, sel, a, d)
}

// Clock adds a clock generator driving a new signal with the given half
// period. Clock nets are tagged for the paper's mixed heuristic.
func (b *Builder) Clock(name string, half vtime.Time) *kernel.Signal {
	clk := b.design.AddSignal(name, stdlogic.L0, kernel.WithSignalClass(kernel.ClassClock))
	b.design.AddProcess(b.autoName("clkgen"), &kernel.ClockGen{Half: half},
		nil, []*kernel.Signal{clk}, kernel.WithProcClass(kernel.ClassClock))
	return clk
}

// DFF adds a rising-edge D flip-flop: q <= d after the clock-to-Q delay.
// Register processes and their outputs are tagged for the mixed heuristic.
func (b *Builder) DFF(q, d, clk *kernel.Signal) {
	q.Class = kernel.ClassRegister
	b.design.AddProcess(b.autoName("dff"), &kernel.Reg{Delay: b.ffDel, NumData: 1},
		[]*kernel.Signal{clk, d}, []*kernel.Signal{q},
		kernel.WithProcClass(kernel.ClassRegister))
}

// Register adds one DFF per bit: q <= d on the rising edge of clk.
func (b *Builder) Register(q, d Bus, clk *kernel.Signal) {
	if len(q) != len(d) {
		panic("netlist: register width mismatch")
	}
	for i := range q {
		b.DFF(q[i], d[i], clk)
	}
}

// FullAdder adds sum = a xor d xor cin, cout = majority(a, d, cin) built
// from five gates, the classic two-half-adder structure.
func (b *Builder) FullAdder(sum, cout, a, d, cin *kernel.Signal) {
	x1 := b.Wire("")
	a1 := b.Wire("")
	a2 := b.Wire("")
	b.Xor(x1, a, d)
	b.Xor(sum, x1, cin)
	b.And(a1, x1, cin)
	b.And(a2, a, d)
	b.Or(cout, a1, a2)
}

// RippleAdder adds sum = a + d + cin over equal-width buses (MSB first),
// returning the carry-out wire.
func (b *Builder) RippleAdder(sum, a, d Bus, cin *kernel.Signal) (cout *kernel.Signal) {
	if len(sum) != len(a) || len(a) != len(d) {
		panic("netlist: adder width mismatch")
	}
	n := len(a)
	carry := cin
	if carry == nil {
		carry = b.Wire("") // undriven '0'
	}
	for i := n - 1; i >= 0; i-- { // LSB (index n-1) first
		next := b.Wire("")
		b.FullAdder(sum[i], next, a[i], d[i], carry)
		carry = next
	}
	return carry
}

// ArrayMultiplier builds p = a * d (unsigned) from an AND array plus a
// cascade of ripple adders and returns the product bus, len(a)+len(d) wide
// (MSB first).
func (b *Builder) ArrayMultiplier(a, d Bus) Bus {
	n, m := len(a), len(d)
	w := n + m
	// ppRow returns partial product j: (a AND d_j) << j, where d_j is the
	// j-th least significant bit of d. Positions count from the LSB.
	ppRow := func(j int) Bus {
		dj := d[m-1-j]
		row := make(Bus, w)
		for pos := 0; pos < w; pos++ {
			idx := w - 1 - pos
			if pos >= j && pos <= j+n-1 {
				row[idx] = b.Wire("")
				b.And(row[idx], a[n-1-(pos-j)], dj)
			} else {
				row[idx] = b.zero()
			}
		}
		return row
	}
	acc := ppRow(0)
	for j := 1; j < m; j++ {
		next := make(Bus, w)
		for i := range next {
			next[i] = b.Wire("")
		}
		b.RippleAdder(next, acc, ppRow(j), nil)
		acc = next
	}
	return acc
}

// zero returns the builder's shared constant-'0' wire (an undriven signal
// holds its initial value and never produces events).
func (b *Builder) zero() *kernel.Signal {
	if b.zeroW == nil {
		b.zeroW = b.Wire("const0")
	}
	return b.zeroW
}

// VecStimulus drives a bus from a schedule of (delay, value) pairs, one
// stimulus process per bit sharing the schedule.
type VecStep struct {
	Delay vtime.Time
	Value uint64
}

// DriveBus adds stimulus processes that apply the unsigned values in steps
// to the bus.
func (b *Builder) DriveBus(bus Bus, steps []VecStep) {
	w := len(bus)
	for i, sig := range bus {
		bit := uint(w - 1 - i)
		var s []kernel.Step
		for _, st := range steps {
			s = append(s, kernel.Step{Delay: st.Delay, Port: 0, Value: stdlogic.FromBool(st.Value&(1<<bit) != 0)})
		}
		b.design.AddProcess(b.autoName("stim"), &kernel.Stimulus{Steps: s},
			nil, []*kernel.Signal{sig}, kernel.WithProcClass(kernel.ClassStimulus))
	}
}

// BusValue reads a bus's current effective values as an unsigned integer.
// The second result is false while any wire is not a clean 0/1.
func BusValue(d *kernel.Design, bus Bus) (uint64, bool) {
	var x uint64
	for _, sig := range bus {
		v, ok := d.Effective(sig).(stdlogic.Std)
		if !ok {
			return 0, false
		}
		x <<= 1
		switch {
		case stdlogic.IsHigh(v):
			x |= 1
		case stdlogic.IsLow(v):
		default:
			return 0, false
		}
	}
	return x, true
}

// Const declares a constant std_logic wire: an undriven signal holding its
// initial value forever.
func (b *Builder) Const(name string, v stdlogic.Std) *kernel.Signal {
	if name == "" {
		name = b.autoName("const")
	}
	return b.design.AddSignal(name, v)
}

// One returns the builder's shared constant-'1' wire.
func (b *Builder) One() *kernel.Signal {
	if b.oneW == nil {
		b.oneW = b.Const("const1", stdlogic.L1)
	}
	return b.oneW
}

// Zero returns the builder's shared constant-'0' wire.
func (b *Builder) Zero() *kernel.Signal { return b.zero() }

// ConstBus returns a bus of shared constant wires spelling val (MSB first).
func (b *Builder) ConstBus(val uint64, width int) Bus {
	bus := make(Bus, width)
	for i := 0; i < width; i++ {
		if val&(1<<uint(width-1-i)) != 0 {
			bus[i] = b.One()
		} else {
			bus[i] = b.zero()
		}
	}
	return bus
}

// NotBus adds per-bit inverters and returns the inverted bus.
func (b *Builder) NotBus(in Bus) Bus {
	out := make(Bus, len(in))
	for i, s := range in {
		out[i] = b.Wire("")
		b.Not(out[i], s)
	}
	return out
}

// Subtractor adds diff = a - d (two's complement: a + ^d + 1) over
// equal-width buses.
func (b *Builder) Subtractor(diff, a, d Bus) {
	b.RippleAdder(diff, a, b.NotBus(d), b.One())
}
