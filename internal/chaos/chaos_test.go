package chaos

import (
	"encoding/json"
	"testing"
	"time"

	"govhdl/internal/circuits"
)

// small returns soak options sized for unit tests: a few hundred LPs, a
// short horizon, two workers.
func small(seed uint64) Options {
	return Options{Seed: seed, LPs: 400, Cycles: 4, Workers: 2}
}

// The schedule is a pure function of (seed, options): byte-identical JSON
// for the same inputs, different leg plans for different seeds.
func TestScheduleDeterministicBySeed(t *testing.T) {
	opts := small(7)
	a, _ := json.Marshal(NewSchedule(opts))
	b, _ := json.Marshal(NewSchedule(opts))
	if string(a) != string(b) {
		t.Fatalf("same seed derived different schedules:\n%s\n%s", a, b)
	}
	c, _ := json.Marshal(NewSchedule(small(8)))
	if string(a) == string(c) {
		t.Fatalf("different seeds derived the same schedule")
	}
}

// Every leg of the default mix must be derivable, and leg 0 is always the
// fault-free baseline.
func TestScheduleCoversEnabledFamilies(t *testing.T) {
	opts := small(3)
	opts.Legs = 16
	opts.CheckpointDir = t.TempDir()
	s := NewSchedule(opts)
	if s.Legs[0].Kind != LegBaseline {
		t.Fatalf("leg 0 is %v, want the baseline", s.Legs[0].Kind)
	}
	seen := map[LegKind]bool{}
	for _, l := range s.Legs {
		seen[l.Kind] = true
	}
	for _, k := range []LegKind{LegKill, LegDelay, LegStorm, LegSqueeze, LegCheckpoint, LegPartition, LegMute} {
		if !seen[k] {
			t.Errorf("16 legs with every family enabled never scheduled %v", k)
		}
	}
}

// soak runs a targeted soak with exactly one fault family enabled, so the
// second leg's kind is forced, and returns that leg's result.
func soak(t *testing.T, opts Options) (*Verdict, LegResult) {
	t.Helper()
	opts.Legs = 2
	v, err := Run(opts)
	if err != nil {
		t.Fatalf("soak harness: %v", err)
	}
	for _, l := range v.Legs {
		if l.Err != "" {
			t.Logf("leg %d (%s): %s", l.Index, l.Name, l.Err)
		}
	}
	return v, v.Legs[1]
}

func TestSoakKillLegFailsOverAndMatchesOracle(t *testing.T) {
	opts := small(11)
	opts.Cycles = 6
	opts.Kills = true
	v, leg := soak(t, opts)
	if !v.Ok {
		t.Fatalf("kill soak verdict not ok: %+v", v.Legs)
	}
	if leg.Failovers != 1 {
		t.Fatalf("kill leg recorded %d failovers, want 1", leg.Failovers)
	}
	if leg.Records != v.OracleRecords {
		t.Fatalf("kill leg committed %d records, oracle has %d", leg.Records, v.OracleRecords)
	}
}

func TestSoakStormLegMigratesExactlyAsPlanned(t *testing.T) {
	opts := small(5)
	opts.Storms = true
	v, leg := soak(t, opts)
	if !v.Ok {
		t.Fatalf("storm soak verdict not ok: %+v", v.Legs)
	}
	if leg.Migrations == 0 || leg.Migrations != uint64(NewSchedule(opts).Legs[1].StormTotal) {
		t.Fatalf("storm leg migrated %d LPs, schedule planned %d",
			leg.Migrations, NewSchedule(opts).Legs[1].StormTotal)
	}
}

func TestSoakCheckpointLegRecoversFromPreviousGeneration(t *testing.T) {
	opts := small(9)
	opts.Checkpoints = true
	opts.CheckpointDir = t.TempDir()
	v, leg := soak(t, opts)
	if !v.Ok {
		t.Fatalf("checkpoint soak verdict not ok: %+v", v.Legs)
	}
	if leg.CkptGens < 2 {
		t.Fatalf("lineage accumulated only %d generations", leg.CkptGens)
	}
	if leg.RestoredFrom == "" {
		t.Fatalf("corrupt-latest drill did not record the generation it recovered from")
	}
}

func TestSoakStallLegTripsWatchdogWithPartialTrace(t *testing.T) {
	opts := small(13)
	opts.Partitions = true
	opts.StallTimeout = 2 * time.Second
	v, leg := soak(t, opts)
	if !v.Ok {
		t.Fatalf("stall soak verdict not ok: %+v", v.Legs)
	}
	if !leg.Stalled {
		t.Fatalf("designed-stall leg did not record a stall verdict: %+v", leg)
	}
}

// Two runs of the same seed must agree on everything the schedule
// determines: leg kinds, protocols, sharding, storm budgets, and — because
// every successful leg's trace is byte-compared to the same oracle — the
// committed record counts.
func TestSoakReproducibleBySeed(t *testing.T) {
	opts := small(21)
	opts.Legs = 3
	opts.Storms = true
	opts.Delays = true
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Ok || !b.Ok {
		t.Fatalf("soak verdicts not ok: %+v / %+v", a.Legs, b.Legs)
	}
	if a.OracleRecords != b.OracleRecords || a.LPs != b.LPs {
		t.Fatalf("oracle differs across runs: %d/%d records, %d/%d LPs",
			a.OracleRecords, b.OracleRecords, a.LPs, b.LPs)
	}
	for i := range a.Legs {
		la, lb := a.Legs[i], b.Legs[i]
		if la.Name != lb.Name || la.Protocol != lb.Protocol || la.Shards != lb.Shards ||
			la.Records != lb.Records || la.Migrations != lb.Migrations {
			t.Fatalf("leg %d differs across runs of one seed:\n%+v\n%+v", i, la, lb)
		}
	}
}

// The oracle must gate the verdict: a leg whose committed trace does not
// match the reference trace fails, and so does the soak.
func TestOracleGatesOnTraceMismatch(t *testing.T) {
	opts := small(17)
	opts.Delays = true
	opts.fill()
	sched := NewSchedule(opts)
	// Real circuit and horizon so the run itself succeeds and only the
	// trace comparison can fail.
	horizon := circuits.BuildRandom(sched.Circuit).DefaultHorizon
	lr := &legRun{opts: opts, sched: sched, horizon: horizon, oracle: []string{"bogus record"}}
	r := lr.runLeg(&sched.Legs[0])
	if r.Ok {
		t.Fatalf("a baseline leg passed against a bogus oracle")
	}
	if r.Err == "" {
		t.Fatalf("failed leg carries no diagnosis")
	}
}

func TestContainment(t *testing.T) {
	lr := &legRun{oracle: []string{"a", "b", "b", "c"}}
	if d := lr.containedInOracle([]string{"a", "b", "c"}); d != "" {
		t.Fatalf("valid subset rejected: %s", d)
	}
	if d := lr.containedInOracle([]string{"b", "b", "b"}); d == "" {
		t.Fatalf("multiset overflow accepted")
	}
	if d := lr.containedInOracle([]string{"z"}); d == "" {
		t.Fatalf("foreign record accepted")
	}
}
