package chaos

import (
	"errors"
	"fmt"
	"path/filepath"

	"govhdl/internal/circuits"
	"govhdl/internal/ckptio"
	"govhdl/internal/faultinject"
	"govhdl/internal/pdes"
	"govhdl/internal/supervise"
	"govhdl/internal/trace"
	"govhdl/internal/transport"
	"govhdl/internal/vtime"
)

// LegResult is one leg's outcome plus the counters the oracle checked.
type LegResult struct {
	Index    int    `json:"index"`
	Name     string `json:"name"`
	Protocol string `json:"protocol"`
	Shards   int    `json:"shards"`
	Ok       bool   `json:"ok"`
	Err      string `json:"error,omitempty"`

	// Records is the committed record count; on successful legs it equals
	// the oracle's and is therefore seed-deterministic.
	Records   int  `json:"records"`
	Failovers int  `json:"failovers"`
	Stalled   bool `json:"stalled,omitempty"`

	Events       uint64 `json:"events"`
	Rollbacks    uint64 `json:"rollbacks"`
	GVTRounds    uint64 `json:"gvt_rounds"`
	Migrations   uint64 `json:"migrations"`
	Forwarded    uint64 `json:"forwarded"`
	LateForwards uint64 `json:"late_forwards,omitempty"`
	MemThrottled uint64 `json:"mem_throttled,omitempty"`

	// Checkpoint-churn legs: how many generations the lineage accumulated
	// and which generation the corrupt-latest drill recovered from.
	CkptGens     int    `json:"ckpt_generations,omitempty"`
	RestoredFrom string `json:"restored_from,omitempty"`
}

// Verdict is the soak's machine-readable outcome.
type Verdict struct {
	Seed          uint64      `json:"seed"`
	Circuit       string      `json:"circuit"`
	LPs           int         `json:"lps"`
	Workers       int         `json:"workers"`
	OracleRecords int         `json:"oracle_records"`
	SeqVerify     string      `json:"seq_verify_error,omitempty"`
	Legs          []LegResult `json:"legs"`
	Ok            bool        `json:"ok"`
}

// legRun carries the per-soak context every leg shares: the schedule, the
// horizon, and the sequential oracle's rendered trace.
type legRun struct {
	opts   Options
	sched  *Schedule
	horizon vtime.Time
	oracle []string // sequential trace in deterministic (TS, LP, item) order
}

// Run executes the soak: derive the schedule, run the sequential oracle
// once, then run every leg and its invariant checks. The returned error is
// reserved for harness failures (the oracle itself failing to run); fault
// findings land in the Verdict with Ok=false.
func Run(opts Options) (*Verdict, error) {
	opts.fill()
	sched := NewSchedule(opts)
	transport.RegisterGob() // checkpoints gob-encode event payloads and trace items

	c := circuits.BuildRandom(sched.Circuit)
	horizon := c.DefaultHorizon
	oracleSys := c.Design.Build()
	oracleRec := trace.NewRecorder()
	if _, err := pdes.RunSequential(oracleSys, horizon, oracleRec); err != nil {
		return nil, fmt.Errorf("chaos: sequential oracle: %w", err)
	}

	v := &Verdict{
		Seed:          sched.Seed,
		Circuit:       c.Name,
		LPs:           c.LPs(),
		Workers:       sched.Workers,
		OracleRecords: oracleRec.Len(),
		Ok:            true,
	}
	if err := c.Verify(horizon); err != nil {
		v.SeqVerify = err.Error()
		v.Ok = false
	}

	lr := &legRun{opts: opts, sched: sched, horizon: horizon, oracle: oracleRec.Lines(oracleSys)}
	for i := range sched.Legs {
		res := lr.runLeg(&sched.Legs[i])
		if !res.Ok {
			v.Ok = false
		}
		v.Legs = append(v.Legs, res)
	}
	return v, nil
}

// attemptOut is what one engine attempt produced: the run result, the
// rendered committed trace, the circuit (for Verify), and the first GVT
// monotonicity violation observed, if any.
type attemptOut struct {
	res    *pdes.Result
	lines  []string
	circ   *circuits.Circuit
	gvtErr string
}

// baseCfg is the leg's engine configuration before fault- and
// checkpoint-specific fields.
func (lr *legRun) baseCfg(leg *Leg) pdes.Config {
	return pdes.Config{
		Workers:   lr.sched.Workers,
		Protocol:  leg.Protocol,
		GVTEvery:  leg.GVTEvery,
		MemBudget: leg.MemBudget,
	}
}

// planActive reports whether the leg injects any fabric fault.
func planActive(p faultinject.Plan) bool {
	return p.DieAfterSends > 0 || p.MuteAfterSends > 0 ||
		p.SendDelayProb > 0 || p.PartitionAfterSends > 0
}

// runOnce builds a fresh instance of the seed's circuit and runs one engine
// attempt of the leg over a local fabric, fault-wrapped when faulted is set.
// The GVT monotonicity invariant is checked inline via Config.OnGVT.
func (lr *legRun) runOnce(leg *Leg, cfg pdes.Config, faulted bool) (*attemptOut, error) {
	c := circuits.BuildRandom(lr.sched.Circuit)
	sys := c.Design.Build()
	rec := trace.NewRecorder()
	runSys, sink := sys, pdes.TraceSink(rec)
	if leg.Shards > 0 {
		ss, err := pdes.ShardSystem(sys, leg.Shards, pdes.PartitionTopo)
		if err != nil {
			return nil, err
		}
		runSys = ss.Sys()
		sink = ss.WrapSink(rec)
	}

	// Storm legs need GVT rounds to happen while the run is still in
	// flight: unbounded optimism can reach the horizon inside a single
	// round, starving the planner. One clock period of throttle forces a
	// round cadence without changing any committed outcome.
	if leg.StormTotal > 0 && cfg.ThrottleWindow == 0 {
		cfg.ThrottleWindow = 2 * c.ClockHalf
	}

	out := &attemptOut{circ: c}
	var last vtime.VT
	cfg.OnGVT = func(gvt vtime.VT) {
		if gvt.Less(last) && out.gvtErr == "" {
			out.gvtErr = fmt.Sprintf("GVT went backwards: %v after %v", gvt, last)
		}
		last = gvt
	}
	eps := pdes.NewLocalFabric(cfg.Workers + 1)
	if faulted && planActive(leg.Plan) {
		eps, _ = faultinject.WrapFabric(eps, leg.Plan)
	}
	res, err := pdes.RunOn(runSys, cfg, lr.horizon, sink, eps)
	out.res = res
	out.lines = rec.Lines(sys)
	return out, err
}

// fillCounters copies an attempt's metrics into the leg result.
func fillCounters(r *LegResult, res *pdes.Result) {
	if res == nil {
		return
	}
	r.Events = res.Metrics.Events
	r.Rollbacks = res.Metrics.Rollbacks
	r.GVTRounds = res.Metrics.GVTRounds
	r.Migrations = res.Metrics.Migrations
	r.Forwarded = res.Metrics.ForwardedMsgs
	r.LateForwards = res.Metrics.LateForwards
	r.MemThrottled = res.Metrics.MemThrottled
}

// diffOracle requires the committed trace to be byte-identical to the
// sequential oracle; it returns "" on match or the first difference.
func (lr *legRun) diffOracle(lines []string) string {
	if len(lines) != len(lr.oracle) {
		return fmt.Sprintf("committed %d records, oracle has %d", len(lines), len(lr.oracle))
	}
	for i := range lines {
		if lines[i] != lr.oracle[i] {
			return fmt.Sprintf("record %d differs:\n  got:    %s\n  oracle: %s", i, lines[i], lr.oracle[i])
		}
	}
	return ""
}

// containedInOracle requires every committed record of an aborted run to
// appear in the oracle (multiset containment; both sides are in the same
// deterministic sort order, so a linear scan suffices).
func (lr *legRun) containedInOracle(lines []string) string {
	j := 0
	for _, s := range lines {
		for j < len(lr.oracle) && lr.oracle[j] != s {
			j++
		}
		if j >= len(lr.oracle) {
			return fmt.Sprintf("committed record not in the oracle: %s", s)
		}
		j++
	}
	return ""
}

// checkSuccess runs the full post-success oracle on a leg: trace identity,
// GVT monotonicity, reference-model verification, and counter consistency
// with the schedule.
func (lr *legRun) checkSuccess(leg *Leg, r *LegResult, out *attemptOut, emitted int) {
	fillCounters(r, out.res)
	r.Records = len(out.lines)
	if d := lr.diffOracle(out.lines); d != "" {
		r.Err = "trace: " + d
		return
	}
	if out.gvtErr != "" {
		r.Err = out.gvtErr
		return
	}
	if err := out.circ.Verify(lr.horizon); err != nil {
		r.Err = "reference model: " + err.Error()
		return
	}
	if leg.StormTotal > 0 {
		if emitted != leg.StormTotal {
			r.Err = fmt.Sprintf("storm planner emitted %d moves, schedule planned %d", emitted, leg.StormTotal)
			return
		}
		if r.Migrations != uint64(leg.StormTotal) {
			r.Err = fmt.Sprintf("Migrations = %d, schedule planned %d moves", r.Migrations, leg.StormTotal)
			return
		}
	} else {
		if r.Migrations != 0 {
			r.Err = fmt.Sprintf("Migrations = %d on a leg whose schedule planned none", r.Migrations)
			return
		}
		if r.Forwarded != 0 {
			r.Err = fmt.Sprintf("ForwardedMsgs = %d with no migration in the schedule", r.Forwarded)
			return
		}
	}
	r.Ok = true
}

func (lr *legRun) runLeg(leg *Leg) LegResult {
	r := LegResult{Index: leg.Index, Name: leg.Name, Protocol: leg.Proto, Shards: leg.Shards}
	switch {
	case leg.ExpectKills > 0:
		lr.runKillLeg(leg, &r)
	case leg.ExpectStall:
		lr.runStallLeg(leg, &r)
	case leg.Checkpoint:
		lr.runCheckpointLeg(leg, &r)
	default:
		lr.runPlainLeg(leg, &r)
	}
	return r
}

// runPlainLeg covers baseline, delay, storm, storm+delay and memory-squeeze
// legs: one attempt, full success oracle.
func (lr *legRun) runPlainLeg(leg *Leg, r *LegResult) {
	cfg := lr.baseCfg(leg)
	emitted := new(int)
	if leg.StormTotal > 0 {
		cfg.Migrate, emitted = stormPlanner(leg.StormSeed, leg.StormTotal)
	}
	out, err := lr.runOnce(leg, cfg, true)
	if err != nil {
		r.Err = err.Error()
		return
	}
	lr.checkSuccess(leg, r, out, *emitted)
}

// runKillLeg runs the supervised failover loop: attempt 0 dies of the
// scheduled fabric fault, recovery resumes from the latest in-memory
// checkpoint cut, and the attempt log must converge after exactly the
// scheduled number of failovers with the oracle trace intact.
func (lr *legRun) runKillLeg(leg *Leg, r *LegResult) {
	sup := &supervise.Supervisor{}
	var final *attemptOut
	_, err := sup.Run(func(attempt int, restore *pdes.Checkpoint) (*pdes.Result, error) {
		cfg := lr.baseCfg(leg)
		cfg.CheckpointRounds = 1
		cfg.CheckpointSink = func(ck *pdes.Checkpoint) error {
			sup.Checkpoint(ck)
			return nil
		}
		cfg.Restore = restore
		out, rerr := lr.runOnce(leg, cfg, attempt == 0)
		if out == nil {
			return nil, rerr
		}
		final = out
		return out.res, rerr
	})
	if err != nil {
		r.Err = err.Error()
		if final != nil {
			fillCounters(r, final.res)
		}
		return
	}
	failovers := 0
	for _, a := range sup.Log() {
		if a.Err != "" {
			failovers++
		}
	}
	r.Failovers = failovers
	if failovers != leg.ExpectKills {
		r.Err = fmt.Sprintf("recovery log shows %d failovers, schedule injected %d kills", failovers, leg.ExpectKills)
		fillCounters(r, final.res)
		return
	}
	lr.checkSuccess(leg, r, final, 0)
}

// runStallLeg runs a designed-stall leg: the scheduled partition or mute
// must trip the stall watchdog (never complete, never crash some other
// way), and whatever the run committed before aborting must be a subset of
// the oracle — an aborted run may be behind, never wrong.
func (lr *legRun) runStallLeg(leg *Leg, r *LegResult) {
	cfg := lr.baseCfg(leg)
	cfg.StallTimeout = lr.opts.StallTimeout
	cfg.StallPolicy = pdes.StallFail
	out, err := lr.runOnce(leg, cfg, true)
	if out != nil {
		fillCounters(r, out.res)
		r.Records = len(out.lines)
	}
	if err == nil {
		r.Err = "designed stall completed instead of tripping the watchdog"
		return
	}
	var se *pdes.SimError
	if !errors.As(err, &se) || !se.Stall {
		r.Err = fmt.Sprintf("designed stall died of %q, want a stall-watchdog verdict", err)
		return
	}
	r.Stalled = true
	if out.gvtErr != "" {
		r.Err = out.gvtErr
		return
	}
	if d := lr.containedInOracle(out.lines); d != "" {
		r.Err = d
		return
	}
	r.Ok = true
}

// runCheckpointLeg exercises the crash-consistent lineage end to end: a
// checkpointed run accumulates generations on disk, the newest generation
// is deliberately corrupted, recovery must fall back to the previous
// generation, and the restored rerun must still produce the oracle trace.
func (lr *legRun) runCheckpointLeg(leg *Leg, r *LegResult) {
	if lr.opts.CheckpointDir == "" {
		r.Err = "checkpoint leg scheduled without a CheckpointDir"
		return
	}
	path := filepath.Join(lr.opts.CheckpointDir,
		fmt.Sprintf("soak-%d-leg%d.gvcp", lr.sched.Seed, leg.Index))

	gens := 0
	cfg := lr.baseCfg(leg)
	cfg.CheckpointRounds = 1
	cfg.CheckpointSink = func(ck *pdes.Checkpoint) error {
		gens++
		return ckptio.Write(path, 3, &ckptio.File{Ckpt: ck, Shards: leg.Shards, Partition: "topo"})
	}
	out, err := lr.runOnce(leg, cfg, false)
	if err != nil {
		r.Err = err.Error()
		return
	}
	r.CkptGens = gens
	if gens < 2 {
		r.Err = fmt.Sprintf("only %d checkpoint generations were cut; the fallback drill needs a lineage", gens)
		return
	}
	if d := lr.diffOracle(out.lines); d != "" {
		r.Err = "primary trace: " + d
		fillCounters(r, out.res)
		return
	}

	// Corrupt the newest generation's payload (past the 48-byte frame
	// header) and demand recovery from the one before it.
	if err := faultinject.CorruptFile(path, int64(lr.sched.Seed^uint64(leg.Index)<<32)|1, 48, 16); err != nil {
		r.Err = err.Error()
		return
	}
	sup := &supervise.Supervisor{}
	f, gen, skipped, err := sup.SeedFromLineage(path)
	if err != nil {
		r.Err = "lineage recovery: " + err.Error()
		return
	}
	r.RestoredFrom = gen
	if gen != ckptio.GenPath(path, 1) {
		r.Err = fmt.Sprintf("recovered from %s, want the previous generation %s", gen, ckptio.GenPath(path, 1))
		return
	}
	if len(skipped) == 0 {
		r.Err = "the corrupted latest generation was not reported as skipped"
		return
	}

	// Restored rerun: replaying the committed prefix from the fallen-back
	// cut must still end byte-identical to the oracle.
	cfg = lr.baseCfg(leg)
	cfg.Restore = f.Ckpt
	out, err = lr.runOnce(leg, cfg, false)
	if err != nil {
		r.Err = "restored rerun: " + err.Error()
		return
	}
	lr.checkSuccess(leg, r, out, 0)
}
