// Package chaos is the seeded soak orchestrator: it derives a synthetic
// circuit AND a randomized fault schedule from one seed, runs the engine
// under every leg of that schedule, and checks an invariant oracle after
// every recovery — the committed trace must be byte-identical to the
// sequential simulator's, GVT must be monotonic, the migration counters must
// match what the schedule planned, and the recovery-attempt log must
// converge. A seed that exposes a bug is a complete reproducer: the same
// seed rebuilds the same circuit, the same fault plan, and the same
// expectations.
//
// The schedule is a pure function of (seed, options): every structural
// decision is drawn from one xorshift stream, and fault triggers are
// expressed in event/send counts (faultinject's counters) or GVT round
// numbers (the storm planner), never wall-clock time — so the *plan* is
// reproducible even though the engine's thread interleaving is not. The
// oracle then separates schedule-determined quantities (kills, storm moves,
// trace bytes), which must be exactly equal across runs of one seed, from
// interleaving-dependent ones (rollbacks, forwards), which are recorded and
// consistency-checked only.
package chaos

import (
	"fmt"
	"time"

	"govhdl/internal/circuits"
	"govhdl/internal/faultinject"
	"govhdl/internal/pdes"
)

// prng is the schedule's deterministic generator (xorshift64, the same
// recurrence the circuit generator uses).
type prng uint64

func (p *prng) next() uint64 {
	v := uint64(*p)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*p = prng(v)
	return v
}

// rng in [min, max], inclusive.
func (p *prng) rangeInt(min, max int) int {
	if max <= min {
		return min
	}
	return min + int(p.next()%uint64(max-min+1))
}

// Options parameterizes a soak. The zero value (plus a seed) runs a
// ~2000-LP circuit through six legs covering every enabled fault family.
type Options struct {
	// Seed derives the circuit, the fault schedule, and every leg's
	// parameters. Same seed, same soak.
	Seed uint64
	// LPs is the target circuit size (default 2000).
	LPs int
	// Cycles is the simulation horizon in clock cycles (default 6).
	Cycles int
	// Legs is how many fault legs to run (default 6). Leg 0 is always the
	// fault-free baseline; the rest cycle through the enabled fault
	// families in seed-shuffled order.
	Legs int
	// Workers is the in-process worker count per leg (default 3).
	Workers int

	// Fault-mix toggles. When none is set, all families are enabled.
	Kills       bool // fabric death at a seeded send count + supervised failover
	Delays      bool // randomized send delays (heartbeat/late-join timing skew)
	Storms      bool // migration storms: a deterministic planner moving LPs at GVT cuts
	Squeezes    bool // memory-budget squeezes (backpressure + cancelback)
	Checkpoints bool // checkpoint lineage churn + corrupt-latest fallback drill
	Partitions  bool // asymmetric partitions / muted peers ending in a designed stall

	// CheckpointDir is where checkpoint-churn legs write their generation
	// lineages. Required when the Checkpoints family is enabled.
	CheckpointDir string
	// StallTimeout arms the watchdog on designed-stall legs (default 4s).
	StallTimeout time.Duration
}

func (o *Options) fill() {
	if o.LPs <= 0 {
		o.LPs = 2000
	}
	if o.Cycles <= 0 {
		o.Cycles = 6
	}
	if o.Legs <= 0 {
		o.Legs = 6
	}
	if o.Workers <= 0 {
		o.Workers = 3
	}
	if !o.Kills && !o.Delays && !o.Storms && !o.Squeezes && !o.Checkpoints && !o.Partitions {
		o.Kills, o.Delays, o.Storms, o.Squeezes, o.Checkpoints, o.Partitions = true, true, true, true, true, true
	}
	if o.StallTimeout <= 0 {
		o.StallTimeout = 4 * time.Second
	}
}

// LegKind names a fault family combination.
type LegKind int

const (
	LegBaseline LegKind = iota
	LegKill              // fabric death + failover from the latest checkpoint
	LegDelay             // randomized send delays only
	LegKillDelay         // death composed with delayed delivery
	LegStorm             // migration storm, no faults
	LegStormDelay        // migration storm under delayed delivery
	LegSqueeze           // optimistic run under a small memory budget
	LegCheckpoint        // checkpoint lineage churn + corrupt-latest drill
	LegPartition         // asymmetric partition: designed stall
	LegMute              // muted peer: designed stall
)

func (k LegKind) String() string {
	switch k {
	case LegBaseline:
		return "baseline"
	case LegKill:
		return "kill"
	case LegDelay:
		return "delay"
	case LegKillDelay:
		return "kill+delay"
	case LegStorm:
		return "storm"
	case LegStormDelay:
		return "storm+delay"
	case LegSqueeze:
		return "memsqueeze"
	case LegCheckpoint:
		return "ckpt-churn"
	case LegPartition:
		return "partition"
	case LegMute:
		return "mute"
	}
	return fmt.Sprintf("leg(%d)", int(k))
}

// Leg is one soak leg: a fresh build of the seed's circuit run under one
// composed fault plan with schedule-determined expectations.
type Leg struct {
	Index    int           `json:"index"`
	Kind     LegKind       `json:"-"`
	Name     string        `json:"name"`
	Protocol pdes.Protocol `json:"-"`
	Proto    string        `json:"protocol"`
	Shards   int           `json:"shards"`
	GVTEvery int           `json:"gvt_every"`

	// Plan carries the leg's fabric faults (attempt 0 only).
	Plan faultinject.Plan `json:"-"`

	MemBudget int64 `json:"mem_budget,omitempty"`

	// StormSeed/StormTotal parameterize the deterministic storm planner;
	// the oracle requires Migrations == StormTotal on storm legs.
	StormSeed  uint64 `json:"storm_seed,omitempty"`
	StormTotal int    `json:"storm_total,omitempty"`

	// ExpectKills is how many fabric deaths the schedule injects; the
	// recovery log must converge after exactly that many failovers.
	ExpectKills int `json:"expect_kills,omitempty"`

	// ExpectStall marks designed-stall legs: the run must abort with a
	// stall verdict and its partial trace must be contained in the oracle.
	ExpectStall bool `json:"expect_stall,omitempty"`

	// Checkpoint legs write a generation lineage and then run the
	// corrupt-latest fallback drill.
	Checkpoint bool `json:"checkpoint,omitempty"`
}

// Schedule is the fully derived soak plan.
type Schedule struct {
	Seed    uint64              `json:"seed"`
	Circuit circuits.RandomOpts `json:"-"`
	Workers int                 `json:"workers"`
	Legs    []Leg               `json:"legs"`
}

// NewSchedule derives the soak plan from the seed: the circuit parameters,
// the leg kinds (leg 0 is the baseline, the rest a seed-shuffled cycle over
// the enabled families), and every leg's protocol, sharding, cadence, and
// fault triggers.
func NewSchedule(opts Options) *Schedule {
	opts.fill()
	r := prng(opts.Seed)
	if r == 0 {
		r = 0x9e3779b97f4a7c15
	}

	s := &Schedule{
		Seed:    opts.Seed,
		Workers: opts.Workers,
		Circuit: circuits.RandomOpts{
			Seed:          opts.Seed,
			LPs:           opts.LPs,
			CyclesAllowed: true,
			Cycles:        opts.Cycles,
		},
	}

	// Enabled fault families, in a fixed order, then seed-shuffled so which
	// families a short soak reaches varies by seed.
	var pool []LegKind
	if opts.Kills {
		pool = append(pool, LegKill, LegKillDelay)
	}
	if opts.Delays {
		pool = append(pool, LegDelay)
	}
	if opts.Storms {
		pool = append(pool, LegStorm)
		if opts.Delays {
			pool = append(pool, LegStormDelay)
		}
	}
	if opts.Squeezes {
		pool = append(pool, LegSqueeze)
	}
	if opts.Checkpoints && opts.CheckpointDir != "" {
		pool = append(pool, LegCheckpoint)
	}
	if opts.Partitions {
		pool = append(pool, LegPartition, LegMute)
	}
	for i := len(pool) - 1; i > 0; i-- { // Fisher-Yates off the seed stream
		j := int(r.next() % uint64(i+1))
		pool[i], pool[j] = pool[j], pool[i]
	}

	protocols := []pdes.Protocol{pdes.ProtoOptimistic, pdes.ProtoDynamic, pdes.ProtoMixed, pdes.ProtoConservative}
	for i := 0; i < opts.Legs; i++ {
		kind := LegBaseline
		if i > 0 && len(pool) > 0 {
			kind = pool[(i-1)%len(pool)]
		}
		leg := Leg{
			Index:    i,
			Kind:     kind,
			Name:     kind.String(),
			Protocol: protocols[int(r.next()%uint64(len(protocols)))],
			GVTEvery: []int{128, 256, 512}[int(r.next()%3)],
		}
		// Sharding: unsharded, shards == workers, or shards > workers.
		leg.Shards = []int{0, 0, opts.Workers, opts.Workers + 1}[int(r.next()%4)]

		switch kind {
		case LegKill, LegKillDelay:
			leg.Plan.Seed = int64(r.next() >> 1)
			leg.Plan.DieAfterSends = r.rangeInt(300, 1200)
			leg.ExpectKills = 1
		case LegStorm, LegStormDelay:
			leg.StormSeed = r.next()
			leg.StormTotal = r.rangeInt(2, 4)
			// A tight cadence guarantees enough cuts for the planner to emit
			// its whole move budget before the horizon.
			leg.GVTEvery = 128
		case LegSqueeze:
			// The budget only throttles optimism; force the protocol that
			// exercises it.
			leg.Protocol = pdes.ProtoOptimistic
			leg.MemBudget = int64(r.rangeInt(2, 6)) << 20
		case LegCheckpoint:
			leg.Checkpoint = true
		case LegPartition:
			// Fabric sends are dominated by control traffic on small runs, so
			// the trigger must be low enough to engage while cross-worker
			// event traffic is still flowing.
			leg.Plan.Seed = int64(r.next() >> 1)
			leg.Plan.PartitionAfterSends = r.rangeInt(40, 120)
			leg.Plan.PartitionA = 1 + r.rangeInt(0, opts.Workers-1)
			leg.Plan.PartitionB = 1 + (leg.Plan.PartitionA+r.rangeInt(0, opts.Workers-2))%opts.Workers
			leg.ExpectStall = true
		case LegMute:
			leg.Plan.Seed = int64(r.next() >> 1)
			leg.Plan.MuteAfterSends = r.rangeInt(40, 120)
			leg.ExpectStall = true
		}
		if kind == LegDelay || kind == LegKillDelay || kind == LegStormDelay {
			if leg.Plan.Seed == 0 {
				leg.Plan.Seed = int64(r.next() >> 1)
			}
			leg.Plan.SendDelayProb = float64(r.rangeInt(2, 8)) / 100
			leg.Plan.MaxSendDelay = time.Duration(r.rangeInt(100, 400)) * time.Microsecond
		}
		leg.Proto = leg.Protocol.String()
		s.Legs = append(s.Legs, leg)
	}
	return s
}

// stormPlanner returns a deterministic migration planner that emits one move
// per GVT round until total moves have been emitted, plus a counter of moves
// actually emitted. Decisions depend only on the planner's own seed stream
// and the snapshotted owner table, so two runs of the same leg emit the same
// move sequence (timing can change *when* rounds happen, never what the
// planner does at the Nth one).
func stormPlanner(seed uint64, total int) (pdes.MigrationPlanner, *int) {
	r := prng(seed)
	if r == 0 {
		r = 0x2545f4914f6cdd1d
	}
	emitted := new(int)
	return func(st *pdes.MigrationState) []pdes.Move {
		if *emitted >= total || st.Workers < 2 {
			return nil
		}
		lp := pdes.LPID(r.next() % uint64(len(st.Owner)))
		to := 1 + int(r.next()%uint64(st.Workers))
		if st.Owner[lp] == to {
			to = 1 + to%st.Workers
		}
		if st.Owner[lp] == to {
			return nil
		}
		*emitted++
		return []pdes.Move{{LP: lp, To: to}}
	}, emitted
}
