package vtime

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0fs"},
		{1, "1fs"},
		{PS, "1ps"},
		{5 * NS, "5ns"},
		{1500 * PS, "1500ps"},
		{US, "1us"},
		{MS, "1ms"},
		{2 * S, "2sec"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", uint64(c.t), got, c.want)
		}
	}
}

func TestLexicographicOrder(t *testing.T) {
	cases := []struct {
		a, b VT
		less bool
	}{
		{VT{0, 0}, VT{0, 0}, false},
		{VT{0, 0}, VT{0, 1}, true},
		{VT{0, 5}, VT{1, 0}, true},
		{VT{1, 0}, VT{0, 99}, false},
		{VT{7, 3}, VT{7, 3}, false},
		{VT{7, 2}, VT{7, 3}, true},
		{Zero, Inf, true},
		{Inf, Inf, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
}

func TestCmpConsistency(t *testing.T) {
	f := func(ap, al, bp, bl uint16) bool {
		a := VT{Time(ap), uint64(al)}
		b := VT{Time(bp), uint64(bl)}
		c := a.Cmp(b)
		switch {
		case a.Less(b):
			return c == -1 && b.Cmp(a) == 1 && a.LessEq(b) && !b.LessEq(a)
		case b.Less(a):
			return c == 1 && b.Cmp(a) == -1 && b.LessEq(a) && !a.LessEq(b)
		default:
			return c == 0 && a == b && a.LessEq(b) && b.LessEq(a)
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOrderIsTotalAndTransitive(t *testing.T) {
	// Sorting with Less and checking pairwise order verifies
	// totality/transitivity on a random sample.
	rng := rand.New(rand.NewSource(1))
	vts := make([]VT, 200)
	for i := range vts {
		vts[i] = VT{Time(rng.Intn(8)), uint64(rng.Intn(8))}
	}
	sort.Slice(vts, func(i, j int) bool { return vts[i].Less(vts[j]) })
	for i := 1; i < len(vts); i++ {
		if vts[i].Less(vts[i-1]) {
			t.Fatalf("not totally ordered at %d: %v after %v", i, vts[i-1], vts[i])
		}
	}
}

func TestMinMax(t *testing.T) {
	a, b := VT{1, 9}, VT{2, 0}
	if Min(a, b) != a || Min(b, a) != a {
		t.Errorf("Min(%v,%v) wrong", a, b)
	}
	if Max(a, b) != b || Max(b, a) != b {
		t.Errorf("Max(%v,%v) wrong", a, b)
	}
	if Min(a, a) != a || Max(a, a) != a {
		t.Error("Min/Max not idempotent")
	}
}

func TestMinMaxProperty(t *testing.T) {
	f := func(ap, al, bp, bl uint16) bool {
		a := VT{Time(ap), uint64(al)}
		b := VT{Time(bp), uint64(bl)}
		mn, mx := Min(a, b), Max(a, b)
		return mn.LessEq(mx) && mn.LessEq(a) && mn.LessEq(b) &&
			a.LessEq(mx) && b.LessEq(mx) &&
			(mn == a || mn == b) && (mx == a || mx == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaAndPhase(t *testing.T) {
	cases := []struct {
		lt    uint64
		delta uint64
		phase int
	}{
		{0, 0, PhaseRunAssign},
		{1, 0, PhaseDrivingValue},
		{2, 0, PhaseUpdate},
		{3, 1, PhaseRunAssign},
		{4, 1, PhaseDrivingValue},
		{5, 1, PhaseUpdate},
		{6, 2, PhaseRunAssign},
	}
	for _, c := range cases {
		v := VT{10, c.lt}
		if v.Delta() != c.delta || v.Phase() != c.phase {
			t.Errorf("VT{10,%d}: delta=%d phase=%d, want %d/%d",
				c.lt, v.Delta(), v.Phase(), c.delta, c.phase)
		}
	}
}

func TestAfterDelay(t *testing.T) {
	now := VT{PT: 100 * NS, LT: 6} // Run/Assign phase of delta 2
	if got := now.AfterDelay(0); got != (VT{100 * NS, 7}) {
		t.Errorf("zero delay: got %v", got)
	}
	if got := now.AfterDelay(5 * NS); got != (VT{105 * NS, 1}) {
		t.Errorf("5ns delay: got %v", got)
	}
	// A delayed transaction must always land in a Driving Value phase.
	if got := now.AfterDelay(5 * NS); got.Phase() != PhaseDrivingValue {
		t.Errorf("delayed transaction landed in phase %d", got.Phase())
	}
}

func TestAfterTimeout(t *testing.T) {
	now := VT{PT: 100 * NS, LT: 6}
	if got := now.AfterTimeout(0); got != (VT{100 * NS, 9}) {
		t.Errorf("wait for 0: got %v", got)
	}
	if got := now.AfterTimeout(3 * NS); got != (VT{103 * NS, 3}) {
		t.Errorf("wait for 3ns: got %v", got)
	}
	if got := now.AfterTimeout(3 * NS); got.Phase() != PhaseRunAssign {
		t.Errorf("timeout landed in phase %d, want run/assign", got.Phase())
	}
}

func TestSchedulingAlwaysAdvances(t *testing.T) {
	// Property from the paper's cycle: every scheduled event is strictly
	// after the scheduling time, so the distributed cycle makes progress.
	f := func(pt uint16, lt uint8, d uint16) bool {
		now := VT{Time(pt), uint64(lt)}
		return now.Less(now.AfterDelay(Time(d))) &&
			now.Less(now.AfterTimeout(Time(d))) &&
			now.Less(now.NextPhase())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLessLessEqBoundaries pins the lexicographic comparison on the exact
// boundary cases the vtcompare analyzer exists to protect: equal PT with
// differing LT (where a raw PT comparison gets the answer wrong), zero
// values, and saturated max-int components at the Inf sentinel.
func TestLessLessEqBoundaries(t *testing.T) {
	maxPT := ^Time(0)
	maxLT := ^uint64(0)
	cases := []struct {
		name   string
		a, b   VT
		less   bool // a.Less(b)
		lessEq bool // a.LessEq(b)
	}{
		{"equal PT, LT decides", VT{5, 1}, VT{5, 2}, true, true},
		{"equal PT, LT decides (reversed)", VT{5, 2}, VT{5, 1}, false, false},
		{"equal PT, equal LT", VT{5, 2}, VT{5, 2}, false, true},
		{"PT dominates large LT", VT{1, maxLT}, VT{2, 0}, true, true},
		{"zero vs zero", Zero, Zero, false, true},
		{"zero vs first phase", Zero, VT{0, 1}, true, true},
		{"zero vs first instant", Zero, VT{1, 0}, true, true},
		{"max PT, LT still decides", VT{maxPT, 0}, VT{maxPT, 1}, true, true},
		{"Inf vs Inf", Inf, Inf, false, true},
		{"just below Inf", VT{maxPT, maxLT - 1}, Inf, true, true},
		{"max PT zero LT vs Inf", VT{maxPT, 0}, Inf, true, true},
		{"Inf is an upper bound", Inf, VT{maxPT, maxLT - 1}, false, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.a.Less(c.b); got != c.less {
				t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
			}
			if got := c.a.LessEq(c.b); got != c.lessEq {
				t.Errorf("%v.LessEq(%v) = %v, want %v", c.a, c.b, got, c.lessEq)
			}
			// LessEq must be exactly Less-or-Equal, and Less strict.
			if c.a.LessEq(c.b) != (c.a.Less(c.b) || c.a == c.b) {
				t.Errorf("LessEq(%v,%v) inconsistent with Less/==", c.a, c.b)
			}
		})
	}
}

func TestPredBoundaries(t *testing.T) {
	maxLT := ^uint64(0)
	cases := []struct {
		v, want VT
	}{
		{VT{5, 3}, VT{5, 2}},           // within a physical instant
		{VT{5, 0}, VT{4, maxLT}},       // borrow from the PT component
		{Zero, Zero},                   // Pred saturates at Zero
		{VT{0, 1}, Zero},               // first phase steps back to Zero
		{Inf, VT{^Time(0), maxLT - 1}}, // Inf has a predecessor
	}
	for _, c := range cases {
		if got := c.v.Pred(); got != c.want {
			t.Errorf("%v.Pred() = %v, want %v", c.v, got, c.want)
		}
	}
}

// TestPredNextPhaseRoundTrip: NextPhase then Pred is the identity, and Pred
// is the greatest VT strictly below its argument (nothing fits between).
func TestPredNextPhaseRoundTrip(t *testing.T) {
	f := func(pt uint16, lt uint16) bool {
		v := VT{Time(pt), uint64(lt)}
		if v.NextPhase().Pred() != v {
			return false
		}
		if v == Zero {
			return v.Pred() == Zero
		}
		p := v.Pred()
		if !p.Less(v) {
			return false
		}
		// Within a physical instant, Pred and NextPhase are inverses; when
		// Pred borrows from PT, the LT component saturates instead.
		if v.LT > 0 {
			return p.NextPhase() == v
		}
		return p.LT == ^uint64(0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVTString(t *testing.T) {
	v := VT{PT: 10 * NS, LT: 7}
	if got := v.String(); got != "10ns+2Δ.1" {
		t.Errorf("String() = %q", got)
	}
	if Inf.String() != "+inf" {
		t.Errorf("Inf.String() = %q", Inf.String())
	}
}
