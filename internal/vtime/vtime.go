// Package vtime implements the VHDL virtual time used by the distributed
// simulation cycle of Lungeanu & Shi (DATE 2000).
//
// A virtual time is a pair (PT, LT): the physical simulation time and a
// Lamport-style cycle/phase logical time. Pairs are ordered
// lexicographically, which causally orders the "problematic" simultaneous
// events (delta cycles, timeouts, multiple simultaneous transactions,
// multiple simultaneous signal updates) according to the VHDL simulation
// cycle, while leaving genuinely independent simultaneous events unordered so
// a PDES protocol may process them in arbitrary order.
//
// Within one physical time, delta cycle k consists of three phases:
//
//	LT = 3k+1          Signal: Driving Value
//	LT = 3k+2          Signal: Resolution / Process: Signal Update
//	LT = 3k+3 = 3(k+1) Process: Run / Signal: Assign
//
// LT 0 is used only for initialization events. When physical time advances,
// LT restarts: a matured waveform transaction lands at (pt', 1) and a wait
// timeout at (pt', 3), exactly as in the paper.
package vtime

import "fmt"

// Time is a physical simulation time in femtoseconds. Femtosecond resolution
// matches the finest resolution of IEEE Std 1076 and keeps all standard time
// units exact in an unsigned 64-bit integer (max ~5.1 hours of simulated
// time, far beyond any VLSI simulation run).
type Time uint64

// Standard VHDL time units expressed in femtoseconds.
const (
	FS Time = 1
	PS Time = 1000 * FS
	NS Time = 1000 * PS
	US Time = 1000 * NS
	MS Time = 1000 * US
	S  Time = 1000 * MS
)

// String formats a physical time using the largest exact unit.
func (t Time) String() string {
	switch {
	case t == 0:
		return "0fs"
	case t%S == 0:
		return fmt.Sprintf("%dsec", t/S)
	case t%MS == 0:
		return fmt.Sprintf("%dms", t/MS)
	case t%US == 0:
		return fmt.Sprintf("%dus", t/US)
	case t%NS == 0:
		return fmt.Sprintf("%dns", t/NS)
	case t%PS == 0:
		return fmt.Sprintf("%dps", t/PS)
	default:
		return fmt.Sprintf("%dfs", t)
	}
}

// VT is a VHDL virtual time: physical time plus cycle/phase logical time.
type VT struct {
	PT Time   // physical simulation time
	LT uint64 // cycle/phase logical time within PT
}

// Zero is the beginning of simulated time.
var Zero = VT{}

// Inf is a virtual time strictly greater than every reachable virtual time.
// It is used for "no event" horizons and channel-clock initialization.
var Inf = VT{PT: ^Time(0), LT: ^uint64(0)}

// Phases of the distributed VHDL cycle, as positions of LT modulo 3.
const (
	PhaseRunAssign    = 0 // Process: Run / Signal: Assign (LT = 3k, k >= 1)
	PhaseDrivingValue = 1 // Signal: Driving Value        (LT = 3k+1)
	PhaseUpdate       = 2 // Signal: Resolution / Process: Signal Update (LT = 3k+2)
)

// Less reports whether v is strictly before w in lexicographic order.
func (v VT) Less(w VT) bool {
	if v.PT != w.PT {
		return v.PT < w.PT
	}
	return v.LT < w.LT
}

// LessEq reports whether v is before or equal to w.
func (v VT) LessEq(w VT) bool { return !w.Less(v) }

// Equal reports whether v and w are the same virtual time.
func (v VT) Equal(w VT) bool { return v == w }

// Cmp returns -1, 0, or +1 as v is before, equal to, or after w.
func (v VT) Cmp(w VT) int {
	switch {
	case v.Less(w):
		return -1
	case w.Less(v):
		return 1
	default:
		return 0
	}
}

// Min returns the earlier of v and w.
func Min(v, w VT) VT {
	if w.Less(v) {
		return w
	}
	return v
}

// Max returns the later of v and w.
func Max(v, w VT) VT {
	if v.Less(w) {
		return w
	}
	return v
}

// Delta returns the delta-cycle index of v within its physical time.
// Initialization (LT 0) and the first delta share index 0.
func (v VT) Delta() uint64 { return v.LT / 3 }

// Phase returns the phase of v within its delta cycle (LT modulo 3).
func (v VT) Phase() int { return int(v.LT % 3) }

// NextPhase returns the virtual time one phase later at the same physical
// time: (pt, lt+1).
func (v VT) NextPhase() VT { return VT{PT: v.PT, LT: v.LT + 1} }

// Pred returns the largest virtual time strictly before v, or Zero for Zero.
// The PDES engine uses it to let an in-flight anti-message constrain GVT to
// strictly below the anti's timestamp.
func (v VT) Pred() VT {
	switch {
	case v.LT > 0:
		return VT{PT: v.PT, LT: v.LT - 1}
	case v.PT > 0:
		return VT{PT: v.PT - 1, LT: ^uint64(0)}
	default:
		return Zero
	}
}

// PlusPhases returns (pt, lt+n).
func (v VT) PlusPhases(n uint64) VT { return VT{PT: v.PT, LT: v.LT + n} }

// AfterDelay returns the virtual time at which a waveform transaction
// scheduled "after d" from v matures into the Driving Value phase:
// (pt, lt+1) for a zero delay and (pt+d, 1) for a positive delay, per the
// paper's Signal: Assign phase rule.
func (v VT) AfterDelay(d Time) VT {
	if d == 0 {
		return VT{PT: v.PT, LT: v.LT + 1}
	}
	return VT{PT: v.PT + d, LT: uint64(PhaseDrivingValue)}
}

// AfterTimeout returns the virtual time of the Process: Run phase reached by
// a wait timeout of d from v: (pt, lt+3) for a zero timeout ("wait for
// 0 ns" resumes in the next delta cycle) and (pt+d, 3) for a positive one,
// per the paper's Process: Run phase rule.
func (v VT) AfterTimeout(d Time) VT {
	if d == 0 {
		return VT{PT: v.PT, LT: v.LT + 3}
	}
	return VT{PT: v.PT + d, LT: 3}
}

// String renders v as "pt+kΔ.p" where k is the delta index and p the phase.
func (v VT) String() string {
	if v == Inf {
		return "+inf"
	}
	return fmt.Sprintf("%s+%dΔ.%d", v.PT, v.Delta(), v.Phase())
}
