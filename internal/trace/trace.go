// Package trace collects committed simulation records, compares runs
// against the sequential oracle, and renders value-change dumps (VCD).
//
// Under optimistic simulation records are committed out of order and from
// several workers; the recorder therefore stores everything and sorts by
// (virtual time, LP, rendered item) on demand, which is a deterministic
// total order for the kernel's records (one effective-value change per
// signal per virtual time).
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"govhdl/internal/kernel"
	"govhdl/internal/pdes"
	"govhdl/internal/stdlogic"
	"govhdl/internal/vtime"
)

// Entry is one committed record.
type Entry struct {
	LP   pdes.LPID
	TS   vtime.VT
	Item any
}

// Recorder is a thread-safe pdes.TraceSink.
type Recorder struct {
	mu      sync.Mutex
	entries []Entry
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Commit implements pdes.TraceSink.
func (r *Recorder) Commit(lp pdes.LPID, ts vtime.VT, item any) {
	r.mu.Lock()
	r.entries = append(r.entries, Entry{LP: lp, TS: ts, Item: item})
	r.mu.Unlock()
}

// Len returns the number of committed records.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// Entries returns a copy of the committed records in commit order, e.g. for
// serializing the trace-so-far alongside a simulation checkpoint.
func (r *Recorder) Entries() []Entry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Entry(nil), r.entries...)
}

// Preload seeds the recorder with records committed by an earlier run, so a
// simulation restored from a checkpoint ends with the same complete trace an
// uninterrupted run would have produced.
func (r *Recorder) Preload(entries []Entry) {
	r.mu.Lock()
	r.entries = append(r.entries, entries...)
	r.mu.Unlock()
}

// Since returns a copy of the records committed at index n and beyond (in
// commit order) together with the new high-water index to pass next time:
// the incremental companion of Entries for streaming consumers.
func (r *Recorder) Since(n int) ([]Entry, int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if n >= len(r.entries) {
		return nil, len(r.entries)
	}
	return append([]Entry(nil), r.entries[n:]...), len(r.entries)
}

// SortEntries orders entries in the deterministic (TS, LP, item) total
// order used for trace comparison and rendering.
func SortEntries(out []Entry) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].TS != out[j].TS {
			return out[i].TS.Less(out[j].TS)
		}
		if out[i].LP != out[j].LP {
			return out[i].LP < out[j].LP
		}
		return fmt.Sprint(out[i].Item) < fmt.Sprint(out[j].Item)
	})
}

// Sorted returns the entries in deterministic (TS, LP, item) order.
func (r *Recorder) Sorted() []Entry {
	r.mu.Lock()
	out := append([]Entry(nil), r.entries...)
	r.mu.Unlock()
	SortEntries(out)
	return out
}

// Line renders one entry with its LP name from sys.
func Line(sys *pdes.System, e Entry) string {
	return fmt.Sprintf("%s @%v %s", sys.Name(e.LP), e.TS, renderItem(e.Item))
}

// Lines renders the sorted entries with LP names from sys, one per line.
func (r *Recorder) Lines(sys *pdes.System) []string {
	entries := r.Sorted()
	lines := make([]string, len(entries))
	for i, e := range entries {
		lines[i] = Line(sys, e)
	}
	return lines
}

func renderItem(item any) string {
	switch it := item.(type) {
	case kernel.SigChange:
		return "= " + renderValue(it.Value)
	case kernel.ReportNote:
		return fmt.Sprintf("report(%s): %s", it.Severity, it.Message)
	default:
		return fmt.Sprint(item)
	}
}

func renderValue(v kernel.Value) string {
	switch val := v.(type) {
	case stdlogic.Std:
		return val.String()
	case stdlogic.Vec:
		return val.String()
	case bool:
		return fmt.Sprintf("%t", val)
	case int64:
		return fmt.Sprintf("%d", val)
	default:
		return fmt.Sprint(v)
	}
}

// Equal reports whether two recorders hold the same committed trace for the
// same system, and returns the first difference otherwise — the
// "all simulations were verified to be correct" check of the paper.
func Equal(sys *pdes.System, a, b *Recorder) (bool, string) {
	la, lb := a.Lines(sys), b.Lines(sys)
	if len(la) != len(lb) {
		return false, fmt.Sprintf("record counts differ: %d vs %d", len(la), len(lb))
	}
	for i := range la {
		if la[i] != lb[i] {
			return false, fmt.Sprintf("record %d differs:\n  a: %s\n  b: %s", i, la[i], lb[i])
		}
	}
	return true, ""
}

// WriteVCD renders the signal changes as a Value Change Dump. Only
// kernel.SigChange records from LPs named "sig:<name>" are dumped; delta
// cycles collapse onto their physical time, keeping the last value of each
// time step, as waveform viewers expect.
func WriteVCD(w io.Writer, sys *pdes.System, r *Recorder, designName string) error {
	entries := r.Sorted()

	// Collect dumped signals in first-appearance order.
	type sigInfo struct {
		name  string
		id    string
		width int
	}
	idFor := map[pdes.LPID]*sigInfo{}
	var sigs []*sigInfo
	nextID := 0
	mkID := func() string {
		id := vcdID(nextID)
		nextID++
		return id
	}
	for _, e := range entries {
		sc, ok := e.Item.(kernel.SigChange)
		if !ok {
			continue
		}
		name := sys.Name(e.LP)
		if !strings.HasPrefix(name, "sig:") {
			continue
		}
		if _, seen := idFor[e.LP]; !seen {
			si := &sigInfo{name: strings.TrimPrefix(name, "sig:"), id: mkID(), width: vcdWidth(sc.Value)}
			idFor[e.LP] = si
			sigs = append(sigs, si)
		}
	}

	if _, err := fmt.Fprintf(w, "$date\n  govhdl\n$end\n$version\n  govhdl distributed VHDL simulator\n$end\n$timescale\n  1fs\n$end\n$scope module %s $end\n", designName); err != nil {
		return err
	}
	for _, si := range sigs {
		kind := "wire"
		if _, err := fmt.Fprintf(w, "$var %s %d %s %s $end\n", kind, si.width, si.id, si.name); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "$upscope $end\n$enddefinitions $end\n"); err != nil {
		return err
	}

	// Emit changes grouped by physical time, keeping only the last value a
	// signal takes within one time step (delta collapse).
	var curTime vtime.Time
	started := false
	pendingVals := map[string]string{} // id -> vcd value text
	var order []string
	flush := func() error {
		if !started {
			return nil
		}
		if len(order) == 0 {
			return nil
		}
		if _, err := fmt.Fprintf(w, "#%d\n", uint64(curTime)); err != nil {
			return err
		}
		for _, id := range order {
			if _, err := fmt.Fprintln(w, pendingVals[id]); err != nil {
				return err
			}
		}
		pendingVals = map[string]string{}
		order = order[:0]
		return nil
	}
	for _, e := range entries {
		sc, ok := e.Item.(kernel.SigChange)
		if !ok {
			continue
		}
		si, ok := idFor[e.LP]
		if !ok {
			continue
		}
		if !started || e.TS.PT != curTime {
			if err := flush(); err != nil {
				return err
			}
			curTime = e.TS.PT
			started = true
		}
		if _, dup := pendingVals[si.id]; !dup {
			order = append(order, si.id)
		}
		pendingVals[si.id] = vcdValue(sc.Value, si.id)
	}
	return flush()
}

// vcdID encodes an index as a VCD identifier (printable ASCII 33..126).
func vcdID(n int) string {
	var b []byte
	for {
		b = append(b, byte(33+n%94))
		n = n / 94
		if n == 0 {
			break
		}
	}
	return string(b)
}

// vcdWidth derives a signal's VCD bit width from a value it carries.
func vcdWidth(v kernel.Value) int {
	if vec, ok := v.(stdlogic.Vec); ok {
		return len(vec)
	}
	if _, ok := v.(int64); ok {
		return 64
	}
	return 1
}

func vcdValue(v kernel.Value, id string) string {
	switch val := v.(type) {
	case stdlogic.Std:
		return vcdBit(val) + id
	case stdlogic.Vec:
		var b strings.Builder
		b.WriteByte('b')
		for _, e := range val {
			b.WriteString(vcdBit(e))
		}
		b.WriteByte(' ')
		b.WriteString(id)
		return b.String()
	case bool:
		if val {
			return "1" + id
		}
		return "0" + id
	case int64:
		return fmt.Sprintf("b%b %s", uint64(val), id)
	default:
		return "x" + id
	}
}

func vcdBit(s stdlogic.Std) string {
	switch {
	case stdlogic.IsHigh(s):
		return "1"
	case stdlogic.IsLow(s):
		return "0"
	case s == stdlogic.Z:
		return "z"
	default:
		return "x"
	}
}
