package trace

import (
	"strings"
	"testing"

	"govhdl/internal/kernel"
	"govhdl/internal/pdes"
	"govhdl/internal/stdlogic"
	"govhdl/internal/vtime"
)

func buildToggler() (*kernel.Design, *pdes.System) {
	d := kernel.NewDesign("toggler")
	a := d.AddSignal("a", stdlogic.L0)
	v := d.AddSignal("v", stdlogic.NewVec(2, stdlogic.L0))
	d.AddProcess("stim", &kernel.Stimulus{Steps: []kernel.Step{
		{Delay: 5 * vtime.NS, Port: 0, Value: stdlogic.L1},
		{Delay: 5 * vtime.NS, Port: 0, Value: stdlogic.L0},
	}}, nil, []*kernel.Signal{a})
	d.AddProcess("enc", kernel.NewComb(1, func(c *kernel.ProcCtx) {
		if stdlogic.IsHigh(c.Std(0)) {
			c.Assign(0, stdlogic.MustVec("11"), 0)
		} else {
			c.Assign(0, stdlogic.MustVec("01"), 0)
		}
	}), []*kernel.Signal{a}, []*kernel.Signal{v})
	sys := d.Build()
	return d, sys
}

func TestRecorderDeterministicOrder(t *testing.T) {
	_, sys := buildToggler()
	rec := NewRecorder()
	if _, err := pdes.RunSequential(sys, 50*vtime.NS, rec); err != nil {
		t.Fatal(err)
	}
	if rec.Len() == 0 {
		t.Fatal("no records")
	}
	l1 := strings.Join(rec.Lines(sys), "\n")
	l2 := strings.Join(rec.Lines(sys), "\n")
	if l1 != l2 {
		t.Error("Lines not deterministic")
	}
	if !strings.Contains(l1, `sig:v @5ns+2Δ.1 = "11"`) {
		t.Errorf("missing vector change:\n%s", l1)
	}
}

func TestEqualDetectsDifference(t *testing.T) {
	_, sys := buildToggler()
	a, b := NewRecorder(), NewRecorder()
	a.Commit(0, vtime.VT{PT: 1}, kernel.SigChange{Value: stdlogic.L1})
	b.Commit(0, vtime.VT{PT: 1}, kernel.SigChange{Value: stdlogic.L0})
	if ok, _ := Equal(sys, a, b); ok {
		t.Error("Equal missed a value difference")
	}
	b2 := NewRecorder()
	b2.Commit(0, vtime.VT{PT: 1}, kernel.SigChange{Value: stdlogic.L1})
	if ok, diff := Equal(sys, a, b2); !ok {
		t.Errorf("Equal false negative: %s", diff)
	}
	c := NewRecorder()
	if ok, _ := Equal(sys, a, c); ok {
		t.Error("Equal missed a count difference")
	}
}

func TestEqualAcrossCommitOrders(t *testing.T) {
	// Commit order must not matter (parallel workers commit arbitrarily).
	_, sys := buildToggler()
	a, b := NewRecorder(), NewRecorder()
	e1 := Entry{LP: 0, TS: vtime.VT{PT: 1}, Item: kernel.SigChange{Value: stdlogic.L1}}
	e2 := Entry{LP: 1, TS: vtime.VT{PT: 2}, Item: kernel.SigChange{Value: stdlogic.L0}}
	a.Commit(e1.LP, e1.TS, e1.Item)
	a.Commit(e2.LP, e2.TS, e2.Item)
	b.Commit(e2.LP, e2.TS, e2.Item)
	b.Commit(e1.LP, e1.TS, e1.Item)
	if ok, diff := Equal(sys, a, b); !ok {
		t.Errorf("order sensitivity: %s", diff)
	}
}

func TestWriteVCD(t *testing.T) {
	_, sys := buildToggler()
	rec := NewRecorder()
	if _, err := pdes.RunSequential(sys, 50*vtime.NS, rec); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := WriteVCD(&sb, sys, rec, "toggler"); err != nil {
		t.Fatal(err)
	}
	vcd := sb.String()
	// IDs are assigned in first-appearance order: v changes at time zero
	// (the initial evaluation drives "01"), a first changes at 5ns.
	for _, want := range []string{
		"$timescale",
		"$scope module toggler $end",
		"$var wire 2 ! v $end",
		`$var wire 1 " a $end`,
		"$enddefinitions $end",
		"#5000000", // 5ns in fs
		`1"`,
		"b11 !",
	} {
		if !strings.Contains(vcd, want) {
			t.Errorf("VCD missing %q:\n%s", want, vcd)
		}
	}
	// Delta collapse: within one physical time only the final value of a
	// signal appears, so "b01" at t=0 (initial eval) then "b11" at 5ns.
	if strings.Count(vcd, "#5000000") != 1 {
		t.Error("duplicate timestamp sections")
	}
}

func TestRenderReportAndScalars(t *testing.T) {
	_, sys := buildToggler()
	rec := NewRecorder()
	rec.Commit(0, vtime.VT{PT: 1}, kernel.ReportNote{Severity: "note", Message: "hello"})
	rec.Commit(1, vtime.VT{PT: 2}, kernel.SigChange{Value: int64(42)})
	rec.Commit(1, vtime.VT{PT: 3}, kernel.SigChange{Value: true})
	rec.Commit(1, vtime.VT{PT: 4}, "raw item")
	lines := strings.Join(rec.Lines(sys), "\n")
	for _, want := range []string{"report(note): hello", "= 42", "= true", "raw item"} {
		if !strings.Contains(lines, want) {
			t.Errorf("missing %q in:\n%s", want, lines)
		}
	}
	if rec.Len() != 4 {
		t.Errorf("Len = %d", rec.Len())
	}
}

func TestVCDBitRendering(t *testing.T) {
	_, sys := buildToggler()
	rec := NewRecorder()
	for i, v := range []stdlogic.Std{stdlogic.L0, stdlogic.L1, stdlogic.Z, stdlogic.X, stdlogic.U} {
		rec.Commit(0, vtime.VT{PT: vtime.Time(i + 1)}, kernel.SigChange{Value: v})
	}
	var sb strings.Builder
	if err := WriteVCD(&sb, sys, rec, "bits"); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"0!", "1!", "z!", "x!"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in VCD:\n%s", want, out)
		}
	}
}
