// Incremental trace consumption for streaming sessions.
//
// A parallel run commits records out of order; the full trace only becomes
// the deterministic (TS, LP, item) sequence after a final sort. A Cursor
// recovers increments of that final sequence while the run is still going,
// using the GVT watermark: once every worker has fossil-collected past a
// committed GVT (which pdes.Config.OnGVT's lag-one guarantee provides for
// CheckpointEvery <= 1 runs and sequential runs trivially), no new record
// below that time can ever appear, so the entries below it can be sorted
// and emitted as a final prefix.
package trace

import (
	"fmt"
	"io"
	"strings"

	"govhdl/internal/kernel"
	"govhdl/internal/pdes"
	"govhdl/internal/vtime"
)

// Cursor incrementally drains a Recorder in deterministic order. Advance and
// Drain must be called from one goroutine at a time (the recorder itself may
// be fed concurrently). The concatenation of all returned batches equals
// Recorder.Sorted() of the finished run.
type Cursor struct {
	rec      *Recorder
	consumed int // high-water index into the recorder's commit order
	pending  []Entry
}

// NewCursor returns a cursor positioned at the start of rec.
func NewCursor(rec *Recorder) *Cursor { return &Cursor{rec: rec} }

// Advance collects newly committed records and returns, sorted, those
// finalized below the watermark: every entry with TS < wm, none of which
// will ever be committed again. The caller must guarantee the watermark
// property (see the package comment); watermarks must be nondecreasing
// across calls.
func (c *Cursor) Advance(wm vtime.VT) []Entry {
	fresh, n := c.rec.Since(c.consumed)
	c.consumed = n
	c.pending = append(c.pending, fresh...)
	// Partition in place: ready below the watermark, the rest stays pending.
	ready := make([]Entry, 0, len(c.pending))
	keep := c.pending[:0]
	for _, e := range c.pending {
		if e.TS.Less(wm) {
			ready = append(ready, e)
		} else {
			keep = append(keep, e)
		}
	}
	c.pending = keep
	if len(ready) == 0 {
		return nil
	}
	SortEntries(ready)
	return ready
}

// Drain returns everything not yet emitted, sorted; call it once after the
// run has fully unwound. The cursor remains usable only for further Drains
// (which return nil unless the recorder somehow grew).
func (c *Cursor) Drain() []Entry {
	fresh, n := c.rec.Since(c.consumed)
	c.consumed = n
	out := append(c.pending, fresh...)
	c.pending = nil
	if len(out) == 0 {
		return nil
	}
	SortEntries(out)
	return out
}

// VCDStreamer renders a Value Change Dump incrementally from Cursor batches.
// Unlike WriteVCD — which discovers signals from the finished trace — the
// streamer needs the header before any data, so it declares every "sig:"
// signal of the design upfront with widths derived from the initial values.
// The output for a completed run is semantically equivalent to WriteVCD's
// (same changes at the same times); the $var section may order or include
// signals differently, since WriteVCD omits signals that never change.
type VCDStreamer struct {
	w       io.Writer
	idFor   map[pdes.LPID]string
	started bool
	curTime vtime.Time
	pending map[string]string // id -> vcd value text (delta collapse)
	order   []string
}

// NewVCDStreamer writes the full VCD header for the built design and
// returns a streamer ready for Feed. The design must be built (so signal
// LP IDs are assigned).
func NewVCDStreamer(w io.Writer, d *kernel.Design, designName string) (*VCDStreamer, error) {
	s := &VCDStreamer{w: w, idFor: make(map[pdes.LPID]string), pending: map[string]string{}}
	if _, err := fmt.Fprintf(w, "$date\n  govhdl\n$end\n$version\n  govhdl distributed VHDL simulator\n$end\n$timescale\n  1fs\n$end\n$scope module %s $end\n", designName); err != nil {
		return nil, err
	}
	for i, sig := range d.Signals() {
		id := vcdID(i)
		s.idFor[d.SignalLPID(sig)] = id
		if _, err := fmt.Fprintf(w, "$var wire %d %s %s $end\n", vcdWidth(sig.Init), id, sig.Name); err != nil {
			return nil, err
		}
	}
	if _, err := fmt.Fprint(w, "$upscope $end\n$enddefinitions $end\n"); err != nil {
		return nil, err
	}
	return s, nil
}

// Feed consumes one finalized batch (as produced by Cursor.Advance, i.e.
// sorted, and wholly before every later batch). Delta cycles collapse onto
// their physical time even across batch boundaries: a time step is only
// flushed once a later one appears, or at Close.
func (s *VCDStreamer) Feed(entries []Entry) error {
	for _, e := range entries {
		sc, ok := e.Item.(kernel.SigChange)
		if !ok {
			continue
		}
		id, ok := s.idFor[e.LP]
		if !ok {
			continue
		}
		if !s.started || e.TS.PT != s.curTime {
			if err := s.flush(); err != nil {
				return err
			}
			s.curTime = e.TS.PT
			s.started = true
		}
		if _, dup := s.pending[id]; !dup {
			s.order = append(s.order, id)
		}
		s.pending[id] = vcdValue(sc.Value, id)
	}
	return nil
}

// Close flushes the final time step.
func (s *VCDStreamer) Close() error { return s.flush() }

func (s *VCDStreamer) flush() error {
	if !s.started || len(s.order) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(s.w, "#%d\n", uint64(s.curTime)); err != nil {
		return err
	}
	for _, id := range s.order {
		if _, err := fmt.Fprintln(s.w, s.pending[id]); err != nil {
			return err
		}
	}
	s.pending = map[string]string{}
	s.order = s.order[:0]
	return nil
}

// vcdBody strips the header (everything through $enddefinitions) so the
// change section of two dumps can be compared regardless of how the signals
// were declared.
func vcdBody(dump string) string {
	const marker = "$enddefinitions $end\n"
	if i := strings.Index(dump, marker); i >= 0 {
		return dump[i+len(marker):]
	}
	return dump
}
