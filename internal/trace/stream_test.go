package trace

import (
	"strings"
	"sync"
	"testing"

	"govhdl/internal/kernel"
	"govhdl/internal/pdes"
	"govhdl/internal/stdlogic"
	"govhdl/internal/vtime"
)

// buildTicker builds a toggle flip-flop with a free-running clock: steady
// trace activity for as long as the horizon runs, so a parallel run spans
// many GVT rounds.
func buildTicker() (*kernel.Design, *pdes.System) {
	d := kernel.NewDesign("ticker")
	clk := d.AddSignal("clk", stdlogic.L0)
	q := d.AddSignal("q", stdlogic.L0)
	nq := d.AddSignal("nq", stdlogic.L1)
	d.AddProcess("clock", &kernel.ClockGen{Half: 5 * vtime.NS}, nil, []*kernel.Signal{clk})
	d.AddProcess("tff", &kernel.Reg{Delay: vtime.NS, NumData: 1},
		[]*kernel.Signal{clk, nq}, []*kernel.Signal{q})
	d.AddProcess("inv", kernel.NewComb(1, func(c *kernel.ProcCtx) {
		c.Assign(0, stdlogic.Not(c.Std(0)), 0)
	}), []*kernel.Signal{q}, []*kernel.Signal{nq})
	sys := d.Build()
	return d, sys
}

const tickerHorizon = 2000 * vtime.NS

func renderAll(sys *pdes.System, entries []Entry) []string {
	out := make([]string, len(entries))
	for i, e := range entries {
		out[i] = Line(sys, e)
	}
	return out
}

// TestCursorStreamsSortedPrefix is the streaming contract end to end: the
// concatenation of the batches a Cursor emits at GVT watermarks, plus the
// final Drain, equals the full deterministic trace — which in turn equals
// the sequential oracle's.
func TestCursorStreamsSortedPrefix(t *testing.T) {
	_, soloSys := buildTicker()
	soloRec := NewRecorder()
	if _, err := pdes.RunSequential(soloSys, tickerHorizon, soloRec); err != nil {
		t.Fatal(err)
	}
	want := renderAll(soloSys, soloRec.Sorted())

	_, sys := buildTicker()
	rec := NewRecorder()
	cur := NewCursor(rec)
	var (
		mu       sync.Mutex
		streamed []Entry
		batches  int
		lastWM   vtime.VT
	)
	_, err := pdes.Run(sys, pdes.Config{
		Protocol: pdes.ProtoOptimistic,
		Workers:  2,
		// A tight GVT cadence plus bounded optimism keeps the run
		// multi-round with intermediate GVT values even on a fast machine,
		// so the incremental path is genuinely exercised.
		GVTEvery:       32,
		ThrottleWindow: 100 * vtime.NS,
		OnGVT: func(gvt vtime.VT) {
			// Lag-one: at this callback, entries below the PREVIOUS GVT are
			// final (every worker fossil-collected past it before acking).
			mu.Lock()
			if b := cur.Advance(lastWM); len(b) > 0 {
				streamed = append(streamed, b...)
				batches++
			}
			lastWM = gvt
			mu.Unlock()
		},
	}, tickerHorizon, rec)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	streamed = append(streamed, cur.Drain()...)

	if batches < 2 {
		t.Fatalf("streaming was vacuous: only %d incremental batches", batches)
	}
	got := renderAll(sys, streamed)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatalf("streamed trace (%d lines) diverged from sequential oracle (%d lines)", len(got), len(want))
	}
	// And a second Drain is empty: nothing is emitted twice.
	if extra := cur.Drain(); len(extra) != 0 {
		t.Fatalf("second Drain returned %d entries", len(extra))
	}
}

// TestCursorPartition pins the watermark semantics at the unit level:
// Advance(wm) returns exactly the sorted entries strictly below wm.
func TestCursorPartition(t *testing.T) {
	_, sys := buildTicker()
	rec := NewRecorder()
	if _, err := pdes.RunSequential(sys, 100*vtime.NS, rec); err != nil {
		t.Fatal(err)
	}
	all := rec.Sorted()
	cur := NewCursor(rec)
	wm := vtime.VT{PT: 42 * vtime.NS}
	head := cur.Advance(wm)
	for _, e := range head {
		if !e.TS.Less(wm) {
			t.Fatalf("entry at %v emitted below watermark %v", e.TS, wm)
		}
	}
	tail := cur.Drain()
	got := renderAll(sys, append(append([]Entry(nil), head...), tail...))
	want := renderAll(sys, all)
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Fatal("head+tail does not reconstruct the full sorted trace")
	}
	if len(head) == 0 || len(tail) == 0 {
		t.Fatalf("degenerate partition: head=%d tail=%d", len(head), len(tail))
	}
}

// TestVCDStreamerBatchInvariant: the streamed dump must not depend on how
// the finalized entries were split into batches, and must collapse delta
// cycles across batch boundaries exactly like the one-shot path.
func TestVCDStreamerBatchInvariant(t *testing.T) {
	d, sys := buildTicker()
	rec := NewRecorder()
	if _, err := pdes.RunSequential(sys, 100*vtime.NS, rec); err != nil {
		t.Fatal(err)
	}
	all := rec.Sorted()

	dump := func(batches [][]Entry) string {
		var b strings.Builder
		s, err := NewVCDStreamer(&b, d, "ticker")
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range batches {
			if err := s.Feed(batch); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	oneShot := dump([][]Entry{all})
	// Split at every 7th entry — guaranteed to cut inside time steps.
	var chopped [][]Entry
	for i := 0; i < len(all); i += 7 {
		end := i + 7
		if end > len(all) {
			end = len(all)
		}
		chopped = append(chopped, all[i:end])
	}
	if got := dump(chopped); got != oneShot {
		t.Fatalf("batch split changed the dump:\n%s\n--- vs ---\n%s", got, oneShot)
	}

	// Header declares every signal of the design, data section is present.
	for _, w := range []string{" clk ", " q ", " nq ", "$enddefinitions", "#5000000\n"} {
		if !strings.Contains(oneShot, w) {
			t.Fatalf("dump missing %q:\n%s", w, oneShot)
		}
	}
	if !strings.Contains(vcdBody(oneShot), "#") {
		t.Fatal("vcdBody stripped the data section")
	}
}
