package transport

import (
	"testing"
	"time"

	"govhdl/internal/pdes"
)

func TestListenRequiresController(t *testing.T) {
	if _, err := Listen("127.0.0.1:0", 3, []int{1}); err == nil {
		t.Fatal("Listen accepted a node without endpoint 0")
	}
}

func TestDialRejectsController(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 3, []int{0, 1}); err == nil {
		t.Fatal("Dial accepted endpoint 0")
	}
}

func TestDialUnreachable(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", 2, []int{1}, WithDialRetry(2, time.Millisecond)); err == nil {
		t.Fatal("Dial to a dead address succeeded")
	}
}

func TestNodeErrSurfacesRouteFailures(t *testing.T) {
	addr := freeAddr(t)
	done := make(chan *Node, 1)
	go func() {
		hub, err := Listen(addr, 2, []int{0})
		if err != nil {
			done <- nil
			return
		}
		done <- hub
	}()
	peer, err := Dial(addr, 2, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	hub := <-done
	if hub == nil {
		t.Fatal("hub failed")
	}
	defer hub.Close()
	defer peer.Close()

	// A destination nobody hosts is an asynchronous routing error.
	peer.Endpoint(1).Send(7, &pdes.Msg{Kind: 200})
	for i := 0; i < 100; i++ {
		if peer.Err() != nil {
			return
		}
	}
	// The error may also surface at the hub side (forwarding).
	if hub.Err() == nil && peer.Err() == nil {
		t.Fatal("routing to a nonexistent endpoint reported no error")
	}
}

func TestRegisterGobIdempotent(t *testing.T) {
	RegisterGob()
	RegisterGob() // second call must not panic (gob.Register double-registration does)
}
