// Package transport connects PDES endpoints across processes over TCP with
// gob encoding — the reproduction of the paper's "implemented in C++, using
// MPI or TCP/IP sockets for communication" distributed mode.
//
// Topology: the process hosting endpoint 0 (the GVT controller) listens and
// acts as the hub; every other process dials in and announces which
// endpoints it hosts. Messages are routed through the hub, which preserves
// the per-(sender, receiver) FIFO order the PDES protocol requires: each
// inbound connection is drained by a single goroutine that forwards
// messages in arrival order.
//
// Failure model: the transport is fail-fast. The first connection error —
// a broken stream, a heartbeat timeout, a send to an unroutable endpoint —
// permanently fails the whole Node: the error is recorded (Err), every
// connection is torn down so peers notice promptly, and every hosted
// endpoint's Recv/TryRecv returns poison messages that make the PDES
// workers and controller unwind cleanly out of RunOn with a diagnosed
// error. There is no transparent reconnection; recovery is by restarting
// the cluster from a GVT-consistent checkpoint (pdes.Checkpoint).
//
// The opt-in membership layer (membership.go) softens the edges of that
// model: an epoch-numbered cluster view records joins and deaths, standby
// members come and go without failing anyone, and a participant's death is
// published as a view change before the node fails — so recovery policy
// knows exactly what was lost.
//
// Every participating process must construct an identical System and Config
// and call pdes.RunOn with its node's endpoints.
package transport

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"govhdl/internal/kernel"
	"govhdl/internal/pdes"
	"govhdl/internal/stdlogic"
	"govhdl/internal/vtime"
)

// protocolVersion is checked during the handshake so mismatched builds fail
// with a diagnosis instead of a gob decode error mid-run. Version 3
// introduced length-prefixed framing (see frameReader).
const protocolVersion = 3

// maxFrameBytes bounds one framed gob value. The length prefix of every
// frame is validated against it before any payload byte is consumed, so a
// corrupt or hostile prefix is diagnosed up front and can never drive
// allocation: frames are streamed, not buffered, on the receive side.
const maxFrameBytes = 16 << 20

// hbDst is the reserved wire destination for heartbeat frames; receivers
// drop it after refreshing their read deadline.
const hbDst = -1

// helloTimeout bounds how long each side waits for the handshake exchange.
const helloTimeout = 10 * time.Second

// RegisterGob registers every payload type the kernel sends over the wire.
// It is idempotent and called automatically by Listen/Dial.
func RegisterGob() {
	registerOnce.Do(func() {
		gob.Register(stdlogic.Std(0))
		gob.Register(stdlogic.Vec{})
		gob.Register(vtime.Time(0))
		gob.Register(int64(0))
		gob.Register(false)
		kernel.RegisterGob()
	})
}

var registerOnce sync.Once

// wire is the on-the-wire envelope: either one message (M) or a coalesced
// batch (Batch) for the same destination, framed and encoded as a single
// value so a batch pays the encoder and syscall cost once. View rides only
// on heartbeat frames (Dst == hbDst): membership updates never interleave
// with simulation payload.
type wire struct {
	Dst   int
	M     *pdes.Msg
	Batch []*pdes.Msg
	View  *View
}

// hello announces a joining process's hosted endpoints. The hub validates
// every claim before admitting the connection. Standby marks a member that
// hosts nothing yet (see DialStandby); it is only admissible when the hub
// runs with membership enabled.
type hello struct {
	Version int
	Total   int
	Hosted  []int
	Standby bool
}

// helloAck is the hub's verdict on a hello.
type helloAck struct {
	OK  bool
	Err string
}

// options collects the tunables shared by Listen and Dial.
type options struct {
	hbInterval     time.Duration
	hbTimeout      time.Duration
	dialAttempts   int
	dialBackoff    time.Duration
	dialBackoffCap time.Duration
	wrap           func(net.Conn) net.Conn
	onError        func(error)
	membership     bool
	onView         func(View)
}

func defaultOptions() options {
	return options{
		hbInterval:     time.Second,
		hbTimeout:      5 * time.Second,
		dialAttempts:   25,
		dialBackoff:    20 * time.Millisecond,
		dialBackoffCap: 500 * time.Millisecond,
	}
}

// Option customizes Listen or Dial.
type Option func(*options)

// WithHeartbeat sets the liveness probe cadence: every connection sends a
// heartbeat frame each interval, and a connection with no inbound traffic
// (messages or heartbeats) for timeout is declared dead. interval <= 0
// disables heartbeats and read deadlines entirely.
func WithHeartbeat(interval, timeout time.Duration) Option {
	return func(o *options) { o.hbInterval, o.hbTimeout = interval, timeout }
}

// WithDialRetry sets how persistently Dial chases a hub that has not started
// listening yet: attempts tries with backoff doubling per failure (capped at
// 500ms). attempts <= 1 means a single try.
func WithDialRetry(attempts int, backoff time.Duration) Option {
	return func(o *options) { o.dialAttempts, o.dialBackoff = attempts, backoff }
}

// WithConnWrapper interposes on every established connection, in both
// directions; package faultinject uses it to corrupt, delay, and kill
// streams under test.
func WithConnWrapper(wrap func(net.Conn) net.Conn) Option {
	return func(o *options) { o.wrap = wrap }
}

// WithOnError registers a callback invoked exactly once, with the first
// transport error, when the node fails.
func WithOnError(f func(error)) Option {
	return func(o *options) { o.onError = f }
}

// Node is this process's attachment to the cluster.
type Node struct {
	total  int
	hosted []int
	eps    map[int]*endpoint
	opts   options

	mu       sync.Mutex
	conns    map[int]*conn // remote endpoint id -> connection that hosts it
	live     []*conn       // every started connection, standbys included
	firstErr error
	lns      net.Listener

	failed    chan struct{} // closed on first transport error
	stopCh    chan struct{} // closed on deliberate Close
	failOnce  sync.Once
	closeOnce sync.Once
	closed    atomic.Bool // deliberate shutdown: late conn errors are expected
	wg        sync.WaitGroup

	// Membership state (membership.go). members is hub-only: it maps each
	// admitted connection to its index in view.Members.
	viewMu  sync.Mutex
	view    View
	members map[*conn]int
}

// conn frames outbound gob values: each send encodes into a reusable buffer
// and goes out as ONE Write of [4-byte big-endian length | payload]. A single
// write per frame keeps frames atomic with respect to concurrent senders
// (the mutex orders whole frames, never interleaved bytes) and gives fault
// injection a crisp unit to count.
type conn struct {
	c       net.Conn
	mu      sync.Mutex // serializes writes; guards buf/enc/scratch
	buf     bytes.Buffer
	enc     *gob.Encoder // encodes into buf; stream state persists across frames
	scratch []byte
	// viewSent is the newest view epoch pushed over this connection (hub
	// only); the heartbeat loop piggybacks the view when it lags.
	viewSent atomic.Uint64
}

func newConn(c net.Conn) *conn {
	cn := &conn{c: c}
	cn.enc = gob.NewEncoder(&cn.buf)
	return cn
}

func (cn *conn) send(v any) error {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	cn.buf.Reset()
	if err := cn.enc.Encode(v); err != nil {
		return err
	}
	n := cn.buf.Len()
	if n > maxFrameBytes {
		return fmt.Errorf("transport: frame of %d bytes exceeds the %d-byte limit", n, maxFrameBytes)
	}
	cn.scratch = append(cn.scratch[:0], byte(n>>24), byte(n>>16), byte(n>>8), byte(n))
	cn.scratch = append(cn.scratch, cn.buf.Bytes()...)
	_, err := cn.c.Write(cn.scratch)
	return err
}

// frameReader reassembles the framed byte stream for a gob decoder. It
// validates every length prefix before serving payload bytes and never
// buffers a frame: a hostile prefix errors immediately, a truncated payload
// surfaces as io.ErrUnexpectedEOF, and a clean EOF is only possible at a
// frame boundary.
type frameReader struct {
	src       io.Reader
	remaining int
	hdr       [4]byte
}

func newFrameReader(src io.Reader) *frameReader { return &frameReader{src: src} }

func (fr *frameReader) Read(p []byte) (int, error) {
	if fr.remaining == 0 {
		if _, err := io.ReadFull(fr.src, fr.hdr[:]); err != nil {
			if err == io.ErrUnexpectedEOF {
				return 0, fmt.Errorf("transport: truncated frame header: %w", err)
			}
			return 0, err // clean EOF at a frame boundary stays io.EOF
		}
		n := int(fr.hdr[0])<<24 | int(fr.hdr[1])<<16 | int(fr.hdr[2])<<8 | int(fr.hdr[3])
		if n <= 0 || n > maxFrameBytes {
			return 0, fmt.Errorf("transport: frame length %d outside (0, %d]", n, maxFrameBytes)
		}
		fr.remaining = n
	}
	if len(p) > fr.remaining {
		p = p[:fr.remaining]
	}
	n, err := fr.src.Read(p)
	fr.remaining -= n
	if err == io.EOF {
		if n == 0 {
			return 0, fmt.Errorf("transport: truncated frame payload (%d bytes missing): %w", fr.remaining, io.ErrUnexpectedEOF)
		}
		err = nil // the EOF resurfaces on the next call if the frame is short
	}
	return n, err
}

// validateWire rejects malformed envelopes after decoding, before routing:
// a frame must address a real endpoint (or be a bare heartbeat) and carry
// exactly one payload form. Anything else means stream corruption or a
// hostile peer, and fails the node rather than corrupting the run.
func validateWire(w *wire, total int) error {
	if w.Dst == hbDst {
		// A heartbeat may carry a membership view, never simulation payload.
		if w.M != nil || len(w.Batch) > 0 {
			return fmt.Errorf("transport: heartbeat frame carries a payload")
		}
		return nil
	}
	if w.View != nil {
		return fmt.Errorf("transport: frame for endpoint %d carries a membership view", w.Dst)
	}
	if w.Dst < 0 || w.Dst >= total {
		return fmt.Errorf("transport: frame addressed to endpoint %d, outside [0,%d)", w.Dst, total)
	}
	if w.M == nil && len(w.Batch) == 0 {
		return fmt.Errorf("transport: frame for endpoint %d has no payload", w.Dst)
	}
	if w.M != nil && len(w.Batch) > 0 {
		return fmt.Errorf("transport: frame for endpoint %d carries both a message and a batch", w.Dst)
	}
	for i, m := range w.Batch {
		if m == nil {
			return fmt.Errorf("transport: frame for endpoint %d has a nil message at batch index %d", w.Dst, i)
		}
	}
	return nil
}

type endpoint struct {
	node *Node
	self int
	box  chan *pdes.Msg
}

var _ pdes.Endpoint = (*endpoint)(nil)

func (e *endpoint) Self() int { return e.self }
func (e *endpoint) N() int    { return e.node.total }

func (e *endpoint) Send(dst int, m *pdes.Msg) {
	m.From = e.self
	e.node.route(&wire{Dst: dst, M: m})
}

func (e *endpoint) SendBatch(dst int, ms []*pdes.Msg) {
	for _, m := range ms {
		m.From = e.self
	}
	// The wire envelope may outlive this call (hub forwarding), so it gets
	// its own copy of the batch; the caller is free to reuse ms.
	batch := make([]*pdes.Msg, len(ms))
	copy(batch, ms)
	e.node.route(&wire{Dst: dst, Batch: batch})
}

func (e *endpoint) Recv() *pdes.Msg {
	select {
	case <-e.node.failed:
		return pdes.PoisonMsg(e.node.Err())
	default:
	}
	select {
	case m := <-e.box:
		return m
	case <-e.node.failed:
		return pdes.PoisonMsg(e.node.Err())
	}
}

func (e *endpoint) TryRecv() (*pdes.Msg, bool) {
	select {
	case <-e.node.failed:
		return pdes.PoisonMsg(e.node.Err()), true
	default:
	}
	select {
	case m := <-e.box:
		return m, true
	default:
		return nil, false
	}
}

// Poison fails the whole node: on a fail-fast transport a local supervision
// error (stall watchdog) is indistinguishable from a peer death — every
// hosted endpoint must unwind, and remote peers must notice promptly.
func (e *endpoint) Poison(err error) { e.node.fail(err) }

// QueueLen reports the messages buffered for this endpoint.
func (e *endpoint) QueueLen() int { return len(e.box) }

// route delivers a wire message: locally when the destination endpoint
// lives here, otherwise over the owning connection (the hub forwards).
// Any delivery failure permanently fails the node.
func (n *Node) route(w *wire) {
	select {
	case <-n.failed:
		return // already failing: drop, receivers get poison
	default:
	}
	if ep, ok := n.eps[w.Dst]; ok {
		if w.Batch != nil {
			for _, m := range w.Batch {
				select {
				case ep.box <- m:
				case <-n.failed:
					return
				case <-n.stopCh:
					return
				}
			}
			return
		}
		select {
		case ep.box <- w.M:
		case <-n.failed:
		case <-n.stopCh:
		}
		return
	}
	n.mu.Lock()
	cn := n.conns[w.Dst]
	n.mu.Unlock()
	if cn == nil {
		n.fail(fmt.Errorf("transport: no route to endpoint %d", w.Dst))
		return
	}
	if err := cn.send(w); err != nil {
		if !n.closed.Load() {
			n.fail(fmt.Errorf("transport: send to endpoint %d: %w", w.Dst, err))
		}
	}
}

// Endpoint returns a hosted endpoint by id.
func (n *Node) Endpoint(id int) pdes.Endpoint { return n.eps[id] }

// Endpoints returns all hosted endpoints, for pdes.RunOn.
func (n *Node) Endpoints() []pdes.Endpoint {
	out := make([]pdes.Endpoint, 0, len(n.eps))
	for _, id := range n.hosted {
		out = append(out, n.eps[id])
	}
	return out
}

// Err reports the sticky first transport error, or nil while the node is
// healthy. Once non-nil it never changes and never clears.
func (n *Node) Err() error {
	select {
	case <-n.failed:
		n.mu.Lock()
		defer n.mu.Unlock()
		return n.firstErr
	default:
		return nil
	}
}

// Failed returns a channel closed when the node fails, for callers that
// want to select on transport death.
func (n *Node) Failed() <-chan struct{} { return n.failed }

// fail records the first error, wakes every blocked receiver with poison,
// and tears down all connections so remote peers observe the failure
// promptly instead of hanging in the GVT protocol.
func (n *Node) fail(err error) {
	if n.closed.Load() {
		return
	}
	n.failOnce.Do(func() {
		n.mu.Lock()
		n.firstErr = err
		lns := n.lns
		conns := append([]*conn(nil), n.live...)
		n.mu.Unlock()
		close(n.failed)
		if n.opts.onError != nil {
			n.opts.onError(err)
		}
		if lns != nil {
			lns.Close()
		}
		for _, cn := range conns {
			cn.c.Close()
		}
	})
}

// Close tears the node down deliberately. It is idempotent and waits for
// every transport goroutine to exit before returning.
func (n *Node) Close() {
	n.closeOnce.Do(func() {
		n.closed.Store(true)
		close(n.stopCh)
		n.mu.Lock()
		lns := n.lns
		conns := append([]*conn(nil), n.live...)
		n.mu.Unlock()
		if lns != nil {
			lns.Close()
		}
		for _, cn := range conns {
			cn.c.Close()
		}
		n.wg.Wait()
	})
}

func newNode(total int, hosted []int, o options) *Node {
	n := &Node{
		total:  total,
		hosted: hosted,
		eps:    map[int]*endpoint{},
		opts:   o,
		conns:  map[int]*conn{},
		failed: make(chan struct{}),
		stopCh: make(chan struct{}),
	}
	for _, id := range hosted {
		// Deep buffering substitutes for the unbounded in-process
		// mailboxes; the GVT drain protocol bounds in-flight volume.
		n.eps[id] = &endpoint{node: n, self: id, box: make(chan *pdes.Msg, 1<<16)}
	}
	return n
}

// startConn begins draining (and, when enabled, heartbeating) an
// established, handshaken connection.
func (n *Node) startConn(cn *conn, dec *gob.Decoder) {
	n.mu.Lock()
	n.live = append(n.live, cn)
	n.mu.Unlock()
	n.wg.Add(1)
	go n.drain(cn, dec)
	if n.opts.hbInterval > 0 {
		n.wg.Add(1)
		go n.heartbeat(cn)
	}
}

// drain forwards everything arriving on cn into local endpoints or onward
// (hub only). A single goroutine per connection preserves FIFO order. A
// decode failure — peer death, heartbeat timeout, stream corruption — fails
// the node unless the node is already deliberately closed.
func (n *Node) drain(cn *conn, dec *gob.Decoder) {
	defer n.wg.Done()
	for {
		if n.opts.hbInterval > 0 {
			cn.c.SetReadDeadline(time.Now().Add(n.opts.hbTimeout))
		}
		var w wire
		if err := dec.Decode(&w); err != nil {
			if n.closed.Load() {
				return // deliberate shutdown
			}
			n.connDead(cn, n.diagnose(err))
			return
		}
		if err := validateWire(&w, n.total); err != nil {
			if n.closed.Load() {
				return
			}
			n.connDead(cn, err)
			return
		}
		if w.Dst == hbDst {
			if w.View != nil {
				n.applyView(w.View)
			}
			continue // heartbeat: deadline already refreshed
		}
		n.route(&w)
	}
}

// diagnose turns a raw stream error into an actionable one.
func (n *Node) diagnose(err error) error {
	var ne net.Error
	switch {
	case errors.As(err, &ne) && ne.Timeout():
		return fmt.Errorf("transport: heartbeat timeout (no traffic for %v): peer process is dead or wedged: %w", n.opts.hbTimeout, err)
	case errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF):
		return fmt.Errorf("transport: connection closed by peer (remote process exited): %w", err)
	default:
		return fmt.Errorf("transport: corrupt or interrupted stream: %w", err)
	}
}

// heartbeat keeps cn alive from this side: one frame per interval, until
// the node fails or closes.
func (n *Node) heartbeat(cn *conn) {
	defer n.wg.Done()
	t := time.NewTicker(n.opts.hbInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			v := n.viewForHeartbeat(cn)
			if err := cn.send(&wire{Dst: hbDst, View: v}); err != nil {
				if !n.closed.Load() {
					n.connDead(cn, fmt.Errorf("transport: heartbeat send: %w", err))
				}
				return
			}
			if v != nil {
				cn.viewSent.Store(v.Epoch)
			}
		case <-n.failed:
			return
		case <-n.stopCh:
			return
		}
	}
}

func validateHosted(total int, hosted []int) error {
	if total < 2 {
		return fmt.Errorf("transport: a cluster needs at least 2 endpoints, got %d", total)
	}
	if len(hosted) == 0 {
		return fmt.Errorf("transport: a node must host at least one endpoint")
	}
	seen := make(map[int]bool, len(hosted))
	for _, id := range hosted {
		if id < 0 || id >= total {
			return fmt.Errorf("transport: hosted endpoint %d out of range [0,%d)", id, total)
		}
		if seen[id] {
			return fmt.Errorf("transport: duplicate hosted endpoint %d", id)
		}
		seen[id] = true
	}
	return nil
}

// vetHello validates a dialer's claims against the hub's view of the
// cluster. claimed maps endpoint ids to true once owned (hub-hosted or
// admitted earlier).
func (n *Node) vetHello(h *hello, claimed map[int]bool) error {
	if h.Version != protocolVersion {
		return fmt.Errorf("transport: protocol version mismatch: hub speaks %d, dialer speaks %d (rebuild both sides from the same source)", protocolVersion, h.Version)
	}
	if h.Total != n.total {
		return fmt.Errorf("transport: cluster size mismatch: hub expects %d endpoints, dialer claims a cluster of %d", n.total, h.Total)
	}
	if len(h.Hosted) == 0 {
		return fmt.Errorf("transport: dialer hosts no endpoints")
	}
	local := make(map[int]bool, len(h.Hosted))
	for _, id := range h.Hosted {
		if id == 0 {
			return fmt.Errorf("transport: endpoint 0 (the GVT controller) lives on the listening node")
		}
		if id < 0 || id >= n.total {
			return fmt.Errorf("transport: claimed endpoint %d out of range [0,%d)", id, n.total)
		}
		if claimed[id] || local[id] {
			return fmt.Errorf("transport: endpoint %d already claimed by another process", id)
		}
		local[id] = true
	}
	return nil
}

// Listen starts the hub process. hosted must include endpoint 0 (the
// controller). It blocks until every other endpoint has been claimed by a
// dialing process, validating each claim and rejecting (with a diagnosed
// helloAck) dialers whose claims conflict — a rejection does not abort
// cluster formation.
//
// With membership enabled (WithMembership / WithOnViewChange) the hub also
// publishes the epoch-1 cluster view once formed and keeps accepting standby
// joins afterwards; see membership.go.
func Listen(addr string, total int, hosted []int, opts ...Option) (*Node, error) {
	RegisterGob()
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if err := validateHosted(total, hosted); err != nil {
		return nil, err
	}
	if !contains(hosted, 0) {
		return nil, fmt.Errorf("transport: the listening node must host endpoint 0")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	n := newNode(total, hosted, o)
	n.lns = ln
	if o.membership {
		// The hub itself is member 0 of every view.
		n.view.Members = append(n.view.Members, Member{
			Addr:   ln.Addr().String(),
			Hosted: append([]int(nil), hosted...),
			Alive:  true,
		})
	}

	claimed := make(map[int]bool, total)
	for _, id := range hosted {
		claimed[id] = true
	}
	for len(claimed) < total {
		c, err := ln.Accept()
		if err != nil {
			n.Close()
			return nil, fmt.Errorf("transport: accept: %w", err)
		}
		if o.wrap != nil {
			c = o.wrap(c)
		}
		// The handshake runs over the same framed gob streams as the run
		// itself, so a pre-version-3 peer fails the hello decode here with a
		// frame error instead of corrupting the stream later.
		cn := newConn(c)
		dec := gob.NewDecoder(newFrameReader(c))
		c.SetReadDeadline(time.Now().Add(helloTimeout))
		var h hello
		if err := dec.Decode(&h); err != nil {
			// A garbage connection (port scan, wrong protocol) must not
			// abort cluster formation.
			c.Close()
			continue
		}
		if h.Standby && o.membership {
			// A standby may join while the cluster is still forming.
			if err := n.vetStandbyHello(&h); err != nil {
				cn.send(&helloAck{Err: err.Error()})
				c.Close()
				continue
			}
			c.SetReadDeadline(time.Time{})
			if err := cn.send(&helloAck{OK: true}); err != nil {
				c.Close()
				continue
			}
			n.addMember(cn, Member{Addr: c.RemoteAddr().String(), Alive: true, Standby: true})
			n.startConn(cn, dec)
			continue
		}
		if err := n.vetHello(&h, claimed); err != nil {
			cn.send(&helloAck{Err: err.Error()})
			c.Close()
			continue
		}
		c.SetReadDeadline(time.Time{})
		if err := cn.send(&helloAck{OK: true}); err != nil {
			c.Close()
			continue
		}
		n.mu.Lock()
		for _, id := range h.Hosted {
			n.conns[id] = cn
			claimed[id] = true
		}
		n.mu.Unlock()
		if o.membership {
			n.addMember(cn, Member{Addr: c.RemoteAddr().String(), Hosted: append([]int(nil), h.Hosted...), Alive: true})
		}
		n.startConn(cn, dec)
	}
	if o.membership {
		n.initView()
		n.wg.Add(1)
		go n.acceptLoop()
	}
	return n, nil
}

// Dial joins a cluster as the host of the given endpoints, retrying with
// exponential backoff while the hub is not yet listening, then performing
// the validated handshake. A hub rejection returns its diagnosis.
func Dial(addr string, total int, hosted []int, opts ...Option) (*Node, error) {
	RegisterGob()
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	if err := validateHosted(total, hosted); err != nil {
		return nil, err
	}
	if contains(hosted, 0) {
		return nil, fmt.Errorf("transport: endpoint 0 lives on the listening node")
	}
	c, err := dialRetry(addr, &o)
	if err != nil {
		return nil, err
	}
	if o.wrap != nil {
		c = o.wrap(c)
	}
	cn := newConn(c)
	dec := gob.NewDecoder(newFrameReader(c))
	if err := cn.send(&hello{Version: protocolVersion, Total: total, Hosted: hosted}); err != nil {
		c.Close()
		return nil, fmt.Errorf("transport: handshake send: %w", err)
	}
	c.SetReadDeadline(time.Now().Add(helloTimeout))
	var ack helloAck
	if err := dec.Decode(&ack); err != nil {
		c.Close()
		return nil, fmt.Errorf("transport: handshake: no ack from hub: %w", err)
	}
	if !ack.OK {
		c.Close()
		return nil, fmt.Errorf("transport: hub rejected this node: %s", ack.Err)
	}
	c.SetReadDeadline(time.Time{})

	n := newNode(total, hosted, o)
	n.mu.Lock()
	for id := 0; id < total; id++ {
		if _, local := n.eps[id]; !local {
			n.conns[id] = cn // everything remote goes through the hub
		}
	}
	n.mu.Unlock()
	n.startConn(cn, dec)
	return n, nil
}

// dialRetry connects to addr, retrying with capped exponential backoff so a
// dialer started before the hub wins the race instead of erroring out.
func dialRetry(addr string, o *options) (net.Conn, error) {
	attempts := o.dialAttempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := o.dialBackoff
	if backoff <= 0 {
		backoff = 20 * time.Millisecond
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if i+1 < attempts {
			time.Sleep(backoff)
			backoff *= 2
			if backoff > o.dialBackoffCap {
				backoff = o.dialBackoffCap
			}
		}
	}
	return nil, fmt.Errorf("transport: dial %s: gave up after %d attempts: %w", addr, attempts, lastErr)
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
