// Package transport connects PDES endpoints across processes over TCP with
// gob encoding — the reproduction of the paper's "implemented in C++, using
// MPI or TCP/IP sockets for communication" distributed mode.
//
// Topology: the process hosting endpoint 0 (the GVT controller) listens and
// acts as the hub; every other process dials in and announces which
// endpoints it hosts. Messages are routed through the hub, which preserves
// the per-(sender, receiver) FIFO order the PDES protocol requires: each
// inbound connection is drained by a single goroutine that forwards
// messages in arrival order.
//
// Every participating process must construct an identical System and Config
// and call pdes.RunOn with its node's endpoints.
package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"

	"govhdl/internal/kernel"
	"govhdl/internal/pdes"
	"govhdl/internal/stdlogic"
	"govhdl/internal/vtime"
)

// RegisterGob registers every payload type the kernel sends over the wire.
// It is idempotent and called automatically by Listen/Dial.
func RegisterGob() {
	registerOnce.Do(func() {
		gob.Register(stdlogic.Std(0))
		gob.Register(stdlogic.Vec{})
		gob.Register(vtime.Time(0))
		gob.Register(int64(0))
		gob.Register(false)
		kernel.RegisterGob()
	})
}

var registerOnce sync.Once

// wire is the on-the-wire envelope: either one message (M) or a coalesced
// batch (Batch) for the same destination, framed and encoded as a single
// value so a batch pays the encoder and syscall cost once.
type wire struct {
	Dst   int
	M     *pdes.Msg
	Batch []*pdes.Msg
}

// hello announces a joining process's hosted endpoints.
type hello struct {
	Hosted []int
}

// Node is this process's attachment to the cluster.
type Node struct {
	total  int
	hosted []int
	eps    map[int]*endpoint

	mu    sync.Mutex
	conns map[int]*conn // remote endpoint id -> connection that hosts it
	lns   net.Listener
	wg    sync.WaitGroup
	errCh chan error
}

type conn struct {
	c   net.Conn
	enc *gob.Encoder
	mu  sync.Mutex // serializes writes
}

func (cn *conn) send(w *wire) error {
	cn.mu.Lock()
	defer cn.mu.Unlock()
	return cn.enc.Encode(w)
}

type endpoint struct {
	node *Node
	self int
	box  chan *pdes.Msg
}

var _ pdes.Endpoint = (*endpoint)(nil)

func (e *endpoint) Self() int { return e.self }
func (e *endpoint) N() int    { return e.node.total }

func (e *endpoint) Send(dst int, m *pdes.Msg) {
	m.From = e.self
	e.node.route(&wire{Dst: dst, M: m})
}

func (e *endpoint) SendBatch(dst int, ms []*pdes.Msg) {
	for _, m := range ms {
		m.From = e.self
	}
	// The wire envelope may outlive this call (hub forwarding), so it gets
	// its own copy of the batch; the caller is free to reuse ms.
	batch := make([]*pdes.Msg, len(ms))
	copy(batch, ms)
	e.node.route(&wire{Dst: dst, Batch: batch})
}

func (e *endpoint) Recv() *pdes.Msg { return <-e.box }

func (e *endpoint) TryRecv() (*pdes.Msg, bool) {
	select {
	case m := <-e.box:
		return m, true
	default:
		return nil, false
	}
}

// route delivers a wire message: locally when the destination endpoint
// lives here, otherwise over the owning connection (the hub forwards).
func (n *Node) route(w *wire) {
	if ep, ok := n.eps[w.Dst]; ok {
		if w.Batch != nil {
			for _, m := range w.Batch {
				ep.box <- m
			}
			return
		}
		ep.box <- w.M
		return
	}
	n.mu.Lock()
	cn := n.conns[w.Dst]
	n.mu.Unlock()
	if cn == nil {
		select {
		case n.errCh <- fmt.Errorf("transport: no route to endpoint %d", w.Dst):
		default:
		}
		return
	}
	if err := cn.send(w); err != nil {
		select {
		case n.errCh <- fmt.Errorf("transport: send to endpoint %d: %w", w.Dst, err):
		default:
		}
	}
}

// Endpoint returns a hosted endpoint by id.
func (n *Node) Endpoint(id int) pdes.Endpoint { return n.eps[id] }

// Endpoints returns all hosted endpoints, for pdes.RunOn.
func (n *Node) Endpoints() []pdes.Endpoint {
	out := make([]pdes.Endpoint, 0, len(n.eps))
	for _, id := range n.hosted {
		out = append(out, n.eps[id])
	}
	return out
}

// Err reports the first asynchronous transport error, if any.
func (n *Node) Err() error {
	select {
	case err := <-n.errCh:
		return err
	default:
		return nil
	}
}

// Close tears the node down.
func (n *Node) Close() {
	if n.lns != nil {
		n.lns.Close()
	}
	n.mu.Lock()
	for _, cn := range n.conns {
		cn.c.Close()
	}
	n.mu.Unlock()
}

func newNode(total int, hosted []int) *Node {
	n := &Node{
		total:  total,
		hosted: hosted,
		eps:    map[int]*endpoint{},
		conns:  map[int]*conn{},
		errCh:  make(chan error, 8),
	}
	for _, id := range hosted {
		// Deep buffering substitutes for the unbounded in-process
		// mailboxes; the GVT drain protocol bounds in-flight volume.
		n.eps[id] = &endpoint{node: n, self: id, box: make(chan *pdes.Msg, 1<<16)}
	}
	return n
}

// drain forwards everything arriving on cn into local endpoints or onward
// (hub only). A single goroutine per connection preserves FIFO order.
func (n *Node) drain(cn *conn, dec *gob.Decoder) {
	defer n.wg.Done()
	for {
		var w wire
		if err := dec.Decode(&w); err != nil {
			return // connection closed
		}
		n.route(&w)
	}
}

// Listen starts the hub process. hosted must include endpoint 0 (the
// controller). It blocks until every other endpoint has been claimed by a
// dialing process.
func Listen(addr string, total int, hosted []int) (*Node, error) {
	RegisterGob()
	if !contains(hosted, 0) {
		return nil, fmt.Errorf("transport: the listening node must host endpoint 0")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	n := newNode(total, hosted)
	n.lns = ln

	claimed := len(hosted)
	for claimed < total {
		c, err := ln.Accept()
		if err != nil {
			n.Close()
			return nil, err
		}
		dec := gob.NewDecoder(c)
		enc := gob.NewEncoder(c)
		var h hello
		if err := dec.Decode(&h); err != nil {
			n.Close()
			return nil, fmt.Errorf("transport: bad hello: %w", err)
		}
		cn := &conn{c: c, enc: enc}
		n.mu.Lock()
		for _, id := range h.Hosted {
			n.conns[id] = cn
		}
		n.mu.Unlock()
		claimed += len(h.Hosted)
		n.wg.Add(1)
		go n.drain(cn, dec)
	}
	return n, nil
}

// Dial joins a cluster as the host of the given endpoints.
func Dial(addr string, total int, hosted []int) (*Node, error) {
	RegisterGob()
	if contains(hosted, 0) {
		return nil, fmt.Errorf("transport: endpoint 0 lives on the listening node")
	}
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	n := newNode(total, hosted)
	enc := gob.NewEncoder(c)
	dec := gob.NewDecoder(c)
	if err := enc.Encode(&hello{Hosted: hosted}); err != nil {
		c.Close()
		return nil, err
	}
	cn := &conn{c: c, enc: enc}
	n.mu.Lock()
	for id := 0; id < total; id++ {
		if _, local := n.eps[id]; !local {
			n.conns[id] = cn // everything remote goes through the hub
		}
	}
	n.mu.Unlock()
	n.wg.Add(1)
	go n.drain(cn, dec)
	return n, nil
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}
