package transport

import (
	"encoding/gob"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"govhdl/internal/faultinject"
	"govhdl/internal/pdes"
	"govhdl/internal/vtime"
)

// formPair builds a 2-endpoint cluster (hub hosts 0, peer hosts 1) with the
// given per-side options.
func formPair(t *testing.T, hubOpts, peerOpts []Option) (*Node, *Node) {
	t.Helper()
	addr := freeAddr(t)
	type res struct {
		n   *Node
		err error
	}
	hubCh := make(chan res, 1)
	go func() {
		n, err := Listen(addr, 2, []int{0}, hubOpts...)
		hubCh <- res{n, err}
	}()
	peer, err := Dial(addr, 2, []int{1}, peerOpts...)
	if err != nil {
		t.Fatal(err)
	}
	hr := <-hubCh
	if hr.err != nil {
		peer.Close()
		t.Fatal(hr.err)
	}
	return hr.n, peer
}

func TestCloseIdempotent(t *testing.T) {
	hub, peer := formPair(t, nil, nil)
	peer.Close()
	peer.Close() // second close must be a no-op, not a panic or hang
	hub.Close()
	hub.Close()
}

// waitErr polls for a sticky node error.
func waitErr(t *testing.T, n *Node, within time.Duration) error {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if err := n.Err(); err != nil {
			return err
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("node reported no error in time")
	return nil
}

// TestHeartbeatTimeout mutes the peer's write side after cluster formation:
// the connection stays open but silent, and the hub must diagnose the
// wedged peer via heartbeat timeout rather than hang.
func TestHeartbeatTimeout(t *testing.T) {
	var muted atomic.Bool
	hb := WithHeartbeat(50*time.Millisecond, 300*time.Millisecond)
	hub, peer := formPair(t,
		[]Option{hb},
		[]Option{hb, WithConnWrapper(func(c net.Conn) net.Conn {
			return &muteConn{Conn: c, muted: &muted}
		})},
	)
	defer hub.Close()
	defer peer.Close()

	muted.Store(true)
	err := waitErr(t, hub, 5*time.Second)
	if !strings.Contains(err.Error(), "heartbeat timeout") {
		t.Fatalf("hub error is not a heartbeat diagnosis: %v", err)
	}
	// A blocked Recv on the hub's endpoint must have been poisoned.
	m := hub.Endpoint(0).Recv()
	if m.Err == nil {
		t.Fatalf("Recv after failure returned a non-poison message: %+v", m)
	}
}

type muteConn struct {
	net.Conn
	muted *atomic.Bool
}

func (m *muteConn) Write(p []byte) (int, error) {
	if m.muted.Load() {
		return len(p), nil
	}
	return m.Conn.Write(p)
}

// TestMidRunKill runs a real distributed simulation and kills the peer's
// connection mid-run via seeded fault injection: both sides must unwind
// RunOn with a diagnosed transport error, never hang.
func TestMidRunKill(t *testing.T) {
	const until = 100 * vtime.NS
	addr := freeAddr(t)
	cfg := pdes.Config{Workers: 2, Protocol: pdes.ProtoDynamic, GVTEvery: 128}
	hb := WithHeartbeat(50*time.Millisecond, 500*time.Millisecond)

	var wg sync.WaitGroup
	var hubErr, peerErr error

	wg.Add(1)
	go func() {
		defer wg.Done()
		node, err := Listen(addr, 3, []int{0, 1}, hb)
		if err != nil {
			hubErr = err
			return
		}
		defer node.Close()
		_, sys := buildCounter()
		_, hubErr = pdes.RunOn(sys, cfg, until, &lineSink{sys: sys}, node.Endpoints())
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		plan := faultinject.Plan{Seed: 3, KillAfterWrites: 8}
		node, err := Dial(addr, 3, []int{2}, hb, WithConnWrapper(plan.Conn()))
		if err != nil {
			peerErr = err
			return
		}
		defer node.Close()
		_, sys := buildCounter()
		_, peerErr = pdes.RunOn(sys, cfg, until, &lineSink{sys: sys}, node.Endpoints())
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("killed cluster hung instead of failing fast")
	}
	if hubErr == nil {
		t.Fatal("hub RunOn succeeded despite the killed peer connection")
	}
	if peerErr == nil {
		t.Fatal("peer RunOn succeeded despite its killed connection")
	}
	for _, err := range []error{hubErr, peerErr} {
		if !strings.Contains(err.Error(), "transport") {
			t.Errorf("error lacks a transport diagnosis: %v", err)
		}
	}
}

// rawHello dials and performs the handshake by hand, returning the hub's
// verdict; used to probe claims the Dial API refuses to even send.
func rawHello(t *testing.T, addr string, h hello) helloAck {
	t.Helper()
	var c net.Conn
	var err error
	for i := 0; i < 100; i++ {
		if c, err = net.Dial("tcp", addr); err == nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := newConn(c).send(&h); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	var ack helloAck
	if err := gob.NewDecoder(newFrameReader(c)).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	return ack
}

// TestHelloValidation exercises the hub's claim vetting: every bad claim is
// rejected with a diagnosis and cluster formation continues, completing once
// valid dialers cover the remaining endpoints.
func TestHelloValidation(t *testing.T) {
	addr := freeAddr(t)
	type res struct {
		n   *Node
		err error
	}
	hubCh := make(chan res, 1)
	go func() {
		n, err := Listen(addr, 4, []int{0})
		hubCh <- res{n, err}
	}()

	cases := []struct {
		name string
		h    hello
		want string
	}{
		{"version", hello{Version: 1, Total: 4, Hosted: []int{2}}, "version mismatch"},
		{"total", hello{Version: protocolVersion, Total: 3, Hosted: []int{2}}, "size mismatch"},
		{"empty", hello{Version: protocolVersion, Total: 4, Hosted: nil}, "hosts no endpoints"},
		{"controller", hello{Version: protocolVersion, Total: 4, Hosted: []int{0}}, "controller"},
		{"range", hello{Version: protocolVersion, Total: 4, Hosted: []int{7}}, "out of range"},
	}
	for _, tc := range cases {
		ack := rawHello(t, addr, tc.h)
		if ack.OK || !strings.Contains(ack.Err, tc.want) {
			t.Fatalf("%s: want rejection containing %q, got %+v", tc.name, tc.want, ack)
		}
	}

	// The hub must still be accepting: claim endpoint 1 for real.
	p1, err := Dial(addr, 4, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	defer p1.Close()

	// Duplicate claim of an owned endpoint is rejected.
	if ack := rawHello(t, addr, hello{Version: protocolVersion, Total: 4, Hosted: []int{1}}); ack.OK || !strings.Contains(ack.Err, "already claimed") {
		t.Fatalf("duplicate claim not rejected: %+v", ack)
	}

	// The rejected Dial surface: a cluster-size mismatch comes back as a
	// hub rejection error from Dial itself.
	if _, err := Dial(addr, 5, []int{4}, WithDialRetry(1, 0)); err == nil || !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("mismatched Dial not rejected by hub: %v", err)
	}

	p2, err := Dial(addr, 4, []int{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()

	hr := <-hubCh
	if hr.err != nil {
		t.Fatal(hr.err)
	}
	hr.n.Close()
}
