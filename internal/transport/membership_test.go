package transport

import (
	"sync"
	"testing"
	"time"

	"govhdl/internal/faultinject"
)

// waitFor polls cond until it holds or the deadline passes. Membership is
// wall-clock-driven (connection teardown, heartbeats), so its tests observe
// convergence rather than exact interleavings.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

type viewLog struct {
	mu    sync.Mutex
	views []View
}

func (l *viewLog) add(v View) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.views = append(l.views, v)
}

func (l *viewLog) lastEpoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.views) == 0 {
		return 0
	}
	return l.views[len(l.views)-1].Epoch
}

// monotonic verifies the callback saw strictly increasing epochs.
func (l *viewLog) monotonic() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i := 1; i < len(l.views); i++ {
		if l.views[i].Epoch <= l.views[i-1].Epoch {
			return false
		}
	}
	return true
}

func findMember(v View, standby bool) (Member, bool) {
	for _, m := range v.Members {
		if m.Standby == standby {
			return m, true
		}
	}
	return Member{}, false
}

// TestMembershipLifecycle walks the full elastic arc: formation publishes
// epoch 1, a standby join and its death each bump the epoch without failing
// anyone, and a participant's death is recorded in the view before the node
// fails.
func TestMembershipLifecycle(t *testing.T) {
	addr := freeAddr(t)
	hubLog, peerLog := &viewLog{}, &viewLog{}
	hb := WithHeartbeat(20*time.Millisecond, 500*time.Millisecond)

	var hub *Node
	var hubErr error
	done := make(chan struct{})
	go func() {
		hub, hubErr = Listen(addr, 2, []int{0}, WithOnViewChange(hubLog.add), hb)
		close(done)
	}()
	peer, err := Dial(addr, 2, []int{1}, WithOnViewChange(peerLog.add), hb)
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if hubErr != nil {
		t.Fatal(hubErr)
	}
	defer hub.Close()
	defer peer.Close()

	// Epoch 1: hub + participant, all alive.
	v := hub.View()
	if v.Epoch != 1 || len(v.Members) != 2 || v.AliveCount() != 2 {
		t.Fatalf("formation view: %+v", v)
	}
	if v.Members[0].Hosted[0] != 0 || v.Members[1].Hosted[0] != 1 {
		t.Fatalf("formation members misattributed: %+v", v.Members)
	}
	waitFor(t, "peer to receive the formation view", func() bool { return peer.View().Epoch >= 1 })

	// A standby joins after formation: epoch bump, three members, no endpoints.
	standby, err := DialStandby(addr, 2, hb)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "hub to admit the standby", func() bool { return hub.View().Epoch >= 2 })
	v = hub.View()
	sb, ok := findMember(v, true)
	if !ok || !sb.Alive || len(sb.Hosted) != 0 {
		t.Fatalf("standby member wrong: %+v", v.Members)
	}
	waitFor(t, "peer to see the standby join", func() bool { return peer.View().Epoch >= 2 })
	waitFor(t, "standby to learn the view", func() bool { return standby.View().Epoch >= 2 })

	// Standby death: a view change, not a failure.
	standby.Close()
	waitFor(t, "hub to record the standby death", func() bool {
		sb, ok := findMember(hub.View(), true)
		return ok && !sb.Alive
	})
	if err := hub.Err(); err != nil {
		t.Fatalf("standby death must not fail the hub: %v", err)
	}
	if err := peer.Err(); err != nil {
		t.Fatalf("standby death must not fail the peer: %v", err)
	}
	waitFor(t, "peer to see the standby death", func() bool { return peer.View().Epoch >= 3 })

	// Participant death: recorded in the view, then fatal.
	peer.Close()
	waitFor(t, "hub to fail on participant death", func() bool { return hub.Err() != nil })
	v = hub.View()
	if v.Members[1].Alive {
		t.Fatalf("participant death not recorded in the view: %+v", v.Members)
	}
	if v.Epoch < 4 {
		t.Fatalf("participant death must bump the epoch, got %d", v.Epoch)
	}
	if !hubLog.monotonic() || !peerLog.monotonic() {
		t.Fatal("view callbacks must observe strictly increasing epochs")
	}
	if hubLog.lastEpoch() < 4 {
		t.Fatalf("hub callback missed the death view, last epoch %d", hubLog.lastEpoch())
	}
}

// TestStandbyJoinDuringFormation: a standby arriving before the cluster has
// formed is admitted and appears in the epoch-1 view.
func TestStandbyJoinDuringFormation(t *testing.T) {
	addr := freeAddr(t)
	var hub *Node
	var hubErr error
	done := make(chan struct{})
	go func() {
		hub, hubErr = Listen(addr, 2, []int{0}, WithMembership())
		close(done)
	}()
	standby, err := DialStandby(addr, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer standby.Close()
	peer, err := Dial(addr, 2, []int{1}, WithMembership())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	<-done
	if hubErr != nil {
		t.Fatal(hubErr)
	}
	defer hub.Close()

	v := hub.View()
	if v.Epoch != 1 || len(v.Members) != 3 {
		t.Fatalf("formation view with early standby: %+v", v)
	}
	if _, ok := findMember(v, true); !ok {
		t.Fatalf("standby missing from formation view: %+v", v.Members)
	}
}

// TestDelayedStandbyJoin: a standby whose hello is held back (the
// faultinject delayed-join mode) arrives after the cluster has formed and is
// admitted by the hub's post-formation accept loop.
func TestDelayedStandbyJoin(t *testing.T) {
	addr := freeAddr(t)
	var hub *Node
	var hubErr error
	done := make(chan struct{})
	go func() {
		hub, hubErr = Listen(addr, 2, []int{0}, WithMembership())
		close(done)
	}()
	peer, err := Dial(addr, 2, []int{1}, WithMembership())
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	<-done
	if hubErr != nil {
		t.Fatal(hubErr)
	}
	defer hub.Close()
	if v := hub.View(); v.Epoch != 1 || len(v.Members) != 2 {
		t.Fatalf("formation view: %+v", v)
	}

	wrap := WithConnWrapper(faultinject.Plan{JoinDelay: 60 * time.Millisecond}.Conn())
	standby, err := DialStandby(addr, 2, wrap)
	if err != nil {
		t.Fatalf("delayed standby join failed: %v", err)
	}
	defer standby.Close()
	waitFor(t, "delayed standby to appear in the view", func() bool {
		sb, ok := findMember(hub.View(), true)
		return ok && sb.Alive
	})
	if v := hub.View(); v.Epoch < 2 {
		t.Fatalf("late join must bump the epoch: %+v", v)
	}
}

// TestStandbyRejectedWithoutMembership: a hub running the fixed topology
// refuses standby hellos with a diagnosis.
func TestStandbyRejectedWithoutMembership(t *testing.T) {
	addr := freeAddr(t)
	var hub *Node
	var hubErr error
	done := make(chan struct{})
	go func() {
		hub, hubErr = Listen(addr, 2, []int{0})
		close(done)
	}()
	if _, err := DialStandby(addr, 2); err == nil {
		t.Fatal("standby admitted by a membership-disabled hub")
	}
	peer, err := Dial(addr, 2, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	<-done
	if hubErr != nil {
		t.Fatal(hubErr)
	}
	defer hub.Close()
	if v := hub.View(); v.Epoch != 0 {
		t.Fatalf("membership-disabled hub must keep the zero view, got %+v", v)
	}
}
