package transport

import (
	"encoding/gob"
	"fmt"
	"net"
	"time"
)

// Elastic cluster membership.
//
// The fixed-topology transport (Listen blocks until every endpoint is
// claimed, the first connection error fails the whole node) gains an opt-in
// membership layer: the hub maintains an epoch-numbered cluster view — who is
// connected, which endpoints each process hosts, who is alive — and
// propagates it to every peer, immediately on each change and piggybacked on
// heartbeat frames for anyone who missed a push. Join, leave and death
// surface as view changes through WithOnViewChange.
//
// Two kinds of member exist. *Participants* host endpoints of the running
// simulation; their death still fails the node (the PDES protocol cannot
// continue without them — the supervisor restarts from a checkpoint,
// migrating the dead node's LPs onto survivors), but the death is recorded in
// the view first, so recovery policy can see exactly which endpoints were
// lost. *Standbys* host nothing yet (DialStandby): they join and leave freely
// after cluster formation — the elastic pool a rebalance or recovery can
// promote — and their churn is never fatal to anyone.
//
// The view is policy input only: it never influences message routing or the
// committed trace, so its (wall-clock ordered) epochs do not violate the
// engine's determinism discipline.

// Member is one process in the cluster view.
type Member struct {
	Addr    string // remote address as the hub observed it
	Hosted  []int  // endpoint ids hosted by the process; empty for a standby
	Alive   bool
	Standby bool
}

// View is an epoch-numbered snapshot of cluster membership. Epoch 1 is
// cluster formation; every join, leave or death increments it. Dead members
// stay listed (Alive=false) so policy code can see what was lost.
type View struct {
	Epoch   uint64
	Members []Member
}

func (v *View) clone() View {
	out := View{Epoch: v.Epoch, Members: make([]Member, len(v.Members))}
	for i, m := range v.Members {
		m.Hosted = append([]int(nil), m.Hosted...)
		out.Members[i] = m
	}
	return out
}

// Alive counts the live members of the view.
func (v *View) AliveCount() int {
	n := 0
	for _, m := range v.Members {
		if m.Alive {
			n++
		}
	}
	return n
}

// WithMembership enables the cluster view: the hub keeps accepting
// connections after formation (standby joins), tracks member liveness, and
// propagates epoch-numbered views to every peer.
func WithMembership() Option {
	return func(o *options) { o.membership = true }
}

// WithOnViewChange registers a callback invoked (from a transport goroutine)
// with each new cluster view, in increasing epoch order. Implies
// WithMembership.
func WithOnViewChange(f func(View)) Option {
	return func(o *options) { o.membership, o.onView = true, f }
}

// View returns the node's current cluster view (a private copy). The zero
// View (epoch 0) means membership is disabled or no view has arrived yet.
// The view survives node failure: after a participant death fails the node,
// View still reports who died.
func (n *Node) View() View {
	n.viewMu.Lock()
	defer n.viewMu.Unlock()
	return n.view.clone()
}

// DialStandby joins a cluster as a standby member: no hosted endpoints, just
// a presence in the view and a stream of view updates. The hub must have
// membership enabled. total is the cluster's endpoint count (validated
// against the hub's, like any handshake).
func DialStandby(addr string, total int, opts ...Option) (*Node, error) {
	RegisterGob()
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	o.membership = true
	if total < 2 {
		return nil, fmt.Errorf("transport: a cluster needs at least 2 endpoints, got %d", total)
	}
	c, err := dialRetry(addr, &o)
	if err != nil {
		return nil, err
	}
	if o.wrap != nil {
		c = o.wrap(c)
	}
	cn := newConn(c)
	dec := gob.NewDecoder(newFrameReader(c))
	if err := cn.send(&hello{Version: protocolVersion, Total: total, Standby: true}); err != nil {
		c.Close()
		return nil, fmt.Errorf("transport: handshake send: %w", err)
	}
	c.SetReadDeadline(time.Now().Add(helloTimeout))
	var ack helloAck
	if err := dec.Decode(&ack); err != nil {
		c.Close()
		return nil, fmt.Errorf("transport: handshake: no ack from hub: %w", err)
	}
	if !ack.OK {
		c.Close()
		return nil, fmt.Errorf("transport: hub rejected this standby: %s", ack.Err)
	}
	c.SetReadDeadline(time.Time{})

	n := newNode(total, nil, o)
	n.startConn(cn, dec)
	return n, nil
}

// --- hub-side bookkeeping --------------------------------------------------

// addMember records a newly admitted connection in the hub's view. Epoch 0
// members accumulate during formation and are published together as epoch 1
// by initView; later joins bump the epoch themselves.
func (n *Node) addMember(cn *conn, m Member) {
	n.viewMu.Lock()
	if n.members == nil {
		n.members = map[*conn]int{}
	}
	n.members[cn] = len(n.view.Members)
	n.view.Members = append(n.view.Members, m)
	formed := n.view.Epoch > 0
	if formed {
		n.view.Epoch++
	}
	n.viewMu.Unlock()
	if formed {
		n.publishView()
	}
}

// initView publishes epoch 1 after cluster formation.
func (n *Node) initView() {
	n.viewMu.Lock()
	n.view.Epoch = 1
	n.viewMu.Unlock()
	n.publishView()
}

// markDead records a connection's death in the view. It reports whether the
// connection was tracked at all and whether every endpoint of the run
// survives it (true for standbys — their death is not fatal).
func (n *Node) markDead(cn *conn) (tracked, survivable bool) {
	n.viewMu.Lock()
	i, ok := n.members[cn]
	if !ok {
		n.viewMu.Unlock()
		return false, false
	}
	survivable = len(n.view.Members[i].Hosted) == 0
	if !n.view.Members[i].Alive {
		// Both the drain and the heartbeat goroutine can observe the same
		// death; only the first records it.
		n.viewMu.Unlock()
		return true, survivable
	}
	n.view.Members[i].Alive = false
	n.view.Epoch++
	n.viewMu.Unlock()
	n.publishView()
	return true, survivable
}

// publishView delivers the current view to the local callback and pushes it
// to every live member connection. Push errors are ignored: a dying
// connection's drain goroutine reports the death through the usual path.
func (n *Node) publishView() {
	n.viewMu.Lock()
	v := n.view.clone()
	cns := make([]*conn, 0, len(n.members))
	for cn, i := range n.members {
		if n.view.Members[i].Alive {
			cns = append(cns, cn)
		}
	}
	cb := n.opts.onView
	n.viewMu.Unlock()
	if cb != nil {
		cb(v)
	}
	for _, cn := range cns {
		if cn.send(&wire{Dst: hbDst, View: &v}) == nil {
			cn.viewSent.Store(v.Epoch)
		}
	}
}

// viewForHeartbeat returns the current view if cn has not seen its epoch yet
// (heartbeat piggyback — the catch-up path behind publishView's pushes).
func (n *Node) viewForHeartbeat(cn *conn) *View {
	if !n.opts.membership || n.members == nil {
		return nil
	}
	n.viewMu.Lock()
	defer n.viewMu.Unlock()
	if n.view.Epoch == 0 || cn.viewSent.Load() >= n.view.Epoch {
		return nil
	}
	v := n.view.clone()
	return &v
}

// applyView installs a view received from the hub (dialer side).
func (n *Node) applyView(v *View) {
	n.viewMu.Lock()
	if n.members != nil || v.Epoch <= n.view.Epoch {
		// The hub's own view is authoritative; stale epochs are dropped.
		n.viewMu.Unlock()
		return
	}
	n.view = v.clone()
	cb := n.opts.onView
	n.viewMu.Unlock()
	if cb != nil {
		cb(v.clone())
	}
}

// connDead handles a connection error: with membership enabled the death is
// recorded as a view change first, and a standby's death ends there — only a
// participant's death (or an untracked connection's) fails the node.
func (n *Node) connDead(cn *conn, err error) {
	if n.closed.Load() {
		return
	}
	if n.opts.membership {
		if tracked, survivable := n.markDead(cn); tracked && survivable {
			cn.c.Close()
			return
		}
	}
	n.fail(err)
}

// acceptLoop admits post-formation connections: standby joins (membership
// mode only). Runs until the listener closes (node failure or Close).
func (n *Node) acceptLoop() {
	defer n.wg.Done()
	for {
		c, err := n.lns.Accept()
		if err != nil {
			return
		}
		if n.opts.wrap != nil {
			c = n.opts.wrap(c)
		}
		n.wg.Add(1)
		go n.admitLate(c)
	}
}

// vetStandbyHello validates a standby's handshake: protocol and cluster
// shape must match, and it must not claim any endpoints.
func (n *Node) vetStandbyHello(h *hello) error {
	if h.Version != protocolVersion {
		return fmt.Errorf("transport: protocol version mismatch: hub speaks %d, dialer speaks %d (rebuild both sides from the same source)", protocolVersion, h.Version)
	}
	if h.Total != n.total {
		return fmt.Errorf("transport: cluster size mismatch: hub expects %d endpoints, dialer claims a cluster of %d", n.total, h.Total)
	}
	if len(h.Hosted) != 0 {
		return fmt.Errorf("transport: a standby must not claim endpoints")
	}
	return nil
}

// admitLate handshakes one post-formation connection. Every run endpoint is
// already claimed, so only standby hellos are admissible.
func (n *Node) admitLate(c net.Conn) {
	defer n.wg.Done()
	cn := newConn(c)
	dec := gob.NewDecoder(newFrameReader(c))
	c.SetReadDeadline(time.Now().Add(helloTimeout))
	var h hello
	if err := dec.Decode(&h); err != nil {
		c.Close()
		return
	}
	if !h.Standby {
		cn.send(&helloAck{Err: "transport: cluster already formed; only standby joins are accepted"})
		c.Close()
		return
	}
	if err := n.vetStandbyHello(&h); err != nil {
		cn.send(&helloAck{Err: err.Error()})
		c.Close()
		return
	}
	if err := cn.send(&helloAck{OK: true}); err != nil {
		c.Close()
		return
	}
	c.SetReadDeadline(time.Time{})
	n.addMember(cn, Member{Addr: c.RemoteAddr().String(), Alive: true, Standby: true})
	n.startConn(cn, dec)
}
