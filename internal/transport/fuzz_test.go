package transport

import (
	"bytes"
	"encoding/gob"
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"govhdl/internal/pdes"
	"govhdl/internal/vtime"
)

// frameBytes encodes values through the real framing path (conn.send over an
// in-memory pipe) and returns the raw frame stream, for seeding the fuzzer
// with well-formed inputs.
func frameBytes(t testing.TB, vs ...any) []byte {
	t.Helper()
	RegisterGob()
	a, b := net.Pipe()
	defer b.Close()
	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() {
		_, err := io.Copy(&buf, b)
		done <- err
	}()
	cn := newConn(a)
	for _, v := range vs {
		if err := cn.send(v); err != nil {
			t.Fatalf("frameBytes: %v", err)
		}
	}
	a.Close()
	if err := <-done; err != nil {
		t.Fatalf("frameBytes: %v", err)
	}
	return buf.Bytes()
}

// FuzzDecodeFrame throws hostile byte streams at the receive path — frame
// header validation plus the gob decode of wire envelopes plus validateWire.
// Any input may produce an error; none may panic, hang, or allocate
// proportionally to a length prefix rather than to the bytes actually
// supplied.
func FuzzDecodeFrame(f *testing.F) {
	RegisterGob()
	ev := &pdes.Event{TS: vtime.VT{PT: 7, LT: 1}, Src: 2, Dst: 3, Kind: 1}
	f.Add(frameBytes(f, &wire{Dst: hbDst}))
	f.Add(frameBytes(f, &wire{Dst: 1, M: &pdes.Msg{Kind: 1, From: 2, Ev: ev}}))
	f.Add(frameBytes(f,
		&wire{Dst: 0, M: &pdes.Msg{Kind: 3, From: 1, GVT: vtime.VT{PT: 5}}},
		&wire{Dst: 2, Batch: []*pdes.Msg{{Kind: 1, From: 1, Ev: ev}, {Kind: 2, From: 1}}},
	))
	f.Add(frameBytes(f, &hello{Version: protocolVersion, Total: 4, Hosted: []int{1, 2}}))
	// Hostile length prefixes: huge, zero, and a header claiming more than
	// the stream holds.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0, 0, 4, 0, 1, 2, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			return // frame limits are exercised via crafted headers above
		}
		fr := newFrameReader(bytes.NewReader(data))
		dec := gob.NewDecoder(fr)
		start := time.Now()
		for i := 0; i < 64; i++ {
			var w wire
			if err := dec.Decode(&w); err != nil {
				// Any error is acceptable (gob even maps some mid-stream
				// garbage, like a zero-length gob message, to io.EOF); the
				// frame layer's own EOF discipline is checked by
				// FuzzFrameReader.
				return
			}
			if err := validateWire(&w, 8); err != nil {
				return
			}
		}
		if time.Since(start) > 30*time.Second {
			t.Fatalf("decode loop took %v", time.Since(start))
		}
	})
}

// FuzzFrameReader drives the frame layer alone with arbitrary read chunking,
// checking the bookkeeping invariants hold regardless of how the payload is
// consumed.
func FuzzFrameReader(f *testing.F) {
	f.Add([]byte{0, 0, 0, 2, 9, 9}, 1)
	f.Add([]byte{0, 0, 0, 1, 5, 0, 0, 0, 1, 6}, 3)
	f.Add([]byte{0xff, 0, 0, 0, 1}, 4)
	f.Fuzz(func(t *testing.T, data []byte, chunk int) {
		if chunk <= 0 || chunk > 4096 || len(data) > 1<<20 {
			return
		}
		fr := newFrameReader(bytes.NewReader(data))
		p := make([]byte, chunk)
		var got int
		for {
			n, err := fr.Read(p)
			got += n
			if got > len(data) {
				t.Fatalf("frameReader produced %d payload bytes from a %d-byte stream", got, len(data))
			}
			if err != nil {
				if errors.Is(err, io.EOF) && fr.remaining != 0 {
					t.Fatalf("clean EOF mid-frame (%d bytes remaining)", fr.remaining)
				}
				return
			}
		}
	})
}
