package transport

import (
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"

	"govhdl/internal/kernel"
	"govhdl/internal/pdes"
	"govhdl/internal/stdlogic"
	"govhdl/internal/vtime"
)

// freeAddr reserves a localhost port.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

func TestWireFIFOAndRouting(t *testing.T) {
	addr := freeAddr(t)
	var hub *Node
	var err error
	done := make(chan struct{})
	go func() {
		hub, err = Listen(addr, 3, []int{0})
		close(done)
	}()
	// Dial's built-in backoff rides out the race with Listen.
	peer, derr := Dial(addr, 3, []int{1, 2})
	if derr != nil {
		t.Fatal(derr)
	}
	<-done
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	defer peer.Close()

	// Endpoint 1 -> endpoint 0 across the wire, in order.
	e1 := peer.Endpoint(1)
	for i := uint64(0); i < 100; i++ {
		e1.Send(0, &pdes.Msg{Kind: 200, Round: i})
	}
	e0 := hub.Endpoint(0)
	for i := uint64(0); i < 100; i++ {
		m := e0.Recv()
		if m.Round != i || m.From != 1 {
			t.Fatalf("got round %d from %d, want %d from 1", m.Round, m.From, i)
		}
	}
	// Endpoint 1 -> endpoint 2: both live on the peer, delivered locally.
	e1.Send(2, &pdes.Msg{Kind: 201, Round: 7})
	if m := peer.Endpoint(2).Recv(); m.Round != 7 || m.From != 1 {
		t.Fatalf("local routing failed: %+v", m)
	}
	// Endpoint 0 -> endpoint 2 goes over the wire.
	e0.Send(2, &pdes.Msg{Kind: 202, Round: 9})
	if m := peer.Endpoint(2).Recv(); m.Round != 9 || m.From != 0 {
		t.Fatalf("hub->peer routing failed: %+v", m)
	}
}

// buildCounter constructs the same small clocked design on every "process".
func buildCounter() (*kernel.Design, *pdes.System) {
	d := kernel.NewDesign("dist")
	clk := d.AddSignal("clk", stdlogic.L0, kernel.WithSignalClass(kernel.ClassClock))
	q := d.AddSignal("q", stdlogic.NewVec(4, stdlogic.L0))
	d.AddProcess("clkgen", &kernel.ClockGen{Half: 5 * vtime.NS}, nil,
		[]*kernel.Signal{clk}, kernel.WithProcClass(kernel.ClassClock))
	d.AddProcess("cnt", &distCounter{}, []*kernel.Signal{clk}, []*kernel.Signal{q},
		kernel.WithProcClass(kernel.ClassRegister))
	return d, d.Build()
}

type distCounter struct {
	n uint64
}

func (b *distCounter) Run(c *kernel.ProcCtx) kernel.Wait {
	if c.Rising(0) {
		b.n++
		c.Assign(0, stdlogic.FromUint(b.n, 4), vtime.NS)
	}
	return kernel.WaitOn(0)
}
func (b *distCounter) WaitCond(*kernel.ProcCtx) bool { return true }
func (b *distCounter) Snapshot() any                 { return b.n }
func (b *distCounter) Restore(s any)                 { b.n = s.(uint64) }

// lineSink renders committed records with the LP name.
type lineSink struct {
	mu   sync.Mutex
	sys  *pdes.System
	recs []string
}

func (s *lineSink) Commit(lp pdes.LPID, ts vtime.VT, item any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recs = append(s.recs, fmt.Sprintf("%s @%v %v", s.sys.Name(lp), ts, item))
}

func TestDistributedSimulationOverTCP(t *testing.T) {
	const until = 100 * vtime.NS

	// Sequential oracle, rendered by the same sink implementation.
	_, oracleSys := buildCounter()
	want := &lineSink{sys: oracleSys}
	if _, err := pdes.RunSequential(oracleSys, until, want); err != nil {
		t.Fatal(err)
	}
	wantLines := want.recs

	// Two "processes": the hub hosts the controller and worker 1, the peer
	// hosts worker 2.
	addr := freeAddr(t)
	cfg := pdes.Config{Workers: 2, Protocol: pdes.ProtoDynamic, GVTEvery: 128}

	var wg sync.WaitGroup
	var hubLines, peerLines []string
	var hubErr, peerErr error
	var hubGVT vtime.VT

	wg.Add(1)
	go func() {
		defer wg.Done()
		node, err := Listen(addr, 3, []int{0, 1})
		if err != nil {
			hubErr = err
			return
		}
		defer node.Close()
		_, sys := buildCounter()
		sink := &lineSink{sys: sys}
		res, err := pdes.RunOn(sys, cfg, until, sink, node.Endpoints())
		if err != nil {
			hubErr = err
			return
		}
		hubGVT = res.GVT
		hubLines = sink.recs
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		node, err := Dial(addr, 3, []int{2})
		if err != nil {
			peerErr = err
			return
		}
		defer node.Close()
		_, sys := buildCounter()
		sink := &lineSink{sys: sys}
		if _, err := pdes.RunOn(sys, cfg, until, sink, node.Endpoints()); err != nil {
			peerErr = err
			return
		}
		peerLines = sink.recs
	}()

	wg.Wait()
	if hubErr != nil {
		t.Fatalf("hub: %v", hubErr)
	}
	if peerErr != nil {
		t.Fatalf("peer: %v", peerErr)
	}
	if hubGVT.Less(vtime.VT{PT: until}) {
		t.Errorf("final GVT %v below horizon", hubGVT)
	}

	got := append(append([]string{}, hubLines...), peerLines...)
	sort.Strings(got)
	sort.Strings(wantLines)
	if strings.Join(got, "\n") != strings.Join(wantLines, "\n") {
		t.Errorf("distributed trace mismatch:\n got %d records\nwant %d records\n%s\n----\n%s",
			len(got), len(wantLines), strings.Join(got, "\n"), strings.Join(wantLines, "\n"))
	}
}

// buildMultiCounter is buildCounter with several counters on one clock, so
// migrating a single counter LP between workers leaves both sides with work.
func buildMultiCounter(nCnt int) (*kernel.Design, *pdes.System) {
	d := kernel.NewDesign("dist")
	clk := d.AddSignal("clk", stdlogic.L0, kernel.WithSignalClass(kernel.ClassClock))
	d.AddProcess("clkgen", &kernel.ClockGen{Half: 5 * vtime.NS}, nil,
		[]*kernel.Signal{clk}, kernel.WithProcClass(kernel.ClassClock))
	for i := 0; i < nCnt; i++ {
		q := d.AddSignal(fmt.Sprintf("q%d", i), stdlogic.NewVec(4, stdlogic.L0))
		d.AddProcess(fmt.Sprintf("cnt%d", i), &distCounter{}, []*kernel.Signal{clk},
			[]*kernel.Signal{q}, kernel.WithProcClass(kernel.ClassRegister))
	}
	return d, d.Build()
}

// TestDistributedMigrationOverTCP shuttles one LP between a hub-hosted and a
// peer-hosted worker while the run is live. Every shuttle crosses the process
// boundary, so this is the only test that exercises the remote install path:
// the receiver rebuilds the LP's model from its pristine snapshot by
// committed-log replay. The merged trace must still match the sequential
// oracle byte for byte.
func TestDistributedMigrationOverTCP(t *testing.T) {
	const until = 500 * vtime.NS

	_, oracleSys := buildMultiCounter(5)
	want := &lineSink{sys: oracleSys}
	if _, err := pdes.RunSequential(oracleSys, until, want); err != nil {
		t.Fatal(err)
	}
	wantLines := want.recs
	if len(wantLines) == 0 {
		t.Fatal("oracle produced no records")
	}

	// Both processes configure the same deterministic planner (the engine
	// requires it even though only the controller invokes it): bounce LP 3
	// between worker 1 (hub) and worker 2 (peer) every other committed round.
	planner := func(st *pdes.MigrationState) []pdes.Move {
		if st.Round == 0 || st.Round%2 != 0 {
			return nil
		}
		if st.Owner[3] == 1 {
			return []pdes.Move{{LP: 3, To: 2}}
		}
		return []pdes.Move{{LP: 3, To: 1}}
	}
	addr := freeAddr(t)
	cfg := pdes.Config{
		Workers:        2,
		Protocol:       pdes.ProtoDynamic,
		GVTEvery:       32,
		ThrottleWindow: 64,
		Migrate:        planner,
	}

	var wg sync.WaitGroup
	var hubLines, peerLines []string
	var hubErr, peerErr error
	var hubRes *pdes.Result

	wg.Add(1)
	go func() {
		defer wg.Done()
		node, err := Listen(addr, 3, []int{0, 1}, WithMembership())
		if err != nil {
			hubErr = err
			return
		}
		defer node.Close()
		_, sys := buildMultiCounter(5)
		sink := &lineSink{sys: sys}
		res, err := pdes.RunOn(sys, cfg, until, sink, node.Endpoints())
		if err != nil {
			hubErr = err
			return
		}
		hubRes = res
		hubLines = sink.recs
	}()

	wg.Add(1)
	go func() {
		defer wg.Done()
		node, err := Dial(addr, 3, []int{2}, WithMembership())
		if err != nil {
			peerErr = err
			return
		}
		defer node.Close()
		_, sys := buildMultiCounter(5)
		sink := &lineSink{sys: sys}
		if _, err := pdes.RunOn(sys, cfg, until, sink, node.Endpoints()); err != nil {
			peerErr = err
			return
		}
		peerLines = sink.recs
	}()

	wg.Wait()
	if hubErr != nil {
		t.Fatalf("hub: %v", hubErr)
	}
	if peerErr != nil {
		t.Fatalf("peer: %v", peerErr)
	}
	if hubRes.Metrics.Migrations == 0 {
		t.Fatal("no migrations happened; the test exercised nothing")
	}
	if hubRes.GVT.Less(vtime.VT{PT: until}) {
		t.Errorf("final GVT %v below horizon", hubRes.GVT)
	}

	got := append(append([]string{}, hubLines...), peerLines...)
	sort.Strings(got)
	sort.Strings(wantLines)
	if strings.Join(got, "\n") != strings.Join(wantLines, "\n") {
		t.Errorf("migrating distributed trace mismatch:\n got %d records\nwant %d records\n%s\n----\n%s",
			len(got), len(wantLines), strings.Join(got, "\n"), strings.Join(wantLines, "\n"))
	}
}
