package kernel

import (
	"govhdl/internal/stdlogic"
	"govhdl/internal/vtime"
)

// MaxDelta bounds the number of delta cycles at one physical time. A
// combinational zero-delay loop never advances physical time; detecting the
// runaway is friendlier than hanging (sequential VHDL simulators have the
// same limit). The check guards every process resumption (compiled and
// interpreted alike).
const MaxDelta = 100_000

// DesignError is a runtime fault of the simulated design (as opposed to a
// bug in the engine): a delta-cycle runaway, a resolution conflict and the
// like. It implements pdes.ModelError via ModelDiagnostic, so a run unwinds
// into a structured Model-flagged error instead of a crashed goroutine.
type DesignError struct {
	Msg string
}

func (e *DesignError) Error() string { return e.Msg }

// ModelDiagnostic marks the fault as the design's, not the engine's.
func (e *DesignError) ModelDiagnostic() {}

func checkDelta(now vtime.VT) {
	if now.Delta() > MaxDelta {
		panic(&DesignError{Msg: "kernel: delta-cycle limit exceeded at " + now.String() +
			" (zero-delay combinational loop?)"})
	}
}

// Comb is a combinational process: stateless, sensitive to all inputs,
// re-evaluated from the top on every input change — the shape of a gate or
// a synthesizable combinational VHDL process.
type Comb struct {
	StatelessBehavior
	// Eval computes and assigns the outputs from the current port values.
	Eval func(c *ProcCtx)
	// Sensitivity restricts the sensitivity list; nil means all inputs.
	Sensitivity []int
	numInputs   int
}

// NewComb builds a combinational behavior over numInputs ports.
func NewComb(numInputs int, eval func(c *ProcCtx)) *Comb {
	return &Comb{Eval: eval, numInputs: numInputs}
}

// Run evaluates the logic and suspends on the sensitivity list.
func (b *Comb) Run(c *ProcCtx) Wait {
	b.Eval(c)
	if b.Sensitivity != nil {
		return WaitOn(b.Sensitivity...)
	}
	ports := make([]int, b.numInputs)
	for i := range ports {
		ports[i] = i
	}
	return WaitOn(ports...)
}

// ClockGen drives a std_logic clock: output port 0 toggles every half
// period, starting low at time zero.
type ClockGen struct {
	Half vtime.Time // half period
	high bool       // next level to drive
}

// CloneFresh returns a pristine generator with the same period.
func (b *ClockGen) CloneFresh() Behavior { return &ClockGen{Half: b.Half} }

// Run drives the next level and waits half a period.
func (b *ClockGen) Run(c *ProcCtx) Wait {
	if b.high {
		c.Assign(0, stdlogic.L1, 0)
	} else {
		c.Assign(0, stdlogic.L0, 0)
	}
	b.high = !b.high
	return WaitFor(b.Half)
}

// WaitCond is never used (no conditions).
func (b *ClockGen) WaitCond(*ProcCtx) bool { return true }

// Snapshot saves the phase.
func (b *ClockGen) Snapshot() any { return b.high }

// Restore reinstates the phase.
func (b *ClockGen) Restore(s any) { b.high = s.(bool) }

// Step is one stimulus action: wait Delay, then drive Value on output port
// Port.
type Step struct {
	Delay vtime.Time
	Port  int
	Value Value
}

// Stimulus plays a fixed schedule of assignments — the testbench driver
// process.
type Stimulus struct {
	Steps []Step
	idx   int
}

// CloneFresh returns a pristine player over the same (immutable) schedule.
func (b *Stimulus) CloneFresh() Behavior { return &Stimulus{Steps: b.Steps} }

// Run performs the pending assignment and waits until the next step.
func (b *Stimulus) Run(c *ProcCtx) Wait {
	// The first run happens at initialization; each later run follows a
	// "wait for" of the previous step's delay and performs that step.
	if b.idx > 0 {
		s := b.Steps[b.idx-1]
		c.Assign(s.Port, s.Value, 0)
	}
	if b.idx >= len(b.Steps) {
		return WaitForever()
	}
	d := b.Steps[b.idx].Delay
	b.idx++
	return WaitFor(d)
}

// WaitCond is never used.
func (b *Stimulus) WaitCond(*ProcCtx) bool { return true }

// Snapshot saves the schedule position.
func (b *Stimulus) Snapshot() any { return b.idx }

// Restore reinstates the schedule position.
func (b *Stimulus) Restore(s any) { b.idx = s.(int) }

// Reg is an edge-triggered register: on the rising edge of the clock
// (port 0), every data input port 1+i is copied to output port i after
// Delay. An optional synchronous reset drives zeroes.
type Reg struct {
	StatelessBehavior
	Delay vtime.Time
	// NumData is the number of data inputs (ports 1..NumData).
	NumData int
}

// CloneFresh returns a copy (Reg is stateless; a copy keeps ownership
// obvious).
func (b *Reg) CloneFresh() Behavior { return &Reg{Delay: b.Delay, NumData: b.NumData} }

// Run copies data to outputs on the clock's rising edge.
func (b *Reg) Run(c *ProcCtx) Wait {
	if c.Rising(0) {
		for i := 0; i < b.NumData; i++ {
			c.Assign(i, c.Val(1+i), b.Delay)
		}
	}
	return WaitOn(0)
}
