package kernel

import (
	"fmt"

	"govhdl/internal/pdes"
	"govhdl/internal/stdlogic"
	"govhdl/internal/vtime"
)

// Wait describes where a process suspended: the VHDL
// "wait [on ...] [until ...] [for ...]" statement.
type Wait struct {
	// Ports lists the input-port indices whose updates may resume the
	// process (the sensitivity set of the wait). Empty with no timeout
	// means "wait;" — suspend forever.
	Ports []int
	// HasCond marks a "wait until": the kernel asks the behavior's
	// WaitCond at the tentative resumption (Run phase, after every
	// simultaneous update has been applied — which is what keeps
	// arbitrary-order update delivery deterministic).
	HasCond bool
	// Timeout resumes the process after this much physical time
	// regardless of the condition. HasTimeout distinguishes "for 0 ns"
	// (resume next delta cycle) from no timeout.
	Timeout    vtime.Time
	HasTimeout bool
}

// WaitOn builds a wait on the given ports.
func WaitOn(ports ...int) Wait { return Wait{Ports: ports} }

// WaitFor builds a pure timeout wait.
func WaitFor(d vtime.Time) Wait { return Wait{Timeout: d, HasTimeout: true} }

// WaitForever suspends the process permanently.
func WaitForever() Wait { return Wait{} }

// Behavior is the sequential-statement part of a VHDL process. Run executes
// from the current resumption point to the next wait statement and returns
// the wait. Behaviors own the process's variables and resumption state;
// Snapshot/Restore make them rollback-safe under optimistic simulation.
// Run must be deterministic and interact only through the ProcCtx.
type Behavior interface {
	Run(p *ProcCtx) Wait
	// WaitCond evaluates the pending "wait until" condition (only called
	// when the current Wait has HasCond).
	WaitCond(p *ProcCtx) bool
	// Snapshot returns a deep copy of all mutable state; Restore installs
	// the state held by a value previously returned by Snapshot (which
	// must remain reusable afterwards).
	Snapshot() any
	Restore(s any)
}

// StatelessBehavior is a Behavior base for processes without variables or
// resumption state (gates, registers computed from ports alone). Embed it
// and implement Run.
type StatelessBehavior struct{}

// WaitCond of a stateless behavior is never condition-gated.
func (StatelessBehavior) WaitCond(*ProcCtx) bool { return true }

// Snapshot returns nil: nothing to save.
func (StatelessBehavior) Snapshot() any { return nil }

// Restore is a no-op.
func (StatelessBehavior) Restore(any) {}

// port is one input-signal connection of a process.
type port struct {
	value      Value
	lastChange vtime.VT
	hasChanged bool // an update has been received at lastChange
}

// procState is the kernel-side mutable state of a process LP.
type procState struct {
	ports []port
	wait  Wait

	// timeoutSeq guards timeout runs: every resumption bumps it, so a
	// timeout scheduled before the resumption becomes stale (the paper's
	// "pending timeout event is canceled", implemented by sequence
	// numbers instead of event retraction).
	timeoutSeq uint64
	// hasWake/wakeAt deduplicate tentative wakes: several simultaneous
	// updates schedule at most one Run per virtual time.
	hasWake bool
	wakeAt  vtime.VT
	// hasResumed/lastResume guard double resumption when a tentative wake
	// and a timeout land on the same virtual time.
	hasResumed bool
	lastResume vtime.VT

	behavior any // behavior snapshot (only inside saved states)
}

func (p *procState) clone() *procState {
	c := *p
	c.ports = make([]port, len(p.ports))
	for i, pt := range p.ports {
		c.ports[i] = port{value: CloneValue(pt.value), lastChange: pt.lastChange, hasChanged: pt.hasChanged}
	}
	c.wait.Ports = append([]int(nil), p.wait.Ports...)
	return &c
}

// processLP is the paper's VHDL process logical process: local copies of the
// read signals' effective values, the process variables (inside Behavior),
// and the run()/wait machinery of the distributed cycle.
type processLP struct {
	proc     *Process
	state    *procState
	behavior Behavior
	ctx      ProcCtx // reusable per-run context
	// ver counts state mutations for pdes.VersionedModel (kept outside
	// procState so rollback cannot rewind it); covers behavior variables too,
	// which only mutate inside resumed runs.
	ver uint64
}

var _ pdes.Model = (*processLP)(nil)
var _ pdes.InitModel = (*processLP)(nil)
var _ pdes.ActiveFaninModel = (*processLP)(nil)
var _ pdes.VersionedModel = (*processLP)(nil)

func (p *processLP) StateVersion() uint64 { return p.ver }

// ActiveFanin narrows the process LP's null-message promise to the signals
// of the current wait's sensitivity set: only their events (or a pending
// run/timeout, covered separately by the engine) can resume the process and
// cause driver edits. This is what breaks register feedback loops for
// conservative lookahead: a flip-flop promises based on its clock alone.
func (p *processLP) ActiveFanin() []pdes.LPID {
	ports := p.state.wait.Ports
	out := make([]pdes.LPID, len(ports))
	for i, pt := range ports {
		out[i] = p.proc.reads[pt].lpid
	}
	return out
}

func (p *processLP) SaveState() any {
	s := p.state.clone()
	s.behavior = p.behavior.Snapshot()
	return s
}

func (p *processLP) RestoreState(st any) {
	p.ver++
	s := st.(*procState)
	p.state = s.clone()
	p.behavior.Restore(s.behavior)
}

// Init schedules the initial run: every VHDL process executes once at the
// start of simulation until its first wait. The initial run is
// unconditional, like a timeout.
func (p *processLP) Init(ctx *pdes.Ctx) {
	ctx.Schedule(vtime.VT{PT: 0, LT: 3}, evRun, &runMsg{Seq: p.state.timeoutSeq, Timeout: true})
}

func (p *processLP) Execute(ctx *pdes.Ctx, ev *pdes.Event) {
	switch ev.Kind {
	case evUpdate:
		p.update(ctx, ev.Data.(*updateMsg))
	case evRun:
		p.run(ctx, ev.Data.(*runMsg))
	default:
		panic(fmt.Sprintf("kernel: process %s received unexpected event kind %d", p.proc.Name, ev.Kind))
	}
}

// update implements the Process: Signal Update phase at (t, 3k+2): install
// the new effective value and, if the current wait is sensitive to the
// port, schedule a tentative wake at (t, 3k+3). Wait conditions are NOT
// evaluated here: simultaneous updates may arrive in any order, and only at
// the Run phase are all of them guaranteed applied.
func (p *processLP) update(ctx *pdes.Ctx, m *updateMsg) {
	p.ver++ // the port write below always mutates the saved state
	pt := &p.state.ports[m.Port]
	pt.value = CloneValue(m.Value)
	pt.lastChange = ctx.Now()
	pt.hasChanged = true

	if !p.sensitiveTo(m.Port) {
		return
	}
	target := ctx.Now().NextPhase()
	if p.state.hasWake && p.state.wakeAt == target {
		return // another simultaneous update already scheduled this wake
	}
	p.state.hasWake = true
	p.state.wakeAt = target
	ctx.Schedule(target, evRun, &runMsg{})
}

func (p *processLP) sensitiveTo(portIdx int) bool {
	for _, s := range p.state.wait.Ports {
		if s == portIdx {
			return true
		}
	}
	return false
}

// run implements the Process: Run phase at (t, 3k+3): validate the wake
// (stale timeout? double resume? unsatisfied condition?), then resume the
// behavior until its next wait, flush the accumulated driver edits to the
// written signals at the same virtual time, and install the new wait.
func (p *processLP) run(ctx *pdes.Ctx, m *runMsg) {
	now := ctx.Now()
	if p.state.hasResumed && p.state.lastResume == now {
		return // already resumed at this virtual time (wake + timeout tie)
	}
	if m.Timeout {
		if m.Seq != p.state.timeoutSeq {
			return // cancelled: the process resumed since this was scheduled
		}
	} else {
		if !p.state.hasWake || p.state.wakeAt != now {
			return // stale tentative wake for a superseded wait — state untouched
		}
		p.ver++ // consuming the wake mutates state even if the condition fails
		p.state.hasWake = false
		if p.state.wait.HasCond {
			p.bindCtx(ctx)
			if !p.behavior.WaitCond(&p.ctx) {
				return // condition false: stay suspended, timeout stays armed
			}
		}
	}

	checkDelta(now)

	// Resume.
	p.ver++ // covers the resume bookkeeping and the behavior run below
	p.state.timeoutSeq++
	p.state.hasWake = false
	p.state.hasResumed = true
	p.state.lastResume = now

	p.bindCtx(ctx)
	w := p.behavior.Run(&p.ctx)
	p.flushAssigns(ctx)
	p.state.wait = w

	if w.HasTimeout {
		ctx.Schedule(now.AfterTimeout(w.Timeout), evRun, &runMsg{Seq: p.state.timeoutSeq, Timeout: true})
	}
}

func (p *processLP) bindCtx(ctx *pdes.Ctx) {
	p.ctx.lp = p
	p.ctx.sim = ctx
}

// flushAssigns sends one evAssign per written signal, carrying all of this
// run's edits to that signal's driver in program order. Bundling the edits
// keeps equal-timestamp events at the signal independent of each other, so
// the arbitrary-order PDES model stays correct.
func (p *processLP) flushAssigns(ctx *pdes.Ctx) {
	for i := range p.ctx.pendingEdits {
		edits := p.ctx.pendingEdits[i]
		if len(edits) == 0 {
			continue
		}
		out := p.proc.writes[i]
		ctx.Send(out.sig.lpid, ctx.Now(), evAssign, &assignMsg{Driver: out.driver, Edits: edits})
		p.ctx.pendingEdits[i] = nil
	}
}

// ProcCtx is the interface a Behavior uses to read ports, assign outputs,
// and interrogate simulation state during one run.
type ProcCtx struct {
	lp           *processLP
	sim          *pdes.Ctx
	pendingEdits [][]Edit // per output port, edits accumulated this run
}

// Now returns the current virtual time.
func (c *ProcCtx) Now() vtime.VT { return c.sim.Now() }

// Val returns the local copy of input port i's effective value.
func (c *ProcCtx) Val(i int) Value { return c.lp.state.ports[i].value }

// Std returns input port i as a std_logic value.
func (c *ProcCtx) Std(i int) stdlogic.Std { return c.Val(i).(stdlogic.Std) }

// Vec returns input port i as a std_logic_vector value.
func (c *ProcCtx) Vec(i int) stdlogic.Vec { return c.Val(i).(stdlogic.Vec) }

// Int returns input port i as a VHDL integer.
func (c *ProcCtx) Int(i int) int64 { return c.Val(i).(int64) }

// Bool returns input port i as a boolean.
func (c *ProcCtx) Bool(i int) bool { return c.Val(i).(bool) }

// Event reports whether input port i changed in the Signal Update phase
// immediately preceding this run — the VHDL s'event attribute.
func (c *ProcCtx) Event(i int) bool {
	pt := &c.lp.state.ports[i]
	// The port changed in the Signal Update phase immediately preceding this
	// run: now is exactly one phase after the recorded change.
	return pt.hasChanged && pt.lastChange.NextPhase() == c.sim.Now()
}

// Rising reports rising_edge(s) for a std_logic port.
func (c *ProcCtx) Rising(i int) bool {
	return c.Event(i) && stdlogic.IsHigh(c.Std(i))
}

// Falling reports falling_edge(s) for a std_logic port.
func (c *ProcCtx) Falling(i int) bool {
	return c.Event(i) && stdlogic.IsLow(c.Std(i))
}

// Assign schedules "signal <= value after d" with inertial delay on output
// port i.
func (c *ProcCtx) Assign(i int, v Value, after vtime.Time) {
	c.addEdit(i, Edit{Wave: []WaveElem{{Value: CloneValue(v), After: after}}})
}

// AssignTransport schedules "signal <= transport value after d".
func (c *ProcCtx) AssignTransport(i int, v Value, after vtime.Time) {
	c.addEdit(i, Edit{Wave: []WaveElem{{Value: CloneValue(v), After: after}}, Transport: true})
}

// AssignWave schedules a multi-element waveform assignment.
func (c *ProcCtx) AssignWave(i int, e Edit) {
	ce := Edit{Wave: make([]WaveElem, len(e.Wave)), Transport: e.Transport, Reject: e.Reject}
	for j, w := range e.Wave {
		ce.Wave[j] = WaveElem{Value: CloneValue(w.Value), After: w.After}
	}
	c.addEdit(i, ce)
}

func (c *ProcCtx) addEdit(i int, e Edit) {
	if c.pendingEdits == nil {
		c.pendingEdits = make([][]Edit, len(c.lp.proc.writes))
	}
	c.pendingEdits[i] = append(c.pendingEdits[i], e)
}

// Report emits a trace record (VHDL report/assert).
func (c *ProcCtx) Report(severity, msg string) {
	c.sim.Record(ReportNote{Severity: severity, Message: msg})
}

// ReportNote is the trace record of a VHDL report or assertion message.
type ReportNote struct {
	Severity string
	Message  string
}
