package kernel

import (
	"fmt"

	"govhdl/internal/pdes"
	"govhdl/internal/vtime"
)

// Signal is one VHDL signal of the elaborated design. It becomes one LP.
type Signal struct {
	Name  string
	Class Class
	Init  Value

	resolution Resolution
	lpid       pdes.LPID
	lp         *signalLP
	readers    []reader
	drivers    []*Process // one entry per driver, the writing process
	// lookahead declares the minimum "after" delay every driver of this
	// signal uses; with Config.Lookahead it lets the signal promise ahead.
	lookahead vtime.Time
}

// NumDrivers returns how many processes drive the signal.
func (s *Signal) NumDrivers() int { return len(s.drivers) }

// Resolved reports whether the signal has a resolution function. An
// unresolved signal with more than one driver has no defined value; Build
// panics on it, so front ends check before building (vhdl.Library.Elaborate
// turns the condition into a positioned model error).
func (s *Signal) Resolved() bool { return s.resolution != nil }

// reader is one (process, input-port) pair fed by a signal.
type reader struct {
	proc *Process
	port int
}

// Process is one VHDL process of the elaborated design. It becomes one LP.
type Process struct {
	Name  string
	Class Class

	behavior Behavior
	reads    []*Signal
	writes   []outPort
	lpid     pdes.LPID
	lp       *processLP
}

// outPort is one output connection: which signal and which of its drivers.
type outPort struct {
	sig    *Signal
	driver int
}

// Design is an elaborated VHDL model: a bi-partite graph of signals and
// processes ready to be mapped onto PDES LPs.
type Design struct {
	Name    string
	signals []*Signal
	procs   []*Process
	built   bool
	sys     *pdes.System
}

// NewDesign returns an empty design.
func NewDesign(name string) *Design {
	return &Design{Name: name}
}

// SignalOpt configures a signal at declaration.
type SignalOpt func(*Signal)

// WithResolution installs a resolution function; the signal then supports
// multiple drivers.
func WithResolution(r Resolution) SignalOpt {
	return func(s *Signal) { s.resolution = r }
}

// WithSignalClass tags the signal for the mixed-protocol heuristic.
func WithSignalClass(c Class) SignalOpt {
	return func(s *Signal) { s.Class = c }
}

// WithMinDelay declares that every assignment to this signal uses at least
// this inertial/transport delay, giving the signal LP a usable lookahead.
func WithMinDelay(d vtime.Time) SignalOpt {
	return func(s *Signal) { s.lookahead = d }
}

// AddSignal declares a signal with an initial value.
func (d *Design) AddSignal(name string, init Value, opts ...SignalOpt) *Signal {
	d.mustBeOpen()
	s := &Signal{Name: name, Init: init}
	for _, o := range opts {
		o(s)
	}
	d.signals = append(d.signals, s)
	return s
}

// ProcOpt configures a process at declaration.
type ProcOpt func(*Process)

// WithProcClass tags the process for the mixed-protocol heuristic.
func WithProcClass(c Class) ProcOpt {
	return func(p *Process) { p.Class = c }
}

// AddProcess declares a process with its behavior, the signals it reads
// (input ports, in order) and the signals it writes (output ports, in
// order). Writing a signal allocates one driver on it.
func (d *Design) AddProcess(name string, b Behavior, reads, writes []*Signal, opts ...ProcOpt) *Process {
	d.mustBeOpen()
	p := &Process{Name: name, behavior: b, reads: reads}
	for _, o := range opts {
		o(p)
	}
	for _, s := range writes {
		p.writes = append(p.writes, outPort{sig: s, driver: len(s.drivers)})
		s.drivers = append(s.drivers, p)
	}
	for i, s := range reads {
		s.readers = append(s.readers, reader{proc: p, port: i})
	}
	d.procs = append(d.procs, p)
	return p
}

func (d *Design) mustBeOpen() {
	if d.built {
		panic("kernel: design modified after Build")
	}
}

// FreshBehavior is implemented by behaviors that can hand out a pristine
// copy of themselves: immutable compiled tables may be shared, but every
// piece of runtime state must be fresh. Design.CloneFresh requires it of
// every process behavior.
type FreshBehavior interface {
	Behavior
	CloneFresh() Behavior
}

// CloneFresh returns an unbuilt copy of the design suitable for an
// independent simulation run. Signals and processes are replayed in their
// original declaration order, so driver indices, LP numbering and therefore
// committed traces are identical to the original's. It fails if any process
// behavior does not implement FreshBehavior (e.g. a Comb whose Eval closure
// may capture state outside the design); callers fall back to re-elaborating
// from source in that case.
func (d *Design) CloneFresh() (*Design, error) {
	nd := NewDesign(d.Name)
	sigOf := make(map[*Signal]*Signal, len(d.signals))
	for _, s := range d.signals {
		ns := nd.AddSignal(s.Name, CloneValue(s.Init))
		ns.Class = s.Class
		ns.resolution = s.resolution
		ns.lookahead = s.lookahead
		sigOf[s] = ns
	}
	for _, p := range d.procs {
		fb, ok := p.behavior.(FreshBehavior)
		if !ok {
			return nil, fmt.Errorf("kernel: CloneFresh: process %s: %T cannot produce a fresh copy", p.Name, p.behavior)
		}
		reads := make([]*Signal, len(p.reads))
		for i, s := range p.reads {
			reads[i] = sigOf[s]
		}
		// p.writes preserves declaration order, so replaying through
		// AddProcess reallocates the same driver indices.
		writes := make([]*Signal, len(p.writes))
		for i, w := range p.writes {
			writes[i] = sigOf[w.sig]
		}
		nd.AddProcess(p.Name, fb.CloneFresh(), reads, writes, WithProcClass(p.Class))
	}
	return nd, nil
}

// NumLPs returns the number of LPs the design maps to (paper: one per
// signal plus one per process).
func (d *Design) NumLPs() int { return len(d.signals) + len(d.procs) }

// NumSignals returns the number of signals.
func (d *Design) NumSignals() int { return len(d.signals) }

// NumProcesses returns the number of processes.
func (d *Design) NumProcesses() int { return len(d.procs) }

// Signals returns the declared signals (read-only).
func (d *Design) Signals() []*Signal { return d.signals }

// Build maps the design onto a PDES system: every signal and every process
// becomes an LP, with the static bi-partite edge set of the paper. Build
// may be called once; the design is frozen afterwards.
func (d *Design) Build() *pdes.System {
	if d.built {
		return d.sys
	}
	d.built = true
	sys := pdes.NewSystem()
	d.sys = sys

	for _, s := range d.signals {
		if s.resolution == nil && len(s.drivers) > 1 {
			panic(fmt.Sprintf("kernel: signal %s has %d drivers but no resolution function", s.Name, len(s.drivers)))
		}
		st := &signalState{effective: CloneValue(s.Init)}
		n := len(s.drivers)
		if n == 0 {
			n = 1 // undriven signal holds its initial value
		}
		st.drivers = make([]driver, n)
		for i := range st.drivers {
			st.drivers[i] = driver{driving: CloneValue(s.Init)}
		}
		s.lp = &signalLP{sig: s, state: st}
		// Signals broadcast at least two phases after any assignment
		// (Assign -> Driving Value -> Update), which the phase lookahead
		// exposes to the conservative protocol.
		opts := []pdes.LPOpt{pdes.WithHint(hintOf(s.Class)), pdes.WithLTLookahead(2)}
		if s.lookahead > 0 {
			opts = append(opts, pdes.WithLookahead(s.lookahead))
		}
		s.lpid = sys.AddLP("sig:"+s.Name, s.lp, opts...)
	}
	for _, p := range d.procs {
		st := &procState{ports: make([]port, len(p.reads))}
		for i, s := range p.reads {
			st.ports[i] = port{value: CloneValue(s.Init)}
		}
		p.lp = &processLP{proc: p, state: st}
		p.lp.behavior = p.behavior
		// A process runs one phase after the update that wakes it.
		p.lpid = sys.AddLP("proc:"+p.Name, p.lp,
			pdes.WithHint(hintOf(p.Class)), pdes.WithLTLookahead(1))
	}

	// Static edges: process -> written signals, signal -> reading
	// processes.
	for _, p := range d.procs {
		for _, w := range p.writes {
			sys.Connect(p.lpid, w.sig.lpid)
		}
	}
	for _, s := range d.signals {
		for _, r := range s.readers {
			sys.Connect(s.lpid, r.proc.lpid)
		}
	}
	return sys
}

func hintOf(c Class) pdes.Mode {
	if c.Synchronous() {
		return pdes.Conservative
	}
	return pdes.Optimistic
}

// SignalLPID returns the LP implementing s (valid after Build).
func (d *Design) SignalLPID(s *Signal) pdes.LPID { return s.lpid }

// ProcessLPID returns the LP implementing p (valid after Build).
func (d *Design) ProcessLPID(p *Process) pdes.LPID { return p.lpid }

// Effective returns a signal's effective value after a run (the model is
// inspected in place; call only after the simulation finished).
func (d *Design) Effective(s *Signal) Value { return s.lp.state.effective }
