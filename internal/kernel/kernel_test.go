package kernel

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"govhdl/internal/pdes"
	"govhdl/internal/stdlogic"
	"govhdl/internal/vtime"
)

// recSink collects committed trace records as sortable strings.
type recSink struct {
	mu   sync.Mutex
	sys  *pdes.System
	recs []string
}

func (r *recSink) Commit(lp pdes.LPID, ts vtime.VT, item any) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.recs = append(r.recs, fmt.Sprintf("%s @%v = %v", r.sys.Name(lp), ts, item))
}

func (r *recSink) sorted() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := append([]string(nil), r.recs...)
	sort.Strings(out)
	return out
}

// inverterChain builds stim -> a -> inv1 -> b -> inv2 -> c with zero-delay
// inverters.
func inverterChain(delay vtime.Time) (*Design, *Signal, *Signal, *Signal) {
	d := NewDesign("chain")
	a := d.AddSignal("a", stdlogic.L0)
	b := d.AddSignal("b", stdlogic.L0)
	c := d.AddSignal("c", stdlogic.L0)
	d.AddProcess("stim", &Stimulus{Steps: []Step{
		{Delay: 10 * vtime.NS, Port: 0, Value: stdlogic.L1},
		{Delay: 10 * vtime.NS, Port: 0, Value: stdlogic.L0},
	}}, nil, []*Signal{a}, WithProcClass(ClassStimulus))
	inv := func(c *ProcCtx) { c.Assign(0, stdlogic.Not(c.Std(0)), delay) }
	d.AddProcess("inv1", NewComb(1, inv), []*Signal{a}, []*Signal{b})
	d.AddProcess("inv2", NewComb(1, inv), []*Signal{b}, []*Signal{c})
	return d, a, b, c
}

func runSeq(t *testing.T, d *Design, until vtime.Time) *recSink {
	t.Helper()
	sys := d.Build()
	sink := &recSink{sys: sys}
	if _, err := pdes.RunSequential(sys, until, sink); err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	return sink
}

func TestDeltaCyclePropagation(t *testing.T) {
	d, _, _, _ := inverterChain(0)
	sink := runSeq(t, d, 100*vtime.NS)
	recs := sink.sorted()
	joined := strings.Join(recs, "\n")

	// Initialization: both inverters evaluate their '0' inputs at (0,3):
	// b='1' and c='1' mature in delta 1; the b change re-runs inv2 at
	// (0,6), maturing c='0' in delta 2 — hence c pulses at time zero.
	// At 10ns: a='1' (delta 1), b='0' (delta 2), c='1' (delta 3); each
	// unresolved signal records its change in its Driving Value phase.
	for _, want := range []string{
		"sig:b @0fs+1Δ.1 = {'1'}",
		"sig:c @0fs+1Δ.1 = {'1'}",
		"sig:c @0fs+2Δ.1 = {'0'}",
		"sig:a @10ns+1Δ.1 = {'1'}",
		"sig:b @10ns+2Δ.1 = {'0'}",
		"sig:c @10ns+3Δ.1 = {'1'}",
		"sig:a @20ns+1Δ.1 = {'0'}",
		"sig:b @20ns+2Δ.1 = {'1'}",
		"sig:c @20ns+3Δ.1 = {'0'}",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing trace record %q in:\n%s", want, joined)
		}
	}
}

func TestGateDelayPropagation(t *testing.T) {
	d, _, _, _ := inverterChain(2 * vtime.NS)
	sink := runSeq(t, d, 100*vtime.NS)
	joined := strings.Join(sink.sorted(), "\n")
	// With a 2ns inertial delay each inverter shifts physical time.
	for _, want := range []string{
		"sig:a @10ns+1Δ.1 = {'1'}",
		"sig:b @12ns+0Δ.1 = {'0'}",
		"sig:c @14ns+0Δ.1 = {'1'}",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing trace record %q in:\n%s", want, joined)
		}
	}
}

func TestInertialPulseRejection(t *testing.T) {
	// A 1ns pulse through a 5ns inertial gate must be swallowed.
	d := NewDesign("pulse")
	a := d.AddSignal("a", stdlogic.L0)
	b := d.AddSignal("b", stdlogic.L0)
	d.AddProcess("stim", &Stimulus{Steps: []Step{
		{Delay: 10 * vtime.NS, Port: 0, Value: stdlogic.L1},
		{Delay: 1 * vtime.NS, Port: 0, Value: stdlogic.L0},
	}}, nil, []*Signal{a}, WithProcClass(ClassStimulus))
	d.AddProcess("buf", NewComb(1, func(c *ProcCtx) {
		c.Assign(0, c.Std(0), 5*vtime.NS)
	}), []*Signal{a}, []*Signal{b})
	sink := runSeq(t, d, 100*vtime.NS)
	joined := strings.Join(sink.sorted(), "\n")
	if strings.Contains(joined, "sig:b @15ns") {
		t.Errorf("inertial delay let a short pulse through:\n%s", joined)
	}
	if !strings.Contains(joined, "sig:a @10ns+1Δ.1 = {'1'}") ||
		!strings.Contains(joined, "sig:a @11ns+1Δ.1 = {'0'}") {
		t.Errorf("stimulus pulse missing:\n%s", joined)
	}
}

func TestTransportDelayPassesPulse(t *testing.T) {
	d := NewDesign("pulse")
	a := d.AddSignal("a", stdlogic.L0)
	b := d.AddSignal("b", stdlogic.L0)
	d.AddProcess("stim", &Stimulus{Steps: []Step{
		{Delay: 10 * vtime.NS, Port: 0, Value: stdlogic.L1},
		{Delay: 1 * vtime.NS, Port: 0, Value: stdlogic.L0},
	}}, nil, []*Signal{a}, WithProcClass(ClassStimulus))
	d.AddProcess("buf", NewComb(1, func(c *ProcCtx) {
		c.AssignTransport(0, c.Std(0), 5*vtime.NS)
	}), []*Signal{a}, []*Signal{b})
	sink := runSeq(t, d, 100*vtime.NS)
	joined := strings.Join(sink.sorted(), "\n")
	if !strings.Contains(joined, "sig:b @15ns+0Δ.1 = {'1'}") ||
		!strings.Contains(joined, "sig:b @16ns+0Δ.1 = {'0'}") {
		t.Errorf("transport delay should pass the pulse:\n%s", joined)
	}
}

func TestResolvedSignal(t *testing.T) {
	// Two drivers on one std_logic bus: 'Z'/'1' resolves to '1',
	// '0'/'1' resolves to 'X'.
	d := NewDesign("bus")
	bus := d.AddSignal("bus", stdlogic.Z, WithResolution(StdResolution))
	d.AddProcess("drv1", &Stimulus{Steps: []Step{
		{Delay: 10 * vtime.NS, Port: 0, Value: stdlogic.L1},
		{Delay: 20 * vtime.NS, Port: 0, Value: stdlogic.Z},
	}}, nil, []*Signal{bus}, WithProcClass(ClassStimulus))
	d.AddProcess("drv2", &Stimulus{Steps: []Step{
		{Delay: 20 * vtime.NS, Port: 0, Value: stdlogic.L0},
		{Delay: 20 * vtime.NS, Port: 0, Value: stdlogic.Z},
	}}, nil, []*Signal{bus}, WithProcClass(ClassStimulus))
	sink := runSeq(t, d, 100*vtime.NS)
	joined := strings.Join(sink.sorted(), "\n")
	for _, want := range []string{
		"sig:bus @10ns+1Δ.2 = {'1'}", // '1' vs 'Z'
		"sig:bus @20ns+1Δ.2 = {'X'}", // '1' vs '0' conflict
		"sig:bus @30ns+1Δ.2 = {'0'}", // 'Z' vs '0'
		"sig:bus @40ns+1Δ.2 = {'Z'}", // both released
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in:\n%s", want, joined)
		}
	}
}

func TestMultipleDriversRequireResolution(t *testing.T) {
	d := NewDesign("bad")
	s := d.AddSignal("s", stdlogic.L0)
	d.AddProcess("p1", &Stimulus{}, nil, []*Signal{s})
	d.AddProcess("p2", &Stimulus{}, nil, []*Signal{s})
	defer func() {
		if recover() == nil {
			t.Fatal("Build accepted two drivers without a resolution function")
		}
	}()
	d.Build()
}

// counterBehavior is a 4-bit rising-edge counter with a report on wrap:
// a stateful, snapshot-able behavior.
type counterBehavior struct {
	Count uint64
	delay vtime.Time
}

func (b *counterBehavior) Run(c *ProcCtx) Wait {
	if c.Rising(0) {
		b.Count++
		c.Assign(0, stdlogic.FromUint(b.Count, 4), b.delay)
		if b.Count%16 == 0 {
			c.Report("note", "wrap")
		}
	}
	return WaitOn(0)
}
func (b *counterBehavior) WaitCond(*ProcCtx) bool { return true }
func (b *counterBehavior) Snapshot() any          { return b.Count }
func (b *counterBehavior) Restore(s any)          { b.Count = s.(uint64) }

func counterDesign() (*Design, *Signal) {
	d := NewDesign("counter")
	clk := d.AddSignal("clk", stdlogic.L0, WithSignalClass(ClassClock))
	q := d.AddSignal("q", stdlogic.NewVec(4, stdlogic.L0), WithSignalClass(ClassRegister))
	d.AddProcess("clkgen", &ClockGen{Half: 5 * vtime.NS}, nil, []*Signal{clk}, WithProcClass(ClassClock))
	d.AddProcess("cnt", &counterBehavior{delay: vtime.NS}, []*Signal{clk}, []*Signal{q},
		WithProcClass(ClassRegister))
	return d, q
}

func TestClockedCounterSequential(t *testing.T) {
	d, q := counterDesign()
	sink := runSeq(t, d, 200*vtime.NS)
	joined := strings.Join(sink.sorted(), "\n")
	// Rising edges at 5, 15, ..., 195 ns (20 edges); q updates 1ns after
	// each edge. The clock toggles in delta 1 of each half period, so the
	// counter runs in delta 2 and the wrap report lands at (155ns, 2Δ.0).
	for _, want := range []string{
		`sig:q @6ns+0Δ.1 = {"0001"}`,
		`sig:q @16ns+0Δ.1 = {"0010"}`,
		`sig:q @156ns+0Δ.1 = {"0000"}`, // wrap at the 16th edge
		"proc:cnt @155ns+2Δ.0 = {note wrap}",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in trace", want)
		}
	}
	if got, _ := d.Effective(q).(stdlogic.Vec).Uint(); got != 20%16 {
		t.Errorf("final counter value %d, want %d", got, 20%16)
	}
}

func TestWaitTimeoutCancellation(t *testing.T) {
	// A process waits on a signal with a 100ns timeout; the signal fires
	// at 10ns, so the timeout must be cancelled and the process must wait
	// again (next timeout at 110ns).
	d := NewDesign("timeout")
	a := d.AddSignal("a", stdlogic.L0)
	n := d.AddSignal("n", int64(0))
	d.AddProcess("stim", &Stimulus{Steps: []Step{
		{Delay: 10 * vtime.NS, Port: 0, Value: stdlogic.L1},
	}}, nil, []*Signal{a}, WithProcClass(ClassStimulus))
	counter := int64(0)
	d.AddProcess("waiter", NewComb(1, func(c *ProcCtx) {
		_ = c.Val(0)
	}), []*Signal{a}, nil)
	// A behavior that counts resumes, waiting on a OR 100ns timeout.
	d.AddProcess("counter", &resumeCounter{n: &counter}, []*Signal{a}, []*Signal{n})
	sink := runSeq(t, d, 250*vtime.NS)
	joined := strings.Join(sink.sorted(), "\n")
	// Resumes: init(0), signal at 10ns, timeouts at 110ns and 210ns:
	// counts 1, 2, 3 recorded via signal n.
	for _, want := range []string{
		"sig:n @10ns", "sig:n @110ns", "sig:n @210ns",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q; trace:\n%s", want, joined)
		}
	}
	if strings.Contains(joined, "sig:n @100ns") {
		t.Errorf("cancelled timeout fired at 100ns:\n%s", joined)
	}
}

type resumeCounter struct {
	n     *int64
	count int64
}

func (b *resumeCounter) Run(c *ProcCtx) Wait {
	if b.count > 0 {
		c.Assign(0, b.count, 0)
	}
	b.count++
	return Wait{Ports: []int{0}, Timeout: 100 * vtime.NS, HasTimeout: true}
}
func (b *resumeCounter) WaitCond(*ProcCtx) bool { return true }
func (b *resumeCounter) Snapshot() any          { return b.count }
func (b *resumeCounter) Restore(s any)          { b.count = s.(int64) }

func TestWaitUntilCondition(t *testing.T) {
	// wait until a = '1': updates with a='0' must not resume the process,
	// and the evaluation happens after all same-delta updates.
	d := NewDesign("until")
	a := d.AddSignal("a", stdlogic.L0)
	hit := d.AddSignal("hit", int64(0))
	d.AddProcess("stim", &Stimulus{Steps: []Step{
		{Delay: 10 * vtime.NS, Port: 0, Value: stdlogic.L1},
		{Delay: 10 * vtime.NS, Port: 0, Value: stdlogic.L0},
		{Delay: 10 * vtime.NS, Port: 0, Value: stdlogic.L1},
	}}, nil, []*Signal{a}, WithProcClass(ClassStimulus))
	d.AddProcess("untilp", &untilHigh{}, []*Signal{a}, []*Signal{hit})
	sink := runSeq(t, d, 100*vtime.NS)
	joined := strings.Join(sink.sorted(), "\n")
	if !strings.Contains(joined, "sig:hit @10ns") || !strings.Contains(joined, "sig:hit @30ns") {
		t.Errorf("wait until missed a rising value:\n%s", joined)
	}
	if strings.Contains(joined, "sig:hit @20ns") {
		t.Errorf("wait until resumed on a='0':\n%s", joined)
	}
}

type untilHigh struct {
	hits int64
}

func (b *untilHigh) Run(c *ProcCtx) Wait {
	if b.hits > 0 {
		c.Assign(0, b.hits, 0)
	}
	b.hits++
	return Wait{Ports: []int{0}, HasCond: true}
}
func (b *untilHigh) WaitCond(c *ProcCtx) bool { return stdlogic.IsHigh(c.Std(0)) }
func (b *untilHigh) Snapshot() any            { return b.hits }
func (b *untilHigh) Restore(s any)            { b.hits = s.(int64) }

func TestDeltaLimitDetected(t *testing.T) {
	// not(a) -> a with zero delay oscillates within one physical time.
	d := NewDesign("osc")
	a := d.AddSignal("a", stdlogic.L0)
	d.AddProcess("inv", NewComb(1, func(c *ProcCtx) {
		c.Assign(0, stdlogic.Not(c.Std(0)), 0)
	}), []*Signal{a}, []*Signal{a})
	sys := d.Build()
	_, err := pdes.RunSequential(sys, 10*vtime.NS, nil)
	if err == nil {
		t.Fatal("zero-delay loop did not trip the delta limit")
	}
	if !strings.Contains(err.Error(), "delta-cycle limit") {
		t.Fatalf("unexpected error: %v", err)
	}
	if !pdes.IsModelError(err) {
		t.Fatalf("delta limit not classified as a model error: %v", err)
	}
}

// TestParallelMatchesSequential verifies the paper's core claim: the
// distributed VHDL cycle is correct under every protocol, including
// delta-cycle-heavy zero-delay logic, with arbitrary simultaneous-event
// order.
func TestParallelMatchesSequential(t *testing.T) {
	builds := map[string]func() *Design{
		"zero-delay-chain": func() *Design { d, _, _, _ := inverterChain(0); return d },
		"gate-delay-chain": func() *Design { d, _, _, _ := inverterChain(2 * vtime.NS); return d },
		"clocked-counter":  func() *Design { d, _ := counterDesign(); return d },
	}
	const until = 200 * vtime.NS
	protos := []pdes.Protocol{
		pdes.ProtoConservative, pdes.ProtoOptimistic, pdes.ProtoMixed, pdes.ProtoDynamic,
	}
	for name, build := range builds {
		want := strings.Join(runSeq(t, build(), until).sorted(), "\n")
		for _, proto := range protos {
			for _, workers := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("%s/%v/w%d", name, proto, workers), func(t *testing.T) {
					d := build()
					sys := d.Build()
					sink := &recSink{sys: sys}
					res, err := pdes.Run(sys, pdes.Config{
						Workers:  workers,
						Protocol: proto,
						GVTEvery: 128,
					}, until, sink)
					if err != nil {
						t.Fatalf("run: %v", err)
					}
					got := strings.Join(sink.sorted(), "\n")
					if got != want {
						gl, wl := strings.Split(got, "\n"), strings.Split(want, "\n")
						t.Errorf("trace mismatch: got %d records, want %d", len(gl), len(wl))
						for i := 0; i < len(gl) && i < len(wl); i++ {
							if gl[i] != wl[i] {
								t.Errorf("first diff: got %q want %q", gl[i], wl[i])
								break
							}
						}
					}
					if res.Metrics.Events == 0 {
						t.Error("no events processed")
					}
				})
			}
		}
	}
}
