package kernel

import (
	"math/rand"
	"testing"

	"govhdl/internal/stdlogic"
	"govhdl/internal/vtime"
)

// editDriver applies edits to a fresh driver at `now` and returns it.
func editDriver(now vtime.VT, edits ...Edit) *driver {
	s := &signalLP{sig: &Signal{Name: "t"}}
	d := &driver{driving: stdlogic.L0}
	for _, e := range edits {
		s.applyEdit(d, now, e)
	}
	return d
}

func inertial(v Value, after vtime.Time) Edit {
	return Edit{Wave: []WaveElem{{Value: v, After: after}}}
}

func transport(v Value, after vtime.Time) Edit {
	return Edit{Wave: []WaveElem{{Value: v, After: after}}, Transport: true}
}

func TestWaveformDeleteAtOrAfter(t *testing.T) {
	now := vtime.VT{PT: 100, LT: 3}
	// Schedule at +10, then a new assignment at +5 deletes it.
	d := editDriver(now, transport(stdlogic.L1, 10), transport(stdlogic.L0, 5))
	if len(d.wave) != 1 {
		t.Fatalf("wave has %d transactions, want 1", len(d.wave))
	}
	if d.wave[0].at.PT != 105 || !ValueEqual(d.wave[0].val, stdlogic.L0) {
		t.Fatalf("surviving transaction %v", d.wave[0])
	}
}

func TestWaveformTransportKeepsEarlier(t *testing.T) {
	now := vtime.VT{PT: 100, LT: 3}
	// Transport: an earlier pending transaction survives a later one.
	d := editDriver(now, transport(stdlogic.L1, 5), transport(stdlogic.L0, 10))
	if len(d.wave) != 2 {
		t.Fatalf("wave has %d transactions, want 2", len(d.wave))
	}
}

func TestWaveformInertialRejectsDifferentValue(t *testing.T) {
	now := vtime.VT{PT: 100, LT: 3}
	// Inertial with default rejection (= delay): a pending '1' at +5 is
	// rejected by a new '0' at +10 (different value inside the window).
	d := editDriver(now, inertial(stdlogic.L1, 5), inertial(stdlogic.L0, 10))
	if len(d.wave) != 1 {
		t.Fatalf("wave has %d transactions, want 1", len(d.wave))
	}
	if d.wave[0].at.PT != 110 {
		t.Fatalf("surviving transaction at %v", d.wave[0].at)
	}
}

func TestWaveformInertialKeepsEqualValueRun(t *testing.T) {
	now := vtime.VT{PT: 100, LT: 3}
	// A pending transaction with the SAME value immediately preceding the
	// new one is kept (the marking rule).
	d := editDriver(now, inertial(stdlogic.L1, 5), inertial(stdlogic.L1, 10))
	if len(d.wave) != 2 {
		t.Fatalf("wave has %d transactions, want 2 (equal-value run kept)", len(d.wave))
	}
}

func TestWaveformRejectWindow(t *testing.T) {
	now := vtime.VT{PT: 100, LT: 3}
	// reject 3 inertial ... after 10: window is [107, 110); a pending
	// transaction at 105 is outside it and survives.
	d := editDriver(now,
		transport(stdlogic.L1, 5),
		Edit{Wave: []WaveElem{{Value: stdlogic.L0, After: 10}}, Reject: 3})
	if len(d.wave) != 2 {
		t.Fatalf("wave has %d transactions, want 2", len(d.wave))
	}
	// A pending transaction at 108 (inside the window, different value)
	// is rejected.
	d = editDriver(now,
		transport(stdlogic.L1, 8),
		Edit{Wave: []WaveElem{{Value: stdlogic.L0, After: 10}}, Reject: 3})
	if len(d.wave) != 1 {
		t.Fatalf("wave has %d transactions, want 1", len(d.wave))
	}
}

func TestWaveformMultiElement(t *testing.T) {
	now := vtime.VT{PT: 100, LT: 3}
	// s <= '0' after 2, '1' after 5, 'Z' after 9.
	d := editDriver(now, Edit{Wave: []WaveElem{
		{Value: stdlogic.L0, After: 2},
		{Value: stdlogic.L1, After: 5},
		{Value: stdlogic.Z, After: 9},
	}})
	if len(d.wave) != 3 {
		t.Fatalf("wave has %d transactions, want 3", len(d.wave))
	}
	for i := 1; i < len(d.wave); i++ {
		if !d.wave[i-1].at.Less(d.wave[i].at) {
			t.Fatal("waveform not strictly increasing")
		}
	}
}

func TestWaveformDeltaAssignsReplace(t *testing.T) {
	now := vtime.VT{PT: 100, LT: 3}
	// Two delta assignments in one run: the second wins entirely.
	d := editDriver(now, inertial(stdlogic.L1, 0), inertial(stdlogic.L0, 0))
	if len(d.wave) != 1 || !ValueEqual(d.wave[0].val, stdlogic.L0) {
		t.Fatalf("wave %v", d.wave)
	}
	if d.wave[0].at != now.NextPhase() {
		t.Fatalf("delta transaction at %v", d.wave[0].at)
	}
}

// TestWaveformInvariants is a property test: after any random edit
// sequence, the projected output waveform is strictly increasing in time
// and entirely in the future.
func TestWaveformInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	vals := []stdlogic.Std{stdlogic.L0, stdlogic.L1, stdlogic.Z, stdlogic.X}
	for iter := 0; iter < 300; iter++ {
		now := vtime.VT{PT: vtime.Time(rng.Intn(50) + 1), LT: uint64(3 * (rng.Intn(3) + 1))}
		var edits []Edit
		for n := rng.Intn(6) + 1; n > 0; n-- {
			e := Edit{Transport: rng.Intn(2) == 0}
			for k := rng.Intn(3) + 1; k > 0; k-- {
				e.Wave = append(e.Wave, WaveElem{
					Value: vals[rng.Intn(len(vals))],
					After: vtime.Time(rng.Intn(8)),
				})
			}
			if !e.Transport && rng.Intn(2) == 0 {
				e.Reject = vtime.Time(rng.Intn(4))
			}
			edits = append(edits, e)
		}
		d := editDriver(now, edits...)
		for i, tr := range d.wave {
			if !now.Less(tr.at) {
				t.Fatalf("iter %d: transaction %d at %v not after now %v (edits %+v)",
					iter, i, tr.at, now, edits)
			}
			if i > 0 && !d.wave[i-1].at.Less(tr.at) {
				t.Fatalf("iter %d: waveform not strictly increasing: %v then %v",
					iter, d.wave[i-1].at, tr.at)
			}
		}
	}
}

// TestSnapshotRestoreRoundTrip: restoring a snapshot must reproduce the
// exact pre-snapshot state even after further mutation, and the snapshot
// must stay reusable.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	sig := &Signal{Name: "s", resolution: StdResolution}
	lp := &signalLP{sig: sig, state: &signalState{
		effective: stdlogic.L0,
		drivers: []driver{{
			driving: stdlogic.L1,
			wave:    []transaction{{at: vtime.VT{PT: 5}, val: stdlogic.Z}},
		}},
	}}
	snap := lp.SaveState()
	lp.state.drivers[0].driving = stdlogic.X
	lp.state.drivers[0].wave = nil
	lp.state.effective = stdlogic.W

	lp.RestoreState(snap)
	if !ValueEqual(lp.state.drivers[0].driving, stdlogic.L1) ||
		len(lp.state.drivers[0].wave) != 1 ||
		!ValueEqual(lp.state.effective, stdlogic.L0) {
		t.Fatalf("restore produced %+v", lp.state)
	}
	// Mutate again and restore again from the SAME snapshot.
	lp.state.drivers[0].wave = append(lp.state.drivers[0].wave, transaction{at: vtime.VT{PT: 9}})
	lp.RestoreState(snap)
	if len(lp.state.drivers[0].wave) != 1 {
		t.Fatal("snapshot was corrupted by a restore-mutate cycle")
	}
}

func TestProcessSnapshotCoversBehavior(t *testing.T) {
	proc := &Process{Name: "p"}
	beh := &ClockGen{Half: 5 * vtime.NS}
	lp := &processLP{
		proc:     proc,
		behavior: beh,
		state:    &procState{ports: make([]port, 0)},
	}
	snap := lp.SaveState()
	beh.high = true
	lp.state.timeoutSeq = 42
	lp.RestoreState(snap)
	if beh.high {
		t.Error("behavior state not restored")
	}
	if lp.state.timeoutSeq != 0 {
		t.Error("kernel state not restored")
	}
}
