package kernel

import (
	"fmt"

	"govhdl/internal/pdes"
	"govhdl/internal/vtime"
)

// transaction is one projected-output-waveform entry: the driver takes the
// value when the Driving Value phase at `at` executes.
type transaction struct {
	at  vtime.VT // maturity virtual time (always a Driving Value phase)
	val Value
}

// driver is the projected output waveform of one source of a signal.
type driver struct {
	driving Value
	wave    []transaction // sorted by at, all strictly in the future
}

// signalState is the mutable state of a signal LP.
type signalState struct {
	drivers   []driver
	effective Value
}

func (s *signalState) clone() *signalState {
	c := &signalState{
		drivers:   make([]driver, len(s.drivers)),
		effective: CloneValue(s.effective),
	}
	for i := range s.drivers {
		d := &s.drivers[i]
		nd := driver{driving: CloneValue(d.driving)}
		if len(d.wave) > 0 {
			nd.wave = make([]transaction, len(d.wave))
			for j, tr := range d.wave {
				nd.wave[j] = transaction{at: tr.at, val: CloneValue(tr.val)}
			}
		}
		c.drivers[i] = nd
	}
	return c
}

// SigChange is the trace record emitted on every effective-value change.
type SigChange struct {
	Value Value
}

// signalLP is the paper's VHDL signal logical process: it owns one driver
// per source, the resolution function, and the effective value, and
// broadcasts effective-value changes to every reading process.
type signalLP struct {
	sig   *Signal
	state *signalState
	// ver counts state mutations for pdes.VersionedModel. It lives on the LP
	// wrapper, not in signalState, so rollback cannot rewind it into a value
	// that would falsely match a stale snapshot.
	ver uint64
}

var _ pdes.Model = (*signalLP)(nil)
var _ pdes.VersionedModel = (*signalLP)(nil)

func (s *signalLP) SaveState() any { return s.state.clone() }

func (s *signalLP) RestoreState(st any) {
	s.ver++
	s.state = st.(*signalState).clone()
}

func (s *signalLP) StateVersion() uint64 { return s.ver }

func (s *signalLP) Execute(ctx *pdes.Ctx, ev *pdes.Event) {
	switch ev.Kind {
	case evAssign:
		s.assign(ctx, ev.Data.(*assignMsg))
	case evDriving:
		s.drivingValue(ctx)
	case evResolve:
		s.resolve(ctx)
	default:
		panic(fmt.Sprintf("kernel: signal %s received unexpected event kind %d", s.sig.Name, ev.Kind))
	}
}

// assign implements the Signal: Assign phase at (t, 3k): apply the driver
// edits to the projected output waveform and schedule a Driving Value event
// for every new transaction.
func (s *signalLP) assign(ctx *pdes.Ctx, m *assignMsg) {
	s.ver++ // waveform edits below mutate the saved state
	d := &s.state.drivers[m.Driver]
	now := ctx.Now()
	for _, e := range m.Edits {
		s.applyEdit(d, now, e)
	}
	// Schedule maturity events. Duplicates across edits are possible and
	// harmless: the Driving Value phase is idempotent.
	for _, tr := range d.wave {
		ctx.Schedule(tr.at, evDriving, nil)
	}
}

// applyEdit applies one signal-assignment statement to a driver's projected
// output waveform, per IEEE Std 1076 §10.5.2.2 (simplified to the common
// delay mechanisms):
//
//   - Transactions at or after the first new transaction's time are deleted
//     (both mechanisms).
//   - Inertial delay additionally deletes pending transactions inside the
//     pulse-rejection window before the new transaction, except the maximal
//     run of consecutive transactions immediately preceding it whose value
//     equals the new value.
//   - Subsequent waveform elements are appended in order.
func (s *signalLP) applyEdit(d *driver, now vtime.VT, e Edit) {
	if len(e.Wave) == 0 {
		return
	}
	first := now.AfterDelay(e.Wave[0].After)

	// Delete transactions at or after the first new one.
	keep := d.wave[:0]
	for _, tr := range d.wave {
		if tr.at.Less(first) {
			keep = append(keep, tr)
		}
	}
	d.wave = keep

	if !e.Transport {
		// Pulse rejection: the window is [first - reject, first). The
		// default rejection limit is the first element's delay, which
		// makes the window start exactly at `now` (classic inertial).
		reject := e.Reject
		if reject == 0 || reject > e.Wave[0].After {
			reject = e.Wave[0].After
		}
		windowStart := vtime.VT{PT: first.PT - reject}
		if reject == e.Wave[0].After {
			windowStart = now // delta-delay assignments reject everything pending
		}
		// Keep the maximal run at the tail whose values equal the new
		// value; delete other transactions inside the window.
		runStart := len(d.wave)
		for runStart > 0 && ValueEqual(d.wave[runStart-1].val, e.Wave[0].Value) {
			runStart--
		}
		keep = d.wave[:0]
		for i, tr := range d.wave {
			if tr.at.Less(windowStart) || i >= runStart {
				keep = append(keep, tr)
			}
		}
		d.wave = keep
	}

	d.wave = append(d.wave, transaction{at: first, val: CloneValue(e.Wave[0].Value)})
	// Remaining elements: appended when strictly later than the previous.
	prev := first
	for _, w := range e.Wave[1:] {
		at := now.AfterDelay(w.After)
		if !prev.Less(at) {
			continue
		}
		d.wave = append(d.wave, transaction{at: at, val: CloneValue(w.Value)})
		prev = at
	}
}

// drivingValue implements the Signal: Driving Value phase at (t, 3k+1):
// mature due transactions, then either schedule resolution or broadcast.
func (s *signalLP) drivingValue(ctx *pdes.Ctx) {
	now := ctx.Now()
	changed := false
	for i := range s.state.drivers {
		d := &s.state.drivers[i]
		n := 0
		for n < len(d.wave) && d.wave[n].at.LessEq(now) {
			d.driving = d.wave[n].val
			changed = true
			n++
		}
		if n > 0 {
			d.wave = append(d.wave[:0], d.wave[n:]...)
		}
	}
	if !changed {
		return // superseded transaction; spurious maturity event — state untouched
	}
	s.ver++
	if s.sig.resolution != nil {
		ctx.Schedule(now.NextPhase(), evResolve, nil)
		return
	}
	// Single source: the driving value is the effective value.
	s.publish(ctx, s.state.drivers[0].driving, now.NextPhase())
}

// resolve implements the Signal: Resolution phase at (t, 3k+2): apply the
// resolution function over all driving values and broadcast a change. The
// effective value is sent to readers at the same virtual time, as in the
// paper.
func (s *signalLP) resolve(ctx *pdes.Ctx) {
	vals := make([]Value, len(s.state.drivers))
	for i := range s.state.drivers {
		vals[i] = s.state.drivers[i].driving
	}
	s.publish(ctx, s.sig.resolution(vals), ctx.Now())
}

// publish installs a new effective value and broadcasts it to all readers
// at ts, recording the change in the trace.
func (s *signalLP) publish(ctx *pdes.Ctx, v Value, ts vtime.VT) {
	if ValueEqual(s.state.effective, v) {
		return
	}
	s.ver++
	s.state.effective = CloneValue(v)
	ctx.Record(SigChange{Value: CloneValue(v)})
	for _, r := range s.sig.readers {
		ctx.Send(r.proc.lpid, ts, evUpdate, &updateMsg{Port: r.port, Value: s.state.effective})
	}
}
