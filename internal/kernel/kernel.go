// Package kernel implements the distributed VHDL kernel of Lungeanu & Shi
// (DATE 2000): the mapping of a post-elaboration VHDL model onto a PDES
// model in which every signal and every process is a logical process, and
// the distributed VHDL simulation cycle that keeps the semantics of the
// sequential VHDL cycle — including delta cycles — correct under PDES
// protocols that process simultaneous events in arbitrary order.
//
// # The distributed VHDL cycle
//
// Virtual time is the pair (pt, lt) from package vtime. Within delta cycle k
// of a physical time t the phases are:
//
//	(t, 3k)   Process: Run   / Signal: Assign
//	(t, 3k+1) Signal: Driving Value
//	(t, 3k+2) Signal: Resolution / Process: Signal Update
//	(t, 3k+3) next delta's Run/Assign
//
// A process run at (t, 3k) sends its accumulated driver edits to each
// written signal at the same (t, 3k); the signal applies the edits to the
// driver's projected output waveform (with VHDL inertial/transport
// preemption) and schedules an internal event for each new transaction at
// (t, 3k+1) for a delta delay or (t+d, 1) for a positive delay. The Driving
// Value phase matures transactions; a resolved signal then schedules its
// Resolution phase at (t, 3k+2), an unresolved one broadcasts the new
// effective value directly at (t, 3k+2). Processes receive effective-value
// updates at (t, 3k+2), update local copies, and — when the update wakes the
// current wait — schedule their next run at (t, 3k+3). Wait timeouts
// schedule runs at (t, 3k+3) for "wait for 0" and (t+d, 3) otherwise, and
// are cancelled by wake-sequence numbers rather than event retraction.
//
// Because every cross-LP event of one phase is causally separated from the
// next phase by the lt component, events that share a full (pt, lt)
// timestamp are mutually independent (edits to different drivers, updates to
// different ports), so the underlying PDES protocol may process them in
// arbitrary order — the paper's key requirement.
package kernel

import (
	"encoding/gob"
	"sync"

	"govhdl/internal/stdlogic"
	"govhdl/internal/vtime"
)

// Event kinds exchanged between kernel LPs.
const (
	// evAssign carries a process's driver edits to a signal
	// (Process: Run -> Signal: Assign, same virtual time).
	evAssign uint8 = iota + 1
	// evDriving is a signal's internal transaction-maturity event
	// (Signal: Assign -> Signal: Driving Value).
	evDriving
	// evResolve is a resolved signal's internal resolution event
	// (Signal: Driving Value -> Signal: Resolution).
	evResolve
	// evUpdate carries a new effective value to a reading process
	// (Signal -> Process: Signal Update, same virtual time as Resolution).
	evUpdate
	// evRun resumes a process (Process: Signal Update -> Process: Run, or a
	// wait timeout).
	evRun
)

// Value is a VHDL object value. The kernel supports stdlogic.Std,
// stdlogic.Vec, bool, and int64 (VHDL integer); aggregates beyond these are
// the front end's concern.
type Value = any

// ValueEqual compares two kernel values.
func ValueEqual(a, b Value) bool {
	if av, ok := a.(stdlogic.Vec); ok {
		bv, ok := b.(stdlogic.Vec)
		return ok && av.Equal(bv)
	}
	if _, ok := b.(stdlogic.Vec); ok {
		return false
	}
	if av, ok := a.(Equaler); ok {
		return av.EqualValue(b)
	}
	return a == b
}

// CloneValue deep-copies a kernel value (vectors are the only mutable kind).
func CloneValue(v Value) Value {
	if vec, ok := v.(stdlogic.Vec); ok {
		return vec.Clone()
	}
	return v
}

// WaveElem is one element of a signal-assignment waveform:
// "value after delay".
type WaveElem struct {
	Value Value
	After vtime.Time
}

// Edit is one signal-assignment statement's effect on one driver: an
// ordered waveform with a delay mechanism.
type Edit struct {
	Wave      []WaveElem
	Transport bool       // transport delay mechanism (inertial otherwise)
	Reject    vtime.Time // inertial pulse rejection limit (0 = first delay)
}

// assignMsg is the evAssign payload: all edits one process run made to one
// driver of one signal, in program order.
type assignMsg struct {
	Driver int
	Edits  []Edit
}

// updateMsg is the evUpdate payload.
type updateMsg struct {
	Port  int
	Value Value
}

// runMsg is the evRun payload.
type runMsg struct {
	Seq     uint64 // wake sequence; stale (cancelled) runs carry an old Seq
	Timeout bool   // true when scheduled by a wait timeout clause
}

// Resolution resolves the driving values of a multiply-driven signal into
// its effective value. Implementations must be pure functions.
type Resolution func(drivers []Value) Value

// StdResolution is the IEEE 1164 resolution function for std_logic signals.
func StdResolution(drivers []Value) Value {
	r := stdlogic.Z
	for i, d := range drivers {
		v := d.(stdlogic.Std)
		if i == 0 {
			r = v
		} else {
			r = stdlogic.Resolve2(r, v)
		}
	}
	return r
}

// StdVecResolution resolves std_logic_vector drivers element-wise.
func StdVecResolution(drivers []Value) Value {
	vecs := make([]stdlogic.Vec, len(drivers))
	for i, d := range drivers {
		vecs[i] = d.(stdlogic.Vec)
	}
	return stdlogic.ResolveVec(vecs...)
}

// Class tags kernel LPs for the paper's mixed-protocol heuristic
// ("synchronous components are mapped as conservative and asynchronous ones
// as optimistic"): clocks and registers run conservatively under
// ProtoMixed/ProtoDynamic, everything else optimistically.
type Class uint8

const (
	ClassComb     Class = iota // combinational logic and plain signals
	ClassClock                 // clock generators and clock signals
	ClassRegister              // clocked storage elements
	ClassStimulus              // testbench stimulus/monitor processes
)

// Synchronous reports whether the class uses the conservative hint under
// the mixed heuristic.
func (c Class) Synchronous() bool { return c == ClassClock || c == ClassRegister }

// Equaler lets value types define their own equality for ValueEqual
// (e.g. enumeration values that must compare equal across process
// boundaries where pointer identity is not preserved).
type Equaler interface {
	EqualValue(other any) bool
}

// RegisterGob registers the kernel's wire payload types for the TCP
// transport, plus the committed-trace item types so recorded traces can be
// serialized alongside checkpoints. Idempotent.
func RegisterGob() {
	gobOnce.Do(func() {
		gob.Register(&assignMsg{})
		gob.Register(&updateMsg{})
		gob.Register(&runMsg{})
		gob.Register(SigChange{})
		gob.Register(ReportNote{})
	})
}

var gobOnce sync.Once
