// Package figures regenerates every table and figure of the paper's
// evaluation section:
//
//	Fig. 4  — arbitrary vs. user-consistent simultaneous-event handling,
//	          with and without lookahead (running-time table)
//	Fig. 6  — speedup curves for the zero-delay FSM (Fig. 5)
//	Fig. 8  — speedup curves for the gate-level Gray–Markel IIR (Fig. 7)
//	Fig. 10 — speedup curves for the gate-level DCT processor (Fig. 9)
//
// Speedups are relative to the dedicated sequential simulator ("improved
// for sequential simulation"), measured in the virtual-processor cost model
// (see package stats for why wall-clock time cannot show parallel speedup
// on this host). Every run is verified against the circuit's bit-true
// reference model — the paper's "all simulations were verified to be
// correct".
package figures

import (
	"fmt"
	"io"
	"time"

	"govhdl/internal/circuits"
	"govhdl/internal/pdes"
	"govhdl/internal/stats"
	"govhdl/internal/vtime"
)

// ConfigSpec is one named protocol configuration of a speedup figure.
// When Shard is set, the LP graph is clustered into one shard per worker
// (topology-aware membership) before the run: events inside a shard execute
// sequentially with zero protocol overhead and the PDES protocol runs only
// between shards.
type ConfigSpec struct {
	Name  string
	Cfg   pdes.Config
	Shard bool
}

// PaperConfigs returns the four configurations of the paper's speedup
// figures: all conservative, all optimistic, mixed (registers/clocks
// conservative, rest optimistic) and dynamic self-adapting.
func PaperConfigs() []ConfigSpec {
	return []ConfigSpec{
		{Name: "cons", Cfg: pdes.Config{Protocol: pdes.ProtoConservative}},
		{Name: "opt", Cfg: pdes.Config{Protocol: pdes.ProtoOptimistic}},
		{Name: "mixed", Cfg: pdes.Config{Protocol: pdes.ProtoMixed}},
		{Name: "dynamic", Cfg: pdes.Config{Protocol: pdes.ProtoDynamic}},
	}
}

// RunResult is one measured simulation run.
type RunResult struct {
	Workers  int
	Makespan float64
	Speedup  float64
	Wall     time.Duration
	Metrics  stats.Snapshot
}

// Speedup sweeps worker counts for each configuration over the circuit
// built by build, verifying every run. It returns one series per
// configuration, plus the sequential baseline cost.
func Speedup(build func() *circuits.Circuit, until vtime.Time, workers []int,
	configs []ConfigSpec, progress io.Writer) ([]stats.Series, float64, error) {

	seq := build()
	seqStart := time.Now()
	seqRes, err := pdes.RunSequential(seq.Design.Build(), until, nil)
	if err != nil {
		return nil, 0, fmt.Errorf("sequential baseline: %w", err)
	}
	if err := seq.Verify(until); err != nil {
		return nil, 0, fmt.Errorf("sequential baseline verification: %w", err)
	}
	seqCost := seqRes.Makespan
	if progress != nil {
		fmt.Fprintf(progress, "# %s sequential: %d events, cost %.0f, wall %v\n",
			seq.Name, seqRes.Metrics.Events, seqCost, time.Since(seqStart).Round(time.Millisecond))
	}

	var series []stats.Series
	for _, cs := range configs {
		s := stats.Series{Name: cs.Name}
		for _, w := range workers {
			c := build()
			cfg := cs.Cfg
			cfg.Workers = w
			if cfg.ThrottleWindow == 0 && cfg.Protocol != pdes.ProtoConservative {
				// Bound optimism. Unbounded Time Warp on zero-lookahead
				// circuits speculates many cycles ahead and collapses in
				// rollback storms — the memory-explosion problem the paper
				// attributes to the all-optimistic configuration; real
				// Time Warp systems bound it with memory windows. For
				// gate-level circuits the window is a few dozen gate
				// delays (speculating deeper into the combinational
				// cascade is almost always wasted); for delta-delay
				// circuits it is a couple of clock periods.
				if c.GateDelay > 0 {
					cfg.ThrottleWindow = 32 * c.GateDelay
				} else {
					cfg.ThrottleWindow = 4 * c.ClockHalf
				}
			}
			runSys := c.Design.Build()
			if cs.Shard {
				ss, serr := pdes.ShardSystem(runSys, w, pdes.PartitionTopo)
				if serr != nil {
					return nil, 0, fmt.Errorf("%s config %s w=%d: %w", c.Name, cs.Name, w, serr)
				}
				runSys = ss.Sys()
			}
			start := time.Now()
			res, err := pdes.Run(runSys, cfg, until, nil)
			if err != nil {
				return nil, 0, fmt.Errorf("%s config %s w=%d: %w", c.Name, cs.Name, w, err)
			}
			if err := c.Verify(until); err != nil {
				return nil, 0, fmt.Errorf("%s config %s w=%d verification: %w", c.Name, cs.Name, w, err)
			}
			row := stats.SpeedupRow{Workers: w, Makespan: res.Makespan, Speedup: seqCost / res.Makespan}
			s.Rows = append(s.Rows, row)
			if progress != nil {
				fmt.Fprintf(progress, "# %s %s w=%-2d speedup %.2f  (%v, wall %v)\n",
					c.Name, cs.Name, w, row.Speedup, res.Metrics, time.Since(start).Round(time.Millisecond))
			}
		}
		series = append(series, s)
	}
	return series, seqCost, nil
}

// Scale selects the size of the circuits: ScalePaper uses the paper's LP
// counts; ScaleSmoke shrinks everything for tests and quick benchmarks.
type Scale int

const (
	ScalePaper Scale = iota
	ScaleSmoke
)

// FSMCircuit returns the Fig. 5 build function and horizon.
func FSMCircuit(s Scale) (func() *circuits.Circuit, vtime.Time) {
	opts := circuits.FSMOpts{}
	if s == ScaleSmoke {
		opts = circuits.FSMOpts{Machines: 10, Cycles: 30}
	}
	probe := circuits.BuildFSM(opts)
	return func() *circuits.Circuit { return circuits.BuildFSM(opts) }, probe.DefaultHorizon
}

// IIRCircuit returns the Fig. 7 build function and horizon. Paper scale
// uses the paper's LP count but a trimmed cycle count: the curve shapes are
// stable after a dozen cycles and single-core regeneration time stays sane.
func IIRCircuit(s Scale) (func() *circuits.Circuit, vtime.Time) {
	opts := circuits.IIROpts{Cycles: 6}
	if s == ScaleSmoke {
		opts = circuits.IIROpts{Sections: 1, Width: 4, Cycles: 6}
	}
	probe := circuits.BuildIIR(opts)
	return func() *circuits.Circuit { return circuits.BuildIIR(opts) }, probe.DefaultHorizon
}

// DCTCircuit returns the Fig. 9 build function and horizon (trimmed cycle
// count, as for IIRCircuit).
func DCTCircuit(s Scale) (func() *circuits.Circuit, vtime.Time) {
	opts := circuits.DCTOpts{Cycles: 6}
	if s == ScaleSmoke {
		opts = circuits.DCTOpts{Width: 4, MACs: 2, Cycles: 6}
	}
	probe := circuits.BuildDCT(opts)
	return func() *circuits.Circuit { return circuits.BuildDCT(opts) }, probe.DefaultHorizon
}

// PaperWorkers are the processor counts of the paper's curves.
var PaperWorkers = []int{1, 2, 4, 8, 16}

// SpeedupFigure regenerates one of the speedup figures (6, 8 or 10).
func SpeedupFigure(fig int, scale Scale, w io.Writer) error {
	var build func() *circuits.Circuit
	var until vtime.Time
	var title string
	switch fig {
	case 6:
		build, until = FSMCircuit(scale)
		title = "Figure 6: speedup for FSM (zero delay)"
	case 8:
		build, until = IIRCircuit(scale)
		title = "Figure 8: speedup for Gray-Markel IIR filter (gate level)"
	case 10:
		build, until = DCTCircuit(scale)
		title = "Figure 10: speedup for DCT processor (gate level)"
	default:
		return fmt.Errorf("figures: no speedup figure %d (use 6, 8 or 10)", fig)
	}
	probe := build()
	fmt.Fprintf(w, "# circuit: %v\n", probe)
	series, seqCost, err := Speedup(build, until, PaperWorkers, PaperConfigs(), w)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "# sequential baseline cost: %.0f\n", seqCost)
	fmt.Fprint(w, stats.FormatCurves(title, series))
	return nil
}
