package figures

import (
	"fmt"
	"io"
	"strings"
	"time"

	"govhdl/internal/circuits"
	"govhdl/internal/pdes"
	"govhdl/internal/vtime"
)

// Fig4Row is one circuit's row of the paper's Fig. 4 table: modeled running
// time under the arbitrary vs. user-consistent simultaneous-event models,
// with and without lookahead, on the paper's 16 processors.
type Fig4Row struct {
	Circuit     string
	ConsArbNoLA float64 // conservative, arbitrary order, lookahead off
	ConsArbLA   float64 // conservative, arbitrary order, lookahead on
	ConsUserLA  float64 // conservative, user-consistent, lookahead on
	ConsUserErr string  // conservative, user-consistent, no lookahead: blocks
	OptArb      float64 // optimistic, arbitrary order
	OptUser     float64 // optimistic, user-consistent (extra equal-ts rollbacks)
	NullsLA     uint64  // null messages of the cons user-consistent run
}

// fig4Workers is the paper's processor count for the Fig. 4 table.
const fig4Workers = 16

func fig4Run(build func() *circuits.Circuit, until vtime.Time, cfg pdes.Config) (float64, uint64, error) {
	c := build()
	cfg.Workers = fig4Workers
	if cfg.Protocol != pdes.ProtoConservative {
		// The same optimism bound as the speedup figures, so the
		// arbitrary-vs-user comparison is apples to apples.
		if c.GateDelay > 0 {
			cfg.ThrottleWindow = 32 * c.GateDelay
		} else {
			cfg.ThrottleWindow = 4 * c.ClockHalf
		}
	}
	res, err := pdes.Run(c.Design.Build(), cfg, until, nil)
	if err != nil {
		return 0, 0, err
	}
	if err := c.Verify(until); err != nil {
		return 0, 0, err
	}
	return res.Makespan, res.Metrics.Nulls, nil
}

// Fig4 regenerates the arbitrary vs. user-consistent comparison for one
// circuit.
func Fig4(name string, build func() *circuits.Circuit, until vtime.Time, progress io.Writer) (*Fig4Row, error) {
	row := &Fig4Row{Circuit: name}
	step := func(label string, cfg pdes.Config) (float64, uint64, error) {
		start := time.Now()
		m, nulls, err := fig4Run(build, until, cfg)
		if progress != nil && err == nil {
			fmt.Fprintf(progress, "# %s %-18s cost %.0f (wall %v)\n",
				name, label, m, time.Since(start).Round(time.Millisecond))
		}
		return m, nulls, err
	}
	var err error
	if row.ConsArbNoLA, _, err = step("cons/arb/-la", pdes.Config{Protocol: pdes.ProtoConservative}); err != nil {
		return nil, err
	}
	if row.ConsArbLA, _, err = step("cons/arb/+la", pdes.Config{Protocol: pdes.ProtoConservative, Lookahead: true}); err != nil {
		return nil, err
	}
	if row.ConsUserLA, row.NullsLA, err = step("cons/user/+la", pdes.Config{
		Protocol: pdes.ProtoConservative, Ordering: pdes.OrderUserConsistent, Lookahead: true,
	}); err != nil {
		return nil, err
	}
	// Conservative user-consistent without lookahead must be rejected or
	// deadlock — the paper: "the user-consistent model for conservative
	// configuration will block without it".
	badCfg := pdes.Config{Protocol: pdes.ProtoConservative, Ordering: pdes.OrderUserConsistent, Workers: fig4Workers}
	if verr := badCfg.Validate(); verr != nil {
		row.ConsUserErr = "blocks"
	} else {
		row.ConsUserErr = "accepted?!"
	}
	if row.OptArb, _, err = step("opt/arb", pdes.Config{Protocol: pdes.ProtoOptimistic}); err != nil {
		return nil, err
	}
	if row.OptUser, _, err = step("opt/user", pdes.Config{Protocol: pdes.ProtoOptimistic, Ordering: pdes.OrderUserConsistent}); err != nil {
		return nil, err
	}
	return row, nil
}

// Fig4Table regenerates the whole Fig. 4 table at the given scale.
func Fig4Table(scale Scale, w io.Writer) error {
	type entry struct {
		name  string
		build func() *circuits.Circuit
		until vtime.Time
	}
	var entries []entry
	fb, fu := FSMCircuit(scale)
	ib, iu := IIRCircuit(scale)
	db, du := DCTCircuit(scale)
	entries = append(entries,
		entry{"FSM", fb, fu}, entry{"IIR", ib, iu}, entry{"DCT", db, du})

	var rows []*Fig4Row
	for _, e := range entries {
		row, err := Fig4(e.name, e.build, e.until, w)
		if err != nil {
			return fmt.Errorf("fig4 %s: %w", e.name, err)
		}
		rows = append(rows, row)
	}
	fmt.Fprint(w, FormatFig4(rows))
	return nil
}

// FormatFig4 renders the table in the paper's layout (running times on 16
// processors; modeled cost units here).
func FormatFig4(rows []*Fig4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4: Arbitrary vs. User-Consistent (modeled cost on %d processors)\n", fig4Workers)
	fmt.Fprintf(&b, "%-8s %12s %12s %12s %12s %12s %12s\n",
		"circuit", "cons arb-la", "cons arb+la", "cons user+la", "cons user-la", "opt arb", "opt user")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %12.0f %12.0f %12.0f %12s %12.0f %12.0f\n",
			r.Circuit, r.ConsArbNoLA, r.ConsArbLA, r.ConsUserLA, r.ConsUserErr, r.OptArb, r.OptUser)
	}
	return b.String()
}
