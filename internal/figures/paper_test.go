package figures

import (
	"os"
	"testing"
)

// Paper-scale figure regeneration is gated behind GOVHDL_PAPER=1: the full
// sweeps take minutes (cmd/benchfigs is the usual entry point). The smoke
// tests in figures_test.go cover the same code paths at small scale.

func paperScale(t *testing.T) {
	t.Helper()
	if os.Getenv("GOVHDL_PAPER") == "" {
		t.Skip("set GOVHDL_PAPER=1 to regenerate paper-scale figures")
	}
}

func TestFig6PaperScale(t *testing.T) {
	paperScale(t)
	if err := SpeedupFigure(6, ScalePaper, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestFig8PaperScale(t *testing.T) {
	paperScale(t)
	if err := SpeedupFigure(8, ScalePaper, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestFig10PaperScale(t *testing.T) {
	paperScale(t)
	if err := SpeedupFigure(10, ScalePaper, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestFig4PaperScale(t *testing.T) {
	paperScale(t)
	if err := Fig4Table(ScalePaper, os.Stdout); err != nil {
		t.Fatal(err)
	}
}
