package figures

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"govhdl/internal/circuits"
	"govhdl/internal/pdes"
	"govhdl/internal/stats"
	"govhdl/internal/vtime"
)

// WallClockCircuit names one circuit available to the wall-clock suite.
type WallClockCircuit struct {
	Name    string
	Circuit func(Scale) (func() *circuits.Circuit, vtime.Time)
}

// WallClockCircuits are the circuits the wall-clock suite sweeps. FSM is the
// headline workload (delta-cycle heavy, mixed-protocol friendly); IIR and DCT
// cover the gate-level regime.
func WallClockCircuits() []WallClockCircuit {
	return []WallClockCircuit{
		{"FSM", FSMCircuit},
		{"IIR", IIRCircuit},
		{"DCT", DCTCircuit},
	}
}

// WallClockConfigs returns the protocol configurations measured by the
// wall-clock suite: the sequential oracle, the paper's four parallel
// protocols, and three sharded configurations (one shard per worker,
// intra-shard sequential execution, protocol only between shards).
func WallClockConfigs() []ConfigSpec {
	specs := append([]ConfigSpec{{Name: "seq", Cfg: pdes.Config{Protocol: pdes.ProtoSequential}}},
		PaperConfigs()...)
	return append(specs,
		ConfigSpec{Name: "cons-shard", Cfg: pdes.Config{Protocol: pdes.ProtoConservative, Lookahead: true, GVTAdapt: true}, Shard: true},
		ConfigSpec{Name: "opt-shard", Cfg: pdes.Config{Protocol: pdes.ProtoOptimistic, Lookahead: true}, Shard: true},
		ConfigSpec{Name: "dynamic-shard", Cfg: pdes.Config{Protocol: pdes.ProtoDynamic, Lookahead: true, GVTAdapt: true}, Shard: true},
	)
}

// defaultThrottle applies the same optimism bound Speedup uses when the
// configuration leaves ThrottleWindow unset.
func defaultThrottle(c *circuits.Circuit, cfg *pdes.Config) {
	if cfg.ThrottleWindow != 0 || cfg.Protocol == pdes.ProtoConservative ||
		cfg.Protocol == pdes.ProtoSequential {
		return
	}
	if c.GateDelay > 0 {
		cfg.ThrottleWindow = 32 * c.GateDelay
	} else {
		cfg.ThrottleWindow = 4 * c.ClockHalf
	}
}

// MeasureWallClock runs one verified simulation and measures host wall-clock
// time and heap allocation around the run itself (circuit construction and
// verification excluded). The run is verified against the circuit's bit-true
// reference model, so a point is only reported for a correct simulation.
func MeasureWallClock(build func() *circuits.Circuit, until vtime.Time,
	circuitName string, cs ConfigSpec, workers int) (stats.WallClockPoint, error) {

	c := build()
	cfg := cs.Cfg
	cfg.Workers = workers
	defaultThrottle(c, &cfg)
	sys := c.Design.Build()
	shards := 0
	if cs.Shard {
		shards = workers
		ss, serr := pdes.ShardSystem(sys, shards, pdes.PartitionTopo)
		if serr != nil {
			return stats.WallClockPoint{}, fmt.Errorf("%s/%s w=%d: %w", circuitName, cs.Name, workers, serr)
		}
		sys = ss.Sys()
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := pdes.Run(sys, cfg, until, nil)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return stats.WallClockPoint{}, fmt.Errorf("%s/%s w=%d: %w", circuitName, cs.Name, workers, err)
	}
	if err := c.Verify(until); err != nil {
		return stats.WallClockPoint{}, fmt.Errorf("%s/%s w=%d verification: %w", circuitName, cs.Name, workers, err)
	}
	events := res.Metrics.Events
	p := stats.WallClockPoint{
		Circuit:    circuitName,
		Config:     cs.Name,
		Workers:    workers,
		Shards:     shards,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Events:     events,
		WallMs:     float64(wall.Nanoseconds()) / 1e6,
		Makespan:   res.Makespan,
	}
	if events > 0 {
		p.NsPerEvent = float64(wall.Nanoseconds()) / float64(events)
		p.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(events)
		p.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(events)
	}
	return p, nil
}

// WallClockSuite measures every (circuit, config) cell of the wall-clock
// benchmark at the given scale and worker count, reporting progress to
// `progress` when non-nil. Cells are measured `reps` times and the fastest
// run is kept (standard min-of-N wall-clock practice).
func WallClockSuite(scale Scale, workers, reps int, progress io.Writer) (*stats.WallClockReport, error) {
	if reps < 1 {
		reps = 1
	}
	rep := &stats.WallClockReport{
		Scale:      scaleName(scale),
		Workers:    workers,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	for _, wc := range WallClockCircuits() {
		build, until := wc.Circuit(scale)
		seqMakespan := 0.0
		for _, cs := range WallClockConfigs() {
			w := workers
			if cs.Cfg.Protocol == pdes.ProtoSequential {
				w = 1
			}
			var best stats.WallClockPoint
			for r := 0; r < reps; r++ {
				p, err := MeasureWallClock(build, until, wc.Name, cs, w)
				if err != nil {
					return nil, err
				}
				if r == 0 || p.NsPerEvent < best.NsPerEvent {
					best = p
				}
			}
			// The sequential oracle is the first configuration of the sweep;
			// its makespan anchors every modeled speedup of this circuit.
			if cs.Cfg.Protocol == pdes.ProtoSequential {
				seqMakespan = best.Makespan
			} else if seqMakespan > 0 && best.Makespan > 0 {
				best.ModeledSpeedup = seqMakespan / best.Makespan
			}
			rep.Points = append(rep.Points, best)
			if progress != nil {
				fmt.Fprintf(progress, "# wallclock %s/%-13s w=%d  %8.0f ns/event  %6.2f allocs/event  %7.0f B/event  (%d events, modeled speedup %.2f)\n",
					best.Circuit, best.Config, best.Workers, best.NsPerEvent, best.AllocsPerEvent, best.BytesPerEvent, best.Events, best.ModeledSpeedup)
			}
		}
	}
	return rep, nil
}

func scaleName(s Scale) string {
	if s == ScalePaper {
		return "paper"
	}
	return "smoke"
}
