package figures

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"govhdl/internal/circuits"
	"govhdl/internal/pdes"
	"govhdl/internal/stats"
	"govhdl/internal/vtime"
)

// WallClockCircuit names one circuit available to the wall-clock suite.
type WallClockCircuit struct {
	Name    string
	Circuit func(Scale) (func() *circuits.Circuit, vtime.Time)
}

// WallClockCircuits are the circuits the wall-clock suite sweeps. FSM is the
// headline workload (delta-cycle heavy, mixed-protocol friendly); IIR covers
// the gate-level regime.
func WallClockCircuits() []WallClockCircuit {
	return []WallClockCircuit{
		{"FSM", FSMCircuit},
		{"IIR", IIRCircuit},
	}
}

// WallClockConfigs returns the protocol configurations measured by the
// wall-clock suite: the sequential oracle plus the paper's four parallel
// protocols.
func WallClockConfigs() []ConfigSpec {
	return append([]ConfigSpec{{Name: "seq", Cfg: pdes.Config{Protocol: pdes.ProtoSequential}}},
		PaperConfigs()...)
}

// defaultThrottle applies the same optimism bound Speedup uses when the
// configuration leaves ThrottleWindow unset.
func defaultThrottle(c *circuits.Circuit, cfg *pdes.Config) {
	if cfg.ThrottleWindow != 0 || cfg.Protocol == pdes.ProtoConservative ||
		cfg.Protocol == pdes.ProtoSequential {
		return
	}
	if c.GateDelay > 0 {
		cfg.ThrottleWindow = 32 * c.GateDelay
	} else {
		cfg.ThrottleWindow = 4 * c.ClockHalf
	}
}

// MeasureWallClock runs one verified simulation and measures host wall-clock
// time and heap allocation around the run itself (circuit construction and
// verification excluded). The run is verified against the circuit's bit-true
// reference model, so a point is only reported for a correct simulation.
func MeasureWallClock(build func() *circuits.Circuit, until vtime.Time,
	circuitName, cfgName string, cfg pdes.Config, workers int) (stats.WallClockPoint, error) {

	c := build()
	cfg.Workers = workers
	defaultThrottle(c, &cfg)
	sys := c.Design.Build()

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	res, err := pdes.Run(sys, cfg, until, nil)
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return stats.WallClockPoint{}, fmt.Errorf("%s/%s w=%d: %w", circuitName, cfgName, workers, err)
	}
	if err := c.Verify(until); err != nil {
		return stats.WallClockPoint{}, fmt.Errorf("%s/%s w=%d verification: %w", circuitName, cfgName, workers, err)
	}
	events := res.Metrics.Events
	p := stats.WallClockPoint{
		Circuit: circuitName,
		Config:  cfgName,
		Workers: workers,
		Events:  events,
		WallMs:  float64(wall.Nanoseconds()) / 1e6,
	}
	if events > 0 {
		p.NsPerEvent = float64(wall.Nanoseconds()) / float64(events)
		p.AllocsPerEvent = float64(after.Mallocs-before.Mallocs) / float64(events)
		p.BytesPerEvent = float64(after.TotalAlloc-before.TotalAlloc) / float64(events)
	}
	return p, nil
}

// WallClockSuite measures every (circuit, config) cell of the wall-clock
// benchmark at the given scale and worker count, reporting progress to
// `progress` when non-nil. Cells are measured `reps` times and the fastest
// run is kept (standard min-of-N wall-clock practice).
func WallClockSuite(scale Scale, workers, reps int, progress io.Writer) (*stats.WallClockReport, error) {
	if reps < 1 {
		reps = 1
	}
	rep := &stats.WallClockReport{
		Scale:      scaleName(scale),
		Workers:    workers,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
	}
	for _, wc := range WallClockCircuits() {
		build, until := wc.Circuit(scale)
		for _, cs := range WallClockConfigs() {
			w := workers
			if cs.Cfg.Protocol == pdes.ProtoSequential {
				w = 1
			}
			var best stats.WallClockPoint
			for r := 0; r < reps; r++ {
				p, err := MeasureWallClock(build, until, wc.Name, cs.Name, cs.Cfg, w)
				if err != nil {
					return nil, err
				}
				if r == 0 || p.NsPerEvent < best.NsPerEvent {
					best = p
				}
			}
			rep.Points = append(rep.Points, best)
			if progress != nil {
				fmt.Fprintf(progress, "# wallclock %s/%-8s w=%d  %8.0f ns/event  %6.2f allocs/event  %7.0f B/event  (%d events)\n",
					best.Circuit, best.Config, best.Workers, best.NsPerEvent, best.AllocsPerEvent, best.BytesPerEvent, best.Events)
			}
		}
	}
	return rep, nil
}

func scaleName(s Scale) string {
	if s == ScalePaper {
		return "paper"
	}
	return "smoke"
}
