package figures

import (
	"bytes"
	"strings"
	"testing"

	"govhdl/internal/pdes"
)

func TestSpeedupSmoke(t *testing.T) {
	build, until := FSMCircuit(ScaleSmoke)
	series, seqCost, err := Speedup(build, until, []int{1, 2, 4}, PaperConfigs(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if seqCost <= 0 {
		t.Fatal("non-positive sequential cost")
	}
	if len(series) != 4 {
		t.Fatalf("got %d series", len(series))
	}
	for _, s := range series {
		if len(s.Rows) != 3 {
			t.Fatalf("series %s has %d rows", s.Name, len(s.Rows))
		}
		for _, r := range s.Rows {
			if r.Speedup <= 0 {
				t.Errorf("series %s w=%d: speedup %f", s.Name, r.Workers, r.Speedup)
			}
		}
	}
}

func TestSpeedupFigureSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := SpeedupFigure(6, ScaleSmoke, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Figure 6", "cons", "opt", "mixed", "dynamic", "procs"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	if err := SpeedupFigure(7, ScaleSmoke, &buf); err == nil {
		t.Error("figure 7 accepted (not a speedup figure)")
	}
}

func TestFig4Smoke(t *testing.T) {
	build, until := IIRCircuit(ScaleSmoke)
	row, err := Fig4("IIR", build, until, nil)
	if err != nil {
		t.Fatal(err)
	}
	if row.ConsUserErr != "blocks" {
		t.Errorf("cons/user/-la = %q, want blocks", row.ConsUserErr)
	}
	if row.NullsLA == 0 {
		t.Error("user-consistent conservative run sent no null messages")
	}
	for name, v := range map[string]float64{
		"cons arb -la": row.ConsArbNoLA,
		"cons arb +la": row.ConsArbLA,
		"cons user+la": row.ConsUserLA,
		"opt arb":      row.OptArb,
		"opt user":     row.OptUser,
	} {
		if v <= 0 {
			t.Errorf("%s: non-positive cost %f", name, v)
		}
	}
	out := FormatFig4([]*Fig4Row{row})
	if !strings.Contains(out, "blocks") || !strings.Contains(out, "IIR") {
		t.Errorf("bad table:\n%s", out)
	}
}

func TestFig4FSMUserConsistentCompletes(t *testing.T) {
	// The zero-delay FSM under user-consistent conservative ordering with
	// lookahead exercises the sensitivity-aware promise chain through
	// register loops; it must complete, not deadlock.
	build, until := FSMCircuit(ScaleSmoke)
	c := build()
	if _, err := pdes.Run(c.Design.Build(), pdes.Config{
		Workers:   4,
		Protocol:  pdes.ProtoConservative,
		Ordering:  pdes.OrderUserConsistent,
		Lookahead: true,
	}, until, nil); err != nil {
		t.Fatalf("user-consistent FSM with lookahead failed: %v", err)
	}
	if err := c.Verify(until); err != nil {
		t.Fatal(err)
	}
}
