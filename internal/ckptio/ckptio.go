// Package ckptio is the crash-consistent on-disk checkpoint format: a framed,
// checksummed container around the engine's GVT-consistent Checkpoint plus the
// trace committed up to the cut, with a keep-N generation lineage and a
// fallback reader that restores from the newest *verifiable* generation.
//
// The frame is
//
//	magic "GVCP" | version u32 | payload length u64 | sha256(payload) | payload
//
// (all integers big-endian, payload a single gob stream). Every reader
// verifies the whole frame before decoding a byte of the payload, so a torn
// write, a truncated copy, or a flipped bit is rejected with an *Error that
// positions the corruption (file, byte offset, what was expected) instead of
// surfacing as a gob panic deep inside restore — and, through Recover, the
// restart falls back to the previous generation instead of dying.
//
// Writes are atomic and durable: encode to a temp file, fsync, rename over
// the target, fsync the parent directory. A crash at any step leaves either
// the previous good generation set or the complete new one, never a torn
// file. Generation rotation (path -> path.1 -> path.2 ...) happens before the
// rename; each generation is a self-contained verified frame, so a crash
// mid-rotation still leaves only verifiable (or detectably corrupt) files.
package ckptio

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"syscall"

	"govhdl/internal/pdes"
	"govhdl/internal/trace"
)

// Magic identifies a ckptio frame. Files written by the pre-framing format
// (bare gob) start with a gob type descriptor and are rejected with a
// diagnosis naming the legacy format.
const Magic = "GVCP"

// Version is the current frame version. Readers reject other versions with a
// positioned error rather than guessing at the payload layout.
const Version = 1

// headerLen is the fixed frame prefix: magic, version, payload length,
// payload sha256.
const headerLen = 4 + 4 + 8 + sha256.Size

// maxPayload bounds how much a reader will allocate for a claimed payload
// length (a corrupt length field must not turn into an OOM).
const maxPayload = 1 << 32

// File is the restart image a generation holds: the engine checkpoint, the
// trace committed up to the cut, and the sharding the run was started with
// (so a restore rebuilds an identical shard system without the caller having
// to repeat — or risk contradicting — the original flags).
type File struct {
	Ckpt      *pdes.Checkpoint
	Trace     []trace.Entry
	Shards    int
	Partition string
}

// Error is a positioned verification failure: which file, which byte offset
// the check failed at, and what was wrong there.
type Error struct {
	Path   string
	Offset int64  // byte offset of the failed check
	Reason string // what was expected / found
	Err    error  // underlying cause, when one exists
}

func (e *Error) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("ckptio: %s: byte %d: %s: %v", e.Path, e.Offset, e.Reason, e.Err)
	}
	return fmt.Sprintf("ckptio: %s: byte %d: %s", e.Path, e.Offset, e.Reason)
}

func (e *Error) Unwrap() error { return e.Err }

func errAt(path string, off int64, reason string, err error) *Error {
	return &Error{Path: path, Offset: off, Reason: reason, Err: err}
}

// Encode writes the framed file to w.
func Encode(w io.Writer, f *File) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(f); err != nil {
		return fmt.Errorf("ckptio: encode payload: %w", err)
	}
	var hdr [headerLen]byte
	copy(hdr[0:4], Magic)
	binary.BigEndian.PutUint32(hdr[4:8], Version)
	binary.BigEndian.PutUint64(hdr[8:16], uint64(payload.Len()))
	sum := sha256.Sum256(payload.Bytes())
	copy(hdr[16:], sum[:])
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload.Bytes())
	return err
}

// Decode reads and verifies one framed file from r. path is used only for
// error positioning.
func Decode(r io.Reader, path string) (*File, error) {
	var hdr [headerLen]byte
	if n, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, errAt(path, int64(n), fmt.Sprintf("truncated header (%d of %d bytes)", n, headerLen), err)
	}
	if string(hdr[0:4]) != Magic {
		if hdr[0] < 0x20 { // gob streams start with a small length byte
			return nil, errAt(path, 0, "no GVCP magic (pre-framing bare-gob checkpoint? rewrite it with a current -checkpoint-file run)", nil)
		}
		return nil, errAt(path, 0, fmt.Sprintf("bad magic %q, want %q", hdr[0:4], Magic), nil)
	}
	if v := binary.BigEndian.Uint32(hdr[4:8]); v != Version {
		return nil, errAt(path, 4, fmt.Sprintf("frame version %d, want %d", v, Version), nil)
	}
	plen := binary.BigEndian.Uint64(hdr[8:16])
	if plen == 0 || plen > maxPayload {
		return nil, errAt(path, 8, fmt.Sprintf("payload length %d out of range (1..%d)", plen, maxPayload), nil)
	}
	payload := make([]byte, plen)
	if n, err := io.ReadFull(r, payload); err != nil {
		return nil, errAt(path, int64(headerLen+n), fmt.Sprintf("torn payload (%d of %d bytes)", n, plen), err)
	}
	if sum := sha256.Sum256(payload); !bytes.Equal(sum[:], hdr[16:]) {
		return nil, errAt(path, 16, fmt.Sprintf("payload sha256 %x does not match header %x", sum[:8], hdr[16:24]), nil)
	}
	var f File
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&f); err != nil {
		return nil, errAt(path, headerLen, "payload gob decode", err)
	}
	if f.Ckpt == nil {
		return nil, errAt(path, headerLen, "frame verified but holds no checkpoint", nil)
	}
	return &f, nil
}

// Read loads and verifies the single generation at path.
func Read(path string) (*File, error) {
	fd, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fd.Close()
	return Decode(fd, path)
}

// GenPath names generation n of a lineage rooted at path: the newest
// generation is path itself, older ones are path.1, path.2, ...
func GenPath(path string, n int) string {
	if n == 0 {
		return path
	}
	return fmt.Sprintf("%s.%d", path, n)
}

// Write stores f atomically as the newest generation of the lineage rooted
// at path, keeping at most keep generations (keep <= 1 keeps only path
// itself). Rotation happens before the rename, so the previous newest
// generation survives as path.1 until it ages out.
func Write(path string, keep int, f *File) error {
	if keep < 1 {
		keep = 1
	}
	tmp := path + ".tmp"
	fd, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := Encode(fd, f); err != nil {
		fd.Close()
		os.Remove(tmp)
		return err
	}
	if err := fd.Sync(); err != nil {
		fd.Close()
		os.Remove(tmp)
		return err
	}
	if err := fd.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	// Rotate path -> path.1 -> ... -> path.(keep-1); the one past the keep
	// bound is dropped. Oldest first so every step is a simple rename.
	os.Remove(GenPath(path, keep-1))
	for n := keep - 2; n >= 0; n-- {
		src := GenPath(path, n)
		if _, err := os.Stat(src); err == nil {
			if err := os.Rename(src, GenPath(path, n+1)); err != nil {
				os.Remove(tmp)
				return err
			}
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(filepath.Dir(path))
}

// Recover loads the newest verifiable generation of the lineage rooted at
// path: it tries path, then path.1, path.2, ... and returns the first
// generation that verifies, its path, and the verification errors of every
// newer generation it had to skip. When no generation verifies, the error
// joins every failure so the operator sees the whole lineage's diagnosis.
func Recover(path string) (f *File, gen string, skipped []error, err error) {
	var failures []error
	for n := 0; ; n++ {
		p := GenPath(path, n)
		f, rerr := Read(p)
		if rerr == nil {
			return f, p, failures, nil
		}
		if os.IsNotExist(rerr) {
			if n == 0 {
				return nil, "", nil, rerr
			}
			failures = append(failures, rerr)
			return nil, "", nil, fmt.Errorf("ckptio: no verifiable generation under %s: %w", path, errors.Join(failures...))
		}
		failures = append(failures, rerr)
	}
}

// syncDir fsyncs a directory so a just-renamed entry survives power loss.
// Filesystems that refuse to sync directories (some network mounts) are
// tolerated: the rename is still atomic, just not yet durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
		return err
	}
	return nil
}
