package ckptio

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"govhdl/internal/faultinject"
	"govhdl/internal/pdes"
	"govhdl/internal/trace"
	"govhdl/internal/transport"
	"govhdl/internal/vtime"
)

func sampleFile(round uint64) *File {
	return &File{
		Ckpt: &pdes.Checkpoint{
			Format:  1,
			GVT:     vtime.VT{PT: vtime.Time(round) * 10, LT: 0},
			Round:   round,
			Workers: 2,
			NumLPs:  3,
			Modes:   []pdes.Mode{pdes.Conservative, pdes.Optimistic, pdes.Conservative},
			Blobs:   [][]byte{nil, []byte("worker-1"), []byte("worker-2")},
		},
		Trace: []trace.Entry{
			{LP: 0, TS: vtime.VT{PT: 1}, Item: fmt.Sprintf("round %d", round)},
			{LP: 1, TS: vtime.VT{PT: 2}, Item: "beta"},
		},
		Shards:    2,
		Partition: "bfs",
	}
}

func TestRoundTrip(t *testing.T) {
	transport.RegisterGob()
	path := filepath.Join(t.TempDir(), "ck.gvcp")
	want := sampleFile(7)
	if err := Write(path, 3, want); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := Read(path)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Ckpt.Round != 7 || got.Shards != 2 || got.Partition != "bfs" || len(got.Trace) != 2 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}
	if !got.Ckpt.GVT.Equal(want.Ckpt.GVT) {
		t.Fatalf("GVT mismatch: got %v want %v", got.Ckpt.GVT, want.Ckpt.GVT)
	}
	if got.Trace[0].Item != "round 7" {
		t.Fatalf("trace item mismatch: %v", got.Trace[0].Item)
	}
}

// Every kind of damage must be rejected with a positioned *Error, never a
// decode of garbage.
func TestDecodeRejectsDamage(t *testing.T) {
	transport.RegisterGob()
	var buf bytes.Buffer
	if err := Encode(&buf, sampleFile(1)); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	good := buf.Bytes()

	cases := []struct {
		name   string
		mutate func([]byte) []byte
		want   string // substring of the error
	}{
		{"empty", func(b []byte) []byte { return nil }, "truncated header"},
		{"short header", func(b []byte) []byte { return b[:10] }, "truncated header"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "bad magic"},
		{"legacy gob", func(b []byte) []byte { b[0] = 0x1f; return b }, "pre-framing"},
		{"bad version", func(b []byte) []byte { b[7] = 99; return b }, "frame version 99"},
		{"torn payload", func(b []byte) []byte { return b[:len(b)-5] }, "torn payload"},
		{"flipped bit", func(b []byte) []byte { b[len(b)-1] ^= 0x40; return b }, "sha256"},
		{"flipped early byte", func(b []byte) []byte { b[headerLen+2] ^= 0x01; return b }, "sha256"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.mutate(append([]byte(nil), good...))
			_, err := Decode(bytes.NewReader(b), "test.gvcp")
			if err == nil {
				t.Fatalf("damage accepted")
			}
			var pe *Error
			if !errors.As(err, &pe) {
				t.Fatalf("error is not *ckptio.Error: %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
			if !strings.Contains(err.Error(), "test.gvcp") {
				t.Fatalf("error %q does not name the file", err)
			}
		})
	}
}

func TestGenerationRotation(t *testing.T) {
	transport.RegisterGob()
	path := filepath.Join(t.TempDir(), "ck.gvcp")
	for round := uint64(1); round <= 5; round++ {
		if err := Write(path, 3, sampleFile(round)); err != nil {
			t.Fatalf("Write round %d: %v", round, err)
		}
	}
	// keep=3: rounds 5, 4, 3 survive as gen 0, 1, 2; older are gone.
	for n, wantRound := range []uint64{5, 4, 3} {
		f, err := Read(GenPath(path, n))
		if err != nil {
			t.Fatalf("gen %d: %v", n, err)
		}
		if f.Ckpt.Round != wantRound {
			t.Fatalf("gen %d holds round %d, want %d", n, f.Ckpt.Round, wantRound)
		}
	}
	if _, err := os.Stat(GenPath(path, 3)); !os.IsNotExist(err) {
		t.Fatalf("generation past keep bound still exists")
	}
}

func TestRecoverFallsBackToVerifiableGeneration(t *testing.T) {
	transport.RegisterGob()
	path := filepath.Join(t.TempDir(), "ck.gvcp")
	for round := uint64(1); round <= 3; round++ {
		if err := Write(path, 3, sampleFile(round)); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	// Corrupt the newest generation: flip a payload byte.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-3] ^= 0x10
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	f, gen, skipped, err := Recover(path)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if gen != GenPath(path, 1) {
		t.Fatalf("recovered from %s, want generation 1", gen)
	}
	if f.Ckpt.Round != 2 {
		t.Fatalf("recovered round %d, want 2 (previous generation)", f.Ckpt.Round)
	}
	if len(skipped) != 1 || !strings.Contains(skipped[0].Error(), "sha256") {
		t.Fatalf("skipped = %v, want one sha256 failure", skipped)
	}
}

func TestRecoverAllCorrupt(t *testing.T) {
	transport.RegisterGob()
	path := filepath.Join(t.TempDir(), "ck.gvcp")
	for round := uint64(1); round <= 2; round++ {
		if err := Write(path, 2, sampleFile(round)); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	for n := 0; n < 2; n++ {
		p := GenPath(path, n)
		b, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		b[headerLen] ^= 0xff
		if err := os.WriteFile(p, b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	_, _, _, err := Recover(path)
	if err == nil {
		t.Fatalf("Recover accepted a fully corrupt lineage")
	}
	if !strings.Contains(err.Error(), "no verifiable generation") {
		t.Fatalf("error %q does not diagnose the lineage", err)
	}
}

func TestRecoverMissing(t *testing.T) {
	path := filepath.Join(t.TempDir(), "absent.gvcp")
	_, _, _, err := Recover(path)
	if !os.IsNotExist(err) {
		t.Fatalf("want IsNotExist for a missing lineage, got %v", err)
	}
}

// The faultinject corrupt-checkpoint-bytes mode must defeat verification and
// the lineage must then fall back — the unit-level form of the chaos
// checkpoint-churn leg.
func TestRecoverAfterFaultinjectCorruption(t *testing.T) {
	transport.RegisterGob()
	path := filepath.Join(t.TempDir(), "ck.gvcp")
	for round := uint64(1); round <= 2; round++ {
		if err := Write(path, 2, sampleFile(round)); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	if err := faultinject.CorruptFile(path, 42, headerLen, 8); err != nil {
		t.Fatalf("CorruptFile: %v", err)
	}
	f, gen, skipped, err := Recover(path)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if gen != GenPath(path, 1) || f.Ckpt.Round != 1 {
		t.Fatalf("recovered gen=%s round=%d, want previous generation round 1", gen, f.Ckpt.Round)
	}
	if len(skipped) != 1 {
		t.Fatalf("skipped %d generations, want 1", len(skipped))
	}
}
