package server

import (
	"context"
	"sync"

	"govhdl"
	"govhdl/internal/kernel"
	"govhdl/internal/trace"
	"govhdl/internal/vhdl/lint"
)

// State is a session's lifecycle position.
type State string

const (
	// StateQueued: admitted, waiting for a worker-pool slot.
	StateQueued State = "queued"
	// StateRunning: holding a slot, simulating.
	StateRunning State = "running"
	// StateDone: completed through the horizon.
	StateDone State = "done"
	// StateFailed: ended with an error (see ErrorKind for whose fault).
	StateFailed State = "failed"
	// StateCanceled: ended by an explicit cancel request.
	StateCanceled State = "canceled"
)

// session is one tenant simulation: the govhdl.Session plus the server-side
// stream buffers its HTTP consumers read from. Trace increments accumulate
// here (finalized, deterministic order) so any number of readers can stream
// from any offset, attach late, or re-read after completion.
type session struct {
	id     string
	cached bool
	// lint holds the design-lint report for VHDL submissions. It is set
	// before the session is published to the sessions map and never written
	// again, so readers need no lock.
	lint *lint.Report

	sim *govhdl.Session

	mu      sync.Mutex
	cond    *sync.Cond
	state   State
	design  *kernel.Design // set once running (VCD headers need it)
	lines   []string       // finalized rendered trace, all batches
	entries []trace.Entry  // same increments, structured (VCD streaming)
	res     *govhdl.Result
	err     error
	kind    govhdl.ErrorKind
}

func newSession(id string, cached bool, sim *govhdl.Session) *session {
	s := &session{id: id, cached: cached, sim: sim, state: StateQueued}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// append receives one finalized trace increment (govhdl.TraceFunc).
func (s *session) append(entries []trace.Entry, lines []string) {
	s.mu.Lock()
	s.entries = append(s.entries, entries...)
	s.lines = append(s.lines, lines...)
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *session) setRunning() {
	s.mu.Lock()
	if s.state == StateQueued {
		s.state = StateRunning
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// setDesign publishes the attempt's design (first attempt wins; retries
// rebuild an identical design, so the pointer only matters for identity).
func (s *session) setDesign(d *kernel.Design) {
	s.mu.Lock()
	if s.design == nil {
		s.design = d
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *session) finish(res *govhdl.Result, err error) {
	s.mu.Lock()
	s.res, s.err = res, err
	switch {
	case err == nil:
		s.state = StateDone
	case govhdl.Classify(err) == govhdl.KindCanceled:
		s.state, s.kind = StateCanceled, govhdl.KindCanceled
	default:
		s.state, s.kind = StateFailed, govhdl.Classify(err)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *session) finished() bool {
	return s.state == StateDone || s.state == StateFailed || s.state == StateCanceled
}

// snapshot returns the fields a status response needs, consistently.
func (s *session) snapshot() (state State, cached bool, nlines int, res *govhdl.Result, err error, kind govhdl.ErrorKind) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state, s.cached, len(s.lines), s.res, s.err, s.kind
}

// waitLines blocks until the session has rendered lines past from, or has
// finished, or ctx is done; it returns the new lines and whether the stream
// is complete. The ctx watcher goroutine wakes the cond so a disconnected
// client does not leak a waiter.
func (s *session) waitLines(ctx context.Context, from int) ([]string, bool) {
	return waitBuf(ctx, s, func() int { return len(s.lines) }, func(lo, hi int) []string {
		return append([]string(nil), s.lines[lo:hi]...)
	}, from)
}

// waitEntries is waitLines for the structured entry buffer.
func (s *session) waitEntries(ctx context.Context, from int) ([]trace.Entry, bool) {
	return waitBuf(ctx, s, func() int { return len(s.entries) }, func(lo, hi int) []trace.Entry {
		return append([]trace.Entry(nil), s.entries[lo:hi]...)
	}, from)
}

// waitDesign blocks until the session's model exists (state >= running).
func (s *session) waitDesign(ctx context.Context) *kernel.Design {
	stop := wakeOnDone(ctx, s.cond)
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.design == nil && !s.finished() && ctx.Err() == nil {
		s.cond.Wait()
	}
	return s.design
}

func waitBuf[T any](ctx context.Context, s *session, size func() int, copyRange func(lo, hi int) []T, from int) ([]T, bool) {
	stop := wakeOnDone(ctx, s.cond)
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	for size() <= from && !s.finished() && ctx.Err() == nil {
		s.cond.Wait()
	}
	n := size()
	if from > n {
		from = n
	}
	return copyRange(from, n), s.finished()
}

// wakeOnDone broadcasts on the cond when ctx is canceled, so cond waiters
// that also check ctx.Err() unblock. The returned stop func releases the
// watcher.
func wakeOnDone(ctx context.Context, cond *sync.Cond) func() {
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			cond.L.Lock()
			cond.Broadcast()
			cond.L.Unlock()
		case <-done:
		}
	}()
	return func() { close(done) }
}
