// Package server is govhdld's multi-tenant simulation service: it accepts
// VHDL sources (or built-in benchmark circuits) plus run options over HTTP,
// elaborates each distinct design once into a byte-bounded LRU cache, and
// multiplexes concurrent streaming simulation sessions over a bounded
// worker pool.
//
// Tenant isolation follows the session semantics of the govhdl facade: a
// recoverable transport fault retries that session transparently (the
// streamed trace stays exact); a model diagnostic, stall verdict, memory
// blowout, deadline or cancel fails only the offending session — every
// other tenant keeps running. Cached design prototypes are never mutated by
// runs: sessions simulate fresh clones (kernel.Design.CloneFresh).
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"time"

	"govhdl"
	"govhdl/internal/circuits"
	"govhdl/internal/kernel"
	"govhdl/internal/runopts"
	"govhdl/internal/trace"
	"govhdl/internal/vhdl"
	"govhdl/internal/vhdl/lint"
)

// Config parameterizes the service.
type Config struct {
	// CacheBytes bounds the design cache (default 64 MiB).
	CacheBytes int64
	// MaxSessions bounds concurrently running simulations (default 4).
	MaxSessions int
	// QueueDepth bounds sessions admitted but waiting for a slot; a submit
	// past the bound is rejected with 429 (default 16).
	QueueDepth int
	// DefaultDeadline applies to sessions that request none (default 2m);
	// MaxDeadline caps what a session may request (default 10m). Deadlines
	// start when the session gets a slot, not while it queues.
	DefaultDeadline time.Duration
	MaxDeadline     time.Duration
	// MaxWorkers caps the per-session worker count (default 8).
	MaxWorkers int
	// MaxFailovers caps transparent retries per session (0 = engine default).
	MaxFailovers int
	// MaxBodyBytes bounds a submit request body (default 8 MiB).
	MaxBodyBytes int64
}

func (c Config) withDefaults() Config {
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 2 * time.Minute
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 10 * time.Minute
	}
	if c.MaxWorkers <= 0 {
		c.MaxWorkers = 8
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	return c
}

// Server is the govhdld service core, independent of the listener.
type Server struct {
	cfg   Config
	cache *Cache
	sem   chan struct{} // worker-pool slots

	mu       sync.Mutex
	draining bool // set by Shutdown: stop advertising readiness
	sessions map[string]*session
	order    []string // creation order, for stable listings
	nextID   int
	queued   int
	active   int
	done     int
	failed   int
	canceled int

	lintRuns     int // lint passes executed (submits with sources + /v1/lint calls)
	lintFindings int // total diagnostics those passes produced

	// Elasticity counters, aggregated from finished sessions' engine metrics.
	migrations    uint64 // LPs moved between workers at migration cuts
	viewChanges   uint64 // cluster/ownership view epochs those cuts published
	forwardedMsgs uint64 // messages re-routed to an LP's new owner in handoff

	wg sync.WaitGroup // running session goroutines
}

// New builds a server; zero-value fields of cfg get defaults.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:      cfg,
		cache:    NewCache(cfg.CacheBytes),
		sem:      make(chan struct{}, cfg.MaxSessions),
		sessions: make(map[string]*session),
	}
}

// Cache exposes the design cache (metrics, tests).
func (sv *Server) Cache() *Cache { return sv.cache }

// Shutdown cancels every live session and waits for their goroutines.
// Sessions are canceled in creation order so repeated shutdowns cancel (and
// log, where cancellation is observed) deterministically.
func (sv *Server) Shutdown() {
	sv.mu.Lock()
	sv.draining = true // /readyz flips to 503 for the whole drain window
	for _, id := range sv.order {
		sv.sessions[id].sim.Cancel()
	}
	sv.mu.Unlock()
	sv.wg.Wait()
}

// Ready reports whether the server should receive new traffic: it is not
// draining and the admission queue has room. The reason explains a false
// verdict ("draining", "queue full").
func (sv *Server) Ready() (bool, string) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	switch {
	case sv.draining:
		return false, "draining"
	case sv.queued >= sv.cfg.QueueDepth:
		return false, "queue full"
	}
	return true, "ready"
}

// Handler returns the HTTP API.
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", sv.handleSubmit)
	mux.HandleFunc("GET /v1/sessions/{id}", sv.handleStatus)
	mux.HandleFunc("GET /v1/sessions/{id}/trace", sv.handleTrace)
	mux.HandleFunc("GET /v1/sessions/{id}/vcd", sv.handleVCD)
	mux.HandleFunc("POST /v1/sessions/{id}/cancel", sv.handleCancel)
	mux.HandleFunc("POST /v1/lint", sv.handleLint)
	mux.HandleFunc("GET /metrics", sv.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// /healthz is pure liveness (the process serves HTTP); /readyz is the
	// load-balancer signal: 503 once Shutdown has begun draining, or while
	// the admission queue is full, so orchestrators stop routing new
	// sessions here while in-flight ones finish.
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, _ *http.Request) {
		ok, reason := sv.Ready()
		if !ok {
			http.Error(w, reason, http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, reason)
	})
	return mux
}

// SourceRequest is one VHDL file in a submit request.
type SourceRequest struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// SessionRequest is the submit payload. Exactly one of Circuit or
// Top+Sources selects the design. Times use pvsim spellings ("100ns",
// "2us"); durations use Go spellings ("30s", "2m").
type SessionRequest struct {
	Top     string          `json:"top,omitempty"`
	Sources []SourceRequest `json:"sources,omitempty"`
	Circuit string          `json:"circuit,omitempty"`

	Protocol       string `json:"protocol,omitempty"` // default "dynamic"
	Workers        int    `json:"workers,omitempty"`
	Until          string `json:"until,omitempty"`
	Lookahead      bool   `json:"lookahead,omitempty"`
	UserConsistent bool   `json:"user_consistent,omitempty"`
	Throttle       string `json:"throttle,omitempty"`
	SaveEvery      int    `json:"save_every,omitempty"`
	MemBudget      int64  `json:"mem_budget,omitempty"`
	StallTimeout   string `json:"stall_timeout,omitempty"`
	Deadline       string `json:"deadline,omitempty"`
	NoTrace        bool   `json:"no_trace,omitempty"`

	// Rebalance enables live LP migration between the session's workers at
	// GVT rounds under sustained load imbalance (govhdl.Options.Rebalance).
	Rebalance bool `json:"rebalance,omitempty"`
	// MigratePolicy and MinNodes exist for validation parity with the pvsim
	// CLI: cluster-level migration policies need a distributed run, which a
	// server session never is, so any non-off value is rejected with the
	// same message `pvsim -migrate-policy` would print (a 400 here).
	MigratePolicy string `json:"migrate_policy,omitempty"`
	MinNodes      int    `json:"min_nodes,omitempty"`

	// Vet gates the submission on design lint: error findings reject it with
	// 422 and the lint report as the body. VetStrict also rejects warnings.
	// Findings are attached to the session status either way.
	Vet       bool `json:"vet,omitempty"`
	VetStrict bool `json:"vet_strict,omitempty"`
}

// SessionReply answers submit and status requests.
type SessionReply struct {
	ID         string `json:"id"`
	State      State  `json:"state"`
	Cached     bool   `json:"cached"`
	TraceLines int    `json:"trace_lines"`
	Error      string `json:"error,omitempty"`
	ErrorKind  string `json:"error_kind,omitempty"`
	GVT        string `json:"gvt,omitempty"`
	Wall       string `json:"wall,omitempty"`
	Metrics    string `json:"metrics,omitempty"`
	// Lint carries the design-lint report for VHDL submissions.
	Lint *lint.Report `json:"lint,omitempty"`
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (sv *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req SessionRequest
	r.Body = http.MaxBytesReader(w, r.Body, sv.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if req.Protocol == "" {
		req.Protocol = "dynamic"
	}
	proto, err := runopts.ParseProtocol(req.Protocol)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Workers <= 0 {
		req.Workers = 1
	}
	if req.Workers > sv.cfg.MaxWorkers {
		httpError(w, http.StatusBadRequest, "workers must be <= %d", sv.cfg.MaxWorkers)
		return
	}
	stallTimeout, err := parseDuration(req.StallTimeout)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad stall_timeout: %v", err)
		return
	}
	deadline, err := parseDuration(req.Deadline)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad deadline: %v", err)
		return
	}
	if deadline <= 0 || deadline > sv.cfg.MaxDeadline {
		if deadline > sv.cfg.MaxDeadline {
			httpError(w, http.StatusBadRequest, "deadline must be <= %v", sv.cfg.MaxDeadline)
			return
		}
		deadline = sv.cfg.DefaultDeadline
	}
	// The shared validator keeps a request and the equivalent pvsim
	// invocation rejecting the same combinations with the same messages.
	shared := runopts.Opts{
		Circuit:       req.Circuit,
		Workers:       req.Workers,
		User:          req.UserConsistent,
		StallTimeout:  stallTimeout,
		MemBudget:     req.MemBudget,
		MigratePolicy: req.MigratePolicy,
		MinNodes:      req.MinNodes,
		Vet:           req.Vet,
		VetStrict:     req.VetStrict,
	}
	if err := shared.Validate(proto); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Design lint runs on every VHDL submission — the findings ride on the
	// session status — and, when the request opts in via vet/vet_strict,
	// fatal findings reject the submission before a queue slot is spent.
	lintRep := sv.lintSources(req.Sources)
	if lintRep != nil && (req.Vet || req.VetStrict) &&
		(lintRep.Errors > 0 || (req.VetStrict && lintRep.Warnings > 0)) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusUnprocessableEntity)
		lint.WriteJSON(w, lintRep.Diagnostics)
		return
	}

	opts := govhdl.Options{
		Protocol:        proto,
		Workers:         req.Workers,
		Lookahead:       req.Lookahead,
		UserConsistent:  req.UserConsistent,
		CheckpointEvery: req.SaveEvery,
		MemBudget:       req.MemBudget,
		StallTimeout:    stallTimeout,
		NoTrace:         req.NoTrace,
		Rebalance:       req.Rebalance,
	}
	if req.Until != "" {
		t, err := runopts.ParseTime(req.Until)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad until: %v", err)
			return
		}
		opts.Until = t
	}
	if req.Throttle != "" {
		t, err := runopts.ParseTime(req.Throttle)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad throttle: %v", err)
			return
		}
		opts.ThrottleWindow = t
	}

	factory, cached, defaultUntil, err := sv.factoryFor(&req)
	if err != nil {
		// Compile, elaboration and unknown-name errors are the client's
		// fault and are surfaced at submit time, before a slot is spent.
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if opts.Until == 0 && defaultUntil > 0 {
		opts.Until = defaultUntil
	}

	// Queue admission: bound admitted-but-unfinished work.
	sv.mu.Lock()
	if sv.queued >= sv.cfg.QueueDepth {
		sv.mu.Unlock()
		httpError(w, http.StatusTooManyRequests, "session queue is full (%d waiting)", sv.cfg.QueueDepth)
		return
	}
	sv.queued++
	sv.nextID++
	id := "s" + strconv.Itoa(sv.nextID)
	sv.mu.Unlock()

	ss := newSession(id, cached, nil)
	ss.lint = lintRep
	// The wrapper publishes the attempt's design to the session record as
	// soon as the factory produces it, so VCD streaming can write its
	// header before the run completes.
	sim := govhdl.NewSession(func() (*govhdl.Model, error) {
		m, err := factory()
		if err == nil {
			ss.setDesign(m.Design)
		}
		return m, err
	}, govhdl.SessionOptions{
		Options:      opts,
		Deadline:     deadline,
		MaxFailovers: sv.cfg.MaxFailovers,
	})
	sim.OnTrace(ss.append)
	ss.sim = sim

	sv.mu.Lock()
	sv.sessions[id] = ss
	sv.order = append(sv.order, id)
	sv.mu.Unlock()

	sv.wg.Add(1)
	go sv.runSession(ss)

	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	json.NewEncoder(w).Encode(SessionReply{ID: id, State: StateQueued, Cached: cached})
}

// lintSources runs design lint over a submission's VHDL sources and returns
// the report, accounting the pass in the lint metrics. Empty submissions
// (circuit requests) and sources that fail to parse return nil: the compile
// path reports parse errors with the proper message and status.
func (sv *Server) lintSources(srcs []SourceRequest) *lint.Report {
	if len(srcs) == 0 {
		return nil
	}
	dfs := make([]*vhdl.DesignFile, 0, len(srcs))
	for _, s := range srcs {
		df, err := vhdl.Parse(s.Name, s.Text)
		if err != nil {
			return nil
		}
		dfs = append(dfs, df)
	}
	diags := lint.Analyze(dfs...)
	errs, warns := lint.Counts(diags)
	sv.mu.Lock()
	sv.lintRuns++
	sv.lintFindings += len(diags)
	sv.mu.Unlock()
	if diags == nil {
		diags = []lint.Diagnostic{}
	}
	return &lint.Report{Diagnostics: diags, Errors: errs, Warnings: warns}
}

// LintRequest is the /v1/lint payload: sources only, no run options.
type LintRequest struct {
	Sources []SourceRequest `json:"sources"`
}

// handleLint is the dedicated design-lint endpoint: parse, analyze, report —
// no session, no queue slot, no simulation. The body is written by
// lint.WriteJSON, the same serialization `pvsim -vet-json` uses, so the two
// surfaces emit byte-identical reports for the same sources.
func (sv *Server) handleLint(w http.ResponseWriter, r *http.Request) {
	var req LintRequest
	r.Body = http.MaxBytesReader(w, r.Body, sv.cfg.MaxBodyBytes)
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Sources) == 0 {
		httpError(w, http.StatusBadRequest, "nothing to lint: give sources")
		return
	}
	dfs := make([]*vhdl.DesignFile, 0, len(req.Sources))
	for _, s := range req.Sources {
		df, err := vhdl.Parse(s.Name, s.Text)
		if err != nil {
			httpError(w, http.StatusBadRequest, "%v", err)
			return
		}
		dfs = append(dfs, df)
	}
	diags := lint.Analyze(dfs...)
	sv.mu.Lock()
	sv.lintRuns++
	sv.lintFindings += len(diags)
	sv.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	lint.WriteJSON(w, diags)
}

// factoryFor resolves a request's design into a per-attempt model factory.
// VHDL submissions go through the cache: elaboration happens at most once
// per content hash, and each attempt clones fresh state off the prototype.
// Circuit submissions rebuild per attempt (their combinational behaviors
// hold closures that cannot be cloned; rebuilding is cheap and equivalent).
func (sv *Server) factoryFor(req *SessionRequest) (govhdl.ModelFactory, bool, govhdl.Time, error) {
	switch {
	case req.Circuit != "" && (req.Top != "" || len(req.Sources) > 0):
		return nil, false, 0, fmt.Errorf("give either circuit or top+sources, not both")
	case req.Circuit != "":
		build, horizon, err := circuitBuilder(req.Circuit)
		if err != nil {
			return nil, false, 0, err
		}
		return func() (*govhdl.Model, error) {
			return govhdl.FromDesign(build().Design), nil
		}, false, horizon, nil
	case len(req.Sources) > 0:
		if req.Top == "" {
			return nil, false, 0, fmt.Errorf("top is required with sources")
		}
		names := make([]string, len(req.Sources))
		texts := make([]string, len(req.Sources))
		srcBytes := 0
		srcs := make([]govhdl.Source, len(req.Sources))
		for i, s := range req.Sources {
			names[i], texts[i] = s.Name, s.Text
			srcBytes += len(s.Text)
			srcs[i] = govhdl.Source{Name: s.Name, Text: s.Text}
		}
		key := DesignKey(req.Top, names, texts)
		proto, hit, err := sv.cache.Get(key, func() (*kernel.Design, int64, error) {
			m, err := govhdl.Compile(req.Top, srcs...)
			if err != nil {
				return nil, 0, err
			}
			d := m.Design
			return d, designBytes(d, srcBytes), nil
		})
		if err != nil {
			return nil, hit, 0, err
		}
		return func() (*govhdl.Model, error) {
			clone, err := proto.CloneFresh()
			if err != nil {
				return nil, err
			}
			return govhdl.FromDesign(clone), nil
		}, hit, 0, nil
	}
	return nil, false, 0, fmt.Errorf("nothing to simulate: give top+sources, or circuit")
}

func circuitBuilder(name string) (func() *circuits.Circuit, govhdl.Time, error) {
	switch name {
	case "fsm":
		b := func() *circuits.Circuit { return circuits.BuildFSM(circuits.FSMOpts{}) }
		return b, b().DefaultHorizon, nil
	case "iir":
		b := func() *circuits.Circuit { return circuits.BuildIIR(circuits.IIROpts{}) }
		return b, b().DefaultHorizon, nil
	case "dct":
		b := func() *circuits.Circuit { return circuits.BuildDCT(circuits.DCTOpts{}) }
		return b, b().DefaultHorizon, nil
	}
	return nil, 0, fmt.Errorf("unknown circuit %q (fsm, iir or dct)", name)
}

// runSession is the session goroutine: wait for a pool slot, run, account.
func (sv *Server) runSession(ss *session) {
	defer sv.wg.Done()
	sv.sem <- struct{}{}
	defer func() { <-sv.sem }()

	sv.mu.Lock()
	sv.queued--
	sv.active++
	sv.mu.Unlock()
	ss.setRunning()

	res, err := ss.sim.Run()
	ss.finish(res, err)

	state, _, _, _, _, _ := ss.snapshot()
	sv.mu.Lock()
	sv.active--
	if res != nil && res.Run != nil {
		sv.migrations += res.Run.Metrics.Migrations
		sv.viewChanges += res.Run.Metrics.ViewChanges
		sv.forwardedMsgs += res.Run.Metrics.ForwardedMsgs
	}
	switch state {
	case StateDone:
		sv.done++
	case StateCanceled:
		sv.canceled++
	default:
		sv.failed++
	}
	sv.mu.Unlock()
}

func (sv *Server) lookup(w http.ResponseWriter, r *http.Request) *session {
	sv.mu.Lock()
	ss := sv.sessions[r.PathValue("id")]
	sv.mu.Unlock()
	if ss == nil {
		httpError(w, http.StatusNotFound, "no session %q", r.PathValue("id"))
	}
	return ss
}

func (sv *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	ss := sv.lookup(w, r)
	if ss == nil {
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(replyFor(ss))
}

func replyFor(ss *session) SessionReply {
	state, cached, nlines, res, err, kind := ss.snapshot()
	rep := SessionReply{ID: ss.id, State: state, Cached: cached, TraceLines: nlines}
	if err != nil {
		rep.Error = err.Error()
		rep.ErrorKind = kind.String()
	}
	if res != nil && res.Run != nil {
		rep.GVT = res.Run.GVT.String()
		rep.Wall = res.Run.Wall.String()
		rep.Metrics = res.Run.Metrics.String()
	}
	rep.Lint = ss.lint
	return rep
}

func (sv *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	ss := sv.lookup(w, r)
	if ss == nil {
		return
	}
	ss.sim.Cancel()
	w.WriteHeader(http.StatusAccepted)
	fmt.Fprintln(w, "canceling")
}

// handleTrace streams the finalized trace as chunked plain text: lines are
// written as the simulation commits them, from the requested offset
// (?from=N) to the end of the run. Reconnecting with the delivered line
// count resumes exactly.
func (sv *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	ss := sv.lookup(w, r)
	if ss == nil {
		return
	}
	from, _ := strconv.Atoi(r.URL.Query().Get("from"))
	if from < 0 {
		from = 0
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Header().Set("X-Content-Type-Options", "nosniff")
	flusher, _ := w.(http.Flusher)
	for {
		lines, done := ss.waitLines(r.Context(), from)
		for _, ln := range lines {
			fmt.Fprintln(w, ln)
		}
		if len(lines) > 0 && flusher != nil {
			flusher.Flush()
		}
		from += len(lines)
		if r.Context().Err() != nil || (done && len(lines) == 0) {
			return
		}
	}
}

// handleVCD streams the run as a Value Change Dump: full header upfront,
// change records as batches finalize.
func (sv *Server) handleVCD(w http.ResponseWriter, r *http.Request) {
	ss := sv.lookup(w, r)
	if ss == nil {
		return
	}
	d := ss.waitDesign(r.Context())
	if d == nil {
		httpError(w, http.StatusConflict, "session ended before elaboration; no design to dump")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	flusher, _ := w.(http.Flusher)
	str, err := trace.NewVCDStreamer(w, d, d.Name)
	if err != nil {
		return
	}
	from := 0
	for {
		entries, done := ss.waitEntries(r.Context(), from)
		if err := str.Feed(entries); err != nil {
			return
		}
		if len(entries) > 0 && flusher != nil {
			flusher.Flush()
		}
		from += len(entries)
		if r.Context().Err() != nil || (done && len(entries) == 0) {
			str.Close()
			return
		}
	}
}

// handleMetrics reports cache and session counters in a plain-text
// key-value format, one metric per line, then one line per session with its
// lifecycle state and (when finished) the engine's Result stats.
func (sv *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	cs := sv.cache.Stats()
	sv.mu.Lock()
	queued, active := sv.queued, sv.active
	done, failed, canceled := sv.done, sv.failed, sv.canceled
	lintRuns, lintFindings := sv.lintRuns, sv.lintFindings
	migrations, viewChanges, forwarded := sv.migrations, sv.viewChanges, sv.forwardedMsgs
	total := len(sv.order)
	ids := append([]string(nil), sv.order...)
	sessions := make([]*session, len(ids))
	for i, id := range ids {
		sessions[i] = sv.sessions[id]
	}
	sv.mu.Unlock()

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "cache_hits %d\n", cs.Hits)
	fmt.Fprintf(w, "cache_misses %d\n", cs.Misses)
	fmt.Fprintf(w, "cache_evictions %d\n", cs.Evictions)
	fmt.Fprintf(w, "cache_elaborations %d\n", cs.Elaborations)
	fmt.Fprintf(w, "cache_bytes %d\n", cs.Bytes)
	fmt.Fprintf(w, "cache_entries %d\n", cs.Entries)
	fmt.Fprintf(w, "sessions_queued %d\n", queued)
	fmt.Fprintf(w, "sessions_active %d\n", active)
	fmt.Fprintf(w, "sessions_done %d\n", done)
	fmt.Fprintf(w, "sessions_failed %d\n", failed)
	fmt.Fprintf(w, "sessions_canceled %d\n", canceled)
	fmt.Fprintf(w, "sessions_total %d\n", total)
	fmt.Fprintf(w, "lint_runs %d\n", lintRuns)
	fmt.Fprintf(w, "lint_findings %d\n", lintFindings)
	fmt.Fprintf(w, "migrations_total %d\n", migrations)
	fmt.Fprintf(w, "view_changes_total %d\n", viewChanges)
	fmt.Fprintf(w, "forwarded_msgs_total %d\n", forwarded)

	for _, ss := range sessions {
		rep := replyFor(ss)
		line := fmt.Sprintf("session %s state=%s cached=%t trace_lines=%d",
			rep.ID, rep.State, rep.Cached, rep.TraceLines)
		if rep.ErrorKind != "" {
			line += " kind=" + rep.ErrorKind
		}
		if rep.GVT != "" {
			line += fmt.Sprintf(" gvt=%s wall=%s %s", rep.GVT, rep.Wall, rep.Metrics)
		}
		fmt.Fprintln(w, line)
	}
}

func parseDuration(s string) (time.Duration, error) {
	if s == "" {
		return 0, nil
	}
	return time.ParseDuration(s)
}
