package server

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"

	"sync"

	"govhdl/internal/kernel"
)

// Cache is the byte-bounded LRU of elaborated design prototypes. Sessions
// for the same sources skip parsing and elaboration entirely: they clone
// fresh run state off the cached prototype (kernel.Design.CloneFresh), so a
// prototype is never consumed by a run and stays valid for every future hit.
//
// Concurrent first requests for the same key elaborate once: the loser
// waits for the winner's result instead of duplicating the work
// (single-flight per entry).
type Cache struct {
	mu      sync.Mutex
	max     int64
	size    int64
	lru     *list.List // front = most recently used
	entries map[string]*entry

	hits, misses, evictions, elaborations int64
}

type entry struct {
	key   string
	elem  *list.Element
	ready chan struct{} // closed when d/err are set
	done  bool          // guarded by Cache.mu; true once ready is closed
	d     *kernel.Design
	bytes int64
	err   error
}

// NewCache returns a cache bounded to maxBytes of estimated design weight.
func NewCache(maxBytes int64) *Cache {
	return &Cache{max: maxBytes, lru: list.New(), entries: make(map[string]*entry)}
}

// Get returns the design for key, building (and caching) it on a miss. The
// second result reports whether this was a hit — i.e. whether elaboration
// was skipped for this caller. Failed builds are not cached: the next Get
// for the same key builds again.
func (c *Cache) Get(key string, build func() (*kernel.Design, int64, error)) (*kernel.Design, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.lru.MoveToFront(e.elem)
		c.mu.Unlock()
		<-e.ready
		return e.d, true, e.err
	}
	c.misses++
	c.elaborations++
	e := &entry{key: key, ready: make(chan struct{})}
	e.elem = c.lru.PushFront(e)
	c.entries[key] = e
	c.mu.Unlock()

	d, n, err := build()

	c.mu.Lock()
	e.d, e.bytes, e.err, e.done = d, n, err, true
	if err != nil {
		c.removeLocked(e) // never cache a failed elaboration
	} else {
		c.size += n
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)
	return d, false, err
}

// evictLocked drops least-recently-used ready entries until the cache fits
// its byte bound. An in-flight build is never evicted (its weight is not
// yet accounted); a single design larger than the whole bound is evicted as
// soon as it stops being the most recent — the bound wins over residency.
func (c *Cache) evictLocked() {
	for c.size > c.max {
		var victim *entry
		for el := c.lru.Back(); el != nil; el = el.Prev() {
			if e := el.Value.(*entry); e.done {
				victim = e
				break
			}
		}
		if victim == nil {
			return
		}
		c.removeLocked(victim)
		c.evictions++
	}
}

func (c *Cache) removeLocked(e *entry) {
	if _, ok := c.entries[e.key]; !ok {
		return
	}
	delete(c.entries, e.key)
	c.lru.Remove(e.elem)
	if e.done && e.err == nil {
		c.size -= e.bytes
	}
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	Hits, Misses, Evictions, Elaborations int64
	Bytes                                 int64
	Entries                               int
}

func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Elaborations: c.elaborations, Bytes: c.size, Entries: len(c.entries),
	}
}

// DesignKey is the cache key: a content hash over the top entity and the
// sources in submission order (order can matter to elaboration). Length
// prefixes keep ("ab","c") distinct from ("a","bc").
func DesignKey(top string, names, texts []string) string {
	h := sha256.New()
	writeField(h, top)
	for i := range names {
		writeField(h, names[i])
		writeField(h, texts[i])
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writeField(w io.Writer, s string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	w.Write(n[:])
	io.WriteString(w, s)
}

// designBytes estimates a cached prototype's weight: the source text it came
// from plus a nominal per-LP cost for the elaborated structures.
func designBytes(d *kernel.Design, srcBytes int) int64 {
	return int64(srcBytes) + int64(d.NumLPs())*256
}
