package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"govhdl"
	"govhdl/internal/kernel"
)

// counterSrc is a self-clocked 4-bit counter testbench: enough activity to
// stream, deterministic, and clone-sensitive interpreter state (vector
// variables, loops) so cache-then-clone correctness is actually exercised.
const counterSrc = `
entity ctb is end entity;
architecture sim of ctb is
  signal clk : std_logic := '0';
  signal q : std_logic_vector(3 downto 0) := "0000";
begin
  clock : process
  begin
    clk <= '0';
    wait for 5 ns;
    clk <= '1';
    wait for 5 ns;
  end process;

  count : process (clk)
    variable v : std_logic_vector(3 downto 0) := "0000";
    variable carry : std_logic;
  begin
    if rising_edge(clk) then
      carry := '1';
      for i in 0 to 3 loop
        if carry = '1' and v(i) = '0' then
          v(i) := '1';
          carry := '0';
        elsif carry = '1' then
          v(i) := '0';
        end if;
      end loop;
      q <= v after 1 ns;
    end if;
  end process;
end architecture;
`

const divZeroSrc = `
entity dz is end entity;
architecture a of dz is
  signal x : integer := 0;
  signal clk : bit := '0';
begin
  c : process begin
    clk <= '1' after 5 ns, '0' after 10 ns;
    wait for 10 ns;
  end process;
  p : process (clk) begin
    if clk = '1' then
      x <= 1 / 0;
    end if;
  end process;
end architecture;
`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	sv := New(cfg)
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(func() {
		sv.Shutdown()
		ts.Close()
	})
	return sv, ts
}

func submit(t *testing.T, ts *httptest.Server, req SessionRequest) SessionReply {
	t.Helper()
	rep, code := trySubmit(t, ts, req)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%+v)", code, rep)
	}
	return rep
}

func trySubmit(t *testing.T, ts *httptest.Server, req SessionRequest) (SessionReply, int) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep SessionReply
	json.NewDecoder(resp.Body).Decode(&rep)
	return rep, resp.StatusCode
}

func status(t *testing.T, ts *httptest.Server, id string) SessionReply {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep SessionReply
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	return rep
}

func waitFinished(t *testing.T, ts *httptest.Server, id string) SessionReply {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		rep := status(t, ts, id)
		switch rep.State {
		case StateDone, StateFailed, StateCanceled:
			return rep
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("session %s did not finish", id)
	return SessionReply{}
}

// streamTrace reads the chunked trace to EOF (i.e. until the run ends).
func streamTrace(t *testing.T, ts *httptest.Server, id string) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/sessions/" + id + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return strings.TrimRight(string(b), "\n")
}

func metricValue(t *testing.T, ts *httptest.Server, name string) int {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	for _, line := range strings.Split(string(b), "\n") {
		var v int
		if _, err := fmt.Sscanf(line, name+" %d", &v); err == nil && strings.HasPrefix(line, name+" ") {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, b)
	return 0
}

func counterRequest() SessionRequest {
	return SessionRequest{
		Top:      "ctb",
		Sources:  []SourceRequest{{Name: "ctb.vhd", Text: counterSrc}},
		Protocol: "mixed",
		Workers:  2,
		Until:    "500ns",
		Deadline: "60s",
	}
}

func soloCounterTrace(t *testing.T) string {
	t.Helper()
	m, err := govhdl.Compile("ctb", govhdl.Source{Name: "ctb.vhd", Text: counterSrc})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Simulate(govhdl.Options{Protocol: govhdl.Sequential, Until: 500 * govhdl.NS})
	if err != nil {
		t.Fatal(err)
	}
	return strings.Join(res.TraceLines(), "\n")
}

// TestServerConcurrentSessionsByteIdentical is the tentpole acceptance
// test: 32 concurrent sessions over the same cached design, each streamed
// over HTTP, every trace byte-identical to the solo sequential run — and
// elaboration ran exactly once for all of them.
func TestServerConcurrentSessionsByteIdentical(t *testing.T) {
	want := soloCounterTrace(t)
	sv, ts := newTestServer(t, Config{MaxSessions: 8, QueueDepth: 64})

	const n = 32
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rep, code := trySubmit(t, ts, counterRequest())
			if code != http.StatusAccepted {
				errs <- fmt.Errorf("submit: status %d", code)
				return
			}
			got := streamTrace(t, ts, rep.ID)
			if got != want {
				errs <- fmt.Errorf("session %s trace diverged (%d vs %d bytes)", rep.ID, len(got), len(want))
				return
			}
			if fin := waitFinished(t, ts, rep.ID); fin.State != StateDone {
				errs <- fmt.Errorf("session %s: state %s (%s)", rep.ID, fin.State, fin.Error)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	cs := sv.Cache().Stats()
	if cs.Elaborations != 1 {
		t.Errorf("elaborations = %d, want 1 (cache hits must skip elaboration)", cs.Elaborations)
	}
	if cs.Hits != n-1 || cs.Misses != 1 {
		t.Errorf("cache hits/misses = %d/%d, want %d/1", cs.Hits, cs.Misses, n-1)
	}
}

// TestServerCacheHitSkipsElaboration: the second identical submit reports
// cached=true and the counters prove elaboration did not rerun.
func TestServerCacheHitSkipsElaboration(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	r1 := submit(t, ts, counterRequest())
	if r1.Cached {
		t.Error("first submit reported a cache hit")
	}
	waitFinished(t, ts, r1.ID)
	r2 := submit(t, ts, counterRequest())
	if !r2.Cached {
		t.Error("second submit of identical sources was not a cache hit")
	}
	waitFinished(t, ts, r2.ID)
	if got := metricValue(t, ts, "cache_elaborations"); got != 1 {
		t.Errorf("cache_elaborations = %d, want 1", got)
	}
	if got := metricValue(t, ts, "cache_hits"); got != 1 {
		t.Errorf("cache_hits = %d, want 1", got)
	}
}

// TestServerCacheEvictionUnderPressure: with a cache bound smaller than one
// design, every residency is evicted, yet sessions keep succeeding — the
// bound degrades performance, never correctness.
func TestServerCacheEvictionUnderPressure(t *testing.T) {
	sv, ts := newTestServer(t, Config{CacheBytes: 1})
	r1 := submit(t, ts, counterRequest())
	if rep := waitFinished(t, ts, r1.ID); rep.State != StateDone {
		t.Fatalf("first session: %s (%s)", rep.State, rep.Error)
	}
	r2 := submit(t, ts, counterRequest())
	if rep := waitFinished(t, ts, r2.ID); rep.State != StateDone {
		t.Fatalf("second session after eviction: %s (%s)", rep.State, rep.Error)
	}
	cs := sv.Cache().Stats()
	if cs.Evictions < 1 {
		t.Errorf("evictions = %d, want >= 1", cs.Evictions)
	}
	if cs.Elaborations != 2 {
		t.Errorf("elaborations = %d, want 2 (nothing stayed resident)", cs.Elaborations)
	}
	if cs.Bytes != 0 || cs.Entries != 0 {
		t.Errorf("cache not empty after eviction: %d bytes, %d entries", cs.Bytes, cs.Entries)
	}
}

// TestServerTenantIsolation: one session blows its deadline, another dies
// of a model error — and a well-behaved neighbor sharing the pool and cache
// still completes with an exact trace.
func TestServerTenantIsolation(t *testing.T) {
	want := soloCounterTrace(t)
	_, ts := newTestServer(t, Config{MaxSessions: 4})

	// A runaway session: unbounded horizon, tiny deadline.
	runaway := submit(t, ts, SessionRequest{
		Circuit: "fsm", Protocol: "opt", Workers: 2,
		Until: "1000ms", Deadline: "150ms",
	})
	// A buggy design: divides by zero at the first clock edge.
	buggy := submit(t, ts, SessionRequest{
		Top:     "dz",
		Sources: []SourceRequest{{Name: "dz.vhd", Text: divZeroSrc}},
		Workers: 2, Until: "1us", Deadline: "60s",
	})
	// The well-behaved tenant.
	good := submit(t, ts, counterRequest())

	if rep := waitFinished(t, ts, runaway.ID); rep.State != StateFailed || rep.ErrorKind != "deadline" {
		t.Errorf("runaway session: state=%s kind=%s (%s)", rep.State, rep.ErrorKind, rep.Error)
	}
	if rep := waitFinished(t, ts, buggy.ID); rep.State != StateFailed || rep.ErrorKind != "model" ||
		!strings.Contains(rep.Error, "division by zero") {
		t.Errorf("buggy session: state=%s kind=%s (%s)", rep.State, rep.ErrorKind, rep.Error)
	}
	if rep := waitFinished(t, ts, good.ID); rep.State != StateDone {
		t.Errorf("good session was not isolated: state=%s (%s)", rep.State, rep.Error)
	}
	if got := streamTrace(t, ts, good.ID); got != want {
		t.Error("good session's trace diverged while neighbors failed")
	}
}

// TestServerQueueFull: a bounded pool plus a bounded queue turns overload
// into 429, not unbounded admission.
func TestServerQueueFull(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxSessions: 1, QueueDepth: 2})
	var ids []string
	got429 := false
	for i := 0; i < 5; i++ {
		rep, code := trySubmit(t, ts, SessionRequest{
			Circuit: "fsm", Protocol: "opt", Workers: 2,
			Until: "1000ms", Deadline: "60s",
		})
		switch code {
		case http.StatusAccepted:
			ids = append(ids, rep.ID)
		case http.StatusTooManyRequests:
			got429 = true
		default:
			t.Fatalf("submit %d: status %d", i, code)
		}
	}
	if !got429 {
		t.Error("no submit was rejected with 429")
	}
	if len(ids) < 2 {
		t.Errorf("only %d submits admitted before rejection", len(ids))
	}
	for _, id := range ids {
		resp, err := http.Post(ts.URL+"/v1/sessions/"+id+"/cancel", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	for _, id := range ids {
		if rep := waitFinished(t, ts, id); rep.State != StateCanceled {
			t.Errorf("session %s after cancel: %s (%s)", id, rep.State, rep.Error)
		}
	}
}

func readyz(t *testing.T, ts *httptest.Server) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, strings.TrimSpace(string(b))
}

// TestServerReadyz: /readyz is the routing signal, distinct from /healthz
// liveness — 200 on an idle server, 503 while the admission queue is full,
// and 503 for good once Shutdown starts draining.
func TestServerReadyz(t *testing.T) {
	sv, ts := newTestServer(t, Config{MaxSessions: 1, QueueDepth: 1})

	if code, body := readyz(t, ts); code != http.StatusOK || body != "ready" {
		t.Fatalf("idle /readyz = %d %q, want 200 ready", code, body)
	}

	// Fill the single run slot, then the single queue slot: the probe must
	// flip to 503 "queue full" while admission would be refused.
	req := SessionRequest{
		Circuit: "fsm", Protocol: "opt", Workers: 2,
		Until: "1000ms", Deadline: "60s",
	}
	running := submit(t, ts, req)
	var queued SessionReply
	deadline := time.Now().Add(10 * time.Second)
	for {
		rep, code := trySubmit(t, ts, req)
		if code == http.StatusAccepted {
			sv.mu.Lock()
			full := sv.queued >= sv.cfg.QueueDepth
			sv.mu.Unlock()
			if full {
				queued = rep
				break
			}
			// The previous submit already started running; this one took
			// the queue slot's place — keep it and try once more.
			running, queued = rep, SessionReply{}
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never filled")
		}
	}
	if code, body := readyz(t, ts); code != http.StatusServiceUnavailable || body != "queue full" {
		t.Errorf("full-queue /readyz = %d %q, want 503 queue full", code, body)
	}

	for _, id := range []string{running.ID, queued.ID} {
		if id == "" {
			continue
		}
		resp, err := http.Post(ts.URL+"/v1/sessions/"+id+"/cancel", "", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		waitFinished(t, ts, id)
	}
	if code, body := readyz(t, ts); code != http.StatusOK || body != "ready" {
		t.Errorf("post-drain /readyz = %d %q, want 200 ready again", code, body)
	}

	// SIGTERM path: govhdld calls Shutdown before closing the listener, so
	// the probe must stop advertising readiness while sessions drain.
	sv.Shutdown()
	if code, body := readyz(t, ts); code != http.StatusServiceUnavailable || body != "draining" {
		t.Errorf("draining /readyz = %d %q, want 503 draining", code, body)
	}
	// Liveness stays green throughout the drain.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz during drain = %d, want 200", resp.StatusCode)
	}
}

// TestServerVCDStream: the streamed dump has the upfront header and the
// change records of the whole run.
func TestServerVCDStream(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	rep := submit(t, ts, counterRequest())
	resp, err := http.Get(ts.URL + "/v1/sessions/" + rep.ID + "/vcd")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	dump := string(b)
	for _, w := range []string{"$enddefinitions", "ctb.clk", "ctb.q", "#"} {
		if !strings.Contains(dump, w) {
			t.Fatalf("vcd missing %q:\n%.400s", w, dump)
		}
	}
	if rep := waitFinished(t, ts, rep.ID); rep.State != StateDone {
		t.Fatalf("session: %s (%s)", rep.State, rep.Error)
	}
}

// TestServerRejectsBadRequests: compile errors, unknown names and invalid
// combinations are client faults diagnosed at submit time with 400.
func TestServerRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxWorkers: 4})
	cases := []struct {
		name string
		req  SessionRequest
		want string
	}{
		{"nothing", SessionRequest{}, "nothing to simulate"},
		{"both", SessionRequest{Circuit: "fsm", Top: "x", Sources: []SourceRequest{{Name: "a", Text: "b"}}}, "not both"},
		{"unknown circuit", SessionRequest{Circuit: "nosuch"}, "unknown circuit"},
		{"bad protocol", SessionRequest{Circuit: "fsm", Protocol: "warp9"}, "unknown protocol"},
		{"bad until", SessionRequest{Circuit: "fsm", Until: "10 parsecs"}, "bad until"},
		{"compile error", SessionRequest{Top: "x", Sources: []SourceRequest{{Name: "x.vhd", Text: "entity ; garbage"}}}, ""},
		{"too many workers", SessionRequest{Circuit: "fsm", Workers: 99}, "workers must be <="},
		{"negative mem budget", SessionRequest{Circuit: "fsm", MemBudget: -1}, "-mem-budget"},
		{"huge deadline", SessionRequest{Circuit: "fsm", Deadline: "24h"}, "deadline must be <="},
		// CLI/HTTP parity: cluster-level migration policies need a distributed
		// run, which a server session never is. Same messages as pvsim.
		{"bad migrate policy", SessionRequest{Circuit: "fsm", MigratePolicy: "chaos"}, "-migrate-policy must be"},
		{"migrate policy in-process", SessionRequest{Circuit: "fsm", MigratePolicy: "balance"}, "needs a distributed run"},
		{"on-death in-process", SessionRequest{Circuit: "fsm", MigratePolicy: "on-death"}, "needs a distributed run"},
		{"min-nodes without policy", SessionRequest{Circuit: "fsm", MinNodes: 2}, "-min-nodes needs -migrate-policy"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			body, _ := json.Marshal(c.req)
			resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
			var e map[string]string
			json.NewDecoder(resp.Body).Decode(&e)
			if c.want != "" && !strings.Contains(e["error"], c.want) {
				t.Fatalf("error %q, want substring %q", e["error"], c.want)
			}
		})
	}
	resp, err := http.Get(ts.URL + "/v1/sessions/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown session: status %d, want 404", resp.StatusCode)
	}
}

// TestServerElasticRebalance: a session submitted with rebalance=true
// migrates LPs between its workers at GVT rounds without restarting, the
// committed trace stays byte-identical to the sequential run, and /metrics
// exposes the elasticity counters.
func TestServerElasticRebalance(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := counterRequest()
	req.Rebalance = true
	rep := submit(t, ts, req)
	got := streamTrace(t, ts, rep.ID)
	if fin := waitFinished(t, ts, rep.ID); fin.State != StateDone {
		t.Fatalf("session: %s (%s)", fin.State, fin.Error)
	}
	if want := soloCounterTrace(t); got != want {
		t.Fatal("rebalancing session trace differs from the sequential run")
	}
	if n := metricValue(t, ts, "migrations_total"); n == 0 {
		t.Fatal("migrations_total = 0: the rebalance policy never moved an LP")
	}
	if n := metricValue(t, ts, "view_changes_total"); n == 0 {
		t.Fatal("view_changes_total = 0: migration cuts must publish new views")
	}
	if n := metricValue(t, ts, "forwarded_msgs_total"); n == 0 {
		t.Fatal("forwarded_msgs_total = 0: handoffs must account forwarded traffic")
	}
}

// TestCacheLRU pins the unit-level cache semantics: LRU eviction by bytes,
// no caching of failures, and single-flight concurrent builds.
func TestCacheLRU(t *testing.T) {
	mk := func() (*kernel.Design, int64, error) {
		return kernel.NewDesign("d"), 60, nil
	}
	c := NewCache(100)
	if _, hit, _ := c.Get("a", mk); hit {
		t.Error("first a was a hit")
	}
	if _, hit, _ := c.Get("b", mk); hit {
		t.Error("first b was a hit")
	}
	// b (60) evicted a (60): 120 > 100.
	if _, hit, _ := c.Get("b", mk); !hit {
		t.Error("b should be resident")
	}
	if _, hit, _ := c.Get("a", mk); hit {
		t.Error("a survived eviction")
	}
	st := c.Stats()
	if st.Evictions < 1 || st.Entries != 1 {
		t.Errorf("stats = %+v", st)
	}

	// Failures are not cached.
	fail := func() (*kernel.Design, int64, error) { return nil, 0, fmt.Errorf("boom") }
	if _, _, err := c.Get("bad", fail); err == nil {
		t.Fatal("failed build returned no error")
	}
	if _, hit, err := c.Get("bad", mk); hit || err != nil {
		t.Errorf("failure was cached: hit=%t err=%v", hit, err)
	}

	// Single-flight: concurrent first requests build once.
	c2 := NewCache(1 << 20)
	var mu sync.Mutex
	builds := 0
	slow := func() (*kernel.Design, int64, error) {
		mu.Lock()
		builds++
		mu.Unlock()
		time.Sleep(20 * time.Millisecond)
		return kernel.NewDesign("s"), 10, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if d, _, err := c2.Get("same", slow); err != nil || d == nil {
				t.Errorf("concurrent get: %v", err)
			}
		}()
	}
	wg.Wait()
	if builds != 1 {
		t.Errorf("builds = %d, want 1 (single-flight)", builds)
	}
}
