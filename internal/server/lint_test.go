package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"govhdl/internal/vhdl/lint"
)

// multiDriverSrc has an error-severity finding (V001: two drivers on an
// unresolved integer signal) — and really does lose the second driver's
// update when simulated; see TestLintAgreesWithRuntime in the lint package.
const multiDriverSrc = `
entity md is end entity;
architecture sim of md is
  signal s : integer := 0;
begin
  p1 : process begin
    s <= 1 after 10 ns;
    wait;
  end process;
  p2 : process begin
    s <= 2 after 20 ns;
    wait;
  end process;
  watch : process (s) begin
    report "s changed";
  end process;
end architecture;
`

func postLint(t *testing.T, url string, req LintRequest) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+"/v1/lint", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

func TestServerLintEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, body := postLint(t, ts.URL, LintRequest{
		Sources: []SourceRequest{{Name: "md.vhd", Text: multiDriverSrc}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lint: status %d: %s", resp.StatusCode, body)
	}
	var rep lint.Report
	if err := rep.Decode(body); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if rep.Errors != 1 || len(rep.Diagnostics) != 1 {
		t.Fatalf("report = %d errors, %d diags, want 1, 1:\n%s", rep.Errors, len(rep.Diagnostics), body)
	}
	if d := rep.Diagnostics[0]; d.Rule != "V001" || d.File != "md.vhd" {
		t.Errorf("diag = %s, want V001 in md.vhd", d)
	}

	if got := metricValue(t, ts, "lint_runs"); got != 1 {
		t.Errorf("lint_runs = %d, want 1", got)
	}
	if got := metricValue(t, ts, "lint_findings"); got != 1 {
		t.Errorf("lint_findings = %d, want 1", got)
	}

	// Bad requests: no sources, unparseable source.
	if resp, _ := postLint(t, ts.URL, LintRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty lint request: status %d, want 400", resp.StatusCode)
	}
	resp, body = postLint(t, ts.URL, LintRequest{
		Sources: []SourceRequest{{Name: "x.vhd", Text: "entity oops"}},
	})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unparseable source: status %d: %s", resp.StatusCode, body)
	}
}

// TestServerVetGate covers the submit-time lint gate: vet rejects error
// findings with 422 and the report as the body; without vet the session runs
// and its status carries the findings.
func TestServerVetGate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	src := []SourceRequest{{Name: "md.vhd", Text: multiDriverSrc}}

	// vet: error finding rejects the submission with the lint report.
	body, _ := json.Marshal(SessionRequest{Top: "md", Sources: src, Vet: true, Until: "1us"})
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("vetted submit: status %d, want 422: %s", resp.StatusCode, buf.Bytes())
	}
	var rep lint.Report
	if err := rep.Decode(buf.Bytes()); err != nil {
		t.Fatalf("422 body is not a lint report: %v", err)
	}
	if rep.Errors != 1 || rep.Diagnostics[0].Rule != "V001" {
		t.Errorf("422 report = %+v, want one V001 error", rep)
	}
	if got := metricValue(t, ts, "sessions_total"); got != 0 {
		t.Errorf("rejected submit created a session (total %d)", got)
	}

	// vet_strict: warning findings also reject. counterSrc's q is driven but
	// never read (V005, warning), so plain vet admits it and strict does not.
	warnReq := counterRequest()
	warnReq.Vet = true
	if rep, code := trySubmit(t, ts, warnReq); code != http.StatusAccepted {
		t.Fatalf("warning-only design rejected by plain vet: %d %+v", code, rep)
	}
	warnReq.VetStrict = true
	if _, code := trySubmit(t, ts, warnReq); code != http.StatusUnprocessableEntity {
		t.Errorf("warning-only design admitted by vet_strict: %d", code)
	}

	// vet on a circuit request is a shared-validation conflict.
	if _, code := trySubmit(t, ts, SessionRequest{Circuit: "fsm", Vet: true}); code != http.StatusBadRequest {
		t.Errorf("vet+circuit: status %d, want 400", code)
	}

	// Without vet, the driver conflict is caught anyway — by elaboration,
	// with the positioned model error lint predicted.
	rej, code := trySubmit(t, ts, SessionRequest{Top: "md", Sources: src, Until: "1us"})
	if code != http.StatusBadRequest {
		t.Errorf("unvetted multi-driver submit: status %d, want 400", code)
	}
	if !strings.Contains(rej.Error, "no resolution function") {
		t.Errorf("elaboration error = %q, want driver conflict", rej.Error)
	}

	// A design that elaborates still carries its lint findings on status.
	sub := submit(t, ts, counterRequest())
	rep2 := waitFinished(t, ts, sub.ID)
	if rep2.Lint == nil {
		t.Fatal("session status has no lint report")
	}
	if rep2.Lint.Warnings == 0 || rep2.Lint.Diagnostics[0].Rule != "V005" {
		t.Errorf("session lint report = %+v, want a V005 warning (q never read)", rep2.Lint)
	}
}
