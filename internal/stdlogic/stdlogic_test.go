package stdlogic

import (
	"testing"
	"testing/quick"
)

func allStd() []Std {
	return []Std{U, X, L0, L1, Z, W, L, H, DC}
}

func TestRuneRoundTrip(t *testing.T) {
	for _, v := range allStd() {
		got, ok := FromRune(rune(v.Rune()))
		if !ok || got != v {
			t.Errorf("FromRune(Rune(%v)) = %v, %v", v, got, ok)
		}
	}
	if _, ok := FromRune('q'); ok {
		t.Error("FromRune('q') succeeded")
	}
}

func TestResolutionCommutative(t *testing.T) {
	for _, a := range allStd() {
		for _, b := range allStd() {
			if Resolve2(a, b) != Resolve2(b, a) {
				t.Errorf("Resolve2(%v,%v) != Resolve2(%v,%v)", a, b, b, a)
			}
		}
	}
}

func TestResolutionAssociative(t *testing.T) {
	for _, a := range allStd() {
		for _, b := range allStd() {
			for _, c := range allStd() {
				if Resolve2(Resolve2(a, b), c) != Resolve2(a, Resolve2(b, c)) {
					t.Errorf("resolution not associative at %v,%v,%v", a, b, c)
				}
			}
		}
	}
}

func TestResolutionIdentities(t *testing.T) {
	// 'Z' is the identity element of resolution.
	for _, a := range allStd() {
		if Resolve2(a, Z) != a && !(a == DC && Resolve2(a, Z) == X) {
			// Per IEEE 1164, '-' resolved with 'Z' yields 'X', everything
			// else is unchanged by 'Z'.
			t.Errorf("Resolve2(%v, Z) = %v", a, Resolve2(a, Z))
		}
	}
	// 'U' dominates everything.
	for _, a := range allStd() {
		if Resolve2(a, U) != U {
			t.Errorf("Resolve2(%v, U) = %v, want U", a, Resolve2(a, U))
		}
	}
	// Driver conflict between forcing 0 and 1 is 'X'.
	if Resolve2(L0, L1) != X {
		t.Errorf("Resolve2('0','1') = %v, want 'X'", Resolve2(L0, L1))
	}
	// Forcing beats weak.
	if Resolve2(L0, H) != L0 || Resolve2(L1, L) != L1 {
		t.Error("forcing value did not beat weak value")
	}
}

func TestResolveVariadic(t *testing.T) {
	if got := Resolve(); got != Z {
		t.Errorf("Resolve() = %v, want Z", got)
	}
	if got := Resolve(H); got != H {
		t.Errorf("Resolve(H) = %v", got)
	}
	if got := Resolve(Z, L, H); got != W {
		t.Errorf("Resolve(Z,L,H) = %v, want W", got)
	}
	if got := Resolve(Z, Z, L1); got != L1 {
		t.Errorf("Resolve(Z,Z,1) = %v, want 1", got)
	}
}

func TestLogicTablesOn01(t *testing.T) {
	// On clean 0/1 inputs the tables must agree with boolean logic.
	bools := []struct {
		v Std
		b bool
	}{{L0, false}, {L1, true}}
	for _, a := range bools {
		for _, b := range bools {
			if And(a.v, b.v) != FromBool(a.b && b.b) {
				t.Errorf("And(%v,%v)", a.v, b.v)
			}
			if Or(a.v, b.v) != FromBool(a.b || b.b) {
				t.Errorf("Or(%v,%v)", a.v, b.v)
			}
			if Xor(a.v, b.v) != FromBool(a.b != b.b) {
				t.Errorf("Xor(%v,%v)", a.v, b.v)
			}
			if Nand(a.v, b.v) != FromBool(!(a.b && b.b)) {
				t.Errorf("Nand(%v,%v)", a.v, b.v)
			}
			if Nor(a.v, b.v) != FromBool(!(a.b || b.b)) {
				t.Errorf("Nor(%v,%v)", a.v, b.v)
			}
			if Xnor(a.v, b.v) != FromBool(a.b == b.b) {
				t.Errorf("Xnor(%v,%v)", a.v, b.v)
			}
		}
		if Not(a.v) != FromBool(!a.b) {
			t.Errorf("Not(%v)", a.v)
		}
	}
}

func TestLogicTablesDominance(t *testing.T) {
	// '0' dominates "and"; '1' dominates "or" — for every input value.
	for _, a := range allStd() {
		if And(a, L0) != L0 || And(L0, a) != L0 {
			t.Errorf("And(%v, '0') != '0'", a)
		}
		if Or(a, L1) != L1 || Or(L1, a) != L1 {
			t.Errorf("Or(%v, '1') != '1'", a)
		}
	}
}

func TestLogicTablesCommutative(t *testing.T) {
	for _, a := range allStd() {
		for _, b := range allStd() {
			if And(a, b) != And(b, a) || Or(a, b) != Or(b, a) || Xor(a, b) != Xor(b, a) {
				t.Errorf("non-commutative at %v,%v", a, b)
			}
		}
	}
}

func TestDeMorgan(t *testing.T) {
	// De Morgan holds exactly in the 1164 tables.
	for _, a := range allStd() {
		for _, b := range allStd() {
			if Nand(a, b) != Or(Not(a), Not(b)) {
				t.Errorf("De Morgan nand failed at %v,%v", a, b)
			}
			if Nor(a, b) != And(Not(a), Not(b)) {
				t.Errorf("De Morgan nor failed at %v,%v", a, b)
			}
		}
	}
}

func TestTo01(t *testing.T) {
	cases := map[Std]Std{U: X, X: X, L0: L0, L1: L1, Z: X, W: X, L: L0, H: L1, DC: X}
	for in, want := range cases {
		if got := To01(in); got != want {
			t.Errorf("To01(%v) = %v, want %v", in, got, want)
		}
	}
}

func TestVecString(t *testing.T) {
	v := MustVec("10ZX")
	if v.String() != `"10ZX"` {
		t.Errorf("String() = %s", v.String())
	}
	if _, err := VecFromString("10q"); err == nil {
		t.Error("VecFromString accepted bad character")
	}
}

func TestVecUintRoundTrip(t *testing.T) {
	f := func(x uint16) bool {
		v := FromUint(uint64(x), 16)
		y, ok := v.Uint()
		return ok && y == uint64(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVecIntRoundTrip(t *testing.T) {
	f := func(x int16) bool {
		v := FromInt(int64(x), 16)
		y, ok := v.Int()
		return ok && y == int64(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVecUintRejectsX(t *testing.T) {
	v := MustVec("1X01")
	if _, ok := v.Uint(); ok {
		t.Error("Uint() accepted 'X'")
	}
	v = MustVec("1H0L")
	if x, ok := v.Uint(); !ok || x != 0b1100 {
		t.Errorf("Uint() on weak values = %d, %v", x, ok)
	}
}

func TestAddSubVec(t *testing.T) {
	f := func(a, b uint8) bool {
		av, bv := FromUint(uint64(a), 8), FromUint(uint64(b), 8)
		sum, _ := AddVec(av, bv).Uint()
		diff, _ := SubVec(av, bv).Uint()
		return sum == uint64(a+b) && diff == uint64(a-b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// X poisons arithmetic.
	if got := AddVec(MustVec("1X"), MustVec("01")); !got.Equal(MustVec("XX")) {
		t.Errorf("AddVec with X = %v", got)
	}
}

func TestVecLogicOps(t *testing.T) {
	a, b := MustVec("1100"), MustVec("1010")
	if got := AndVec(a, b); !got.Equal(MustVec("1000")) {
		t.Errorf("AndVec = %v", got)
	}
	if got := OrVec(a, b); !got.Equal(MustVec("1110")) {
		t.Errorf("OrVec = %v", got)
	}
	if got := XorVec(a, b); !got.Equal(MustVec("0110")) {
		t.Errorf("XorVec = %v", got)
	}
	if got := NotVec(a); !got.Equal(MustVec("0011")) {
		t.Errorf("NotVec = %v", got)
	}
}

func TestVecLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on length mismatch")
		}
	}()
	AndVec(MustVec("10"), MustVec("101"))
}

func TestResolveVec(t *testing.T) {
	got := ResolveVec(MustVec("Z1"), MustVec("0Z"))
	if !got.Equal(MustVec("01")) {
		t.Errorf("ResolveVec = %v", got)
	}
	got = ResolveVec(MustVec("11"), MustVec("10"))
	if !got.Equal(MustVec("1X")) {
		t.Errorf("ResolveVec conflict = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	a := MustVec("1010")
	b := a.Clone()
	b[0] = X
	if a[0] != L1 {
		t.Error("Clone aliases original")
	}
	if a.Equal(b) {
		t.Error("Equal after divergence")
	}
}
