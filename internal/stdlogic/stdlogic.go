// Package stdlogic implements the IEEE Std 1164 nine-value logic system
// (std_ulogic / std_logic), its resolution function, the standard logical
// operator tables, and vectors with the numeric operations needed by the
// gate-level and behavioral models in this repository.
package stdlogic

import (
	"fmt"
	"strings"
)

// Std is one IEEE 1164 logic value.
type Std uint8

// The nine std_ulogic values, in the order of the IEEE 1164 declaration.
const (
	U  Std = iota // 'U' uninitialized
	X             // 'X' forcing unknown
	L0            // '0' forcing 0
	L1            // '1' forcing 1
	Z             // 'Z' high impedance
	W             // 'W' weak unknown
	L             // 'L' weak 0
	H             // 'H' weak 1
	DC            // '-' don't care
	numStd
)

var stdChars = [numStd]byte{'U', 'X', '0', '1', 'Z', 'W', 'L', 'H', '-'}

// Rune returns the IEEE 1164 character for v.
func (v Std) Rune() byte {
	if v >= numStd {
		return '?'
	}
	return stdChars[v]
}

// String implements fmt.Stringer with the 1164 character in single quotes.
func (v Std) String() string { return fmt.Sprintf("'%c'", v.Rune()) }

// FromRune parses an IEEE 1164 character (case-insensitive).
func FromRune(r rune) (Std, bool) {
	switch r {
	case 'U', 'u':
		return U, true
	case 'X', 'x':
		return X, true
	case '0':
		return L0, true
	case '1':
		return L1, true
	case 'Z', 'z':
		return Z, true
	case 'W', 'w':
		return W, true
	case 'L', 'l':
		return L, true
	case 'H', 'h':
		return H, true
	case '-':
		return DC, true
	}
	return U, false
}

// FromBool returns '1' for true and '0' for false.
func FromBool(b bool) Std {
	if b {
		return L1
	}
	return L0
}

// resolutionTable is the IEEE 1164 resolution function table.
// resolutionTable[a][b] is the resolved value of two drivers a and b.
var resolutionTable = [numStd][numStd]Std{
	//        U  X  0   1   Z  W  L  H  -
	U:  {U, U, U, U, U, U, U, U, U},
	X:  {U, X, X, X, X, X, X, X, X},
	L0: {U, X, L0, X, L0, L0, L0, L0, X},
	L1: {U, X, X, L1, L1, L1, L1, L1, X},
	Z:  {U, X, L0, L1, Z, W, L, H, X},
	W:  {U, X, L0, L1, W, W, W, W, X},
	L:  {U, X, L0, L1, L, W, L, W, X},
	H:  {U, X, L0, L1, H, W, W, H, X},
	DC: {U, X, X, X, X, X, X, X, X},
}

// Resolve2 resolves two driver values per the IEEE 1164 resolution table.
func Resolve2(a, b Std) Std { return resolutionTable[a][b] }

// Resolve resolves any number of driver values. With no drivers the result
// is 'Z' (matching the 1164 resolved() function applied to a null vector...
// which actually yields 'Z' per the standard's definition over std_ulogic_vector).
func Resolve(vals ...Std) Std {
	r := Z
	if len(vals) == 0 {
		return Z
	}
	r = vals[0]
	for _, v := range vals[1:] {
		r = resolutionTable[r][v]
	}
	return r
}

// andTable is the IEEE 1164 "and" table.
var andTable = [numStd][numStd]Std{
	//        U  X  0   1   Z  W  L   H  -
	U:  {U, U, L0, U, U, U, L0, U, U},
	X:  {U, X, L0, X, X, X, L0, X, X},
	L0: {L0, L0, L0, L0, L0, L0, L0, L0, L0},
	L1: {U, X, L0, L1, X, X, L0, L1, X},
	Z:  {U, X, L0, X, X, X, L0, X, X},
	W:  {U, X, L0, X, X, X, L0, X, X},
	L:  {L0, L0, L0, L0, L0, L0, L0, L0, L0},
	H:  {U, X, L0, L1, X, X, L0, L1, X},
	DC: {U, X, L0, X, X, X, L0, X, X},
}

// orTable is the IEEE 1164 "or" table.
var orTable = [numStd][numStd]Std{
	//        U  X   0  1   Z  W  L  H   -
	U:  {U, U, U, L1, U, U, U, L1, U},
	X:  {U, X, X, L1, X, X, X, L1, X},
	L0: {U, X, L0, L1, X, X, L0, L1, X},
	L1: {L1, L1, L1, L1, L1, L1, L1, L1, L1},
	Z:  {U, X, X, L1, X, X, X, L1, X},
	W:  {U, X, X, L1, X, X, X, L1, X},
	L:  {U, X, L0, L1, X, X, L0, L1, X},
	H:  {L1, L1, L1, L1, L1, L1, L1, L1, L1},
	DC: {U, X, X, L1, X, X, X, L1, X},
}

// xorTable is the IEEE 1164 "xor" table.
var xorTable = [numStd][numStd]Std{
	//        U  X  0   1   Z  W  L   H   -
	U:  {U, U, U, U, U, U, U, U, U},
	X:  {U, X, X, X, X, X, X, X, X},
	L0: {U, X, L0, L1, X, X, L0, L1, X},
	L1: {U, X, L1, L0, X, X, L1, L0, X},
	Z:  {U, X, X, X, X, X, X, X, X},
	W:  {U, X, X, X, X, X, X, X, X},
	L:  {U, X, L0, L1, X, X, L0, L1, X},
	H:  {U, X, L1, L0, X, X, L1, L0, X},
	DC: {U, X, X, X, X, X, X, X, X},
}

// notTable is the IEEE 1164 "not" table.
var notTable = [numStd]Std{U, X, L1, L0, X, X, L1, L0, X}

// And returns IEEE 1164 a and b.
func And(a, b Std) Std { return andTable[a][b] }

// Or returns IEEE 1164 a or b.
func Or(a, b Std) Std { return orTable[a][b] }

// Xor returns IEEE 1164 a xor b.
func Xor(a, b Std) Std { return xorTable[a][b] }

// Not returns IEEE 1164 not a.
func Not(a Std) Std { return notTable[a] }

// Nand returns not (a and b).
func Nand(a, b Std) Std { return notTable[andTable[a][b]] }

// Nor returns not (a or b).
func Nor(a, b Std) Std { return notTable[orTable[a][b]] }

// Xnor returns not (a xor b).
func Xnor(a, b Std) Std { return notTable[xorTable[a][b]] }

// To01 maps weak values onto their forcing equivalents: 'H'->'1', 'L'->'0',
// '1'/'0' unchanged, everything else 'X' (the xmap of ieee.numeric_std TO_01
// with XMAP => 'X').
func To01(v Std) Std {
	switch v {
	case L0, L:
		return L0
	case L1, H:
		return L1
	default:
		return X
	}
}

// IsHigh reports whether v reads as logic 1 ('1' or 'H').
func IsHigh(v Std) bool { return v == L1 || v == H }

// IsLow reports whether v reads as logic 0 ('0' or 'L').
func IsLow(v Std) bool { return v == L0 || v == L }

// Is01 reports whether v is a forcing or weak 0/1.
func Is01(v Std) bool { return IsHigh(v) || IsLow(v) }

// Vec is a std_logic_vector. Index 0 is the leftmost element of the VHDL
// object; for the usual "N-1 downto 0" declaration, Vec[0] is the MSB.
type Vec []Std

// NewVec returns a vector of n elements, all set to fill.
func NewVec(n int, fill Std) Vec {
	v := make(Vec, n)
	for i := range v {
		v[i] = fill
	}
	return v
}

// VecFromString parses a VHDL bit-string literal body such as "1010ZX".
func VecFromString(s string) (Vec, error) {
	v := make(Vec, 0, len(s))
	for _, r := range s {
		b, ok := FromRune(r)
		if !ok {
			return nil, fmt.Errorf("stdlogic: invalid std_logic character %q", r)
		}
		v = append(v, b)
	}
	return v, nil
}

// MustVec is VecFromString that panics on error; for tests and literals.
func MustVec(s string) Vec {
	v, err := VecFromString(s)
	if err != nil {
		panic(err)
	}
	return v
}

// String renders the vector as a quoted bit string, MSB first.
func (v Vec) String() string {
	var b strings.Builder
	b.WriteByte('"')
	for _, e := range v {
		b.WriteByte(e.Rune())
	}
	b.WriteByte('"')
	return b.String()
}

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// Equal reports element-wise equality.
func (v Vec) Equal(w Vec) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i] != w[i] {
			return false
		}
	}
	return true
}

// Is01 reports whether every element is a (weak or forcing) 0/1.
func (v Vec) Is01() bool {
	for _, e := range v {
		if !Is01(e) {
			return false
		}
	}
	return true
}

// FromUint returns an n-element vector holding the unsigned binary value of
// x, MSB first (the "n-1 downto 0" layout). Bits above n are truncated.
func FromUint(x uint64, n int) Vec {
	v := make(Vec, n)
	for i := 0; i < n; i++ {
		if x&(1<<uint(n-1-i)) != 0 {
			v[i] = L1
		} else {
			v[i] = L0
		}
	}
	return v
}

// FromInt returns an n-element two's-complement vector for x.
func FromInt(x int64, n int) Vec { return FromUint(uint64(x), n) }

// Uint interprets the vector as unsigned binary (MSB first). The second
// result is false if any element is not 0/1 or the vector exceeds 64 bits.
func (v Vec) Uint() (uint64, bool) {
	if len(v) > 64 {
		return 0, false
	}
	var x uint64
	for _, e := range v {
		x <<= 1
		switch {
		case IsHigh(e):
			x |= 1
		case IsLow(e):
		default:
			return 0, false
		}
	}
	return x, true
}

// Int interprets the vector as two's-complement signed binary.
func (v Vec) Int() (int64, bool) {
	x, ok := v.Uint()
	if !ok {
		return 0, false
	}
	if len(v) > 0 && len(v) < 64 && IsHigh(v[0]) {
		// Sign-extend.
		x |= ^uint64(0) << uint(len(v))
	}
	return int64(x), true
}

func mapBinary(a, b Vec, f func(Std, Std) Std) Vec {
	n := len(a)
	if len(b) != n {
		panic(fmt.Sprintf("stdlogic: length mismatch %d vs %d", len(a), len(b)))
	}
	out := make(Vec, n)
	for i := range out {
		out[i] = f(a[i], b[i])
	}
	return out
}

// AndVec returns the element-wise "and" of equal-length vectors.
func AndVec(a, b Vec) Vec { return mapBinary(a, b, And) }

// OrVec returns the element-wise "or".
func OrVec(a, b Vec) Vec { return mapBinary(a, b, Or) }

// XorVec returns the element-wise "xor".
func XorVec(a, b Vec) Vec { return mapBinary(a, b, Xor) }

// NotVec returns the element-wise "not".
func NotVec(a Vec) Vec {
	out := make(Vec, len(a))
	for i := range out {
		out[i] = Not(a[i])
	}
	return out
}

// AddVec adds two equal-length vectors as unsigned binary with wraparound,
// like ieee.numeric_std "+" on unsigned. If either operand contains a
// non-0/1 element the whole result is 'X'.
func AddVec(a, b Vec) Vec {
	n := len(a)
	if len(b) != n {
		panic(fmt.Sprintf("stdlogic: length mismatch %d vs %d", len(a), len(b)))
	}
	x, okA := a.Uint()
	y, okB := b.Uint()
	if !okA || !okB || n > 64 {
		return NewVec(n, X)
	}
	return FromUint(x+y, n)
}

// SubVec subtracts b from a as unsigned binary with wraparound.
func SubVec(a, b Vec) Vec {
	n := len(a)
	if len(b) != n {
		panic(fmt.Sprintf("stdlogic: length mismatch %d vs %d", len(a), len(b)))
	}
	x, okA := a.Uint()
	y, okB := b.Uint()
	if !okA || !okB || n > 64 {
		return NewVec(n, X)
	}
	return FromUint(x-y, n)
}

// ResolveVec resolves equal-length driver vectors element-wise.
func ResolveVec(drivers ...Vec) Vec {
	if len(drivers) == 0 {
		return nil
	}
	out := drivers[0].Clone()
	for _, d := range drivers[1:] {
		if len(d) != len(out) {
			panic(fmt.Sprintf("stdlogic: resolve length mismatch %d vs %d", len(d), len(out)))
		}
		for i := range out {
			out[i] = Resolve2(out[i], d[i])
		}
	}
	return out
}
