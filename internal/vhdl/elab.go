package vhdl

import (
	"fmt"
	"strings"

	"govhdl/internal/kernel"
	"govhdl/internal/stdlogic"
)

// Library is a set of analyzed design units (the VHDL "work" library).
type Library struct {
	entities map[string]*EntityDecl
	archs    map[string][]*ArchBody
}

// NewLibrary returns an empty library.
func NewLibrary() *Library {
	return &Library{entities: map[string]*EntityDecl{}, archs: map[string][]*ArchBody{}}
}

// Add files a parsed design file into the library.
func (l *Library) Add(df *DesignFile) error {
	for _, e := range df.Entities {
		if _, dup := l.entities[e.Name]; dup {
			return &Error{File: e.File, Line: e.Pos.Line, Col: e.Pos.Col,
				Msg: fmt.Sprintf("duplicate entity %q", e.Name)}
		}
		l.entities[e.Name] = e
	}
	for _, a := range df.Archs {
		l.archs[a.EntityName] = append(l.archs[a.EntityName], a)
	}
	return nil
}

// ParseAndAdd parses source text and adds it to the library.
func (l *Library) ParseAndAdd(file, src string) error {
	df, err := Parse(file, src)
	if err != nil {
		return err
	}
	return l.Add(df)
}

// sigRef binds a VHDL signal name to its kernel signal and type.
type sigRef struct {
	sig *kernel.Signal
	typ *Type
}

// instCtx is the elaboration scope of one design-unit instance.
type instCtx struct {
	path    string
	types   map[string]*Type
	enums   map[string]EnumVal
	consts  map[string]kernel.Value
	signals map[string]*sigRef
	comps   map[string]*ComponentDecl
}

func (c *instCtx) evalCtx() *evalCtx {
	return &evalCtx{consts: c.consts, types: c.types, enums: c.enums}
}

// elaborator builds a kernel design from the library.
type elaborator struct {
	lib    *Library
	design *kernel.Design

	// curFile is the source file of the architecture currently being
	// elaborated, so errors raised mid-walk carry their file.
	curFile string
	// instDepth guards against unbounded recursion (an entity instantiating
	// itself); see maxElabDepth.
	instDepth int
	// sigDecl maps each kernel signal name back to its declaration site, so
	// post-elaboration checks (driver conflicts) report exact positions.
	sigDecl map[string]declSite
}

// declSite is a recorded declaration position.
type declSite struct {
	file string
	pos  Pos
}

// Elaborate flattens the hierarchy under the named top entity into a kernel
// design: the paper's post-elaboration model where processes and signals
// become LPs.
func (l *Library) Elaborate(top string) (d *kernel.Design, err error) {
	var e *elaborator
	defer func() {
		if r := recover(); r != nil {
			if ee, ok := r.(evalError); ok {
				// Evaluation errors carry line/col; the file is whatever
				// architecture the elaborator was walking when it panicked.
				if ee.err.File == "" && e != nil {
					ee.err.File = e.curFile
				}
				d, err = nil, ee.err
				return
			}
			panic(r)
		}
	}()
	ent, ok := l.entities[top]
	if !ok {
		return nil, fmt.Errorf("vhdl: no entity %q in the library", top)
	}
	e = &elaborator{lib: l, design: kernel.NewDesign(top), curFile: ent.File, sigDecl: map[string]declSite{}}
	ctx := e.newCtx(top)
	// Top-level ports become free signals (undriven inputs keep defaults).
	bindings := map[string]*sigRef{}
	for _, p := range ent.Ports {
		t := e.resolveType(ctx, p.Type)
		init := t.defaultValue()
		if p.Default != nil {
			init = ctx.evalCtx().eval(p.Default, t)
		}
		bindings[p.Name] = e.newSignal(ctx, top+"."+p.Name, t, init)
		e.sigDecl[top+"."+p.Name] = declSite{file: ent.File, pos: p.Pos}
	}
	if err := e.elabInstance(ent, top, nil, bindings); err != nil {
		return nil, err
	}
	if err := e.checkDrivers(); err != nil {
		return nil, err
	}
	return e.design, nil
}

// checkDrivers rejects unresolved signals with more than one driver — the
// condition kernel.Design.Build otherwise panics on — as a model error
// anchored at the signal's declaration. Design lint flags the same designs
// statically (rule V001) before they reach elaboration.
func (e *elaborator) checkDrivers() error {
	for _, s := range e.design.Signals() {
		if s.Resolved() || s.NumDrivers() <= 1 {
			continue
		}
		site := e.sigDecl[s.Name]
		return &Error{File: site.file, Line: site.pos.Line, Col: site.pos.Col,
			Msg: fmt.Sprintf("signal %s has %d drivers but its type has no resolution function (drive it from one process, or declare it std_logic)",
				s.Name, s.NumDrivers())}
	}
	return nil
}

func (e *elaborator) newCtx(path string) *instCtx {
	return &instCtx{
		path:    path,
		types:   builtinTypes(),
		enums:   map[string]EnumVal{},
		consts:  map[string]kernel.Value{"true": true, "false": false},
		signals: map[string]*sigRef{},
		comps:   map[string]*ComponentDecl{},
	}
}

// resolveType elaborates a type indication.
func (e *elaborator) resolveType(ctx *instCtx, tr *TypeRef) *Type {
	ec := ctx.evalCtx()
	switch tr.Name {
	case "std_logic_vector", "std_ulogic_vector", "bit_vector", "unsigned", "signed":
		if !tr.HasRng {
			evalPanic(tr.Pos, "unconstrained %s is not supported", tr.Name)
		}
		lo := ec.evalInt(tr.Lo)
		hi := ec.evalInt(tr.Hi)
		return &Type{Kind: tVec, Lo: lo, Hi: hi, Downto: tr.Downto}
	}
	base, ok := ctx.types[tr.Name]
	if !ok {
		evalPanic(tr.Pos, "unknown type %q", tr.Name)
	}
	if tr.HasRng {
		if base.Kind != tInt {
			evalPanic(tr.Pos, "range constraint on non-integer type %q", tr.Name)
		}
		return &Type{Kind: tInt, Lo: ec.evalInt(tr.Lo), Hi: ec.evalInt(tr.Hi)}
	}
	return base
}

// newSignal creates a kernel signal with std resolution where applicable.
func (e *elaborator) newSignal(ctx *instCtx, name string, t *Type, init kernel.Value) *sigRef {
	var opts []kernel.SignalOpt
	switch t.Kind {
	case tStd:
		opts = append(opts, kernel.WithResolution(kernel.StdResolution))
	case tVec:
		opts = append(opts, kernel.WithResolution(kernel.StdVecResolution))
	}
	sig := e.design.AddSignal(name, kernel.CloneValue(init), opts...)
	return &sigRef{sig: sig, typ: t}
}

// elabInstance elaborates one entity instance: pick its architecture,
// process declarations, then concurrent statements.
// maxElabDepth bounds the instantiation hierarchy: a design that nests
// deeper is recursive (an entity reachable from itself) and would otherwise
// elaborate forever.
const maxElabDepth = 64

func (e *elaborator) elabInstance(ent *EntityDecl, path string,
	generics map[string]kernel.Value, ports map[string]*sigRef) error {

	e.instDepth++
	defer func() { e.instDepth-- }()
	if e.instDepth > maxElabDepth {
		return &Error{File: ent.File, Line: ent.Pos.Line, Col: ent.Pos.Col,
			Msg: fmt.Sprintf("instantiation depth exceeds %d at %s (recursive instantiation?)", maxElabDepth, path)}
	}

	archs := e.lib.archs[ent.Name]
	if len(archs) == 0 {
		return &Error{File: ent.File, Line: ent.Pos.Line, Col: ent.Pos.Col,
			Msg: fmt.Sprintf("entity %q has no architecture", ent.Name)}
	}
	arch := archs[len(archs)-1] // last analyzed wins (VHDL default rule)

	prevFile := e.curFile
	e.curFile = arch.File
	defer func() { e.curFile = prevFile }()

	ctx := e.newCtx(path)
	for _, g := range ent.Generics {
		v, ok := generics[g.Name]
		if !ok {
			if g.Default == nil {
				return &Error{File: ent.File, Line: g.Pos.Line, Col: g.Pos.Col,
					Msg: fmt.Sprintf("%s: generic %q has no value", path, g.Name)}
			}
			v = ctx.evalCtx().eval(g.Default, e.resolveType(ctx, g.Type))
		}
		ctx.consts[g.Name] = v
	}
	for _, p := range ent.Ports {
		ref, ok := ports[p.Name]
		if !ok {
			// Unbound: inputs fall back to defaults, outputs dangle.
			t := e.resolveType(ctx, p.Type)
			init := t.defaultValue()
			if p.Default != nil {
				init = ctx.evalCtx().eval(p.Default, t)
			}
			ref = e.newSignal(ctx, path+"."+p.Name+".open", t, init)
			e.sigDecl[path+"."+p.Name+".open"] = declSite{file: ent.File, pos: p.Pos}
		}
		ctx.signals[p.Name] = ref
	}

	if err := e.elabDecls(ctx, arch.Decls); err != nil {
		return err
	}
	return e.elabConcStmts(ctx, arch.Stmts, path)
}

func (e *elaborator) elabDecls(ctx *instCtx, decls []Decl) error {
	ec := ctx.evalCtx()
	for _, d := range decls {
		switch d := d.(type) {
		case *EnumTypeDecl:
			info := &EnumInfo{Name: d.Name, Lits: d.Literals}
			ctx.types[d.Name] = &Type{Kind: tEnum, Enum: info}
			for i, lit := range d.Literals {
				ctx.enums[lit] = EnumVal{Enum: info, Ord: i}
			}
		case *ConstDecl:
			t := e.resolveType(ctx, d.Type)
			v := ec.eval(d.Value, t)
			for _, name := range d.Names {
				ctx.consts[name] = v
				if t.Kind == tVec {
					ctx.types["__obj_"+name] = t
				}
			}
		case *SignalDecl:
			t := e.resolveType(ctx, d.Type)
			init := t.defaultValue()
			if d.Init != nil {
				init = ec.eval(d.Init, t)
			}
			for _, name := range d.Names {
				ctx.signals[name] = e.newSignal(ctx, ctx.path+"."+name, t, init)
				e.sigDecl[ctx.path+"."+name] = declSite{file: e.curFile, pos: d.Pos}
			}
		case *ComponentDecl:
			ctx.comps[d.Name] = d
		default:
			return fmt.Errorf("vhdl: %s: unsupported declaration %T", ctx.path, d)
		}
	}
	return nil
}

func (e *elaborator) elabConcStmts(ctx *instCtx, stmts []ConcStmt, path string) error {
	procN := 0
	for _, s := range stmts {
		switch s := s.(type) {
		case *ProcessStmt:
			label := s.Label
			if label == "" {
				procN++
				label = fmt.Sprintf("p%d", procN)
			}
			if err := e.elabProcess(ctx, s, path+"."+label); err != nil {
				return err
			}
		case *CondAssign:
			procN++
			ps := condAssignToProcess(s)
			// The equivalent process is sensitive to every signal read in
			// the conditions and waveform values (IEEE 1076 §11.6).
			seen := map[string]bool{}
			ps.Sensitivity = []string{}
			addSens := func(e Expr) {
				for _, n := range exprNames(e) {
					if _, isSig := ctx.signals[n]; isSig && !seen[n] {
						if _, isConst := ctx.consts[n]; isConst {
							continue
						}
						seen[n] = true
						ps.Sensitivity = append(ps.Sensitivity, n)
					}
				}
			}
			for _, arm := range s.Arms {
				addSens(arm.Cond)
				for _, w := range arm.Wave {
					addSens(w.Value)
				}
			}
			label := s.Label
			if label == "" {
				label = fmt.Sprintf("a%d", procN)
			}
			if err := e.elabProcess(ctx, ps, path+"."+label); err != nil {
				return err
			}
		case *SelAssign:
			procN++
			ps := selAssignToProcess(s)
			seen := map[string]bool{}
			ps.Sensitivity = []string{}
			addSens := func(e Expr) {
				for _, n := range exprNames(e) {
					if _, isSig := ctx.signals[n]; isSig && !seen[n] {
						if _, isConst := ctx.consts[n]; isConst {
							continue
						}
						seen[n] = true
						ps.Sensitivity = append(ps.Sensitivity, n)
					}
				}
			}
			addSens(s.Selector)
			for _, arm := range s.Arms {
				for _, w := range arm.Wave {
					addSens(w.Value)
				}
			}
			label := s.Label
			if label == "" {
				label = fmt.Sprintf("a%d", procN)
			}
			if err := e.elabProcess(ctx, ps, path+"."+label); err != nil {
				return err
			}
		case *InstStmt:
			if err := e.elabInst(ctx, s, path); err != nil {
				return err
			}
		case *GenerateStmt:
			ec := ctx.evalCtx()
			lo, hi := ec.evalInt(s.Lo), ec.evalInt(s.Hi)
			step := int64(1)
			if s.Downto {
				step = -1
			}
			for i := lo; (step > 0 && i <= hi) || (step < 0 && i >= hi); i += step {
				saved, had := ctx.consts[s.Var]
				ctx.consts[s.Var] = i
				err := e.elabConcStmts(ctx, s.Body, fmt.Sprintf("%s.%s(%d)", path, s.Label, i))
				if had {
					ctx.consts[s.Var] = saved
				} else {
					delete(ctx.consts, s.Var)
				}
				if err != nil {
					return err
				}
			}
		default:
			return fmt.Errorf("vhdl: %s: unsupported concurrent statement %T", path, s)
		}
	}
	return nil
}

// condAssignToProcess desugars a concurrent (conditional) signal assignment
// into the equivalent process per IEEE Std 1076 §11.6.
func condAssignToProcess(ca *CondAssign) *ProcessStmt {
	mkAssign := func(arm CondArm) []Stmt {
		return []Stmt{&SigAssign{
			Pos: ca.Pos, Target: ca.Target, Wave: arm.Wave,
			Transport: ca.Transport, Reject: ca.Reject,
		}}
	}
	var body []Stmt
	if len(ca.Arms) == 1 && ca.Arms[0].Cond == nil {
		body = mkAssign(ca.Arms[0])
	} else {
		ifst := &IfStmt{Pos: ca.Pos}
		for i, arm := range ca.Arms {
			switch {
			case i == 0:
				ifst.Cond = arm.Cond
				ifst.Then = mkAssign(arm)
			case arm.Cond != nil:
				ifst.Elifs = append(ifst.Elifs, Elif{Cond: arm.Cond, Then: mkAssign(arm)})
			default:
				ifst.Else = mkAssign(arm)
			}
		}
		body = []Stmt{ifst}
	}
	return &ProcessStmt{Pos: ca.Pos, Label: ca.Label, Body: body}
}

func (e *elaborator) elabInst(ctx *instCtx, inst *InstStmt, path string) error {
	// Resolve the instantiated unit: component declarations bind to the
	// like-named entity (default binding), direct instantiation names the
	// entity itself.
	unit := inst.Unit
	var ports []*PortDecl
	var gens []*GenericDecl
	if comp, ok := ctx.comps[unit]; ok && !inst.DirectEnt {
		ports, gens = comp.Ports, comp.Generics
	}
	ent, ok := e.lib.entities[unit]
	if !ok {
		return &Error{File: e.curFile, Line: inst.Pos.Line, Col: inst.Pos.Col,
			Msg: fmt.Sprintf("%s: no entity %q for instance %q", path, unit, inst.Label)}
	}
	if ports == nil {
		ports, gens = ent.Ports, ent.Generics
	}

	ec := ctx.evalCtx()
	generics := map[string]kernel.Value{}
	for i, a := range inst.GenericMap {
		name := a.Formal
		if name == "" {
			if i >= len(gens) {
				return &Error{File: e.curFile, Line: inst.Pos.Line, Col: inst.Pos.Col,
					Msg: fmt.Sprintf("%s: too many generic associations", path)}
			}
			name = gens[i].Name
		}
		if a.Actual != nil {
			generics[name] = ec.eval(a.Actual, nil)
		}
	}

	bindings := map[string]*sigRef{}
	for i, a := range inst.PortMap {
		name := a.Formal
		if name == "" {
			if i >= len(ports) {
				return &Error{File: e.curFile, Line: inst.Pos.Line, Col: inst.Pos.Col,
					Msg: fmt.Sprintf("%s: too many port associations", path)}
			}
			name = ports[i].Name
		}
		if a.Actual == nil {
			continue // open
		}
		ref, err := e.actualToSignal(ctx, a.Actual, inst.Pos, path, inst.Label, name)
		if err != nil {
			return err
		}
		bindings[name] = ref
	}
	return e.elabInstance(ent, path+"."+inst.Label, generics, bindings)
}

// actualToSignal resolves a port-map actual: a signal name, or a constant
// expression (materialized as an undriven constant signal).
func (e *elaborator) actualToSignal(ctx *instCtx, actual Expr, pos Pos, path, label, formal string) (*sigRef, error) {
	if n, ok := actual.(*Name); ok && n.Args == nil && !n.HasSlice && n.Attr == "" {
		if ref, ok := ctx.signals[n.Ident]; ok {
			return ref, nil
		}
	}
	// Constant actual: evaluate and materialize.
	v := ctx.evalCtx().eval(actual, nil)
	var t *Type
	switch vv := v.(type) {
	case stdlogic.Std:
		t = &Type{Kind: tStd}
	case stdlogic.Vec:
		t = &Type{Kind: tVec, Lo: int64(len(vv)) - 1, Hi: 0, Downto: true}
	case bool:
		t = &Type{Kind: tBool}
	case int64:
		t = &Type{Kind: tInt, Lo: -1 << 62, Hi: 1<<62 - 1}
	default:
		return nil, &Error{File: e.curFile, Line: pos.Line, Col: pos.Col,
			Msg: fmt.Sprintf("%s: unsupported port actual for %s.%s", path, label, formal)}
	}
	name := fmt.Sprintf("%s.%s.%s.const", path, label, formal)
	return e.newSignal(ctx, name, t, v), nil
}

// elabProcess analyzes a process and adds it (plus its interpreter
// behavior) to the design.
func (e *elaborator) elabProcess(ctx *instCtx, ps *ProcessStmt, name string) error {
	// Local scope: variables, constants, enum types.
	localConsts := map[string]kernel.Value{}
	localTypes := map[string]*Type{}
	localEnums := map[string]EnumVal{}
	var varDecls []*VarDecl
	varTypes := map[string]*Type{}
	ec := &evalCtx{consts: merged(ctx.consts, localConsts), types: mergedT(ctx.types, localTypes), enums: mergedE(ctx.enums, localEnums)}
	for _, d := range ps.Decls {
		switch d := d.(type) {
		case *VarDecl:
			t := e.resolveType(ctx, d.Type)
			varDecls = append(varDecls, d)
			for _, n := range d.Names {
				varTypes[n] = t
			}
		case *ConstDecl:
			t := e.resolveType(ctx, d.Type)
			v := ec.eval(d.Value, t)
			for _, n := range d.Names {
				localConsts[n] = v
				if t.Kind == tVec {
					localTypes["__obj_"+n] = t
				}
			}
		case *EnumTypeDecl:
			info := &EnumInfo{Name: d.Name, Lits: d.Literals}
			localTypes[d.Name] = &Type{Kind: tEnum, Enum: info}
			for i, lit := range d.Literals {
				localEnums[lit] = EnumVal{Enum: info, Ord: i}
			}
		default:
			return &Error{File: e.curFile, Line: ps.Pos.Line, Col: ps.Pos.Col,
				Msg: fmt.Sprintf("%s: unsupported process declaration %T", name, d)}
		}
	}

	body := ps.Body
	if ps.Sensitivity != nil {
		// Sensitivity list = implicit trailing "wait on ...".
		body = append(append([]Stmt{}, body...), &WaitStmt{Pos: ps.Pos, On: ps.Sensitivity})
	}

	// Discover the read and written signals.
	sc := &sigScan{
		ctx:    ctx,
		vars:   varTypes,
		consts: ec.consts,
		enums:  ec.enums,
		types:  ec.types,
		reads:  map[string]bool{},
		writes: map[string]bool{},
	}
	sc.scanStmts(body)
	if sc.err != nil {
		// sigScan errors are positioned; stamp the file and fold in the
		// process name so the *Error survives to the caller intact.
		if ee, ok := sc.err.(*Error); ok {
			ee.File = e.curFile
			ee.Msg = fmt.Sprintf("%s: %s", name, ee.Msg)
			return ee
		}
		return fmt.Errorf("vhdl: %s: %w", name, sc.err)
	}

	var reads, writes []string
	for _, n := range sc.readOrder {
		reads = append(reads, n)
	}
	for _, n := range sc.writeOrder {
		writes = append(writes, n)
	}

	bi := &procInterp{
		name:      name,
		file:      e.curFile,
		pos:       ps.Pos,
		body:      body,
		varDecls:  varDecls,
		varTypes:  varTypes,
		consts:    ec.consts,
		types:     ec.types,
		enums:     ec.enums,
		readIdx:   map[string]int{},
		writeIdx:  map[string]int{},
		sigTypes:  map[string]*Type{},
		maxSteps:  1_000_000,
		hasReport: sc.hasReport,
	}
	var readSigs, writeSigs []*kernel.Signal
	for i, n := range reads {
		bi.readIdx[n] = i
		bi.sigTypes[n] = ctx.signals[n].typ
		readSigs = append(readSigs, ctx.signals[n].sig)
	}
	for i, n := range writes {
		bi.writeIdx[n] = i
		bi.sigTypes[n] = ctx.signals[n].typ
		writeSigs = append(writeSigs, ctx.signals[n].sig)
	}

	class := kernel.ClassComb
	switch {
	case sc.hasEdgeDetect:
		class = kernel.ClassRegister
	case len(reads) == 0:
		class = kernel.ClassStimulus
	}
	e.design.AddProcess(name, bi, readSigs, writeSigs, kernel.WithProcClass(class))
	return nil
}

func merged(a map[string]kernel.Value, b map[string]kernel.Value) map[string]kernel.Value {
	out := make(map[string]kernel.Value, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}

func mergedT(a, b map[string]*Type) map[string]*Type {
	out := make(map[string]*Type, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}

func mergedE(a, b map[string]EnumVal) map[string]EnumVal {
	out := make(map[string]EnumVal, len(a)+len(b))
	for k, v := range a {
		out[k] = v
	}
	for k, v := range b {
		out[k] = v
	}
	return out
}

// sigScan walks a process body resolving which names are signal reads and
// writes, with variables/constants/enum literals/builtins shadowing.
type sigScan struct {
	ctx    *instCtx
	vars   map[string]*Type
	consts map[string]kernel.Value
	enums  map[string]EnumVal
	types  map[string]*Type
	shadow []string // loop variables currently in scope

	reads, writes         map[string]bool
	readOrder, writeOrder []string
	hasEdgeDetect         bool
	hasReport             bool
	err                   error
}

var builtinFuncs = map[string]bool{
	"rising_edge": true, "falling_edge": true, "to_integer": true,
	"to_int": true, "conv_integer": true, "to_unsigned": true,
	"to_stdlogicvector": true, "std_logic_vector": true, "to_slv": true,
	"conv_std_logic_vector": true, "unsigned": true, "signed": true,
	"to_x01": true, "now": true,
}

// IsBuiltinName reports whether name is one of the predefined ieee/std
// function names the front end resolves intrinsically. Exported so design
// lint (internal/vhdl/lint) filters names with the same rules elaboration
// uses.
func IsBuiltinName(name string) bool { return builtinFuncs[name] }

func (s *sigScan) isShadowed(name string) bool {
	for _, v := range s.shadow {
		if v == name {
			return true
		}
	}
	if _, ok := s.vars[name]; ok {
		return true
	}
	if _, ok := s.consts[name]; ok {
		return true
	}
	if _, ok := s.enums[name]; ok {
		return true
	}
	return false
}

func (s *sigScan) markRead(name string, pos Pos) {
	if s.isShadowed(name) || builtinFuncs[name] {
		return
	}
	if _, ok := s.ctx.signals[name]; !ok {
		if s.err == nil {
			s.err = &Error{Line: pos.Line, Col: pos.Col, Msg: fmt.Sprintf("unknown name %q", name)}
		}
		return
	}
	if !s.reads[name] {
		s.reads[name] = true
		s.readOrder = append(s.readOrder, name)
	}
}

func (s *sigScan) markWrite(name string, pos Pos) {
	if s.isShadowed(name) {
		if s.err == nil {
			s.err = &Error{Line: pos.Line, Col: pos.Col, Msg: fmt.Sprintf("assignment to non-signal %q with <=", name)}
		}
		return
	}
	if _, ok := s.ctx.signals[name]; !ok {
		if s.err == nil {
			s.err = &Error{Line: pos.Line, Col: pos.Col, Msg: fmt.Sprintf("unknown signal %q", name)}
		}
		return
	}
	if !s.writes[name] {
		s.writes[name] = true
		s.writeOrder = append(s.writeOrder, name)
	}
}

func (s *sigScan) scanStmts(stmts []Stmt) {
	for _, st := range stmts {
		s.scanStmt(st)
	}
}

func (s *sigScan) scanStmt(st Stmt) {
	switch st := st.(type) {
	case *SigAssign:
		if st.Target.Args != nil || st.Target.HasSlice {
			if s.err == nil {
				s.err = &Error{Line: st.Pos.Line, Col: st.Pos.Col,
					Msg: "indexed or sliced signal assignment targets are not supported (assign the whole signal)"}
			}
			return
		}
		s.markWrite(st.Target.Ident, st.Pos)
		for _, w := range st.Wave {
			s.scanExpr(w.Value)
			s.scanExpr(w.After)
		}
		s.scanExpr(st.Reject)
	case *VarAssign:
		// Target is a variable; its index expressions are reads.
		for _, a := range st.Target.Args {
			s.scanExpr(a)
		}
		s.scanExpr(st.Target.SliceLo)
		s.scanExpr(st.Target.SliceHi)
		s.scanExpr(st.Value)
	case *IfStmt:
		s.scanExpr(st.Cond)
		s.scanStmts(st.Then)
		for _, e := range st.Elifs {
			s.scanExpr(e.Cond)
			s.scanStmts(e.Then)
		}
		s.scanStmts(st.Else)
	case *CaseStmt:
		s.scanExpr(st.Expr)
		for _, arm := range st.Arms {
			for _, c := range arm.Choices {
				s.scanExpr(c)
			}
			s.scanStmts(arm.Body)
		}
	case *ForLoop:
		s.scanExpr(st.Lo)
		s.scanExpr(st.Hi)
		if st.RangeAttr != nil {
			s.scanExpr(st.RangeAttr)
		}
		s.shadow = append(s.shadow, st.Var)
		s.scanStmts(st.Body)
		s.shadow = s.shadow[:len(s.shadow)-1]
	case *WhileLoop:
		s.scanExpr(st.Cond)
		s.scanStmts(st.Body)
	case *WaitStmt:
		for _, n := range st.On {
			s.markRead(n, st.Pos)
		}
		s.scanExpr(st.Until)
		s.scanExpr(st.For)
	case *ReportStmt:
		s.hasReport = true
		s.scanExpr(st.Assert)
		s.scanExpr(st.Message)
	case *ExitStmt:
		s.scanExpr(st.When)
	case *NextStmt:
		s.scanExpr(st.When)
	case *NullStmt:
	}
}

func (s *sigScan) scanExpr(e Expr) {
	switch e := e.(type) {
	case nil:
	case *Name:
		if e.Attr == "range" || e.Attr == "length" || e.Attr == "left" ||
			e.Attr == "right" || e.Attr == "high" || e.Attr == "low" ||
			e.Attr == "image" {
			// Type attributes may reference type names; only mark known
			// signals, and scan any attribute arguments ('image).
			if _, ok := s.ctx.signals[e.Ident]; ok {
				s.markRead(e.Ident, e.Pos)
			}
			for _, a := range e.Args {
				s.scanExpr(a)
			}
			return
		}
		if e.Attr == "event" {
			s.hasEdgeDetect = true
		}
		if e.Ident == "rising_edge" || e.Ident == "falling_edge" {
			s.hasEdgeDetect = true
		}
		s.markRead(e.Ident, e.Pos)
		for _, a := range e.Args {
			s.scanExpr(a)
		}
		s.scanExpr(e.SliceLo)
		s.scanExpr(e.SliceHi)
	case *Unary:
		s.scanExpr(e.X)
	case *Binary:
		s.scanExpr(e.L)
		s.scanExpr(e.R)
	case *Aggregate:
		for _, el := range e.Elems {
			s.scanExpr(el)
		}
		s.scanExpr(e.Others)
	}
}

// selAssignToProcess desugars a selected signal assignment into the
// equivalent case-statement process per IEEE Std 1076 §11.6.
func selAssignToProcess(sa *SelAssign) *ProcessStmt {
	cs := &CaseStmt{Pos: sa.Pos, Expr: sa.Selector}
	for _, arm := range sa.Arms {
		cs.Arms = append(cs.Arms, CaseArm{
			Choices: arm.Choices,
			Others:  arm.Others,
			Body: []Stmt{&SigAssign{
				Pos: sa.Pos, Target: sa.Target, Wave: arm.Wave,
				Transport: sa.Transport, Reject: sa.Reject,
			}},
		})
	}
	return &ProcessStmt{Pos: sa.Pos, Label: sa.Label, Body: []Stmt{cs}}
}

// exprNames lists every identifier referenced by an expression (callers
// filter for signals).
func exprNames(e Expr) []string {
	var out []string
	var walk func(Expr)
	walk = func(e Expr) {
		switch e := e.(type) {
		case nil:
		case *Name:
			if !builtinFuncs[e.Ident] {
				out = append(out, e.Ident)
			}
			for _, a := range e.Args {
				walk(a)
			}
			walk(e.SliceLo)
			walk(e.SliceHi)
		case *Unary:
			walk(e.X)
		case *Binary:
			walk(e.L)
			walk(e.R)
		case *Aggregate:
			for _, el := range e.Elems {
				walk(el)
			}
			walk(e.Others)
		}
	}
	walk(e)
	return out
}

var _ = strings.TrimSpace
