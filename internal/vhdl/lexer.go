package vhdl

import (
	"fmt"
	"strings"
)

// lexer tokenizes VHDL source. VHDL is case-insensitive: identifiers and
// keywords are lower-cased; character and string literals keep their case.
type lexer struct {
	file string
	src  string
	pos  int
	line int
	col  int
}

func newLexer(file, src string) *lexer {
	return &lexer{file: file, src: src, line: 1, col: 1}
}

func (l *lexer) errorf(line, col int, format string, args ...any) *Error {
	return &Error{File: l.file, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peek2() byte {
	if l.pos+1 >= len(l.src) {
		return 0
	}
	return l.src[l.pos+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// lex tokenizes the whole input.
func (l *lexer) lex() ([]token, error) {
	var toks []token
	lastEnd := -1 // byte offset just past the previous token
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			toks = append(toks, token{Kind: tokEOF, Line: l.line, Col: l.col})
			return toks, nil
		}
		line, col := l.line, l.col
		c := l.peek()
		switch {
		case isLetter(c):
			start := l.pos
			for l.pos < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
				l.advance()
			}
			word := strings.ToLower(l.src[start:l.pos])
			kind := tokIdent
			if keywords[word] {
				kind = tokKeyword
			}
			toks = append(toks, token{Kind: kind, Text: word, Line: line, Col: col})
		case isDigit(c):
			tok, err := l.lexNumber(line, col)
			if err != nil {
				return nil, err
			}
			toks = append(toks, tok)
		case c == '\'':
			// Character literal ('x') or tick (attribute). An attribute
			// tick immediately follows an identifier or ')' with no
			// whitespace; anything else of the form 'c' is a character
			// literal.
			isAttr := len(toks) > 0 && closesName(toks[len(toks)-1]) && lastEnd == l.pos
			if l.pos+2 < len(l.src) && l.src[l.pos+2] == '\'' && !isAttr {
				l.advance()
				ch := l.advance()
				l.advance()
				toks = append(toks, token{Kind: tokChar, Text: string(ch), Line: line, Col: col})
			} else {
				l.advance()
				toks = append(toks, token{Kind: tokTick, Line: line, Col: col})
			}
		case c == '"':
			l.advance()
			var sb strings.Builder
			for {
				if l.pos >= len(l.src) {
					return nil, l.errorf(line, col, "unterminated string literal")
				}
				ch := l.advance()
				if ch == '"' {
					if l.peek() == '"' { // escaped quote
						l.advance()
						sb.WriteByte('"')
						continue
					}
					break
				}
				sb.WriteByte(ch)
			}
			toks = append(toks, token{Kind: tokString, Text: sb.String(), Line: line, Col: col})
		default:
			tok, err := l.lexOperator(line, col)
			if err != nil {
				return nil, err
			}
			toks = append(toks, tok)
		}
		lastEnd = l.pos
	}
}

// closesName reports whether tok can end a name (so a following tick is an
// attribute tick, not a character literal).
func closesName(tok token) bool {
	return tok.Kind == tokIdent || tok.Kind == tokRParen ||
		(tok.Kind == tokKeyword && tok.Text == "all")
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.peek2() == '-':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func (l *lexer) lexNumber(line, col int) (token, error) {
	start := l.pos
	for l.pos < len(l.src) && (isDigit(l.peek()) || l.peek() == '_') {
		l.advance()
	}
	isReal := false
	if l.peek() == '.' && isDigit(l.peek2()) {
		isReal = true
		l.advance()
		for l.pos < len(l.src) && (isDigit(l.peek()) || l.peek() == '_') {
			l.advance()
		}
	}
	if l.peek() == 'e' || l.peek() == 'E' {
		return token{}, l.errorf(line, col, "exponent literals are not supported")
	}
	text := strings.ReplaceAll(l.src[start:l.pos], "_", "")
	kind := tokInt
	if isReal {
		kind = tokReal
	}
	return token{Kind: kind, Text: text, Line: line, Col: col}, nil
}

func (l *lexer) lexOperator(line, col int) (token, error) {
	c := l.advance()
	mk := func(k tokKind) (token, error) {
		return token{Kind: k, Line: line, Col: col}, nil
	}
	switch c {
	case ';':
		return mk(tokSemi)
	case ',':
		return mk(tokComma)
	case '(':
		return mk(tokLParen)
	case ')':
		return mk(tokRParen)
	case '+':
		return mk(tokPlus)
	case '-':
		return mk(tokMinus)
	case '&':
		return mk(tokAmp)
	case '.':
		return mk(tokDot)
	case '|':
		return mk(tokBar)
	case '*':
		if l.peek() == '*' {
			l.advance()
			return mk(tokStarStar)
		}
		return mk(tokStar)
	case '/':
		if l.peek() == '=' {
			l.advance()
			return mk(tokNeq)
		}
		return mk(tokSlash)
	case ':':
		if l.peek() == '=' {
			l.advance()
			return mk(tokAssign)
		}
		return mk(tokColon)
	case '<':
		if l.peek() == '=' {
			l.advance()
			return mk(tokArrowSig)
		}
		return mk(tokLt)
	case '>':
		if l.peek() == '=' {
			l.advance()
			return mk(tokGe)
		}
		return mk(tokGt)
	case '=':
		if l.peek() == '>' {
			l.advance()
			return mk(tokArrow)
		}
		return mk(tokEq)
	}
	return token{}, l.errorf(line, col, "unexpected character %q", string(c))
}
