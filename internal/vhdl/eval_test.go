package vhdl

import (
	"strings"
	"testing"
	"testing/quick"

	"govhdl/internal/kernel"
	"govhdl/internal/pdes"
	"govhdl/internal/stdlogic"
)

// evalStr parses and evaluates one expression in a constant context with
// the given integer constants.
func evalStr(t *testing.T, expr string, consts map[string]kernel.Value) kernel.Value {
	t.Helper()
	src := "entity e is end entity; architecture a of e is begin p : process begin x <= " +
		expr + "; wait; end process; end architecture;"
	df, err := Parse("e.vhd", src)
	if err != nil {
		t.Fatalf("parse %q: %v", expr, err)
	}
	ps := df.Archs[0].Stmts[0].(*ProcessStmt)
	sa := ps.Body[0].(*SigAssign)
	ec := &evalCtx{
		consts: map[string]kernel.Value{"true": true, "false": false},
		types:  builtinTypes(),
		enums:  map[string]EnumVal{},
	}
	for k, v := range consts {
		ec.consts[k] = v
	}
	var out kernel.Value
	func() {
		defer func() {
			if r := recover(); r != nil {
				if ee, ok := r.(evalError); ok {
					t.Fatalf("eval %q: %v", expr, ee.err)
				}
				panic(r)
			}
		}()
		out = ec.eval(sa.Wave[0].Value, nil)
	}()
	return out
}

func TestEvalIntegerOps(t *testing.T) {
	cases := map[string]int64{
		"1 + 2*3":       7,
		"(1 + 2) * 3":   9,
		"7 / 2":         3,
		"7 mod 3":       1,
		"(0-7) mod 3":   2, // VHDL mod takes the sign of the divisor
		"(0-7) rem 3":   -1,
		"2 ** 10":       1024,
		"abs (0-5)":     5,
		"10 - 4 - 3":    3, // left associative
		"n + 1":         43,
		"(n + 1) mod 4": 3,
	}
	for expr, want := range cases {
		got := evalStr(t, expr, map[string]kernel.Value{"n": int64(42)})
		if got != want {
			t.Errorf("%s = %v, want %d", expr, got, want)
		}
	}
}

func TestEvalBooleansAndComparisons(t *testing.T) {
	cases := map[string]bool{
		"1 < 2":                   true,
		"2 <= 2":                  true,
		"3 > 4":                   false,
		"3 /= 4":                  true,
		"true and false":          false,
		"true or false":           true,
		"true xor true":           false,
		"not false":               true,
		"(1 < 2) and (3 < 4)":     true,
		"'1' = '1'":               true,
		"'1' = '0'":               false,
		`"101" = "101"`:           true,
		`"101" /= "100"`:          true,
		`"0011" < "0100"`:         true, // unsigned ordering
		"1 ns < 2 ns":             true,
		"(2 ns + 3 ns) = (5 ns)":  true,
		"(10 ns - 4 ns) = (6 ns)": true,
		"(3 * (2 ns)) = (6 ns)":   true,
	}
	for expr, want := range cases {
		got := evalStr(t, expr, nil)
		if got != want {
			t.Errorf("%s = %v, want %v", expr, got, want)
		}
	}
}

func TestEvalVectorOps(t *testing.T) {
	n := map[string]kernel.Value{"v": stdlogic.MustVec("1100"), "w": stdlogic.MustVec("1010")}
	cases := map[string]string{
		"v and w":           `"1000"`,
		"v or w":            `"1110"`,
		"v xor w":           `"0110"`,
		"not v":             `"0011"`,
		"v + w":             `"0110"`, // 12+10 mod 16
		"v - w":             `"0010"`,
		"v + 1":             `"1101"`,
		"v sll 1":           `"1000"`,
		"v srl 2":           `"0011"`,
		`v & "1"`:           `"11001"`,
		`'1' & '0'`:         `"10"`,
		"to_integer(v)":     "12",
		"to_unsigned(5, 4)": `"0101"`,
	}
	for expr, want := range cases {
		got := evalStr(t, expr, n)
		if s := valueString(got); !strings.EqualFold(s, want) {
			t.Errorf("%s = %s, want %s", expr, s, want)
		}
	}
}

func TestEvalAggregates(t *testing.T) {
	ec := &evalCtx{consts: map[string]kernel.Value{}, types: builtinTypes(), enums: map[string]EnumVal{}}
	want := &Type{Kind: tVec, Lo: 7, Hi: 0, Downto: true}
	agg := &Aggregate{Others: &CharLit{Val: '0'}}
	v := ec.eval(agg, want).(stdlogic.Vec)
	if !v.Equal(stdlogic.MustVec("00000000")) {
		t.Errorf("others aggregate = %v", v)
	}
	agg2 := &Aggregate{Elems: []Expr{&CharLit{Val: '1'}}, Others: &CharLit{Val: '0'}}
	v2 := ec.eval(agg2, want).(stdlogic.Vec)
	if !v2.Equal(stdlogic.MustVec("10000000")) {
		t.Errorf("positional+others aggregate = %v", v2)
	}
}

func TestEvalIndexingRespectsDeclaredRange(t *testing.T) {
	// v : std_logic_vector(7 downto 0) := "10000001": v(7)='1', v(0)='1',
	// v(6)='0'.
	downto := &Type{Kind: tVec, Lo: 7, Hi: 0, Downto: true}
	ec := &evalCtx{
		consts: map[string]kernel.Value{"v": stdlogic.MustVec("10000001")},
		types:  map[string]*Type{"__obj_v": downto},
		enums:  map[string]EnumVal{},
	}
	idx := func(i int64) stdlogic.Std {
		n := &Name{Ident: "v", Args: []Expr{&IntLit{Val: i}}}
		return ec.eval(n, nil).(stdlogic.Std)
	}
	if idx(7) != stdlogic.L1 || idx(0) != stdlogic.L1 || idx(6) != stdlogic.L0 {
		t.Errorf("downto indexing broken: v(7)=%v v(6)=%v v(0)=%v", idx(7), idx(6), idx(0))
	}
	// "0 to 7" direction flips the mapping.
	ec.types["__obj_v"] = &Type{Kind: tVec, Lo: 0, Hi: 7}
	if idx(0) != stdlogic.L1 || idx(7) != stdlogic.L1 || idx(1) != stdlogic.L0 {
		t.Errorf("to indexing broken: v(0)=%v v(1)=%v v(7)=%v", idx(0), idx(1), idx(7))
	}
}

func TestEvalAttributes(t *testing.T) {
	downto := &Type{Kind: tVec, Lo: 7, Hi: 0, Downto: true}
	ec := &evalCtx{
		consts: map[string]kernel.Value{"v": stdlogic.NewVec(8, stdlogic.L0)},
		types:  map[string]*Type{"__obj_v": downto},
		enums:  map[string]EnumVal{},
	}
	attr := func(a string) kernel.Value {
		return ec.eval(&Name{Ident: "v", Attr: a}, nil)
	}
	if attr("length") != int64(8) || attr("left") != int64(7) ||
		attr("right") != int64(0) || attr("high") != int64(7) || attr("low") != int64(0) {
		t.Errorf("attributes: length=%v left=%v right=%v high=%v low=%v",
			attr("length"), attr("left"), attr("right"), attr("high"), attr("low"))
	}
}

func TestVecUintQuickAgainstEval(t *testing.T) {
	// Property: to_integer(to_unsigned(x, 16)) == x for any uint16.
	ec := &evalCtx{consts: map[string]kernel.Value{}, types: builtinTypes(), enums: map[string]EnumVal{}}
	f := func(x uint16) bool {
		call := &Name{Ident: "to_integer", Args: []Expr{
			&Name{Ident: "to_unsigned", Args: []Expr{&IntLit{Val: int64(x)}, &IntLit{Val: 16}}},
		}}
		return ec.eval(call, nil) == int64(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvalErrorsArePositioned(t *testing.T) {
	src := `entity e is end entity;
architecture a of e is
  signal x : integer := 0;
begin
  p : process begin
    x <= 1 / 0;
    wait;
  end process;
end architecture;`
	lib := NewLibrary()
	if err := lib.ParseAndAdd("dz.vhd", src); err != nil {
		t.Fatal(err)
	}
	d, err := lib.Elaborate("e")
	if err != nil {
		t.Fatal(err)
	}
	_, err = runSeqHelper(d)
	if err == nil {
		t.Fatal("division by zero did not fail")
	}
	if !strings.Contains(err.Error(), "division by zero") {
		t.Fatalf("unexpected error: %v", err)
	}
	if !pdes.IsModelError(err) {
		t.Fatalf("division by zero not classified as a model error: %v", err)
	}
}

// runAnySim runs a sequential simulation for the error tests.
func runAnySim(t *testing.T, d *kernel.Design) {
	t.Helper()
	if _, err := runSeqHelper(d); err != nil {
		t.Fatal(err)
	}
}
