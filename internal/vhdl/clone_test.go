package vhdl

import (
	"strings"
	"testing"

	"govhdl/internal/pdes"
	"govhdl/internal/trace"
	"govhdl/internal/vtime"
)

// cloneSrc exercises the clone-sensitive interpreter state: a vector
// variable (whose type registration mutates the types map at first run), a
// loop (frame stack) and multiple processes.
const cloneSrc = `
entity ctb is end entity;
architecture sim of ctb is
  signal clk : std_logic := '0';
  signal q : std_logic_vector(3 downto 0) := "0000";
begin
  clock : process
  begin
    clk <= '0';
    wait for 5 ns;
    clk <= '1';
    wait for 5 ns;
  end process;

  count : process (clk)
    variable v : std_logic_vector(3 downto 0) := "0000";
    variable carry : std_logic;
  begin
    if rising_edge(clk) then
      carry := '1';
      for i in 0 to 3 loop
        if carry = '1' and v(i) = '0' then
          v(i) := '1';
          carry := '0';
        elsif carry = '1' then
          v(i) := '0';
        end if;
      end loop;
      q <= v after 1 ns;
    end if;
  end process;
end architecture;
`

func TestCloneFreshReproducesTrace(t *testing.T) {
	proto := elaborate(t, cloneSrc, "ctb")
	const until = 100 * vtime.NS

	run := func() []string {
		t.Helper()
		c, err := proto.CloneFresh()
		if err != nil {
			t.Fatalf("CloneFresh: %v", err)
		}
		sys := c.Build()
		rec := trace.NewRecorder()
		if _, err := pdes.RunSequential(sys, until, rec); err != nil {
			t.Fatalf("simulate clone: %v", err)
		}
		return rec.Lines(sys)
	}

	first := run()
	if len(first) == 0 {
		t.Fatal("clone produced an empty trace")
	}
	// Repeated clones of the same prototype must be byte-identical: the
	// design-cache contract — elaborate once, simulate many times.
	for i := 0; i < 3; i++ {
		if got := run(); strings.Join(got, "\n") != strings.Join(first, "\n") {
			t.Fatalf("clone run %d diverged from the first run:\n%s\n--- vs ---\n%s",
				i+2, strings.Join(got, "\n"), strings.Join(first, "\n"))
		}
	}
	// The clones counted: the counter actually advanced through vector
	// variable state, so the runs above were not vacuous.
	joined := strings.Join(first, "\n")
	for _, w := range []string{`= "0001"`, `= "0100"`} {
		if !strings.Contains(joined, w) {
			t.Fatalf("trace missing %q:\n%s", w, joined)
		}
	}
	// The prototype itself stayed unbuilt and reusable.
	if _, err := proto.CloneFresh(); err != nil {
		t.Fatalf("prototype no longer clonable: %v", err)
	}
}

func TestCloneFreshIndependentState(t *testing.T) {
	proto := elaborate(t, cloneSrc, "ctb")
	c1, err := proto.CloneFresh()
	if err != nil {
		t.Fatal(err)
	}
	c2, err := proto.CloneFresh()
	if err != nil {
		t.Fatal(err)
	}
	// Run the first clone to completion, then the second: if interpreter
	// state (vars, frame stack, vector type registrations) leaked between
	// clones, the second run would start mid-flight and diverge.
	s1 := c1.Build()
	r1 := trace.NewRecorder()
	if _, err := pdes.RunSequential(s1, 60*vtime.NS, r1); err != nil {
		t.Fatal(err)
	}
	s2 := c2.Build()
	r2 := trace.NewRecorder()
	if _, err := pdes.RunSequential(s2, 60*vtime.NS, r2); err != nil {
		t.Fatal(err)
	}
	l1, l2 := r1.Lines(s1), r2.Lines(s2)
	if strings.Join(l1, "\n") != strings.Join(l2, "\n") {
		t.Fatalf("sequential clone runs diverged:\n%s\n--- vs ---\n%s",
			strings.Join(l1, "\n"), strings.Join(l2, "\n"))
	}
}
