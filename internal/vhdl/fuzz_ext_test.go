package vhdl_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"govhdl/internal/vhdl"
	"govhdl/internal/vhdl/lint"
)

// FuzzParse checks the parser's contract: any input either parses or fails
// with a positioned *vhdl.Error — never a panic, never an unbounded
// recursion. Successfully parsed files must additionally survive design lint
// and library filing, since the govhdld server runs both on untrusted
// uploads before any validation.
func FuzzParse(f *testing.F) {
	// Seed with every shipped design and lint fixture, so mutations start
	// from realistic VHDL rather than noise.
	for _, pat := range []string{
		"../../testdata/*.vhd",
		"../../examples/vhdl/*.vhd",
		"lint/testdata/*.vhd",
	} {
		paths, err := filepath.Glob(pat)
		if err != nil {
			f.Fatal(err)
		}
		for _, p := range paths {
			b, err := os.ReadFile(p)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(string(b))
		}
	}
	// Adversarial shapes: deep nesting, truncation, junk.
	f.Add(strings.Repeat("(", 1000))
	f.Add("architecture a of e is begin p : process begin " + strings.Repeat("if x then ", 500))
	f.Add("entity e is port (a : in bit")
	f.Add("entity e is end; architecture a of e is begin x <= ")

	f.Fuzz(func(t *testing.T, src string) {
		df, err := vhdl.Parse("fuzz.vhd", src)
		if err != nil {
			var pe *vhdl.Error
			if !errors.As(err, &pe) {
				t.Fatalf("Parse returned a non-*vhdl.Error: %T: %v", err, err)
			}
			if pe.File != "fuzz.vhd" {
				t.Fatalf("parse error lost its file: %v", err)
			}
			return
		}
		lint.Analyze(df)
		lib := vhdl.NewLibrary()
		_ = lib.Add(df)
	})
}
