package vhdl

// ---- Concurrent statements ----

func (p *parser) parseConcStmt() (ConcStmt, error) {
	// Optional label.
	label := ""
	if p.at(tokIdent) && p.toks[p.pos+1].Kind == tokColon {
		label = p.next().Text
		p.next() // colon
	}
	switch {
	case p.isKw("process"):
		return p.parseProcess(label)
	case p.isKw("with"):
		return p.parseSelAssign(label)
	case p.isKw("for"):
		return p.parseGenerate(label)
	case p.isKw("component"), p.isKw("entity"):
		return p.parseInst(label)
	case p.at(tokIdent):
		// Either an instantiation ("label: unit port map (...)") or a
		// concurrent signal assignment ("name <= ...").
		if label != "" && !p.looksLikeAssign() {
			return p.parseInst(label)
		}
		return p.parseCondAssign(label)
	}
	return nil, p.errorf("unsupported concurrent statement starting with %v", p.cur())
}

// looksLikeAssign scans ahead for "<=" before the next semicolon at paren
// depth zero, distinguishing "lbl: name <= e;" from "lbl: comp port map".
func (p *parser) looksLikeAssign() bool {
	depth := 0
	for i := p.pos; i < len(p.toks); i++ {
		switch p.toks[i].Kind {
		case tokLParen:
			depth++
		case tokRParen:
			depth--
		case tokArrowSig:
			if depth == 0 {
				return true
			}
		case tokSemi, tokEOF:
			return false
		case tokKeyword:
			if w := p.toks[i].Text; depth == 0 && (w == "port" || w == "generic") {
				return false
			}
		}
	}
	return false
}

func (p *parser) parseProcess(label string) (*ProcessStmt, error) {
	pos := p.pos0()
	p.next() // process
	ps := &ProcessStmt{Pos: pos, Label: label}
	if p.accept(tokLParen) {
		names, err := p.parseIdentList()
		if err != nil {
			return nil, err
		}
		ps.Sensitivity = names
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
	}
	p.acceptKw("is")
	for !p.isKw("begin") {
		switch {
		case p.isKw("variable"):
			d, err := p.parseVarDecl()
			if err != nil {
				return nil, err
			}
			ps.Decls = append(ps.Decls, d)
		case p.isKw("constant"), p.isKw("type"):
			d, err := p.parseBlockDecl()
			if err != nil {
				return nil, err
			}
			ps.Decls = append(ps.Decls, d)
		default:
			return nil, p.errorf("unsupported process declaration starting with %v", p.cur())
		}
	}
	p.next() // begin
	body, err := p.parseStmts()
	if err != nil {
		return nil, err
	}
	ps.Body = body
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	if err := p.expectKw("process"); err != nil {
		return nil, err
	}
	if p.at(tokIdent) {
		p.next()
	}
	_, err = p.expect(tokSemi)
	return ps, err
}

func (p *parser) parseVarDecl() (*VarDecl, error) {
	pos := p.pos0()
	p.next() // variable
	names, err := p.parseIdentList()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon); err != nil {
		return nil, err
	}
	tr, err := p.parseTypeRef()
	if err != nil {
		return nil, err
	}
	var init Expr
	if p.accept(tokAssign) {
		if init, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return &VarDecl{Pos: pos, Names: names, Type: tr, Init: init}, nil
}

func (p *parser) parseCondAssign(label string) (*CondAssign, error) {
	pos := p.pos0()
	target, err := p.parseName()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokArrowSig); err != nil {
		return nil, err
	}
	ca := &CondAssign{Pos: pos, Label: label, Target: target}
	switch {
	case p.acceptKw("transport"):
		ca.Transport = true
	case p.acceptKw("reject"):
		if ca.Reject, err = p.parseExpr(); err != nil {
			return nil, err
		}
		if err := p.expectKw("inertial"); err != nil {
			return nil, err
		}
	case p.acceptKw("inertial"):
	}
	for {
		wave, err := p.parseWaveform()
		if err != nil {
			return nil, err
		}
		arm := CondArm{Wave: wave}
		if p.acceptKw("when") {
			if arm.Cond, err = p.parseExpr(); err != nil {
				return nil, err
			}
			ca.Arms = append(ca.Arms, arm)
			if err := p.expectKw("else"); err != nil {
				return nil, err
			}
			continue
		}
		ca.Arms = append(ca.Arms, arm)
		break
	}
	_, err = p.expect(tokSemi)
	return ca, err
}

// parseSelAssign parses "with sel select target <= wave when choices, ...;".
func (p *parser) parseSelAssign(label string) (*SelAssign, error) {
	pos := p.pos0()
	p.next() // with
	sel, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	target, err := p.parseName()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokArrowSig); err != nil {
		return nil, err
	}
	sa := &SelAssign{Pos: pos, Label: label, Selector: sel, Target: target}
	switch {
	case p.acceptKw("transport"):
		sa.Transport = true
	case p.acceptKw("reject"):
		if sa.Reject, err = p.parseExpr(); err != nil {
			return nil, err
		}
		if err := p.expectKw("inertial"); err != nil {
			return nil, err
		}
	case p.acceptKw("inertial"):
	}
	for {
		wave, err := p.parseWaveform()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("when"); err != nil {
			return nil, err
		}
		arm := SelArm{Wave: wave}
		if p.isKw("others") {
			p.next()
			arm.Others = true
		} else {
			for {
				c, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				arm.Choices = append(arm.Choices, c)
				if !p.accept(tokBar) {
					break
				}
			}
		}
		sa.Arms = append(sa.Arms, arm)
		if !p.accept(tokComma) {
			break
		}
	}
	_, err = p.expect(tokSemi)
	return sa, err
}

func (p *parser) parseInst(label string) (*InstStmt, error) {
	pos := p.pos0()
	if label == "" {
		return nil, p.errorf("instantiation requires a label")
	}
	inst := &InstStmt{Pos: pos, Label: label}
	switch {
	case p.acceptKw("entity"):
		inst.DirectEnt = true
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		// Accept "work.name" or a bare name.
		if p.accept(tokDot) {
			if name, err = p.expectIdent(); err != nil {
				return nil, err
			}
		}
		inst.Unit = name
		if p.accept(tokLParen) { // optional architecture name
			if _, err := p.expectIdent(); err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
		}
	default:
		p.acceptKw("component")
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		inst.Unit = name
	}
	var err error
	if p.isKw("generic") {
		p.next()
		if err := p.expectKw("map"); err != nil {
			return nil, err
		}
		if inst.GenericMap, err = p.parseAssocList(); err != nil {
			return nil, err
		}
	}
	if p.isKw("port") {
		p.next()
		if err := p.expectKw("map"); err != nil {
			return nil, err
		}
		if inst.PortMap, err = p.parseAssocList(); err != nil {
			return nil, err
		}
	}
	_, err = p.expect(tokSemi)
	return inst, err
}

func (p *parser) parseAssocList() ([]Assoc, error) {
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var out []Assoc
	for {
		var a Assoc
		// Named association: ident => actual.
		if p.at(tokIdent) && p.toks[p.pos+1].Kind == tokArrow {
			a.Formal = p.next().Text
			p.next() // =>
		}
		if p.isKw("open") {
			p.next()
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			a.Actual = e
		}
		out = append(out, a)
		if !p.accept(tokComma) {
			break
		}
	}
	_, err := p.expect(tokRParen)
	return out, err
}

func (p *parser) parseGenerate(label string) (*GenerateStmt, error) {
	pos := p.pos0()
	if label == "" {
		return nil, p.errorf("generate requires a label")
	}
	p.next() // for
	v, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("in"); err != nil {
		return nil, err
	}
	g := &GenerateStmt{Pos: pos, Label: label, Var: v}
	if g.Lo, err = p.parseExpr(); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKw("downto"):
		g.Downto = true
	case p.acceptKw("to"):
	default:
		return nil, p.errorf("expected 'to' or 'downto' in generate range")
	}
	if g.Hi, err = p.parseExpr(); err != nil {
		return nil, err
	}
	if err := p.expectKw("generate"); err != nil {
		return nil, err
	}
	for !p.isKw("end") {
		s, err := p.parseConcStmt()
		if err != nil {
			return nil, err
		}
		g.Body = append(g.Body, s)
	}
	p.next() // end
	if err := p.expectKw("generate"); err != nil {
		return nil, err
	}
	if p.at(tokIdent) {
		p.next()
	}
	_, err = p.expect(tokSemi)
	return g, err
}

// ---- Sequential statements ----

// parseStmts parses statements until end/elsif/else/when.
func (p *parser) parseStmts() ([]Stmt, error) {
	// Statement bodies recurse through if/loop/case arms; bounded like
	// expressions (see maxParseDepth).
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	var out []Stmt
	for {
		if p.isKw("end") || p.isKw("elsif") || p.isKw("else") || p.isKw("when") {
			return out, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
}

func (p *parser) parseStmt() (Stmt, error) {
	pos := p.pos0()
	// Optional loop label.
	label := ""
	if p.at(tokIdent) && p.toks[p.pos+1].Kind == tokColon {
		label = p.next().Text
		p.next()
	}
	switch {
	case p.isKw("if"):
		return p.parseIf()
	case p.isKw("case"):
		return p.parseCase()
	case p.isKw("for"), p.isKw("while"), p.isKw("loop"):
		return p.parseLoop(label)
	case p.isKw("wait"):
		return p.parseWait()
	case p.isKw("null"):
		p.next()
		_, err := p.expect(tokSemi)
		return &NullStmt{Pos: pos}, err
	case p.isKw("report"):
		p.next()
		msg, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sev := ""
		if p.acceptKw("severity") {
			if sev, err = p.expectIdent(); err != nil {
				return nil, err
			}
		}
		_, err = p.expect(tokSemi)
		return &ReportStmt{Pos: pos, Message: msg, Severity: sev}, err
	case p.isKw("assert"):
		p.next()
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st := &ReportStmt{Pos: pos, Assert: cond}
		if p.acceptKw("report") {
			if st.Message, err = p.parseExpr(); err != nil {
				return nil, err
			}
		}
		if p.acceptKw("severity") {
			if st.Severity, err = p.expectIdent(); err != nil {
				return nil, err
			}
		}
		_, err = p.expect(tokSemi)
		return st, err
	case p.isKw("exit"), p.isKw("next"):
		isExit := p.next().Text == "exit"
		lbl := ""
		if p.at(tokIdent) {
			lbl = p.next().Text
		}
		var when Expr
		var err error
		if p.acceptKw("when") {
			if when, err = p.parseExpr(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		if isExit {
			return &ExitStmt{Pos: pos, Label: lbl, When: when}, nil
		}
		return &NextStmt{Pos: pos, Label: lbl, When: when}, nil
	case p.at(tokIdent):
		return p.parseAssignStmt()
	}
	return nil, p.errorf("unsupported statement starting with %v", p.cur())
}

func (p *parser) parseAssignStmt() (Stmt, error) {
	pos := p.pos0()
	target, err := p.parseName()
	if err != nil {
		return nil, err
	}
	switch {
	case p.accept(tokAssign):
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &VarAssign{Pos: pos, Target: target, Value: v}, nil
	case p.accept(tokArrowSig):
		sa := &SigAssign{Pos: pos, Target: target}
		switch {
		case p.acceptKw("transport"):
			sa.Transport = true
		case p.acceptKw("reject"):
			if sa.Reject, err = p.parseExpr(); err != nil {
				return nil, err
			}
			if err := p.expectKw("inertial"); err != nil {
				return nil, err
			}
		case p.acceptKw("inertial"):
		}
		if sa.Wave, err = p.parseWaveform(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return sa, nil
	}
	return nil, p.errorf("expected ':=' or '<=' after name, found %v", p.cur())
}

func (p *parser) parseWaveform() ([]WaveElem, error) {
	var wave []WaveElem
	for {
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		we := WaveElem{Value: v}
		if p.acceptKw("after") {
			if we.After, err = p.parseExpr(); err != nil {
				return nil, err
			}
		}
		wave = append(wave, we)
		if !p.accept(tokComma) {
			return wave, nil
		}
	}
}

func (p *parser) parseIf() (*IfStmt, error) {
	pos := p.pos0()
	p.next() // if
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("then"); err != nil {
		return nil, err
	}
	st := &IfStmt{Pos: pos, Cond: cond}
	if st.Then, err = p.parseStmts(); err != nil {
		return nil, err
	}
	for p.isKw("elsif") {
		p.next()
		var e Elif
		if e.Cond, err = p.parseExpr(); err != nil {
			return nil, err
		}
		if err := p.expectKw("then"); err != nil {
			return nil, err
		}
		if e.Then, err = p.parseStmts(); err != nil {
			return nil, err
		}
		st.Elifs = append(st.Elifs, e)
	}
	if p.acceptKw("else") {
		if st.Else, err = p.parseStmts(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	if err := p.expectKw("if"); err != nil {
		return nil, err
	}
	_, err = p.expect(tokSemi)
	return st, err
}

func (p *parser) parseCase() (*CaseStmt, error) {
	pos := p.pos0()
	p.next() // case
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("is"); err != nil {
		return nil, err
	}
	st := &CaseStmt{Pos: pos, Expr: e}
	for p.isKw("when") {
		p.next()
		var arm CaseArm
		if p.isKw("others") {
			p.next()
			arm.Others = true
		} else {
			for {
				c, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				arm.Choices = append(arm.Choices, c)
				if !p.accept(tokBar) {
					break
				}
			}
		}
		if _, err := p.expect(tokArrow); err != nil {
			return nil, err
		}
		if arm.Body, err = p.parseStmts(); err != nil {
			return nil, err
		}
		st.Arms = append(st.Arms, arm)
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	if err := p.expectKw("case"); err != nil {
		return nil, err
	}
	_, err = p.expect(tokSemi)
	return st, err
}

func (p *parser) parseLoop(label string) (Stmt, error) {
	pos := p.pos0()
	switch {
	case p.acceptKw("for"):
		v, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("in"); err != nil {
			return nil, err
		}
		fl := &ForLoop{Pos: pos, Label: label, Var: v}
		// "x'range" iteration or "lo to hi".
		lo, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if n, ok := lo.(*Name); ok && n.Attr == "range" {
			fl.RangeAttr = n
		} else {
			fl.Lo = lo
			switch {
			case p.acceptKw("downto"):
				fl.Downto = true
			case p.acceptKw("to"):
			default:
				return nil, p.errorf("expected 'to' or 'downto' in for range")
			}
			if fl.Hi, err = p.parseExpr(); err != nil {
				return nil, err
			}
		}
		if err := p.expectKw("loop"); err != nil {
			return nil, err
		}
		if fl.Body, err = p.parseStmts(); err != nil {
			return nil, err
		}
		if err := p.endLoop(); err != nil {
			return nil, err
		}
		return fl, nil
	case p.acceptKw("while"):
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("loop"); err != nil {
			return nil, err
		}
		wl := &WhileLoop{Pos: pos, Label: label, Cond: cond}
		if wl.Body, err = p.parseStmts(); err != nil {
			return nil, err
		}
		if err := p.endLoop(); err != nil {
			return nil, err
		}
		return wl, nil
	default: // plain loop
		p.next() // loop
		wl := &WhileLoop{Pos: pos, Label: label}
		var err error
		if wl.Body, err = p.parseStmts(); err != nil {
			return nil, err
		}
		if err := p.endLoop(); err != nil {
			return nil, err
		}
		return wl, nil
	}
}

func (p *parser) endLoop() error {
	if err := p.expectKw("end"); err != nil {
		return err
	}
	if err := p.expectKw("loop"); err != nil {
		return err
	}
	if p.at(tokIdent) {
		p.next()
	}
	_, err := p.expect(tokSemi)
	return err
}

func (p *parser) parseWait() (*WaitStmt, error) {
	pos := p.pos0()
	p.next() // wait
	st := &WaitStmt{Pos: pos}
	var err error
	if p.acceptKw("on") {
		if st.On, err = p.parseIdentList(); err != nil {
			return nil, err
		}
	}
	if p.acceptKw("until") {
		if st.Until, err = p.parseExpr(); err != nil {
			return nil, err
		}
		st.HasCond = true
	}
	if p.acceptKw("for") {
		if st.For, err = p.parseExpr(); err != nil {
			return nil, err
		}
		st.HasFor = true
	}
	_, err = p.expect(tokSemi)
	return st, err
}
