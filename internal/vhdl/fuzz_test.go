package vhdl

import (
	"errors"
	"strings"
	"testing"
)

// FuzzLex checks the lexer's contract: any input either tokenizes to an
// EOF-terminated stream or fails with a positioned *Error — never a panic.
func FuzzLex(f *testing.F) {
	f.Add("entity e is end entity;")
	f.Add(`signal s : std_logic_vector(3 downto 0) := "1010"; -- comment`)
	f.Add("x <= '1' after 5 ns;\nwait for 10 ns;")
	f.Add("\"unterminated string")
	f.Add("'x")
	f.Add("16#ff# 2#1010# 'a' \"01XZ\"")
	f.Add(strings.Repeat("-", 100))
	f.Add("\x00\xff\x80 entity")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := newLexer("fuzz.vhd", src).lex()
		if err != nil {
			var pe *Error
			if !errors.As(err, &pe) {
				t.Fatalf("lex returned a non-*Error: %T: %v", err, err)
			}
			if pe.File != "fuzz.vhd" {
				t.Fatalf("lex error lost its file: %v", err)
			}
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != tokEOF {
			t.Fatal("token stream is not EOF-terminated")
		}
	})
}
