package vhdl

import (
	"encoding/gob"
	"fmt"

	"govhdl/internal/kernel"
	"govhdl/internal/stdlogic"
	"govhdl/internal/vtime"
)

func init() { gob.Register(EnumVal{}) }

// typeKind enumerates the supported VHDL type classes.
type typeKind uint8

const (
	tStd  typeKind = iota // std_logic / std_ulogic / bit
	tVec                  // std_logic_vector / bit_vector
	tBool                 // boolean
	tInt                  // integer / natural / positive (with ranges)
	tTime                 // time
	tEnum                 // user enumeration
)

// Type is an elaborated VHDL type.
type Type struct {
	Kind   typeKind
	Lo, Hi int64 // index range (tVec) or value range (tInt)
	Downto bool  // index direction (tVec)
	Enum   *EnumInfo
}

// EnumInfo describes a user enumeration type.
type EnumInfo struct {
	Name string
	Lits []string
}

// EnumVal is a value of a user enumeration type.
type EnumVal struct {
	Enum *EnumInfo
	Ord  int
}

// EqualValue implements kernel.Equaler: enumeration values compare by type
// name and position, so equality survives gob transfer across processes
// (pointer identity does not).
func (v EnumVal) EqualValue(other any) bool {
	o, ok := other.(EnumVal)
	return ok && o.Enum != nil && v.Enum != nil &&
		o.Enum.Name == v.Enum.Name && o.Ord == v.Ord
}

func (v EnumVal) String() string {
	if v.Ord >= 0 && v.Ord < len(v.Enum.Lits) {
		return v.Enum.Lits[v.Ord]
	}
	return fmt.Sprintf("%s#%d", v.Enum.Name, v.Ord)
}

// timeVal is a VHDL time value (femtoseconds).
type timeVal = vtime.Time

func (t *Type) String() string {
	switch t.Kind {
	case tStd:
		return "std_logic"
	case tVec:
		dir := "to"
		if t.Downto {
			dir = "downto"
		}
		return fmt.Sprintf("std_logic_vector(%d %s %d)", t.Lo, dir, t.Hi)
	case tBool:
		return "boolean"
	case tInt:
		return "integer"
	case tTime:
		return "time"
	case tEnum:
		return t.Enum.Name
	}
	return "?"
}

// Width returns the element count of a vector type.
func (t *Type) Width() int {
	if t.Kind != tVec {
		return 1
	}
	if t.Downto {
		return int(t.Lo - t.Hi + 1)
	}
	return int(t.Hi - t.Lo + 1)
}

// indexOffset maps a VHDL index to the 0-based element offset (MSB-first
// storage: offset 0 is the leftmost element).
func (t *Type) indexOffset(idx int64) (int, error) {
	if t.Kind != tVec {
		return 0, fmt.Errorf("indexing a non-array value of type %s", t)
	}
	var off int64
	if t.Downto {
		if idx > t.Lo || idx < t.Hi {
			return 0, fmt.Errorf("index %d out of range %d downto %d", idx, t.Lo, t.Hi)
		}
		off = t.Lo - idx
	} else {
		if idx < t.Lo || idx > t.Hi {
			return 0, fmt.Errorf("index %d out of range %d to %d", idx, t.Lo, t.Hi)
		}
		off = idx - t.Lo
	}
	return int(off), nil
}

// defaultValue returns the VHDL default initial value: the leftmost value
// of the type.
func (t *Type) defaultValue() kernel.Value {
	switch t.Kind {
	case tStd:
		return stdlogic.U
	case tVec:
		return stdlogic.NewVec(t.Width(), stdlogic.U)
	case tBool:
		return false
	case tInt:
		return t.Lo
	case tTime:
		return timeVal(0)
	case tEnum:
		return EnumVal{Enum: t.Enum, Ord: 0}
	}
	return nil
}

// builtinTypes are always in scope (std + ieee.std_logic_1164).
func builtinTypes() map[string]*Type {
	intT := &Type{Kind: tInt, Lo: -1 << 62, Hi: 1<<62 - 1}
	return map[string]*Type{
		"std_logic":  {Kind: tStd},
		"std_ulogic": {Kind: tStd},
		"bit":        {Kind: tStd},
		"boolean":    {Kind: tBool},
		"integer":    intT,
		"natural":    {Kind: tInt, Lo: 0, Hi: 1<<62 - 1},
		"positive":   {Kind: tInt, Lo: 1, Hi: 1<<62 - 1},
		"time":       {Kind: tTime},
	}
}

// valueString renders a kernel value as VHDL-ish text (for report messages
// and error diagnostics).
func valueString(v kernel.Value) string {
	switch val := v.(type) {
	case stdlogic.Std:
		return val.String()
	case stdlogic.Vec:
		return val.String()
	case bool:
		if val {
			return "true"
		}
		return "false"
	case int64:
		return fmt.Sprintf("%d", val)
	case timeVal:
		return val.String()
	case EnumVal:
		return val.String()
	case string:
		return val
	}
	return fmt.Sprint(v)
}
