package vhdl

// Pos is a source position.
type Pos struct {
	Line int
	Col  int
}

// ---- Design units ----

// DesignFile is a parsed VHDL source file.
type DesignFile struct {
	File     string
	Entities []*EntityDecl
	Archs    []*ArchBody
}

// EntityDecl is an entity declaration.
type EntityDecl struct {
	Pos      Pos
	File     string // source file the declaration was parsed from
	Name     string
	Generics []*GenericDecl
	Ports    []*PortDecl
}

// GenericDecl is one generic (integer constants only).
type GenericDecl struct {
	Pos     Pos
	Name    string
	Type    *TypeRef
	Default Expr // may be nil
}

// PortMode is a port direction.
type PortMode uint8

const (
	ModeIn PortMode = iota
	ModeOut
	ModeInOut
)

func (m PortMode) String() string {
	switch m {
	case ModeOut:
		return "out"
	case ModeInOut:
		return "inout"
	default:
		return "in"
	}
}

// PortDecl is one port.
type PortDecl struct {
	Pos     Pos
	Name    string
	Mode    PortMode
	Type    *TypeRef
	Default Expr // may be nil
}

// ArchBody is an architecture body.
type ArchBody struct {
	Pos        Pos
	File       string // source file the body was parsed from
	Name       string
	EntityName string
	Decls      []Decl
	Stmts      []ConcStmt
}

// ---- Declarations ----

// Decl is a block or process declarative item.
type Decl interface{ declNode() }

// SignalDecl declares signals.
type SignalDecl struct {
	Pos   Pos
	Names []string
	Type  *TypeRef
	Init  Expr // may be nil
}

// ConstDecl declares constants.
type ConstDecl struct {
	Pos   Pos
	Names []string
	Type  *TypeRef
	Value Expr
}

// VarDecl declares process variables.
type VarDecl struct {
	Pos   Pos
	Names []string
	Type  *TypeRef
	Init  Expr // may be nil
}

// EnumTypeDecl declares an enumeration type.
type EnumTypeDecl struct {
	Pos      Pos
	Name     string
	Literals []string
}

// ComponentDecl declares a component interface.
type ComponentDecl struct {
	Pos      Pos
	Name     string
	Generics []*GenericDecl
	Ports    []*PortDecl
}

func (*SignalDecl) declNode()    {}
func (*ConstDecl) declNode()     {}
func (*VarDecl) declNode()       {}
func (*EnumTypeDecl) declNode()  {}
func (*ComponentDecl) declNode() {}

// TypeRef is a type indication: a type mark with an optional constraint,
// e.g. std_logic_vector(7 downto 0) or integer range 0 to 15.
type TypeRef struct {
	Pos    Pos
	Name   string
	Lo, Hi Expr // constraint bounds (nil when unconstrained)
	Downto bool // direction of an index constraint
	HasRng bool
}

// ---- Concurrent statements ----

// ConcStmt is a concurrent statement.
type ConcStmt interface{ concNode() }

// ProcessStmt is a process.
type ProcessStmt struct {
	Pos         Pos
	Label       string
	Sensitivity []string // nil when absent
	Decls       []Decl
	Body        []Stmt
}

// CondAssign is a concurrent (conditional) signal assignment:
// target <= w1 when c1 else w2 when c2 else w3;
type CondAssign struct {
	Pos       Pos
	Label     string
	Target    *Name
	Transport bool
	Reject    Expr      // nil unless "reject t inertial"
	Arms      []CondArm // last arm's Cond is nil
}

// CondArm is one "waveform when cond" arm.
type CondArm struct {
	Wave []WaveElem
	Cond Expr // nil for the final else
}

// SelAssign is a selected signal assignment:
// with expr select target <= w1 when c1|c2, w2 when others;
type SelAssign struct {
	Pos       Pos
	Label     string
	Selector  Expr
	Target    *Name
	Transport bool
	Reject    Expr
	Arms      []SelArm
}

// SelArm is one "waveform when choices" arm of a selected assignment.
type SelArm struct {
	Wave    []WaveElem
	Choices []Expr // empty with Others
	Others  bool
}

// InstStmt instantiates a component or entity.
type InstStmt struct {
	Pos        Pos
	Label      string
	Unit       string // component or entity name
	DirectEnt  bool   // "entity work.foo" form
	GenericMap []Assoc
	PortMap    []Assoc
}

// Assoc is one association element (named or positional).
type Assoc struct {
	Formal string // "" for positional
	Actual Expr   // nil for open
}

// GenerateStmt is a for-generate.
type GenerateStmt struct {
	Pos    Pos
	Label  string
	Var    string
	Lo, Hi Expr
	Downto bool
	Body   []ConcStmt
}

func (*ProcessStmt) concNode()  {}
func (*SelAssign) concNode()    {}
func (*CondAssign) concNode()   {}
func (*InstStmt) concNode()     {}
func (*GenerateStmt) concNode() {}

// ---- Sequential statements ----

// Stmt is a sequential statement.
type Stmt interface{ stmtNode() }

// WaveElem is one "value [after delay]" waveform element.
type WaveElem struct {
	Value Expr
	After Expr // nil for no delay
}

// SigAssign is a sequential signal assignment.
type SigAssign struct {
	Pos       Pos
	Target    *Name
	Transport bool
	Reject    Expr // nil unless "reject t inertial"
	Wave      []WaveElem
}

// VarAssign is a variable assignment.
type VarAssign struct {
	Pos    Pos
	Target *Name
	Value  Expr
}

// IfStmt is if/elsif/else.
type IfStmt struct {
	Pos   Pos
	Cond  Expr
	Then  []Stmt
	Elifs []Elif
	Else  []Stmt
}

// Elif is one elsif arm.
type Elif struct {
	Cond Expr
	Then []Stmt
}

// CaseStmt is a case statement.
type CaseStmt struct {
	Pos  Pos
	Expr Expr
	Arms []CaseArm
}

// CaseArm is one "when choices =>" arm; Others marks "when others".
type CaseArm struct {
	Choices []Expr // empty when Others
	Others  bool
	Body    []Stmt
}

// ForLoop is a for loop.
type ForLoop struct {
	Pos    Pos
	Label  string
	Var    string
	Lo, Hi Expr
	Downto bool
	// RangeAttr, when set, iterates over a named object's range
	// (for i in x'range loop).
	RangeAttr *Name
	Body      []Stmt
}

// WhileLoop is a while (or plain) loop.
type WhileLoop struct {
	Pos   Pos
	Label string
	Cond  Expr // nil for a plain loop
	Body  []Stmt
}

// WaitStmt is wait [on ...] [until ...] [for ...].
type WaitStmt struct {
	Pos     Pos
	On      []string
	Until   Expr
	For     Expr
	HasFor  bool
	HasCond bool
}

// NullStmt is the null statement.
type NullStmt struct{ Pos Pos }

// ReportStmt is report/assert.
type ReportStmt struct {
	Pos      Pos
	Assert   Expr // nil for plain report
	Message  Expr // may be nil for assert without report
	Severity string
}

// ExitStmt is exit [label] [when cond].
type ExitStmt struct {
	Pos   Pos
	Label string
	When  Expr
}

// NextStmt is next [label] [when cond].
type NextStmt struct {
	Pos   Pos
	Label string
	When  Expr
}

func (*SigAssign) stmtNode()  {}
func (*VarAssign) stmtNode()  {}
func (*IfStmt) stmtNode()     {}
func (*CaseStmt) stmtNode()   {}
func (*ForLoop) stmtNode()    {}
func (*WhileLoop) stmtNode()  {}
func (*WaitStmt) stmtNode()   {}
func (*NullStmt) stmtNode()   {}
func (*ReportStmt) stmtNode() {}
func (*ExitStmt) stmtNode()   {}
func (*NextStmt) stmtNode()   {}

// ---- Expressions ----

// Expr is an expression node.
type Expr interface{ exprNode() }

// Name is an identifier with optional indexing/slicing/attribute suffixes:
// foo, foo(3), foo(7 downto 4), foo'event.
type Name struct {
	Pos   Pos
	Ident string
	// Index is non-nil for foo(expr) — also used for call arguments and
	// type conversions, disambiguated during analysis.
	Args []Expr
	// Slice bounds for foo(hi downto lo) / foo(lo to hi).
	SliceLo, SliceHi Expr
	SliceDownto      bool
	HasSlice         bool
	// Attr holds an attribute name after a tick.
	Attr string
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	Val int64
}

// TimeLit is a physical time literal (42 ns).
type TimeLit struct {
	Pos  Pos
	Val  int64
	Unit string
}

// CharLit is a character literal ('0').
type CharLit struct {
	Pos Pos
	Val byte
}

// StrLit is a string literal ("0101").
type StrLit struct {
	Pos Pos
	Val string
}

// Unary is a unary operation (not, -, +, abs).
type Unary struct {
	Pos Pos
	Op  string
	X   Expr
}

// Binary is a binary operation.
type Binary struct {
	Pos  Pos
	Op   string
	L, R Expr
}

// Aggregate supports (others => '0') and positional aggregates.
type Aggregate struct {
	Pos    Pos
	Elems  []Expr
	Others Expr // (others => e)
}

func (*Name) exprNode()      {}
func (*IntLit) exprNode()    {}
func (*TimeLit) exprNode()   {}
func (*CharLit) exprNode()   {}
func (*StrLit) exprNode()    {}
func (*Unary) exprNode()     {}
func (*Binary) exprNode()    {}
func (*Aggregate) exprNode() {}
