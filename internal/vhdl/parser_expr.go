package vhdl

import "strconv"

// Expression grammar with VHDL's operator precedence:
//
//	expr       := relation { (and|or|nand|nor|xor|xnor) relation }
//	relation   := shift [ (=|/=|<|<=|>|>=) shift ]
//	shift      := simple [ (sll|srl) simple ]
//	simple     := [+|-] term { (+|-|&) term }
//	term       := factor { (*|/|mod|rem) factor }
//	factor     := primary [** primary] | abs primary | not primary
//	primary    := name | literal | aggregate | ( expr )
func (p *parser) parseExpr() (Expr, error) {
	// Expressions recurse through parsePrimary's parenthesized form; bound
	// the depth so hostile input fails with an error instead of overflowing
	// the stack.
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	l, err := p.parseRelation()
	if err != nil {
		return nil, err
	}
	for {
		op := ""
		for _, w := range []string{"and", "or", "nand", "nor", "xor", "xnor"} {
			if p.isKw(w) {
				op = w
				break
			}
		}
		if op == "" {
			return l, nil
		}
		pos := p.pos0()
		p.next()
		r, err := p.parseRelation()
		if err != nil {
			return nil, err
		}
		l = &Binary{Pos: pos, Op: op, L: l, R: r}
	}
}

func (p *parser) parseRelation() (Expr, error) {
	l, err := p.parseShift()
	if err != nil {
		return nil, err
	}
	op := ""
	switch {
	case p.at(tokEq):
		op = "="
	case p.at(tokNeq):
		op = "/="
	case p.at(tokLt):
		op = "<"
	case p.at(tokArrowSig):
		op = "<=" // in expression context, <= is less-or-equal
	case p.at(tokGt):
		op = ">"
	case p.at(tokGe):
		op = ">="
	}
	if op == "" {
		return l, nil
	}
	pos := p.pos0()
	p.next()
	r, err := p.parseShift()
	if err != nil {
		return nil, err
	}
	return &Binary{Pos: pos, Op: op, L: l, R: r}, nil
}

func (p *parser) parseShift() (Expr, error) {
	l, err := p.parseSimple()
	if err != nil {
		return nil, err
	}
	op := ""
	switch {
	case p.isKw("sll"):
		op = "sll"
	case p.isKw("srl"):
		op = "srl"
	}
	if op == "" {
		return l, nil
	}
	pos := p.pos0()
	p.next()
	r, err := p.parseSimple()
	if err != nil {
		return nil, err
	}
	return &Binary{Pos: pos, Op: op, L: l, R: r}, nil
}

func (p *parser) parseSimple() (Expr, error) {
	pos := p.pos0()
	neg := false
	if p.accept(tokMinus) {
		neg = true
	} else {
		p.accept(tokPlus)
	}
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	if neg {
		l = &Unary{Pos: pos, Op: "-", X: l}
	}
	for {
		op := ""
		switch {
		case p.at(tokPlus):
			op = "+"
		case p.at(tokMinus):
			op = "-"
		case p.at(tokAmp):
			op = "&"
		}
		if op == "" {
			return l, nil
		}
		opos := p.pos0()
		p.next()
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		l = &Binary{Pos: opos, Op: op, L: l, R: r}
	}
}

func (p *parser) parseTerm() (Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		op := ""
		switch {
		case p.at(tokStar):
			op = "*"
		case p.at(tokSlash):
			op = "/"
		case p.isKw("mod"):
			op = "mod"
		case p.isKw("rem"):
			op = "rem"
		}
		if op == "" {
			return l, nil
		}
		pos := p.pos0()
		p.next()
		r, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		l = &Binary{Pos: pos, Op: op, L: l, R: r}
	}
}

func (p *parser) parseFactor() (Expr, error) {
	pos := p.pos0()
	switch {
	case p.isKw("not"):
		p.next()
		x, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: pos, Op: "not", X: x}, nil
	case p.isKw("abs"):
		p.next()
		x, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: pos, Op: "abs", X: x}, nil
	}
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	if p.at(tokStarStar) {
		p.next()
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &Binary{Pos: pos, Op: "**", L: l, R: r}, nil
	}
	return l, nil
}

// timeUnits maps VHDL physical time unit names to femtoseconds.
var timeUnits = map[string]int64{
	"fs": 1, "ps": 1e3, "ns": 1e6, "us": 1e9, "ms": 1e12, "sec": 1e15,
}

func (p *parser) parsePrimary() (Expr, error) {
	pos := p.pos0()
	switch t := p.cur(); t.Kind {
	case tokInt:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer literal %q", t.Text)
		}
		// Physical literal: integer followed by a time unit.
		if p.at(tokIdent) {
			if _, ok := timeUnits[p.cur().Text]; ok {
				unit := p.next().Text
				return &TimeLit{Pos: pos, Val: v, Unit: unit}, nil
			}
		}
		return &IntLit{Pos: pos, Val: v}, nil
	case tokReal:
		return nil, p.errorf("real literals are not supported")
	case tokChar:
		p.next()
		return &CharLit{Pos: pos, Val: t.Text[0]}, nil
	case tokString:
		p.next()
		return &StrLit{Pos: pos, Val: t.Text}, nil
	case tokLParen:
		return p.parseParenOrAggregate()
	case tokIdent:
		return p.parseName()
	case tokKeyword:
		// Boolean literals and others arrive as identifiers in VHDL; only
		// "others" aggregates and similar are handled elsewhere.
		return nil, p.errorf("unexpected keyword %q in expression", t.Text)
	}
	return nil, p.errorf("unexpected %v in expression", p.cur())
}

// parseParenOrAggregate handles (expr), (others => e) and positional
// aggregates (a, b, c).
func (p *parser) parseParenOrAggregate() (Expr, error) {
	pos := p.pos0()
	p.next() // (
	if p.isKw("others") {
		p.next()
		if _, err := p.expect(tokArrow); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &Aggregate{Pos: pos, Others: e}, nil
	}
	first, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.accept(tokRParen) {
		return first, nil
	}
	agg := &Aggregate{Pos: pos, Elems: []Expr{first}}
	for p.accept(tokComma) {
		if p.isKw("others") {
			p.next()
			if _, err := p.expect(tokArrow); err != nil {
				return nil, err
			}
			if agg.Others, err = p.parseExpr(); err != nil {
				return nil, err
			}
			break
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		agg.Elems = append(agg.Elems, e)
	}
	_, err = p.expect(tokRParen)
	return agg, err
}

// parseName parses identifier with optional (args | slice) and 'attribute.
func (p *parser) parseName() (*Name, error) {
	pos := p.pos0()
	id, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	n := &Name{Pos: pos, Ident: id}
	if p.accept(tokLParen) {
		// Either a slice (expr to/downto expr) or argument list.
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		switch {
		case p.isKw("downto"), p.isKw("to"):
			n.SliceDownto = p.cur().Text == "downto"
			p.next()
			if n.SliceHi, err = p.parseExpr(); err != nil {
				return nil, err
			}
			n.SliceLo = first
			n.HasSlice = true
		default:
			n.Args = []Expr{first}
			for p.accept(tokComma) {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				n.Args = append(n.Args, a)
			}
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
	}
	if p.accept(tokTick) {
		var attr string
		switch {
		case p.at(tokIdent):
			attr = p.next().Text
		case p.isKw("range"):
			p.next()
			attr = "range"
		default:
			return nil, p.errorf("expected attribute name after tick")
		}
		n.Attr = attr
		// Attributes may take arguments: integer'image(x).
		if p.accept(tokLParen) {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				n.Args = append(n.Args, a)
				if !p.accept(tokComma) {
					break
				}
			}
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
		}
	}
	return n, nil
}
