package vhdl

import (
	"strings"
	"testing"

	"govhdl/internal/pdes"
	"govhdl/internal/stdlogic"
	"govhdl/internal/vtime"
)

const condAssignSrc = `
entity mux_tb is end entity;
architecture sim of mux_tb is
  signal sel : std_logic := '0';
  signal y : std_logic_vector(1 downto 0) := "00";
begin
  stim : process
  begin
    wait for 10 ns;
    sel <= '1';
    wait for 10 ns;
    sel <= '0';
    wait;
  end process;
  y <= "01" when sel = '0' else "10";
end architecture;
`

func TestConditionalConcurrentAssign(t *testing.T) {
	_, sys, rec := simulate(t, condAssignSrc, "mux_tb", 40*vtime.NS)
	traceContains(t, sys, rec,
		`sig:mux_tb.y @0fs`, `= "01"`, // initial evaluation
		`sig:mux_tb.y @10ns`, `= "10"`,
		`sig:mux_tb.y @20ns`,
	)
}

const vecCaseSrc = `
entity vc is end entity;
architecture sim of vc is
  signal code : std_logic_vector(1 downto 0) := "00";
  signal seg : integer := 0;
begin
  stim : process
  begin
    wait for 5 ns;
    code <= "01";
    wait for 5 ns;
    code <= "11";
    wait;
  end process;
  dec : process (code)
  begin
    case code is
      when "00" => seg <= 1;
      when "01" | "10" => seg <= 2;
      when others => seg <= 3;
    end case;
  end process;
end architecture;
`

func TestCaseOnVectorsWithChoices(t *testing.T) {
	_, sys, rec := simulate(t, vecCaseSrc, "vc", 30*vtime.NS)
	traceContains(t, sys, rec, "= 1", "= 2", "= 3")
}

const whileSrc = `
entity wl is end entity;
architecture sim of wl is
  signal total : integer := 0;
begin
  p : process
    variable i : integer := 0;
    variable acc : integer := 0;
  begin
    while i < 10 loop
      i := i + 1;
      acc := acc + i;
    end loop;
    total <= acc;
    wait;
  end process;
end architecture;
`

func TestWhileLoop(t *testing.T) {
	_, sys, rec := simulate(t, whileSrc, "wl", 10*vtime.NS)
	traceContains(t, sys, rec, "= 55")
}

const varVecSrc = `
entity vv is end entity;
architecture sim of vv is
  signal ones : integer := 0;
  signal flipped : std_logic_vector(3 downto 0) := "0000";
begin
  p : process
    variable v : std_logic_vector(3 downto 0) := "1010";
    variable n : integer := 0;
  begin
    v(0) := '1';
    for i in v'range loop
      if v(i) = '1' then
        n := n + 1;
      end if;
    end loop;
    ones <= n;
    flipped <= not v;
    wait;
  end process;
end architecture;
`

func TestVariableVectorElementAssignAndRangeLoop(t *testing.T) {
	_, sys, rec := simulate(t, varVecSrc, "vv", 10*vtime.NS)
	// v becomes "1011": three ones; not v = "0100".
	traceContains(t, sys, rec, "= 3", `= "0100"`)
}

const transportSrc = `
entity tr is end entity;
architecture sim of tr is
  signal a, t1, t2 : std_logic := '0';
begin
  stim : process
  begin
    wait for 10 ns;
    a <= '1';
    wait for 1 ns;
    a <= '0';
    wait;
  end process;
  t1 <= transport a after 5 ns;
  p2 : process (a)
  begin
    t2 <= reject 2 ns inertial a after 5 ns;
  end process;
end architecture;
`

func TestTransportAndRejectSyntax(t *testing.T) {
	_, sys, rec := simulate(t, transportSrc, "tr", 40*vtime.NS)
	// Transport passes the 1ns pulse.
	traceContains(t, sys, rec, "sig:tr.t1 @15ns", "sig:tr.t1 @16ns")
	// reject 2ns: the 1ns pulse is inside the rejection window -> swallowed.
	joined := strings.Join(rec.Lines(sys), "\n")
	if strings.Contains(joined, "sig:tr.t2 @15ns") {
		t.Errorf("reject-inertial let a 1ns pulse through:\n%s", joined)
	}
}

const multiWaveSrc = `
entity mw is end entity;
architecture sim of mw is
  signal s : std_logic := '0';
begin
  p : process
  begin
    s <= '1' after 2 ns, '0' after 5 ns, '1' after 9 ns;
    wait;
  end process;
end architecture;
`

func TestMultiElementWaveform(t *testing.T) {
	_, sys, rec := simulate(t, multiWaveSrc, "mw", 20*vtime.NS)
	traceContains(t, sys, rec, "sig:mw.s @2ns", "sig:mw.s @5ns", "sig:mw.s @9ns")
}

const sliceSrc = `
entity sl is end entity;
architecture sim of sl is
  constant WORD : std_logic_vector(7 downto 0) := "11001010";
  signal hi, lo : std_logic_vector(3 downto 0) := "0000";
begin
  p : process
  begin
    hi <= WORD(7 downto 4);
    lo <= WORD(3 downto 0);
    wait;
  end process;
end architecture;
`

func TestSliceReads(t *testing.T) {
	_, sys, rec := simulate(t, sliceSrc, "sl", 10*vtime.NS)
	traceContains(t, sys, rec, `= "1100"`, `= "1010"`)
}

const genericChainSrc = `
entity stage is
  generic (DELAY_NS : integer := 1);
  port (x : in std_logic; y : out std_logic);
end entity;
architecture rtl of stage is
begin
  y <= not x after DELAY_NS * 1 ns;
end architecture;

entity chain4 is end entity;
architecture structural of chain4 is
  signal n0, n1, n2 : std_logic := '0';
begin
  s1 : entity work.stage generic map (DELAY_NS => 2) port map (x => n0, y => n1);
  s2 : entity work.stage generic map (DELAY_NS => 3) port map (x => n1, y => n2);
  kick : process
  begin
    wait for 10 ns;
    n0 <= '1';
    wait;
  end process;
end architecture;
`

func TestGenericsControlDelays(t *testing.T) {
	_, sys, rec := simulate(t, genericChainSrc, "chain4", 40*vtime.NS)
	// n1 flips at 12ns (2ns stage), n2 at 15ns (3ns stage) — plus the
	// time-zero initial evaluations.
	traceContains(t, sys, rec, "sig:chain4.n1 @12ns", "sig:chain4.n2 @15ns")
}

func TestDeltaLimitFromVHDL(t *testing.T) {
	src := `
entity osc is end entity;
architecture sim of osc is
  signal a : std_logic := '0';
begin
  a <= not a;
end architecture;
`
	d := elaborate(t, src, "osc")
	_, err := runSeqHelper(d)
	if err == nil {
		t.Fatal("zero-delay oscillator did not trip the delta limit")
	}
	if !strings.Contains(strings.ToLower(err.Error()), "delta") {
		t.Fatalf("unexpected error: %v", err)
	}
	if !pdes.IsModelError(err) {
		t.Fatalf("delta limit not classified as a model error: %v", err)
	}
}

func TestInoutPortRoundTrip(t *testing.T) {
	src := `
entity buskeeper is
  port (b : inout std_logic);
end entity;
architecture rtl of buskeeper is
begin
  p : process
  begin
    wait for 10 ns;
    b <= '1';
    wait for 10 ns;
    b <= 'Z';
    wait;
  end process;
end entity;
`
	// "end entity" instead of "end architecture" is actually accepted by
	// some tools; ours requires the right closer — expect a parse error.
	lib := NewLibrary()
	if err := lib.ParseAndAdd("x.vhd", src); err == nil {
		// If parsing succeeded, elaboration+simulation must also work.
		d, err := lib.Elaborate("buskeeper")
		if err != nil {
			t.Fatal(err)
		}
		runAnySim(t, d)
	}
}

func TestWidthMismatchCaught(t *testing.T) {
	src := `
entity wm is end entity;
architecture sim of wm is
  signal v : std_logic_vector(3 downto 0) := "0000";
begin
  p : process
  begin
    v <= "101";
    wait;
  end process;
end architecture;
`
	d := elaborate(t, src, "wm")
	_, err := runSeqHelper(d)
	if err == nil {
		t.Fatal("width mismatch not caught")
	}
	if !strings.Contains(err.Error(), "width mismatch") || !pdes.IsModelError(err) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestStdValuesPropagate(t *testing.T) {
	// 'U'/'X' propagation through gates, the nine-value semantics end to
	// end: an uninitialized input yields 'U' through and gates per 1164.
	src := `
entity up is end entity;
architecture sim of up is
  signal u_in : std_logic;
  signal one : std_logic := '1';
  signal y : std_logic := '0';
begin
  y <= u_in and one;
end architecture;
`
	dsn, s, r := simulate(t, src, "up", 10*vtime.NS)
	traceContains(t, s, r, "= 'U'")
	sig := findSignal(t, dsn, "up.y")
	if v := dsn.Effective(sig); v != stdlogic.U {
		t.Errorf("y = %v, want 'U'", v)
	}
}

const selAssignSrc = `
entity sa is end entity;
architecture sim of sa is
  signal sel : std_logic_vector(1 downto 0) := "00";
  signal y : integer := 0;
begin
  stim : process
  begin
    wait for 5 ns;
    sel <= "01";
    wait for 5 ns;
    sel <= "10";
    wait for 5 ns;
    sel <= "11";
    wait;
  end process;
  with sel select
    y <= 10 when "00",
         20 when "01" | "10",
         30 when others;
end architecture;
`

func TestSelectedSignalAssignment(t *testing.T) {
	_, sys, rec := simulate(t, selAssignSrc, "sa", 30*vtime.NS)
	traceContains(t, sys, rec, "= 10", "= 20", "= 30")
	joined := strings.Join(rec.Lines(sys), "\n")
	// "01" and "10" both map to 20: only one change event between them.
	if strings.Count(joined, "= 20") != 1 {
		t.Errorf("expected exactly one change to 20:\n%s", joined)
	}
}

// TestParserNeverPanics mutates a valid source in many ways; the parser
// must always return an error or a tree, never panic.
func TestParserNeverPanics(t *testing.T) {
	base := counterSrc
	mutants := make([]string, 0, 256)
	// Truncations.
	for i := 0; i < len(base); i += 37 {
		mutants = append(mutants, base[:i])
	}
	// Character substitutions.
	subs := []byte{';', '(', ')', '\'', '"', '<', '=', '0', 'x', ' '}
	for i := 13; i < len(base); i += 101 {
		for _, c := range subs {
			b := []byte(base)
			b[i] = c
			mutants = append(mutants, string(b))
		}
	}
	// Deletions of 10-byte windows.
	for i := 0; i+10 < len(base); i += 53 {
		mutants = append(mutants, base[:i]+base[i+10:])
	}
	for k, m := range mutants {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("mutant %d panicked: %v", k, r)
				}
			}()
			_, _ = Parse("mut.vhd", m)
		}()
	}
}

// TestElaborateNeverPanicsOnParseableMutants: parseable mutants must
// elaborate or produce an error, never crash.
func TestElaborateNeverPanicsOnParseableMutants(t *testing.T) {
	base := enumFSMSrc
	for i := 0; i+8 < len(base); i += 67 {
		m := base[:i] + base[i+8:]
		df, err := Parse("mut.vhd", m)
		if err != nil {
			continue
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("mutant at %d: elaboration panicked: %v", i, r)
				}
			}()
			lib := NewLibrary()
			if err := lib.Add(df); err != nil {
				return
			}
			_, _ = lib.Elaborate("fsm")
		}()
	}
}

const imageSrc = `
entity im is end entity;
architecture sim of im is
  signal x : integer := 0;
begin
  p : process
    variable n : integer := 7;
  begin
    x <= n * 6;
    wait for 1 ns;
    report "x=" & integer'image(x) & " done";
    wait;
  end process;
end architecture;
`

func TestImageAttributeAndStringConcat(t *testing.T) {
	_, sys, rec := simulate(t, imageSrc, "im", 10*vtime.NS)
	traceContains(t, sys, rec, "report(note): x=42 done")
}
