package lint_test

import (
	"fmt"
	"os"
	"regexp"
	"strings"
	"testing"

	"govhdl/internal/vhdl"
	"govhdl/internal/vhdl/lint"
)

// The fixture harness adapts the govhdlvet "// want" idea to VHDL sources:
// a fixture line carrying
//
//	-- want V001@17 "regexp"
//
// expects exactly one diagnostic of that rule on that line at that column,
// with a message matching the regexp. The column is optional (-- want V001
// "re" checks rule+line+message only). Multiple wants may share a line.
// Diagnostics without a matching want, and wants without a matching
// diagnostic, both fail the fixture — so clean fixtures are simply files
// with no want comments.
//
// The lexer strips "--" comments before parsing, so expectations ride in
// the source without disturbing it; the harness scans the raw text.
var wantRE = regexp.MustCompile(`--\s*want\s+(V\d+)(?:@(\d+))?\s+"((?:[^"\\]|\\.)*)"`)

type want struct {
	rule string
	line int
	col  int // 0 = unchecked
	re   *regexp.Regexp
	hit  bool
}

func parseWants(t *testing.T, path, src string) []*want {
	t.Helper()
	var wants []*want
	for i, ln := range strings.Split(src, "\n") {
		for _, m := range wantRE.FindAllStringSubmatch(ln, -1) {
			col := 0
			if m[2] != "" {
				fmt.Sscanf(m[2], "%d", &col)
			}
			re, err := regexp.Compile(m[3])
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[3], err)
			}
			wants = append(wants, &want{rule: m[1], line: i + 1, col: col, re: re})
		}
	}
	return wants
}

// checkFixture lints one fixture file and matches diagnostics against its
// want expectations.
func checkFixture(t *testing.T, path string) []lint.Diagnostic {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	df, err := vhdl.Parse(path, string(src))
	if err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}
	diags := lint.Analyze(df)
	wants := parseWants(t, path, string(src))

	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if w.hit || w.rule != d.Rule || w.line != d.Pos.Line {
				continue
			}
			if w.col != 0 && w.col != d.Pos.Col {
				continue
			}
			if !w.re.MatchString(d.Message) {
				continue
			}
			w.hit = true
			matched = true
			break
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s", path, d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: missing diagnostic %s (col %d, message ~ %s)",
				path, w.line, w.rule, w.col, w.re)
		}
	}
	return diags
}
