entity loopy is
end entity;

architecture rtl of loopy is
  signal a, b, ring : bit := '0';
begin
  pa : process (b)
  begin
    a <= not b; -- want V007@5 "zero-delay combinational loop through \"a\", \"b\""
  end process;

  pb : process (a)
  begin
    b <= not a;
  end process;

  osc : ring <= not ring; -- want V007@9 "zero-delay combinational loop through \"ring\""
end architecture;
