library ieee;
use ieee.std_logic_1164.all;

entity mdc is
end entity;

architecture sim of mdc is
  signal s : std_logic := 'Z';
begin
  p1 : process
  begin
    s <= '1' after 10 ns;
    wait;
  end process;

  p2 : process
  begin
    s <= 'Z' after 20 ns;
    wait;
  end process;

  watch : process (s)
  begin
    report "s changed";
  end process;
end architecture;
