library ieee;
use ieee.std_logic_1164.all;

entity loopless is
end entity;

architecture rtl of loopless is
  signal clk : std_logic := '0';
  signal a, b, ring : std_logic := '0';
begin
  clkgen : process
  begin
    clk <= '1' after 5 ns;
    clk <= '0' after 10 ns;
    wait for 20 ns;
  end process;

  pa : process (b)
  begin
    a <= not b;
  end process;

  reg : process (clk)
  begin
    if rising_edge(clk) then
      b <= a;
    end if;
  end process;

  osc : ring <= not ring after 1 ns;

  watch : process (ring)
  begin
    report "ring changed";
  end process;
end architecture;
