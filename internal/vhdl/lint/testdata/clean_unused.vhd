entity livewire is
  port (d_in  : in bit;
        d_out : out bit);
end entity;

architecture rtl of livewire is
  signal mid : bit;
begin
  stage1 : mid <= d_in;
  stage2 : d_out <= mid after 1 ns;
end architecture;
