entity nw is
end entity;

architecture sim of nw is
  signal s : bit := '0';
begin
  spin : process -- want V006@10 "can never suspend"
  begin
    s <= not s;
  end process;
end architecture;
