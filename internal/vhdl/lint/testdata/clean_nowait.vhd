entity nwc is
end entity;

architecture sim of nwc is
  signal s : bit := '0';
begin
  stim : process
  begin
    s <= '1' after 5 ns;
    wait;
  end process;

  watch : process (s)
  begin
    report "s changed";
  end process;
end architecture;
