entity deadport is
  port (d_in  : in bit; -- want V005@9 "input port \"d_in\" is never read"
        d_out : out bit); -- want V004@9 "output port \"d_out\" is never driven"
end entity;

architecture rtl of deadport is
  signal ghost : bit; -- want V003@3 "never read or driven"
  signal stale : bit; -- want V004@3 "read but never driven"
  signal noisy : bit; -- want V005@3 "driven but never read"
begin
  use_stale : process (stale)
  begin
    report "stale changed";
  end process;

  drive_noisy : noisy <= '1';
end architecture;
