entity sensc is
end entity;

architecture rtl of sensc is
  signal a, b, y : integer := 0;
begin
  stim : process
  begin
    a <= 1;
    b <= 2;
    wait;
  end process;

  adder : process (a, b)
  begin
    y <= a + b;
  end process;

  watch : process (y)
  begin
    report "y changed";
  end process;
end architecture;
