entity sens is
end entity;

architecture rtl of sens is
  signal a, b, y : integer := 0;
begin
  stim : process
  begin
    a <= 1;
    b <= 2;
    wait;
  end process;

  adder : process (a)
  begin
    y <= a + b; -- want V002@14 "reads \"b\", which is not in its sensitivity list"
  end process;

  watch : process (y)
  begin
    report "y changed";
  end process;
end architecture;
