entity md is
end entity;

architecture sim of md is
  signal s : integer := 0;
begin
  p1 : process
  begin
    s <= 1 after 10 ns;
    wait;
  end process;

  p2 : process
  begin
    s <= 2 after 20 ns; -- want V001@5 "signal \"s\" has 2 drivers"
    wait;
  end process;

  watch : process (s)
  begin
    report "s changed";
  end process;
end architecture;
