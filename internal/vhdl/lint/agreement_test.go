package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"govhdl/internal/pdes"
	"govhdl/internal/trace"
	"govhdl/internal/vhdl"
	"govhdl/internal/vhdl/lint"
	"govhdl/internal/vtime"
)

// TestLintRuntimeAgreement checks that the lint rules predict real engine
// behavior: a design flagged with a fatal rule must actually fail when
// elaborated or simulated, and its clean counterpart must run to completion.
// This keeps the rules honest — a rule whose "bug" simulates fine is a rule
// whose message overstates the stakes.
func TestLintRuntimeAgreement(t *testing.T) {
	cases := []struct {
		fixture string
		top     string
		rule    string // fatal lint rule expected ("" for clean designs)
		runErr  string // substring of the elaboration/run failure ("" = must succeed)
	}{
		{"bad_multidriver.vhd", "md", "V001", "no resolution function"},
		{"clean_multidriver.vhd", "mdc", "", ""},
		{"bad_nowait.vhd", "nw", "V006", "without suspending"},
		{"clean_nowait.vhd", "nwc", "", ""},
	}
	for _, c := range cases {
		t.Run(c.fixture, func(t *testing.T) {
			src, err := os.ReadFile(filepath.Join("testdata", c.fixture))
			if err != nil {
				t.Fatal(err)
			}
			df, err := vhdl.Parse(c.fixture, string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}

			// Lint side of the table.
			diags := lint.Analyze(df)
			found := ""
			for _, d := range diags {
				if d.Severity == lint.SevError {
					found = d.Rule
					break
				}
			}
			if found != c.rule {
				t.Fatalf("lint fatal rule = %q, want %q (diags: %v)", found, c.rule, diags)
			}

			// Runtime side of the table.
			lib := vhdl.NewLibrary()
			if err := lib.Add(df); err != nil {
				t.Fatalf("library: %v", err)
			}
			d, err := lib.Elaborate(c.top)
			if err == nil {
				sys := d.Build()
				_, err = pdes.RunSequential(sys, 100*vtime.NS, trace.NewRecorder())
			}
			if c.runErr == "" {
				if err != nil {
					t.Fatalf("clean design failed at runtime: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("flagged design ran fine; lint rule %s promised a failure", c.rule)
			}
			if !strings.Contains(err.Error(), c.runErr) {
				t.Fatalf("runtime error = %q, want substring %q", err, c.runErr)
			}
			// The failure must be positioned in the user's source: the pdes
			// layer flattens model errors to text, so check for file:line.
			if !strings.Contains(err.Error(), c.fixture+":") {
				t.Fatalf("runtime error carries no source position: %q", err)
			}
		})
	}
}
