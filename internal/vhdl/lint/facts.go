package lint

import (
	"fmt"
	"sort"

	"govhdl/internal/vhdl"
)

// Facts is the extracted fact base: one Unit per (entity, architecture)
// pair, with per-signal driver/reader sets and per-process read/write/wait
// facts. Rules never walk the AST themselves — everything they need is here.
type Facts struct {
	Units []*Unit
	// entities indexes every parsed entity by name, for resolving the port
	// modes of instantiated units across files.
	entities map[string]*vhdl.EntityDecl
}

// Unit is the fact scope of one architecture body.
type Unit struct {
	File     string
	Entity   *vhdl.EntityDecl // nil when the named entity is not in the set
	Arch     *vhdl.ArchBody
	Signals  map[string]*SignalFact
	SigOrder []string // declaration order, for deterministic iteration
	Procs    []*ProcFact
}

// SignalFact aggregates everything known about one declared signal or port.
type SignalFact struct {
	Name     string
	File     string
	Pos      vhdl.Pos
	TypeName string
	// Resolved reports whether the type carries a resolution function in
	// this engine: the kernel attaches StdResolution/StdVecResolution to
	// std_logic-class and vector-class signals, and publishes only
	// drivers[0] for everything else.
	Resolved bool
	IsPort   bool
	Mode     vhdl.PortMode
	Drivers  []Endpoint
	Readers  []Endpoint
}

// Endpoint is one process or instance connection touching a signal.
type Endpoint struct {
	Proc  *ProcFact // nil for an instance connection
	Label string    // process label or instance label
	Pos   vhdl.Pos  // first write / read position
	// Delayed reports that every assignment this endpoint makes to the
	// signal carries an explicit "after" delay (drivers only).
	Delayed bool
}

// ProcKind distinguishes explicit processes from desugared concurrent
// assignments (which have well-defined implicit sensitivity, IEEE 1076
// §11.6, and so are exempt from sensitivity-list rules).
type ProcKind uint8

const (
	ProcExplicit ProcKind = iota
	ProcCondAssign
	ProcSelAssign
)

// ProcFact holds the per-process facts.
type ProcFact struct {
	Unit        *Unit
	Label       string
	Pos         vhdl.Pos
	Kind        ProcKind
	Sensitivity []string // nil when the process has none
	SensSet     map[string]bool
	HasWait     bool
	EdgeDetect  bool // rising_edge/falling_edge/'event anywhere in the body
	Reads       map[string]vhdl.Pos
	Writes      map[string]vhdl.Pos
	// DeltaWrites marks signals with at least one zero-delay assignment in
	// this process (a delta-cycle edge for loop detection).
	DeltaWrites map[string]bool
}

// Desc names a process in diagnostics: its label when it has one, otherwise
// its position.
func (p *ProcFact) Desc() string {
	what := "process"
	switch p.Kind {
	case ProcCondAssign, ProcSelAssign:
		what = "concurrent assignment"
	}
	if p.Label != "" {
		return fmt.Sprintf("%s %q", what, p.Label)
	}
	return fmt.Sprintf("%s at %d:%d", what, p.Pos.Line, p.Pos.Col)
}

// resolvedTypes are the type marks the elaborator gives a kernel resolution
// function (tStd -> StdResolution, tVec -> StdVecResolution). Multiple
// drivers on anything else silently lose every driver but the first.
var resolvedTypes = map[string]bool{
	"std_logic": true, "std_ulogic": true, "bit": true,
	"std_logic_vector": true, "std_ulogic_vector": true, "bit_vector": true,
	"unsigned": true, "signed": true,
}

// ExtractFacts runs phase one: walk the parsed files and build the fact
// base. The files form one design set, so instances resolve across files.
func ExtractFacts(files []*vhdl.DesignFile) *Facts {
	f := &Facts{entities: map[string]*vhdl.EntityDecl{}}
	for _, df := range files {
		for _, e := range df.Entities {
			if _, dup := f.entities[e.Name]; !dup {
				f.entities[e.Name] = e
			}
		}
	}
	for _, df := range files {
		for _, a := range df.Archs {
			f.Units = append(f.Units, extractUnit(f, df.File, a))
		}
	}
	return f
}

func extractUnit(f *Facts, file string, arch *vhdl.ArchBody) *Unit {
	u := &Unit{File: file, Entity: f.entities[arch.EntityName], Arch: arch,
		Signals: map[string]*SignalFact{}}

	declare := func(name, typeName string, pos vhdl.Pos, isPort bool, mode vhdl.PortMode) {
		if _, dup := u.Signals[name]; dup {
			return
		}
		u.Signals[name] = &SignalFact{
			Name: name, File: file, Pos: pos, TypeName: typeName,
			Resolved: resolvedTypes[typeName], IsPort: isPort, Mode: mode,
		}
		u.SigOrder = append(u.SigOrder, name)
	}
	if u.Entity != nil {
		for _, p := range u.Entity.Ports {
			declare(p.Name, typeName(p.Type), p.Pos, true, p.Mode)
		}
	}

	// Arch-level shadowing scope: constants, generics, enum literals and
	// component names are not signals even when a name collides.
	shadow := map[string]bool{}
	comps := map[string]*vhdl.ComponentDecl{}
	if u.Entity != nil {
		for _, g := range u.Entity.Generics {
			shadow[g.Name] = true
		}
	}
	for _, d := range arch.Decls {
		switch d := d.(type) {
		case *vhdl.SignalDecl:
			for _, n := range d.Names {
				declare(n, typeName(d.Type), d.Pos, false, vhdl.ModeIn)
			}
		case *vhdl.ConstDecl:
			for _, n := range d.Names {
				shadow[n] = true
			}
		case *vhdl.EnumTypeDecl:
			shadow[d.Name] = true
			for _, lit := range d.Literals {
				shadow[lit] = true
			}
		case *vhdl.ComponentDecl:
			comps[d.Name] = d
		}
	}

	ex := &unitExtractor{facts: f, unit: u, shadow: shadow, comps: comps}
	ex.concStmts(arch.Stmts, nil)
	return u
}

// unitExtractor walks one architecture's concurrent statements.
type unitExtractor struct {
	facts *Facts
	unit  *Unit
	// shadow holds arch-level non-signal names; loopVars the generate
	// variables currently in scope.
	shadow   map[string]bool
	loopVars []string
	comps    map[string]*vhdl.ComponentDecl
	procN    int
}

func (ex *unitExtractor) isSignal(name string) bool {
	if ex.shadow[name] || vhdl.IsBuiltinName(name) {
		return false
	}
	for _, v := range ex.loopVars {
		if v == name {
			return false
		}
	}
	_, ok := ex.unit.Signals[name]
	return ok
}

func (ex *unitExtractor) concStmts(stmts []vhdl.ConcStmt, _ []string) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *vhdl.ProcessStmt:
			ex.procN++
			ex.process(s)
		case *vhdl.CondAssign:
			ex.procN++
			p := ex.newProc(s.Label, s.Pos, ProcCondAssign)
			for _, arm := range s.Arms {
				ex.exprReads(p, arm.Cond)
				ex.wave(p, s.Target, arm.Wave)
			}
			ex.exprReads(p, s.Reject)
			ex.finishProc(p)
		case *vhdl.SelAssign:
			ex.procN++
			p := ex.newProc(s.Label, s.Pos, ProcSelAssign)
			ex.exprReads(p, s.Selector)
			for _, arm := range s.Arms {
				for _, c := range arm.Choices {
					ex.exprReads(p, c)
				}
				ex.wave(p, s.Target, arm.Wave)
			}
			ex.exprReads(p, s.Reject)
			ex.finishProc(p)
		case *vhdl.InstStmt:
			ex.instance(s)
		case *vhdl.GenerateStmt:
			ex.loopVars = append(ex.loopVars, s.Var)
			ex.concStmts(s.Body, nil)
			ex.loopVars = ex.loopVars[:len(ex.loopVars)-1]
		}
	}
}

func (ex *unitExtractor) newProc(label string, pos vhdl.Pos, kind ProcKind) *ProcFact {
	if label == "" {
		label = fmt.Sprintf("p%d", ex.procN)
	}
	return &ProcFact{
		Unit: ex.unit, Label: label, Pos: pos, Kind: kind,
		Reads: map[string]vhdl.Pos{}, Writes: map[string]vhdl.Pos{},
		DeltaWrites: map[string]bool{},
	}
}

// finishProc registers the process facts onto each touched signal.
func (ex *unitExtractor) finishProc(p *ProcFact) {
	ex.unit.Procs = append(ex.unit.Procs, p)
	for name, pos := range p.Writes {
		sf := ex.unit.Signals[name]
		sf.Drivers = append(sf.Drivers, Endpoint{
			Proc: p, Label: p.Label, Pos: pos, Delayed: !p.DeltaWrites[name],
		})
	}
	for name, pos := range p.Reads {
		sf := ex.unit.Signals[name]
		sf.Readers = append(sf.Readers, Endpoint{Proc: p, Label: p.Label, Pos: pos})
	}
}

// process extracts facts from an explicit process statement.
func (ex *unitExtractor) process(ps *vhdl.ProcessStmt) {
	p := ex.newProc(ps.Label, ps.Pos, ProcExplicit)
	p.Sensitivity = ps.Sensitivity
	if ps.Sensitivity != nil {
		p.SensSet = map[string]bool{}
		for _, n := range ps.Sensitivity {
			p.SensSet[n] = true
			if ex.isSignal(n) {
				ex.read(p, n, ps.Pos)
			}
		}
	}
	// Process-local declarations shadow like-named signals for the body.
	saved := ex.shadow
	ex.shadow = map[string]bool{}
	for k := range saved {
		ex.shadow[k] = true
	}
	for _, d := range ps.Decls {
		switch d := d.(type) {
		case *vhdl.VarDecl:
			for _, n := range d.Names {
				ex.shadow[n] = true
			}
		case *vhdl.ConstDecl:
			for _, n := range d.Names {
				ex.shadow[n] = true
			}
		case *vhdl.EnumTypeDecl:
			ex.shadow[d.Name] = true
			for _, lit := range d.Literals {
				ex.shadow[lit] = true
			}
		}
	}
	ex.stmts(p, ps.Body)
	ex.shadow = saved
	ex.finishProc(p)
}

func (ex *unitExtractor) read(p *ProcFact, name string, pos vhdl.Pos) {
	if !ex.isSignal(name) {
		return
	}
	if _, seen := p.Reads[name]; !seen {
		p.Reads[name] = pos
	}
}

func (ex *unitExtractor) write(p *ProcFact, name string, pos vhdl.Pos, delayed bool) {
	if !ex.isSignal(name) {
		return
	}
	if _, seen := p.Writes[name]; !seen {
		p.Writes[name] = pos
	}
	if !delayed {
		p.DeltaWrites[name] = true
	}
}

// wave records one waveform assignment to target.
func (ex *unitExtractor) wave(p *ProcFact, target *vhdl.Name, wave []vhdl.WaveElem) {
	delayed := len(wave) > 0
	for _, w := range wave {
		ex.exprReads(p, w.Value)
		ex.exprReads(p, w.After)
		if w.After == nil {
			delayed = false
		}
	}
	// Index/slice expressions on the target are reads even though the
	// target itself is a write.
	for _, a := range target.Args {
		ex.exprReads(p, a)
	}
	ex.exprReads(p, target.SliceLo)
	ex.exprReads(p, target.SliceHi)
	ex.write(p, target.Ident, target.Pos, delayed)
}

func (ex *unitExtractor) stmts(p *ProcFact, stmts []vhdl.Stmt) {
	for _, st := range stmts {
		ex.stmt(p, st)
	}
}

func (ex *unitExtractor) stmt(p *ProcFact, st vhdl.Stmt) {
	switch st := st.(type) {
	case *vhdl.SigAssign:
		ex.exprReads(p, st.Reject)
		ex.wave(p, st.Target, st.Wave)
	case *vhdl.VarAssign:
		for _, a := range st.Target.Args {
			ex.exprReads(p, a)
		}
		ex.exprReads(p, st.Target.SliceLo)
		ex.exprReads(p, st.Target.SliceHi)
		ex.exprReads(p, st.Value)
	case *vhdl.IfStmt:
		ex.exprReads(p, st.Cond)
		ex.stmts(p, st.Then)
		for _, e := range st.Elifs {
			ex.exprReads(p, e.Cond)
			ex.stmts(p, e.Then)
		}
		ex.stmts(p, st.Else)
	case *vhdl.CaseStmt:
		ex.exprReads(p, st.Expr)
		for _, arm := range st.Arms {
			for _, c := range arm.Choices {
				ex.exprReads(p, c)
			}
			ex.stmts(p, arm.Body)
		}
	case *vhdl.ForLoop:
		ex.exprReads(p, st.Lo)
		ex.exprReads(p, st.Hi)
		if st.RangeAttr != nil {
			ex.exprReads(p, st.RangeAttr)
		}
		ex.loopVars = append(ex.loopVars, st.Var)
		ex.stmts(p, st.Body)
		ex.loopVars = ex.loopVars[:len(ex.loopVars)-1]
	case *vhdl.WhileLoop:
		ex.exprReads(p, st.Cond)
		ex.stmts(p, st.Body)
	case *vhdl.WaitStmt:
		p.HasWait = true
		for _, n := range st.On {
			ex.read(p, n, st.Pos)
		}
		ex.exprReads(p, st.Until)
		ex.exprReads(p, st.For)
	case *vhdl.ReportStmt:
		ex.exprReads(p, st.Assert)
		ex.exprReads(p, st.Message)
	case *vhdl.ExitStmt:
		ex.exprReads(p, st.When)
	case *vhdl.NextStmt:
		ex.exprReads(p, st.When)
	}
}

// exprReads marks every signal an expression reads, and flags edge
// detection ('event, rising_edge, falling_edge).
func (ex *unitExtractor) exprReads(p *ProcFact, e vhdl.Expr) {
	switch e := e.(type) {
	case nil:
	case *vhdl.Name:
		if e.Attr == "event" {
			p.EdgeDetect = true
		}
		if e.Ident == "rising_edge" || e.Ident == "falling_edge" {
			p.EdgeDetect = true
		}
		ex.read(p, e.Ident, e.Pos)
		for _, a := range e.Args {
			ex.exprReads(p, a)
		}
		ex.exprReads(p, e.SliceLo)
		ex.exprReads(p, e.SliceHi)
	case *vhdl.Unary:
		ex.exprReads(p, e.X)
	case *vhdl.Binary:
		ex.exprReads(p, e.L)
		ex.exprReads(p, e.R)
	case *vhdl.Aggregate:
		for _, el := range e.Elems {
			ex.exprReads(p, el)
		}
		ex.exprReads(p, e.Others)
	}
}

// instance records the reads and drives an instantiation induces on the
// signals bound in its port map, using the formal's declared mode. Unknown
// units (entity outside the set, no component declaration) conservatively
// count as both reading and driving every actual, so incomplete designs
// never produce false unused/undriven findings.
func (ex *unitExtractor) instance(inst *vhdl.InstStmt) {
	var ports []*vhdl.PortDecl
	if comp, ok := ex.comps[inst.Unit]; ok && !inst.DirectEnt {
		ports = comp.Ports
	} else if ent, ok := ex.facts.entities[inst.Unit]; ok {
		ports = ent.Ports
	}
	label := inst.Label
	if label == "" {
		label = inst.Unit
	}
	for i, a := range inst.PortMap {
		if a.Actual == nil {
			continue // open
		}
		// Resolve the formal's mode; default to inout when unknown.
		mode, known := vhdl.ModeInOut, false
		switch {
		case a.Formal != "":
			for _, pd := range ports {
				if pd.Name == a.Formal {
					mode, known = pd.Mode, true
					break
				}
			}
		case i < len(ports):
			mode, known = ports[i].Mode, true
		}
		reads := !known || mode == vhdl.ModeIn || mode == vhdl.ModeInOut
		drives := !known || mode == vhdl.ModeOut || mode == vhdl.ModeInOut

		// A plain signal name is connected directly; any other expression
		// only reads its signals (constant folding or conversions).
		if n, ok := a.Actual.(*vhdl.Name); ok && n.Args == nil && !n.HasSlice &&
			n.Attr == "" && ex.isSignal(n.Ident) {
			sf := ex.unit.Signals[n.Ident]
			if reads {
				sf.Readers = append(sf.Readers, Endpoint{Label: label, Pos: n.Pos})
			}
			if drives {
				sf.Drivers = append(sf.Drivers, Endpoint{Label: label, Pos: n.Pos})
			}
			continue
		}
		for _, name := range exprSignalNames(a.Actual) {
			if ex.isSignal(name) {
				sf := ex.unit.Signals[name]
				sf.Readers = append(sf.Readers, Endpoint{Label: label, Pos: inst.Pos})
			}
		}
	}
	// Generic-map actuals are reads of any signals they mention (rare, but
	// keeps "unused" honest).
	for _, a := range inst.GenericMap {
		for _, name := range exprSignalNames(a.Actual) {
			if ex.isSignal(name) {
				sf := ex.unit.Signals[name]
				sf.Readers = append(sf.Readers, Endpoint{Label: label, Pos: inst.Pos})
			}
		}
	}
}

// exprSignalNames lists identifiers in an expression (callers filter with
// isSignal).
func exprSignalNames(e vhdl.Expr) []string {
	var out []string
	var walk func(vhdl.Expr)
	walk = func(e vhdl.Expr) {
		switch e := e.(type) {
		case nil:
		case *vhdl.Name:
			out = append(out, e.Ident)
			for _, a := range e.Args {
				walk(a)
			}
			walk(e.SliceLo)
			walk(e.SliceHi)
		case *vhdl.Unary:
			walk(e.X)
		case *vhdl.Binary:
			walk(e.L)
			walk(e.R)
		case *vhdl.Aggregate:
			for _, el := range e.Elems {
				walk(el)
			}
			walk(e.Others)
		}
	}
	walk(e)
	return out
}

func typeName(tr *vhdl.TypeRef) string {
	if tr == nil {
		return ""
	}
	return tr.Name
}

// sortedKeys returns map keys ordered by source position (then name), so
// rules iterate deterministically.
func sortedByPos(m map[string]vhdl.Pos) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := m[keys[i]], m[keys[j]]
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return keys[i] < keys[j]
	})
	return keys
}
