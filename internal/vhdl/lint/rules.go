package lint

import (
	"fmt"
	"sort"
	"strings"

	"govhdl/internal/vhdl"
)

func init() {
	Register(ruleMultipleDrivers)
	Register(ruleMissingSensitivity)
	Register(ruleUnusedSignal)
	Register(ruleUndriven)
	Register(ruleUnread)
	Register(ruleNoWaitProcess)
	Register(ruleCombLoop)
}

// sortEndpoints orders endpoints by first-touch position (deterministic
// driver numbering for messages).
func sortEndpoints(eps []Endpoint) []Endpoint {
	out := append([]Endpoint(nil), eps...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Label < b.Label
	})
	return out
}

func endpointLabels(eps []Endpoint) string {
	names := make([]string, len(eps))
	for i, e := range eps {
		names[i] = e.Label
	}
	return strings.Join(names, ", ")
}

// V001: a signal without a resolution function must have at most one
// driver — two drivers on an unresolved signal have no defined combined
// value, and elaboration rejects the design before any event runs.
var ruleMultipleDrivers = &Rule{
	ID: "V001", Name: "multiple-drivers", Severity: SevError,
	Doc: "multiple drivers on a signal whose type has no resolution function",
	Run: func(f *Facts, report func(Diagnostic)) {
		for _, u := range f.Units {
			for _, name := range u.SigOrder {
				sf := u.Signals[name]
				if sf.Resolved || len(sf.Drivers) < 2 {
					continue
				}
				drivers := sortEndpoints(sf.Drivers)
				for _, d := range drivers[1:] {
					report(Diagnostic{
						File: u.File, Pos: d.Pos,
						Message: fmt.Sprintf(
							"signal %q has %d drivers (%s) but type %q has no resolution function, so the design will not elaborate",
							sf.Name, len(drivers), endpointLabels(drivers), sf.TypeName),
						Suggestion: fmt.Sprintf(
							"drive %q from a single process, or declare it std_logic/std_logic_vector so drivers resolve", sf.Name),
					})
				}
			}
		}
	},
}

// V002: a combinational process must list every signal it reads in its
// sensitivity list, or it recomputes with stale inputs. Edge-triggered
// (clocked) processes are exempt: reading data signals under a clock edge
// is the idiomatic register form. Wait-based processes have no sensitivity
// list to check, and desugared concurrent assignments compute theirs.
var ruleMissingSensitivity = &Rule{
	ID: "V002", Name: "missing-sensitivity", Severity: SevWarning,
	Doc: "signal read in a combinational process but missing from its sensitivity list",
	Run: func(f *Facts, report func(Diagnostic)) {
		for _, u := range f.Units {
			for _, p := range u.Procs {
				if p.Kind != ProcExplicit || p.Sensitivity == nil || p.EdgeDetect {
					continue
				}
				for _, name := range sortedByPos(p.Reads) {
					if p.SensSet[name] {
						continue
					}
					report(Diagnostic{
						File: u.File, Pos: p.Reads[name],
						Message: fmt.Sprintf(
							"%s reads %q, which is not in its sensitivity list (%s); the process will not re-run when %q changes",
							p.Desc(), name, strings.Join(p.Sensitivity, ", "), name),
						Suggestion: fmt.Sprintf("add %q to the sensitivity list", name),
					})
				}
			}
		}
	},
}

// V003: a signal nobody reads or drives is dead weight (and usually a
// refactoring leftover or a typo'd name).
var ruleUnusedSignal = &Rule{
	ID: "V003", Name: "unused-signal", Severity: SevWarning,
	Doc: "signal declared but never read or driven",
	Run: func(f *Facts, report func(Diagnostic)) {
		for _, u := range f.Units {
			for _, name := range u.SigOrder {
				sf := u.Signals[name]
				if sf.IsPort || len(sf.Drivers) > 0 || len(sf.Readers) > 0 {
					continue
				}
				report(Diagnostic{
					File: u.File, Pos: sf.Pos,
					Message:    fmt.Sprintf("signal %q is declared but never read or driven", sf.Name),
					Suggestion: fmt.Sprintf("remove the declaration of %q", sf.Name),
				})
			}
		}
	},
}

// V004: a signal that is read but never driven stays at its initial value
// forever; an output port never driven presents 'U' (or the default) to the
// parent. Input and inout ports are legitimately driven from outside the
// architecture and are skipped.
var ruleUndriven = &Rule{
	ID: "V004", Name: "undriven-signal", Severity: SevWarning,
	Doc: "signal read (or output port exposed) but never driven",
	Run: func(f *Facts, report func(Diagnostic)) {
		for _, u := range f.Units {
			for _, name := range u.SigOrder {
				sf := u.Signals[name]
				if len(sf.Drivers) > 0 {
					continue
				}
				switch {
				case sf.IsPort && sf.Mode == vhdl.ModeOut:
					report(Diagnostic{
						File: u.File, Pos: sf.Pos,
						Message:    fmt.Sprintf("output port %q is never driven; the parent sees only its initial value", sf.Name),
						Suggestion: fmt.Sprintf("drive %q from a process or concurrent assignment", sf.Name),
					})
				case !sf.IsPort && len(sf.Readers) > 0:
					report(Diagnostic{
						File: u.File, Pos: sf.Pos,
						Message:    fmt.Sprintf("signal %q is read but never driven; it keeps its initial value forever", sf.Name),
						Suggestion: fmt.Sprintf("drive %q from a process, or replace the reads with a constant", sf.Name),
					})
				}
			}
		}
	},
}

// V005: a signal that is driven but never read does work nobody observes;
// an input port never read suggests the architecture ignores part of its
// contract.
var ruleUnread = &Rule{
	ID: "V005", Name: "unread-signal", Severity: SevWarning,
	Doc: "signal driven (or input port declared) but never read",
	Run: func(f *Facts, report func(Diagnostic)) {
		for _, u := range f.Units {
			for _, name := range u.SigOrder {
				sf := u.Signals[name]
				if len(sf.Readers) > 0 {
					continue
				}
				switch {
				case sf.IsPort && sf.Mode == vhdl.ModeIn:
					report(Diagnostic{
						File: u.File, Pos: sf.Pos,
						Message:    fmt.Sprintf("input port %q is never read", sf.Name),
						Suggestion: fmt.Sprintf("use %q in the architecture, or drop the port", sf.Name),
					})
				case !sf.IsPort && len(sf.Drivers) > 0:
					report(Diagnostic{
						File: u.File, Pos: sf.Pos,
						Message:    fmt.Sprintf("signal %q is driven but never read", sf.Name),
						Suggestion: fmt.Sprintf("use the value of %q, or delete the signal and its drivers", sf.Name),
					})
				}
			}
		}
	},
}

// V006: a process with no sensitivity list and no wait statement can never
// suspend: the first activation spins forever inside one delta cycle and
// simulation time never advances (the interpreter kills it after its step
// budget, but only after burning it).
var ruleNoWaitProcess = &Rule{
	ID: "V006", Name: "no-wait-process", Severity: SevError,
	Doc: "process with neither a sensitivity list nor a wait statement (delta-cycle livelock)",
	Run: func(f *Facts, report func(Diagnostic)) {
		for _, u := range f.Units {
			for _, p := range u.Procs {
				if p.Kind != ProcExplicit || p.Sensitivity != nil || p.HasWait {
					continue
				}
				report(Diagnostic{
					File: u.File, Pos: p.Pos,
					Message: fmt.Sprintf(
						"%s has no sensitivity list and no wait statement: it can never suspend, so simulation livelocks in a delta cycle", p.Desc()),
					Suggestion: "add a sensitivity list or a wait statement (e.g. \"wait;\" after one-shot stimulus)",
				})
			}
		}
	},
}

// V007: zero-delay combinational dependencies that form a cycle re-trigger
// each other every delta cycle and never settle, so simulation time cannot
// advance. Edges come from combinational processes (sensitivity-listed,
// no edge detection) and concurrent assignments; an assignment with an
// explicit "after" delay advances time and breaks the cycle, as does a
// clocked process (time only passes at clock edges).
var ruleCombLoop = &Rule{
	ID: "V007", Name: "comb-loop", Severity: SevError,
	Doc: "zero-delay combinational loop in the driver->reader graph",
	Run: func(f *Facts, report func(Diagnostic)) {
		for _, u := range f.Units {
			reportCombLoops(u, report)
		}
	},
}

// combEdge is one zero-delay trigger->target dependency.
type combEdge struct {
	from, to string
	pos      vhdl.Pos // position of the write creating the edge
}

func reportCombLoops(u *Unit, report func(Diagnostic)) {
	// Build the delta-delay dependency graph: an edge s -> t means "a
	// change of s re-runs a combinational process that assigns t in the
	// same delta cycle".
	adj := map[string][]combEdge{}
	var nodes []string
	seen := map[string]bool{}
	addNode := func(n string) {
		if !seen[n] {
			seen[n] = true
			nodes = append(nodes, n)
		}
	}
	for _, p := range u.Procs {
		if p.EdgeDetect || p.HasWait {
			continue
		}
		// Triggers: the sensitivity list for explicit processes, the read
		// set for desugared concurrent assignments (their implicit list).
		var triggers []string
		if p.Kind == ProcExplicit {
			if p.Sensitivity == nil {
				continue
			}
			for _, s := range p.Sensitivity {
				if _, ok := u.Signals[s]; ok {
					triggers = append(triggers, s)
				}
			}
		} else {
			triggers = sortedByPos(p.Reads)
		}
		for _, w := range sortedByPos(p.Writes) {
			if !p.DeltaWrites[w] {
				continue // every assignment to w is time-delayed
			}
			for _, t := range triggers {
				addNode(t)
				addNode(w)
				adj[t] = append(adj[t], combEdge{from: t, to: w, pos: p.Writes[w]})
			}
		}
	}

	// Tarjan SCC over the (deterministic) node list: every SCC with more
	// than one node — or a self-edge — is a delta loop.
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next := 0
	var sccs [][]string
	var strongConnect func(v string)
	strongConnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, e := range adj[v] {
			w := e.to
			if _, visited := index[w]; !visited {
				strongConnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, n := range nodes {
		if _, visited := index[n]; !visited {
			strongConnect(n)
		}
	}

	for _, scc := range sccs {
		inSCC := map[string]bool{}
		for _, n := range scc {
			inSCC[n] = true
		}
		// Collect the edges internal to this SCC; a single node only loops
		// if it has a self-edge.
		var internal []combEdge
		for _, n := range scc {
			for _, e := range adj[n] {
				if inSCC[e.to] && (len(scc) > 1 || e.to == e.from) {
					internal = append(internal, e)
				}
			}
		}
		if len(internal) == 0 {
			continue
		}
		// Anchor the diagnostic on the first (by position) looping write.
		sort.Slice(internal, func(i, j int) bool {
			a, b := internal[i], internal[j]
			if a.pos.Line != b.pos.Line {
				return a.pos.Line < b.pos.Line
			}
			if a.pos.Col != b.pos.Col {
				return a.pos.Col < b.pos.Col
			}
			return a.to < b.to
		})
		names := append([]string(nil), scc...)
		sort.Strings(names)
		report(Diagnostic{
			File: u.File, Pos: internal[0].pos,
			Message: fmt.Sprintf(
				"zero-delay combinational loop through %s: each delta cycle re-triggers the next, so simulation time never advances",
				quoteList(names)),
			Suggestion: "break the loop with a clocked process or an explicit \"after\" delay",
		})
	}
}

func quoteList(names []string) string {
	q := make([]string, len(names))
	for i, n := range names {
		q[i] = fmt.Sprintf("%q", n)
	}
	return strings.Join(q, ", ")
}
