package lint_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"govhdl/internal/vhdl"
	"govhdl/internal/vhdl/lint"
)

// TestFixtures runs every testdata fixture through the want-harness. Fixtures
// named bad_*.vhd carry want expectations; clean_*.vhd must produce no
// findings at all.
func TestFixtures(t *testing.T) {
	paths, err := filepath.Glob("testdata/*.vhd")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("no fixtures found in testdata/")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			diags := checkFixture(t, path)
			if strings.HasPrefix(filepath.Base(path), "clean_") && len(diags) != 0 {
				t.Errorf("clean fixture produced %d diagnostics", len(diags))
			}
		})
	}
}

// TestRuleCoverage asserts every registered rule has a positive fixture (a
// want naming its ID) and that each bad fixture has a clean counterpart.
func TestRuleCoverage(t *testing.T) {
	paths, err := filepath.Glob("testdata/bad_*.vhd")
	if err != nil {
		t.Fatal(err)
	}
	covered := map[string]bool{}
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range parseWants(t, path, string(src)) {
			covered[w.rule] = true
		}
		clean := filepath.Join("testdata", "clean_"+strings.TrimPrefix(filepath.Base(path), "bad_"))
		if _, err := os.Stat(clean); err != nil {
			t.Errorf("%s has no clean counterpart %s", path, clean)
		}
	}
	for _, r := range lint.Rules() {
		if !covered[r.ID] {
			t.Errorf("rule %s (%s) has no positive fixture", r.ID, r.Name)
		}
	}
}

// TestRepoDesignsClean lints every shipped design: the repo's own VHDL must
// pass its own vet.
func TestRepoDesignsClean(t *testing.T) {
	var paths []string
	for _, pat := range []string{"../../../testdata/*.vhd", "../../../examples/vhdl/*.vhd"} {
		got, err := filepath.Glob(pat)
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, got...)
	}
	if len(paths) == 0 {
		t.Fatal("no shipped designs found")
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			df, err := vhdl.Parse(path, string(src))
			if err != nil {
				t.Fatalf("parse: %v", err)
			}
			for _, d := range lint.Analyze(df) {
				t.Errorf("shipped design has finding: %s", d)
			}
		})
	}
}

// TestJSONStability pins the wire shape and checks WriteJSON is deterministic
// byte-for-byte — the property the CLI/server byte-identical guarantee rests
// on — and that Diagnostic round-trips through its JSON form.
func TestJSONStability(t *testing.T) {
	src, err := os.ReadFile("testdata/bad_unused.vhd")
	if err != nil {
		t.Fatal(err)
	}
	df, err := vhdl.Parse("testdata/bad_unused.vhd", string(src))
	if err != nil {
		t.Fatal(err)
	}
	diags := lint.Analyze(df)
	if len(diags) == 0 {
		t.Fatal("expected findings")
	}

	var a, b bytes.Buffer
	if err := lint.WriteJSON(&a, diags); err != nil {
		t.Fatal(err)
	}
	if err := lint.WriteJSON(&b, lint.Analyze(df)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("WriteJSON not deterministic:\n%s\nvs\n%s", a.Bytes(), b.Bytes())
	}

	var rep lint.Report
	if err := rep.Decode(a.Bytes()); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(rep.Diagnostics) != len(diags) {
		t.Fatalf("round-trip lost diagnostics: %d != %d", len(rep.Diagnostics), len(diags))
	}
	for i := range diags {
		if rep.Diagnostics[i] != diags[i] {
			t.Errorf("diag %d changed in round-trip:\n  %+v\n  %+v", i, rep.Diagnostics[i], diags[i])
		}
	}
	if rep.Errors+rep.Warnings != len(diags) {
		t.Errorf("counts %d+%d != %d", rep.Errors, rep.Warnings, len(diags))
	}
}

// TestEmptyJSON pins the empty report shape: diagnostics must be [], not null.
func TestEmptyJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := lint.WriteJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	want := "{\n  \"diagnostics\": [],\n  \"errors\": 0,\n  \"warnings\": 0\n}\n"
	if buf.String() != want {
		t.Errorf("empty report:\n%q\nwant\n%q", buf.String(), want)
	}
}
