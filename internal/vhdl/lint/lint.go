// Package lint statically analyzes user VHDL designs before any event is
// scheduled: the costliest simulation failures (multiple drivers losing
// updates, incomplete sensitivity lists, delta-cycle livelock) are visible
// in the parse tree alone.
//
// The analysis runs in two phases. First a fact base is extracted from the
// parsed AST — per-process driven and read signals, sensitivity lists, wait
// statements, port modes, declared-vs-used signals (facts.go). Then
// independent rule passes walk the facts (rules.go); each rule is registered
// behind a stable ID so later policies drop in without touching the driver.
//
// Diagnostics carry exact source spans (vhdl.Pos), a severity, and a
// suggestion, and render in vet format (file:line:col: severity: message
// [rule]) or as JSON. The JSON writer is the single serialization point:
// `pvsim -vet-json` and govhdld's /v1/lint endpoint both call WriteJSON, so
// the two surfaces emit byte-identical reports for the same design.
package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"govhdl/internal/vhdl"
)

// Severity classifies a diagnostic.
type Severity uint8

const (
	// SevWarning marks likely-unintended but simulatable constructs.
	SevWarning Severity = iota
	// SevError marks constructs that lose data or hang when simulated.
	SevError
)

func (s Severity) String() string {
	if s == SevError {
		return "error"
	}
	return "warning"
}

// MarshalJSON renders the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) { return json.Marshal(s.String()) }

// Diagnostic is one finding.
type Diagnostic struct {
	Rule       string   // stable rule ID, e.g. "V001"
	Severity   Severity // error or warning
	File       string
	Pos        vhdl.Pos // exact source span start
	Message    string
	Suggestion string
}

// String renders in vet format: file:line:col: severity: message [rule].
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s [%s]",
		d.File, d.Pos.Line, d.Pos.Col, d.Severity, d.Message, d.Rule)
}

// jsonDiag is the wire shape: the position flattens to line/col.
type jsonDiag struct {
	Rule       string `json:"rule"`
	Severity   string `json:"severity"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suggestion string `json:"suggestion,omitempty"`
}

// MarshalJSON flattens the source position into line/col fields.
func (d Diagnostic) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonDiag{
		Rule: d.Rule, Severity: d.Severity.String(), File: d.File,
		Line: d.Pos.Line, Col: d.Pos.Col,
		Message: d.Message, Suggestion: d.Suggestion,
	})
}

// UnmarshalJSON is the inverse of MarshalJSON (clients decoding reports).
func (d *Diagnostic) UnmarshalJSON(b []byte) error {
	var j jsonDiag
	if err := json.Unmarshal(b, &j); err != nil {
		return err
	}
	sev := SevWarning
	if j.Severity == "error" {
		sev = SevError
	}
	*d = Diagnostic{
		Rule: j.Rule, Severity: sev, File: j.File,
		Pos: vhdl.Pos{Line: j.Line, Col: j.Col},
		Message: j.Message, Suggestion: j.Suggestion,
	}
	return nil
}

// A Rule is one registered policy check.
type Rule struct {
	// ID is the stable identifier ("V001"); it never changes once released.
	ID string
	// Name is a short slug for humans ("multiple-drivers").
	Name string
	// Doc is a one-line description.
	Doc string
	// Severity is the severity of every diagnostic the rule reports.
	Severity Severity
	// Run reports the rule's findings over the fact base.
	Run func(f *Facts, report func(Diagnostic))
}

var registry []*Rule

// Register adds a rule; duplicate IDs are a programming error.
func Register(r *Rule) {
	for _, have := range registry {
		if have.ID == r.ID {
			panic("lint: duplicate rule ID " + r.ID)
		}
	}
	registry = append(registry, r)
	sort.Slice(registry, func(i, j int) bool { return registry[i].ID < registry[j].ID })
}

// Rules lists the registered rules sorted by ID.
func Rules() []*Rule { return append([]*Rule(nil), registry...) }

// Analyze runs every registered rule over the parsed files (one design set:
// instances resolve across files) and returns the findings sorted by
// position.
func Analyze(files ...*vhdl.DesignFile) []Diagnostic {
	return AnalyzeWith(registry, files...)
}

// AnalyzeWith runs only the given rules.
func AnalyzeWith(rules []*Rule, files ...*vhdl.DesignFile) []Diagnostic {
	facts := ExtractFacts(files)
	var diags []Diagnostic
	for _, r := range rules {
		rule := r
		r.Run(facts, func(d Diagnostic) {
			d.Rule = rule.ID
			d.Severity = rule.Severity
			diags = append(diags, d)
		})
	}
	SortDiagnostics(diags)
	return diags
}

// SortDiagnostics orders findings by file, position, then rule ID, so output
// is deterministic regardless of rule registration or map iteration order.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
}

// Counts tallies findings by severity.
func Counts(diags []Diagnostic) (errors, warnings int) {
	for _, d := range diags {
		if d.Severity == SevError {
			errors++
		} else {
			warnings++
		}
	}
	return errors, warnings
}

// HasErrors reports whether any finding is error-severity.
func HasErrors(diags []Diagnostic) bool {
	e, _ := Counts(diags)
	return e > 0
}

// Report is the JSON document shape shared by every lint surface.
type Report struct {
	Diagnostics []Diagnostic `json:"diagnostics"`
	Errors      int          `json:"errors"`
	Warnings    int          `json:"warnings"`
}

// Decode parses a JSON report produced by WriteJSON (clients reading the
// CLI's -vet-json output or the server's /v1/lint reply).
func (r *Report) Decode(b []byte) error { return json.Unmarshal(b, r) }

// WriteJSON serializes findings. This is the only JSON serialization point:
// the pvsim CLI and the govhdld lint endpoint both call it, which is what
// makes their reports byte-identical for the same design.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	e, warn := Counts(diags)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Report{Diagnostics: diags, Errors: e, Warnings: warn})
}

// WriteText renders findings in vet format, one per line.
func WriteText(w io.Writer, diags []Diagnostic) {
	for _, d := range diags {
		fmt.Fprintln(w, d.String())
		if d.Suggestion != "" {
			fmt.Fprintf(w, "\tsuggestion: %s\n", d.Suggestion)
		}
	}
}
