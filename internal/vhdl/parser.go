package vhdl

import (
	"fmt"
)

// Parse parses one VHDL source file.
func Parse(file, src string) (*DesignFile, error) {
	toks, err := newLexer(file, src).lex()
	if err != nil {
		return nil, err
	}
	p := &parser{file: file, toks: toks}
	df := &DesignFile{File: file}
	for !p.atEOF() {
		switch {
		case p.isKw("library"), p.isKw("use"):
			// Context clauses are accepted and ignored: the ieee builtins
			// are always available.
			p.skipPast(tokSemi)
		case p.isKw("entity"):
			e, err := p.parseEntity()
			if err != nil {
				return nil, err
			}
			e.File = file
			df.Entities = append(df.Entities, e)
		case p.isKw("architecture"):
			a, err := p.parseArch()
			if err != nil {
				return nil, err
			}
			a.File = file
			df.Archs = append(df.Archs, a)
		default:
			return nil, p.errorf("expected a design unit (entity or architecture), found %v", p.cur())
		}
	}
	return df, nil
}

type parser struct {
	file  string
	toks  []token
	pos   int
	depth int // recursion depth (expressions + statement nesting)
}

// maxParseDepth bounds recursive-descent depth. Real designs nest a handful
// of levels; the bound exists so adversarial input (deep parens, deep ifs)
// returns a parse error instead of overflowing the goroutine stack.
const maxParseDepth = 200

func (p *parser) enter() error {
	p.depth++
	if p.depth > maxParseDepth {
		return p.errorf("nesting exceeds %d levels", maxParseDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().Kind == tokEOF }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.Kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) at(k tokKind) bool { return p.cur().Kind == k }

func (p *parser) isKw(w string) bool {
	t := p.cur()
	return t.Kind == tokKeyword && t.Text == w
}

func (p *parser) acceptKw(w string) bool {
	if p.isKw(w) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) accept(k tokKind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) errorf(format string, args ...any) *Error {
	t := p.cur()
	return &Error{File: p.file, Line: t.Line, Col: t.Col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokKind) (token, error) {
	if !p.at(k) {
		return token{}, p.errorf("expected %v, found %v", k, p.cur())
	}
	return p.next(), nil
}

func (p *parser) expectKw(w string) error {
	if !p.acceptKw(w) {
		return p.errorf("expected %q, found %v", w, p.cur())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t, err := p.expect(tokIdent)
	return t.Text, err
}

func (p *parser) pos0() Pos { return Pos{p.cur().Line, p.cur().Col} }

// skipPast advances past the next token of the given kind.
func (p *parser) skipPast(k tokKind) {
	for !p.atEOF() {
		if p.next().Kind == k {
			return
		}
	}
}

// ---- Design units ----

func (p *parser) parseEntity() (*EntityDecl, error) {
	pos := p.pos0()
	p.next() // entity
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("is"); err != nil {
		return nil, err
	}
	e := &EntityDecl{Pos: pos, Name: name}
	if p.isKw("generic") {
		if e.Generics, err = p.parseGenericClause(); err != nil {
			return nil, err
		}
	}
	if p.isKw("port") {
		if e.Ports, err = p.parsePortClause(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	p.acceptKw("entity")
	if p.at(tokIdent) {
		if got := p.next().Text; got != name {
			return nil, p.errorf("entity end label %q does not match %q", got, name)
		}
	}
	_, err = p.expect(tokSemi)
	return e, err
}

func (p *parser) parseGenericClause() ([]*GenericDecl, error) {
	p.next() // generic
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var out []*GenericDecl
	for {
		pos := p.pos0()
		names, err := p.parseIdentList()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		tr, err := p.parseTypeRef()
		if err != nil {
			return nil, err
		}
		var def Expr
		if p.accept(tokAssign) {
			if def, err = p.parseExpr(); err != nil {
				return nil, err
			}
		}
		for _, n := range names {
			out = append(out, &GenericDecl{Pos: pos, Name: n, Type: tr, Default: def})
		}
		if !p.accept(tokSemi) {
			break
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	_, err := p.expect(tokSemi)
	return out, err
}

func (p *parser) parsePortClause() ([]*PortDecl, error) {
	p.next() // port
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	var out []*PortDecl
	for {
		pos := p.pos0()
		names, err := p.parseIdentList()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		mode := ModeIn
		switch {
		case p.acceptKw("in"):
		case p.acceptKw("out"):
			mode = ModeOut
		case p.acceptKw("inout"):
			mode = ModeInOut
		case p.acceptKw("buffer"):
			mode = ModeOut
		}
		tr, err := p.parseTypeRef()
		if err != nil {
			return nil, err
		}
		var def Expr
		if p.accept(tokAssign) {
			if def, err = p.parseExpr(); err != nil {
				return nil, err
			}
		}
		for _, n := range names {
			out = append(out, &PortDecl{Pos: pos, Name: n, Mode: mode, Type: tr, Default: def})
		}
		if !p.accept(tokSemi) {
			break
		}
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	_, err := p.expect(tokSemi)
	return out, err
}

func (p *parser) parseIdentList() ([]string, error) {
	var names []string
	for {
		n, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		names = append(names, n)
		if !p.accept(tokComma) {
			return names, nil
		}
	}
}

// parseTypeRef parses a type mark with optional index or range constraint.
func (p *parser) parseTypeRef() (*TypeRef, error) {
	pos := p.pos0()
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	tr := &TypeRef{Pos: pos, Name: name}
	switch {
	case p.at(tokLParen):
		p.next()
		if tr.Lo, err = p.parseExpr(); err != nil {
			return nil, err
		}
		switch {
		case p.acceptKw("downto"):
			tr.Downto = true
		case p.acceptKw("to"):
		default:
			return nil, p.errorf("expected 'to' or 'downto' in index constraint")
		}
		if tr.Hi, err = p.parseExpr(); err != nil {
			return nil, err
		}
		tr.HasRng = true
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
	case p.isKw("range"):
		p.next()
		if tr.Lo, err = p.parseExpr(); err != nil {
			return nil, err
		}
		switch {
		case p.acceptKw("downto"):
			tr.Downto = true
		case p.acceptKw("to"):
		default:
			return nil, p.errorf("expected 'to' or 'downto' in range constraint")
		}
		if tr.Hi, err = p.parseExpr(); err != nil {
			return nil, err
		}
		tr.HasRng = true
	}
	return tr, nil
}

func (p *parser) parseArch() (*ArchBody, error) {
	pos := p.pos0()
	p.next() // architecture
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("of"); err != nil {
		return nil, err
	}
	entName, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("is"); err != nil {
		return nil, err
	}
	a := &ArchBody{Pos: pos, Name: name, EntityName: entName}
	for !p.isKw("begin") {
		d, err := p.parseBlockDecl()
		if err != nil {
			return nil, err
		}
		a.Decls = append(a.Decls, d)
	}
	p.next() // begin
	for !p.isKw("end") {
		s, err := p.parseConcStmt()
		if err != nil {
			return nil, err
		}
		a.Stmts = append(a.Stmts, s)
	}
	p.next() // end
	p.acceptKw("architecture")
	if p.at(tokIdent) {
		p.next()
	}
	_, err = p.expect(tokSemi)
	return a, err
}

func (p *parser) parseBlockDecl() (Decl, error) {
	switch {
	case p.isKw("signal"):
		pos := p.pos0()
		p.next()
		names, err := p.parseIdentList()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		tr, err := p.parseTypeRef()
		if err != nil {
			return nil, err
		}
		var init Expr
		if p.accept(tokAssign) {
			if init, err = p.parseExpr(); err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &SignalDecl{Pos: pos, Names: names, Type: tr, Init: init}, nil
	case p.isKw("constant"):
		pos := p.pos0()
		p.next()
		names, err := p.parseIdentList()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		tr, err := p.parseTypeRef()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokAssign); err != nil {
			return nil, err
		}
		v, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &ConstDecl{Pos: pos, Names: names, Type: tr, Value: v}, nil
	case p.isKw("type"):
		pos := p.pos0()
		p.next()
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("is"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		lits, err := p.parseIdentList()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &EnumTypeDecl{Pos: pos, Name: name, Literals: lits}, nil
	case p.isKw("component"):
		return p.parseComponent()
	}
	return nil, p.errorf("unsupported declaration starting with %v", p.cur())
}

func (p *parser) parseComponent() (*ComponentDecl, error) {
	pos := p.pos0()
	p.next() // component
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	p.acceptKw("is")
	c := &ComponentDecl{Pos: pos, Name: name}
	if p.isKw("generic") {
		if c.Generics, err = p.parseGenericClause(); err != nil {
			return nil, err
		}
	}
	if p.isKw("port") {
		if c.Ports, err = p.parsePortClause(); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	if err := p.expectKw("component"); err != nil {
		return nil, err
	}
	if p.at(tokIdent) {
		p.next()
	}
	_, err = p.expect(tokSemi)
	return c, err
}
