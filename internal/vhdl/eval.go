package vhdl

import (
	"fmt"

	"govhdl/internal/kernel"
	"govhdl/internal/stdlogic"
	"govhdl/internal/vtime"
)

// evalError aborts evaluation with a positioned error (recovered at the
// statement-execution boundary).
type evalError struct{ err *Error }

func evalPanic(pos Pos, format string, args ...any) {
	panic(evalError{&Error{Line: pos.Line, Col: pos.Col, Msg: fmt.Sprintf(format, args...)}})
}

// evalCtx provides name resolution for the evaluator. The constant
// (elaboration-time) context leaves the signal callbacks nil.
type evalCtx struct {
	consts map[string]kernel.Value // constants, generics, generate/loop vars
	types  map[string]*Type        // named types
	enums  map[string]EnumVal      // enum literal -> value
	// vars resolves process variables (interpreter only).
	vars map[string]kernel.Value
	// sigVal resolves a signal's current value (nil in constant contexts).
	sigVal func(name string) (kernel.Value, *Type, bool)
	// sigEvent resolves s'event (nil in constant contexts).
	sigEvent func(name string) (bool, bool)
}

// lookupPlain resolves a bare identifier.
func (c *evalCtx) lookupPlain(n *Name) (kernel.Value, bool) {
	if c.vars != nil {
		if v, ok := c.vars[n.Ident]; ok {
			return v, true
		}
	}
	if v, ok := c.consts[n.Ident]; ok {
		return v, true
	}
	if v, ok := c.enums[n.Ident]; ok {
		return v, true
	}
	if c.sigVal != nil {
		if v, _, ok := c.sigVal(n.Ident); ok {
			return v, true
		}
	}
	return nil, false
}

// eval evaluates an expression. want may be nil; it provides the element
// type and width context for aggregates and string literals.
func (c *evalCtx) eval(e Expr, want *Type) kernel.Value {
	switch e := e.(type) {
	case *IntLit:
		if want != nil && want.Kind == tTime {
			return timeVal(e.Val)
		}
		return e.Val
	case *TimeLit:
		return timeVal(e.Val * timeUnits[e.Unit])
	case *CharLit:
		v, ok := stdlogic.FromRune(rune(e.Val))
		if !ok {
			evalPanic(e.Pos, "invalid std_logic character literal '%c'", e.Val)
		}
		return v
	case *StrLit:
		if want != nil && want.Kind != tVec && want.Kind != tStd {
			// A string in a report message context.
			return e.Val
		}
		v, err := stdlogic.VecFromString(e.Val)
		if err != nil {
			// Not a bit-string: treat as text.
			return e.Val
		}
		return v
	case *Aggregate:
		return c.evalAggregate(e, want)
	case *Unary:
		return c.evalUnary(e)
	case *Binary:
		return c.evalBinary(e)
	case *Name:
		return c.evalName(e, want)
	}
	evalPanic(Pos{}, "unsupported expression %T", e)
	return nil
}

func (c *evalCtx) evalAggregate(a *Aggregate, want *Type) kernel.Value {
	if want == nil || want.Kind != tVec {
		evalPanic(a.Pos, "aggregate requires a vector context")
	}
	w := want.Width()
	elemT := &Type{Kind: tStd}
	out := stdlogic.NewVec(w, stdlogic.U)
	if a.Others != nil {
		fill := c.eval(a.Others, elemT)
		fv, ok := fill.(stdlogic.Std)
		if !ok {
			evalPanic(a.Pos, "aggregate fill must be std_logic")
		}
		for i := range out {
			out[i] = fv
		}
	}
	if len(a.Elems) > w {
		evalPanic(a.Pos, "aggregate has %d elements for a %d-wide vector", len(a.Elems), w)
	}
	for i, el := range a.Elems {
		v := c.eval(el, elemT)
		sv, ok := v.(stdlogic.Std)
		if !ok {
			evalPanic(a.Pos, "aggregate element %d is not std_logic", i)
		}
		out[i] = sv
	}
	return out
}

func (c *evalCtx) evalUnary(u *Unary) kernel.Value {
	x := c.eval(u.X, nil)
	switch u.Op {
	case "not":
		switch v := x.(type) {
		case stdlogic.Std:
			return stdlogic.Not(v)
		case stdlogic.Vec:
			return stdlogic.NotVec(v)
		case bool:
			return !v
		}
	case "-":
		switch v := x.(type) {
		case int64:
			return -v
		case timeVal:
			evalPanic(u.Pos, "negative time")
		}
	case "abs":
		if v, ok := x.(int64); ok {
			if v < 0 {
				return -v
			}
			return v
		}
	}
	evalPanic(u.Pos, "operator %q not defined for %s", u.Op, valueString(x))
	return nil
}

func (c *evalCtx) evalBinary(b *Binary) kernel.Value {
	l := c.eval(b.L, nil)
	// Give the right operand the left's type as context (helps literals).
	var rWant *Type
	switch l.(type) {
	case stdlogic.Vec:
		if lv := l.(stdlogic.Vec); true {
			rWant = &Type{Kind: tVec, Lo: int64(len(lv)) - 1, Downto: true}
		}
	case timeVal:
		rWant = &Type{Kind: tTime}
	}
	r := c.eval(b.R, rWant)

	switch b.Op {
	case "and", "or", "xor", "nand", "nor", "xnor":
		return c.logic(b, l, r)
	case "=", "/=":
		eq := valuesEqual(b, l, r)
		if b.Op == "=" {
			return eq
		}
		return !eq
	case "<", "<=", ">", ">=":
		return compare(b, l, r)
	case "+", "-":
		return c.addSub(b, l, r)
	case "&":
		return concat(b, l, r)
	case "*", "/", "mod", "rem", "**":
		return arith(b, l, r)
	case "sll", "srl":
		return shift(b, l, r)
	}
	evalPanic(b.Pos, "unsupported operator %q", b.Op)
	return nil
}

func (c *evalCtx) logic(b *Binary, l, r kernel.Value) kernel.Value {
	type stdOp func(a, d stdlogic.Std) stdlogic.Std
	ops := map[string]stdOp{
		"and": stdlogic.And, "or": stdlogic.Or, "xor": stdlogic.Xor,
		"nand": stdlogic.Nand, "nor": stdlogic.Nor, "xnor": stdlogic.Xnor,
	}
	op := ops[b.Op]
	switch lv := l.(type) {
	case stdlogic.Std:
		rv, ok := r.(stdlogic.Std)
		if !ok {
			evalPanic(b.Pos, "type mismatch in %q", b.Op)
		}
		return op(lv, rv)
	case stdlogic.Vec:
		rv, ok := r.(stdlogic.Vec)
		if !ok || len(rv) != len(lv) {
			evalPanic(b.Pos, "vector length mismatch in %q", b.Op)
		}
		out := make(stdlogic.Vec, len(lv))
		for i := range out {
			out[i] = op(lv[i], rv[i])
		}
		return out
	case bool:
		rv, ok := r.(bool)
		if !ok {
			evalPanic(b.Pos, "type mismatch in %q", b.Op)
		}
		switch b.Op {
		case "and":
			return lv && rv
		case "or":
			return lv || rv
		case "xor":
			return lv != rv
		case "nand":
			return !(lv && rv)
		case "nor":
			return !(lv || rv)
		case "xnor":
			return lv == rv
		}
	}
	evalPanic(b.Pos, "operator %q not defined for %s", b.Op, valueString(l))
	return nil
}

func valuesEqual(b *Binary, l, r kernel.Value) bool {
	switch lv := l.(type) {
	case stdlogic.Vec:
		rv, ok := r.(stdlogic.Vec)
		if !ok {
			evalPanic(b.Pos, "comparing vector with %s", valueString(r))
		}
		return lv.Equal(rv)
	case EnumVal:
		rv, ok := r.(EnumVal)
		if !ok || rv.Enum.Name != lv.Enum.Name {
			evalPanic(b.Pos, "comparing values of different enumeration types")
		}
		return lv.Ord == rv.Ord
	default:
		if !sameScalarKind(l, r) {
			evalPanic(b.Pos, "comparing %s with %s", valueString(l), valueString(r))
		}
		return l == r
	}
}

func sameScalarKind(l, r kernel.Value) bool {
	switch l.(type) {
	case stdlogic.Std:
		_, ok := r.(stdlogic.Std)
		return ok
	case bool:
		_, ok := r.(bool)
		return ok
	case int64:
		_, ok := r.(int64)
		return ok
	case timeVal:
		_, ok := r.(timeVal)
		return ok
	}
	return false
}

func compare(b *Binary, l, r kernel.Value) bool {
	cmp := 0
	switch lv := l.(type) {
	case int64:
		rv, ok := r.(int64)
		if !ok {
			evalPanic(b.Pos, "comparing integer with %s", valueString(r))
		}
		switch {
		case lv < rv:
			cmp = -1
		case lv > rv:
			cmp = 1
		}
	case timeVal:
		rv, ok := r.(timeVal)
		if !ok {
			evalPanic(b.Pos, "comparing time with %s", valueString(r))
		}
		switch {
		case lv < rv:
			cmp = -1
		case lv > rv:
			cmp = 1
		}
	case stdlogic.Vec:
		// Unsigned interpretation (numeric_std-style convenience).
		lu, ok1 := lv.Uint()
		rv, ok := r.(stdlogic.Vec)
		if !ok {
			evalPanic(b.Pos, "comparing vector with %s", valueString(r))
		}
		ru, ok2 := rv.Uint()
		if !ok1 || !ok2 {
			evalPanic(b.Pos, "ordering comparison on non-01 vector")
		}
		switch {
		case lu < ru:
			cmp = -1
		case lu > ru:
			cmp = 1
		}
	case EnumVal:
		rv, ok := r.(EnumVal)
		if !ok || rv.Enum.Name != lv.Enum.Name {
			evalPanic(b.Pos, "comparing values of different enumeration types")
		}
		switch {
		case lv.Ord < rv.Ord:
			cmp = -1
		case lv.Ord > rv.Ord:
			cmp = 1
		}
	default:
		evalPanic(b.Pos, "ordering not defined for %s", valueString(l))
	}
	switch b.Op {
	case "<":
		return cmp < 0
	case "<=":
		return cmp <= 0
	case ">":
		return cmp > 0
	default:
		return cmp >= 0
	}
}

func (c *evalCtx) addSub(b *Binary, l, r kernel.Value) kernel.Value {
	switch lv := l.(type) {
	case int64:
		switch rv := r.(type) {
		case int64:
			if b.Op == "+" {
				return lv + rv
			}
			return lv - rv
		}
	case timeVal:
		if rv, ok := r.(timeVal); ok {
			if b.Op == "+" {
				return lv + rv
			}
			if rv > lv {
				evalPanic(b.Pos, "negative time")
			}
			return lv - rv
		}
	case stdlogic.Vec:
		var rv stdlogic.Vec
		switch rr := r.(type) {
		case stdlogic.Vec:
			rv = rr
		case int64:
			rv = stdlogic.FromInt(rr, len(lv))
		default:
			evalPanic(b.Pos, "adding vector and %s", valueString(r))
		}
		if len(rv) != len(lv) {
			evalPanic(b.Pos, "vector length mismatch in %q", b.Op)
		}
		if b.Op == "+" {
			return stdlogic.AddVec(lv, rv)
		}
		return stdlogic.SubVec(lv, rv)
	}
	evalPanic(b.Pos, "operator %q not defined for %s and %s", b.Op, valueString(l), valueString(r))
	return nil
}

func concat(b *Binary, l, r kernel.Value) kernel.Value {
	// String concatenation (report messages).
	if ls, ok := l.(string); ok {
		return ls + valueString(r)
	}
	if rs, ok := r.(string); ok {
		return valueString(l) + rs
	}
	toVec := func(v kernel.Value) stdlogic.Vec {
		switch vv := v.(type) {
		case stdlogic.Vec:
			return vv
		case stdlogic.Std:
			return stdlogic.Vec{vv}
		}
		evalPanic(b.Pos, "concatenating %s", valueString(v))
		return nil
	}
	lv, rv := toVec(l), toVec(r)
	out := make(stdlogic.Vec, 0, len(lv)+len(rv))
	return append(append(out, lv...), rv...)
}

func arith(b *Binary, l, r kernel.Value) kernel.Value {
	li, lok := l.(int64)
	ri, rok := r.(int64)
	if lt, ok := l.(timeVal); ok && rok {
		// time * integer and time / integer.
		switch b.Op {
		case "*":
			return lt * timeVal(ri)
		case "/":
			if ri == 0 {
				evalPanic(b.Pos, "division by zero")
			}
			return lt / timeVal(ri)
		}
	}
	if rt, ok := r.(timeVal); ok && lok && b.Op == "*" {
		return timeVal(li) * rt
	}
	if !lok || !rok {
		evalPanic(b.Pos, "operator %q not defined for %s and %s", b.Op, valueString(l), valueString(r))
	}
	switch b.Op {
	case "*":
		return li * ri
	case "/":
		if ri == 0 {
			evalPanic(b.Pos, "division by zero")
		}
		return li / ri
	case "mod":
		if ri == 0 {
			evalPanic(b.Pos, "mod by zero")
		}
		m := li % ri
		if m != 0 && (m < 0) != (ri < 0) {
			m += ri
		}
		return m
	case "rem":
		if ri == 0 {
			evalPanic(b.Pos, "rem by zero")
		}
		return li % ri
	case "**":
		out := int64(1)
		for i := int64(0); i < ri; i++ {
			out *= li
		}
		return out
	}
	return nil
}

func shift(b *Binary, l, r kernel.Value) kernel.Value {
	lv, ok := l.(stdlogic.Vec)
	ri, ok2 := r.(int64)
	if !ok || !ok2 {
		evalPanic(b.Pos, "shift requires vector and integer")
	}
	n := int(ri)
	w := len(lv)
	out := stdlogic.NewVec(w, stdlogic.L0)
	for i := 0; i < w; i++ {
		var src int
		if b.Op == "sll" {
			src = i + n
		} else {
			src = i - n
		}
		if src >= 0 && src < w {
			out[i] = lv[src]
		}
	}
	return out
}

// evalName resolves names: variables, constants, enum literals, signals,
// attributes, builtin calls, and indexing.
func (c *evalCtx) evalName(n *Name, want *Type) kernel.Value {
	if n.Attr != "" {
		return c.evalAttr(n)
	}
	if n.Args != nil {
		// Builtin function call or indexed name.
		if v, ok := c.callBuiltin(n); ok {
			return v
		}
		base, ok := c.lookupPlain(&Name{Ident: n.Ident})
		if !ok {
			evalPanic(n.Pos, "unknown function or array %q", n.Ident)
		}
		if len(n.Args) != 1 {
			evalPanic(n.Pos, "multidimensional indexing is not supported")
		}
		idx, ok := c.eval(n.Args[0], nil).(int64)
		if !ok {
			evalPanic(n.Pos, "array index must be an integer")
		}
		vec, ok := base.(stdlogic.Vec)
		if !ok {
			evalPanic(n.Pos, "%q is not an array", n.Ident)
		}
		t := c.typeOfObject(n.Ident, vec)
		off, err := t.indexOffset(idx)
		if err != nil {
			evalPanic(n.Pos, "%v", err)
		}
		return vec[off]
	}
	if n.HasSlice {
		base, ok := c.lookupPlain(&Name{Ident: n.Ident})
		if !ok {
			evalPanic(n.Pos, "unknown name %q", n.Ident)
		}
		vec, ok := base.(stdlogic.Vec)
		if !ok {
			evalPanic(n.Pos, "slicing a non-array %q", n.Ident)
		}
		t := c.typeOfObject(n.Ident, vec)
		lo := c.evalInt(n.SliceLo)
		hi := c.evalInt(n.SliceHi)
		o1, err1 := t.indexOffset(lo)
		o2, err2 := t.indexOffset(hi)
		if err1 != nil || err2 != nil {
			evalPanic(n.Pos, "slice bounds out of range")
		}
		if o1 > o2 {
			o1, o2 = o2, o1
		}
		return vec[o1 : o2+1].Clone()
	}
	if v, ok := c.lookupPlain(n); ok {
		return v
	}
	evalPanic(n.Pos, "unknown name %q", n.Ident)
	return nil
}

// typeOfObject reconstructs the index mapping of a vector object. When the
// declared type is unknown (plain value), assume (w-1 downto 0).
func (c *evalCtx) typeOfObject(name string, vec stdlogic.Vec) *Type {
	if c.sigVal != nil {
		if _, t, ok := c.sigVal(name); ok && t != nil {
			return t
		}
	}
	if t, ok := c.types["__obj_"+name]; ok {
		return t
	}
	return &Type{Kind: tVec, Lo: int64(len(vec)) - 1, Hi: 0, Downto: true}
}

func (c *evalCtx) evalInt(e Expr) int64 {
	v, ok := c.eval(e, nil).(int64)
	if !ok {
		evalPanic(Pos{}, "expected an integer expression")
	}
	return v
}

func (c *evalCtx) evalBool(e Expr) bool {
	v := c.eval(e, &Type{Kind: tBool})
	switch b := v.(type) {
	case bool:
		return b
	case stdlogic.Std:
		// Common shortcut: "if s" is not legal VHDL but "s = '1'" folds to
		// bool; still, accept std as truthiness of '1'/'H'.
		return stdlogic.IsHigh(b)
	}
	evalPanic(Pos{}, "expected a boolean expression, got %s", valueString(v))
	return false
}

func (c *evalCtx) evalTime(e Expr) timeVal {
	v := c.eval(e, &Type{Kind: tTime})
	switch t := v.(type) {
	case timeVal:
		return t
	case int64:
		return timeVal(t)
	}
	evalPanic(Pos{}, "expected a time expression, got %s", valueString(v))
	return 0
}

func (c *evalCtx) evalAttr(n *Name) kernel.Value {
	switch n.Attr {
	case "event":
		if c.sigEvent == nil {
			evalPanic(n.Pos, "'event outside a process")
		}
		ev, ok := c.sigEvent(n.Ident)
		if !ok {
			evalPanic(n.Pos, "'event on non-signal %q", n.Ident)
		}
		return ev
	case "image":
		// type'image(expr): VHDL predefined attribute; rendered with the
		// same formatting used by report messages.
		if len(n.Args) != 1 {
			evalPanic(n.Pos, "'image takes one argument")
		}
		return valueString(c.eval(n.Args[0], nil))
	case "length", "left", "right", "high", "low":
		t := c.namedType(n)
		switch n.Attr {
		case "length":
			return int64(t.Width())
		case "left":
			return t.Lo
		case "right":
			return t.Hi
		case "high":
			if t.Downto {
				return t.Lo
			}
			return t.Hi
		case "low":
			if t.Downto {
				return t.Hi
			}
			return t.Lo
		}
	}
	evalPanic(n.Pos, "unsupported attribute '%s", n.Attr)
	return nil
}

// namedType resolves the type of a named object or type mark for
// attributes.
func (c *evalCtx) namedType(n *Name) *Type {
	if t, ok := c.types[n.Ident]; ok {
		return t
	}
	if c.sigVal != nil {
		if _, t, ok := c.sigVal(n.Ident); ok && t != nil {
			return t
		}
	}
	if t, ok := c.types["__obj_"+n.Ident]; ok {
		return t
	}
	if v, ok := c.lookupPlain(&Name{Ident: n.Ident}); ok {
		if vec, isVec := v.(stdlogic.Vec); isVec {
			return &Type{Kind: tVec, Lo: int64(len(vec)) - 1, Hi: 0, Downto: true}
		}
	}
	evalPanic(n.Pos, "cannot resolve the type of %q", n.Ident)
	return nil
}

// callBuiltin evaluates the supported ieee builtins. It reports false when
// the name is not a builtin (then treated as array indexing).
func (c *evalCtx) callBuiltin(n *Name) (kernel.Value, bool) {
	arg := func(i int, want *Type) kernel.Value {
		if i >= len(n.Args) {
			evalPanic(n.Pos, "%s: missing argument %d", n.Ident, i+1)
		}
		return c.eval(n.Args[i], want)
	}
	switch n.Ident {
	case "rising_edge", "falling_edge":
		// Needs event info: the argument must be a plain signal name.
		sn, ok := n.Args[0].(*Name)
		if !ok || c.sigEvent == nil {
			evalPanic(n.Pos, "%s requires a signal argument", n.Ident)
		}
		ev, ok := c.sigEvent(sn.Ident)
		if !ok {
			evalPanic(n.Pos, "%s on non-signal %q", n.Ident, sn.Ident)
		}
		v, _, _ := c.sigVal(sn.Ident)
		s, ok := v.(stdlogic.Std)
		if !ok {
			evalPanic(n.Pos, "%s on non-std_logic signal", n.Ident)
		}
		if n.Ident == "rising_edge" {
			return ev && stdlogic.IsHigh(s), true
		}
		return ev && stdlogic.IsLow(s), true
	case "to_integer", "to_int", "conv_integer":
		v := arg(0, nil)
		vec, ok := v.(stdlogic.Vec)
		if !ok {
			evalPanic(n.Pos, "to_integer requires a vector")
		}
		u, ok := vec.Uint()
		if !ok {
			// VHDL numeric_std warns and returns 0 on metavalues.
			return int64(0), true
		}
		return int64(u), true
	case "to_unsigned", "to_stdlogicvector", "std_logic_vector", "to_slv", "conv_std_logic_vector":
		v := arg(0, nil)
		switch vv := v.(type) {
		case stdlogic.Vec:
			return vv, true // identity conversion
		case int64:
			w := int64(0)
			if len(n.Args) > 1 {
				w = c.evalInt(n.Args[1])
			} else if len(n.Args) == 1 {
				evalPanic(n.Pos, "%s needs a width argument for integer values", n.Ident)
			}
			return stdlogic.FromInt(vv, int(w)), true
		}
		evalPanic(n.Pos, "%s: unsupported argument %s", n.Ident, valueString(v))
	case "unsigned", "signed":
		// numeric_std casts are identity in this value model.
		if len(n.Args) == 1 {
			if v := arg(0, nil); v != nil {
				if _, ok := v.(stdlogic.Vec); ok {
					return v, true
				}
			}
		}
		evalPanic(n.Pos, "%s cast requires a vector", n.Ident)
	case "to_x01":
		v := arg(0, nil)
		switch vv := v.(type) {
		case stdlogic.Std:
			return stdlogic.To01(vv), true
		case stdlogic.Vec:
			out := make(stdlogic.Vec, len(vv))
			for i, s := range vv {
				out[i] = stdlogic.To01(s)
			}
			return out, true
		}
	case "now":
		evalPanic(n.Pos, "the now function is not supported")
	}
	return nil, false
}

var _ = vtime.NS // keep vtime import for timeVal users
