package vhdl

import (
	"errors"
	"strings"
	"testing"
)

// TestElaborationErrorsArePositioned pins the satellite guarantee that every
// elaboration failure surfaces as a *Error carrying the file and a non-zero
// line, so front ends (pvsim, govhdld) can report user source positions
// instead of bare strings.
func TestElaborationErrorsArePositioned(t *testing.T) {
	cases := map[string]struct {
		src  string
		top  string
		want string // substring of the message
	}{
		"no architecture": {
			src:  "entity e is end entity;",
			top:  "e",
			want: "no architecture",
		},
		"unknown entity instance": {
			src: `entity e is end entity;
architecture a of e is begin
  u1 : entity work.nothere;
end architecture;`,
			top:  "e",
			want: "nothere",
		},
		"generic without value": {
			src: `entity e is generic (n : integer); end entity;
architecture a of e is begin end architecture;`,
			top:  "e",
			want: "generic",
		},
		"unresolved multiple drivers": {
			src: `entity e is end entity;
architecture a of e is
  signal s : integer;
begin
  p1 : process begin s <= 1; wait; end process;
  p2 : process begin s <= 2; wait; end process;
end architecture;`,
			top:  "e",
			want: "no resolution function",
		},
		"recursive instantiation": {
			src: `entity e is end entity;
architecture a of e is begin
  u : entity work.e;
end architecture;`,
			top:  "e",
			want: "depth",
		},
	}
	for name, c := range cases {
		t.Run(name, func(t *testing.T) {
			lib := NewLibrary()
			if err := lib.ParseAndAdd("pos.vhd", c.src); err != nil {
				t.Fatalf("parse: %v", err)
			}
			_, err := lib.Elaborate(c.top)
			if err == nil {
				t.Fatal("elaboration succeeded")
			}
			var pe *Error
			if !errors.As(err, &pe) {
				t.Fatalf("not a *Error: %T: %v", err, err)
			}
			if pe.File == "" || pe.Line == 0 {
				t.Fatalf("unpositioned error: file=%q line=%d (%v)", pe.File, pe.Line, err)
			}
			if !strings.Contains(pe.Msg, c.want) {
				t.Fatalf("message %q missing %q", pe.Msg, c.want)
			}
		})
	}
}
