// Package vhdl implements a front end for a synthesizable-plus-testbench
// subset of IEEE Std 1076 VHDL: lexer, parser, semantic analysis and
// elaboration into the distributed kernel's process/signal graph, plus an
// interpreter for process bodies whose resumption state is an explicit
// stack, making interpreted processes snapshot-able and therefore safe to
// roll back under optimistic simulation (the paper's VHDL-to-C translator
// achieved run()/suspend semantics with generated C classes; the explicit
// interpreter stack is this reproduction's equivalent).
//
// Supported subset (documented deviations in DESIGN.md):
//
//   - entity with generics (integer) and ports (in/out/inout)
//   - architecture with signal/constant declarations, enumeration types
//   - process statements with sensitivity lists or wait statements
//     (wait on / until / for), variables, if/elsif/else, case, for/while
//     loops, exit/next, null, report/assert, signal and variable assignment
//     with inertial/transport delays and multi-element waveforms
//   - concurrent (conditional) signal assignment, component and direct
//     entity instantiation, for-generate
//   - types: std_(u)logic, std_logic_vector, bit, bit_vector, boolean,
//     integer (with ranges), time, enumerations
//   - operators: logical, relational, +, -, &, *, /, mod, rem, **, abs,
//     not, sll, srl; attributes 'event, 'length, 'range, 'left, 'right,
//     'high, 'low; rising_edge/falling_edge and other ieee builtins
package vhdl

import "fmt"

// tokKind enumerates token categories.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt     // 42
	tokReal    // 3.14 (parsed, rejected in analysis where unsupported)
	tokChar    // '0'
	tokString  // "0101"
	tokKeyword // reserved word (Text holds the lower-cased word)
	// Delimiters.
	tokSemi     // ;
	tokColon    // :
	tokComma    // ,
	tokLParen   // (
	tokRParen   // )
	tokAssign   // :=
	tokArrowSig // <=  (also less-equal; parser disambiguates)
	tokArrow    // =>
	tokEq       // =
	tokNeq      // /=
	tokLt       // <
	tokGt       // >
	tokGe       // >=
	tokPlus     // +
	tokMinus    // -
	tokStar     // *
	tokStarStar // **
	tokSlash    // /
	tokAmp      // &
	tokTick     // '
	tokDot      // .
	tokBar      // |
)

var kindNames = map[tokKind]string{
	tokEOF: "end of file", tokIdent: "identifier", tokInt: "integer literal",
	tokReal: "real literal", tokChar: "character literal", tokString: "string literal",
	tokKeyword: "keyword", tokSemi: "';'", tokColon: "':'", tokComma: "','",
	tokLParen: "'('", tokRParen: "')'", tokAssign: "':='", tokArrowSig: "'<='",
	tokArrow: "'=>'", tokEq: "'='", tokNeq: "'/='", tokLt: "'<'", tokGt: "'>'",
	tokGe: "'>='", tokPlus: "'+'", tokMinus: "'-'", tokStar: "'*'",
	tokStarStar: "'**'", tokSlash: "'/'", tokAmp: "'&'", tokTick: "'''",
	tokDot: "'.'", tokBar: "'|'",
}

func (k tokKind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

// token is one lexical token.
type token struct {
	Kind tokKind
	Text string // identifier (lower-cased), keyword, or literal body
	Line int
	Col  int
}

func (t token) String() string {
	switch t.Kind {
	case tokIdent, tokKeyword:
		return fmt.Sprintf("%q", t.Text)
	case tokInt, tokReal:
		return t.Text
	case tokChar:
		return "'" + t.Text + "'"
	case tokString:
		return `"` + t.Text + `"`
	default:
		return t.Kind.String()
	}
}

// keywords is the set of reserved words of the supported subset (plus the
// reserved words we must recognize to reject gracefully).
var keywords = map[string]bool{
	"abs": true, "after": true, "alias": true, "all": true, "and": true,
	"architecture": true, "array": true, "assert": true, "attribute": true,
	"begin": true, "block": true, "body": true, "buffer": true, "bus": true,
	"case": true, "component": true, "configuration": true, "constant": true,
	"disconnect": true, "downto": true, "else": true, "elsif": true,
	"end": true, "entity": true, "exit": true, "file": true, "for": true,
	"function": true, "generate": true, "generic": true, "group": true,
	"guarded": true, "if": true, "impure": true, "in": true, "inertial": true,
	"inout": true, "is": true, "label": true, "library": true, "linkage": true,
	"literal": true, "loop": true, "map": true, "mod": true, "nand": true,
	"new": true, "next": true, "nor": true, "not": true, "null": true,
	"of": true, "on": true, "open": true, "or": true, "others": true,
	"out": true, "package": true, "port": true, "postponed": true,
	"procedure": true, "process": true, "pure": true, "range": true,
	"record": true, "register": true, "reject": true, "rem": true,
	"report": true, "return": true, "rol": true, "ror": true, "select": true,
	"severity": true, "signal": true, "shared": true, "sla": true,
	"sll": true, "sra": true, "srl": true, "subtype": true, "then": true,
	"to": true, "transport": true, "type": true, "unaffected": true,
	"units": true, "until": true, "use": true, "variable": true, "wait": true,
	"when": true, "while": true, "with": true, "xnor": true, "xor": true,
}

// Error is a front-end error with source position.
type Error struct {
	File string
	Line int
	Col  int
	Msg  string
}

func (e *Error) Error() string {
	if e.File == "" {
		return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
	}
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}

// ModelDiagnostic marks Error as a fault of the simulated design rather than
// the engine: when one escapes a running process, the pdes layer converts it
// into a Model-flagged SimError instead of crashing the run.
func (e *Error) ModelDiagnostic() {}
