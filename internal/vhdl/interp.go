package vhdl

import (
	"fmt"

	"govhdl/internal/kernel"
	"govhdl/internal/stdlogic"
)

// procInterp is the interpreted Behavior of a VHDL process. Its resumption
// state is an explicit frame stack (not a goroutine), so Snapshot/Restore
// can deep-copy it and the optimistic protocol can roll interpreted
// processes back like any other LP.
type procInterp struct {
	name      string
	file      string // source file of the process (error stamping)
	pos       Pos    // position of the process statement
	body      []Stmt
	varDecls  []*VarDecl
	varTypes  map[string]*Type
	consts    map[string]kernel.Value
	types     map[string]*Type
	enums     map[string]EnumVal
	readIdx   map[string]int
	writeIdx  map[string]int
	sigTypes  map[string]*Type
	maxSteps  int
	hasReport bool

	// Dynamic state (snapshot-covered).
	vars    map[string]kernel.Value
	stack   []frame
	started bool
	until   Expr // pending wait-until condition

	// Per-run transient.
	pc *kernel.ProcCtx
	ec evalCtx
}

// frame is one level of the resumption stack.
type frame struct {
	stmts []Stmt
	idx   int

	// Loop control (nil fields for plain statement lists).
	isLoop   bool
	label    string
	forVar   string
	cur      int64
	stop     int64
	step     int64 // +1/-1 for for-loops; 0 for while/plain loops
	whileC   Expr  // while condition; nil for plain/for loops
	savedVar kernel.Value
	hadVar   bool
}

// interpSnap is the snapshot payload.
type interpSnap struct {
	vars    map[string]kernel.Value
	stack   []frame
	started bool
	until   Expr
}

// CloneFresh produces a pristine interpreter for kernel.Design.CloneFresh:
// the parsed body and the elaboration-time tables are immutable and shared,
// but the types map is copied — Run installs "__obj_"+name entries for
// vector variables when the process first starts, a runtime mutation that
// must not leak between independent runs of the same cached design.
func (b *procInterp) CloneFresh() kernel.Behavior {
	nb := *b
	nb.types = make(map[string]*Type, len(b.types))
	for k, t := range b.types {
		nb.types[k] = t
	}
	nb.vars = nil
	nb.stack = nil
	nb.started = false
	nb.until = nil
	nb.pc = nil
	nb.ec = evalCtx{}
	return &nb
}

// Snapshot deep-copies the mutable interpreter state.
func (b *procInterp) Snapshot() any {
	s := &interpSnap{started: b.started, until: b.until}
	s.vars = make(map[string]kernel.Value, len(b.vars))
	for k, v := range b.vars {
		s.vars[k] = kernel.CloneValue(v)
	}
	s.stack = make([]frame, len(b.stack))
	copy(s.stack, b.stack)
	for i := range s.stack {
		s.stack[i].savedVar = kernel.CloneValue(s.stack[i].savedVar)
	}
	return s
}

// Restore reinstates a snapshot (keeping the snapshot reusable).
func (b *procInterp) Restore(sn any) {
	s := sn.(*interpSnap)
	b.started = s.started
	b.until = s.until
	b.vars = make(map[string]kernel.Value, len(s.vars))
	for k, v := range s.vars {
		b.vars[k] = kernel.CloneValue(v)
	}
	b.stack = make([]frame, len(s.stack))
	copy(b.stack, s.stack)
	for i := range b.stack {
		b.stack[i].savedVar = kernel.CloneValue(b.stack[i].savedVar)
	}
}

// bind prepares the evaluator against the current run context.
func (b *procInterp) bind(p *kernel.ProcCtx) {
	b.pc = p
	b.ec = evalCtx{
		consts: b.consts,
		types:  b.types,
		enums:  b.enums,
		vars:   b.vars,
		sigVal: func(name string) (kernel.Value, *Type, bool) {
			if i, ok := b.readIdx[name]; ok {
				return p.Val(i), b.sigTypes[name], true
			}
			return nil, nil, false
		},
		sigEvent: func(name string) (bool, bool) {
			if i, ok := b.readIdx[name]; ok {
				return p.Event(i), true
			}
			return false, false
		},
	}
}

// WaitCond evaluates the pending "wait until" condition.
func (b *procInterp) WaitCond(p *kernel.ProcCtx) bool {
	b.bind(p)
	defer b.recoverEval()
	if b.until == nil {
		return true
	}
	return b.ec.evalBool(b.until)
}

// recoverEval rethrows evaluation failures as *Error values (which implement
// pdes.ModelError via ModelDiagnostic): a bad design surfaces as a returned
// diagnostic from the run, not a crashed goroutine. The process name is
// folded into the message since the position alone rarely identifies the
// offending process in a multi-process design.
func (b *procInterp) recoverEval() {
	if r := recover(); r != nil {
		if ee, ok := r.(evalError); ok {
			e := *ee.err
			e.Msg = fmt.Sprintf("process %s: %s", b.name, e.Msg)
			if e.File == "" {
				e.File = b.file
			}
			if e.Line == 0 {
				e.Line, e.Col = b.pos.Line, b.pos.Col
			}
			panic(&e)
		}
		panic(r)
	}
}

// Run resumes the process until its next wait.
func (b *procInterp) Run(p *kernel.ProcCtx) kernel.Wait {
	b.bind(p)
	defer b.recoverEval()
	if !b.started {
		b.started = true
		b.vars = make(map[string]kernel.Value, len(b.varTypes))
		for _, d := range b.varDecls {
			t := b.varTypes[d.Names[0]]
			for _, n := range d.Names {
				if d.Init != nil {
					b.vars[n] = kernel.CloneValue(b.ec.eval(d.Init, t))
				} else {
					b.vars[n] = t.defaultValue()
				}
				if t.Kind == tVec {
					b.types["__obj_"+n] = t
				}
			}
		}
		b.stack = []frame{{stmts: b.body}}
	}
	b.ec.vars = b.vars // rebinding: initialization above replaces the map
	steps := 0
	for {
		if len(b.stack) == 0 {
			// The body completed: a VHDL process loops forever.
			b.stack = []frame{{stmts: b.body}}
		}
		w, suspended := b.exec(&steps)
		if suspended {
			return w
		}
	}
}

// exec runs statements until a wait suspends or the stack empties.
func (b *procInterp) exec(steps *int) (kernel.Wait, bool) {
	for len(b.stack) > 0 {
		*steps++
		if *steps > b.maxSteps {
			evalPanic(b.pos, "executed %d steps without suspending (missing wait?)", b.maxSteps)
		}
		f := &b.stack[len(b.stack)-1]
		if f.idx >= len(f.stmts) {
			if !b.advanceFrame(f) {
				b.popFrame()
			}
			continue
		}
		st := f.stmts[f.idx]
		f.idx++
		if w, suspended := b.execStmt(st); suspended {
			return w, true
		}
	}
	return kernel.Wait{}, false
}

// advanceFrame handles the end of a loop body: next iteration or done.
func (b *procInterp) advanceFrame(f *frame) bool {
	if !f.isLoop {
		return false
	}
	if f.step != 0 { // for loop
		f.cur += f.step
		if (f.step > 0 && f.cur > f.stop) || (f.step < 0 && f.cur < f.stop) {
			return false
		}
		b.vars[f.forVar] = f.cur
		f.idx = 0
		return true
	}
	if f.whileC != nil {
		if !b.ec.evalBool(f.whileC) {
			return false
		}
	}
	f.idx = 0
	return true
}

func (b *procInterp) popFrame() {
	f := &b.stack[len(b.stack)-1]
	if f.isLoop && f.forVar != "" {
		if f.hadVar {
			b.vars[f.forVar] = f.savedVar
		} else {
			delete(b.vars, f.forVar)
		}
	}
	b.stack = b.stack[:len(b.stack)-1]
}

func (b *procInterp) execStmt(st Stmt) (kernel.Wait, bool) {
	switch st := st.(type) {
	case *NullStmt:
	case *VarAssign:
		b.execVarAssign(st)
	case *SigAssign:
		b.execSigAssign(st)
	case *IfStmt:
		switch {
		case b.ec.evalBool(st.Cond):
			b.push(frame{stmts: st.Then})
		default:
			done := false
			for _, e := range st.Elifs {
				if b.ec.evalBool(e.Cond) {
					b.push(frame{stmts: e.Then})
					done = true
					break
				}
			}
			if !done && st.Else != nil {
				b.push(frame{stmts: st.Else})
			}
		}
	case *CaseStmt:
		v := b.ec.eval(st.Expr, nil)
		var want *Type
		if vec, ok := v.(stdlogic.Vec); ok {
			want = &Type{Kind: tVec, Lo: int64(len(vec)) - 1, Downto: true}
		}
		matched := false
		for _, arm := range st.Arms {
			if arm.Others {
				b.push(frame{stmts: arm.Body})
				matched = true
				break
			}
			for _, ch := range arm.Choices {
				cv := b.ec.eval(ch, want)
				if kernel.ValueEqual(v, cv) || enumEqual(v, cv) {
					b.push(frame{stmts: arm.Body})
					matched = true
					break
				}
			}
			if matched {
				break
			}
		}
		if !matched {
			evalPanic(st.Pos, "case value %s matched no choice (add others?)", valueString(v))
		}
	case *ForLoop:
		b.pushForLoop(st)
	case *WhileLoop:
		if st.Cond != nil && !b.ec.evalBool(st.Cond) {
			break
		}
		b.push(frame{stmts: st.Body, isLoop: true, label: st.Label, whileC: st.Cond})
	case *ExitStmt:
		if st.When == nil || b.ec.evalBool(st.When) {
			b.unwindLoop(st.Label, st.Pos, true)
		}
	case *NextStmt:
		if st.When == nil || b.ec.evalBool(st.When) {
			b.unwindLoop(st.Label, st.Pos, false)
		}
	case *ReportStmt:
		b.execReport(st)
	case *WaitStmt:
		return b.execWait(st), true
	default:
		evalPanic(Pos{}, "unsupported statement %T", st)
	}
	return kernel.Wait{}, false
}

// enumEqual compares enum values without panicking on mismatched kinds
// (ValueEqual covers everything else).
func enumEqual(a, d kernel.Value) bool {
	av, ok1 := a.(EnumVal)
	dv, ok2 := d.(EnumVal)
	return ok1 && ok2 && av.Enum.Name == dv.Enum.Name && av.Ord == dv.Ord
}

func (b *procInterp) push(f frame) { b.stack = append(b.stack, f) }

func (b *procInterp) pushForLoop(st *ForLoop) {
	var lo, hi int64
	downto := st.Downto
	if st.RangeAttr != nil {
		t := b.ec.namedType(&Name{Pos: st.Pos, Ident: st.RangeAttr.Ident})
		lo, hi, downto = t.Lo, t.Hi, t.Downto
	} else {
		lo = b.ec.evalInt(st.Lo)
		hi = b.ec.evalInt(st.Hi)
	}
	step := int64(1)
	if downto {
		step = -1
	}
	if (step > 0 && lo > hi) || (step < 0 && lo < hi) {
		return // null range: zero iterations
	}
	saved, had := b.vars[st.Var]
	b.vars[st.Var] = lo
	b.push(frame{
		stmts: st.Body, isLoop: true, label: st.Label,
		forVar: st.Var, cur: lo, stop: hi, step: step,
		savedVar: saved, hadVar: had,
	})
}

// unwindLoop pops frames to the nearest (or labeled) loop; exit also pops
// the loop itself, next restarts it.
func (b *procInterp) unwindLoop(label string, pos Pos, isExit bool) {
	for len(b.stack) > 0 {
		f := &b.stack[len(b.stack)-1]
		if f.isLoop && (label == "" || f.label == label) {
			if isExit {
				b.popFrame()
			} else {
				// next: jump to the loop-end logic by exhausting the body.
				f.idx = len(f.stmts)
			}
			return
		}
		b.popFrame()
	}
	evalPanic(pos, "exit/next outside a loop")
}

func (b *procInterp) execVarAssign(st *VarAssign) {
	name := st.Target.Ident
	cur, ok := b.vars[name]
	if !ok {
		evalPanic(st.Pos, "assignment to undeclared variable %q", name)
	}
	t := b.varTypes[name]
	switch {
	case st.Target.Args != nil:
		vec, ok := cur.(stdlogic.Vec)
		if !ok {
			evalPanic(st.Pos, "indexing non-array variable %q", name)
		}
		idx := b.ec.evalInt(st.Target.Args[0])
		off, err := t.indexOffset(idx)
		if err != nil {
			evalPanic(st.Pos, "%v", err)
		}
		v := b.ec.eval(st.Value, &Type{Kind: tStd})
		sv, ok := v.(stdlogic.Std)
		if !ok {
			evalPanic(st.Pos, "element assignment needs a std_logic value")
		}
		nv := vec.Clone()
		nv[off] = sv
		b.vars[name] = nv
	case st.Target.HasSlice:
		evalPanic(st.Pos, "slice assignment targets are not supported")
	default:
		v := b.ec.eval(st.Value, t)
		b.vars[name] = b.coerce(st.Pos, v, t)
	}
}

// coerce adapts literal kinds to the target type and validates widths.
func (b *procInterp) coerce(pos Pos, v kernel.Value, t *Type) kernel.Value {
	if t == nil {
		return kernel.CloneValue(v)
	}
	switch t.Kind {
	case tVec:
		vec, ok := v.(stdlogic.Vec)
		if !ok {
			evalPanic(pos, "expected a vector value, got %s", valueString(v))
		}
		if len(vec) != t.Width() {
			evalPanic(pos, "vector width mismatch: %d vs %d", len(vec), t.Width())
		}
	case tStd:
		if _, ok := v.(stdlogic.Std); !ok {
			evalPanic(pos, "expected std_logic, got %s", valueString(v))
		}
	case tInt:
		iv, ok := v.(int64)
		if !ok {
			evalPanic(pos, "expected integer, got %s", valueString(v))
		}
		if iv < t.Lo || iv > t.Hi {
			evalPanic(pos, "integer value %d out of range %d to %d", iv, t.Lo, t.Hi)
		}
	case tBool:
		if _, ok := v.(bool); !ok {
			evalPanic(pos, "expected boolean, got %s", valueString(v))
		}
	case tTime:
		if _, ok := v.(timeVal); !ok {
			if iv, isInt := v.(int64); isInt {
				return timeVal(iv)
			}
			evalPanic(pos, "expected time, got %s", valueString(v))
		}
	case tEnum:
		ev, ok := v.(EnumVal)
		if !ok || ev.Enum.Name != t.Enum.Name {
			evalPanic(pos, "expected %s, got %s", t.Enum.Name, valueString(v))
		}
	}
	return kernel.CloneValue(v)
}

func (b *procInterp) execSigAssign(st *SigAssign) {
	name := st.Target.Ident
	port, ok := b.writeIdx[name]
	if !ok {
		evalPanic(st.Pos, "assignment to unknown signal %q", name)
	}
	t := b.sigTypes[name]
	edit := kernel.Edit{Transport: st.Transport}
	if st.Reject != nil {
		edit.Reject = b.ec.evalTime(st.Reject)
	}
	for _, we := range st.Wave {
		v := b.coerce(st.Pos, b.ec.eval(we.Value, t), t)
		el := kernel.WaveElem{Value: v}
		if we.After != nil {
			el.After = b.ec.evalTime(we.After)
		}
		edit.Wave = append(edit.Wave, el)
	}
	b.pc.AssignWave(port, edit)
}

func (b *procInterp) execReport(st *ReportStmt) {
	if st.Assert != nil && b.ec.evalBool(st.Assert) {
		return // assertion holds
	}
	sev := st.Severity
	if sev == "" {
		if st.Assert != nil {
			sev = "error"
		} else {
			sev = "note"
		}
	}
	msg := "assertion failed"
	if st.Message != nil {
		msg = valueString(b.ec.eval(st.Message, nil))
	}
	b.pc.Report(sev, msg)
	if sev == "failure" {
		evalPanic(st.Pos, "severity failure: %s", msg)
	}
}

func (b *procInterp) execWait(st *WaitStmt) kernel.Wait {
	var w kernel.Wait
	addPort := func(name string, pos Pos) {
		i, ok := b.readIdx[name]
		if !ok {
			evalPanic(pos, "wait on unknown signal %q", name)
		}
		w.Ports = append(w.Ports, i)
	}
	switch {
	case st.On != nil:
		for _, n := range st.On {
			addPort(n, st.Pos)
		}
	case st.Until != nil:
		// Implicit sensitivity: the signals in the condition.
		for _, n := range signalNamesIn(st.Until, b.readIdx) {
			addPort(n, st.Pos)
		}
	}
	if st.HasCond {
		w.HasCond = true
		b.until = st.Until
	} else {
		b.until = nil
	}
	if st.HasFor {
		w.HasTimeout = true
		w.Timeout = b.ec.evalTime(st.For)
	}
	return w
}

// signalNamesIn lists the distinct signal names referenced by an expression.
func signalNamesIn(e Expr, sigs map[string]int) []string {
	seen := map[string]bool{}
	var out []string
	var walk func(Expr)
	walk = func(e Expr) {
		switch e := e.(type) {
		case nil:
		case *Name:
			if _, ok := sigs[e.Ident]; ok && !seen[e.Ident] {
				seen[e.Ident] = true
				out = append(out, e.Ident)
			}
			for _, a := range e.Args {
				walk(a)
			}
			walk(e.SliceLo)
			walk(e.SliceHi)
		case *Unary:
			walk(e.X)
		case *Binary:
			walk(e.L)
			walk(e.R)
		case *Aggregate:
			for _, el := range e.Elems {
				walk(el)
			}
			walk(e.Others)
		}
	}
	walk(e)
	return out
}
