package vhdl

import (
	"fmt"
	"strings"
	"testing"

	"govhdl/internal/kernel"
	"govhdl/internal/pdes"
	"govhdl/internal/trace"
	"govhdl/internal/vtime"
)

func elaborate(t *testing.T, src, top string) *kernel.Design {
	t.Helper()
	lib := NewLibrary()
	if err := lib.ParseAndAdd("test.vhd", src); err != nil {
		t.Fatalf("parse: %v", err)
	}
	d, err := lib.Elaborate(top)
	if err != nil {
		t.Fatalf("elaborate: %v", err)
	}
	return d
}

func simulate(t *testing.T, src, top string, until vtime.Time) (*kernel.Design, *pdes.System, *trace.Recorder) {
	t.Helper()
	d := elaborate(t, src, top)
	sys := d.Build()
	rec := trace.NewRecorder()
	if _, err := pdes.RunSequential(sys, until, rec); err != nil {
		t.Fatalf("simulate: %v", err)
	}
	return d, sys, rec
}

func traceContains(t *testing.T, sys *pdes.System, rec *trace.Recorder, wants ...string) {
	t.Helper()
	joined := strings.Join(rec.Lines(sys), "\n")
	for _, w := range wants {
		if !strings.Contains(joined, w) {
			t.Errorf("trace missing %q; got:\n%s", w, joined)
		}
	}
}

const counterSrc = `
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity counter is
  generic (WIDTH : integer := 4);
  port (clk : in std_logic;
        q   : out std_logic_vector(WIDTH-1 downto 0));
end entity counter;

architecture rtl of counter is
  signal cnt : std_logic_vector(WIDTH-1 downto 0) := (others => '0');
begin
  process (clk)
  begin
    if rising_edge(clk) then
      cnt <= cnt + 1;
    end if;
  end process;
  q <= cnt;
end architecture rtl;

entity tb is
end entity tb;

architecture sim of tb is
  signal clk : std_logic := '0';
  signal q : std_logic_vector(3 downto 0);
begin
  clkgen : process
  begin
    clk <= '0';
    wait for 5 ns;
    clk <= '1';
    wait for 5 ns;
  end process;

  dut : entity work.counter
    generic map (WIDTH => 4)
    port map (clk => clk, q => q);
end architecture sim;
`

func TestBehavioralCounter(t *testing.T) {
	_, sys, rec := simulate(t, counterSrc, "tb", 100*vtime.NS)
	traceContains(t, sys, rec,
		`sig:tb.q @5ns`, // first rising edge (clk toggles at 5,10,15...)
		`= "0001"`, `= "0010"`, `= "1001"`,
	)
}

const deltaSrc = `
entity chain is end entity chain;
architecture rtl of chain is
  signal a, b, c : std_logic := '0';
begin
  stim : process
  begin
    wait for 10 ns;
    a <= '1';
    wait for 10 ns;
    a <= '0';
    wait;
  end process;
  b <= not a;
  c <= not b;
end architecture;
`

func TestDeltaCyclesThroughConcurrentAssigns(t *testing.T) {
	_, sys, rec := simulate(t, deltaSrc, "chain", 50*vtime.NS)
	// Initial evaluation: b -> '1' and c -> '1' at time 0, then c -> '0'
	// one delta later; at 10ns the pulse ripples through deltas.
	traceContains(t, sys, rec,
		"sig:chain.b @0fs+1Δ.2 = '1'",
		"sig:chain.c @0fs+2Δ.2 = '0'",
		"sig:chain.a @10ns+1Δ.2 = '1'",
		"sig:chain.b @10ns+2Δ.2 = '0'",
		"sig:chain.c @10ns+3Δ.2 = '1'",
	)
}

const enumFSMSrc = `
entity fsm is end entity;
architecture rtl of fsm is
  type state_t is (idle, run, done);
  signal st : state_t := idle;
  signal clk : std_logic := '0';
  signal hits : integer := 0;
begin
  clkgen : process
  begin
    wait for 5 ns;
    clk <= not clk;
  end process;

  step : process (clk)
  begin
    if rising_edge(clk) then
      case st is
        when idle => st <= run;
        when run  => st <= done;
        when done => st <= idle;
      end case;
    end if;
  end process;

  watch : process (st)
    variable n : integer := 0;
  begin
    if st = done then
      n := n + 1;
      hits <= n;
    end if;
  end process;
end architecture;
`

func TestEnumFSMAndVariables(t *testing.T) {
	d, sys, rec := simulate(t, enumFSMSrc, "fsm", 100*vtime.NS)
	// The clock rises at 5,15,...,95 ns: st cycles idle->run->done, so
	// "done" lands at edges 2,5,8 (15, 45, 75 ns).
	traceContains(t, sys, rec,
		"sig:fsm.hits @15ns", "sig:fsm.hits @45ns", "sig:fsm.hits @75ns",
		"= 3",
	)
	// Ten edges from idle: 10 mod 3 = 1 -> run.
	sig := findSignal(t, d, "fsm.st")
	if got := d.Effective(sig).(EnumVal); got.Ord != 1 {
		t.Errorf("final state %v, want run", got)
	}
}

func findSignal(t *testing.T, d *kernel.Design, name string) *kernel.Signal {
	t.Helper()
	for _, s := range d.Signals() {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("no signal %q", name)
	return nil
}

const hierarchySrc = `
entity inv is
  port (x : in std_logic; y : out std_logic);
end entity;
architecture rtl of inv is
begin
  y <= not x after 1 ns;
end architecture;

entity ring is
  generic (N : integer := 3);
end entity;
architecture structural of ring is
  component inv
    port (x : in std_logic; y : out std_logic);
  end component;
  signal nodes : std_logic_vector(0 to 3) := "0000";
  signal n0, n1, n2, n3 : std_logic := '0';
begin
  g : for i in 0 to 2 generate
    u : inv port map (x => n0, y => n1);
  end generate;
  first : inv port map (n3, n2);
end architecture;
`

func TestHierarchyAndGenerate(t *testing.T) {
	d := elaborate(t, hierarchySrc, "ring")
	// 3 generated inv instances + 1 direct = 4 processes (each inv arch
	// has one concurrent assignment).
	if d.NumProcesses() != 4 {
		t.Errorf("got %d processes, want 4", d.NumProcesses())
	}
}

const resolvedSrc = `
entity bus_tb is end entity;
architecture sim of bus_tb is
  signal b : std_logic := 'Z';
begin
  d1 : process
  begin
    wait for 10 ns;
    b <= '1';
    wait for 10 ns;
    b <= 'Z';
    wait;
  end process;
  d2 : process
  begin
    wait for 15 ns;
    b <= '0';
    wait for 10 ns;
    b <= 'Z';
    wait;
  end process;
end architecture;
`

func TestResolvedBusFromVHDL(t *testing.T) {
	_, sys, rec := simulate(t, resolvedSrc, "bus_tb", 60*vtime.NS)
	traceContains(t, sys, rec,
		"= '1'", // only d1 driving
		"= 'X'", // conflict at 15..20ns
		"= '0'", // d1 released at 20ns
		"= 'Z'", // both released at 25ns
	)
}

const waitUntilSrc = `
entity wu is end entity;
architecture sim of wu is
  signal clk : std_logic := '0';
  signal seen : integer := 0;
begin
  clkgen : process
  begin
    wait for 5 ns;
    clk <= not clk;
  end process;
  w : process
    variable n : integer := 0;
  begin
    wait until clk = '1' for 100 ns;
    n := n + 1;
    seen <= n;
  end process;
end architecture;
`

func TestWaitUntilWithTimeout(t *testing.T) {
	_, sys, rec := simulate(t, waitUntilSrc, "wu", 40*vtime.NS)
	// Rising edges at 5, 15, 25, 35 ns: the process resumes each time.
	traceContains(t, sys, rec, "sig:wu.seen @5ns", "= 4")
}

const loopSrc = `
entity lp is end entity;
architecture sim of lp is
  signal parity : std_logic := '0';
  signal ones : integer := 0;
  constant PATTERN : std_logic_vector(7 downto 0) := "11010010";
begin
  p : process
    variable acc : std_logic := '0';
    variable count : integer := 0;
  begin
    for i in 7 downto 0 loop
      next when PATTERN(i) = '0';
      acc := acc xor '1';
      count := count + 1;
      exit when count = 3;
    end loop;
    parity <= acc;
    ones <= count;
    wait;
  end process;
end architecture;
`

func TestLoopsExitNextAndConstIndexing(t *testing.T) {
	_, sys, rec := simulate(t, loopSrc, "lp", 10*vtime.NS)
	// PATTERN scanned from bit 7 down: '1','1','0'(skip),'1' -> stops at
	// count=3, acc toggled thrice = '1'.
	traceContains(t, sys, rec, "= '1'", "= 3")
}

const reportSrc = `
entity rp is end entity;
architecture sim of rp is
  signal x : integer := 0;
begin
  p : process
  begin
    report "starting";
    x <= 42;
    wait for 1 ns;
    assert x = 42 report "x is wrong" severity error;
    assert x = 41 report "x should not be 41";
    wait;
  end process;
end architecture;
`

func TestReportAndAssert(t *testing.T) {
	_, sys, rec := simulate(t, reportSrc, "rp", 10*vtime.NS)
	joined := strings.Join(rec.Lines(sys), "\n")
	if !strings.Contains(joined, "report(note): starting") {
		t.Errorf("missing report note:\n%s", joined)
	}
	if strings.Contains(joined, "x is wrong") {
		t.Errorf("assertion that holds was reported:\n%s", joined)
	}
	if !strings.Contains(joined, "x should not be 41") {
		t.Errorf("failed assertion not reported:\n%s", joined)
	}
}

func TestVHDLParallelMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name, src, top string
	}{
		{"counter", counterSrc, "tb"},
		{"enumfsm", enumFSMSrc, "fsm"},
		{"delta", deltaSrc, "chain"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			until := 100 * vtime.NS
			dRef := elaborate(t, tc.src, tc.top)
			sysRef := dRef.Build()
			want := trace.NewRecorder()
			if _, err := pdes.RunSequential(sysRef, until, want); err != nil {
				t.Fatal(err)
			}
			for _, proto := range []pdes.Protocol{pdes.ProtoConservative, pdes.ProtoOptimistic, pdes.ProtoDynamic} {
				d := elaborate(t, tc.src, tc.top)
				sys := d.Build()
				got := trace.NewRecorder()
				if _, err := pdes.Run(sys, pdes.Config{Workers: 3, Protocol: proto, GVTEvery: 128},
					until, got); err != nil {
					t.Fatalf("%v: %v", proto, err)
				}
				if ok, diff := trace.Equal(sys, want, got); !ok {
					t.Errorf("%v: %s", proto, diff)
				}
			}
		})
	}
}

func TestParserErrors(t *testing.T) {
	cases := []string{
		"entity e is end entity f;",     // label mismatch
		"entity e is port (x: in); end", // missing type
		"architecture a of e is begin process begin @ end process; end;",
	}
	for _, src := range cases {
		if _, err := Parse("bad.vhd", src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}

func TestElaborationErrors(t *testing.T) {
	cases := map[string]string{
		"no architecture": `entity e is end entity;`,
		"unknown signal": `entity e is end entity;
			architecture a of e is begin
			p : process begin q <= '1'; wait; end process;
			end architecture;`,
		"unknown entity": `entity e is end entity;
			architecture a of e is begin
			u1 : entity work.nothere port map (x => '0');
			end architecture;`,
	}
	lib := NewLibrary()
	for name, src := range cases {
		lib := lib
		_ = lib
		l := NewLibrary()
		if err := l.ParseAndAdd("t.vhd", src); err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if _, err := l.Elaborate("e"); err == nil {
			t.Errorf("%s: elaboration succeeded", name)
		}
	}
}

func TestLexerBasics(t *testing.T) {
	toks, err := newLexer("t", `enTity -- comment
	X_1 '0' "01Z" 42 3 ns <= => := /= ** s'event`).lex()
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for _, tk := range toks {
		kinds = append(kinds, fmt.Sprintf("%v:%s", tk.Kind, tk.Text))
	}
	joined := strings.Join(kinds, " ")
	for _, want := range []string{
		"keyword:entity", "identifier:x_1", "character literal:0",
		`string literal:01Z`, "integer literal:42",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in %s", want, joined)
		}
	}
	// The tick in s'event must lex as an attribute tick, not a char.
	found := false
	for i, tk := range toks {
		if tk.Kind == tokTick && i > 0 && toks[i-1].Text == "s" {
			found = true
		}
	}
	if !found {
		t.Error("attribute tick not recognized")
	}
}

func runSeqHelper(d *kernel.Design) (any, error) {
	return pdes.RunSequential(d.Build(), 10*vtime.NS, nil)
}
