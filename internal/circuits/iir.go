package circuits

import (
	"fmt"

	"govhdl/internal/netlist"
	"govhdl/internal/vtime"
)

// IIROpts sizes the Gray–Markel lattice IIR benchmark.
type IIROpts struct {
	// Sections is the number of cascaded two-multiplier lattice sections
	// (default 3, which lands the LP count near the paper's gate-level
	// IIR size).
	Sections int
	// Width is the datapath width in bits (default 8). Each section then
	// holds two Width x Width array multipliers, two Width-bit adders and
	// one Width-bit state register.
	Width int
	// GateDelay is the inertial delay of every gate (default 1ns).
	GateDelay vtime.Time
	// Cycles sets DefaultHorizon (default 25 clock cycles).
	Cycles int
}

func (o *IIROpts) fill() {
	if o.Sections <= 0 {
		o.Sections = 3
	}
	if o.Width <= 0 {
		o.Width = 8
	}
	if o.GateDelay <= 0 {
		o.GateDelay = vtime.NS
	}
	if o.Cycles <= 0 {
		o.Cycles = 25
	}
}

// BuildIIR builds the gate-level Gray–Markel cascaded lattice IIR filter
// (paper Fig. 7/8). Each section computes, in unsigned fixed point with the
// coefficient treated as a Q0.W fraction:
//
//	kp = (k * w) >> W          (multiplier 1, upper half of the product)
//	e  = x - kp                (two's-complement subtractor)
//	ke = (k * e) >> W          (multiplier 2)
//	y  = w + ke                (adder)
//	w' = e                     (z^-1 state register, clocked)
//
// with y cascading into the next section's x. The input x of the first
// section is driven by a deterministic pseudo-random sample stream changing
// at every falling clock edge.
func BuildIIR(opts IIROpts) *Circuit {
	opts.fill()
	w := opts.Width
	// Settle window: the falling-to-rising half period must cover the
	// full combinational cascade (the y outputs chain through every
	// section, and each array multiplier is a cascade of ripple adders
	// with ~2(2w) levels per row). Generously overestimated.
	depth := vtime.Time(opts.Sections*(6*w*w+24*w) + 200)
	half := depth * opts.GateDelay

	b := netlist.New("iir", opts.GateDelay)
	clk := b.Clock("clk", half)

	x := b.NewBus("x", w)
	// Stimulus: new sample at every falling edge (2*half*k).
	var rng xorshift = 0x9e3779b97f4a7c15
	steps := make([]netlist.VecStep, opts.Cycles+2)
	samples := make([]uint64, len(steps))
	for i := range steps {
		samples[i] = rng.next() & ((1 << uint(w)) - 1)
		steps[i] = netlist.VecStep{Delay: 2 * half, Value: samples[i]}
	}
	b.DriveBus(x, steps)

	// Coefficients per section (constant wires).
	coeffs := make([]uint64, opts.Sections)
	for i := range coeffs {
		coeffs[i] = (rng.next() & ((1 << uint(w)) - 1)) | 1
	}

	type section struct {
		wreg netlist.Bus
		k    uint64
	}
	secs := make([]section, opts.Sections)
	in := x
	for si := 0; si < opts.Sections; si++ {
		k := b.ConstBus(coeffs[si], w)
		wreg := b.NewBus(fmt.Sprintf("w%d", si), w)

		p1 := b.ArrayMultiplier(k, wreg) // 2w bits
		kp := p1[:w]                     // upper half = >>W
		e := b.NewBus(fmt.Sprintf("e%d", si), w)
		b.Subtractor(e, in, kp)

		p2 := b.ArrayMultiplier(k, e)
		ke := p2[:w]
		y := b.NewBus(fmt.Sprintf("y%d", si), w)
		b.RippleAdder(y, wreg, ke, nil)

		b.Register(wreg, e, clk)
		secs[si] = section{wreg: wreg, k: coeffs[si]}
		in = y
	}

	d := b.Design()
	c := &Circuit{
		Name:           "IIR",
		Design:         d,
		ClockHalf:      half,
		GateDelay:      opts.GateDelay,
		DefaultHorizon: vtime.Time(opts.Cycles) * 2 * half,
	}
	mask := uint64(1)<<uint(w) - 1
	c.Verify = func(horizon vtime.Time) error {
		edges := c.RisingEdges(horizon)
		// Reference: w registers update on each rising edge from the
		// combinational cascade computed off the inputs as of that edge.
		// The stimulus assigns samples[k] at time 2h(k+1) (after its k-th
		// wait), so the rising edge e at (2e+1)h sees samples[e-1], and
		// edge 0 sees the wire's initial zero.
		wr := make([]uint64, opts.Sections)
		for e := 0; e < edges; e++ {
			var xin uint64
			if e > 0 {
				idx := e - 1
				if idx >= len(samples) {
					idx = len(samples) - 1
				}
				xin = samples[idx]
			}
			next := make([]uint64, opts.Sections)
			for si := 0; si < opts.Sections; si++ {
				k := secs[si].k
				kp := (k * wr[si] >> uint(w)) & mask
				ev := (xin - kp) & mask
				ke := (k * ev >> uint(w)) & mask
				y := (wr[si] + ke) & mask
				next[si] = ev
				xin = y
			}
			wr = next
		}
		for si := 0; si < opts.Sections; si++ {
			got, ok := netlist.BusValue(d, secs[si].wreg)
			if !ok || got != wr[si] {
				return fmt.Errorf("iir section %d: w = %d (ok=%v) after %d edges, want %d",
					si, got, ok, edges, wr[si])
			}
		}
		return nil
	}
	return c
}
