package circuits

import (
	"fmt"

	"govhdl/internal/kernel"
	"govhdl/internal/netlist"
	"govhdl/internal/vtime"
)

// DCTOpts sizes the DCT processor benchmark.
type DCTOpts struct {
	// Width is the sample and coefficient width in bits (default 8).
	Width int
	// MACs is the number of multiply-accumulate rows — one per DCT output
	// coefficient (default 5, which lands the LP count near the paper's
	// gate-level DCT size; use 8 for a full 8-point DCT).
	MACs int
	// GateDelay is the inertial delay of every gate (default 1ns).
	GateDelay vtime.Time
	// Cycles sets DefaultHorizon (default 20 clock cycles).
	Cycles int
}

func (o *DCTOpts) fill() {
	if o.Width <= 0 {
		o.Width = 8
	}
	if o.MACs <= 0 {
		o.MACs = 5
	}
	if o.GateDelay <= 0 {
		o.GateDelay = vtime.NS
	}
	if o.Cycles <= 0 {
		o.Cycles = 20
	}
}

// BuildDCT builds the gate-level DCT processor (paper Fig. 9/10): MACs
// multiply-accumulate rows computing y[i] = Σ_j c[i][j]·x[j] over a shared
// streamed input. A 3-bit phase counter selects the coefficient of each row
// from a mux-tree ROM; every rising clock edge accumulates one product:
//
//	acc[i]' = acc[i] + c[i][phase] * x
//
// with x a deterministic pseudo-random sample stream changing at falling
// clock edges.
func BuildDCT(opts DCTOpts) *Circuit {
	opts.fill()
	w := opts.Width
	// Settle window covering the ROM mux tree, the array multiplier's
	// cascaded ripple adders and the 2w-bit accumulator adder,
	// generously overestimated.
	half := vtime.Time(6*w*w+30*w+200) * opts.GateDelay

	b := netlist.New("dct", opts.GateDelay)
	clk := b.Clock("clk", half)

	// Shared 3-bit phase counter: p0' = not p0, p1' = p1 xor p0,
	// p2' = p2 xor (p1 and p0).
	p0 := b.Wire("p0")
	p1 := b.Wire("p1")
	p2 := b.Wire("p2")
	np0 := b.Wire("np0")
	np1 := b.Wire("np1")
	np2 := b.Wire("np2")
	t01 := b.Wire("t01")
	b.Not(np0, p0)
	b.Xor(np1, p1, p0)
	b.And(t01, p1, p0)
	b.Xor(np2, p2, t01)
	b.DFF(p0, np0, clk)
	b.DFF(p1, np1, clk)
	b.DFF(p2, np2, clk)
	phase := netlist.Bus{p2, p1, p0} // MSB first

	// Input sample stream.
	x := b.NewBus("x", w)
	var rng xorshift = 0xdeadbeefcafef00d
	steps := make([]netlist.VecStep, opts.Cycles+2)
	samples := make([]uint64, len(steps))
	for i := range steps {
		samples[i] = rng.next() & ((1 << uint(w)) - 1)
		steps[i] = netlist.VecStep{Delay: 2 * half, Value: samples[i]}
	}
	b.DriveBus(x, steps)

	// Coefficient tables.
	coeffs := make([][]uint64, opts.MACs)
	for i := range coeffs {
		coeffs[i] = make([]uint64, 8)
		for j := range coeffs[i] {
			coeffs[i][j] = rng.next() & ((1 << uint(w)) - 1)
		}
	}

	// rom8 builds an 8:1 mux tree per bit over constant leaves.
	rom8 := func(name string, table []uint64) netlist.Bus {
		out := make(netlist.Bus, w)
		for bit := 0; bit < w; bit++ {
			shift := uint(w - 1 - bit)
			leaf := func(j int) *kernel.Signal {
				if table[j]&(1<<shift) != 0 {
					return b.One()
				}
				return b.Zero()
			}
			// Level 1: select on p0 (LSB).
			l1 := make([]*kernel.Signal, 4)
			for k := 0; k < 4; k++ {
				l1[k] = b.Wire("")
				b.Mux2(l1[k], p0, leaf(2*k), leaf(2*k+1))
			}
			l2 := make([]*kernel.Signal, 2)
			for k := 0; k < 2; k++ {
				l2[k] = b.Wire("")
				b.Mux2(l2[k], p1, l1[2*k], l1[2*k+1])
			}
			out[bit] = b.Wire(fmt.Sprintf("%s[%d]", name, w-1-bit))
			b.Mux2(out[bit], p2, l2[0], l2[1])
		}
		return out
	}

	accs := make([]netlist.Bus, opts.MACs)
	for i := 0; i < opts.MACs; i++ {
		c := rom8(fmt.Sprintf("c%d", i), coeffs[i])
		prod := b.ArrayMultiplier(c, x) // 2w bits
		acc := b.NewBus(fmt.Sprintf("acc%d", i), 2*w)
		sum := b.NewBus(fmt.Sprintf("sum%d", i), 2*w)
		b.RippleAdder(sum, acc, prod, nil)
		b.Register(acc, sum, clk)
		accs[i] = acc
	}

	d := b.Design()
	c := &Circuit{
		Name:           "DCT",
		Design:         d,
		ClockHalf:      half,
		GateDelay:      opts.GateDelay,
		DefaultHorizon: vtime.Time(opts.Cycles) * 2 * half,
	}
	mask2w := uint64(1)<<uint(2*w) - 1
	c.Verify = func(horizon vtime.Time) error {
		edges := c.RisingEdges(horizon)
		acc := make([]uint64, opts.MACs)
		phaseV := 0
		for e := 0; e < edges; e++ {
			var xin uint64
			if e > 0 {
				idx := e - 1
				if idx >= len(samples) {
					idx = len(samples) - 1
				}
				xin = samples[idx]
			}
			for i := 0; i < opts.MACs; i++ {
				acc[i] = (acc[i] + coeffs[i][phaseV]*xin) & mask2w
			}
			phaseV = (phaseV + 1) % 8
		}
		for i := 0; i < opts.MACs; i++ {
			got, ok := netlist.BusValue(d, accs[i])
			if !ok || got != acc[i] {
				return fmt.Errorf("dct mac %d: acc = %d (ok=%v) after %d edges, want %d",
					i, got, ok, edges, acc[i])
			}
		}
		_ = phase
		return nil
	}
	return c
}
