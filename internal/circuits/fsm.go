package circuits

import (
	"fmt"

	"govhdl/internal/kernel"
	"govhdl/internal/netlist"
	"govhdl/internal/stdlogic"
	"govhdl/internal/vtime"
)

// FSMOpts sizes the FSM ensemble benchmark.
type FSMOpts struct {
	// Machines is the number of interacting finite state machines in the
	// ring. The default (46) lands the LP count at ~553-554, matching the
	// paper's FSM benchmark size.
	Machines int
	// ClockHalf is the clock half period (default 5ns).
	ClockHalf vtime.Time
	// Cycles sets DefaultHorizon (default 200 clock cycles).
	Cycles int
}

func (o *FSMOpts) fill() {
	if o.Machines <= 0 {
		o.Machines = 46
	}
	if o.ClockHalf <= 0 {
		o.ClockHalf = 5 * vtime.NS
	}
	if o.Cycles <= 0 {
		o.Cycles = 200
	}
}

// BuildFSM builds the zero-delay FSM ensemble (paper Fig. 5/6): a ring of
// two-bit Moore machines where machine i's output feeds machine i+1's
// input. All combinational logic has zero delay, so every clock edge sets
// off a burst of delta cycles — the workload the paper uses to show that
// the distributed VHDL cycle handles delta cycles and that conservative
// synchronization copes best with many simultaneous events.
//
// Per machine: state bits s1 s0, next state
//
//	ns0 = not s0
//	ns1 = s1 xor (s0 or in)
//	out = s1 xor s0
func BuildFSM(opts FSMOpts) *Circuit {
	opts.fill()
	b := netlist.New("fsm", 0) // zero gate delay
	clk := b.Clock("clk", opts.ClockHalf)

	m := opts.Machines
	outs := make([]*kernel.Signal, m)
	s0s := make([]*kernel.Signal, m)
	s1s := make([]*kernel.Signal, m)
	for i := 0; i < m; i++ {
		outs[i] = b.Wire(fmt.Sprintf("out%d", i))
	}
	for i := 0; i < m; i++ {
		in := outs[(i+m-1)%m]
		s0 := b.Wire(fmt.Sprintf("s0_%d", i))
		s1 := b.Wire(fmt.Sprintf("s1_%d", i))
		ns0 := b.Wire(fmt.Sprintf("ns0_%d", i))
		ns1 := b.Wire(fmt.Sprintf("ns1_%d", i))
		w1 := b.Wire(fmt.Sprintf("w1_%d", i))
		b.Not(ns0, s0)
		b.Or(w1, s0, in)
		b.Xor(ns1, s1, w1)
		b.Xor(outs[i], s1, s0)
		b.DFF(s0, ns0, clk)
		b.DFF(s1, ns1, clk)
		s0s[i], s1s[i] = s0, s1
	}

	d := b.Design()
	c := &Circuit{
		Name:           "FSM",
		Design:         d,
		ClockHalf:      opts.ClockHalf,
		DefaultHorizon: vtime.Time(opts.Cycles) * 2 * opts.ClockHalf,
	}
	c.Verify = func(horizon vtime.Time) error {
		edges := c.RisingEdges(horizon)
		s0, s1 := make([]bool, m), make([]bool, m)
		out := func(i int) bool { return s1[i] != s0[i] }
		for e := 0; e < edges; e++ {
			n0, n1 := make([]bool, m), make([]bool, m)
			for i := 0; i < m; i++ {
				in := out((i + m - 1) % m)
				n0[i] = !s0[i]
				n1[i] = s1[i] != (s0[i] || in)
			}
			s0, s1 = n0, n1
		}
		for i := 0; i < m; i++ {
			g0 := stdlogic.IsHigh(d.Effective(s0s[i]).(stdlogic.Std))
			g1 := stdlogic.IsHigh(d.Effective(s1s[i]).(stdlogic.Std))
			if g0 != s0[i] || g1 != s1[i] {
				return fmt.Errorf("fsm %d: state (%v,%v) after %d edges, want (%v,%v)",
					i, g1, g0, edges, s1[i], s0[i])
			}
		}
		return nil
	}
	return c
}
