// Package circuits builds the three benchmark circuits of the paper's
// evaluation:
//
//   - the zero-delay FSM ensemble of Fig. 5/6 (~553 LPs, delta-cycle heavy),
//   - the Gray–Markel cascaded lattice IIR filter of Fig. 7/8 at gate level
//     (~7000 LPs),
//   - the DCT processor of Fig. 9/10 at gate level (~8000 LPs),
//
// each with a bit-true software reference model used to verify every
// simulation ("All simulations were verified to be correct").
package circuits

import (
	"fmt"

	"govhdl/internal/kernel"
	"govhdl/internal/vtime"
)

// Circuit is a built benchmark: the design plus its verification model.
type Circuit struct {
	Name   string
	Design *kernel.Design
	// ClockHalf is the clock's half period; rising edges occur at
	// ClockHalf*(2k+1).
	ClockHalf vtime.Time
	// GateDelay is the inertial delay of the combinational gates (zero for
	// delta-delay circuits). Optimism bounds scale with it: a useful
	// throttle window is a few dozen gate delays past GVT.
	GateDelay vtime.Time
	// DefaultHorizon is the simulation horizon used by the paper-figure
	// benchmarks.
	DefaultHorizon vtime.Time
	// Verify checks the design's final state against the bit-true
	// reference model, given the simulation horizon that was used.
	Verify func(horizon vtime.Time) error
}

// LPs returns the circuit's LP count (signals + processes), the size metric
// the paper reports.
func (c *Circuit) LPs() int { return c.Design.NumLPs() }

// RisingEdges returns how many rising clock edges happen strictly before
// the horizon.
func (c *Circuit) RisingEdges(horizon vtime.Time) int {
	if horizon <= c.ClockHalf {
		return 0
	}
	// Edges at ClockHalf*(2k+1) < horizon.
	return int((horizon-c.ClockHalf-1)/(2*c.ClockHalf)) + 1
}

func (c *Circuit) String() string {
	return fmt.Sprintf("%s (%d LPs: %d signals, %d processes)",
		c.Name, c.LPs(), c.Design.NumSignals(), c.Design.NumProcesses())
}

// xorshift is a tiny deterministic PRNG for stimulus schedules (reference
// models replay the identical sequence).
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return v
}
