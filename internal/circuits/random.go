package circuits

import (
	"fmt"

	"govhdl/internal/kernel"
	"govhdl/internal/netlist"
	"govhdl/internal/stdlogic"
	"govhdl/internal/vtime"
)

// Dist is a uniform integer distribution over [Min, Max], inclusive.
type Dist struct {
	Min, Max int
}

func (d Dist) draw(r *xorshift) int {
	if d.Max <= d.Min {
		return d.Min
	}
	return d.Min + int(r.next()%uint64(d.Max-d.Min+1))
}

// RandomOpts parameterizes BuildRandom. The zero value (plus a seed) builds
// a ~2000-LP circuit with mixed gate delays.
type RandomOpts struct {
	// Seed drives every structural and stimulus decision; the same seed
	// always produces the identical circuit and reference model.
	Seed uint64
	// LPs is the target LP count (signals + processes, the paper's size
	// metric). The built circuit lands within a few LPs of it. Default 2000;
	// the generator is sized to scale to 10^5.
	LPs int
	// FanoutDist is the gate arity distribution: each multi-input gate draws
	// its fan-in from it (inverters/buffers take 1, muxes 3). Wire fan-out
	// emerges from input selection, which prefers the previous layer, giving
	// recent wires more consumers. Default {2, 3}; clamped to [1, 8].
	FanoutDist Dist
	// DelayDist is the per-layer gate delay distribution in nanoseconds.
	// All gates of one layer share a delay drawn from it, so the worst
	// combinational path is bounded by the sum over layers and the clock
	// half-period can be derived to guarantee settling. {0, 0} (the zero
	// value) defaults to {0, 2}, mixing delta-delay and timed layers.
	DelayDist Dist
	// CyclesAllowed adds isolated ring oscillators (3 inverters with >=1ns
	// delay, so they oscillate without delta livelock): combinational cycles
	// that generate self-sustaining event traffic across the whole horizon,
	// decoupled from the verified synchronous core.
	CyclesAllowed bool
	// Cycles sets DefaultHorizon in clock cycles. Default 16.
	Cycles int
}

func (o *RandomOpts) fill() {
	if o.LPs <= 0 {
		o.LPs = 2000
	}
	if o.FanoutDist.Min == 0 && o.FanoutDist.Max == 0 {
		o.FanoutDist = Dist{Min: 2, Max: 3}
	}
	if o.FanoutDist.Min < 1 {
		o.FanoutDist.Min = 1
	}
	if o.FanoutDist.Max < o.FanoutDist.Min {
		o.FanoutDist.Max = o.FanoutDist.Min
	}
	if o.FanoutDist.Max > 8 {
		o.FanoutDist.Max = 8
	}
	if o.DelayDist.Min == 0 && o.DelayDist.Max == 0 {
		o.DelayDist = Dist{Min: 0, Max: 2}
	}
	if o.DelayDist.Min < 0 {
		o.DelayDist.Min = 0
	}
	if o.DelayDist.Max < o.DelayDist.Min {
		o.DelayDist.Max = o.DelayDist.Min
	}
	if o.Cycles <= 0 {
		o.Cycles = 16
	}
}

// Gate kinds the generator draws from. Evaluation is shared between the
// netlist construction and the software reference model, so they cannot
// drift apart.
const (
	gAnd = iota
	gOr
	gXor
	gNand
	gNor
	gXnor
	gNot
	gBuf
	gMux
	numGateKinds
)

type swGate struct {
	kind int
	out  int   // software wire index
	ins  []int // software wire indices
}

func (g *swGate) eval(val []bool) bool {
	switch g.kind {
	case gNot:
		return !val[g.ins[0]]
	case gBuf:
		return val[g.ins[0]]
	case gMux:
		if val[g.ins[0]] {
			return val[g.ins[2]]
		}
		return val[g.ins[1]]
	}
	r := val[g.ins[0]]
	for _, in := range g.ins[1:] {
		v := val[in]
		switch g.kind {
		case gAnd, gNand:
			r = r && v
		case gOr, gNor:
			r = r || v
		case gXor, gXnor:
			r = r != v
		}
	}
	switch g.kind {
	case gNand, gNor, gXnor:
		return !r
	}
	return r
}

// BuildRandom builds a seeded synthetic benchmark circuit: a layered random
// DAG of gates between a pseudo-random input stimulus bus and a state
// register bank, closed synchronously through rising-edge flip-flops — the
// same shape as the paper's benchmarks but parametric in size (10^3..10^5
// LPs), arity, and delay profile, which is what ROADMAP item 1 asks for
// ("synthetic circuit generators past 7000 LPs, exercisable under migration
// churn"). Gate kinds, wiring, per-layer delays, and the stimulus stream are
// all drawn from one xorshift stream seeded by opts.Seed, and Verify replays
// the identical structure through a two-valued software model, so every run
// of the same seed is checkable against an independent bit-true reference.
func BuildRandom(opts RandomOpts) *Circuit {
	opts.fill()
	rng := xorshift(opts.Seed)
	if rng == 0 {
		rng = 0x9e3779b97f4a7c15
	}

	// Size the pieces against the LP budget: every gate, register bit,
	// and stimulus bit costs 2 LPs (wire + process), the clock costs 2,
	// each ring oscillator 6.
	budget := opts.LPs
	nin := budget / 48
	if nin < 2 {
		nin = 2
	}
	if nin > 64 {
		nin = 64 // stimulus samples are packed in a uint64
	}
	nreg := budget / 24
	if nreg < 4 {
		nreg = 4
	}
	if nreg > 1024 {
		nreg = 1024
	}
	rings := 0
	if opts.CyclesAllowed {
		rings = budget / 2000
		if rings < 1 {
			rings = 1
		}
		if rings > 8 {
			rings = 8
		}
	}
	ngates := (budget - 2 - 2*nin - 2*nreg - 6*rings) / 2
	if ngates < 8 {
		ngates = 8
	}
	layers := 3 + ngates/400
	if layers > 12 {
		layers = 12
	}

	// Per-layer delays bound the worst combinational path; the half period
	// covers it (plus clock-to-Q) so every cascade settles between edges.
	baseDelay := vtime.Time(opts.DelayDist.Min) * vtime.NS
	layerDelay := make([]vtime.Time, layers)
	var pathDelay vtime.Time
	for l := range layerDelay {
		layerDelay[l] = vtime.Time(opts.DelayDist.draw(&rng)) * vtime.NS
		pathDelay += layerDelay[l]
	}
	half := pathDelay + baseDelay + 2*vtime.NS
	if half < 5*vtime.NS {
		half = 5 * vtime.NS
	}

	b := netlist.New(fmt.Sprintf("rand-%d", opts.Seed), baseDelay)
	clk := b.Clock("clk", half)

	// Stimulus bus: a new pseudo-random sample at every falling edge,
	// replayed verbatim by the reference model (the IIR benchmark's idiom).
	x := b.NewBus("x", nin)
	steps := make([]netlist.VecStep, opts.Cycles+2)
	samples := make([]uint64, len(steps))
	for i := range steps {
		samples[i] = rng.next() & (uint64(1)<<uint(nin) - 1)
		steps[i] = netlist.VecStep{Delay: 2 * half, Value: samples[i]}
	}
	b.DriveBus(x, steps)

	// Register Q wires, declared while b's delay equals the clock-to-Q
	// delay so their lookahead hint matches their DFF driver.
	qs := b.NewBus("q", nreg)

	// Software wire numbering: stimulus bits, then register bits, then gate
	// outputs in creation order (which is topological — gates only read
	// strictly earlier wires).
	nw := nin + nreg
	prev := make([]int, 0, nin+nreg) // wires of the previous layer
	pool := make([]int, 0, nw)       // every wire of all earlier layers
	for i := 0; i < nin+nreg; i++ {
		prev = append(prev, i)
		pool = append(pool, i)
	}
	sigOf := make([]*kernel.Signal, nin+nreg, nin+nreg+ngates)
	copy(sigOf, x)
	copy(sigOf[nin:], qs)

	pick := func() int {
		// Prefer the previous layer: depth and fan-out concentration.
		if rng.next()%10 < 6 {
			return prev[rng.next()%uint64(len(prev))]
		}
		return pool[rng.next()%uint64(len(pool))]
	}

	gates := make([]swGate, 0, ngates)
	built := 0
	for l := 0; l < layers; l++ {
		n := ngates / layers
		if l < ngates%layers {
			n++
		}
		b.SetDelay(layerDelay[l])
		cur := make([]int, 0, n)
		for i := 0; i < n; i++ {
			kind := int(rng.next() % numGateKinds)
			arity := opts.FanoutDist.draw(&rng)
			switch kind {
			case gNot, gBuf:
				arity = 1
			case gMux:
				arity = 3
			default:
				if arity < 2 {
					arity = 2
				}
			}
			ins := make([]int, arity)
			sigs := make([]*kernel.Signal, arity)
			for j := range ins {
				ins[j] = pick()
				sigs[j] = sigOf[ins[j]]
			}
			out := b.Wire("")
			switch kind {
			case gAnd:
				b.And(out, sigs...)
			case gOr:
				b.Or(out, sigs...)
			case gXor:
				b.Xor(out, sigs...)
			case gNand:
				b.Nand(out, sigs...)
			case gNor:
				b.Nor(out, sigs...)
			case gXnor:
				b.Xnor(out, sigs...)
			case gNot:
				b.Not(out, sigs[0])
			case gBuf:
				b.Buf(out, sigs[0])
			case gMux:
				b.Mux2(out, sigs[0], sigs[1], sigs[2])
			}
			gates = append(gates, swGate{kind: kind, out: nw, ins: ins})
			sigOf = append(sigOf, out)
			cur = append(cur, nw)
			nw++
			built++
		}
		pool = append(pool, cur...)
		prev = cur
	}

	// Close the synchronous loop: each register bit latches a random gate
	// output (drawn from the full gate set) at the rising edge.
	dIdx := make([]int, nreg)
	for i := 0; i < nreg; i++ {
		g := gates[rng.next()%uint64(len(gates))]
		dIdx[i] = g.out
		b.DFF(qs[i], sigOf[g.out], clk)
	}

	// Ring oscillators: free-running event sources, isolated from the
	// verified core. Delay >= 1ns keeps them off the delta axis.
	for r := 0; r < rings; r++ {
		d := vtime.Time(opts.DelayDist.draw(&rng)) * vtime.NS
		if d < vtime.NS {
			d = vtime.NS
		}
		b.SetDelay(d)
		r0 := b.Wire(fmt.Sprintf("ring%d_0", r))
		r1 := b.Wire(fmt.Sprintf("ring%d_1", r))
		r2 := b.Wire(fmt.Sprintf("ring%d_2", r))
		b.Not(r1, r0)
		b.Not(r2, r1)
		b.Not(r0, r2)
	}

	d := b.Design()
	c := &Circuit{
		Name:           fmt.Sprintf("RAND-%d", opts.Seed),
		Design:         d,
		ClockHalf:      half,
		GateDelay:      baseDelay,
		DefaultHorizon: vtime.Time(opts.Cycles) * 2 * half,
	}
	c.Verify = func(horizon vtime.Time) error {
		edges := c.RisingEdges(horizon)
		val := make([]bool, nw)
		reg := make([]bool, nreg)
		for e := 0; e < edges; e++ {
			// Stimulus as of this rising edge: sample k lands at 2h(k+1),
			// so edge e sees samples[e-1]; edge 0 sees the initial zeros.
			var xin uint64
			if e > 0 {
				idx := e - 1
				if idx >= len(samples) {
					idx = len(samples) - 1
				}
				xin = samples[idx]
			}
			for i := 0; i < nin; i++ {
				val[i] = xin&(uint64(1)<<uint(nin-1-i)) != 0
			}
			copy(val[nin:nin+nreg], reg)
			for gi := range gates {
				g := &gates[gi]
				val[g.out] = g.eval(val)
			}
			for i := 0; i < nreg; i++ {
				reg[i] = val[dIdx[i]]
			}
		}
		for i := 0; i < nreg; i++ {
			v, ok := d.Effective(qs[i]).(stdlogic.Std)
			if !ok {
				return fmt.Errorf("rand reg %d: non-std value %v", i, d.Effective(qs[i]))
			}
			if got := stdlogic.IsHigh(v); got != reg[i] {
				return fmt.Errorf("rand reg %d: %v after %d edges, want %v", i, got, edges, reg[i])
			}
		}
		return nil
	}
	return c
}
