package circuits

import (
	"fmt"
	"testing"

	"govhdl/internal/pdes"
	"govhdl/internal/trace"
	"govhdl/internal/vtime"
)

func TestFSMLPCountMatchesPaper(t *testing.T) {
	c := BuildFSM(FSMOpts{})
	// The paper's FSM benchmark has ~553 LPs.
	if c.LPs() < 540 || c.LPs() > 570 {
		t.Errorf("FSM LP count %d not near the paper's 553", c.LPs())
	}
	t.Log(c)
}

func TestIIRAndDCTSizes(t *testing.T) {
	iir := BuildIIR(IIROpts{})
	dct := BuildDCT(DCTOpts{})
	t.Log(iir)
	t.Log(dct)
	// The paper's gate-level circuits have about 7000-8000 LPs.
	if iir.LPs() < 4000 || iir.LPs() > 12000 {
		t.Errorf("IIR LP count %d not in the paper's range", iir.LPs())
	}
	if dct.LPs() < 4000 || dct.LPs() > 12000 {
		t.Errorf("DCT LP count %d not in the paper's range", dct.LPs())
	}
}

func TestFSMSequentialVerifies(t *testing.T) {
	c := BuildFSM(FSMOpts{Machines: 8, Cycles: 20})
	horizon := c.DefaultHorizon
	if _, err := pdes.RunSequential(c.Design.Build(), horizon, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := c.Verify(horizon); err != nil {
		t.Fatal(err)
	}
}

func TestIIRSequentialVerifies(t *testing.T) {
	c := BuildIIR(IIROpts{Sections: 1, Width: 4, Cycles: 8})
	horizon := c.DefaultHorizon
	if _, err := pdes.RunSequential(c.Design.Build(), horizon, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := c.Verify(horizon); err != nil {
		t.Fatal(err)
	}
}

func TestDCTSequentialVerifies(t *testing.T) {
	c := BuildDCT(DCTOpts{Width: 4, MACs: 2, Cycles: 10})
	horizon := c.DefaultHorizon
	if _, err := pdes.RunSequential(c.Design.Build(), horizon, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := c.Verify(horizon); err != nil {
		t.Fatal(err)
	}
}

func TestCircuitsParallelVerify(t *testing.T) {
	builds := map[string]func() *Circuit{
		"fsm": func() *Circuit { return BuildFSM(FSMOpts{Machines: 8, Cycles: 12}) },
		"iir": func() *Circuit { return BuildIIR(IIROpts{Sections: 1, Width: 4, Cycles: 6}) },
		"dct": func() *Circuit { return BuildDCT(DCTOpts{Width: 4, MACs: 1, Cycles: 6}) },
	}
	for name, build := range builds {
		for _, proto := range []pdes.Protocol{pdes.ProtoConservative, pdes.ProtoOptimistic, pdes.ProtoMixed, pdes.ProtoDynamic} {
			t.Run(fmt.Sprintf("%s/%v", name, proto), func(t *testing.T) {
				c := build()
				horizon := c.DefaultHorizon
				if _, err := pdes.Run(c.Design.Build(), pdes.Config{
					Workers: 3, Protocol: proto, GVTEvery: 512,
				}, horizon, nil); err != nil {
					t.Fatalf("run: %v", err)
				}
				if err := c.Verify(horizon); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestFSMTraceParallelMatchesSequential(t *testing.T) {
	build := func() *Circuit { return BuildFSM(FSMOpts{Machines: 8, Cycles: 12}) }
	ref := build()
	sysRef := ref.Design.Build()
	want := trace.NewRecorder()
	if _, err := pdes.RunSequential(sysRef, ref.DefaultHorizon, want); err != nil {
		t.Fatal(err)
	}
	c := build()
	sys := c.Design.Build()
	got := trace.NewRecorder()
	if _, err := pdes.Run(sys, pdes.Config{Workers: 4, Protocol: pdes.ProtoDynamic, GVTEvery: 256},
		c.DefaultHorizon, got); err != nil {
		t.Fatal(err)
	}
	if ok, diff := trace.Equal(sys, want, got); !ok {
		t.Fatalf("trace mismatch: %s", diff)
	}
}

// TestShardedCircuitsMatchSequential is the kernel-level sharding gate: for
// each circuit, clustering the LP graph into shards (intra-shard sequential
// execution, protocol only between shards) must leave the committed trace
// byte-identical to the sequential kernel, for every protocol and for shard
// counts both equal to and above the worker count.
func TestShardedCircuitsMatchSequential(t *testing.T) {
	builds := map[string]func() *Circuit{
		"fsm": func() *Circuit { return BuildFSM(FSMOpts{Machines: 8, Cycles: 12}) },
		"iir": func() *Circuit { return BuildIIR(IIROpts{Sections: 1, Width: 4, Cycles: 6}) },
	}
	for name, build := range builds {
		ref := build()
		sysRef := ref.Design.Build()
		want := trace.NewRecorder()
		if _, err := pdes.RunSequential(sysRef, ref.DefaultHorizon, want); err != nil {
			t.Fatal(err)
		}
		for _, proto := range []pdes.Protocol{pdes.ProtoConservative, pdes.ProtoOptimistic, pdes.ProtoDynamic} {
			for _, shards := range []int{2, 4} {
				t.Run(fmt.Sprintf("%s/%v/s%d", name, proto, shards), func(t *testing.T) {
					c := build()
					sys := c.Design.Build()
					ss, err := pdes.ShardSystem(sys, shards, pdes.PartitionTopo)
					if err != nil {
						t.Fatal(err)
					}
					got := trace.NewRecorder()
					if _, err := pdes.Run(ss.Sys(), pdes.Config{
						Workers: 2, Protocol: proto, Lookahead: true, GVTEvery: 256,
					}, c.DefaultHorizon, ss.WrapSink(got)); err != nil {
						t.Fatal(err)
					}
					if err := c.Verify(c.DefaultHorizon); err != nil {
						t.Fatal(err)
					}
					if ok, diff := trace.Equal(sys, want, got); !ok {
						t.Fatalf("trace mismatch: %s", diff)
					}
				})
			}
		}
	}
}

func TestRisingEdges(t *testing.T) {
	c := &Circuit{ClockHalf: 5 * vtime.NS}
	cases := []struct {
		h    vtime.Time
		want int
	}{
		{0, 0}, {5 * vtime.NS, 0}, {6 * vtime.NS, 1}, {15 * vtime.NS, 1},
		{16 * vtime.NS, 2}, {100 * vtime.NS, 10}, {105 * vtime.NS, 10}, {106 * vtime.NS, 11},
	}
	for _, tc := range cases {
		if got := c.RisingEdges(tc.h); got != tc.want {
			t.Errorf("RisingEdges(%v) = %d, want %d", tc.h, got, tc.want)
		}
	}
}

func TestXorshiftDeterministic(t *testing.T) {
	var a, b xorshift = 42, 42
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("xorshift not deterministic")
		}
	}
}
