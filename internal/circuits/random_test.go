package circuits

import (
	"fmt"
	"testing"

	"govhdl/internal/pdes"
	"govhdl/internal/trace"
)

func TestRandomLPCountNearTarget(t *testing.T) {
	for _, target := range []int{1000, 2000, 10000} {
		c := BuildRandom(RandomOpts{Seed: 1, LPs: target})
		got := c.LPs()
		// The generator sizes against the budget; allow a small constant
		// slack for rounding (gate count floors, clamped pieces).
		if got < target*9/10 || got > target*11/10 {
			t.Errorf("target %d LPs, built %d", target, got)
		}
		t.Log(c)
	}
}

// The same seed must produce the identical circuit; a different seed must
// not. Structure is compared through the LP count plus the committed
// sequential trace (which covers wiring, delays, and stimulus).
func TestRandomDeterministicBySeed(t *testing.T) {
	seqTrace := func(seed uint64) (int, []string) {
		c := BuildRandom(RandomOpts{Seed: seed, LPs: 600, Cycles: 6})
		sys := c.Design.Build()
		rec := trace.NewRecorder()
		if _, err := pdes.RunSequential(sys, c.DefaultHorizon, rec); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := c.Verify(c.DefaultHorizon); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		return c.LPs(), rec.Lines(sys)
	}
	lpA1, trA1 := seqTrace(7)
	lpA2, trA2 := seqTrace(7)
	lpB, trB := seqTrace(8)
	if lpA1 != lpA2 {
		t.Fatalf("seed 7 built %d then %d LPs", lpA1, lpA2)
	}
	if fmt.Sprint(trA1) != fmt.Sprint(trA2) {
		t.Fatalf("seed 7 is not trace-deterministic")
	}
	if lpA1 == lpB && fmt.Sprint(trA1) == fmt.Sprint(trB) {
		t.Fatalf("seeds 7 and 8 built identical circuits")
	}
}

func TestRandomSequentialVerifies(t *testing.T) {
	cases := []RandomOpts{
		{Seed: 3, LPs: 800},
		{Seed: 4, LPs: 800, DelayDist: Dist{Min: 1, Max: 3}},
		{Seed: 5, LPs: 800, FanoutDist: Dist{Min: 2, Max: 6}, CyclesAllowed: true},
	}
	for _, opts := range cases {
		t.Run(fmt.Sprintf("seed%d", opts.Seed), func(t *testing.T) {
			c := BuildRandom(opts)
			if _, err := pdes.RunSequential(c.Design.Build(), c.DefaultHorizon, nil); err != nil {
				t.Fatalf("run: %v", err)
			}
			if err := c.Verify(c.DefaultHorizon); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRandomParallelMatchesSequential(t *testing.T) {
	build := func() *Circuit {
		return BuildRandom(RandomOpts{Seed: 11, LPs: 900, CyclesAllowed: true, Cycles: 8})
	}
	ref := build()
	sysRef := ref.Design.Build()
	want := trace.NewRecorder()
	if _, err := pdes.RunSequential(sysRef, ref.DefaultHorizon, want); err != nil {
		t.Fatal(err)
	}
	if err := ref.Verify(ref.DefaultHorizon); err != nil {
		t.Fatal(err)
	}
	for _, proto := range []pdes.Protocol{pdes.ProtoConservative, pdes.ProtoOptimistic, pdes.ProtoDynamic} {
		t.Run(fmt.Sprint(proto), func(t *testing.T) {
			c := build()
			sys := c.Design.Build()
			got := trace.NewRecorder()
			if _, err := pdes.Run(sys, pdes.Config{Workers: 3, Protocol: proto, GVTEvery: 256},
				c.DefaultHorizon, got); err != nil {
				t.Fatal(err)
			}
			if ok, diff := trace.Equal(sys, want, got); !ok {
				t.Fatalf("trace mismatch: %s", diff)
			}
			if err := c.Verify(c.DefaultHorizon); err != nil {
				t.Fatal(err)
			}
		})
	}
}
