package pdes

import (
	"errors"
	"sync"
	"testing"

	"govhdl/internal/vtime"
)

// endlessRelay schedules itself forever so a run only terminates at the
// horizon — or when something external (a cancel, a poison) unwinds it.
type endlessRelay struct {
	next LPID
}

func (m *endlessRelay) Init(ctx *Ctx) {
	ctx.Schedule(vtime.VT{PT: vtime.NS}, kindToken, 1)
}

func (m *endlessRelay) Execute(ctx *Ctx, ev *Event) {
	ctx.Record(ev.Data)
	ctx.Send(m.next, vtime.VT{PT: ctx.Now().PT + vtime.NS}, kindToken, ev.Data.(int)+1)
}

func (m *endlessRelay) SaveState() any     { return nil }
func (m *endlessRelay) RestoreState(s any) {}

func buildEndlessPair() *System {
	sys := NewSystem()
	a, b := &endlessRelay{}, &endlessRelay{}
	ia := sys.AddLP("a", a)
	ib := sys.AddLP("b", b)
	a.next, b.next = ib, ia
	sys.Connect(ia, ib)
	sys.Connect(ib, ia)
	return sys
}

func TestCancelSequential(t *testing.T) {
	sys := buildEndlessPair()
	cancel := make(chan struct{})
	close(cancel) // canceled before the run even starts
	res, err := RunSequentialCancelable(sys, 1<<40, nil, cancel)
	if res != nil {
		t.Fatalf("canceled run returned a result: %+v", res)
	}
	if !IsCanceled(err) {
		t.Fatalf("want Canceled SimError, got %v", err)
	}
	if IsModelError(err) || IsStall(err) {
		t.Fatalf("cancel verdict misclassified: %v", err)
	}
	var se *SimError
	if !errors.As(err, &se) || se.Transport {
		t.Fatalf("cancel verdict must not be retryable: %+v", se)
	}
}

func TestCancelParallel(t *testing.T) {
	for _, proto := range []Protocol{ProtoConservative, ProtoOptimistic, ProtoMixed} {
		t.Run(proto.String(), func(t *testing.T) {
			sys := buildEndlessPair()
			cancel := make(chan struct{})
			var once sync.Once
			_, err := Run(sys, Config{
				Protocol: proto,
				Workers:  2,
				Cancel:   cancel,
				// Cancel after the first committed round: proves the watcher
				// interrupts a run that is actively making progress.
				OnGVT: func(gvt vtime.VT) { once.Do(func() { close(cancel) }) },
			}, 1<<40, nil)
			if !IsCanceled(err) {
				t.Fatalf("want Canceled SimError, got %v", err)
			}
		})
	}
}

func TestCancelViaRunConfigSequentialPath(t *testing.T) {
	// Protocol sequential through the public Run entry point honors Cancel.
	sys := buildEndlessPair()
	cancel := make(chan struct{})
	close(cancel)
	_, err := Run(sys, Config{Protocol: ProtoSequential, Workers: 1, Cancel: cancel}, 1<<40, nil)
	if !IsCanceled(err) {
		t.Fatalf("want Canceled SimError, got %v", err)
	}
}

func TestOnGVTMonotoneAndCommitted(t *testing.T) {
	sys, _ := buildRelayRing(8, 4, 40)
	sink := &collector{}
	var mu sync.Mutex
	var seen []vtime.VT
	committedAt := make(map[int]int) // callback index -> sink length at callback time
	res, err := Run(sys, Config{
		Protocol: ProtoMixed,
		Workers:  2,
		OnGVT: func(gvt vtime.VT) {
			mu.Lock()
			seen = append(seen, gvt)
			committedAt[len(seen)-1] = len(sink.sorted())
			mu.Unlock()
		},
	}, relayHorizon, sink)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 {
		t.Fatal("OnGVT never fired")
	}
	for i := 1; i < len(seen); i++ {
		if seen[i].Less(seen[i-1]) {
			t.Fatalf("OnGVT regressed: %v after %v", seen[i], seen[i-1])
		}
	}
	for i := 1; i < len(seen); i++ {
		if committedAt[i] < committedAt[i-1] {
			t.Fatalf("committed trace shrank between rounds %d and %d", i-1, i)
		}
	}
	if seen[len(seen)-1].Less(res.GVT) {
		t.Fatalf("final OnGVT %v below result GVT %v", seen[len(seen)-1], res.GVT)
	}
}

// tripwireError is a model diagnostic: the design, not the engine, is at
// fault.
type tripwireError struct{ msg string }

func (e *tripwireError) Error() string    { return e.msg }
func (e *tripwireError) ModelDiagnostic() {}

// trippingRelay panics with a ModelError when it sees a token >= trip.
type trippingRelay struct {
	next LPID
	trip int
}

func (m *trippingRelay) Init(ctx *Ctx) {
	ctx.Schedule(vtime.VT{PT: vtime.NS}, kindToken, 1)
}

func (m *trippingRelay) Execute(ctx *Ctx, ev *Event) {
	x := ev.Data.(int)
	if x >= m.trip {
		panic(&tripwireError{msg: "tripwire hit"})
	}
	ctx.Send(m.next, vtime.VT{PT: ctx.Now().PT + vtime.NS}, kindToken, x+1)
}

func (m *trippingRelay) SaveState() any     { return nil }
func (m *trippingRelay) RestoreState(s any) {}

func buildTrippingPair(trip int) *System {
	sys := NewSystem()
	a, b := &trippingRelay{trip: trip}, &trippingRelay{trip: trip}
	ia := sys.AddLP("a", a)
	ib := sys.AddLP("b", b)
	a.next, b.next = ib, ia
	sys.Connect(ia, ib)
	sys.Connect(ib, ia)
	return sys
}

func TestModelErrorSequential(t *testing.T) {
	res, err := RunSequential(buildTrippingPair(10), 1<<40, nil)
	if res != nil || err == nil {
		t.Fatalf("want model error, got res=%+v err=%v", res, err)
	}
	if !IsModelError(err) {
		t.Fatalf("want Model SimError, got %v", err)
	}
	if IsCanceled(err) || IsStall(err) {
		t.Fatalf("model verdict misclassified: %v", err)
	}
	var se *SimError
	if !errors.As(err, &se) || se.Transport {
		t.Fatalf("model verdict must not be retryable: %+v", se)
	}
}

func TestModelErrorParallel(t *testing.T) {
	for _, proto := range []Protocol{ProtoConservative, ProtoOptimistic} {
		t.Run(proto.String(), func(t *testing.T) {
			_, err := Run(buildTrippingPair(10), Config{
				Protocol: proto,
				Workers:  2,
			}, 1<<40, nil)
			if !IsModelError(err) {
				t.Fatalf("want Model SimError, got %v", err)
			}
		})
	}
}

// A non-ModelError panic must still crash: the engine refuses to dress an
// internal bug up as a design diagnostic.
func TestNonModelPanicPropagatesSequential(t *testing.T) {
	sys := NewSystem()
	m := &panicker{}
	sys.AddLP("p", m)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("plain panic was swallowed")
		}
	}()
	_, _ = RunSequential(sys, 1<<40, nil)
}

type panicker struct{}

func (m *panicker) Init(ctx *Ctx) { ctx.Schedule(vtime.VT{PT: vtime.NS}, kindToken, 1) }
func (m *panicker) Execute(ctx *Ctx, ev *Event) {
	panic("plain engine bug")
}
func (m *panicker) SaveState() any     { return nil }
func (m *panicker) RestoreState(s any) {}
