package pdes

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"
	"sync"
	"testing"

	"govhdl/internal/vtime"
)

func init() {
	// Checkpoint blobs serialize event payloads through an interface field.
	gob.Register(uint64(0))
}

// ringModel circulates tokens around a ring of LPs: every execution records
// its observation and forwards the token to the next LP with a fixed delay.
// Tokens start at distinct residues modulo the step, so no two events at one
// LP ever share a timestamp and the committed trace is a deterministic set.
type ringModel struct {
	next  LPID
	seed  int // tokens injected by Init (LP 0 only)
	step  vtime.Time
	count uint64
	sum   uint64
}

type ringState struct{ count, sum uint64 }

func (m *ringModel) Init(ctx *Ctx) {
	for j := 0; j < m.seed; j++ {
		ctx.Schedule(vtime.VT{PT: vtime.Time(j + 1)}, 0, uint64(j+1))
	}
}

func (m *ringModel) Execute(ctx *Ctx, ev *Event) {
	tok := ev.Data.(uint64)
	m.count++
	m.sum += tok
	ctx.Record(fmt.Sprintf("tok=%d count=%d sum=%d", tok, m.count, m.sum))
	ctx.Send(m.next, vtime.VT{PT: ev.TS.PT + m.step}, 0, tok)
}

func (m *ringModel) SaveState() any     { return ringState{m.count, m.sum} }
func (m *ringModel) RestoreState(s any) { st := s.(ringState); m.count, m.sum = st.count, st.sum }

// buildRing constructs a fresh ring system. Constructing it twice yields
// identical systems, which is the restore contract.
func buildRing(n, seed int, protocol Protocol) *System {
	sys := NewSystem()
	ids := make([]LPID, n)
	for i := 0; i < n; i++ {
		m := &ringModel{next: LPID((i + 1) % n), step: 7}
		if i == 0 {
			m.seed = seed
		}
		hint := Optimistic
		if protocol == ProtoMixed && i%2 == 0 {
			hint = Conservative
		}
		ids[i] = sys.AddLP(fmt.Sprintf("ring%d", i), m, WithHint(hint))
	}
	for i := 0; i < n; i++ {
		sys.Connect(ids[i], ids[(i+1)%n])
	}
	return sys
}

// memSink collects committed records as rendered lines.
type memSink struct {
	mu    sync.Mutex
	lines []string
}

func (s *memSink) Commit(lp LPID, ts vtime.VT, item any) {
	s.mu.Lock()
	s.lines = append(s.lines, fmt.Sprintf("%d @%v %v", lp, ts, item))
	s.mu.Unlock()
}

func (s *memSink) snapshot() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.lines...)
}

func sortedLines(parts ...[]string) []string {
	var all []string
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Strings(all)
	return all
}

func diffLines(t *testing.T, want, got []string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("committed record counts differ: want %d, got %d", len(want), len(got))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("record %d differs:\n  want: %s\n  got:  %s", i, want[i], got[i])
		}
	}
}

// reencode pushes the checkpoint through its gob round-trip, as a file-backed
// restart would.
func reencode(t *testing.T, ck *Checkpoint) *Checkpoint {
	t.Helper()
	var buf bytes.Buffer
	if err := ck.Encode(&buf); err != nil {
		t.Fatalf("encode checkpoint: %v", err)
	}
	out, err := DecodeCheckpoint(&buf)
	if err != nil {
		t.Fatalf("decode checkpoint: %v", err)
	}
	return out
}

func testCheckpointRestore(t *testing.T, protocol Protocol, workers int) {
	const (
		nLPs  = 12
		seed  = 5
		until = vtime.Time(2000)
	)

	oracle := &memSink{}
	if _, err := RunSequential(buildRing(nLPs, seed, protocol), until, oracle); err != nil {
		t.Fatalf("sequential oracle: %v", err)
	}
	want := sortedLines(oracle.snapshot())
	if len(want) == 0 {
		t.Fatal("oracle produced no records")
	}

	// Checkpointed run: every committed GVT round takes a cut; the sink
	// keeps each checkpoint together with the trace committed so far (the
	// restart discards everything the dying run committed after the cut).
	var (
		cks   []*Checkpoint
		snaps [][]string
	)
	sink1 := &memSink{}
	cfg := Config{
		Workers:  workers,
		Protocol: protocol,
		GVTEvery: 64,
		// Bound optimism so the run spans several GVT rounds instead of
		// speculating to the horizon before the first round completes.
		ThrottleWindow:   100,
		CheckpointRounds: 1,
		CheckpointSink: func(ck *Checkpoint) error {
			cks = append(cks, ck)
			snaps = append(snaps, sink1.snapshot())
			return nil
		},
	}
	if _, err := Run(buildRing(nLPs, seed, protocol), cfg, until, sink1); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	diffLines(t, want, sortedLines(sink1.snapshot()))
	if len(cks) == 0 {
		t.Fatal("no checkpoints were taken")
	}

	// Restore from a mid-run checkpoint (gob round-tripped). The restored
	// run's replay re-emits the records committed before the cut, so its
	// sink alone must equal the oracle — no splicing with the dead run's
	// trace is needed (that is what failover relies on).
	pick := len(cks) / 2
	ck := reencode(t, cks[pick])
	if !ck.GVT.Less(vtime.VT{PT: until}) {
		t.Fatalf("picked checkpoint GVT %v is already at the horizon", ck.GVT)
	}
	sink2 := &memSink{}
	cfg2 := Config{
		Workers:          workers,
		Protocol:         protocol,
		GVTEvery:         64,
		ThrottleWindow:   100,
		Restore:          ck,
		CheckpointRounds: 2, // keep logging: restored runs can checkpoint again
		CheckpointSink:   func(*Checkpoint) error { return nil },
	}
	res, err := Run(buildRing(nLPs, seed, protocol), cfg2, until, sink2)
	if err != nil {
		t.Fatalf("restored run: %v", err)
	}
	if res.GVT.Less(vtime.VT{PT: until}) {
		t.Fatalf("restored run stopped at GVT %v, want >= %v", res.GVT, until)
	}
	diffLines(t, want, sortedLines(sink2.snapshot()))

	// The records committed before the cut must be a subset of the replayed
	// trace: the cut the checkpoint was taken at really is a prefix.
	pre := make(map[string]int)
	for _, l := range sink2.snapshot() {
		pre[l]++
	}
	for _, l := range snaps[pick] {
		if pre[l] == 0 {
			t.Fatalf("record committed before the cut is missing from the restored trace: %s", l)
		}
		pre[l]--
	}
}

func TestCheckpointRestoreOptimistic(t *testing.T) {
	testCheckpointRestore(t, ProtoOptimistic, 4)
}

func TestCheckpointRestoreMixed(t *testing.T) {
	testCheckpointRestore(t, ProtoMixed, 4)
}

func TestCheckpointRestoreDynamic(t *testing.T) {
	testCheckpointRestore(t, ProtoDynamic, 3)
}

func TestCheckpointSinkErrorAborts(t *testing.T) {
	sink := &memSink{}
	cfg := Config{
		Workers:          2,
		Protocol:         ProtoOptimistic,
		GVTEvery:         32,
		ThrottleWindow:   100,
		CheckpointRounds: 1,
		CheckpointSink:   func(*Checkpoint) error { return fmt.Errorf("disk full") },
	}
	_, err := Run(buildRing(6, 3, ProtoOptimistic), cfg, 2000, sink)
	if err == nil {
		t.Fatal("expected the sink error to abort the run")
	}
	if got := err.Error(); got != "pdes: checkpoint sink: disk full" {
		t.Fatalf("unexpected error: %v", got)
	}
}

func TestRestoreValidation(t *testing.T) {
	sys := buildRing(6, 3, ProtoOptimistic)
	opt := Config{Workers: 2, Protocol: ProtoOptimistic}
	cfg := opt
	cfg.Restore = &Checkpoint{Format: checkpointFormat, Workers: 3, NumLPs: 6}
	if _, err := Run(sys, cfg, 100, nil); err == nil {
		t.Fatal("worker-count mismatch not rejected")
	}
	cfg = opt
	cfg.Restore = &Checkpoint{Format: checkpointFormat, Workers: 2, NumLPs: 7}
	if _, err := Run(sys, cfg, 100, nil); err == nil {
		t.Fatal("LP-count mismatch not rejected")
	}
	cfg = opt
	cfg.CheckpointRounds = 1
	if _, err := Run(sys, cfg, 100, nil); err == nil {
		t.Fatal("CheckpointRounds without CheckpointSink not rejected on the controller process")
	}
}
