package pdes

import (
	"encoding/gob"
	"fmt"
	"sort"

	"govhdl/internal/vtime"
)

// LP sharding: cluster many LPs into a few shards that execute sequentially
// inside the shard, with the PDES protocol running only between shards.
//
// Each shard is ONE engine LP (a super-LP). Intra-shard events never touch a
// mailbox, never carry anti-message bookkeeping and never generate null
// messages: they live in a private (timestamp, sequence) heap drained in
// order by the shard's Execute, exactly like the sequential runner but scoped
// to the shard's members. Only cross-shard events cross the engine, so
// protocol cost scales with the partition cut, not with event count — the
// lever that lets a well-partitioned parallel run approach, then beat, the
// sequential oracle's per-event cost.
//
// Correctness invariants:
//
//   - Wake coverage: whenever the internal heap is non-empty, an engine
//     self-event ("wake") is pending at or below the heap minimum, so the
//     engine's per-LP pending minimum — which feeds GVT, channel-clock
//     promises and conservative safety — always bounds every internal event.
//     A shard therefore looks to the protocol exactly like an LP whose next
//     emission is no earlier than min(pending), which is the contract the
//     promise machinery already assumes.
//   - Drain order: Execute(ev) drains every internal event with ts <= ev.TS
//     in (ts, seq) order before returning, so member execution inside a
//     shard is sequential and member timestamps are non-decreasing.
//   - State closure: SaveState captures member snapshots plus the heap, the
//     sequence allocator and the wake bookkeeping, so optimistic rollback
//     and checkpoint/restore treat the whole shard as one atomic state.
//   - Lookahead: the shard advertises the minimum entry-to-exit path sum of
//     its members' declared lookaheads (multi-source shortest path), which
//     is a sound bound on (cross-output ts - cross-input ts).

// Engine-level event kinds used by shard LPs. Member kinds are carried
// inside shardXEvent and never collide with these.
const (
	shardKindWake uint8 = iota // self-event: drain the internal heap
	shardKindX                 // cross-shard member event (Data is *shardXEvent)
)

// shardLTCap is the logical-time lookahead advertised by a shard with no
// entry-to-exit path: its cross outputs are bounded by pending events alone,
// so the path bound is effectively infinite. Kept far below uint64 overflow.
const shardLTCap = 1 << 30

// shardXEvent wraps a member-to-member event that crosses shards. The engine
// sees an event addressed shard-to-shard; the receiving shard unwraps it and
// pushes the member event onto its internal heap.
type shardXEvent struct {
	Dst  LPID // destination member in the original system
	Kind uint8
	Data any
}

func init() { gob.Register(&shardXEvent{}) }

// shardRec wraps a member trace record so commitment (which happens at shard
// granularity, at the shard event's timestamp) can be unwrapped back to the
// originating member and its own timestamp. Never serialized: records exist
// only between Execute and the TraceSink.
type shardRec struct {
	lp   LPID
	ts   vtime.VT
	item any
}

// shardSink unwraps shardRec records before forwarding to the inner sink, so
// recorders, trace comparison and VCD rendering keep working against the
// ORIGINAL system's LP IDs and timestamps.
type shardSink struct{ inner TraceSink }

func (s shardSink) Commit(lp LPID, ts vtime.VT, item any) {
	if r, ok := item.(shardRec); ok {
		s.inner.Commit(r.lp, r.ts, r.item)
		return
	}
	s.inner.Commit(lp, ts, item)
}

// ShardedSystem is a System whose LPs are shards of an original System.
type ShardedSystem struct {
	orig    *System
	sys     *System
	shardOf []LPID   // original LP -> shard LP
	members [][]LPID // shard LP -> sorted original members
}

// Sys returns the shard-level system to hand to the parallel runner.
func (ss *ShardedSystem) Sys() *System { return ss.sys }

// Orig returns the original (member-level) system; trace rendering and
// verification keep using it.
func (ss *ShardedSystem) Orig() *System { return ss.orig }

// NumShards returns the number of shards.
func (ss *ShardedSystem) NumShards() int { return len(ss.members) }

// ShardOf returns the shard LP that owns an original LP.
func (ss *ShardedSystem) ShardOf(id LPID) LPID { return ss.shardOf[id] }

// Members returns the sorted original LPs of one shard. The returned slice
// must not be modified.
func (ss *ShardedSystem) Members(shard LPID) []LPID { return ss.members[shard] }

// WrapSink wraps a member-level TraceSink so it can be attached to a run of
// Sys(): member records committed through shard LPs are unwrapped back to
// original LP IDs and member timestamps.
func (ss *ShardedSystem) WrapSink(inner TraceSink) TraceSink {
	if inner == nil {
		return nil
	}
	return shardSink{inner: inner}
}

// ShardSystem clusters the LPs of orig into shards and returns a new System
// with one super-LP per shard. part selects the membership partitioner;
// PartitionTopo minimizes the cross-shard cut. orig is frozen: the sharded
// view aliases its models, so the graph must not change afterwards.
func ShardSystem(orig *System, shards int, part Partition) (*ShardedSystem, error) {
	n := orig.NumLPs()
	if shards < 1 {
		return nil, fmt.Errorf("pdes: ShardSystem: %d shards", shards)
	}
	if shards > n {
		return nil, fmt.Errorf("pdes: ShardSystem: %d shards for %d LPs", shards, n)
	}
	orig.frozen = true

	groups := orig.partition(part, shards)
	shardOf := make([]LPID, n)
	for s, g := range groups {
		sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
		for _, id := range g {
			shardOf[id] = LPID(s)
		}
	}

	ss := &ShardedSystem{orig: orig, sys: NewSystem(), shardOf: shardOf, members: groups}
	for s, g := range groups {
		if len(g) == 0 {
			return nil, fmt.Errorf("pdes: ShardSystem: partitioner left shard %d empty", s)
		}
		m := newShardModel(ss, LPID(s), g)
		opts := shardOpts(orig, shardOf, LPID(s), g)
		id := ss.sys.AddLP(fmt.Sprintf("shard%d", s), m, opts...)
		if id != LPID(s) {
			panic("pdes: shard LP ids out of order")
		}
	}
	// Cross-shard edges: the union of member edges that leave the shard.
	for s, g := range groups {
		for _, u := range g {
			for _, v := range orig.lps[u].out {
				if t := shardOf[v]; t != LPID(s) {
					ss.sys.Connect(LPID(s), t)
				}
			}
		}
	}
	if orig.cmp != nil {
		// User-consistent ordering is defined on member events; shard events
		// interleave members and cannot honor it.
		return nil, fmt.Errorf("pdes: ShardSystem does not support a user-consistent comparator")
	}
	return ss, nil
}

// shardOpts derives the shard LP's declaration options from its members:
// mode hint, forced mode (a member that cannot save state forces the whole
// shard conservative) and the entry-to-exit lookahead bound.
//
// Every shard is hinted Conservative regardless of member hints: a shard's
// optimistic state snapshot copies the internal event heap plus every member
// state, so per-event state saving costs grow with shard size while the
// protocol-overhead win of optimism applies only at shard granularity.
// Conservative-first is the profitable default; the dynamic protocol can
// still switch a shard to optimistic when its adaptation window shows the
// shard genuinely blocked.
func shardOpts(orig *System, shardOf []LPID, shard LPID, members []LPID) []LPOpt {
	forced := false
	for _, id := range members {
		d := orig.lps[id]
		if d.hint == Conservative && d.forced {
			forced = true
		}
	}
	opts := []LPOpt{WithHint(Conservative)}
	if forced {
		opts = []LPOpt{WithForcedMode(Conservative)}
	}

	pt, lt, bounded := shardLookahead(orig, shardOf, shard, members)
	switch {
	case !bounded:
		opts = append(opts, WithLTLookahead(shardLTCap))
	case pt > 0:
		opts = append(opts, WithLookahead(pt))
	case lt > 0:
		opts = append(opts, WithLTLookahead(lt))
	}
	return opts
}

// shardLookahead computes the minimum entry-to-exit path sum of member
// lookaheads inside one shard, separately for physical-time and
// logical-time lookahead. An entry is a member with an in-edge from another
// shard; an exit has an out-edge to another shard. Every path sum includes
// both endpoints' own lookaheads: an input arriving at entry e at time t
// leaves e no earlier than t+la(e), and each hop adds the next member's
// bound, so min over all paths is a sound shard-level lookahead. bounded is
// false when no entry reaches any exit (cross outputs are then bounded by
// pending events alone).
func shardLookahead(orig *System, shardOf []LPID, shard LPID, members []LPID) (pt vtime.Time, lt uint64, bounded bool) {
	const inf = ^uint64(0)
	pos := make(map[LPID]int, len(members))
	for i, id := range members {
		pos[id] = i
	}
	hasExit := false
	distPT := make([]uint64, len(members))
	distLT := make([]uint64, len(members))
	for i := range distPT {
		distPT[i] = inf
		distLT[i] = inf
	}
	// Seed entries with their own weight.
	for i, id := range members {
		d := orig.lps[id]
		for _, src := range d.in {
			if shardOf[src] != shard {
				distPT[i] = uint64(d.lookahead)
				distLT[i] = d.lookaheadLT
				break
			}
		}
	}
	// Relax intra-shard edges to a fixed point. Weights are non-negative and
	// shards are small, so Bellman-Ford-style sweeps are simpler than a heap
	// and deterministic by construction.
	for changed := true; changed; {
		changed = false
		for i, id := range members {
			if distPT[i] == inf && distLT[i] == inf {
				continue
			}
			for _, v := range orig.lps[id].out {
				j, ok := pos[v]
				if !ok {
					continue
				}
				vd := orig.lps[v]
				if distPT[i] != inf {
					if nd := distPT[i] + uint64(vd.lookahead); nd < distPT[j] {
						distPT[j] = nd
						changed = true
					}
				}
				if distLT[i] != inf {
					if nd := distLT[i] + vd.lookaheadLT; nd < distLT[j] {
						distLT[j] = nd
						changed = true
					}
				}
			}
		}
	}
	minPT, minLT := inf, inf
	for i, id := range members {
		exit := false
		for _, v := range orig.lps[id].out {
			if shardOf[v] != shard {
				exit = true
				break
			}
		}
		if !exit {
			continue
		}
		hasExit = true
		if distPT[i] < minPT {
			minPT = distPT[i]
		}
		if distLT[i] < minLT {
			minLT = distLT[i]
		}
	}
	if !hasExit || (minPT == inf && minLT == inf) {
		return 0, 0, false
	}
	if minPT == inf {
		minPT = 0
	}
	if minLT == inf {
		minLT = 0
	}
	return vtime.Time(minPT), minLT, true
}

// ievent is one intra-shard member event. The (ts, seq) pair gives the
// internal heap a deterministic total order for a given push sequence;
// equal-timestamp events may interleave differently across runs (as they do
// in the unsharded engine), which the kernel's phase structure makes
// harmless.
type ievent struct {
	ts   vtime.VT
	seq  uint64
	dst  LPID
	kind uint8
	data any
}

// iheap is a binary min-heap of ievents ordered by (ts, seq).
type iheap struct{ a []ievent }

func (h *iheap) Len() int { return len(h.a) }

func (h *iheap) less(i, j int) bool {
	if !h.a[i].ts.Equal(h.a[j].ts) {
		return h.a[i].ts.Less(h.a[j].ts)
	}
	return h.a[i].seq < h.a[j].seq
}

func (h *iheap) Push(e ievent) {
	h.a = append(h.a, e)
	for i := len(h.a) - 1; i > 0; {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

func (h *iheap) Pop() ievent {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a[last] = ievent{}
	h.a = h.a[:last]
	n := len(h.a)
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
	return top
}

func (h *iheap) MinTS() vtime.VT {
	if len(h.a) == 0 {
		return vtime.Inf
	}
	return h.a[0].ts
}

// shardModel is the Model of one shard super-LP: a sequential sub-simulator
// over its members.
type shardModel struct {
	shard   LPID
	members []LPID  // sorted original LPs
	models  []Model // parallel to members
	orig    *System
	shardOf []LPID // shared with the ShardedSystem

	heap iheap
	seq  uint64
	// lastWake is the timestamp of the latest outstanding wake self-event,
	// vtime.Inf when none is tracked. Earlier wakes may also be outstanding
	// (they arrive, find nothing to drain and are ignored); the invariant is
	// only that SOME pending self-event is at or below the heap minimum.
	lastWake vtime.VT

	// outer is the engine Ctx of the Execute/Init in progress; mctx is the
	// member-facing Ctx whose emit/record route through the shard.
	outer   *Ctx
	mctx    *Ctx
	scratch Event
}

func newShardModel(ss *ShardedSystem, shard LPID, members []LPID) *shardModel {
	m := &shardModel{
		shard:    shard,
		members:  members,
		models:   make([]Model, len(members)),
		orig:     ss.orig,
		shardOf:  ss.shardOf,
		lastWake: vtime.Inf,
	}
	for i, id := range members {
		m.models[i] = ss.orig.lps[id].model
	}
	m.mctx = &Ctx{sys: ss.orig, emit: m.memberEmit, record: m.memberRecord}
	return m
}

func (m *shardModel) modelOf(id LPID) Model {
	// Members are sorted; binary search keeps the hot path allocation-free.
	lo, hi := 0, len(m.members)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.members[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(m.members) || m.members[lo] != id {
		panic(fmt.Sprintf("pdes: shard %d received event for non-member LP %d", m.shard, id))
	}
	return m.models[lo]
}

// memberEmit routes a member's Send: same-shard events go straight onto the
// internal heap (no mailbox, no protocol bookkeeping); cross-shard events
// leave through the engine as shard-to-shard events.
func (m *shardModel) memberEmit(dst LPID, ts vtime.VT, kind uint8, data any) {
	if ts.Less(m.mctx.now) {
		panic(fmt.Sprintf("pdes: LP %s sends into its past: %v < %v",
			m.orig.Name(m.mctx.self), ts, m.mctx.now))
	}
	if m.shardOf[dst] == m.shard {
		if dst == m.mctx.self && !m.mctx.now.Less(ts) {
			panic(fmt.Sprintf("pdes: LP %s self-send not strictly in the future: %v",
				m.orig.Name(m.mctx.self), ts))
		}
		m.heap.Push(ievent{ts: ts, seq: m.seq, dst: dst, kind: kind, data: data})
		m.seq++
		return
	}
	m.outer.Send(m.shardOf[dst], ts, shardKindX, &shardXEvent{Dst: dst, Kind: kind, Data: data})
}

// memberRecord wraps a member trace record with its member attribution; the
// shard-level sink (WrapSink) unwraps it at commit time.
func (m *shardModel) memberRecord(item any) {
	m.outer.record(shardRec{lp: m.mctx.self, ts: m.mctx.now, item: item})
}

// Init runs every member's Init, drains the time-zero cascade and schedules
// the first wake.
func (m *shardModel) Init(ctx *Ctx) {
	m.outer = ctx
	for i, id := range m.members {
		if im, ok := m.models[i].(InitModel); ok {
			m.mctx.self, m.mctx.now = id, vtime.Zero
			im.Init(m.mctx)
		}
	}
	n := m.drain(vtime.Zero)
	m.wake()
	if n > 0 && ctx.charge != nil {
		ctx.charge(int64(n))
	}
	m.outer = nil
}

// Execute processes one engine event: unwrap a cross-shard arrival (or
// consume a wake), drain every internal event at or below its timestamp,
// and reschedule the wake. The engine counts one event per Execute; charge
// reconciles the books to one count per MEMBER event, so metrics, the
// modeled cost clock and the GVT cadence all see the true event volume.
func (m *shardModel) Execute(ctx *Ctx, ev *Event) {
	m.outer = ctx
	switch ev.Kind {
	case shardKindX:
		x := ev.Data.(*shardXEvent)
		m.heap.Push(ievent{ts: ev.TS, seq: m.seq, dst: x.Dst, kind: x.Kind, data: x.Data})
		m.seq++
	case shardKindWake:
		if ev.TS.Equal(m.lastWake) {
			m.lastWake = vtime.Inf
		}
	default:
		panic(fmt.Sprintf("pdes: shard %d: unknown event kind %d", m.shard, ev.Kind))
	}
	n := m.drain(ev.TS)
	m.wake()
	if ctx.charge != nil {
		ctx.charge(int64(n) - 1)
	}
	m.outer = nil
}

// drain executes internal events in (ts, seq) order up to and including
// limit. Members may push new events during the drain; pushes at or below
// limit are consumed in the same pass.
func (m *shardModel) drain(limit vtime.VT) int {
	n := 0
	for m.heap.Len() > 0 && m.heap.MinTS().LessEq(limit) {
		iv := m.heap.Pop()
		e := &m.scratch
		*e = Event{Src: m.shard, Dst: iv.dst, TS: iv.ts, Kind: iv.kind, Data: iv.data}
		m.mctx.self, m.mctx.now = iv.dst, iv.ts
		m.modelOf(iv.dst).Execute(m.mctx, e)
		n++
	}
	return n
}

// wake guarantees an engine self-event is pending at or below the heap
// minimum. Called after every drain; the drain postcondition (heap min
// strictly above the just-executed timestamp) makes the self-send legal.
func (m *shardModel) wake() {
	if m.heap.Len() == 0 {
		return
	}
	if min := m.heap.MinTS(); min.Less(m.lastWake) {
		m.outer.Schedule(min, shardKindWake, nil)
		m.lastWake = min
	}
}

// shardSnap is one shard's atomic snapshot: member states plus the internal
// scheduler.
type shardSnap struct {
	states   []any
	heap     []ievent
	seq      uint64
	lastWake vtime.VT
}

func (m *shardModel) SaveState() any {
	s := &shardSnap{seq: m.seq, lastWake: m.lastWake}
	s.states = make([]any, len(m.models))
	for i, mod := range m.models {
		s.states[i] = mod.SaveState()
	}
	s.heap = append([]ievent(nil), m.heap.a...)
	return s
}

func (m *shardModel) RestoreState(st any) {
	s := st.(*shardSnap)
	for i, mod := range m.models {
		mod.RestoreState(s.states[i])
	}
	// Copy into our backing array: heap operations mutate in place and the
	// snapshot may be restored again.
	m.heap.a = append(m.heap.a[:0], s.heap...)
	m.seq, m.lastWake = s.seq, s.lastWake
}

// SnapshotBytes sums the members' snapshot sizes for MemBudget accounting.
func (m *shardModel) SnapshotBytes() int {
	total := 96 + 48*len(m.heap.a)
	for _, mod := range m.models {
		if ms, ok := mod.(MemSizedModel); ok {
			if b := ms.SnapshotBytes(); b > 0 {
				total += b
				continue
			}
		}
		total += int(memSnapDefault)
	}
	return total
}
