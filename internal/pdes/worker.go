package pdes

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"govhdl/internal/stats"
	"govhdl/internal/vtime"
)

// lpToken is a wake token in the worker's scheduling heap. At most one token
// per LP exists (lpRT.queued); tokens order LPs by the pending minimum at
// queue time, approximating lowest-timestamp-first scheduling.
type lpToken struct {
	ts  vtime.VT
	seq uint64
	lp  *lpRT
}

type tokenHeap []lpToken

func (h tokenHeap) less(i, j int) bool {
	if h[i].ts != h[j].ts {
		return h[i].ts.Less(h[j].ts)
	}
	return h[i].seq < h[j].seq
}

func (h *tokenHeap) push(t lpToken) {
	*h = append(*h, t)
	a := *h
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !a.less(i, p) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

func (h *tokenHeap) pop() lpToken {
	a := *h
	top := a[0]
	last := len(a) - 1
	a[0] = a[last]
	a[last] = lpToken{}
	*h = a[:last]
	a = *h
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < len(a) && a.less(l, s) {
			s = l
		}
		if r < len(a) && a.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		a[i], a[s] = a[s], a[i]
		i = s
	}
	return top
}

// fatalPanic carries an unrecoverable protocol error up to worker.run.
type fatalPanic struct{ err *SimError }

// worker owns a partition of the LPs and runs their events under the
// configured synchronization protocol. Endpoint 0 is the GVT controller.
type worker struct {
	ep      Endpoint
	sys     *System
	cfg     *Config
	horizon vtime.VT
	owner   []int   // LPID -> owning endpoint index
	lps     []*lpRT // LPID -> runtime; nil when not owned here
	owned   []*lpRT
	// watchers[src] lists owned LPs with an in-edge from src, for mode
	// broadcasts. A dense slice indexed by LPID (not a map): lookups stay
	// O(1) without hashing, and the maprange invariant — no unordered map
	// iteration in the deterministic core — holds by construction.
	watchers [][]*lpRT

	sched    tokenHeap
	schedSeq uint64
	gvt      vtime.VT
	metrics  *stats.Metrics
	sink     TraceSink
	user     bool
	cmp      Comparator

	clock       float64
	sentTo      []uint64 // cumulative events+nulls sent, per endpoint
	recvd       uint64   // cumulative events+nulls received
	nullsSent   uint64   // cumulative null messages (deadlock-detector progress)
	execTotal   uint64
	execAtRound uint64
	requested   bool
	// gvtEvery is the current GVT request interval; starts at
	// Config.GVTEvery and retuned by the controller each round when
	// Config.GVTAdapt is set.
	gvtEvery int
	// roundNo counts applied GVT rounds, for the adaptation cooldown.
	roundNo uint64

	paused   bool
	deferred []deferredMsg // remote sends generated while paused
	// batchEp is the endpoint's optional batched-drain extension (local
	// mailboxes implement it); recvBuf is its reusable receive buffer.
	batchEp batchReceiver
	recvBuf []*Msg
	// localQ holds local deliveries until the top of the scheduling loop:
	// routing synchronously from inside Execute (or inside another
	// rollback) could roll back the very LP that is executing, or re-enter
	// a rollback in progress.
	localQ []*Event

	seq    uint64
	ctx    *Ctx
	curRec *procRec
	// supSends/supRecs suppress Ctx side effects during replay: rollback
	// coast-forward suppresses both (sends were already made, records already
	// retained); checkpoint restore suppresses sends only, so the replay
	// RE-EMITS every committed trace record and the restored run's trace is
	// complete from t=0 without carrying the old trace out of band.
	supSends bool
	supRecs  bool

	// Zero-allocation hot path machinery (see pool.go for the ownership
	// model): object pools for events and messages, per-destination send
	// buffers coalescing remote messages between scheduling boundaries,
	// and scratch slices reused across GVT rounds and history records.
	evPool   eventPool
	msgPool  msgPool
	outBuf   [][]*Msg // per-destination coalesced sends; empty while paused
	ackSent  []uint64 // GVT ack scratch (controller reads it only mid-round)
	recSends [][]antiRec
	recRecs  [][]any

	finalClock float64
	stopped    bool
	err        *SimError // why the worker stopped (abort or transport death)

	// Checkpoint/restart (checkpoint.go): logCommits enables the per-LP
	// committed-event logs a checkpoint serializes; restore, when non-nil,
	// rebuilds the worker from a prior cut instead of initializing LPs.
	logCommits bool
	restore    *Checkpoint

	// Migration (migrate.go, Config.Migrate runs only): migMoves holds the
	// round's migration plan (copied out of msgGVTNew before the Msg is
	// recycled), ackLoads is the reusable per-LP load report carried on GVT
	// acks, and migRound is the round number of the last migration cut this
	// worker applied — the anchor of the bounded forwarding window.
	migMoves []Move
	ackLoads []LPLoad
	migRound uint64

	// Supervision (watchdog.go): rs is the run-wide shared state, set by the
	// runner before the worker starts (nil in isolated unit tests); memTrack
	// enables Config.MemBudget accounting. diag is the snapshot this worker
	// publishes for stall reports whenever its diagEpoch lags rs.dumpEpoch.
	rs        *runState
	memTrack  bool
	diagMu    sync.Mutex
	diag      WorkerDiag
	diagEpoch atomic.Uint32
}

type deferredMsg struct {
	dst int
	m   *Msg
}

func newWorker(ep Endpoint, sys *System, cfg *Config, horizon vtime.VT,
	owner []int, ownedIDs []LPID, modes []Mode,
	metrics *stats.Metrics, sink TraceSink) *worker {

	w := &worker{
		ep:       ep,
		sys:      sys,
		cfg:      cfg,
		horizon:  horizon,
		owner:    owner,
		lps:      make([]*lpRT, sys.NumLPs()),
		watchers: make([][]*lpRT, sys.NumLPs()),
		metrics:  metrics,
		sink:     sink,
		user:     cfg.Ordering == OrderUserConsistent,
		cmp:      sys.cmp,
		sentTo:   make([]uint64, ep.N()),
		outBuf:   make([][]*Msg, ep.N()),
		ackSent:  make([]uint64, ep.N()),
	}
	if w.cmp == nil {
		w.cmp = func(a, b *Event) bool {
			if a.Kind != b.Kind {
				return a.Kind < b.Kind
			}
			if a.Src != b.Src {
				return a.Src < b.Src
			}
			return a.ID < b.ID
		}
	}
	for _, id := range ownedIDs {
		lp := newLPRT(sys.lps[id], modes[id])
		for i := range lp.edges {
			lp.edges[i].srcCons = modes[lp.edges[i].src] == Conservative
			w.watchers[lp.edges[i].src] = append(w.watchers[lp.edges[i].src], lp)
		}
		w.lps[id] = lp
		w.owned = append(w.owned, lp)
	}
	w.ctx = &Ctx{sys: sys, emit: w.emit, record: w.recordItem, charge: w.chargeEvents}
	w.gvtEvery = cfg.GVTEvery
	w.batchEp, _ = ep.(batchReceiver)
	w.logCommits = cfg.CheckpointRounds > 0 || cfg.Migrate != nil
	w.restore = cfg.Restore
	return w
}

// chargeEvents reconciles shard super-LP execution with per-member-event
// accounting (see Ctx.charge): a shard that drained n member events charges
// n-1 on top of the engine's own count of 1, so event metrics, the modeled
// cost clock and the GVT cadence stay in member-event units. Suppressed
// during replay — rollback coast-forward and checkpoint restore — exactly
// like the engine's own event counting.
func (w *worker) chargeEvents(delta int64) {
	if w.supSends || delta == 0 {
		return
	}
	w.metrics.Events.Add(uint64(delta))
	w.execTotal += uint64(delta)
	w.clock += float64(delta) * w.cfg.Costs.EventCost
}

func (w *worker) fatal(format string, args ...any) {
	panic(fatalPanic{&SimError{Text: fmt.Sprintf(format, args...)}})
}

func (w *worker) run() {
	defer func() {
		if r := recover(); r != nil {
			var err *SimError
			switch p := r.(type) {
			case fatalPanic:
				err = p.err
			case ModelError:
				// A diagnostic thrown by model code (a VHDL runtime error, a
				// delta runaway): the design is at fault, not the engine.
				// Fail the run with a structured verdict instead of crashing
				// the process — in a multi-tenant server only the offending
				// session dies. Under optimistic execution the diagnostic
				// could in principle come from a speculative misordering, but
				// unwinding is still strictly better than the crash it
				// replaces, and a deterministically bad design fails on every
				// path.
				err = &SimError{Text: "pdes: model error: " + p.Error(), Model: true}
			default:
				panic(r)
			}
			w.ep.Send(0, &Msg{Kind: msgFatal, Err: err})
			w.awaitStop()
		}
	}()

	if w.restore != nil {
		w.applyRestore()
	} else {
		w.initLPs()
	}
	w.flushSends()
	w.ep.Send(0, &Msg{Kind: msgIdle, Idle: true})
	const batch = 8
	for {
		w.publishDiag(false)
		if w.batchEp != nil {
			if w.drainBatch() {
				return
			}
		} else {
			for {
				m, ok := w.ep.TryRecv()
				if !ok {
					break
				}
				if w.handle(m) {
					return
				}
			}
		}
		progressed := false
		for i := 0; i < batch; i++ {
			if !w.step() {
				break
			}
			progressed = true
		}
		// Flush the coalesced sends at the scheduling boundary — always
		// before blocking in Recv and before announcing idleness, so no
		// message the accounting has counted can sit in a local buffer
		// while its receiver (or the controller) waits for it.
		w.flushSends()
		if !progressed {
			m := w.msgPool.get()
			m.Kind, m.Idle, m.Processed = msgIdle, true, w.execTotal
			w.ep.Send(0, m)
			// Force a fresh snapshot before parking: a worker blocked in
			// Recv cannot answer a later dump request, so the published
			// state (flagged Waiting) must already be current.
			w.publishDiag(true)
			w.setWaiting(true)
			m = w.ep.Recv()
			w.setWaiting(false)
			if w.handle(m) {
				return
			}
		} else if !w.requested && w.execTotal-w.execAtRound >= uint64(w.gvtEvery) {
			w.requested = true
			m := w.msgPool.get()
			m.Kind, m.Request, m.Processed = msgIdle, true, w.execTotal
			w.ep.Send(0, m)
		}
	}
}

// flushSends drains every per-destination send buffer with one batched
// mailbox operation per destination. Buffers are empty whenever the worker
// is paused (sendMsg defers instead while a GVT round runs).
func (w *worker) flushSends() {
	for dst, buf := range w.outBuf {
		if len(buf) == 0 {
			continue
		}
		if len(buf) == 1 {
			w.ep.Send(dst, buf[0])
		} else {
			w.ep.SendBatch(dst, buf)
		}
		for i := range buf {
			buf[i] = nil
		}
		w.outBuf[dst] = buf[:0]
	}
}

// awaitStop ignores everything until the controller confirms the abort — or
// the transport dies, in which case no confirmation can ever arrive.
func (w *worker) awaitStop() {
	for {
		if m := w.ep.Recv(); m.Kind == msgStop || m.Kind == msgPoison {
			return
		}
	}
}

func (w *worker) initLPs() {
	for _, lp := range w.owned {
		if im, ok := lp.model.(InitModel); ok {
			w.ctx.self, w.ctx.now = lp.decl.id, vtime.Zero
			im.Init(w.ctx)
			w.drainLocal()
		}
	}
}

// handle processes one control or data message in the normal loop. It
// returns true when the worker should terminate. Event and null messages are
// recycled here: the receiving worker owns them once decoded.
// drainBatch empties the mailbox with one locked operation and handles the
// messages in arrival order. A GVT pause is deferred to the end of the
// batch: gvtParticipate blocks in Recv, so anything still buffered behind
// the pause (events sent by workers that had not yet paused) must be handled
// first or the round's drain accounting would wait for messages this worker
// is itself holding.
func (w *worker) drainBatch() (stop bool) {
	w.recvBuf = w.batchEp.TryRecvAll(w.recvBuf[:0])
	var pause *Msg
	for i, m := range w.recvBuf {
		w.recvBuf[i] = nil
		if m.Kind == msgGVTPause {
			pause = m
			continue
		}
		if w.handle(m) {
			return true
		}
	}
	if pause != nil {
		return w.handle(pause)
	}
	return false
}

func (w *worker) handle(m *Msg) bool {
	switch m.Kind {
	case msgEvent:
		w.recvd++
		w.localQ = append(w.localQ, m.Ev)
		w.msgPool.put(m)
		w.drainLocal()
	case msgNull:
		w.recvd++
		src, dst, ts := m.Src, m.Dst, m.TS
		w.msgPool.put(m)
		w.routeNull(src, dst, ts)
		w.drainLocal()
	case msgGVTPause:
		w.msgPool.put(m)
		return w.gvtParticipate()
	case msgStop:
		w.err = m.Err
		w.stopped = true
		return true
	case msgPoison:
		w.err = m.Err
		w.stopped = true
		return true
	}
	return false
}

// step executes one scheduling decision. It returns true if an event (or
// user-consistent batch) was executed.
func (w *worker) step() bool {
	for len(w.sched) > 0 {
		tok := w.sched.pop()
		lp := tok.lp
		lp.queued = false
		if lp.pending.Len() == 0 {
			continue
		}
		ts := lp.pending.MinTS()
		if !ts.Less(w.horizon) {
			continue // beyond the horizon; never processed
		}
		lp.wakes++
		if lp.mode == Conservative {
			if !lp.safeToProcess(w.gvt, w.user) {
				lp.blockedHits++
				w.metrics.Blocked.Add(1)
				continue // requeued when a guarantee or GVT changes
			}
			//govhdlvet:vtcompare ThrottleWindow bounds optimism by physical time alone; no lexicographic (PT, LT) ordering is implied, so comparing PT with a window offset is the intended semantics.
		} else if w.cfg.ThrottleWindow > 0 && ts.PT > w.gvt.PT+w.cfg.ThrottleWindow {
			continue // throttled; requeued at the next GVT advance
		} else if w.memTrack && w.gvt.Less(ts) && w.rs.memUsed.Load() >= w.cfg.MemBudget {
			// Over the memory budget: pause speculation. Only events strictly
			// beyond GVT are withheld — committed-side work always proceeds, so
			// a budgeted run cannot livelock; the backlog is requeued when the
			// next GVT round advances (and cancelback reclaims history).
			w.metrics.MemThrottled.Add(1)
			continue
		}
		if w.user {
			w.executeBatch(lp)
		} else {
			w.execute(lp, lp.pending.Pop())
		}
		w.drainLocal()
		w.requeue(lp)
		if w.cfg.Lookahead && lp.mode == Conservative {
			w.sendNulls(lp)
		}
		return true
	}
	return false
}

// execute runs one event at lp, snapshotting state first when optimistic.
func (w *worker) execute(lp *lpRT, ev *Event) {
	checkLive(ev, "execute")
	if ev.TS.Less(lp.now) {
		// Engine invariant: routing must have rolled back (optimistic) or
		// failed (conservative) before a straggler could reach execution.
		w.fatal("engine bug: LP %s executing %v before local time %v",
			w.sys.Name(lp.decl.id), ev.TS, lp.now)
	}
	if w.clock < ev.Clk {
		w.clock = ev.Clk
	}
	w.clock += w.cfg.Costs.EventCost
	ts := ev.TS
	w.ctx.self, w.ctx.now = lp.decl.id, ts
	if debugTraceID != 0 {
		dbgID(w, "execute", ev, fmt.Sprintf("lp=%s mode=%v", w.sys.Name(lp.decl.id), lp.mode))
	}
	if lp.mode == Optimistic {
		rec := procRec{ev: ev, mem: memPerRec}
		if n := len(w.recSends) - 1; n >= 0 {
			rec.sends = w.recSends[n]
			w.recSends = w.recSends[:n]
		}
		if n := len(w.recRecs) - 1; n >= 0 {
			rec.recs = w.recRecs[n]
			w.recRecs = w.recRecs[:n]
		}
		if lp.sinceCkpt == 0 {
			var snapMem int64
			rec.state, snapMem = w.snapshot(lp)
			rec.mem += snapMem
		}
		lp.sinceCkpt++
		if lp.sinceCkpt >= w.cfg.CheckpointEvery {
			lp.sinceCkpt = 0
		}
		// Appending before Execute lets curRec point into the history
		// slice instead of a heap-escaping local. Safe: only execute
		// appends to lp.processed, Execute cannot re-enter it (local
		// deliveries queue in localQ), so the element cannot move.
		lp.processed = append(lp.processed, rec)
		prev := w.curRec
		cur := &lp.processed[len(lp.processed)-1]
		w.curRec = cur
		lp.model.Execute(w.ctx, ev)
		w.curRec = prev
		// Charge once the record is final (emit added memPerSend per send);
		// the matching credit is taken where records are destroyed: rollback,
		// commit and fossil collection.
		w.memAdd(cur.mem)
	} else {
		prev := w.curRec
		w.curRec = nil
		lp.model.Execute(w.ctx, ev)
		w.curRec = prev
		// A conservative execution can never roll back: it is committed
		// immediately, the receiver's ownership of the event ends here and
		// it goes back to the pool.
		w.logCommit(lp, ev)
		w.evPool.put(ev)
	}
	lp.now = ts
	lp.execs++
	w.execTotal++
	w.metrics.Events.Add(1)
}

// snapshot returns the model state to checkpoint and its MemBudget charge,
// reusing the previous snapshot when a VersionedModel reports its state
// unchanged since then. Only real SaveState calls are counted and charged at
// full size (a reused snapshot retains just a reference): copy-on-write
// state saving is the whole point.
func (w *worker) snapshot(lp *lpRT) (any, int64) {
	if lp.versioned != nil {
		v := lp.versioned.StateVersion()
		if lp.lastSnap != nil && v == lp.lastVer {
			return lp.lastSnap, memSnapShared
		}
		s := lp.model.SaveState()
		lp.lastSnap, lp.lastVer = s, v
		w.metrics.StateSaves.Add(1)
		w.clock += w.cfg.Costs.StateSaveCost
		return s, lp.snapBytes
	}
	w.metrics.StateSaves.Add(1)
	w.clock += w.cfg.Costs.StateSaveCost
	return lp.model.SaveState(), lp.snapBytes
}

// memAdd moves the tracked optimistic memory total by n bytes (MemBudget
// runs only) and maintains the high-water mark.
func (w *worker) memAdd(n int64) {
	if !w.memTrack || n == 0 {
		return
	}
	v := w.rs.memUsed.Add(n)
	if n > 0 {
		for {
			p := w.rs.memPeak.Load()
			if v <= p || w.rs.memPeak.CompareAndSwap(p, v) {
				return
			}
		}
	}
}

// executeBatch pops every pending event with the minimal timestamp, orders
// the set with the application comparator and executes it (user-consistent
// ordering).
func (w *worker) executeBatch(lp *lpRT) {
	first := lp.pending.Pop()
	batch := []*Event{first}
	for lp.pending.Len() > 0 && lp.pending.MinTS() == first.TS {
		batch = append(batch, lp.pending.Pop())
	}
	if len(batch) > 1 {
		sort.SliceStable(batch, func(i, j int) bool { return w.cmp(batch[i], batch[j]) })
	}
	w.clock += w.cfg.Costs.UserOrderCost * float64(len(batch))
	for _, ev := range batch {
		w.execute(lp, ev)
	}
}

// emit is Ctx's send hook: allocate an ID, remember the send for potential
// cancellation (by value — the receiver owns the Event object), and deliver.
func (w *worker) emit(dst LPID, ts vtime.VT, kind uint8, data any) {
	if w.supSends {
		return // coast-forward re-execution: sends already made
	}
	w.seq++
	e := w.evPool.get()
	e.ID = uint64(w.ep.Self())<<48 | w.seq
	e.Src = w.ctx.self
	e.Dst = dst
	e.TS = ts
	e.Sent = w.ctx.now
	e.Kind = kind
	e.Data = data
	if w.curRec != nil {
		w.curRec.sends = append(w.curRec.sends,
			antiRec{id: e.ID, src: e.Src, dst: dst, ts: ts, kind: kind})
		w.curRec.mem += memPerSend
	}
	if debugTraceID != 0 {
		dbgID(w, "emit", e, fmt.Sprintf("src=%d dst=%d", e.Src, e.Dst))
	}
	w.deliver(e)
}

// deliver routes an event (or anti-message) to its destination worker.
// Local deliveries are queued and drained at the top of the loop.
func (w *worker) deliver(e *Event) {
	o := w.owner[e.Dst]
	if o == w.ep.Self() {
		w.metrics.LocalMsgs.Add(1)
		w.clock += w.cfg.Costs.LocalMsgCost
		w.localQ = append(w.localQ, e)
		return
	}
	w.metrics.RemoteMsgs.Add(1)
	w.clock += w.cfg.Costs.RemoteMsgCost
	e.Clk = w.clock + w.cfg.Costs.RemoteLatency
	m := w.msgPool.get()
	m.Kind, m.Ev = msgEvent, e
	w.sendMsg(o, m)
}

// sendMsg sends a counted (event/null) message to another worker: deferred
// while a GVT round is in progress so the round's message accounting stays
// exact, otherwise coalesced into the destination's send buffer, which is
// flushed at every scheduling boundary and before any blocking receive.
// sentTo is counted at buffering time; the flush discipline (buffers always
// empty before a GVT ack snapshot) keeps the count equal to what was sent.
func (w *worker) sendMsg(dst int, m *Msg) {
	if debugTraceID != 0 {
		dbgID(w, "sendMsg", m.Ev, fmt.Sprintf("dst=%d", dst))
	}
	if w.paused {
		w.deferred = append(w.deferred, deferredMsg{dst, m})
		return
	}
	w.sentTo[dst]++
	w.outBuf[dst] = append(w.outBuf[dst], m)
}

// sendAnti builds and delivers the anti-message for one recorded send. The
// anti is a fresh pooled Event: the positive twin lives at (and is owned by)
// the receiver.
func (w *worker) sendAnti(r antiRec) {
	w.metrics.Antis.Add(1)
	w.clock += w.cfg.Costs.AntiCost
	e := w.evPool.get()
	e.ID = r.id
	e.Src = r.src
	e.Dst = r.dst
	e.TS = r.ts
	e.Kind = r.kind
	e.Neg = true
	if debugTraceID != 0 {
		dbgID(w, "sendAnti", e, "")
	}
	w.deliver(e)
}

// recycleRec returns a cleared history record's scratch slices to the worker
// for reuse by future records. The caller zeroes the record itself.
func (w *worker) recycleRec(rec *procRec) {
	if rec.sends != nil && len(w.recSends) < poolLocalCap {
		w.recSends = append(w.recSends, rec.sends[:0])
	}
	if rec.recs != nil {
		for i := range rec.recs {
			rec.recs[i] = nil
		}
		if len(w.recRecs) < poolLocalCap {
			w.recRecs = append(w.recRecs, rec.recs[:0])
		}
	}
}

// recordItem is Ctx's trace hook.
func (w *worker) recordItem(item any) {
	if w.supRecs {
		return
	}
	if w.curRec != nil {
		w.curRec.recs = append(w.curRec.recs, item)
		return
	}
	if w.sink != nil {
		w.sink.Commit(w.ctx.self, w.ctx.now, item)
	}
}

// drainLocal routes queued local deliveries. Routing may queue more (e.g.
// anti-messages from a rollback); the index loop picks them up, so routeEvent
// is never re-entered.
func (w *worker) drainLocal() {
	for i := 0; i < len(w.localQ); i++ {
		e := w.localQ[i]
		w.localQ[i] = nil
		w.routeEvent(e)
	}
	w.localQ = w.localQ[:0]
}

// requeue puts lp back into the scheduling heap if it has pending work.
func (w *worker) requeue(lp *lpRT) {
	if lp.queued || lp.pending.Len() == 0 {
		return
	}
	lp.queued = true
	w.schedSeq++
	w.sched.push(lpToken{ts: lp.pending.MinTS(), seq: w.schedSeq, lp: lp})
}

// routeEvent inserts an incoming event at its destination LP, handling
// channel clocks, anti-messages, stragglers and rollback.
func (w *worker) routeEvent(e *Event) {
	checkLive(e, "route")
	dbgID(w, "route", e, "")
	lp := w.lps[e.Dst]
	if lp == nil {
		// After a migration cut, chase a moved LP to its new owner instead of
		// dying: a message can legitimately race the cut (e.g. sent by a
		// worker that resumed an instant earlier). The flipped ownership
		// table is authoritative, so forwarding stays correct however late
		// the straggler is — arrivals past the nominal window are counted
		// separately, not dropped or treated as fatal.
		if o := w.owner[e.Dst]; o != w.ep.Self() && w.migRound > 0 {
			w.metrics.ForwardedMsgs.Add(1)
			if w.roundNo-w.migRound > migForwardWindow {
				w.metrics.LateForwards.Add(1)
			}
			m := w.msgPool.get()
			m.Kind, m.Ev = msgEvent, e
			w.sendMsg(o, m)
			return
		}
		w.fatal("event %v routed to worker %d which does not own LP %d", e, w.ep.Self(), e.Dst)
	}
	if e.Neg {
		w.annihilate(lp, e)
		return
	}
	if !lp.raiseCC(e.Src, e.Sent) {
		w.fatal("undeclared edge %s -> %s", w.sys.Name(e.Src), w.sys.Name(e.Dst))
	}
	if len(lp.orphans) > 0 {
		for i, a := range lp.orphans {
			if a.SameButSign(e) {
				lp.orphans = append(lp.orphans[:i], lp.orphans[i+1:]...)
				w.metrics.Annihilated.Add(1)
				w.evPool.put(a)
				w.evPool.put(e)
				return
			}
		}
	}
	switch lp.mode {
	case Conservative:
		if e.TS.Less(lp.now) {
			w.fatal("conservative LP %s received straggler %v (local time %v): protocol violation",
				w.sys.Name(lp.decl.id), e.TS, lp.now)
		}
	case Optimistic:
		if e.TS.Less(lp.now) || (w.user && e.TS == lp.now) {
			if i := lp.rollbackIndex(e.TS, w.user); i < len(lp.processed) {
				w.rollbackTo(lp, i)
			}
		}
	}
	lp.pending.Push(e)
	w.requeue(lp)
}

// annihilate cancels the positive twin of an anti-message, rolling back
// first if the twin was already processed.
func (w *worker) annihilate(lp *lpRT, anti *Event) {
	match := func(e *Event) bool { return e.SameButSign(anti) }
	if pos := lp.pending.RemoveMatching(match); pos != nil {
		w.metrics.Annihilated.Add(1)
		dbgID(w, "annih-pending", anti, "")
		w.evPool.put(pos)
		w.evPool.put(anti)
		w.requeue(lp)
		return
	}
	for k := len(lp.processed) - 1; k >= 0; k-- {
		if lp.processed[k].ev.ID == anti.ID {
			if lp.mode == Conservative {
				w.fatal("conservative LP %s received anti-message for processed event %v: protocol violation",
					w.sys.Name(lp.decl.id), anti)
			}
			w.rollbackTo(lp, k)
			if pos := lp.pending.RemoveMatching(match); pos != nil {
				w.metrics.Annihilated.Add(1)
				w.evPool.put(pos)
			}
			w.evPool.put(anti)
			return
		}
	}
	if debugOrphanHook != nil {
		debugOrphanHook(w, lp, anti)
	}
	lp.orphans = append(lp.orphans, anti)
}

// debugOrphanHook, when non-nil, observes anti-messages whose positive twin
// cannot be found (test instrumentation only).
var debugOrphanHook func(w *worker, lp *lpRT, anti *Event)

// rollbackTo undoes processed events [i:], restoring the newest snapshot at
// or before i and silently re-executing (coast-forward) up to i.
func (w *worker) rollbackTo(lp *lpRT, i int) {
	n := len(lp.processed)
	count := n - i
	w.metrics.Rollbacks.Add(1)
	w.metrics.RolledBack.Add(uint64(count))
	lp.rolled += uint64(count)
	w.clock += w.cfg.Costs.RollbackBase + w.cfg.Costs.RollbackPer*float64(count)

	j := lp.restoreBase(i)
	if j < 0 {
		w.fatal("LP %s has no restore snapshot for rollback to index %d", w.sys.Name(lp.decl.id), i)
	}
	lp.model.RestoreState(lp.processed[j].state)
	// The model's live state no longer matches the shared snapshot even if
	// its version counter happens to repeat; force a real save next time.
	lp.lastSnap = nil
	if i > j {
		// Coast-forward: replay committed-side events without re-sending.
		savedSelf, savedNow := w.ctx.self, w.ctx.now
		savedRec, savedSends, savedRecs := w.curRec, w.supSends, w.supRecs
		w.curRec, w.supSends, w.supRecs = nil, true, true
		for k := j; k < i; k++ {
			rec := &lp.processed[k]
			w.ctx.self, w.ctx.now = lp.decl.id, rec.ev.TS
			lp.model.Execute(w.ctx, rec.ev)
			w.metrics.CoastForward.Add(1)
		}
		w.ctx.self, w.ctx.now = savedSelf, savedNow
		w.curRec, w.supSends, w.supRecs = savedRec, savedSends, savedRecs
	}
	var freed int64
	for k := i; k < n; k++ {
		rec := &lp.processed[k]
		for _, s := range rec.sends {
			w.sendAnti(s)
		}
		dbgID(w, "unprocess", rec.ev, "")
		// The event returns to pending — still owned here, not freed.
		lp.pending.Push(rec.ev)
		freed += rec.mem
		w.recycleRec(rec)
		lp.processed[k] = procRec{}
	}
	w.memAdd(-freed)
	lp.processed = lp.processed[:i]
	if i > 0 {
		lp.now = lp.processed[i-1].ev.TS
	} else {
		lp.now = lp.floor
	}
	lp.sinceCkpt = 0 // force a snapshot on the next execution
	w.requeue(lp)
}

// sendNulls emits channel-clock promises on every out-edge whose promise
// improved (conservative LPs with Config.Lookahead only).
func (w *worker) sendNulls(lp *lpRT) {
	p := lp.promise(w.gvt)
	for i, dst := range lp.decl.out {
		if !lp.lastPromise[i].Less(p) {
			continue
		}
		lp.lastPromise[i] = p
		w.metrics.Nulls.Add(1)
		w.nullsSent++
		w.clock += w.cfg.Costs.NullCost
		o := w.owner[dst]
		if o == w.ep.Self() {
			w.routeNull(lp.decl.id, dst, p)
		} else {
			m := w.msgPool.get()
			m.Kind, m.Src, m.Dst, m.TS = msgNull, lp.decl.id, dst, p
			w.sendMsg(o, m)
		}
	}
}

// routeNull applies a promise to the receiver edge and propagates.
func (w *worker) routeNull(src, dst LPID, ts vtime.VT) {
	lp := w.lps[dst]
	if lp == nil {
		if o := w.owner[dst]; o != w.ep.Self() && w.migRound > 0 {
			w.metrics.ForwardedMsgs.Add(1)
			if w.roundNo-w.migRound > migForwardWindow {
				w.metrics.LateForwards.Add(1)
			}
			m := w.msgPool.get()
			m.Kind, m.Src, m.Dst, m.TS = msgNull, src, dst, ts
			w.sendMsg(o, m)
			return
		}
		w.fatal("null %d->%d routed to worker %d which does not own the destination", src, dst, w.ep.Self())
	}
	i, ok := lp.edgeOf[src]
	if !ok {
		w.fatal("null on undeclared edge %s -> %s", w.sys.Name(src), w.sys.Name(dst))
	}
	if lp.edges[i].cc.Less(ts) {
		lp.edges[i].cc = ts
		w.requeue(lp)
		if w.cfg.Lookahead && lp.mode == Conservative {
			w.sendNulls(lp)
		}
	}
}

// gvtParticipate runs the worker side of one stop-the-world GVT round.
func (w *worker) gvtParticipate() (done bool) {
	// Flush before snapshotting sentTo for the ack: the drain accounting
	// assumes every counted message is already in its receiver's mailbox (or
	// on the wire), not sitting in a local coalescing buffer.
	w.flushSends()
	w.paused = true
	// ackSent is per-round scratch: the controller reads Sent only while this
	// worker is blocked in the round, so reusing the slice across rounds is
	// safe and allocation-free.
	copy(w.ackSent, w.sentTo)
	ack := w.msgPool.get()
	ack.Kind = msgGVTAck
	ack.Sent = w.ackSent
	ack.Recvd = w.recvd
	ack.Clock = w.clock
	ack.Modes = w.modeProposals()
	ack.Processed = w.execTotal
	ack.Nulls = w.nullsSent
	if w.cfg.StallPolicy == StallForceOpt {
		ack.Blocked = w.blockedLPs()
	}
	if w.cfg.Migrate != nil {
		ack.Loads = w.buildLoads()
	}
	w.ep.Send(0, ack)
	var expect uint64
	haveExpect, minSent := false, false
	for {
		if haveExpect && !minSent && w.recvd >= expect {
			if w.recvd > expect {
				w.fatal("worker %d received %d messages, expected %d", w.ep.Self(), w.recvd, expect)
			}
			mm := w.msgPool.get()
			mm.Kind, mm.Min, mm.Clock = msgGVTMin, w.localMin(), w.clock
			w.ep.Send(0, mm)
			minSent = true
		}
		// Rounds block in Recv too (and a wedged peer can park us here
		// forever), so publish fresh state before every round receive.
		w.publishDiag(true)
		w.setWaiting(true)
		m := w.ep.Recv()
		w.setWaiting(false)
		switch m.Kind {
		case msgEvent:
			w.recvd++
			w.localQ = append(w.localQ, m.Ev)
			w.msgPool.put(m)
			w.drainLocal()
		case msgNull:
			w.recvd++
			src, dst, ts := m.Src, m.Dst, m.TS
			w.msgPool.put(m)
			w.routeNull(src, dst, ts)
			w.drainLocal()
		case msgGVTDrain:
			expect = m.Expect
			haveExpect = true
			w.msgPool.put(m)
		case msgGVTNew:
			ckpt := m.Ckpt
			w.migMoves = append(w.migMoves[:0], m.Moves...)
			done = w.applyGVTNew(m)
			w.msgPool.put(m)
			if ckpt && !done {
				return w.ckptParticipate()
			}
			if len(w.migMoves) > 0 && !done {
				return w.migParticipate()
			}
			return done
		case msgStop:
			w.err = m.Err
			w.stopped = true
			return true
		case msgPoison:
			w.err = m.Err
			w.stopped = true
			return true
		}
	}
}

func (w *worker) localMin() vtime.VT {
	min := vtime.Inf
	for _, lp := range w.owned {
		if ts := lp.pending.MinTS(); ts.Less(min) {
			min = ts
		}
	}
	// Deferred messages are in flight but invisible to the drain counts of
	// the current round, so they must constrain the minimum directly. An
	// anti-message constrains GVT to STRICTLY below its timestamp: a
	// rollback caused by an anti cancels the record at exactly the anti's
	// timestamp, so same-timestamp anti chains do not increase in time the
	// way straggler rollbacks do. With the strict bound, any anti that can
	// appear after a round has a timestamp strictly above the round's GVT
	// (by induction: root antis exceed their straggler >= GVT, and
	// descendants are at or above their trigger), which is what makes it
	// sound to fossil-collect at, and to let conservative LPs process
	// events at, timestamps <= GVT.
	for _, d := range w.deferred {
		if d.m.Kind != msgEvent {
			continue
		}
		ts := d.m.Ev.TS
		if d.m.Ev.Neg {
			ts = ts.Pred()
		}
		if ts.Less(min) {
			min = ts
		}
	}
	return min
}

// applyGVTNew installs the new GVT: clock barrier, mode switches, fossil
// collection, adaptation-window reset and re-scheduling.
func (w *worker) applyGVTNew(m *Msg) bool {
	if w.rs != nil && w.gvt.Less(m.GVT) {
		// Committed progress; feeds the stall watchdog (of every process, in
		// distributed mode: the broadcast reaches all workers).
		w.rs.progress.Add(1)
	}
	w.gvt = m.GVT
	if w.clock < m.Clock {
		w.clock = m.Clock
	}
	w.clock += w.cfg.Costs.GVTCost
	w.roundNo++
	if m.NextGVT > 0 {
		w.gvtEvery = m.NextGVT
	}

	w.paused = false
	w.releaseDeferred()

	// Update edge trust tables everywhere, then perform owned switches.
	for _, id := range m.ConsLPs {
		w.markMode(id, Conservative)
	}
	for _, id := range m.OptLPs {
		w.markMode(id, Optimistic)
	}
	for _, id := range m.ConsLPs {
		if lp := w.lps[id]; lp != nil {
			w.switchToCons(lp)
		}
	}
	for _, id := range m.OptLPs {
		if lp := w.lps[id]; lp != nil {
			w.switchToOpt(lp)
		}
	}
	w.drainLocal() // anti-messages from commit-point rollbacks

	for _, lp := range w.owned {
		w.fossil(lp, m.Done)
		lp.execs, lp.rolled, lp.wakes, lp.blockedHits = 0, 0, 0, 0
		w.requeue(lp)
		if !m.Done && w.cfg.Lookahead && lp.mode == Conservative {
			w.sendNulls(lp)
		}
	}
	if w.memTrack && !m.Done {
		w.cancelback()
	}
	w.execAtRound = w.execTotal
	w.requested = false
	if m.Done {
		for _, lp := range w.owned {
			w.metrics.OrphanAntis.Add(uint64(len(lp.orphans)))
		}
		w.finalClock = w.clock
		return true
	}
	return false
}

// markMode updates the receiver-side trust of every owned edge from src.
// A switch to conservative resets the channel clock to GVT: everything the
// LP may still send (or cancel) after its commit-point rollback is at or
// after GVT.
func (w *worker) markMode(src LPID, m Mode) {
	for _, lp := range w.watchers[src] {
		i := lp.edgeOf[src]
		lp.edges[i].srcCons = m == Conservative
		if m == Conservative {
			lp.edges[i].cc = w.gvt
		}
		w.requeue(lp)
	}
}

// switchToCons commits an optimistic LP at GVT (rolling back uncommitted
// work) and continues conservatively.
func (w *worker) switchToCons(lp *lpRT) {
	if lp.mode == Conservative {
		return
	}
	if i := lp.rollbackIndex(w.gvt, false); i < len(lp.processed) {
		w.rollbackTo(lp, i)
	}
	w.commitHistory(lp)
	lp.mode = Conservative
	lp.sinceCkpt = 0
	lp.switchRound = w.roundNo
	w.metrics.ModeSwitches.Add(1)
}

// switchToOpt starts speculating: history begins empty at the current
// (committed) local time.
func (w *worker) switchToOpt(lp *lpRT) {
	if lp.mode == Optimistic {
		return
	}
	lp.mode = Optimistic
	lp.sinceCkpt = 0
	lp.floor = lp.now
	lp.switchRound = w.roundNo
	w.metrics.ModeSwitches.Add(1)
}

// commitHistory commits every retained record's trace output and clears the
// history, recycling the committed events (no anti-message can target a
// committed record: anti timestamps are strictly above the GVT that
// committed it).
func (w *worker) commitHistory(lp *lpRT) {
	var freed int64
	for k := range lp.processed {
		rec := &lp.processed[k]
		dbgID(w, "commitHistory", rec.ev, "")
		if w.sink != nil {
			for _, item := range rec.recs {
				w.sink.Commit(lp.decl.id, rec.ev.TS, item)
			}
		}
		w.logCommit(lp, rec.ev)
		w.evPool.put(rec.ev)
		freed += rec.mem
		w.recycleRec(rec)
		lp.processed[k] = procRec{}
	}
	w.memAdd(-freed)
	w.metrics.Fossils.Add(uint64(len(lp.processed)))
	lp.processed = lp.processed[:0]
	lp.floor = lp.now
	lp.sinceCkpt = 0 // the next record must carry a snapshot
}

// fossil commits and frees the history below the commit horizon.
func (w *worker) fossil(lp *lpRT, done bool) {
	if lp.mode != Optimistic || len(lp.processed) == 0 {
		return
	}
	if done {
		// Final GVT is at least the horizon: everything is committed.
		w.commitHistory(lp)
		return
	}
	k := lp.rollbackIndex(w.gvt, w.user)
	if k == len(lp.processed) {
		w.commitHistory(lp)
		return
	}
	j := lp.restoreBase(k)
	if j <= 0 {
		return
	}
	// Read the new floor before recycling the records that define it.
	floor := lp.processed[j-1].ev.TS
	var freed int64
	for i := 0; i < j; i++ {
		rec := &lp.processed[i]
		dbgID(w, "fossilCommit", rec.ev, "")
		if w.sink != nil {
			for _, item := range rec.recs {
				w.sink.Commit(lp.decl.id, rec.ev.TS, item)
			}
		}
		w.logCommit(lp, rec.ev)
		w.evPool.put(rec.ev)
		freed += rec.mem
		w.recycleRec(rec)
	}
	w.memAdd(-freed)
	lp.floor = floor
	w.metrics.Fossils.Add(uint64(j))
	// Compact in place: the history tail keeps its backing array instead of
	// reallocating at every fossil pass.
	n := copy(lp.processed, lp.processed[j:])
	for i := n; i < len(lp.processed); i++ {
		lp.processed[i] = procRec{}
	}
	lp.processed = lp.processed[:n]
}

// modeProposals implements the self-adaptation heuristic of the dynamic
// protocol over the last adaptation window.
func (w *worker) modeProposals() []ModePair {
	if w.cfg.Protocol != ProtoDynamic {
		return nil
	}
	var props []ModePair
	for _, lp := range w.owned {
		if lp.decl.forced {
			continue
		}
		// Cooldown: a freshly adapted LP holds its mode for AdaptCooldown
		// rounds. Thrashing between modes pays a rollback-commit cycle per
		// switch, which is what made dynamic runs slower than either pure
		// protocol on filter pipelines.
		if w.cfg.AdaptCooldown > 0 && lp.switchRound != 0 &&
			w.roundNo-lp.switchRound < uint64(w.cfg.AdaptCooldown) {
			continue
		}
		switch lp.mode {
		case Optimistic:
			if lp.execs+lp.rolled >= 16 &&
				float64(lp.rolled) > w.cfg.AdaptRollbackHi*float64(lp.execs) {
				props = append(props, ModePair{lp.decl.id, Conservative})
			}
		case Conservative:
			// Heavy-state LPs stay conservative no matter how often they
			// block: optimism would pay lp.snapBytes per event, which the
			// blocked-ratio heuristic cannot see. The stall watchdog can
			// still force optimism on them to break a genuine deadlock.
			if lp.snapBytes > adaptSnapCap {
				continue
			}
			if lp.wakes >= 4 &&
				float64(lp.blockedHits) > w.cfg.AdaptBlockedHi*float64(lp.wakes) {
				props = append(props, ModePair{lp.decl.id, Optimistic})
			}
		}
	}
	return props
}

// cancelback reclaims optimistic memory after a GVT advance when the run is
// over its Config.MemBudget: repeatedly roll the furthest-ahead optimistic LP
// back to the committed GVT (Jefferson's cancelback, implemented as a
// self-rollback) until the tracked total fits or nothing speculative remains.
// Only uncommitted work is discarded, so the committed trace is untouched;
// the freed events return to pending and re-execute once memory allows.
func (w *worker) cancelback() {
	for w.rs.memUsed.Load() > w.cfg.MemBudget {
		var victim *lpRT
		vIdx := 0
		for _, lp := range w.owned {
			if lp.mode != Optimistic || len(lp.processed) == 0 {
				continue
			}
			i := lp.rollbackIndex(w.gvt, w.user)
			if i >= len(lp.processed) {
				continue
			}
			if victim == nil || victim.now.Less(lp.now) ||
				(lp.now == victim.now && victim.decl.id < lp.decl.id) {
				victim, vIdx = lp, i
			}
		}
		if victim == nil {
			return // nothing speculative left here; other workers may reclaim
		}
		w.metrics.Cancelbacks.Add(1)
		w.rollbackTo(victim, vIdx)
		// A cancelback's anti-messages may roll back local peers in turn,
		// releasing more memory before the next victim pick.
		w.drainLocal()
	}
}

// blockedLPs lists the owned conservative LPs that are blocked at this GVT
// pause — pending events below the horizon, none safe — with their earliest
// withheld timestamp, for the controller's stall-rescue pick.
func (w *worker) blockedLPs() []BlockedLP {
	var b []BlockedLP
	for _, lp := range w.owned {
		if lp.mode != Conservative || lp.pending.Len() == 0 {
			continue
		}
		ts := lp.pending.MinTS()
		if !ts.Less(w.horizon) || lp.safeToProcess(w.gvt, w.user) {
			continue
		}
		b = append(b, BlockedLP{LP: lp.decl.id, TS: ts})
	}
	return b
}

// publishDiag refreshes this worker's stall-report snapshot. Unforced calls
// sit on the hot scheduling path and only publish when the watchdog has
// requested a dump (rs.dumpEpoch moved) — steady-state cost is one atomic
// load. Forced calls happen just before a potentially unbounded block in
// Recv, where the worker cannot answer a later request, so the pre-block
// state must already be published.
func (w *worker) publishDiag(force bool) {
	if w.rs == nil {
		return
	}
	epoch := w.rs.dumpEpoch.Load()
	if !force && w.diagEpoch.Load() == epoch {
		return
	}
	w.diagMu.Lock()
	w.diag.Worker = w.ep.Self()
	w.diag.GVT = w.gvt
	w.diag.Paused = w.paused
	w.diag.ExecTotal = w.execTotal
	w.diag.LPs = w.diag.LPs[:0]
	for _, lp := range w.owned {
		d := LPDiag{
			LP:        lp.decl.id,
			Name:      w.sys.Name(lp.decl.id),
			Mode:      lp.mode,
			Now:       lp.now,
			Pending:   lp.pending.Len(),
			BlockedOn: NoLP,
		}
		if d.Pending > 0 {
			d.MinPending = lp.pending.MinTS()
			d.Guarantee = lp.guaranteeMin(w.gvt)
			if lp.mode == Conservative && d.MinPending.Less(w.horizon) &&
				!lp.safeToProcess(w.gvt, w.user) {
				d.BlockedOn = w.blockingEdge(lp)
			}
		} else {
			d.MinPending = vtime.Inf
			d.Guarantee = lp.guaranteeMin(w.gvt)
		}
		w.diag.LPs = append(w.diag.LPs, d)
	}
	w.diagMu.Unlock()
	w.diagEpoch.Store(epoch)
}

// blockingEdge returns the source LP of the input edge with the weakest
// guarantee — the edge a blocked conservative LP is waiting on.
func (w *worker) blockingEdge(lp *lpRT) LPID {
	blocked, min := NoLP, vtime.Inf
	for i := range lp.edges {
		e := &lp.edges[i]
		g := w.gvt
		if e.srcCons && w.gvt.Less(e.cc) {
			g = e.cc
		}
		if g.Less(min) {
			min, blocked = g, e.src
		}
	}
	return blocked
}

// setWaiting flags the published snapshot while this worker is parked in a
// blocking Recv: the watchdog then reports it as waiting for messages (the
// normal shape of a stall) rather than unresponsive.
func (w *worker) setWaiting(v bool) {
	if w.rs == nil {
		return
	}
	w.diagMu.Lock()
	w.diag.Waiting = v
	w.diagMu.Unlock()
}

// copyDiag returns the last published snapshot (called by the watchdog).
func (w *worker) copyDiag() WorkerDiag {
	w.diagMu.Lock()
	defer w.diagMu.Unlock()
	d := w.diag
	d.LPs = append([]LPDiag(nil), w.diag.LPs...)
	return d
}

// diagEpochSeen reports the dump epoch of the last published snapshot.
func (w *worker) diagEpochSeen() uint32 { return w.diagEpoch.Load() }
