package pdes

import (
	"fmt"
	"sort"
	"testing"

	"govhdl/internal/vtime"
)

// closureRelay computes the expected record multiset of the relay ring by
// direct breadth-first expansion, with no simulation engine involved — an
// oracle for the oracle.
func closureRelay(n, seeds, x0 int) []string {
	type evt struct {
		dst int
		ts  vtime.VT
		x   int
	}
	var queue []evt
	for i := 0; i < seeds; i++ {
		// Each seeding relay holds a single-element seed list, so Init
		// schedules every seed at (1ns, LT 3).
		queue = append(queue, evt{i, vtime.VT{PT: vtime.NS, LT: 3}, x0 + i})
	}
	var recs []string
	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		if !e.ts.Less(vtime.VT{PT: relayHorizon}) {
			continue
		}
		recs = append(recs, fmt.Sprintf("%03d|%v|%v", e.dst, e.ts, e.x))
		if e.x <= 0 {
			continue
		}
		outs := []int{(e.dst + 1) % n}
		if e.x%5 == 0 {
			outs = append(outs, (e.dst+2)%n)
		}
		for i, dst := range outs {
			var ts vtime.VT
			switch (e.x + i) % 4 {
			case 0:
				ts = e.ts
			case 1:
				ts = e.ts.NextPhase()
			case 2:
				ts = vtime.VT{PT: e.ts.PT + vtime.Time(e.x%5+1)*vtime.NS}
			default:
				ts = vtime.VT{PT: e.ts.PT + vtime.NS, LT: 2}
			}
			queue = append(queue, evt{dst, ts, e.x - 1})
		}
	}
	sort.Strings(recs)
	return recs
}

func TestSequentialMatchesClosure(t *testing.T) {
	closure := closureRelay(12, 3, 40)
	got, _ := runOracle(t, 12, 3, 40)
	if len(got) != len(closure) {
		t.Fatalf("oracle %d records, closure %d", len(got), len(closure))
	}
	for i := range got {
		if got[i] != closure[i] {
			t.Fatalf("record %d: oracle %q closure %q", i, got[i], closure[i])
		}
	}
}

// TestRegressionDeferredAntiGVT reproduces a bug where an anti-message
// deferred during a GVT pause was invisible to the GVT computation; GVT then
// advanced to exactly the anti's timestamp (same-timestamp anti chains do
// not strictly increase), the receiver fossil-collected the positive at
// ts == GVT, and the anti became a permanent orphan, leaving a duplicated
// event subtree. The fix makes deferred antis constrain GVT strictly below
// their timestamp. The {12 LPs, 3 seeds, x0=20, 4 workers} configuration
// reproduced the orphan deterministically before the fix.
func TestRegressionDeferredAntiGVT(t *testing.T) {
	closure := closureRelay(12, 3, 20)
	for rep := 0; rep < 10; rep++ {
		sys, _ := buildRelayRing(12, 3, 20)
		sink := &collector{}
		res, err := Run(sys, Config{Workers: 4, Protocol: ProtoOptimistic, GVTEvery: 256}, relayHorizon, sink)
		if err != nil {
			t.Fatalf("rep %d: %v", rep, err)
		}
		if res.Metrics.OrphanAntis != 0 {
			t.Fatalf("rep %d: %d orphan anti-messages", rep, res.Metrics.OrphanAntis)
		}
		if got := sink.sorted(); len(got) != len(closure) {
			t.Fatalf("rep %d: committed %d records, want %d", rep, len(got), len(closure))
		}
		if res.Metrics.Antis != res.Metrics.Annihilated {
			t.Fatalf("rep %d: antis=%d annihilated=%d", rep, res.Metrics.Antis, res.Metrics.Annihilated)
		}
	}
}

func TestVTPred(t *testing.T) {
	cases := []struct{ in, want vtime.VT }{
		{vtime.VT{PT: 5, LT: 3}, vtime.VT{PT: 5, LT: 2}},
		{vtime.VT{PT: 5, LT: 0}, vtime.VT{PT: 4, LT: ^uint64(0)}},
		{vtime.Zero, vtime.Zero},
	}
	for _, c := range cases {
		if got := c.in.Pred(); got != c.want {
			t.Errorf("Pred(%v) = %v, want %v", c.in, got, c.want)
		}
		if c.in != vtime.Zero && !c.in.Pred().Less(c.in) {
			t.Errorf("Pred(%v) not strictly less", c.in)
		}
	}
}

// TestDebugHooks exercises the inert-by-default debug instrumentation.
func TestDebugHooks(t *testing.T) {
	debugTraceID = 1<<48 | 1
	orphanSeen := false
	debugOrphanHook = func(w *worker, lp *lpRT, anti *Event) { orphanSeen = true }
	defer func() {
		debugTraceID = 0
		debugOrphanHook = nil
	}()
	sys, _ := buildRelayRing(6, 1, 10)
	if _, err := Run(sys, Config{Workers: 2, Protocol: ProtoOptimistic, GVTEvery: 64},
		relayHorizon, nil); err != nil {
		t.Fatal(err)
	}
	if orphanSeen {
		t.Error("orphan hook fired on a healthy run")
	}
}
