package pdes

import (
	"sync"
	"sync/atomic"
)

// Object pooling for the two hot-path allocation types: Event and Msg.
//
// Ownership model (what makes recycling rollback-safe): an Event is owned by
// exactly one goroutine at a time. The sender allocates it in emit and hands
// it to the destination worker (directly for local deliveries, via the
// message fabric for remote ones). From then on the receiving worker is the
// sole owner: the event lives in an LP's pending heap, then either in the
// optimistic history (lp.processed) until fossil collection commits it, or is
// consumed immediately by a conservative execution. Nothing else retains a
// pointer: anti-message bookkeeping on the sender side records sends by value
// (antiRec), and saved states are model snapshots that never reference
// engine events. An event is recycled exactly when the receiver drops its
// last reference:
//
//	allocate (emit) -> in-flight -> pending -> processed -> fossil-collected -> free list
//	                                       \-> conservative execute ----------/
//	                                       \-> annihilated by anti-message ---/
//
// Msgs carrying events or nulls are likewise allocated by the sending worker
// and recycled by the receiving worker once decoded. Control messages (GVT
// rounds, idle notices) are low-volume and are not pooled.
//
// Each worker fronts the global sync.Pool with a private free list so the
// steady-state hot path neither allocates nor locks; the sync.Pool backs
// refill and absorbs overflow (e.g. when one worker emits far more than it
// receives).

var (
	globalEventPool = sync.Pool{New: func() any { return new(Event) }}
	globalMsgPool   = sync.Pool{New: func() any { return new(Msg) }}
)

// poolLocalCap bounds a worker-local free list; overflow spills to the
// global pool.
const poolLocalCap = 1024

// poolCheck enables use-after-free poisoning, used by the recycling property
// tests. It is read on free/alloc only, so the cost when disabled is one
// predictable branch outside the per-field reset.
var poolCheck atomic.Bool

// eventPool is a single-goroutine free list of Events.
type eventPool struct {
	free []*Event
}

func (p *eventPool) get() *Event {
	if n := len(p.free) - 1; n >= 0 {
		e := p.free[n]
		p.free[n] = nil
		p.free = p.free[:n]
		e.freed = false
		return e
	}
	e := globalEventPool.Get().(*Event)
	e.freed = false
	return e
}

// put recycles an event. The caller must hold the last reference.
func (p *eventPool) put(e *Event) {
	if poolCheck.Load() && e.freed {
		panic("pdes: event double-free: " + e.String())
	}
	*e = Event{freed: true}
	if len(p.free) < poolLocalCap {
		p.free = append(p.free, e)
		return
	}
	globalEventOverflow(e)
}

// globalEventOverflow exists so the overflow path stays out of put's inlining
// budget.
func globalEventOverflow(e *Event) { globalEventPool.Put(e) }

// checkLive panics if e was recycled while still reachable — the invariant
// the recycling property tests assert. Inert unless poolCheck is enabled.
func checkLive(e *Event, where string) {
	if poolCheck.Load() && e != nil && e.freed {
		panic("pdes: use after free (" + where + ")")
	}
}

// msgPool is a single-goroutine free list of Msgs.
type msgPool struct {
	free []*Msg
}

func (p *msgPool) get() *Msg {
	if n := len(p.free) - 1; n >= 0 {
		m := p.free[n]
		p.free[n] = nil
		p.free = p.free[:n]
		return m
	}
	return globalMsgPool.Get().(*Msg)
}

// put recycles a Msg. Only event/null messages flow through the pool; their
// payload pointers are dropped here (the Event, if any, has its own
// lifecycle).
func (p *msgPool) put(m *Msg) {
	*m = Msg{}
	if len(p.free) < poolLocalCap {
		p.free = append(p.free, m)
		return
	}
	globalMsgPool.Put(m)
}
