package pdes

import "govhdl/internal/vtime"

// eventHeap is a binary min-heap of events ordered by (TS, ID). The ID
// tiebreak makes heap order deterministic, which keeps the sequential runner
// reproducible; the parallel runners rely only on TS order.
type eventHeap struct {
	a []*Event
}

func (h *eventHeap) Len() int { return len(h.a) }

func (h *eventHeap) less(i, j int) bool {
	if h.a[i].TS != h.a[j].TS {
		return h.a[i].TS.Less(h.a[j].TS)
	}
	return h.a[i].ID < h.a[j].ID
}

// Push inserts an event.
func (h *eventHeap) Push(e *Event) {
	h.a = append(h.a, e)
	h.up(len(h.a) - 1)
}

// Peek returns the minimum event without removing it, or nil.
func (h *eventHeap) Peek() *Event {
	if len(h.a) == 0 {
		return nil
	}
	return h.a[0]
}

// Pop removes and returns the minimum event, or nil.
func (h *eventHeap) Pop() *Event {
	if len(h.a) == 0 {
		return nil
	}
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a[last] = nil
	h.a = h.a[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}

// MinTS returns the minimum timestamp, or vtime.Inf when empty.
func (h *eventHeap) MinTS() vtime.VT {
	if len(h.a) == 0 {
		return vtime.Inf
	}
	return h.a[0].TS
}

// RemoveMatching removes and returns the first event for which match returns
// true, or nil. O(n); used for anti-message annihilation, which is rare
// relative to event volume.
func (h *eventHeap) RemoveMatching(match func(*Event) bool) *Event {
	for i, e := range h.a {
		if match(e) {
			h.removeAt(i)
			return e
		}
	}
	return nil
}

func (h *eventHeap) removeAt(i int) {
	last := len(h.a) - 1
	h.a[i] = h.a[last]
	h.a[last] = nil
	h.a = h.a[:last]
	if i < last {
		h.down(i)
		h.up(i)
	}
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.a[i], h.a[parent] = h.a[parent], h.a[i]
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.a)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h.a[i], h.a[small] = h.a[small], h.a[i]
		i = small
	}
}
