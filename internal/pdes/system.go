package pdes

import (
	"fmt"

	"govhdl/internal/vtime"
)

// Model is the application side of one LP: the paper's state plus simulate()
// function. Execute must be deterministic given the LP state and the event
// (the optimistic protocol re-executes events during coast-forward), must not
// retain or mutate ev.Data, and communicates only through ctx.
type Model interface {
	// Execute processes one input event at ctx.Now() == ev.TS.
	Execute(ctx *Ctx, ev *Event)
	// SaveState returns a snapshot of the full LP state; RestoreState
	// installs one. Snapshots must be deep enough that later Executes
	// cannot mutate them.
	SaveState() any
	RestoreState(s any)
}

// InitModel is implemented by models that schedule initial events. Init runs
// before simulation starts; ctx.Now() is vtime.Zero.
type InitModel interface {
	Init(ctx *Ctx)
}

// VersionedModel lets a model avoid redundant state saving under optimistic
// simulation. StateVersion returns a counter that changes (typically
// increments) whenever the state that SaveState captures may have changed;
// it must never stay equal across a real mutation. While the version is
// unchanged the engine reuses the previous snapshot instead of calling
// SaveState again, which turns CheckpointEvery=1 from a deep copy per event
// into a deep copy per state change — valuable for models whose Executes are
// frequently no-ops (superseded transactions, stale wakes). Over-counting
// (bumping without a real change) is safe, merely less effective.
type VersionedModel interface {
	Model
	StateVersion() uint64
}

// MemSizedModel lets a model report the approximate size in bytes of one
// SaveState snapshot, improving the accuracy of Config.MemBudget accounting.
// Models without it are charged a flat default per snapshot. SnapshotBytes
// may be approximate but should be stable across the run; non-positive
// returns fall back to the default.
type MemSizedModel interface {
	SnapshotBytes() int
}

// ActiveFaninModel lets a model sharpen its null-message promise by naming
// the inputs that can currently trigger an emission. The engine's default
// promise takes the minimum guarantee over ALL input edges, which is overly
// pessimistic for models that ignore some inputs until another fires (a
// clocked register ignores its data input until a clock event): promises
// then strangle on register feedback loops. ActiveFanin returns the LPs
// whose events can cause this LP to emit; inputs outside the set may still
// deliver value updates, but emission timing is bounded by the active set
// plus the pending events. Returning nil means "all inputs". An empty
// non-nil slice means no input can ever trigger again (e.g. a final wait).
//
// Soundness: the active set may only change while processing an event, and
// any emission after such a change is at or after that event, so previously
// issued promises remain valid.
type ActiveFaninModel interface {
	ActiveFanin() []LPID
}

// Comparator orders simultaneous events for OrderUserConsistent. It reports
// whether a should be processed before b. Both have equal timestamps.
type Comparator func(a, b *Event) bool

// LPOpt configures one LP at declaration time.
type LPOpt func(*lpDecl)

// WithHint sets the mode the LP starts in under ProtoMixed and ProtoDynamic
// (the paper's heuristic: clocks and registers conservative, the rest
// optimistic).
func WithHint(m Mode) LPOpt { return func(d *lpDecl) { d.hint = m } }

// WithForcedMode pins the LP's mode; the dynamic protocol will not adapt it
// (the paper: "Heavy-state processes cannot save their state, so they must
// run conservatively").
func WithForcedMode(m Mode) LPOpt {
	return func(d *lpDecl) { d.hint = m; d.forced = true }
}

// WithLookahead declares the LP's lookahead: a lower bound on (output
// timestamp - input timestamp) guaranteed by the model. Used only when
// Config.Lookahead is true.
func WithLookahead(d vtime.Time) LPOpt { return func(l *lpDecl) { l.lookahead = d } }

// WithLTLookahead declares a logical-time lookahead: any event emitted as a
// consequence of a future input is at least n LT phases after that input
// (the VHDL kernel's phase structure guarantees 2 for signals and 1 for
// processes). Combined with WithLookahead when both are set; used only when
// Config.Lookahead is true.
func WithLTLookahead(n uint64) LPOpt { return func(l *lpDecl) { l.lookaheadLT = n } }

type lpDecl struct {
	id          LPID
	name        string
	model       Model
	hint        Mode
	forced      bool
	lookahead   vtime.Time
	lookaheadLT uint64
	out         []LPID // deduplicated fan-out (edge destinations)
	in          []LPID // deduplicated fan-in (edge sources)
}

// System is the static LP graph under simulation: the paper's
// post-elaboration model of processes and signals.
type System struct {
	lps     []*lpDecl
	nameIdx map[string]LPID
	cmp     Comparator
	frozen  bool
}

// NewSystem returns an empty system.
func NewSystem() *System {
	return &System{nameIdx: make(map[string]LPID)}
}

// AddLP declares an LP and returns its ID. Names must be unique and
// non-empty.
func (s *System) AddLP(name string, m Model, opts ...LPOpt) LPID {
	if s.frozen {
		panic("pdes: AddLP after simulation started")
	}
	if name == "" {
		panic("pdes: empty LP name")
	}
	if _, dup := s.nameIdx[name]; dup {
		panic(fmt.Sprintf("pdes: duplicate LP name %q", name))
	}
	id := LPID(len(s.lps))
	d := &lpDecl{id: id, name: name, model: m, hint: Optimistic}
	for _, o := range opts {
		o(d)
	}
	s.lps = append(s.lps, d)
	s.nameIdx[name] = id
	return id
}

// Connect declares the static edge src -> dst. Every Send at runtime must
// follow a declared edge (self-sends are implicit). Duplicate declarations
// are ignored.
func (s *System) Connect(src, dst LPID) {
	if s.frozen {
		panic("pdes: Connect after simulation started")
	}
	if src == dst {
		return
	}
	sd := s.lps[src]
	for _, d := range sd.out {
		if d == dst {
			return
		}
	}
	sd.out = append(sd.out, dst)
	s.lps[dst].in = append(s.lps[dst].in, src)
}

// SetComparator installs the user-consistent ordering comparator.
func (s *System) SetComparator(c Comparator) { s.cmp = c }

// NumLPs returns the number of declared LPs.
func (s *System) NumLPs() int { return len(s.lps) }

// Name returns the LP's declared name.
func (s *System) Name(id LPID) string { return s.lps[id].name }

// Lookup returns the LP with the given name.
func (s *System) Lookup(name string) (LPID, bool) {
	id, ok := s.nameIdx[name]
	return id, ok
}

// Model returns the LP's model (for post-simulation inspection).
func (s *System) Model(id LPID) Model { return s.lps[id].model }

// Fanout returns the declared out-edges of id. The returned slice must not
// be modified.
func (s *System) Fanout(id LPID) []LPID { return s.lps[id].out }

// Fanin returns the declared in-edges of id. The returned slice must not be
// modified.
func (s *System) Fanin(id LPID) []LPID { return s.lps[id].in }

// partition assigns LPs to workers.
func (s *System) partition(p Partition, workers int) [][]LPID {
	owned := make([][]LPID, workers)
	n := len(s.lps)
	switch p {
	case PartitionTopo:
		return topoPartition(s, workers)
	case PartitionBlock:
		per := (n + workers - 1) / workers
		for i := 0; i < n; i++ {
			w := i / per
			if w >= workers {
				w = workers - 1
			}
			owned[w] = append(owned[w], LPID(i))
		}
	default: // PartitionRoundRobin — the paper's naive partitioning
		for i := 0; i < n; i++ {
			owned[i%workers] = append(owned[i%workers], LPID(i))
		}
	}
	return owned
}

// initialMode returns the mode an LP starts in under the given protocol.
func (s *System) initialMode(id LPID, p Protocol) Mode {
	d := s.lps[id]
	switch p {
	case ProtoConservative:
		if d.forced {
			return d.hint
		}
		return Conservative
	case ProtoOptimistic:
		if d.forced {
			return d.hint
		}
		return Optimistic
	default: // mixed, dynamic
		return d.hint
	}
}

// TraceSink receives committed trace records. Commit is called once per
// record, only for records whose event can no longer be rolled back; calls
// may come from multiple workers concurrently and in non-deterministic
// order, so sinks must be safe for concurrent use and order-insensitive
// (e.g. sort by timestamp when reporting).
type TraceSink interface {
	Commit(lp LPID, ts vtime.VT, item any)
}

// Ctx is the interface through which a Model interacts with the engine
// during Init and Execute.
type Ctx struct {
	self   LPID
	now    vtime.VT
	sys    *System
	emit   func(dst LPID, ts vtime.VT, kind uint8, data any)
	record func(item any)
	// charge adjusts the engine's processed-event accounting by delta.
	// Set only by the parallel workers and used only by shard super-LPs,
	// which execute many member events per engine event: charging the
	// difference keeps event metrics, the modeled cost clock and the GVT
	// cadence in member-event units, comparable across sharded and
	// unsharded runs.
	charge func(delta int64)
}

// Record emits a trace record attributed to the executing LP at Now(). The
// record is committed to the run's TraceSink once the current event is
// beyond rollback (immediately for sequential and conservative execution, at
// fossil collection for optimistic execution).
func (c *Ctx) Record(item any) {
	if c.record != nil {
		c.record(item)
	}
}

// Self returns the executing LP's ID.
func (c *Ctx) Self() LPID { return c.self }

// Now returns the timestamp of the event being executed.
func (c *Ctx) Now() vtime.VT { return c.now }

// Name returns an LP's declared name (for diagnostics).
func (c *Ctx) Name(id LPID) string { return c.sys.Name(id) }

// Send emits an event to dst at ts. ts must be >= Now(); sends to other LPs
// must follow a declared edge; sends to self must be strictly after Now().
func (c *Ctx) Send(dst LPID, ts vtime.VT, kind uint8, data any) {
	if ts.Less(c.now) {
		panic(fmt.Sprintf("pdes: LP %s sends into its past: %v < %v", c.sys.Name(c.self), ts, c.now))
	}
	if dst == c.self && !c.now.Less(ts) {
		panic(fmt.Sprintf("pdes: LP %s self-send not strictly in the future: %v", c.sys.Name(c.self), ts))
	}
	c.emit(dst, ts, kind, data)
}

// Schedule emits an event to the executing LP itself.
func (c *Ctx) Schedule(ts vtime.VT, kind uint8, data any) {
	c.Send(c.self, ts, kind, data)
}
