package pdes

import (
	"testing"

	"govhdl/internal/stats"
	"govhdl/internal/vtime"
)

// testWorker builds a worker that owns all LPs of sys, driven synchronously
// by the test (no goroutines). Endpoint 1 is the worker; endpoint 0 (the
// controller) is only a mailbox the test can inspect.
func testWorker(sys *System, cfg Config) *worker {
	cfg.fillDefaults()
	sys.frozen = true
	eps := NewLocalFabric(2)
	owner := make([]int, sys.NumLPs())
	ownedIDs := make([]LPID, sys.NumLPs())
	modes := make([]Mode, sys.NumLPs())
	for i := range owner {
		owner[i] = 1
		ownedIDs[i] = LPID(i)
		modes[i] = sys.initialMode(LPID(i), cfg.Protocol)
	}
	w := newWorker(eps[1], sys, &cfg, vtime.VT{PT: 1 << 40}, owner, ownedIDs, modes, &stats.Metrics{}, nil)
	return w
}

// accModel accumulates payload values order-sensitively (so rollbacks that
// fail to restore state are visible) and forwards to an optional target.
type accModel struct {
	id     LPID
	target LPID
	hash   int64
	sends  int
}

func (m *accModel) Execute(ctx *Ctx, ev *Event) {
	x := ev.Data.(int64)
	m.hash = m.hash*31 + x
	if m.target != NoLP {
		m.sends++
		ctx.Send(m.target, ev.TS.NextPhase(), 1, x)
	}
}
func (m *accModel) SaveState() any     { return m.hash }
func (m *accModel) RestoreState(s any) { m.hash = s.(int64) }

func ts(pt vtime.Time) vtime.VT { return vtime.VT{PT: pt} }

// inject routes an event from src to dst as if it had arrived.
func inject(w *worker, id uint64, src, dst LPID, at vtime.VT, x int64) {
	w.localQ = append(w.localQ, &Event{
		ID: id, Src: src, Dst: dst, TS: at, Sent: at, Kind: 1, Data: x,
	})
	w.drainLocal()
}

func drainSteps(w *worker) int {
	n := 0
	for w.step() {
		n++
	}
	return n
}

func TestStragglerRollbackRestoresState(t *testing.T) {
	sys := NewSystem()
	a := &accModel{target: NoLP}
	src := sys.AddLP("src", &accModel{target: NoLP})
	id := sys.AddLP("acc", a)
	a.id = id
	sys.Connect(src, id)

	w := testWorker(sys, Config{Workers: 1, Protocol: ProtoOptimistic})
	// Process events at t=10,20,30.
	inject(w, 101, src, id, ts(10), 1)
	inject(w, 102, src, id, ts(20), 2)
	inject(w, 103, src, id, ts(30), 3)
	if got := drainSteps(w); got != 3 {
		t.Fatalf("executed %d events, want 3", got)
	}
	wantAhead := ((1*31+2)*31 + 3)
	if a.hash != int64(wantAhead) {
		t.Fatalf("hash = %d, want %d", a.hash, wantAhead)
	}

	// Straggler at t=15 must roll back 20 and 30, then reprocess in order.
	inject(w, 104, src, id, ts(15), 9)
	if w.metrics.Rollbacks.Load() != 1 {
		t.Fatalf("rollbacks = %d, want 1", w.metrics.Rollbacks.Load())
	}
	if w.metrics.RolledBack.Load() != 2 {
		t.Fatalf("rolled-back events = %d, want 2", w.metrics.RolledBack.Load())
	}
	drainSteps(w)
	want := (((1*31+9)*31+2)*31 + 3)
	if a.hash != int64(want) {
		t.Fatalf("hash after rollback = %d, want %d", a.hash, want)
	}
	lp := w.lps[id]
	if len(lp.processed) != 4 {
		t.Fatalf("history length %d, want 4", len(lp.processed))
	}
}

func TestEqualTimestampIsNotAStraggler(t *testing.T) {
	sys := NewSystem()
	a := &accModel{target: NoLP}
	src := sys.AddLP("src", &accModel{target: NoLP})
	id := sys.AddLP("acc", a)
	sys.Connect(src, id)

	w := testWorker(sys, Config{Workers: 1, Protocol: ProtoOptimistic})
	inject(w, 201, src, id, ts(10), 1)
	drainSteps(w)
	// Same timestamp: arbitrary order means no rollback.
	inject(w, 202, src, id, ts(10), 2)
	if w.metrics.Rollbacks.Load() != 0 {
		t.Fatalf("equal-timestamp arrival caused a rollback")
	}
	drainSteps(w)
	if a.hash != 1*31+2 {
		t.Fatalf("hash = %d", a.hash)
	}
}

func TestAntiMessageAnnihilatesPending(t *testing.T) {
	sys := NewSystem()
	a := &accModel{target: NoLP}
	src := sys.AddLP("src", &accModel{target: NoLP})
	id := sys.AddLP("acc", a)
	sys.Connect(src, id)

	w := testWorker(sys, Config{Workers: 1, Protocol: ProtoOptimistic})
	inject(w, 301, src, id, ts(10), 5)
	// Anti arrives before the event is processed: annihilate in pending.
	w.localQ = append(w.localQ, &Event{ID: 301, Src: src, Dst: id, TS: ts(10), Neg: true})
	w.drainLocal()
	if got := drainSteps(w); got != 0 {
		t.Fatalf("executed %d events after annihilation", got)
	}
	if a.hash != 0 {
		t.Fatalf("annihilated event still executed: hash=%d", a.hash)
	}
	if w.metrics.Annihilated.Load() != 1 {
		t.Fatalf("annihilated = %d", w.metrics.Annihilated.Load())
	}
}

func TestAntiMessageRollsBackProcessed(t *testing.T) {
	sys := NewSystem()
	a := &accModel{target: NoLP}
	src := sys.AddLP("src", &accModel{target: NoLP})
	id := sys.AddLP("acc", a)
	sys.Connect(src, id)

	w := testWorker(sys, Config{Workers: 1, Protocol: ProtoOptimistic})
	inject(w, 401, src, id, ts(10), 5)
	inject(w, 402, src, id, ts(20), 7)
	drainSteps(w)
	// Cancel the first event after both were processed.
	w.localQ = append(w.localQ, &Event{ID: 401, Src: src, Dst: id, TS: ts(10), Neg: true})
	w.drainLocal()
	drainSteps(w)
	if a.hash != 7 {
		t.Fatalf("hash = %d, want 7 (only the surviving event)", a.hash)
	}
	if w.metrics.Rollbacks.Load() != 1 || w.metrics.Annihilated.Load() != 1 {
		t.Fatalf("rollbacks=%d annihilated=%d", w.metrics.Rollbacks.Load(), w.metrics.Annihilated.Load())
	}
}

func TestRollbackCancelsDownstreamSends(t *testing.T) {
	sys := NewSystem()
	up := &accModel{}
	down := &accModel{target: NoLP}
	src := sys.AddLP("src", &accModel{target: NoLP})
	upID := sys.AddLP("up", up)
	downID := sys.AddLP("down", down)
	up.target = downID
	sys.Connect(src, upID)
	sys.Connect(upID, downID)

	w := testWorker(sys, Config{Workers: 1, Protocol: ProtoOptimistic})
	inject(w, 501, src, upID, ts(10), 1)
	inject(w, 502, src, upID, ts(20), 2)
	drainSteps(w) // up processes 10 and 20, down processes the forwards
	if down.hash != 1*31+2 {
		t.Fatalf("down hash = %d", down.hash)
	}
	// Straggler at 15: up's send for t=20 must be cancelled at down and
	// re-sent; down ends with 1, 9, 2.
	inject(w, 503, src, upID, ts(15), 9)
	drainSteps(w)
	want := int64((1*31+9)*31 + 2)
	if down.hash != want {
		t.Fatalf("down hash after cascade = %d, want %d", down.hash, want)
	}
	if w.metrics.Antis.Load() == 0 {
		t.Fatal("no anti-messages were sent")
	}
}

func TestCheckpointCoastForward(t *testing.T) {
	sys := NewSystem()
	a := &accModel{target: NoLP}
	src := sys.AddLP("src", &accModel{target: NoLP})
	id := sys.AddLP("acc", a)
	sys.Connect(src, id)

	w := testWorker(sys, Config{Workers: 1, Protocol: ProtoOptimistic, CheckpointEvery: 3})
	for i := 0; i < 6; i++ {
		inject(w, uint64(600+i), src, id, ts(vtime.Time(10*(i+1))), int64(i+1))
	}
	drainSteps(w)
	if saves := w.metrics.StateSaves.Load(); saves != 2 {
		t.Fatalf("state saves = %d, want 2 (every 3rd)", saves)
	}
	// Straggler at t=45 (between events 4 and 5): snapshot is at event 4
	// (index 3); coast-forward replays nothing... index math: first rec
	// with ts > 45 is index 4 (t=50); nearest snapshot at index 3 (t=40).
	inject(w, 699, src, id, ts(45), 100)
	if cf := w.metrics.CoastForward.Load(); cf != 1 {
		t.Fatalf("coast-forward = %d, want 1 (replay of the t=40 event)", cf)
	}
	drainSteps(w)
	want := int64(1)
	for _, x := range []int64{2, 3, 4, 100, 5, 6} {
		want = want*31 + x
	}
	if a.hash != want {
		t.Fatalf("hash = %d, want %d", a.hash, want)
	}
}

func TestConservativeStragglerIsFatal(t *testing.T) {
	sys := NewSystem()
	a := &accModel{target: NoLP}
	src := sys.AddLP("src", &accModel{target: NoLP})
	id := sys.AddLP("acc", a)
	sys.Connect(src, id)

	w := testWorker(sys, Config{Workers: 1, Protocol: ProtoConservative})
	w.gvt = ts(100) // make everything safe
	inject(w, 701, src, id, ts(10), 1)
	inject(w, 702, src, id, ts(20), 2)
	drainSteps(w)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("conservative straggler did not fail")
		}
		if _, ok := r.(fatalPanic); !ok {
			panic(r)
		}
	}()
	inject(w, 703, src, id, ts(15), 3)
}

func TestConservativeBlocksUntilSafe(t *testing.T) {
	sys := NewSystem()
	a := &accModel{target: NoLP}
	src := sys.AddLP("src", &accModel{target: NoLP})
	id := sys.AddLP("acc", a)
	sys.Connect(src, id)

	w := testWorker(sys, Config{Workers: 1, Protocol: ProtoConservative})
	// The event was SENT at t=5 with a delay (receive t=10): the channel
	// clock only reaches 5, so src might still send something in (5, 10)
	// and the event is not safe until GVT covers it.
	w.localQ = append(w.localQ, &Event{
		ID: 801, Src: src, Dst: id, TS: ts(10), Sent: ts(5), Kind: 1, Data: int64(1),
	})
	w.drainLocal()
	if drainSteps(w) != 0 {
		t.Fatal("conservative LP processed an unsafe event")
	}
	if w.metrics.Blocked.Load() == 0 {
		t.Fatal("blocked counter did not move")
	}
	// GVT reaching the event makes it safe.
	w.gvt = ts(10)
	for _, lp := range w.owned {
		w.requeue(lp)
	}
	if drainSteps(w) != 1 {
		t.Fatal("event at GVT was not processed")
	}
	if a.hash != 1 {
		t.Fatalf("hash = %d", a.hash)
	}
}

func TestFossilCollectionFreesHistory(t *testing.T) {
	sys := NewSystem()
	a := &accModel{target: NoLP}
	src := sys.AddLP("src", &accModel{target: NoLP})
	id := sys.AddLP("acc", a)
	sys.Connect(src, id)

	w := testWorker(sys, Config{Workers: 1, Protocol: ProtoOptimistic})
	for i := 0; i < 5; i++ {
		inject(w, uint64(900+i), src, id, ts(vtime.Time(10*(i+1))), int64(i+1))
	}
	drainSteps(w)
	lp := w.lps[id]
	if len(lp.processed) != 5 {
		t.Fatalf("history = %d", len(lp.processed))
	}
	w.gvt = ts(35)
	w.fossil(lp, false)
	// Records at 10,20,30 are below GVT; the kept window must start at a
	// snapshot and cover everything that could still roll back.
	if len(lp.processed) >= 5 || len(lp.processed) < 2 {
		t.Fatalf("after fossil: history = %d", len(lp.processed))
	}
	if lp.processed[0].state == nil {
		t.Fatal("kept window does not start at a snapshot")
	}
	if w.metrics.Fossils.Load() == 0 {
		t.Fatal("nothing was fossil-collected")
	}
	// A straggler at GVT must still be recoverable.
	inject(w, 999, src, id, ts(35), 50)
	drainSteps(w)
	want := int64(1)
	for _, x := range []int64{2, 3, 50, 4, 5} {
		want = want*31 + x
	}
	if a.hash != want {
		t.Fatalf("hash = %d, want %d", a.hash, want)
	}
}
