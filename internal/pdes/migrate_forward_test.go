package pdes

import (
	"testing"

	"govhdl/internal/stats"
	"govhdl/internal/vtime"
)

// lateForwardWorker builds a worker (endpoint 1 of a 3-endpoint fabric) that
// owns only lp0; lp1's owner-table entry points at endpoint 2, as if lp1
// migrated away at GVT round 1.
func lateForwardWorker(t *testing.T) (w *worker, eps []Endpoint, lp0, lp1 LPID) {
	t.Helper()
	sys := NewSystem()
	a := &accModel{target: NoLP}
	b := &accModel{target: NoLP}
	lp0 = sys.AddLP("a", a)
	lp1 = sys.AddLP("b", b)
	a.id, b.id = lp0, lp1
	sys.Connect(lp0, lp1)
	sys.frozen = true

	cfg := Config{Workers: 2, Protocol: ProtoConservative}
	cfg.fillDefaults()
	eps = NewLocalFabric(3)
	owner := []int{1, 2}
	modes := []Mode{Conservative, Conservative}
	w = newWorker(eps[1], sys, &cfg, vtime.VT{PT: 1 << 40}, owner, []LPID{lp0}, modes, &stats.Metrics{}, nil)
	w.migRound = 1
	return w, eps, lp0, lp1
}

// A straggler event arriving for a migrated-away LP *after* the nominal
// forwarding window has closed must still be forwarded to the owner the
// routing table names — deterministically, counted, never dropped and never
// fatal. This is the handoff backstop's edge: delayed wires or back-to-back
// migration cuts can legitimately push an in-flight message past the window.
func TestLateStragglerForwardedAfterWindowCloses(t *testing.T) {
	w, eps, lp0, lp1 := lateForwardWorker(t)
	w.roundNo = w.migRound + migForwardWindow + 7 // far past the window

	e := &Event{ID: 900, Src: lp0, Dst: lp1, TS: ts(10), Sent: ts(10), Kind: 1, Data: int64(5)}
	w.routeEvent(e) // must not w.fatal
	w.flushSends()

	m, ok := eps[2].TryRecv()
	if !ok {
		t.Fatalf("late straggler was not forwarded to the new owner")
	}
	if m.Kind != msgEvent || m.Ev == nil || m.Ev.Dst != lp1 || !m.Ev.TS.Equal(ts(10)) {
		t.Fatalf("forwarded message %+v is not the straggler", m)
	}
	if got := w.metrics.ForwardedMsgs.Load(); got != 1 {
		t.Fatalf("ForwardedMsgs = %d, want 1", got)
	}
	if got := w.metrics.LateForwards.Load(); got != 1 {
		t.Fatalf("LateForwards = %d, want 1", got)
	}

	// Same edge for a null message.
	w.routeNull(lp0, lp1, ts(12))
	w.flushSends()
	m, ok = eps[2].TryRecv()
	if !ok || m.Kind != msgNull || m.Dst != lp1 {
		t.Fatalf("late null was not forwarded: %+v (ok=%v)", m, ok)
	}
	if got := w.metrics.LateForwards.Load(); got != 2 {
		t.Fatalf("LateForwards = %d, want 2", got)
	}
}

// Inside the window the forward happens without the late counter.
func TestWindowForwardNotCountedLate(t *testing.T) {
	w, eps, lp0, lp1 := lateForwardWorker(t)
	w.roundNo = w.migRound + 1

	e := &Event{ID: 901, Src: lp0, Dst: lp1, TS: ts(10), Sent: ts(10), Kind: 1, Data: int64(5)}
	w.routeEvent(e)
	w.flushSends()
	if _, ok := eps[2].TryRecv(); !ok {
		t.Fatalf("in-window straggler was not forwarded")
	}
	if got := w.metrics.ForwardedMsgs.Load(); got != 1 {
		t.Fatalf("ForwardedMsgs = %d, want 1", got)
	}
	if got := w.metrics.LateForwards.Load(); got != 0 {
		t.Fatalf("LateForwards = %d, want 0", got)
	}
}

// With no migration in the run's history a misrouted event is still a fatal
// protocol violation: the forwarding backstop must not mask corruption.
func TestMisrouteWithoutMigrationStaysFatal(t *testing.T) {
	w, _, lp0, lp1 := lateForwardWorker(t)
	w.migRound = 0

	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("misroute without migration did not panic")
		}
		if _, ok := r.(fatalPanic); !ok {
			t.Fatalf("panic %v is not the engine's fatal path", r)
		}
	}()
	e := &Event{ID: 902, Src: lp0, Dst: lp1, TS: ts(10), Sent: ts(10), Kind: 1, Data: int64(5)}
	w.routeEvent(e)
}

// End-to-end: a run under a migration storm (a planner that shuttles an LP
// between workers at every eligible cut) must keep the committed trace
// byte-identical to the sequential oracle, however the handoff timing lands.
func TestLateForwardTraceIdentity(t *testing.T) {
	const nLPs, seed = 8, 5
	until := vtime.Time(4000)

	refSink := &memSink{}
	if _, err := RunSequential(buildRing(nLPs, seed, ProtoOptimistic), until, refSink); err != nil {
		t.Fatal(err)
	}
	want := sortedLines(refSink.snapshot())

	// Shuttle-storm planner: deterministic, derived only from the round
	// number and the snapshotted owner table.
	planner := func(st *MigrationState) []Move {
		lp := LPID(int(st.Round) % nLPs)
		to := 1 + int(st.Round)%st.Workers
		if st.Owner[lp] == to {
			to = 1 + to%st.Workers
		}
		if st.Owner[lp] == to {
			return nil
		}
		return []Move{{LP: lp, To: to}}
	}

	sink := &memSink{}
	res, err := Run(buildRing(nLPs, seed, ProtoOptimistic), Config{
		Workers: 2, Protocol: ProtoOptimistic, GVTEvery: 16,
		ThrottleWindow: 200, Migrate: planner,
	}, until, sink)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Migrations == 0 {
		t.Fatalf("storm run migrated nothing; the test exercised no handoff")
	}
	diffLines(t, want, sortedLines(sink.snapshot()))
}
