package pdes

import (
	"reflect"
	"testing"

	"govhdl/internal/vtime"
)

// shuttlePlanner bounces one LP between two workers every `every` committed
// rounds — the densest exercise of the migration cut protocol: donated
// pending events, ownership flips, forwarding, and repeated re-installs of
// the same LP.
func shuttlePlanner(lp LPID, a, b int, every uint64) MigrationPlanner {
	return func(st *MigrationState) []Move {
		if every == 0 || st.Round == 0 || st.Round%every != 0 {
			return nil
		}
		if st.Owner[lp] == a {
			return []Move{{LP: lp, To: b}}
		}
		return []Move{{LP: lp, To: a}}
	}
}

func testMigrationTraceIdentity(t *testing.T, protocol Protocol, workers int) {
	const (
		nLPs  = 12
		seed  = 5
		until = vtime.Time(2000)
	)

	oracle := &memSink{}
	if _, err := RunSequential(buildRing(nLPs, seed, protocol), until, oracle); err != nil {
		t.Fatalf("sequential oracle: %v", err)
	}
	want := sortedLines(oracle.snapshot())
	if len(want) == 0 {
		t.Fatal("oracle produced no records")
	}

	sink := &memSink{}
	cfg := Config{
		Workers:        workers,
		Protocol:       protocol,
		GVTEvery:       64,
		ThrottleWindow: 100, // span many GVT rounds, so migration cuts really interleave
		Migrate:        shuttlePlanner(3, 1, workers, 2),
	}
	res, err := Run(buildRing(nLPs, seed, protocol), cfg, until, sink)
	if err != nil {
		t.Fatalf("migrating run: %v", err)
	}
	if res.Metrics.Migrations == 0 {
		t.Fatal("no migrations happened; the test exercised nothing")
	}
	if res.Metrics.ViewChanges == 0 {
		t.Fatal("migration cuts must count as view changes")
	}
	if res.GVT.Less(vtime.VT{PT: until}) {
		t.Fatalf("migrating run stopped at GVT %v, want >= %v", res.GVT, until)
	}
	diffLines(t, want, sortedLines(sink.snapshot()))
}

func TestMigrationTraceIdentityOptimistic(t *testing.T) {
	testMigrationTraceIdentity(t, ProtoOptimistic, 4)
}

func TestMigrationTraceIdentityMixed(t *testing.T) {
	testMigrationTraceIdentity(t, ProtoMixed, 3)
}

func TestMigrationTraceIdentityDynamic(t *testing.T) {
	testMigrationTraceIdentity(t, ProtoDynamic, 4)
}

// TestMigrationThenCheckpointRestore proves the two cut protocols compose: a
// run that migrates AND checkpoints produces restorable checkpoints whose
// worker grouping reflects migrated ownership — and a restore from one
// reproduces the oracle trace.
func TestMigrationThenCheckpointRestore(t *testing.T) {
	const (
		nLPs  = 12
		seed  = 5
		until = vtime.Time(2000)
	)
	protocol := ProtoOptimistic

	oracle := &memSink{}
	if _, err := RunSequential(buildRing(nLPs, seed, protocol), until, oracle); err != nil {
		t.Fatalf("sequential oracle: %v", err)
	}
	want := sortedLines(oracle.snapshot())

	var cks []*Checkpoint
	sink := &memSink{}
	cfg := Config{
		Workers:          4,
		Protocol:         protocol,
		GVTEvery:         64,
		ThrottleWindow:   100,
		Migrate:          shuttlePlanner(3, 1, 4, 3),
		CheckpointRounds: 2,
		CheckpointSink:   func(ck *Checkpoint) error { cks = append(cks, ck); return nil },
	}
	res, err := Run(buildRing(nLPs, seed, protocol), cfg, until, sink)
	if err != nil {
		t.Fatalf("migrating+checkpointing run: %v", err)
	}
	if res.Metrics.Migrations == 0 || len(cks) == 0 {
		t.Fatalf("need both migrations (%d) and checkpoints (%d)", res.Metrics.Migrations, len(cks))
	}
	diffLines(t, want, sortedLines(sink.snapshot()))

	pick := len(cks) / 2
	ck := reencode(t, cks[pick])
	if !ck.GVT.Less(vtime.VT{PT: until}) {
		t.Fatalf("picked checkpoint GVT %v is already at the horizon", ck.GVT)
	}
	sink2 := &memSink{}
	cfg2 := Config{
		Workers:          4,
		Protocol:         protocol,
		GVTEvery:         64,
		ThrottleWindow:   100,
		Restore:          ck,
		CheckpointRounds: 2,
		CheckpointSink:   func(*Checkpoint) error { return nil },
	}
	if _, err := Run(buildRing(nLPs, seed, protocol), cfg2, until, sink2); err != nil {
		t.Fatalf("restored run: %v", err)
	}
	diffLines(t, want, sortedLines(sink2.snapshot()))
}

// TestRemapCheckpointRestore is the survivors-recovery path: a checkpoint cut
// with 4 workers, remapped to 2, restored on a 2-worker run — the dead nodes'
// LPs land on the survivors and the trace still matches the oracle.
func TestRemapCheckpointRestore(t *testing.T) {
	const (
		nLPs  = 12
		seed  = 5
		until = vtime.Time(2000)
	)
	protocol := ProtoMixed

	oracle := &memSink{}
	if _, err := RunSequential(buildRing(nLPs, seed, protocol), until, oracle); err != nil {
		t.Fatalf("sequential oracle: %v", err)
	}
	want := sortedLines(oracle.snapshot())

	var cks []*Checkpoint
	cfg := Config{
		Workers:          4,
		Protocol:         protocol,
		GVTEvery:         64,
		ThrottleWindow:   100,
		CheckpointRounds: 1,
		CheckpointSink:   func(ck *Checkpoint) error { cks = append(cks, ck); return nil },
	}
	if _, err := Run(buildRing(nLPs, seed, protocol), cfg, until, &memSink{}); err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	if len(cks) == 0 {
		t.Fatal("no checkpoints were taken")
	}
	ck := reencode(t, cks[len(cks)/2])

	sys := buildRing(nLPs, seed, protocol)
	same, err := RemapCheckpoint(ck, sys, 4, PartitionRoundRobin)
	if err != nil {
		t.Fatalf("identity remap: %v", err)
	}
	if same != ck {
		t.Fatal("remap to the original worker count must return the checkpoint unchanged")
	}

	remapped, err := RemapCheckpoint(ck, sys, 2, PartitionRoundRobin)
	if err != nil {
		t.Fatalf("remap 4 -> 2: %v", err)
	}
	if remapped.Workers != 2 || len(remapped.Blobs) != 3 {
		t.Fatalf("remapped shape: workers=%d blobs=%d", remapped.Workers, len(remapped.Blobs))
	}
	if remapped.GVT != ck.GVT || remapped.NumLPs != ck.NumLPs {
		t.Fatal("remap must preserve the cut's GVT and LP count")
	}

	sink := &memSink{}
	cfg2 := Config{
		Workers:          2,
		Protocol:         protocol,
		GVTEvery:         64,
		ThrottleWindow:   100,
		Restore:          remapped,
		CheckpointRounds: 2,
		CheckpointSink:   func(*Checkpoint) error { return nil },
	}
	res, err := Run(buildRing(nLPs, seed, protocol), cfg2, until, sink)
	if err != nil {
		t.Fatalf("restored 2-worker run: %v", err)
	}
	if res.GVT.Less(vtime.VT{PT: until}) {
		t.Fatalf("restored run stopped at GVT %v", res.GVT)
	}
	diffLines(t, want, sortedLines(sink.snapshot()))
}

func TestRemapCheckpointRejectsMismatch(t *testing.T) {
	sys := buildRing(6, 3, ProtoOptimistic)
	ck := &Checkpoint{Format: checkpointFormat, Workers: 2, NumLPs: 7}
	if _, err := RemapCheckpoint(ck, sys, 1, PartitionRoundRobin); err == nil {
		t.Fatal("LP-count mismatch not rejected")
	}
	ck = &Checkpoint{Format: checkpointFormat + 1, Workers: 2, NumLPs: 6}
	if _, err := RemapCheckpoint(ck, sys, 1, PartitionRoundRobin); err == nil {
		t.Fatal("format mismatch not rejected")
	}
	ck = &Checkpoint{Format: checkpointFormat, Workers: 2, NumLPs: 6}
	if _, err := RemapCheckpoint(ck, sys, 0, PartitionRoundRobin); err == nil {
		t.Fatal("zero workers not rejected")
	}
}

// TestBalancePlannerDeterminism: the rebalance policy is a pure function of
// the MigrationState plus its own history — identical state sequences yield
// identical plans (the distributed-determinism requirement), the plan always
// moves from the most- to the least-loaded worker, and a cooldown separates
// successive plans.
func TestBalancePlannerDeterminism(t *testing.T) {
	mkState := func(round uint64) *MigrationState {
		return &MigrationState{
			Round:   round,
			Workers: 3,
			Owner:   []int{1, 1, 1, 1, 2, 2, 3, 3},
			Loads:   []uint64{4000, 3000, 2000, 1500, 100, 50, 200, 100},
		}
	}
	bc := BalanceConfig{Ratio: 2, Cooldown: 4, MaxMoves: 2, MinEvents: 64}

	planA := NewBalancePlanner(bc)(mkState(8))
	planB := NewBalancePlanner(bc)(mkState(8))
	if !reflect.DeepEqual(planA, planB) {
		t.Fatalf("same state, different plans: %v vs %v", planA, planB)
	}
	if len(planA) == 0 {
		t.Fatal("a 10500-vs-150 imbalance must produce a plan")
	}
	for _, mv := range planA {
		if mv.To != 2 {
			t.Fatalf("moves must target the least-loaded worker 2, got %v", planA)
		}
		if w := mkState(0).Owner[mv.LP]; w != 1 {
			t.Fatalf("moves must come from the most-loaded worker 1, got LP %d owned by %d", mv.LP, w)
		}
	}

	// Cooldown: the same planner instance refuses a new plan until Cooldown
	// rounds have passed since the last one.
	p := NewBalancePlanner(bc)
	first := p(mkState(8))
	if len(first) == 0 {
		t.Fatal("first plan empty")
	}
	if again := p(mkState(10)); len(again) != 0 {
		t.Fatalf("plan inside the cooldown window: %v", again)
	}
	later := p(mkState(12))
	if len(later) == 0 {
		t.Fatal("cooldown over, plan expected")
	}

	// Balanced or tiny loads: no plan.
	quiet := &MigrationState{Round: 8, Workers: 2,
		Owner: []int{1, 2}, Loads: []uint64{10, 5}}
	if mv := NewBalancePlanner(bc)(quiet); len(mv) != 0 {
		t.Fatalf("tiny workload must not migrate: %v", mv)
	}
	balanced := &MigrationState{Round: 8, Workers: 2,
		Owner: []int{1, 2}, Loads: []uint64{1000, 900}}
	if mv := NewBalancePlanner(bc)(balanced); len(mv) != 0 {
		t.Fatalf("balanced workload must not migrate: %v", mv)
	}

	// A worker is never emptied: one LP on the hot worker stays.
	lone := &MigrationState{Round: 8, Workers: 2,
		Owner: []int{1, 2}, Loads: []uint64{100000, 1}}
	if mv := NewBalancePlanner(bc)(lone); len(mv) != 0 {
		t.Fatalf("the donor's last LP must not move: %v", mv)
	}
}

// TestMigrationPlannerValidation: an out-of-range plan aborts the run loudly
// instead of corrupting routing tables.
func TestMigrationPlannerValidation(t *testing.T) {
	cfg := Config{
		Workers:        2,
		Protocol:       ProtoOptimistic,
		GVTEvery:       32,
		ThrottleWindow: 100,
		Migrate: func(st *MigrationState) []Move {
			return []Move{{LP: 0, To: 99}}
		},
	}
	_, err := Run(buildRing(6, 3, ProtoOptimistic), cfg, 2000, &memSink{})
	if err == nil {
		t.Fatal("out-of-range migration plan not rejected")
	}
}
