// Package pdes implements the parallel discrete-event simulation engine of
// Lungeanu & Shi (ICCAD 1999 / DATE 2000): a graph of logical processes (LPs)
// exchanging timestamped events over a static topology, synchronized by a
// lookahead-free protocol in which each LP runs in conservative or optimistic
// (Time Warp) mode and may self-adapt between the two.
//
// # Synchronization
//
// Correctness requires only the local causality constraint: each LP processes
// its input events in nondecreasing timestamp order, with events of equal
// timestamp processed in arbitrary order (OrderArbitrary) unless the
// application requests user-consistent ordering (OrderUserConsistent).
//
// A conservative LP may process an event e when no event with a strictly
// smaller timestamp can still arrive: either e.TS <= GVT (the global minimum
// of unprocessed and in-transit event timestamps — always safe, which is what
// makes the protocol lookahead-free and deadlock-free), or e.TS is covered by
// the per-edge channel clocks of conservative upstream LPs (optionally raised
// ahead of GVT by null messages when lookahead is enabled).
//
// An optimistic LP processes any pending event, saving state so it can roll
// back when a straggler or anti-message arrives. In the arbitrary-order model
// an event equal to the LP's local time is NOT a straggler; only strictly
// smaller timestamps roll back. Consequently every anti-message has a
// timestamp strictly greater than the GVT current at the rollback, which is
// what lets conservative LPs safely process events at or below GVT even when
// they come from optimistic neighbours — the paper's mixed-mode requirement.
//
// GVT is computed by a stop-the-world round (pause, flush, drain, minimum)
// coordinated by worker 0, matching the paper's use of global synchronization
// for fossil collection, deadlock breaking and mode adaptation.
package pdes

import (
	"fmt"
	"time"

	"govhdl/internal/stats"
	"govhdl/internal/vtime"
)

// LPID identifies a logical process within a System.
type LPID int32

// NoLP is the zero value for "no LP" (internal events use the LP itself).
const NoLP LPID = -1

// Mode is the synchronization mode of one LP.
type Mode uint8

const (
	// Conservative LPs block until an event is safe and never roll back.
	Conservative Mode = iota
	// Optimistic LPs process events speculatively and roll back on
	// stragglers (Time Warp).
	Optimistic
)

func (m Mode) String() string {
	if m == Conservative {
		return "conservative"
	}
	return "optimistic"
}

// Protocol selects the initial mode assignment of a run.
type Protocol uint8

const (
	// ProtoSequential runs the whole system under a single event heap with
	// no synchronization machinery: the speedup baseline and oracle.
	ProtoSequential Protocol = iota
	// ProtoConservative starts every LP conservative.
	ProtoConservative
	// ProtoOptimistic starts every LP optimistic.
	ProtoOptimistic
	// ProtoMixed uses each LP's Hint (the paper's heuristic: synchronous
	// components conservative, asynchronous ones optimistic).
	ProtoMixed
	// ProtoDynamic starts from the same hints but lets LPs self-adapt at
	// GVT rounds based on observed rollback and blocking behaviour.
	ProtoDynamic
)

func (p Protocol) String() string {
	switch p {
	case ProtoSequential:
		return "seq"
	case ProtoConservative:
		return "cons"
	case ProtoOptimistic:
		return "opt"
	case ProtoMixed:
		return "mixed"
	case ProtoDynamic:
		return "dynamic"
	}
	return "?"
}

// Ordering selects how simultaneous (equal-timestamp) events are handled.
type Ordering uint8

const (
	// OrderArbitrary processes equal-timestamp events in arbitrary order;
	// the application must be correct under any interleaving (the VHDL
	// kernel achieves this with the (pt, lt) virtual time).
	OrderArbitrary Ordering = iota
	// OrderUserConsistent collects all equal-timestamp events destined to
	// one LP and hands them to the application comparator before
	// processing. Conservative LPs then need strictly-greater channel
	// guarantees (i.e. positive lookahead) and optimistic LPs roll back on
	// equal timestamps, reproducing the overheads of the paper's Fig. 4.
	OrderUserConsistent
)

func (o Ordering) String() string {
	if o == OrderArbitrary {
		return "arbitrary"
	}
	return "user-consistent"
}

// Partition selects how LPs are assigned to workers.
type Partition uint8

const (
	// PartitionRoundRobin deals LPs to workers by index modulo P — the
	// "naive partitioning (equal number of LPs to each processor)" used in
	// the paper, which causes the occasional dips in its speedup curves.
	PartitionRoundRobin Partition = iota
	// PartitionBlock assigns contiguous index ranges, which for generated
	// circuits keeps neighbourhoods together (ablation).
	PartitionBlock
	// PartitionTopo grows balanced regions over the wiring graph (greedy
	// BFS edge-cut), co-locating connected signal+process neighbourhoods so
	// the cross-partition cut — and hence protocol traffic — is minimized.
	// Used both for LP-to-worker assignment and for shard membership.
	PartitionTopo
)

// Config parameterizes a parallel run.
type Config struct {
	Workers   int       // number of virtual processors (>= 1)
	Protocol  Protocol  // initial mode assignment
	Ordering  Ordering  // simultaneous-event model
	Partition Partition // LP-to-worker assignment

	// Lookahead enables null messages: a conservative LP that has processed
	// up to t promises t+Lookahead(lp) on its output edges. With Lookahead
	// false the protocol is lookahead-free and progress beyond channel
	// clocks relies on GVT. Per-LP lookahead values come from the System.
	Lookahead bool

	// CheckpointEvery is the state-saving interval of optimistic LPs:
	// 1 saves before every event (default), k>1 saves every k-th event and
	// coast-forwards through the gap on rollback.
	CheckpointEvery int

	// GVTEvery triggers a GVT round after this many events have been
	// processed system-wide since the last round (default 4096). Rounds
	// are also triggered whenever all workers go idle.
	GVTEvery int

	// GVTAdapt lets the controller retune the GVT cadence each round from
	// the observed cut traffic: when few remote messages crossed workers
	// relative to events processed (a well-partitioned or sharded run), the
	// interval doubles; when the cut is dense it halves. The interval stays
	// within [GVTEvery, GVTEveryMax]. Synchronization frequency then scales
	// with cut traffic, not event count; idle-triggered rounds are
	// unaffected, so progress and termination do not depend on the cadence.
	GVTAdapt bool
	// GVTEveryMax bounds the adaptive interval (default 16*GVTEvery).
	GVTEveryMax int

	// ThrottleWindow, when positive, prevents optimistic LPs from running
	// more than this much physical time ahead of GVT (memory bound).
	ThrottleWindow vtime.Time

	// Costs is the virtual-processor cost model; zero value means
	// stats.Default().
	Costs stats.CostModel

	// AdaptRollbackHi: an optimistic LP whose rolled-back/processed ratio
	// over the last adaptation window exceeds this switches to
	// conservative (dynamic protocol only). Default 0.5.
	AdaptRollbackHi float64
	// AdaptBlockedHi: a conservative LP that was blocked (had pending but
	// no safe events) at more than this fraction of scheduling
	// opportunities switches to optimistic. Default 0.7.
	AdaptBlockedHi float64
	// AdaptCooldown is the number of GVT rounds an adapted LP holds its new
	// mode before it may be re-proposed for switching (dynamic protocol
	// only; default 2, negative disables). Without a cooldown an LP whose
	// two windows straddle both thresholds thrashes between modes, paying a
	// rollback-commit cycle per switch — the source of the dynamic-mode
	// regression on filter pipelines.
	AdaptCooldown int

	// StallTimeout, when positive, arms the GVT stall watchdog: if the
	// committed GVT does not advance for this long of wall-clock time, the
	// watchdog collects a diagnostic StallReport (per-LP mode, local clock,
	// blocked-on edge, mailbox depth), hands it to StallDump, and applies
	// StallPolicy. The timeout must comfortably exceed the expected GVT round
	// cadence; wall-clock supervision never influences the committed trace,
	// only whether (and how) a wedged run is unwound.
	StallTimeout time.Duration
	// StallPolicy selects what happens when GVT stalls — both when the
	// watchdog's wall-clock window expires and when the GVT controller's
	// deadlock detector trips (all workers idle, two rounds, no progress).
	StallPolicy StallPolicy
	// StallDump receives the diagnostic report when the watchdog fires.
	// Nil discards the report (the run still fails or rescues per policy).
	StallDump func(*StallReport)

	// MemBudget, when positive, bounds the approximate bytes of optimistic
	// runtime memory — retained history events, saved state snapshots and
	// anti-message send records — tracked across all workers of this process.
	// Over budget, speculation beyond GVT is paused (backpressure) and GVT
	// rounds roll back the furthest-ahead optimistic LPs until the tracked
	// total fits again (cancelback). Events at or below GVT always execute,
	// so a budgeted run still terminates; the committed trace is unchanged.
	MemBudget int64

	// Cancel, when non-nil, is an external abort hook: closing the channel
	// unwinds the run promptly with a Canceled SimError (see IsCanceled).
	// Parallel runs poison every locally hosted endpoint, exactly like the
	// stall watchdog; sequential runs observe the channel between events.
	// Cancellation never retries (it is neither Transport nor Model) and,
	// like all supervision, never influences the committed prefix of the
	// trace — a canceled run's committed records are a prefix of the full
	// run's.
	Cancel <-chan struct{}

	// OnGVT, when non-nil, observes every committed GVT value, in
	// nondecreasing order, from the controller goroutine (processes hosting
	// endpoint 0 only). By the time OnGVT(g) is called, every worker has
	// finished fossil-collecting the previous committed GVT g', so every
	// trace record with timestamp strictly below g' has been committed —
	// which is what lets a recipient stream the trace incrementally and
	// deterministically (see trace.Cursor). The callback runs on the
	// controller's critical path: keep it fast and never block on the
	// simulation itself.
	OnGVT func(gvt vtime.VT)

	// CheckpointRounds, when positive, turns every Nth committed GVT round
	// into a run-level checkpoint cut: workers commit everything at or below
	// the new GVT, drain in-flight messages, and serialize their state so
	// the controller can assemble a Checkpoint a later run restores from.
	// In distributed mode every process must use the same value (workers
	// keep per-LP committed-event logs only when it is positive).
	CheckpointRounds int
	// CheckpointSink receives each assembled Checkpoint on the process
	// hosting endpoint 0. A sink error aborts the run. Required on the
	// controller process when CheckpointRounds > 0.
	CheckpointSink func(*Checkpoint) error
	// Restore, when non-nil, starts the run from a previously assembled
	// Checkpoint instead of from the initial model states. The System must
	// be constructed identically to the checkpointed run's.
	Restore *Checkpoint

	// Migrate, when non-nil, enables live LP migration: after every committed
	// GVT round (that does not end in a checkpoint cut) the controller invokes
	// the planner with the current ownership and per-LP load window, and a
	// non-empty plan turns the round into a migration cut that moves the named
	// LPs to their new owners (see migrate.go). Workers keep per-LP
	// committed-event logs when set, exactly as for checkpoints. In
	// distributed mode every process must use the same planner configuration;
	// the planner itself runs only on the controller.
	Migrate MigrationPlanner
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 1
	}
	if c.GVTEvery <= 0 {
		c.GVTEvery = 4096
	}
	if c.GVTEveryMax <= 0 {
		c.GVTEveryMax = 16 * c.GVTEvery
	}
	if c.GVTEveryMax < c.GVTEvery {
		c.GVTEveryMax = c.GVTEvery
	}
	if c.AdaptCooldown == 0 {
		c.AdaptCooldown = 2
	}
	if c.AdaptCooldown < 0 {
		c.AdaptCooldown = 0
	}
	if c.Costs == (stats.CostModel{}) {
		c.Costs = stats.Default()
	}
	if c.AdaptRollbackHi == 0 {
		c.AdaptRollbackHi = 0.5
	}
	if c.AdaptBlockedHi == 0 {
		c.AdaptBlockedHi = 0.7
	}
}

// Validate reports configurations that cannot run correctly.
func (c *Config) Validate() error {
	if c.MemBudget < 0 {
		return fmt.Errorf("pdes: MemBudget %d is negative; use 0 for unbounded optimism", c.MemBudget)
	}
	if c.StallTimeout < 0 {
		return fmt.Errorf("pdes: StallTimeout %v is negative; use 0 to disable the stall watchdog", c.StallTimeout)
	}
	if c.StallPolicy > StallForceOpt {
		return fmt.Errorf("pdes: unknown StallPolicy %d", c.StallPolicy)
	}
	// vtime.Time is unsigned, so a negative window written by the caller
	// arrives here as a huge value. Anything strictly above half the range
	// can only be a cast negative (the ablations use exactly half the range
	// as "practically unbounded").
	if c.ThrottleWindow > ^vtime.Time(0)/2 {
		return fmt.Errorf("pdes: ThrottleWindow %d overflows (was a negative value cast to vtime.Time?); use 0 to disable throttling", c.ThrottleWindow)
	}
	if c.Ordering == OrderUserConsistent {
		switch c.Protocol {
		case ProtoConservative:
			if !c.Lookahead {
				return fmt.Errorf("pdes: user-consistent conservative ordering blocks without lookahead (paper §4); enable Config.Lookahead")
			}
		case ProtoOptimistic:
			// fine: extra rollbacks on equal timestamps
		default:
			return fmt.Errorf("pdes: user-consistent ordering supports only pure conservative or pure optimistic protocols (as in the paper's Fig. 4), not %v", c.Protocol)
		}
	}
	return nil
}
