package pdes

import (
	"fmt"
	"time"

	"govhdl/internal/stats"
	"govhdl/internal/vtime"
)

// Result reports the outcome of a run.
type Result struct {
	// GVT is the final global virtual time (at least the horizon on a
	// completed run).
	GVT vtime.VT
	// Metrics are the protocol counters accumulated during the run.
	Metrics stats.Snapshot
	// Makespan is the modeled parallel cost: the maximum worker clock at
	// termination under the virtual-processor cost model. For a
	// sequential run it equals the modeled sequential cost.
	Makespan float64
	// WorkerClocks are the per-worker modeled clocks at termination.
	WorkerClocks []float64
	// Wall is the host wall-clock duration of the run.
	Wall time.Duration
	// MemPeak is the high-water mark of tracked optimistic memory in bytes
	// (Config.MemBudget runs only; 0 otherwise).
	MemPeak int64
}

// RunSequential simulates the system on a single event heap with no
// synchronization machinery: the paper's "1 processor execution (improved
// for sequential simulation)" baseline and the correctness oracle. Events
// are processed in deterministic (timestamp, event ID) order until every
// pending event is at or beyond the horizon `until` (exclusive).
func RunSequential(sys *System, until vtime.Time, sink TraceSink) (*Result, error) {
	return RunSequentialCancelable(sys, until, sink, nil)
}

// cancelCheckEvery is how many sequential events execute between looks at the
// cancel channel: cheap enough to be invisible, frequent enough that a cancel
// lands within microseconds.
const cancelCheckEvery = 4096

// RunSequentialCancelable is RunSequential with the Config.Cancel semantics:
// once cancel is closed, the run stops within cancelCheckEvery events and
// returns a Canceled SimError. A panic carrying a ModelError (a diagnostic
// from the simulated design) is converted into a Model-flagged SimError
// instead of crashing the caller, mirroring the parallel workers.
func RunSequentialCancelable(sys *System, until vtime.Time, sink TraceSink, cancel <-chan struct{}) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			me, ok := r.(ModelError)
			if !ok {
				panic(r)
			}
			res, err = nil, &SimError{Text: "pdes: model error: " + me.Error(), Model: true}
		}
	}()
	sys.frozen = true
	start := time.Now()
	costs := stats.Default()
	horizon := vtime.VT{PT: until}

	var (
		heap    eventHeap
		nextID  uint64
		metrics stats.Metrics
		now     vtime.VT
		cur     LPID
		pool    eventPool
	)

	emit := func(dst LPID, ts vtime.VT, kind uint8, data any) {
		nextID++
		e := pool.get()
		e.ID, e.Src, e.Dst, e.TS, e.Kind, e.Data = nextID, cur, dst, ts, kind, data
		heap.Push(e)
	}
	ctx := &Ctx{sys: sys, emit: emit}
	if sink != nil {
		ctx.record = func(item any) { sink.Commit(cur, now, item) }
	}

	// Initialization: every LP that wants to schedules its first events at
	// virtual time zero.
	for _, d := range sys.lps {
		if im, ok := d.model.(InitModel); ok {
			cur, now = d.id, vtime.Zero
			ctx.self, ctx.now = cur, now
			im.Init(ctx)
		}
	}

	var processed uint64
	for {
		if cancel != nil && processed%cancelCheckEvery == 0 {
			select {
			case <-cancel:
				return nil, errCanceled()
			default:
			}
		}
		ev := heap.Peek()
		if ev == nil || !ev.TS.Less(horizon) {
			break
		}
		heap.Pop()
		cur, now = ev.Dst, ev.TS
		ctx.self, ctx.now = cur, now
		sys.lps[ev.Dst].model.Execute(ctx, ev)
		pool.put(ev) // models must not retain events beyond Execute
		processed++
	}
	metrics.Events.Store(processed)

	gvt := heap.MinTS()
	if horizon.Less(gvt) {
		gvt = horizon
	}
	cost := float64(processed) * costs.EventCost
	return &Result{
		GVT:          gvt,
		Metrics:      metrics.Snapshot(),
		Makespan:     cost,
		WorkerClocks: []float64{cost},
		Wall:         time.Since(start),
	}, nil
}

// sanity check used by tests: a model must not send into its own past even
// sequentially; Ctx.Send panics, which we convert to an error here for the
// few places that want a recoverable check.
func runSequentialRecover(sys *System, until vtime.Time, sink TraceSink) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("pdes: %v", r)
		}
	}()
	return RunSequential(sys, until, sink)
}
