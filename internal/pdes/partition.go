package pdes

// Topology-aware partitioning: greedy BFS region growth over the undirected
// wiring graph. Each part is grown from the lowest-numbered unassigned LP by
// repeatedly absorbing the frontier node with the most edges into the part
// (ties broken by lowest ID), up to a balanced size target. Compared with
// the paper's round-robin deal this co-locates signal+process neighborhoods,
// which is what minimizes the cross-part cut — and, under sharding, the
// protocol traffic itself.
//
// The algorithm is deterministic: it iterates only dense slices (never map
// order) and every tie is broken by LP ID.
func topoPartition(s *System, parts int) [][]LPID {
	n := len(s.lps)
	owned := make([][]LPID, parts)
	assigned := make([]int, n)
	gain := make([]int, n)
	inFrontier := make([]bool, n)
	for i := range assigned {
		assigned[i] = -1
	}
	frontier := make([]LPID, 0, 64)
	touched := make([]LPID, 0, 64)
	remaining := n
	next := 0 // scan pointer to the lowest unassigned LP

	for p := 0; p < parts; p++ {
		// Running-ceiling target keeps parts balanced without emptying the
		// tail parts (e.g. 9 LPs over 4 parts -> 3,2,2,2).
		target := (remaining + parts - p - 1) / (parts - p)
		frontier = frontier[:0]
		touched = touched[:0]
		for len(owned[p]) < target {
			pick := LPID(-1)
			for _, v := range frontier {
				if assigned[v] != -1 {
					continue
				}
				if pick == -1 || gain[v] > gain[pick] || (gain[v] == gain[pick] && v < pick) {
					pick = v
				}
			}
			if pick == -1 {
				for next < n && assigned[next] != -1 {
					next++
				}
				if next >= n {
					break
				}
				pick = LPID(next)
			}
			assigned[pick] = p
			owned[p] = append(owned[p], pick)
			remaining--
			d := s.lps[pick]
			for _, nb := range [2][]LPID{d.out, d.in} {
				for _, v := range nb {
					if assigned[v] != -1 {
						continue
					}
					gain[v]++
					if !inFrontier[v] {
						inFrontier[v] = true
						frontier = append(frontier, v)
						touched = append(touched, v)
					}
				}
			}
		}
		for _, v := range touched {
			gain[v] = 0
			inFrontier[v] = false
		}
	}
	return owned
}
