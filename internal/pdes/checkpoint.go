package pdes

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"

	"govhdl/internal/vtime"
)

// Run-level checkpoint/restart.
//
// A checkpoint is taken at a *quiescent cut*: immediately after a GVT round
// commits a new GVT, every worker rolls its optimistic LPs back to the commit
// horizon, commits the surviving history, releases the resulting
// anti-messages and then drains its inbox under the same cumulative-count
// accounting the GVT round uses. At the cut nothing is speculative, nothing
// is in flight, and every pending event's timestamp is at or above GVT — the
// classic consistent global state of a Chandy-Lamport-style snapshot,
// obtained here for free from the engine's stop-the-world GVT machinery.
//
// Model state is not serialized directly: kernel snapshots deliberately keep
// their fields unexported (models own their representation), so a checkpoint
// instead records each LP's *committed event log* and rebuilds state on
// restore by replaying it against a freshly initialized model with sends
// suppressed — the same coast-forward mechanism rollback uses. Trace records
// are NOT suppressed during the replay: re-committing them rebuilds the full
// trace from t=0 inside the restored run itself, so a restore (or an
// automatic failover absorbing a dead node's LPs) reproduces the
// uninterrupted run's trace byte-identically without carrying the old trace
// out of band. This is sound because the deterministic core guarantees
// Execute is a pure function of (model state, event): the repository's
// govhdlvet analyzers machine-check that no wall-clock reads, PRNG draws or
// map-iteration order can leak into an execution.

// checkpointFormat versions the gob blob layout.
const checkpointFormat = 1

// Checkpoint is a consistent global snapshot of a parallel run, assembled by
// the controller at a committed GVT. It is gob-serializable once the
// application's event payload types are registered (kernel.RegisterGob /
// transport.RegisterGob cover the VHDL kernel's).
type Checkpoint struct {
	Format  int      // checkpointFormat
	GVT     vtime.VT // the committed GVT of the cut
	Round   uint64   // GVT rounds completed when the cut was taken
	Workers int      // worker endpoint count (endpoints 1..Workers)
	NumLPs  int      // System size the checkpoint was taken against
	Modes   []Mode   // per-LP synchronization mode at the cut
	// Blobs holds one gob-encoded ckptWorker per worker, indexed by endpoint
	// id (Blobs[0] is unused — endpoint 0 is the controller). A dense slice,
	// not a map: checkpoint assembly and restore stay deterministic.
	Blobs [][]byte
}

// Encode writes the checkpoint as a single gob stream.
func (ck *Checkpoint) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(ck)
}

// DecodeCheckpoint reads a checkpoint written by Encode.
func DecodeCheckpoint(r io.Reader) (*Checkpoint, error) {
	ck := new(Checkpoint)
	if err := gob.NewDecoder(r).Decode(ck); err != nil {
		return nil, fmt.Errorf("pdes: decode checkpoint: %w", err)
	}
	if ck.Format != checkpointFormat {
		return nil, fmt.Errorf("pdes: checkpoint format %d, want %d", ck.Format, checkpointFormat)
	}
	return ck, nil
}

// validateRestore checks a checkpoint against the run it is restored into.
func validateRestore(ck *Checkpoint, sys *System, cfg *Config) error {
	if ck.Format != checkpointFormat {
		return fmt.Errorf("pdes: checkpoint format %d, want %d", ck.Format, checkpointFormat)
	}
	if ck.Workers != cfg.Workers {
		return fmt.Errorf("pdes: checkpoint was taken with %d workers, Config.Workers is %d", ck.Workers, cfg.Workers)
	}
	if ck.NumLPs != sys.NumLPs() {
		return fmt.Errorf("pdes: checkpoint was taken against %d LPs, the system has %d", ck.NumLPs, sys.NumLPs())
	}
	if len(ck.Modes) != ck.NumLPs {
		return fmt.Errorf("pdes: corrupt checkpoint: %d modes for %d LPs", len(ck.Modes), ck.NumLPs)
	}
	if len(ck.Blobs) != ck.Workers+1 {
		return fmt.Errorf("pdes: corrupt checkpoint: %d blobs for %d workers", len(ck.Blobs), ck.Workers)
	}
	return nil
}

// ckptEvent is an Event copied by value out of the engine's pooled objects:
// checkpoints must never retain a *Event past its recycling point.
type ckptEvent struct {
	ID   uint64
	Src  LPID
	Dst  LPID
	TS   vtime.VT
	Sent vtime.VT
	Kind uint8
	Neg  bool
	Data any
	Clk  float64
}

func ckptEventOf(e *Event) ckptEvent {
	return ckptEvent{ID: e.ID, Src: e.Src, Dst: e.Dst, TS: e.TS, Sent: e.Sent,
		Kind: e.Kind, Neg: e.Neg, Data: e.Data, Clk: e.Clk}
}

func (ce *ckptEvent) toEvent() *Event {
	return &Event{ID: ce.ID, Src: ce.Src, Dst: ce.Dst, TS: ce.TS, Sent: ce.Sent,
		Kind: ce.Kind, Neg: ce.Neg, Data: ce.Data, Clk: ce.Clk}
}

// ckptLP is one LP's share of a worker blob.
type ckptLP struct {
	ID    LPID
	Now   vtime.VT
	Floor vtime.VT
	// Log is the LP's committed executions since t=0 in execution order;
	// restore replays it (sends suppressed, trace records re-committed) to
	// rebuild the model state and the committed trace.
	Log []ckptEvent
	// Pending are the unprocessed events at the cut (all at or above GVT).
	Pending []ckptEvent
	// Orphans are anti-messages whose positive twin had not arrived at the
	// cut. The quiescent-cut protocol should leave none; serialized
	// defensively so a restore cannot silently lose a cancellation.
	Orphans []ckptEvent
	// CC holds the per-in-edge channel clocks, parallel to the LP's declared
	// input order. Null-message promises are deliberately NOT serialized:
	// senders re-advertise after restore (lastPromise restarts at zero), so
	// a promise in flight at the cut cannot be lost, only repeated.
	CC []vtime.VT
}

// ckptWorker is one worker's serialized state.
type ckptWorker struct {
	Worker int
	Seq    uint64 // event-ID allocator; restored so IDs never collide
	Clock  float64
	LPs    []ckptLP
}

// logCommit appends a committed execution to the LP's checkpoint log. Called
// at the three commit points — conservative execution, history commit, fossil
// collection — immediately before the event object is recycled.
func (w *worker) logCommit(lp *lpRT, e *Event) {
	if !w.logCommits {
		return
	}
	lp.commitLog = append(lp.commitLog, ckptEventOf(e))
}

// checkpointBlob serializes the worker at a quiescent cut: all histories
// committed, nothing in flight.
func (w *worker) checkpointBlob() ([]byte, error) {
	cw := ckptWorker{Worker: w.ep.Self(), Seq: w.seq, Clock: w.clock}
	for _, lp := range w.owned {
		if len(lp.processed) != 0 {
			return nil, fmt.Errorf("LP %s still has %d uncommitted records at the checkpoint cut",
				w.sys.Name(lp.decl.id), len(lp.processed))
		}
		cl := ckptLP{
			ID:    lp.decl.id,
			Now:   lp.now,
			Floor: lp.floor,
			Log:   lp.commitLog,
			CC:    make([]vtime.VT, len(lp.edges)),
		}
		for i := range lp.edges {
			cl.CC[i] = lp.edges[i].cc
		}
		for _, e := range lp.pending.a {
			cl.Pending = append(cl.Pending, ckptEventOf(e))
		}
		for _, e := range lp.orphans {
			cl.Orphans = append(cl.Orphans, ckptEventOf(e))
		}
		cw.LPs = append(cw.LPs, cl)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&cw); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// applyRestore rebuilds the worker from its checkpoint blob instead of
// initializing LPs from scratch. Model state is reconstructed by running Init
// and replaying the committed log with sends suppressed; the replay's trace
// records are committed to the sink, rebuilding the trace from t=0. Pending
// events, channel clocks and counters are installed directly.
func (w *worker) applyRestore() {
	blob := w.restore.Blobs[w.ep.Self()]
	var cw ckptWorker
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&cw); err != nil {
		w.fatal("pdes: restore worker %d: decode blob: %v", w.ep.Self(), err)
	}
	if cw.Worker != w.ep.Self() {
		w.fatal("pdes: restore worker %d: blob belongs to worker %d", w.ep.Self(), cw.Worker)
	}
	if len(cw.LPs) != len(w.owned) {
		w.fatal("pdes: restore worker %d: blob has %d LPs, partition owns %d (identical Config required)",
			w.ep.Self(), len(cw.LPs), len(w.owned))
	}
	w.gvt = w.restore.GVT
	w.seq = cw.Seq
	w.clock = cw.Clock

	for i := range cw.LPs {
		cl := &cw.LPs[i]
		lp := w.lps[cl.ID]
		if lp == nil {
			w.fatal("pdes: restore worker %d: blob LP %d is not owned here", w.ep.Self(), cl.ID)
		}
		// Rebuild model state: Init, then coast-forward through the
		// committed log. Sends are suppressed (already delivered before the
		// cut); records flow to the sink (curRec is nil at startup, so each
		// recordItem commits directly), restoring the trace alongside the
		// state.
		savedSends := w.supSends
		w.supSends = true
		if im, ok := lp.model.(InitModel); ok {
			w.ctx.self, w.ctx.now = lp.decl.id, vtime.Zero
			im.Init(w.ctx)
		}
		for k := range cl.Log {
			ce := &cl.Log[k]
			ev := ce.toEvent()
			w.ctx.self, w.ctx.now = lp.decl.id, ev.TS
			lp.model.Execute(w.ctx, ev)
			w.metrics.CoastForward.Add(1)
		}
		w.supSends = savedSends

		lp.now, lp.floor = cl.Now, cl.Floor
		if w.logCommits {
			lp.commitLog = cl.Log // later checkpoints extend the same log
		}
		if len(cl.CC) != len(lp.edges) {
			w.fatal("pdes: restore LP %s: %d channel clocks for %d edges", w.sys.Name(cl.ID), len(cl.CC), len(lp.edges))
		}
		for k := range cl.CC {
			lp.edges[k].cc = cl.CC[k]
		}
		for k := range cl.Pending {
			lp.pending.Push(cl.Pending[k].toEvent())
		}
		for k := range cl.Orphans {
			lp.orphans = append(lp.orphans, cl.Orphans[k].toEvent())
		}
		lp.sinceCkpt = 0
		w.requeue(lp)
	}
	// Conservative senders re-advertise their null promises (lastPromise
	// restarted at zero), replacing any promise that was in flight when the
	// checkpoint cut dropped it.
	if w.cfg.Lookahead {
		for _, lp := range w.owned {
			if lp.mode == Conservative {
				w.sendNulls(lp)
			}
		}
	}
}

// ckptParticipate runs the worker side of a checkpoint cut, entered right
// after a GVT round whose msgGVTNew carried the Ckpt flag. The worker:
//
//  1. rolls every optimistic LP back to the committed GVT and commits the
//     surviving history (the resulting anti-messages all carry timestamps
//     strictly above GVT, per the localMin invariant);
//  2. flushes those sends and re-pauses, so the drain accounting stays exact;
//  3. acks with cumulative send/receive counts — the same fixed-point
//     accounting as a GVT round — and drains until nothing is in flight;
//  4. serializes its LPs and waits for the controller's msgCkptDone.
//
// Messages arriving during the drain are incorporated before serialization:
// remote anti-messages annihilate against pending events (their positive twin
// can no longer be processed — histories are empty), nulls raise channel
// clocks, and fresh promises generated by those raises are deferred and
// released after the cut (deliberately outside the checkpoint; senders
// re-advertise on restore).
func (w *worker) ckptParticipate() (done bool) {
	for _, lp := range w.owned {
		if lp.mode != Optimistic {
			continue
		}
		if i := lp.rollbackIndex(w.gvt, w.user); i < len(lp.processed) {
			w.rollbackTo(lp, i)
		}
		w.commitHistory(lp)
	}
	w.drainLocal() // local anti-messages annihilate against pending events
	w.flushSends()
	w.paused = true

	copy(w.ackSent, w.sentTo)
	ack := w.msgPool.get()
	ack.Kind = msgCkptAck
	ack.Sent = w.ackSent
	ack.Recvd = w.recvd
	w.ep.Send(0, ack)

	var expect uint64
	haveExpect, sent := false, false
	for {
		if haveExpect && !sent && w.recvd >= expect {
			if w.recvd > expect {
				w.fatal("worker %d received %d messages during checkpoint drain, expected %d",
					w.ep.Self(), w.recvd, expect)
			}
			blob, err := w.checkpointBlob()
			if err != nil {
				w.fatal("worker %d: checkpoint: %v", w.ep.Self(), err)
			}
			m := w.msgPool.get()
			m.Kind, m.Blob = msgCkptState, blob
			w.ep.Send(0, m)
			sent = true
		}
		m := w.ep.Recv()
		switch m.Kind {
		case msgEvent:
			w.recvd++
			w.localQ = append(w.localQ, m.Ev)
			w.msgPool.put(m)
			w.drainLocal()
		case msgNull:
			w.recvd++
			src, dst, ts := m.Src, m.Dst, m.TS
			w.msgPool.put(m)
			w.routeNull(src, dst, ts)
			w.drainLocal()
		case msgCkptDrain:
			expect = m.Expect
			haveExpect = true
			w.msgPool.put(m)
		case msgCkptDone:
			w.msgPool.put(m)
			w.paused = false
			w.releaseDeferred()
			return false
		case msgStop:
			w.err = m.Err
			w.stopped = true
			return true
		case msgPoison:
			w.err = m.Err
			w.stopped = true
			return true
		}
	}
}
