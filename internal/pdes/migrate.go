package pdes

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"govhdl/internal/vtime"
)

// Live LP migration at GVT rounds.
//
// The quiescent cut that makes checkpoints consistent (checkpoint.go) is also
// a safe migration point: after an optimistic rollback to the committed GVT,
// a commit of the surviving history and a counted drain of in-flight
// messages, every LP's state is exactly its committed state at GVT and
// nothing is speculative or in transit. A migration round runs the same cut,
// but instead of serializing every worker for a restart it serializes only
// the LPs named in a MigrationPlan, ships their per-LP checkpoint blobs to
// the new owners through the controller, flips every worker's routing table
// while the cluster is still paused, and resumes. The barrier (install
// everywhere before anyone resumes) means routing tables flip atomically at
// the cut epoch; messages that were deferred during the cut re-resolve their
// destination against the new table at release, and a bounded forwarding
// window at the old owner backstops any straggler. The committed trace is
// byte-identical to the unmigrated run's: migration moves only committed
// state, never reorders or re-emits records.
//
// Model state transfer reuses the checkpoint mechanism: the committed event
// log replayed against a pristine model (kernel snapshots keep their fields
// unexported, so state cannot be serialized directly). Two refinements make
// this correct for *live* migration:
//
//   - The replay suppresses trace records as well as sends: the records were
//     already committed by the donor's process, so re-emitting them would
//     duplicate entries in the merged trace (a restore, by contrast, starts
//     from an empty trace and wants the re-emission).
//
//   - Within one process all workers share the System's model objects, so an
//     LP that merely moves between local workers needs no replay at all — and
//     replaying against a locally *stale* object (the LP left this process
//     and came back) would corrupt state. runState.localModel tracks, per
//     process, whether the local object holds the LP's current committed
//     state; when it does the install skips the replay, and when it does not
//     the model is first reset to its pristine pre-Init snapshot
//     (runState.pristine, captured before the run starts) so the replay
//     begins from a defined state.

// Move relocates one LP (or shard super-LP) to a new owning worker endpoint.
type Move struct {
	LP LPID
	To int // destination worker endpoint (1..Workers)
}

// LPLoad reports one LP's executed-event count over the last GVT window,
// carried in GVT acks when a MigrationPlanner is configured.
type LPLoad struct {
	LP    LPID
	Execs uint64
}

// MigrationState is the controller-side view a MigrationPlanner decides on:
// the committed round and GVT, the current LP-to-worker ownership, and the
// per-LP executed-event counts accumulated since the last migration. The
// slices are private copies; planners may retain or mutate them.
type MigrationState struct {
	Round   uint64
	GVT     vtime.VT
	Workers int
	Owner   []int    // LPID -> owning worker endpoint
	Loads   []uint64 // LPID -> events executed since the last migration
}

// MigrationPlanner decides, after each committed GVT round, whether to
// migrate LPs. Returning a non-empty plan turns the round into a migration
// cut. Planners run on the controller's critical path and must be
// deterministic functions of the MigrationState (plus their own prior
// decisions): determinism of the plan is what keeps distributed runs
// reproducible. Moves with To equal to the current owner are ignored;
// out-of-range moves abort the run.
type MigrationPlanner func(*MigrationState) []Move

// BalanceConfig tunes NewBalancePlanner.
type BalanceConfig struct {
	// Ratio triggers a plan when the most-loaded worker's window load
	// exceeds Ratio times the least-loaded worker's. Default 2.
	Ratio float64
	// Cooldown is the minimum number of GVT rounds between successive
	// plans, so one imbalance is corrected once, not every round while the
	// new placement warms up. Default 8.
	Cooldown uint64
	// MaxMoves bounds the LPs moved per plan. Default 1.
	MaxMoves int
	// MinEvents is the minimum window load on the most-loaded worker before
	// any plan is made (tiny workloads are never worth moving). Default 1024.
	MinEvents uint64
}

// NewBalancePlanner returns the sustained-load-imbalance policy: when the
// most-loaded worker's window exceeds Ratio times the least-loaded worker's,
// move the largest LPs that fit inside half the load gap from the former to
// the latter, at most once per Cooldown rounds. All ties break toward the
// lower endpoint or LP id, so the plan is a deterministic function of the
// MigrationState and the planner's own history.
func NewBalancePlanner(bc BalanceConfig) MigrationPlanner {
	if bc.Ratio <= 1 {
		bc.Ratio = 2
	}
	if bc.Cooldown == 0 {
		bc.Cooldown = 8
	}
	if bc.MaxMoves <= 0 {
		bc.MaxMoves = 1
	}
	if bc.MinEvents == 0 {
		bc.MinEvents = 1024
	}
	var lastPlan uint64
	planned := false
	return func(st *MigrationState) []Move {
		if st.Workers < 2 {
			return nil
		}
		if planned && st.Round-lastPlan < bc.Cooldown {
			return nil
		}
		load := make([]uint64, st.Workers+1)
		count := make([]int, st.Workers+1)
		for lp, w := range st.Owner {
			if w < 1 || w > st.Workers {
				continue
			}
			load[w] += st.Loads[lp]
			count[w]++
		}
		hi, lo := 1, 1
		for w := 2; w <= st.Workers; w++ {
			if load[w] > load[hi] {
				hi = w
			}
			if load[w] < load[lo] {
				lo = w
			}
		}
		if hi == lo || load[hi] < bc.MinEvents || float64(load[hi]) <= bc.Ratio*float64(load[lo]) {
			return nil
		}
		// Candidates: the loaded worker's LPs, heaviest first (ties toward
		// the lower LPID), never emptying the worker.
		var cands []LPID
		for lp, w := range st.Owner {
			if w == hi && st.Loads[lp] > 0 {
				cands = append(cands, LPID(lp))
			}
		}
		sort.Slice(cands, func(i, j int) bool {
			if st.Loads[cands[i]] != st.Loads[cands[j]] {
				return st.Loads[cands[i]] > st.Loads[cands[j]]
			}
			return cands[i] < cands[j]
		})
		gap := load[hi] - load[lo]
		var moves []Move
		var moved uint64
		for _, lp := range cands {
			if len(moves) >= bc.MaxMoves || count[hi]-len(moves) <= 1 {
				break
			}
			// Only moves that shrink the gap: the LP's load must fit inside
			// half the remaining gap, or the move would overshoot and the
			// next plan would move it straight back.
			if st.Loads[lp] > (gap-2*moved)/2 {
				continue
			}
			moves = append(moves, Move{LP: lp, To: lo})
			moved += st.Loads[lp]
		}
		if len(moves) == 0 {
			return nil
		}
		planned, lastPlan = true, st.Round
		return moves
	}
}

// migBlob is the unit a donor worker ships at a migration cut: the committed
// per-LP checkpoint state of every LP it is giving up.
type migBlob struct {
	Worker int
	LPs    []ckptLP
}

func encodeMigBlob(mb *migBlob) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(mb); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func decodeMigBlob(b []byte) (*migBlob, error) {
	mb := new(migBlob)
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(mb); err != nil {
		return nil, err
	}
	return mb, nil
}

// RemapCheckpoint regroups a checkpoint's per-LP state for a different worker
// count (or partitioning) than the cut was taken with: the supervisor's
// migrate-onto-survivors recovery. Every LP's committed log, pending events,
// channel clocks and mode survive unchanged; only the worker grouping — and
// therefore the LP-to-worker ownership of the restored run — changes. The
// per-worker event-ID allocators are re-seeded with the maximum sequence any
// old worker had reached, so IDs minted after the restore can never collide
// with IDs living in the remapped pending sets or logs.
func RemapCheckpoint(ck *Checkpoint, sys *System, workers int, part Partition) (*Checkpoint, error) {
	if ck.Format != checkpointFormat {
		return nil, fmt.Errorf("pdes: remap: checkpoint format %d, want %d", ck.Format, checkpointFormat)
	}
	if ck.NumLPs != sys.NumLPs() {
		return nil, fmt.Errorf("pdes: remap: checkpoint was taken against %d LPs, the system has %d", ck.NumLPs, sys.NumLPs())
	}
	if workers < 1 {
		return nil, fmt.Errorf("pdes: remap: need at least 1 worker, got %d", workers)
	}
	if workers > sys.NumLPs() {
		workers = sys.NumLPs()
	}
	if workers == ck.Workers {
		return ck, nil
	}
	byLP := make([]*ckptLP, ck.NumLPs)
	var maxSeq uint64
	var maxClock float64
	for w := 1; w < len(ck.Blobs); w++ {
		if len(ck.Blobs[w]) == 0 {
			continue
		}
		var cw ckptWorker
		if err := gob.NewDecoder(bytes.NewReader(ck.Blobs[w])).Decode(&cw); err != nil {
			return nil, fmt.Errorf("pdes: remap: decode worker %d blob: %w", w, err)
		}
		if cw.Seq > maxSeq {
			maxSeq = cw.Seq
		}
		if cw.Clock > maxClock {
			maxClock = cw.Clock
		}
		for i := range cw.LPs {
			cl := &cw.LPs[i]
			if cl.ID < 0 || int(cl.ID) >= ck.NumLPs {
				return nil, fmt.Errorf("pdes: remap: blob LP %d out of range", cl.ID)
			}
			if byLP[cl.ID] != nil {
				return nil, fmt.Errorf("pdes: remap: LP %d appears in two worker blobs", cl.ID)
			}
			byLP[cl.ID] = cl
		}
	}
	for id, cl := range byLP {
		if cl == nil {
			return nil, fmt.Errorf("pdes: remap: LP %d missing from the checkpoint", id)
		}
	}
	owned := sys.partition(part, workers)
	blobs := make([][]byte, workers+1)
	for wi, ids := range owned {
		cw := ckptWorker{Worker: wi + 1, Seq: maxSeq, Clock: maxClock}
		for _, id := range ids {
			cw.LPs = append(cw.LPs, *byLP[id])
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(&cw); err != nil {
			return nil, fmt.Errorf("pdes: remap: encode worker %d blob: %w", wi+1, err)
		}
		blobs[wi+1] = buf.Bytes()
	}
	return &Checkpoint{
		Format:  ck.Format,
		GVT:     ck.GVT,
		Round:   ck.Round,
		Workers: workers,
		NumLPs:  ck.NumLPs,
		Modes:   append([]Mode(nil), ck.Modes...),
		Blobs:   blobs,
	}, nil
}

// migForwardWindow is the number of GVT rounds after a migration cut during
// which forwarding a moved LP's messages is considered nominal. The barrier
// protocol flips every routing table before anyone resumes, so forwarding is
// a backstop, not a steady state — but a straggler can still arrive after
// the window closes (delayed wires, storms of back-to-back cuts), and the
// flipped ownership table stays authoritative forever, so late arrivals are
// forwarded too and merely counted as LateForwards rather than dropped or
// treated as fatal.
const migForwardWindow = 4

// --- worker side -----------------------------------------------------------

// buildLoads snapshots every owned LP's window execution count for the GVT
// ack, into a reusable scratch slice (the controller consumes it before the
// ack is recycled, like ackSent). Called before applyGVTNew zeroes the
// counters.
func (w *worker) buildLoads() []LPLoad {
	w.ackLoads = w.ackLoads[:0]
	for _, lp := range w.owned {
		w.ackLoads = append(w.ackLoads, LPLoad{LP: lp.decl.id, Execs: lp.execs})
	}
	return w.ackLoads
}

// migParticipate runs the worker side of a migration cut, entered right after
// a GVT round whose msgGVTNew carried Moves. The shape is ckptParticipate's:
// commit everything at GVT, drain under cumulative-count accounting, act at
// the quiescent point, resume. The act here is donating the moved LPs this
// worker owns (msgMigState), installing the ones it receives
// (msgMigInstall), and holding the barrier until every worker has installed
// (msgMigDone collected by the controller, msgMigResume released to all) so
// no worker can route against a half-flipped ownership table.
func (w *worker) migParticipate() (done bool) {
	for _, lp := range w.owned {
		if lp.mode != Optimistic {
			continue
		}
		if i := lp.rollbackIndex(w.gvt, w.user); i < len(lp.processed) {
			w.rollbackTo(lp, i)
		}
		w.commitHistory(lp)
	}
	w.drainLocal()
	w.flushSends()
	w.paused = true

	copy(w.ackSent, w.sentTo)
	ack := w.msgPool.get()
	ack.Kind = msgMigAck
	ack.Sent = w.ackSent
	ack.Recvd = w.recvd
	w.ep.Send(0, ack)

	var expect uint64
	haveExpect, sent := false, false
	for {
		if haveExpect && !sent && w.recvd >= expect {
			if w.recvd > expect {
				w.fatal("worker %d received %d messages during migration drain, expected %d",
					w.ep.Self(), w.recvd, expect)
			}
			blob, err := w.migrateBlob()
			if err != nil {
				w.fatal("worker %d: migration: %v", w.ep.Self(), err)
			}
			m := w.msgPool.get()
			m.Kind, m.Blob = msgMigState, blob
			w.ep.Send(0, m)
			sent = true
		}
		m := w.ep.Recv()
		switch m.Kind {
		case msgEvent:
			w.recvd++
			w.localQ = append(w.localQ, m.Ev)
			w.msgPool.put(m)
			w.drainLocal()
		case msgNull:
			w.recvd++
			src, dst, ts := m.Src, m.Dst, m.TS
			w.msgPool.put(m)
			w.routeNull(src, dst, ts)
			w.drainLocal()
		case msgMigDrain:
			expect = m.Expect
			haveExpect = true
			w.msgPool.put(m)
		case msgMigInstall:
			w.applyMigInstall(m)
			w.msgPool.put(m)
			dm := w.msgPool.get()
			dm.Kind = msgMigDone
			w.ep.Send(0, dm)
		case msgMigResume:
			w.msgPool.put(m)
			w.paused = false
			w.migRound = w.roundNo
			w.releaseDeferred()
			// Conservative LPs re-advertise their promises: installed LPs
			// start with zeroed lastPromise (like a restore), and existing
			// LPs' calls are no-ops unless the promise improved.
			if w.cfg.Lookahead {
				for _, lp := range w.owned {
					if lp.mode == Conservative {
						w.sendNulls(lp)
					}
				}
			}
			return false
		case msgStop:
			w.err = m.Err
			w.stopped = true
			return true
		case msgPoison:
			w.err = m.Err
			w.stopped = true
			return true
		}
	}
}

// migrateBlob serializes — and then drops — every moved LP this worker owns.
// Pending events travel inside the blob: they are the cut's in-flight
// messages for the moved LP, handed to the new owner, and are counted as
// forwarded.
func (w *worker) migrateBlob() ([]byte, error) {
	mb := migBlob{Worker: w.ep.Self()}
	for _, mv := range w.migMoves {
		lp := w.lps[mv.LP]
		if lp == nil {
			continue // owned elsewhere
		}
		if len(lp.processed) != 0 {
			return nil, fmt.Errorf("LP %s still has %d uncommitted records at the migration cut",
				w.sys.Name(mv.LP), len(lp.processed))
		}
		cl := ckptLP{
			ID:    mv.LP,
			Now:   lp.now,
			Floor: lp.floor,
			Log:   lp.commitLog,
			CC:    make([]vtime.VT, len(lp.edges)),
		}
		for i := range lp.edges {
			cl.CC[i] = lp.edges[i].cc
		}
		for _, e := range lp.pending.a {
			cl.Pending = append(cl.Pending, ckptEventOf(e))
		}
		for _, e := range lp.orphans {
			cl.Orphans = append(cl.Orphans, ckptEventOf(e))
		}
		w.metrics.ForwardedMsgs.Add(uint64(len(cl.Pending)))
		mb.LPs = append(mb.LPs, cl)
		w.dropLP(lp, mv.To)
	}
	if len(mb.LPs) == 0 {
		return nil, nil
	}
	return encodeMigBlob(&mb)
}

// dropLP removes a donated LP from this worker's ownership structures. The
// serialized copies are by value, so the pooled event objects are recycled
// here; a stale scheduling token for the LP is harmless (it pops, finds an
// empty pending heap, and is skipped).
func (w *worker) dropLP(lp *lpRT, to int) {
	id := lp.decl.id
	w.lps[id] = nil
	for i, o := range w.owned {
		if o == lp {
			w.owned = append(w.owned[:i], w.owned[i+1:]...)
			break
		}
	}
	for i := range lp.edges {
		src := lp.edges[i].src
		ws := w.watchers[src]
		for j, x := range ws {
			if x == lp {
				w.watchers[src] = append(ws[:j], ws[j+1:]...)
				break
			}
		}
	}
	for _, e := range lp.pending.a {
		w.evPool.put(e)
	}
	lp.pending.a = lp.pending.a[:0]
	for _, e := range lp.orphans {
		w.evPool.put(e)
	}
	lp.orphans = nil
	lp.commitLog = nil
	if w.rs != nil && w.rs.localModel != nil && to < len(w.rs.hostedEps) && !w.rs.hostedEps[to] {
		// The model object stays behind while the LP's state moves on: the
		// local copy is stale from now on, and a future install back into
		// this process must rebuild from the pristine snapshot.
		w.rs.localModel[id] = false
	}
}

// applyMigInstall flips the ownership table for every move of the round and
// installs the LPs migrated to this worker. Model state is rebuilt exactly as
// a restore does — pristine model, Init, committed-log replay — except that
// trace records are suppressed too (the donor's process already committed
// them) and the replay is skipped entirely when this process's shared model
// object already holds the LP's committed state (runState.localModel).
func (w *worker) applyMigInstall(m *Msg) {
	for _, mv := range w.migMoves {
		w.owner[mv.LP] = mv.To
	}
	if len(m.Blob) == 0 {
		return
	}
	mb, err := decodeMigBlob(m.Blob)
	if err != nil {
		w.fatal("pdes: worker %d: decode migration bundle: %v", w.ep.Self(), err)
	}
	for i := range mb.LPs {
		cl := &mb.LPs[i]
		id := cl.ID
		if w.lps[id] != nil {
			w.fatal("pdes: worker %d: migration installs LP %s it already owns", w.ep.Self(), w.sys.Name(id))
		}
		if len(m.AllModes) != w.sys.NumLPs() {
			w.fatal("pdes: worker %d: migration install carries %d modes for %d LPs", w.ep.Self(), len(m.AllModes), w.sys.NumLPs())
		}
		lp := newLPRT(w.sys.lps[id], m.AllModes[id])
		for j := range lp.edges {
			lp.edges[j].srcCons = m.AllModes[lp.edges[j].src] == Conservative
			w.watchers[lp.edges[j].src] = append(w.watchers[lp.edges[j].src], lp)
		}
		if len(cl.CC) != len(lp.edges) {
			w.fatal("pdes: migrate LP %s: %d channel clocks for %d edges", w.sys.Name(id), len(cl.CC), len(lp.edges))
		}
		for j := range cl.CC {
			lp.edges[j].cc = cl.CC[j]
		}
		current := w.rs != nil && w.rs.localModel != nil && w.rs.localModel[id]
		if !current {
			savedSends, savedRecs := w.supSends, w.supRecs
			w.supSends, w.supRecs = true, true
			if w.rs != nil && w.rs.pristine != nil {
				lp.model.RestoreState(w.rs.pristine[id])
			}
			if im, ok := lp.model.(InitModel); ok {
				w.ctx.self, w.ctx.now = id, vtime.Zero
				im.Init(w.ctx)
			}
			for k := range cl.Log {
				ce := &cl.Log[k]
				ev := ce.toEvent()
				w.ctx.self, w.ctx.now = id, ev.TS
				lp.model.Execute(w.ctx, ev)
				w.metrics.CoastForward.Add(1)
			}
			w.supSends, w.supRecs = savedSends, savedRecs
		}
		lp.now, lp.floor = cl.Now, cl.Floor
		if w.logCommits {
			lp.commitLog = cl.Log
		}
		for k := range cl.Pending {
			lp.pending.Push(cl.Pending[k].toEvent())
		}
		for k := range cl.Orphans {
			lp.orphans = append(lp.orphans, cl.Orphans[k].toEvent())
		}
		lp.sinceCkpt = 0
		w.lps[id] = lp
		w.owned = append(w.owned, lp)
		w.requeue(lp)
		if w.rs != nil && w.rs.localModel != nil {
			w.rs.localModel[id] = true
		}
	}
}

// releaseDeferred flushes the messages deferred while the worker was paused,
// re-resolving each counted message's destination against the (possibly just
// flipped) ownership table: a promise or event generated mid-cut for an LP
// that moved must chase it to the new owner, not arrive at a worker that no
// longer owns it.
func (w *worker) releaseDeferred() {
	for _, d := range w.deferred {
		dst := d.dst
		switch d.m.Kind {
		case msgEvent:
			if o := w.owner[d.m.Ev.Dst]; o != dst {
				w.metrics.ForwardedMsgs.Add(1)
				dst = o
			}
		case msgNull:
			if o := w.owner[d.m.Dst]; o != dst {
				w.metrics.ForwardedMsgs.Add(1)
				dst = o
			}
		}
		w.sentTo[dst]++
		w.ep.Send(dst, d.m)
	}
	w.deferred = w.deferred[:0]
}

// --- controller side -------------------------------------------------------

// planMoves invokes the configured MigrationPlanner on a private copy of the
// controller's state and validates the plan. No-op moves are dropped;
// out-of-range moves abort the run — a planner bug must be loud, because an
// inconsistent ownership flip would corrupt routing on every worker.
func (c *controller) planMoves(gvt vtime.VT) ([]Move, bool) {
	st := &MigrationState{
		Round:   c.rounds,
		GVT:     gvt,
		Workers: c.workers,
		Owner:   append([]int(nil), c.owner...),
		Loads:   append([]uint64(nil), c.loads...),
	}
	var moves []Move
	for _, mv := range c.cfg.Migrate(st) {
		if mv.LP < 0 || int(mv.LP) >= len(c.owner) || mv.To < 1 || mv.To > c.workers {
			c.abort(&SimError{Text: fmt.Sprintf("pdes: migration plan names LP %d -> worker %d, outside the run (%d LPs, %d workers)",
				mv.LP, mv.To, len(c.owner), c.workers)})
			return nil, false
		}
		if c.owner[mv.LP] == mv.To {
			continue
		}
		moves = append(moves, mv)
	}
	return moves, true
}

// migrationRound coordinates a migration cut after broadcasting a msgGVTNew
// that carried Moves: collect post-commit counts, drain to the quiescent
// point, gather the donors' blobs, regroup the moved LPs by destination,
// install everywhere, and only then release the barrier. Mirrors
// checkpointRound.
func (c *controller) migrationRound(gvt vtime.VT, moves []Move) (stopped bool) {
	acks := c.acks
	for n := 0; n < c.workers; {
		m := c.ep.Recv()
		switch m.Kind {
		case msgFatal:
			c.abort(m.Err)
			return true
		case msgPoison:
			c.err = m.Err
			return true
		case msgMigAck:
			if acks[m.From] == nil {
				acks[m.From] = m
				n++
			}
		case msgIdle:
			c.msgs.put(m) // stale trigger, dropped
		}
	}

	expect := c.expect
	for i := range expect {
		expect[i] = 0
	}
	for w := 1; w <= c.workers; w++ {
		for dst, n := range acks[w].Sent {
			if dst >= 1 && dst <= c.workers {
				expect[dst] += n
			}
		}
	}
	for w := 1; w <= c.workers; w++ {
		c.msgs.put(acks[w])
		acks[w] = nil
	}
	for w := 1; w <= c.workers; w++ {
		m := c.msgs.get()
		m.Kind, m.Expect = msgMigDrain, expect[w]
		c.ep.Send(w, m)
	}

	blobs := make([][]byte, c.workers+1)
	got := make([]bool, c.workers+1)
	for n := 0; n < c.workers; {
		m := c.ep.Recv()
		switch m.Kind {
		case msgFatal:
			c.abort(m.Err)
			return true
		case msgPoison:
			c.err = m.Err
			return true
		case msgMigState:
			if !got[m.From] {
				got[m.From] = true
				blobs[m.From] = m.Blob
				n++
			}
			c.msgs.put(m)
		case msgIdle:
			c.msgs.put(m)
		}
	}

	byLP := make([]*ckptLP, len(c.owner))
	for w := 1; w <= c.workers; w++ {
		if len(blobs[w]) == 0 {
			continue
		}
		mb, err := decodeMigBlob(blobs[w])
		if err != nil {
			c.abort(&SimError{Text: fmt.Sprintf("pdes: migration: decode worker %d bundle: %v", w, err)})
			return true
		}
		for i := range mb.LPs {
			byLP[mb.LPs[i].ID] = &mb.LPs[i]
		}
	}
	dest := make([]migBlob, c.workers+1)
	for _, mv := range moves {
		cl := byLP[mv.LP]
		if cl == nil {
			c.abort(&SimError{Text: fmt.Sprintf("pdes: migration: no donor shipped LP %d", mv.LP)})
			return true
		}
		dest[mv.To].LPs = append(dest[mv.To].LPs, *cl)
		c.owner[mv.LP] = mv.To
	}
	allModes := append([]Mode(nil), c.modes...)
	for w := 1; w <= c.workers; w++ {
		m := c.msgs.get()
		m.Kind = msgMigInstall
		m.AllModes = allModes
		if len(dest[w].LPs) > 0 {
			blob, err := encodeMigBlob(&dest[w])
			if err != nil {
				c.abort(&SimError{Text: fmt.Sprintf("pdes: migration: encode bundle for worker %d: %v", w, err)})
				return true
			}
			m.Blob = blob
		}
		c.ep.Send(w, m)
	}
	c.metrics.Migrations.Add(uint64(len(moves)))
	c.metrics.ViewChanges.Add(1)
	// The load window restarts: the next plan reacts to the new placement,
	// not to history the move already corrected.
	for i := range c.loads {
		c.loads[i] = 0
	}

	for n := 0; n < c.workers; {
		m := c.ep.Recv()
		switch m.Kind {
		case msgFatal:
			c.abort(m.Err)
			return true
		case msgPoison:
			c.err = m.Err
			return true
		case msgMigDone:
			n++
			c.msgs.put(m)
		case msgIdle:
			c.msgs.put(m)
		}
	}
	for w := 1; w <= c.workers; w++ {
		m := c.msgs.get()
		m.Kind = msgMigResume
		c.ep.Send(w, m)
	}
	return false
}
