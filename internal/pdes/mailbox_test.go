package pdes

import (
	"runtime"
	"sync"
	"testing"
)

// TestMailboxConcurrentShrink hammers the MPSC mailbox with interleaved
// put/putAll bursts from several producers while the single consumer drains
// with a mix of blocking and polling takes. Bursts exceed the shrink
// threshold (head > 64) so the compaction and reallocation paths in pop()
// run many times mid-traffic. Run with -race; the assertions check the
// substrate contract: nothing lost, nothing duplicated, per-producer FIFO.
func TestMailboxConcurrentShrink(t *testing.T) {
	const (
		producers = 4
		rounds    = 150
		burst     = 48
	)
	mb := newMailbox()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			seq := uint64(0)
			for r := 0; r < rounds; r++ {
				if r%2 == 0 {
					batch := make([]*Msg, burst)
					for i := range batch {
						batch[i] = &Msg{From: p, Round: seq}
						seq++
					}
					mb.putAll(batch)
				} else {
					for i := 0; i < burst; i++ {
						mb.put(&Msg{From: p, Round: seq})
						seq++
					}
				}
			}
		}(p)
	}

	next := make([]uint64, producers)
	total := producers * rounds * burst
	for i := 0; i < total; i++ {
		var m *Msg
		if i%3 == 0 {
			for {
				var ok bool
				if m, ok = mb.tryTake(); ok {
					break
				}
				runtime.Gosched()
			}
		} else {
			m = mb.take()
		}
		if m.Round != next[m.From] {
			t.Fatalf("producer %d out of order: got round %d, want %d", m.From, m.Round, next[m.From])
		}
		next[m.From]++
	}
	wg.Wait()
	if m, ok := mb.tryTake(); ok {
		t.Fatalf("mailbox not empty after full drain: %+v", m)
	}
}
