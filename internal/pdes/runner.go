package pdes

import (
	"fmt"
	"sync"
	"time"

	"govhdl/internal/stats"
	"govhdl/internal/vtime"
)

// Run simulates the system in parallel under cfg until the horizon `until`
// (exclusive: events at physical time >= until are not processed). The
// workers and the GVT controller run as goroutines connected by an
// in-process fabric; package transport provides the distributed variant over
// TCP sockets with the same protocol.
func Run(sys *System, cfg Config, until vtime.Time, sink TraceSink) (*Result, error) {
	cfg.fillDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Protocol != ProtoSequential && cfg.Workers > sys.NumLPs() {
		return nil, fmt.Errorf("pdes: Config.Workers (%d) exceeds the number of LPs (%d): the extra workers would own nothing and only add synchronization cost", cfg.Workers, sys.NumLPs())
	}
	return runParallel(sys, cfg, until, sink)
}

// errCanceled is the verdict a canceled run unwinds with: not a transport
// failure (a supervisor must not retry an explicit cancel) and not a model
// error (the design did nothing wrong).
func errCanceled() *SimError {
	return &SimError{Text: "pdes: run canceled", Canceled: true}
}

// startCancelWatcher arms Config.Cancel for one RunOn call: when the channel
// closes, every locally hosted endpoint is poisoned — the same unwind path the
// stall watchdog and a dying transport use, so workers and the controller
// observe the abort even when parked mid GVT round. The returned function
// stops the watcher and waits for its goroutine; RunOn calls it after the run
// has unwound.
func startCancelWatcher(cancel <-chan struct{}, eps []Endpoint) func() {
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		select {
		case <-stop:
		case <-cancel:
			err := errCanceled()
			for _, ep := range eps {
				ep.Poison(err)
			}
		}
	}()
	return func() {
		close(stop)
		<-done
	}
}

// runParallel is Run without configuration validation; tests use it to
// exercise the deadlock detector on configurations Validate rejects.
func runParallel(sys *System, cfg Config, until vtime.Time, sink TraceSink) (*Result, error) {
	cfg.fillDefaults()
	if cfg.Protocol == ProtoSequential {
		return RunSequentialCancelable(sys, until, sink, cfg.Cancel)
	}
	return RunOn(sys, cfg, until, sink, NewLocalFabric(cfg.Workers+1))
}

// RunOn runs the workers and/or controller for the endpoints this process
// hosts. With the in-process fabric (all endpoints) it is a complete
// parallel run; in distributed mode every participating process calls RunOn
// with an identically-constructed System and Config and its own subset of
// endpoints (endpoint 0 is the GVT controller; endpoints 1..N-1 are the
// workers). Cross-process endpoints come from package transport.
//
// The returned Result covers what this process observed: the final GVT,
// the locally accumulated metrics, and the clocks of the locally hosted
// workers.
func RunOn(sys *System, cfg Config, until vtime.Time, sink TraceSink, eps []Endpoint) (*Result, error) {
	cfg.fillDefaults()
	if len(eps) == 0 {
		return nil, fmt.Errorf("pdes: RunOn needs at least one endpoint")
	}
	total := eps[0].N()
	if cfg.Workers != total-1 {
		return nil, fmt.Errorf("pdes: Config.Workers (%d) must match the fabric's worker count (%d)", cfg.Workers, total-1)
	}
	hostsController := false
	for _, ep := range eps {
		if ep.Self() == 0 {
			hostsController = true
		}
	}
	if cfg.CheckpointRounds > 0 && hostsController && cfg.CheckpointSink == nil {
		return nil, fmt.Errorf("pdes: Config.CheckpointRounds is set but the controller process has no CheckpointSink")
	}
	if cfg.Restore != nil {
		if err := validateRestore(cfg.Restore, sys, &cfg); err != nil {
			return nil, err
		}
	}
	sys.frozen = true

	horizon := vtime.VT{PT: until}
	metrics := &stats.Metrics{}

	owned := sys.partition(cfg.Partition, cfg.Workers)
	owner := make([]int, sys.NumLPs())
	for wi, ids := range owned {
		for _, id := range ids {
			owner[id] = wi + 1
		}
	}
	modes := make([]Mode, sys.NumLPs())
	if cfg.Restore != nil {
		// The mode table resumes from the cut, not from the initial
		// assignment: adaptation decisions made before the checkpoint are
		// part of the restored state.
		copy(modes, cfg.Restore.Modes)
	} else {
		for i := range modes {
			modes[i] = sys.initialMode(LPID(i), cfg.Protocol)
		}
	}

	rs := &runState{}
	if cfg.Migrate != nil {
		// Migration support: record which endpoints live here, whether each
		// LP's local model object is current (it is when its owner is hosted
		// here), and a pristine pre-Init snapshot of every model so an LP
		// installed from another process can be rebuilt by log replay.
		rs.hostedEps = make([]bool, total)
		for _, ep := range eps {
			rs.hostedEps[ep.Self()] = true
		}
		rs.localModel = make([]bool, sys.NumLPs())
		for id := range rs.localModel {
			rs.localModel[id] = rs.hostedEps[owner[id]]
		}
		rs.pristine = make([]any, sys.NumLPs())
		for id := range rs.pristine {
			rs.pristine[id] = sys.lps[id].model.SaveState()
		}
	}
	var workers []*worker
	var ctrl *controller
	for _, ep := range eps {
		if ep.Self() == 0 {
			ctrlModes := make([]Mode, len(modes))
			copy(ctrlModes, modes)
			ctrl = newController(ep, &cfg, horizon, ctrlModes, metrics)
			ctrl.sys = sys
			ctrl.rs = rs
			ctrl.owner = append([]int(nil), owner...)
			continue
		}
		wi := ep.Self() - 1
		wOwner := owner
		if cfg.Migrate != nil {
			// Migration flips ownership tables per worker at the cut; a shared
			// slice would make those (identical) writes race across the
			// process's workers.
			wOwner = append([]int(nil), owner...)
		}
		w := newWorker(ep, sys, &cfg, horizon, wOwner, owned[wi], modes, metrics, sink)
		w.rs = rs
		w.memTrack = cfg.MemBudget > 0
		workers = append(workers, w)
	}

	var stopWatchdog func()
	if cfg.StallTimeout > 0 {
		stopWatchdog = startWatchdog(rs, &cfg, workers, eps)
	}
	var stopCancel func()
	if cfg.Cancel != nil {
		stopCancel = startCancelWatcher(cfg.Cancel, eps)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for _, w := range workers {
		wg.Add(1)
		go func(w *worker) {
			defer wg.Done()
			w.run()
		}(w)
	}
	if ctrl != nil {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctrl.run()
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	if stopWatchdog != nil {
		stopWatchdog()
	}
	if stopCancel != nil {
		stopCancel()
	}

	if ctrl != nil && ctrl.err != nil {
		return nil, ctrl.err
	}
	res := &Result{
		Metrics: metrics.Snapshot(),
		Wall:    wall,
		MemPeak: rs.memPeak.Load(),
	}
	if ctrl != nil {
		res.GVT = ctrl.gvt
	}
	for _, w := range workers {
		if res.GVT == (vtime.VT{}) {
			res.GVT = w.gvt
		}
		res.WorkerClocks = append(res.WorkerClocks, w.finalClock)
		if w.finalClock > res.Makespan {
			res.Makespan = w.finalClock
		}
		if w.stopped {
			// Surface the abort's diagnosis on worker-only processes, where
			// no controller error is available locally.
			if w.err != nil {
				return res, w.err
			}
			return res, fmt.Errorf("pdes: simulation aborted")
		}
	}
	return res, nil
}
