package pdes

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"govhdl/internal/vtime"
)

// collector is a thread-safe TraceSink that normalizes records to sortable
// strings.
type collector struct {
	mu   sync.Mutex
	recs []string
}

func (c *collector) Commit(lp LPID, ts vtime.VT, item any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recs = append(c.recs, fmt.Sprintf("%03d|%v|%v", lp, ts, item))
}

func (c *collector) sorted() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]string(nil), c.recs...)
	sort.Strings(out)
	return out
}

const kindToken = 1

// relay is a deterministic, order-insensitive test model: state updates
// commute for equal-timestamp events, so every protocol must produce the
// same committed trace and the same final state as the sequential oracle.
type relay struct {
	id    LPID
	out   []LPID
	seeds []int // initial token values scheduled at Init (may be empty)
	sum   int64
}

func (r *relay) Init(ctx *Ctx) {
	for i, x := range r.seeds {
		ts := vtime.VT{PT: vtime.Time(i+1) * vtime.NS, LT: 3}
		ctx.Schedule(ts, kindToken, x)
	}
}

func (r *relay) Execute(ctx *Ctx, ev *Event) {
	x := ev.Data.(int)
	r.sum += int64(x) * int64(x+3)
	ctx.Record(x)
	if x <= 0 || len(r.out) == 0 {
		return
	}
	targets := r.out[:1]
	if x%5 == 0 && len(r.out) > 1 {
		targets = r.out // branch occasionally
	}
	for i, dst := range targets {
		var ts vtime.VT
		now := ctx.Now()
		switch (x + i) % 4 {
		case 0:
			ts = now // same virtual time, different LP
		case 1:
			ts = now.NextPhase() // delta-style logical-time advance
		case 2:
			ts = vtime.VT{PT: now.PT + vtime.Time(x%5+1)*vtime.NS}
		default:
			ts = vtime.VT{PT: now.PT + vtime.NS, LT: 2}
		}
		ctx.Send(dst, ts, kindToken, x-1)
	}
}

func (r *relay) SaveState() any     { return r.sum }
func (r *relay) RestoreState(s any) { r.sum = s.(int64) }

// buildRelayRing builds a fresh ring of n relays where relay i feeds i+1 and
// i+2, with the first `seeds` relays seeding a token of value x0.
func buildRelayRing(n, seeds, x0 int) (*System, []*relay) {
	sys := NewSystem()
	models := make([]*relay, n)
	ids := make([]LPID, n)
	for i := 0; i < n; i++ {
		m := &relay{}
		models[i] = m
		hint := Optimistic
		if i%2 == 0 {
			hint = Conservative
		}
		ids[i] = sys.AddLP(fmt.Sprintf("relay%d", i), m, WithHint(hint))
		m.id = ids[i]
	}
	for i := 0; i < n; i++ {
		models[i].out = []LPID{ids[(i+1)%n], ids[(i+2)%n]}
		sys.Connect(ids[i], ids[(i+1)%n])
		sys.Connect(ids[i], ids[(i+2)%n])
		if i < seeds {
			models[i].seeds = []int{x0 + i}
		}
	}
	return sys, models
}

const relayHorizon = 10_000 * vtime.NS

// buildRelayLine is buildRelayRing without the wraparound: an acyclic
// topology where virtual-time null messages give user-consistent
// conservative ordering enough strictly-greater guarantees to progress.
// (On a ring with zero lookahead it correctly deadlocks, as the paper says.)
func buildRelayLine(n, seeds, x0 int) (*System, []*relay) {
	sys := NewSystem()
	models := make([]*relay, n)
	ids := make([]LPID, n)
	for i := 0; i < n; i++ {
		m := &relay{}
		models[i] = m
		ids[i] = sys.AddLP(fmt.Sprintf("relay%d", i), m)
		m.id = ids[i]
	}
	for i := 0; i < n; i++ {
		for _, d := range []int{i + 1, i + 2} {
			if d < n {
				models[i].out = append(models[i].out, ids[d])
				sys.Connect(ids[i], ids[d])
			}
		}
		if i < seeds {
			models[i].seeds = []int{x0 + i}
		}
	}
	return sys, models
}

func runLineOracle(t *testing.T, n, seeds, x0 int) []string {
	t.Helper()
	sys, _ := buildRelayLine(n, seeds, x0)
	sink := &collector{}
	if _, err := RunSequential(sys, relayHorizon, sink); err != nil {
		t.Fatalf("sequential: %v", err)
	}
	return sink.sorted()
}

func runOracle(t *testing.T, n, seeds, x0 int) ([]string, []int64) {
	t.Helper()
	sys, models := buildRelayRing(n, seeds, x0)
	sink := &collector{}
	res, err := RunSequential(sys, relayHorizon, sink)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	if res.Metrics.Events == 0 {
		t.Fatal("sequential run processed no events")
	}
	sums := make([]int64, n)
	for i, m := range models {
		sums[i] = m.sum
	}
	return sink.sorted(), sums
}

func TestSequentialDeterminism(t *testing.T) {
	tr1, s1 := runOracle(t, 12, 3, 40)
	tr2, s2 := runOracle(t, 12, 3, 40)
	if len(tr1) == 0 {
		t.Fatal("empty trace")
	}
	if strings.Join(tr1, "\n") != strings.Join(tr2, "\n") {
		t.Fatal("sequential runs disagree")
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("sum %d differs", i)
		}
	}
}

func TestAllProtocolsMatchSequential(t *testing.T) {
	want, wantSums := runOracle(t, 12, 3, 40)
	protos := []Protocol{ProtoConservative, ProtoOptimistic, ProtoMixed, ProtoDynamic}
	for _, proto := range protos {
		for _, workers := range []int{1, 2, 4} {
			for _, la := range []bool{false, true} {
				name := fmt.Sprintf("%v/w%d/la=%v", proto, workers, la)
				t.Run(name, func(t *testing.T) {
					sys, models := buildRelayRing(12, 3, 40)
					sink := &collector{}
					res, err := Run(sys, Config{
						Workers:   workers,
						Protocol:  proto,
						Lookahead: la,
						GVTEvery:  256,
					}, relayHorizon, sink)
					if err != nil {
						t.Fatalf("run: %v", err)
					}
					if res.GVT.Less(vtime.VT{PT: relayHorizon}) {
						t.Errorf("final GVT %v below horizon", res.GVT)
					}
					got := sink.sorted()
					if strings.Join(got, "\n") != strings.Join(want, "\n") {
						t.Errorf("trace mismatch: got %d records, want %d", len(got), len(want))
						for i := 0; i < len(got) && i < len(want); i++ {
							if got[i] != want[i] {
								t.Errorf("first diff at %d: got %q want %q", i, got[i], want[i])
								break
							}
						}
					}
					for i, m := range models {
						if m.sum != wantSums[i] {
							t.Errorf("relay%d sum = %d, want %d", i, m.sum, wantSums[i])
						}
					}
				})
			}
		}
	}
}

func TestUserConsistentOptimisticMatchesOracle(t *testing.T) {
	want, _ := runOracle(t, 10, 2, 30)
	sys, _ := buildRelayRing(10, 2, 30)
	sink := &collector{}
	_, err := Run(sys, Config{
		Workers:  3,
		Protocol: ProtoOptimistic,
		Ordering: OrderUserConsistent,
		GVTEvery: 128,
	}, relayHorizon, sink)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := sink.sorted()
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("user-consistent optimistic trace mismatch: %d vs %d records", len(got), len(want))
	}
}

func TestUserConsistentConservativeWithLookahead(t *testing.T) {
	// With lookahead (virtual-time null messages) the user-consistent
	// conservative configuration must complete, as in the paper's Fig. 4.
	// The topology must be acyclic: a zero-lookahead cycle deadlocks under
	// user-consistent ordering no matter what.
	want := runLineOracle(t, 10, 2, 30)
	sys, _ := buildRelayLine(10, 2, 30)
	sink := &collector{}
	res, err := Run(sys, Config{
		Workers:   2,
		Protocol:  ProtoConservative,
		Ordering:  OrderUserConsistent,
		Lookahead: true,
		GVTEvery:  128,
	}, relayHorizon, sink)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Metrics.Nulls == 0 {
		t.Error("expected null messages in a lookahead run")
	}
	got := sink.sorted()
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("trace mismatch: %d vs %d records", len(got), len(want))
	}
}

func TestValidateRejectsUserConservativeWithoutLookahead(t *testing.T) {
	cfg := Config{Workers: 2, Protocol: ProtoConservative, Ordering: OrderUserConsistent}
	cfg.fillDefaults()
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted user-consistent conservative without lookahead")
	}
	cfg = Config{Workers: 2, Protocol: ProtoDynamic, Ordering: OrderUserConsistent}
	cfg.fillDefaults()
	if err := cfg.Validate(); err == nil {
		t.Fatal("Validate accepted user-consistent dynamic")
	}
}

func TestDeadlockDetected(t *testing.T) {
	// The paper: "the user-consistent model for conservative configuration
	// will block without [lookahead]". The engine must detect the stall
	// and fail rather than hang.
	sys, _ := buildRelayRing(8, 2, 20)
	_, err := runParallel(sys, Config{
		Workers:  2,
		Protocol: ProtoConservative,
		Ordering: OrderUserConsistent,
		GVTEvery: 64,
	}, relayHorizon, nil)
	if err == nil {
		t.Fatal("expected deadlock error")
	}
	if !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestOptimisticCheckpointIntervals(t *testing.T) {
	want, wantSums := runOracle(t, 12, 3, 40)
	for _, ck := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("every%d", ck), func(t *testing.T) {
			sys, models := buildRelayRing(12, 3, 40)
			sink := &collector{}
			res, err := Run(sys, Config{
				Workers:         4,
				Protocol:        ProtoOptimistic,
				CheckpointEvery: ck,
				GVTEvery:        256,
			}, relayHorizon, sink)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			got := sink.sorted()
			if strings.Join(got, "\n") != strings.Join(want, "\n") {
				t.Errorf("trace mismatch with checkpoint interval %d", ck)
			}
			for i, m := range models {
				if m.sum != wantSums[i] {
					t.Errorf("relay%d sum = %d, want %d", i, m.sum, wantSums[i])
					break
				}
			}
			if ck > 1 && res.Metrics.StateSaves >= res.Metrics.Events {
				t.Errorf("checkpoint interval %d saved state on every event", ck)
			}
		})
	}
}

func TestThrottleWindow(t *testing.T) {
	want, _ := runOracle(t, 12, 3, 40)
	sys, _ := buildRelayRing(12, 3, 40)
	sink := &collector{}
	_, err := Run(sys, Config{
		Workers:        3,
		Protocol:       ProtoOptimistic,
		ThrottleWindow: 10 * vtime.NS,
		GVTEvery:       128,
	}, relayHorizon, sink)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := sink.sorted()
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Error("throttled optimistic trace mismatch")
	}
}

func TestForcedModeIsRespected(t *testing.T) {
	sys := NewSystem()
	m1 := &relay{seeds: []int{20}}
	m2 := &relay{}
	a := sys.AddLP("a", m1, WithForcedMode(Conservative))
	b := sys.AddLP("b", m2)
	m1.id, m2.id = a, b
	m1.out = []LPID{b}
	sys.Connect(a, b)
	res, err := Run(sys, Config{Workers: 2, Protocol: ProtoOptimistic, GVTEvery: 64}, relayHorizon, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// The forced-conservative LP must never have been rolled back (it
	// cannot be: rollback of a conservative LP is fatal), and the run
	// completed, which is the observable contract.
	if res.GVT.Less(vtime.VT{PT: relayHorizon}) {
		t.Error("run did not reach the horizon")
	}
}

func TestRunResultShape(t *testing.T) {
	sys, _ := buildRelayRing(8, 2, 20)
	res, err := Run(sys, Config{Workers: 3, Protocol: ProtoDynamic, GVTEvery: 64}, relayHorizon, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.WorkerClocks) != 3 {
		t.Fatalf("WorkerClocks = %v", res.WorkerClocks)
	}
	for i, c := range res.WorkerClocks {
		if c <= 0 {
			t.Errorf("worker %d clock %v", i, c)
		}
		if c > res.Makespan {
			t.Errorf("worker clock %v exceeds makespan %v", c, res.Makespan)
		}
	}
	if res.Metrics.GVTRounds == 0 {
		t.Error("no GVT rounds recorded")
	}
	if res.Metrics.Events == 0 {
		t.Error("no events recorded")
	}
}

func TestSystemBuilderPanics(t *testing.T) {
	sys := NewSystem()
	sys.AddLP("x", &relay{})
	for name, f := range map[string]func(){
		"duplicate name": func() { sys.AddLP("x", &relay{}) },
		"empty name":     func() { sys.AddLP("", &relay{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestCtxSendValidation(t *testing.T) {
	ctx := &Ctx{now: vtime.VT{PT: 10}, self: 1, sys: NewSystem()}
	ctx.sys.AddLP("a", &relay{})
	ctx.sys.AddLP("b", &relay{})
	ctx.emit = func(LPID, vtime.VT, uint8, any) {}
	// Past send panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("past send did not panic")
			}
		}()
		ctx.Send(0, vtime.VT{PT: 5}, 0, nil)
	}()
	// Self send at the current time panics.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("self-send at now did not panic")
			}
		}()
		ctx.Schedule(vtime.VT{PT: 10}, 0, nil)
	}()
	// Valid sends do not.
	ctx.Send(0, vtime.VT{PT: 10}, 0, nil)
	ctx.Schedule(vtime.VT{PT: 11}, 0, nil)
}
