package pdes

import (
	"strings"
	"testing"

	"govhdl/internal/vtime"
)

func TestStringers(t *testing.T) {
	if Conservative.String() != "conservative" || Optimistic.String() != "optimistic" {
		t.Error("Mode.String broken")
	}
	protos := map[Protocol]string{
		ProtoSequential: "seq", ProtoConservative: "cons", ProtoOptimistic: "opt",
		ProtoMixed: "mixed", ProtoDynamic: "dynamic", Protocol(99): "?",
	}
	for p, want := range protos {
		if p.String() != want {
			t.Errorf("Protocol(%d).String() = %q, want %q", p, p.String(), want)
		}
	}
	if OrderArbitrary.String() != "arbitrary" || OrderUserConsistent.String() != "user-consistent" {
		t.Error("Ordering.String broken")
	}
	ev := &Event{ID: 7, Src: 1, Dst: 2, TS: vtime.VT{PT: 5}, Kind: 3}
	if s := ev.String(); !strings.Contains(s, "1->2") || !strings.Contains(s, "ev+") {
		t.Errorf("Event.String = %q", s)
	}
	anti := &Event{ID: 7, Neg: true}
	if s := anti.String(); !strings.Contains(s, "ev-") {
		t.Errorf("anti Event.String = %q", s)
	}
	if !ev.SameButSign(anti) || ev.SameButSign(ev) {
		t.Error("SameButSign broken")
	}
}

func TestValidateAcceptsGoodConfigs(t *testing.T) {
	good := []Config{
		{Workers: 4, Protocol: ProtoDynamic},
		{Workers: 1, Protocol: ProtoOptimistic, Ordering: OrderUserConsistent},
		{Workers: 2, Protocol: ProtoConservative, Ordering: OrderUserConsistent, Lookahead: true},
		{Workers: 8, Protocol: ProtoMixed, Lookahead: true},
	}
	for i, cfg := range good {
		cfg.fillDefaults()
		if err := cfg.Validate(); err != nil {
			t.Errorf("config %d rejected: %v", i, err)
		}
	}
}

func TestFillDefaults(t *testing.T) {
	var cfg Config
	cfg.fillDefaults()
	if cfg.Workers != 1 || cfg.CheckpointEvery != 1 || cfg.GVTEvery <= 0 {
		t.Errorf("defaults: %+v", cfg)
	}
	if cfg.Costs.EventCost == 0 {
		t.Error("cost model not defaulted")
	}
	if cfg.AdaptRollbackHi <= 0 || cfg.AdaptBlockedHi <= 0 {
		t.Error("adaptation thresholds not defaulted")
	}
}

func TestSystemIntrospection(t *testing.T) {
	sys := NewSystem()
	a := sys.AddLP("a", &relay{})
	b := sys.AddLP("b", &relay{})
	sys.Connect(a, b)
	sys.Connect(a, b) // duplicate ignored
	sys.Connect(a, a) // self ignored
	if sys.NumLPs() != 2 || sys.Name(a) != "a" {
		t.Error("basic introspection broken")
	}
	if got, ok := sys.Lookup("b"); !ok || got != b {
		t.Error("Lookup broken")
	}
	if _, ok := sys.Lookup("zzz"); ok {
		t.Error("Lookup found a ghost")
	}
	if len(sys.Fanout(a)) != 1 || len(sys.Fanin(b)) != 1 {
		t.Errorf("edges: out=%v in=%v", sys.Fanout(a), sys.Fanin(b))
	}
	if sys.Model(a) == nil {
		t.Error("Model accessor broken")
	}
}
