package pdes

import (
	"errors"
	"fmt"

	"govhdl/internal/vtime"
)

// Event is one timestamped message between LPs. Events are immutable after
// Send; the Data payload must not be mutated by sender or receiver (the
// optimistic protocol may re-deliver it after a rollback), and models must
// not retain the *Event itself beyond Execute — the engine recycles event
// objects once they can no longer roll back (see pool.go).
type Event struct {
	ID   uint64   // globally unique (worker index in the high bits)
	Src  LPID     // sending LP
	Dst  LPID     // destination LP
	TS   vtime.VT // receive timestamp
	Sent vtime.VT // sender's local virtual time at send (Sent <= TS)
	Kind uint8    // application-defined event class
	Neg  bool     // true for an anti-message
	Data any      // immutable application payload

	// Clk is the sender worker's modeled clock (plus wire latency) at send
	// time; the receiver's clock advances to at least Clk before the event
	// executes, modeling message latency in the virtual-processor model.
	Clk float64

	// freed marks the event as sitting in a free list; used by the pool's
	// use-after-free checks (pool.go).
	freed bool
}

// antiRec is the sender-side record of one emitted event, kept by value in
// the optimistic history so a rollback can issue the matching anti-message.
// Recording sends by value (rather than retaining the *Event) is what gives
// the receiver exclusive ownership of the event object and makes recycling
// safe: the positive copy can be fossil-collected by its receiver while the
// sender still holds everything an anti-message needs.
type antiRec struct {
	id   uint64
	src  LPID
	dst  LPID
	ts   vtime.VT
	kind uint8
}

// SameButSign reports whether e and o are a positive/negative pair.
func (e *Event) SameButSign(o *Event) bool {
	return e.ID == o.ID && e.Neg != o.Neg
}

func (e *Event) String() string {
	sign := "+"
	if e.Neg {
		sign = "-"
	}
	return fmt.Sprintf("ev%s#%d %d->%d @%v kind=%d", sign, e.ID, e.Src, e.Dst, e.TS, e.Kind)
}

// msgKind discriminates transport messages.
type msgKind uint8

const (
	msgEvent     msgKind = iota // an application event (or anti-message)
	msgNull                     // a null message carrying a channel-clock promise
	msgGVTPause                 // controller -> worker: stop and flush
	msgGVTAck                   // worker -> controller: flushed, with send/recv counts
	msgGVTDrain                 // controller -> worker: drain inbox to Expect total
	msgGVTMin                   // worker -> controller: local minimum after drain
	msgGVTNew                   // controller -> worker: new GVT (and mode table)
	msgIdle                     // worker -> controller: idle notice or GVT request
	msgFatal                    // worker -> controller: unrecoverable error
	msgStop                     // controller -> worker: abort now
	msgCkptAck                  // worker -> controller: committed at GVT, counts snapshot
	msgCkptDrain                // controller -> worker: drain inbox to Expect total
	msgCkptState                // worker -> controller: serialized worker state
	msgCkptDone                 // controller -> worker: checkpoint persisted, resume
	msgPoison                   // transport/injector -> anyone: the substrate is dead
	msgMigAck                   // worker -> controller: committed at the migration cut, counts snapshot
	msgMigDrain                 // controller -> worker: drain inbox to Expect total
	msgMigState                 // worker -> controller: serialized moved-LP bundle (nil if none)
	msgMigInstall               // controller -> worker: flip ownership, install incoming LPs
	msgMigDone                  // worker -> controller: installed, still paused
	msgMigResume                // controller -> worker: every worker installed, resume
)

// Msg is the unit carried by a Transport. Exactly one of the payload groups
// is meaningful depending on Kind.
type Msg struct {
	Kind msgKind
	From int // sending worker

	// msgEvent
	Ev *Event

	// msgNull: promise that LP Src will send nothing to Dst before TS.
	Src LPID
	Dst LPID
	TS  vtime.VT

	// GVT control.
	Round     uint64
	Sent      []uint64   // msgGVTAck: events+nulls sent per worker
	Recvd     uint64     // msgGVTAck: total events+nulls received
	Expect    uint64     // msgGVTDrain: drain until Recvd == Expect
	Min       vtime.VT   // msgGVTMin: local minimum unprocessed timestamp
	Clock     float64    // msgGVTAck/msgGVTNew: modeled clock / barrier clock
	GVT       vtime.VT   // msgGVTNew
	ConsLPs   []LPID     // msgGVTNew: LPs that switched to conservative
	OptLPs    []LPID     // msgGVTNew: LPs that switched to optimistic
	Idle      bool       // msgIdle: worker has nothing processable
	Request   bool       // msgIdle: worker asks for a GVT round (GVTEvery reached)
	Processed uint64     // msgIdle/msgGVTAck: events processed so far
	Nulls     uint64     // msgGVTAck: null messages sent so far
	NextGVT   int        // msgGVTNew: adaptive GVT interval (0 = unchanged)
	Done      bool       // msgGVTNew: termination flag
	Ckpt      bool       // msgGVTNew: this round ends in a checkpoint cut
	Blob      []byte     // msgCkptState: gob-encoded worker snapshot
	Err       *SimError  // msgFatal/msgStop/msgPoison: fatal error, if any
	Modes     []ModePair // msgGVTAck: mode switches requested by this worker
	// Blocked lists the conservative LPs that were blocked at the pause
	// (pending events, none safe), for the controller's stall-rescue pick.
	// Collected only when Config.StallPolicy is StallForceOpt.
	Blocked []BlockedLP // msgGVTAck
	// Loads reports per-LP executed-event counts for the controller's
	// migration planner. Collected only when Config.Migrate is set.
	Loads []LPLoad // msgGVTAck
	// Moves announces a migration cut following this GVT round.
	Moves []Move // msgGVTNew
	// AllModes is the full per-LP mode table, carried on msgMigInstall so a
	// receiver can build runtime state for LPs it has never owned.
	AllModes []Mode // msgMigInstall
}

// PoisonMsg builds the message a failing message substrate injects into every
// locally hosted endpoint so that workers and the controller — possibly
// blocked in Recv, mid GVT round — observe transport death and unwind RunOn
// with a diagnosed error instead of hanging at the barrier. The substrate must
// return a fresh poison message from every Recv/TryRecv after failure: poison
// messages are sticky on the substrate side, never recycled on the engine
// side.
func PoisonMsg(err error) *Msg {
	se, ok := err.(*SimError)
	if !ok {
		// A substrate failure is environmental, not a simulation bug: mark it
		// recoverable so a supervisor may restart from a checkpoint.
		se = &SimError{Text: "pdes: transport failure: " + err.Error(), Transport: true}
	}
	return &Msg{Kind: msgPoison, Err: se}
}

// ModePair records one LP's mode after adaptation.
type ModePair struct {
	LP   LPID
	Mode Mode
}

// BlockedLP identifies a blocked conservative LP and the timestamp of its
// earliest withheld event, reported in GVT acks for stall rescue.
type BlockedLP struct {
	LP LPID
	TS vtime.VT
}

// SimError is a fatal simulation error that must cross worker boundaries.
type SimError struct {
	Text string
	// Transport marks failures of the message substrate (connection death,
	// heartbeat timeout, injected fabric kill) rather than of the simulation
	// itself. Only transport failures are worth retrying from a checkpoint:
	// a deterministic engine reproduces any other error identically.
	Transport bool
	// Model marks a diagnostic raised by the simulated model itself (a VHDL
	// runtime error, a delta-cycle runaway): the design is at fault, not the
	// engine or the environment, so retrying cannot help but the hosting
	// process is perfectly healthy — a multi-tenant server maps these to a
	// client error on the offending session only.
	Model bool
	// Canceled marks a run unwound through Config.Cancel (an explicit cancel
	// request or an expired session deadline). Never retried.
	Canceled bool
	// Stall marks a verdict of the GVT stall watchdog or the controller's
	// deadlock detector: the run stopped making progress and was unwound.
	// Deterministically reproducible, so never retried.
	Stall bool
}

func (e *SimError) Error() string { return e.Text }

// ModelError is implemented by panic values thrown from model code that
// diagnose the simulated design itself (e.g. a VHDL evaluation error) rather
// than an engine bug. Workers and the sequential kernel convert such panics
// into a Model-flagged *SimError, failing the run cleanly instead of
// crashing the process.
type ModelError interface {
	error
	// ModelDiagnostic is a marker: implementing it asserts the error
	// describes the simulated design, deterministically.
	ModelDiagnostic()
}

// IsModelError reports whether err is a model diagnostic (see SimError.Model).
func IsModelError(err error) bool {
	var se *SimError
	if errors.As(err, &se) {
		return se.Model
	}
	var me ModelError
	return errors.As(err, &me)
}

// IsCanceled reports whether err is the verdict of a run unwound through
// Config.Cancel.
func IsCanceled(err error) bool {
	var se *SimError
	return errors.As(err, &se) && se.Canceled
}

// IsStall reports whether err is a stall-watchdog or deadlock verdict.
func IsStall(err error) bool {
	var se *SimError
	return errors.As(err, &se) && se.Stall
}
