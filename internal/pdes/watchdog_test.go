package pdes

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"govhdl/internal/vtime"
)

// TestStallRescueCompletesDeadlockedRun is TestDeadlockDetected with the
// force-opt stall policy: instead of aborting, the controller's deadlock
// detector forces the most-starved blocked conservative LP optimistic —
// repeatedly if needed — and the run completes with the oracle trace. The
// rescue rides the deterministic deadlock path, so no wall-clock watchdog
// is involved and the test is exactly reproducible.
func TestStallRescueCompletesDeadlockedRun(t *testing.T) {
	want, _ := runOracle(t, 8, 2, 20)
	sys, _ := buildRelayRing(8, 2, 20)
	sink := &collector{}
	res, err := runParallel(sys, Config{
		Workers:     2,
		Protocol:    ProtoConservative,
		Ordering:    OrderUserConsistent,
		GVTEvery:    64,
		StallPolicy: StallForceOpt,
	}, relayHorizon, sink)
	if err != nil {
		t.Fatalf("rescued run failed: %v", err)
	}
	if res.GVT.Less(vtime.VT{PT: relayHorizon}) {
		t.Fatalf("rescued run stopped at GVT %v", res.GVT)
	}
	if res.Metrics.StallRescues == 0 {
		t.Fatal("run completed without any stall rescue; the deadlock never happened?")
	}
	got := sink.sorted()
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("rescued trace mismatch: got %d records, want %d", len(got), len(want))
		for i := 0; i < len(got) && i < len(want); i++ {
			if got[i] != want[i] {
				t.Errorf("first diff at %d: got %q want %q", i, got[i], want[i])
				break
			}
		}
	}
}

// TestStallRescueIsDeterministic re-runs the rescued configuration and
// requires identical rescue counts: the escape hatch must not introduce
// schedule-dependent behavior.
func TestStallRescueIsDeterministic(t *testing.T) {
	runOnce := func() (uint64, []string) {
		sys, _ := buildRelayRing(8, 2, 20)
		sink := &collector{}
		res, err := runParallel(sys, Config{
			Workers:     2,
			Protocol:    ProtoConservative,
			Ordering:    OrderUserConsistent,
			GVTEvery:    64,
			StallPolicy: StallForceOpt,
		}, relayHorizon, sink)
		if err != nil {
			t.Fatalf("rescued run failed: %v", err)
		}
		return res.Metrics.StallRescues, sink.sorted()
	}
	r1, t1 := runOnce()
	r2, t2 := runOnce()
	if r1 != r2 {
		t.Errorf("rescue counts differ across identical runs: %d vs %d", r1, r2)
	}
	if strings.Join(t1, "\n") != strings.Join(t2, "\n") {
		t.Error("rescued traces differ across identical runs")
	}
}

// wedge is a ping-pong model whose Execute call blocks at the Nth event
// until released: the failure mode where a model (or foreign code under it)
// hangs, which no amount of protocol-level progress detection can see. Only
// the wall-clock watchdog can diagnose it.
type wedge struct {
	peer    LPID
	count   int
	wedgeAt int // block on the wedgeAt-th Execute (0 = never)
	release chan struct{}
}

func (m *wedge) Init(ctx *Ctx) {
	if m.wedgeAt > 0 {
		ctx.Schedule(vtime.VT{PT: 1}, 0, 0)
	}
}

func (m *wedge) Execute(ctx *Ctx, ev *Event) {
	m.count++
	if m.wedgeAt > 0 && m.count == m.wedgeAt {
		<-m.release
	}
	ctx.Send(m.peer, vtime.VT{PT: ev.TS.PT + vtime.NS}, 0, 0)
}

func (m *wedge) SaveState() any     { return m.count }
func (m *wedge) RestoreState(s any) { m.count = s.(int) }

// TestWatchdogDiagnosesWedgedExecute wedges a model inside Execute and
// checks the watchdog (a) fires with a non-transport SimError rather than
// letting the run hang, and (b) flags the wedged worker as stale/unresponsive
// in the dump while the healthy worker shows up as parked in Recv.
func TestWatchdogDiagnosesWedgedExecute(t *testing.T) {
	release := make(chan struct{})
	sys := NewSystem()
	m0 := &wedge{wedgeAt: 10, release: release}
	m1 := &wedge{}
	a := sys.AddLP("wedger", m0)
	b := sys.AddLP("echo", m1)
	m0.peer, m1.peer = b, a
	sys.Connect(a, b)
	sys.Connect(b, a)

	var (
		mu      sync.Mutex
		reports []*StallReport
	)
	var once sync.Once
	cfg := Config{
		Workers:      2,
		Protocol:     ProtoConservative,
		GVTEvery:     8,
		StallTimeout: 300 * time.Millisecond,
		StallDump: func(r *StallReport) {
			mu.Lock()
			reports = append(reports, r)
			mu.Unlock()
			// Unwedge after the dump so the run can unwind; a real hang
			// would keep the worker goroutine pinned forever.
			once.Do(func() { close(release) })
		},
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := Run(sys, cfg, 1000*vtime.NS, nil)
		errCh <- err
	}()
	var err error
	select {
	case err = <-errCh:
	case <-time.After(30 * time.Second):
		t.Fatal("run hung despite the stall watchdog")
	}
	if err == nil {
		t.Fatal("wedged run completed")
	}
	if !strings.Contains(err.Error(), "stall watchdog") {
		t.Fatalf("unexpected error: %v", err)
	}
	var se *SimError
	if !errors.As(err, &se) {
		t.Fatalf("watchdog error is not a SimError: %v", err)
	}
	if se.Transport {
		t.Error("watchdog verdict marked as transport failure; failover would retry a deterministic hang")
	}

	mu.Lock()
	defer mu.Unlock()
	if len(reports) == 0 {
		t.Fatal("no diagnostic dump produced")
	}
	r := reports[len(reports)-1]
	if len(r.Workers) != 2 {
		t.Fatalf("dump covers %d workers, want 2", len(r.Workers))
	}
	wedged := 0
	for _, w := range r.Workers {
		if w.Stale && !w.Waiting {
			wedged++
		}
	}
	if wedged == 0 {
		t.Errorf("dump does not flag any worker as unresponsive:\n%s", r)
	}
	if s := r.String(); !strings.Contains(s, "UNRESPONSIVE") {
		t.Errorf("rendered dump does not call out the wedged worker:\n%s", s)
	}
}

// TestMemBudgetBoundsRollbackStorm drives an unthrottled optimistic run
// (the rollback-storm regime) twice: unbounded to establish the natural
// memory high-water mark, then with a budget a quarter of that. The bounded
// run must stay under its budget, exercise backpressure or cancelback, and
// still commit the oracle trace.
func TestMemBudgetBoundsRollbackStorm(t *testing.T) {
	want, _ := runOracle(t, 12, 3, 40)

	storm := func(budget int64) *Result {
		sys, _ := buildRelayRing(12, 3, 40)
		sink := &collector{}
		res, err := Run(sys, Config{
			Workers:   4,
			Protocol:  ProtoOptimistic,
			GVTEvery:  256,
			MemBudget: budget,
		}, relayHorizon, sink)
		if err != nil {
			t.Fatalf("storm run (budget %d): %v", budget, err)
		}
		got := sink.sorted()
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("storm run (budget %d) trace mismatch: got %d records, want %d",
				budget, len(got), len(want))
		}
		return res
	}

	unbounded := storm(0)
	if unbounded.MemPeak != 0 {
		t.Fatalf("unbounded run tracked memory (peak %d); accounting must be off without a budget", unbounded.MemPeak)
	}

	// Establish the natural peak with accounting on but the budget out of
	// reach, then re-run with a quarter of it.
	probe := storm(1 << 40)
	if probe.MemPeak <= 0 {
		t.Fatal("accounting run recorded no memory peak")
	}
	budget := probe.MemPeak / 4
	if budget < memPerRec {
		t.Skipf("natural peak %d too small to quarter meaningfully", probe.MemPeak)
	}
	bounded := storm(budget)
	if bounded.MemPeak <= 0 {
		t.Fatal("bounded run recorded no memory peak")
	}
	// The budget gates speculation beyond GVT; events at or below GVT are
	// always admitted (withholding them could deadlock the run), so the peak
	// may overshoot by the committed-but-unfossiled volume of one GVT
	// window. Hold it to 25% headroom and well under the natural peak.
	if limit := budget + budget/4; bounded.MemPeak > limit {
		t.Errorf("bounded run peak %d exceeds budget %d by more than 25%% (natural peak %d)",
			bounded.MemPeak, budget, probe.MemPeak)
	}
	if bounded.MemPeak >= probe.MemPeak/2 {
		t.Errorf("bounded run peak %d not meaningfully below natural peak %d",
			bounded.MemPeak, probe.MemPeak)
	}
	if bounded.Metrics.MemThrottled == 0 && bounded.Metrics.Cancelbacks == 0 {
		t.Error("bounded run never throttled or cancelled back; the budget did nothing")
	}
}

// TestMemBudgetDeterministic re-runs the bounded storm and requires an
// identical committed trace: backpressure may reshape speculation, but it
// must never leak into commit order.
func TestMemBudgetDeterministic(t *testing.T) {
	want, _ := runOracle(t, 12, 3, 40)
	for i := 0; i < 2; i++ {
		sys, _ := buildRelayRing(12, 3, 40)
		sink := &collector{}
		if _, err := Run(sys, Config{
			Workers:   4,
			Protocol:  ProtoOptimistic,
			GVTEvery:  256,
			MemBudget: 64 << 10,
		}, relayHorizon, sink); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		got := sink.sorted()
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Fatalf("run %d: bounded trace diverged from oracle", i)
		}
	}
}
