package pdes

import "sync"

// Endpoint is one end of the message substrate connecting the GVT controller
// (endpoint 0) and the workers (endpoints 1..N). Implementations must
// deliver messages reliably and FIFO per (sender, receiver) pair. The
// in-process implementation below uses unbounded queues; package transport
// provides a TCP implementation with the same contract.
type Endpoint interface {
	// Self returns this endpoint's index.
	Self() int
	// N returns the total number of endpoints.
	N() int
	// Send delivers m to endpoint dst. It must not block indefinitely
	// (unbounded buffering is acceptable).
	Send(dst int, m *Msg)
	// SendBatch delivers ms to endpoint dst in order, equivalent to calling
	// Send for each element but paying the synchronization (or wire framing)
	// cost once per batch. The implementation may retain the messages but
	// not the slice itself; the caller may reuse the slice after the call.
	SendBatch(dst int, ms []*Msg)
	// Recv blocks until a message is available.
	Recv() *Msg
	// TryRecv returns a message if one is immediately available.
	TryRecv() (*Msg, bool)
	// Poison marks the substrate dead with err: every locally hosted
	// endpoint's Recv/TryRecv returns a fresh PoisonMsg(err) from now on,
	// unwinding goroutines blocked mid-protocol. The first poison sticks.
	Poison(err error)
	// QueueLen reports the number of undelivered messages waiting at this
	// endpoint (diagnostics only; the value is immediately stale).
	QueueLen() int
}

// batchReceiver is an optional Endpoint extension: drain every immediately
// available message in one synchronized operation. Workers use it when
// present (the in-process mailbox implements it) to pay one lock acquisition
// per scheduling pass instead of one per message.
type batchReceiver interface {
	// TryRecvAll appends all immediately available messages to buf in
	// arrival order and returns it; buf may be nil.
	TryRecvAll(buf []*Msg) []*Msg
}

// mailbox is an unbounded MPSC queue. Unboundedness matters: with bounded
// channels two workers sending to each other through full buffers would
// deadlock.
type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []*Msg
	head   int
	closed bool
	// waiting is the number of takers blocked in cond.Wait (0 or 1: the
	// queue is single-consumer). Producers skip the Signal syscall entirely
	// while the consumer is running — the common case under load, where the
	// consumer drains in batches and only parks when truly idle.
	waiting int
	// poison, once set, short-circuits take/tryTake: each call returns a
	// fresh PoisonMsg so concurrent and repeated receives all observe death
	// (poison messages are never recycled).
	poison error
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) put(m *Msg) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, m)
	wake := mb.waiting > 0
	mb.mu.Unlock()
	if wake {
		mb.cond.Signal()
	}
}

// putAll appends a batch under one lock acquisition. A single Signal
// suffices: the mailbox has one consumer, and take only waits while the
// queue is empty.
func (mb *mailbox) putAll(ms []*Msg) {
	mb.mu.Lock()
	mb.queue = append(mb.queue, ms...)
	wake := mb.waiting > 0
	mb.mu.Unlock()
	if wake {
		mb.cond.Signal()
	}
}

func (mb *mailbox) take() *Msg {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.poison != nil {
		return PoisonMsg(mb.poison)
	}
	for mb.head >= len(mb.queue) {
		mb.waiting++
		mb.cond.Wait()
		mb.waiting--
		if mb.poison != nil {
			return PoisonMsg(mb.poison)
		}
	}
	return mb.pop()
}

// drainAll appends every queued message to buf and empties the queue under
// one lock acquisition.
func (mb *mailbox) drainAll(buf []*Msg) []*Msg {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.poison != nil {
		return append(buf, PoisonMsg(mb.poison))
	}
	buf = append(buf, mb.queue[mb.head:]...)
	for i := mb.head; i < len(mb.queue); i++ {
		mb.queue[i] = nil
	}
	// Keep the backing array for reuse unless a burst left it oversized, so
	// a GVT drain after heavy optimism does not pin its high-water memory.
	if cap(mb.queue) > 1024 {
		mb.queue = nil
	} else {
		mb.queue = mb.queue[:0]
	}
	mb.head = 0
	return buf
}

func (mb *mailbox) tryTake() (*Msg, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	if mb.poison != nil {
		return PoisonMsg(mb.poison), true
	}
	if mb.head >= len(mb.queue) {
		return nil, false
	}
	return mb.pop(), true
}

// poisonWith makes the mailbox permanently return poison; the first error
// sticks. Broadcast wakes every blocked taker.
func (mb *mailbox) poisonWith(err error) {
	mb.mu.Lock()
	if mb.poison == nil {
		mb.poison = err
	}
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// depth reports the live queue length.
func (mb *mailbox) depth() int {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	return len(mb.queue) - mb.head
}

// pop removes the head; caller holds mu. The backing slice is compacted
// once the head pointer passes half the queue, and reallocated to a smaller
// array when a drain leaves the capacity more than 4x the live count, so a
// burst (e.g. a GVT drain after heavy optimism) does not pin its high-water
// memory for the rest of the run.
func (mb *mailbox) pop() *Msg {
	m := mb.queue[mb.head]
	mb.queue[mb.head] = nil
	mb.head++
	if mb.head > 64 && mb.head*2 >= len(mb.queue) {
		live := len(mb.queue) - mb.head
		if cap(mb.queue) > 64 && cap(mb.queue) > 4*live {
			nq := make([]*Msg, live)
			copy(nq, mb.queue[mb.head:])
			mb.queue = nq
		} else {
			n := copy(mb.queue, mb.queue[mb.head:])
			for i := n; i < len(mb.queue); i++ {
				mb.queue[i] = nil
			}
			mb.queue = mb.queue[:n]
		}
		mb.head = 0
	}
	return m
}

// localFabric connects n endpoints with in-process mailboxes.
type localFabric struct {
	boxes []*mailbox
}

// NewLocalFabric returns n connected in-process endpoints. Endpoint 0 is
// conventionally the GVT controller.
func NewLocalFabric(n int) []Endpoint {
	f := &localFabric{boxes: make([]*mailbox, n)}
	for i := range f.boxes {
		f.boxes[i] = newMailbox()
	}
	eps := make([]Endpoint, n)
	for i := range eps {
		eps[i] = &localEndpoint{fabric: f, self: i}
	}
	return eps
}

type localEndpoint struct {
	fabric *localFabric
	self   int
}

func (e *localEndpoint) Self() int { return e.self }
func (e *localEndpoint) N() int    { return len(e.fabric.boxes) }

func (e *localEndpoint) Send(dst int, m *Msg) {
	m.From = e.self
	e.fabric.boxes[dst].put(m)
}

func (e *localEndpoint) SendBatch(dst int, ms []*Msg) {
	for _, m := range ms {
		m.From = e.self
	}
	e.fabric.boxes[dst].putAll(ms)
}

func (e *localEndpoint) Recv() *Msg            { return e.fabric.boxes[e.self].take() }
func (e *localEndpoint) TryRecv() (*Msg, bool) { return e.fabric.boxes[e.self].tryTake() }
func (e *localEndpoint) QueueLen() int         { return e.fabric.boxes[e.self].depth() }

// TryRecvAll implements batchReceiver.
func (e *localEndpoint) TryRecvAll(buf []*Msg) []*Msg {
	return e.fabric.boxes[e.self].drainAll(buf)
}

// Poison kills the whole local fabric: every endpoint of this process starts
// returning poison, matching the PoisonMsg contract for a dead substrate.
func (e *localEndpoint) Poison(err error) {
	for _, mb := range e.fabric.boxes {
		mb.poisonWith(err)
	}
}
