package pdes

import (
	"math/rand"
	"testing"

	"govhdl/internal/vtime"
)

func TestEventHeapOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h eventHeap
	const n = 500
	for i := 0; i < n; i++ {
		h.Push(&Event{
			ID: uint64(i),
			TS: vtime.VT{PT: vtime.Time(rng.Intn(20)), LT: uint64(rng.Intn(5))},
		})
	}
	if h.Len() != n {
		t.Fatalf("Len = %d", h.Len())
	}
	prev := vtime.VT{}
	for i := 0; i < n; i++ {
		if got := h.Peek(); got != h.a[0] {
			t.Fatal("Peek != heap top")
		}
		e := h.Pop()
		if e.TS.Less(prev) {
			t.Fatalf("pop %d out of order: %v after %v", i, e.TS, prev)
		}
		prev = e.TS
	}
	if h.Pop() != nil || h.Peek() != nil {
		t.Error("empty heap returned non-nil")
	}
	if h.MinTS() != vtime.Inf {
		t.Error("empty heap MinTS != Inf")
	}
}

func TestEventHeapDeterministicTiebreak(t *testing.T) {
	// Equal timestamps pop in ID order.
	var h eventHeap
	ts := vtime.VT{PT: 5}
	for _, id := range []uint64{3, 1, 2} {
		h.Push(&Event{ID: id, TS: ts})
	}
	for want := uint64(1); want <= 3; want++ {
		if got := h.Pop().ID; got != want {
			t.Fatalf("popped ID %d, want %d", got, want)
		}
	}
}

func TestEventHeapRemoveMatching(t *testing.T) {
	var h eventHeap
	for i := 1; i <= 10; i++ {
		h.Push(&Event{ID: uint64(i), TS: vtime.VT{PT: vtime.Time(i)}})
	}
	got := h.RemoveMatching(func(e *Event) bool { return e.ID == 5 })
	if got == nil || got.ID != 5 {
		t.Fatalf("RemoveMatching = %v", got)
	}
	if h.RemoveMatching(func(e *Event) bool { return e.ID == 5 }) != nil {
		t.Error("removed twice")
	}
	if h.Len() != 9 {
		t.Fatalf("Len = %d", h.Len())
	}
	prev := vtime.VT{}
	for h.Len() > 0 {
		e := h.Pop()
		if e.TS.Less(prev) {
			t.Fatal("heap order broken after RemoveMatching")
		}
		prev = e.TS
	}
}

func TestMailboxFIFOPerSender(t *testing.T) {
	eps := NewLocalFabric(3)
	// Two senders interleave into endpoint 0; per-sender order must hold.
	done := make(chan struct{}, 2)
	const n = 200
	for s := 1; s <= 2; s++ {
		go func(s int) {
			for i := 0; i < n; i++ {
				eps[s].Send(0, &Msg{Kind: msgEvent, Round: uint64(i)})
			}
			done <- struct{}{}
		}(s)
	}
	next := map[int]uint64{}
	for i := 0; i < 2*n; i++ {
		m := eps[0].Recv()
		if m.Round != next[m.From] {
			t.Fatalf("sender %d out of order: got %d want %d", m.From, m.Round, next[m.From])
		}
		next[m.From]++
	}
	<-done
	<-done
	if _, ok := eps[0].TryRecv(); ok {
		t.Error("unexpected extra message")
	}
}

func TestMailboxTryRecv(t *testing.T) {
	eps := NewLocalFabric(2)
	if _, ok := eps[0].TryRecv(); ok {
		t.Fatal("TryRecv on empty mailbox succeeded")
	}
	eps[1].Send(0, &Msg{Kind: msgNull})
	m, ok := eps[0].TryRecv()
	if !ok || m.Kind != msgNull || m.From != 1 {
		t.Fatalf("TryRecv = %v, %v", m, ok)
	}
}

func TestMailboxCompaction(t *testing.T) {
	// Interleaved put/take must not lose or duplicate messages when the
	// ring compacts.
	mb := newMailbox()
	var sent, got uint64
	for round := 0; round < 50; round++ {
		for i := 0; i < 37; i++ {
			mb.put(&Msg{Round: sent})
			sent++
		}
		for i := 0; i < 37; i++ {
			m, ok := mb.tryTake()
			if !ok || m.Round != got {
				t.Fatalf("round %d: got %v ok=%v want %d", round, m, ok, got)
			}
			got++
		}
	}
}

func TestTokenHeap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var h tokenHeap
	lp := &lpRT{}
	for i := 0; i < 300; i++ {
		h.push(lpToken{ts: vtime.VT{PT: vtime.Time(rng.Intn(50))}, seq: uint64(i), lp: lp})
	}
	prev := vtime.VT{}
	prevSeq := uint64(0)
	for len(h) > 0 {
		tok := h.pop()
		if tok.ts.Less(prev) {
			t.Fatal("token heap out of order")
		}
		if tok.ts == prev && tok.seq < prevSeq {
			t.Fatal("token heap tiebreak broken")
		}
		prev, prevSeq = tok.ts, tok.seq
	}
}
