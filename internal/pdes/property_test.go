package pdes

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

// TestPropertyProtocolsAgree: for randomly sized relay rings and arbitrary
// protocol/worker/checkpoint/lookahead combinations, the committed parallel
// trace equals the sequential oracle's. This is the paper's correctness
// claim as a property test.
func TestPropertyProtocolsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	type params struct {
		N        uint8
		Seeds    uint8
		X0       uint8
		Workers  uint8
		Proto    uint8
		Ckpt     uint8
		La       bool
		GVTEvery uint16
	}
	run := func(p params) bool {
		n := int(p.N%10) + 3
		seeds := int(p.Seeds%3) + 1
		x0 := int(p.X0%20) + 8
		workers := int(p.Workers%5) + 1
		if workers > n {
			workers = n // Run rejects workers that would own nothing
		}
		protos := []Protocol{ProtoConservative, ProtoOptimistic, ProtoMixed, ProtoDynamic}
		proto := protos[int(p.Proto)%len(protos)]
		ckpt := int(p.Ckpt%4) + 1
		gvtEvery := int(p.GVTEvery%512) + 32

		wantSys, _ := buildRelayRing(n, seeds, x0)
		want := &collector{}
		if _, err := RunSequential(wantSys, relayHorizon, want); err != nil {
			t.Logf("sequential: %v", err)
			return false
		}
		sys, _ := buildRelayRing(n, seeds, x0)
		sink := &collector{}
		_, err := Run(sys, Config{
			Workers:         workers,
			Protocol:        proto,
			Lookahead:       p.La,
			CheckpointEvery: ckpt,
			GVTEvery:        gvtEvery,
		}, relayHorizon, sink)
		if err != nil {
			t.Logf("%+v: %v", p, err)
			return false
		}
		g, w := sink.sorted(), want.sorted()
		if strings.Join(g, "\n") != strings.Join(w, "\n") {
			t.Logf("%+v: trace mismatch (%d vs %d records)", p, len(g), len(w))
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(run, cfg); err != nil {
		t.Fatal(err)
	}
}

func buildRelayRingT(t *testing.T, n, seeds, x0 int) *System {
	t.Helper()
	sys, _ := buildRelayRing(n, seeds, x0)
	return sys
}

// TestPartitionsAgree: both partitioning strategies commit the same trace.
func TestPartitionsAgree(t *testing.T) {
	want, _ := runOracle(t, 12, 3, 30)
	for _, part := range []Partition{PartitionRoundRobin, PartitionBlock} {
		sys := buildRelayRingT(t, 12, 3, 30)
		sink := &collector{}
		if _, err := Run(sys, Config{
			Workers: 4, Protocol: ProtoDynamic, Partition: part, GVTEvery: 128,
		}, relayHorizon, sink); err != nil {
			t.Fatalf("partition %d: %v", part, err)
		}
		got := sink.sorted()
		if strings.Join(got, "\n") != strings.Join(want, "\n") {
			t.Errorf("partition %d: trace mismatch", part)
		}
	}
}

// TestManyWorkersFewLPs: more workers than LPs must still be correct at the
// protocol level (some workers own nothing). Run rejects the configuration
// as wasteful, so this exercises the internal entry point directly.
func TestManyWorkersFewLPs(t *testing.T) {
	want, _ := runOracle(t, 3, 1, 12)
	sys := buildRelayRingT(t, 3, 1, 12)
	sink := &collector{}
	if _, err := runParallel(sys, Config{Workers: 8, Protocol: ProtoOptimistic, GVTEvery: 64},
		relayHorizon, sink); err != nil {
		t.Fatal(err)
	}
	got := sink.sorted()
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("trace mismatch with idle workers: %d vs %d", len(got), len(want))
	}
}

// TestRunRejectsExcessWorkers: the public entry point refuses a worker count
// above the LP count with an explanatory error.
func TestRunRejectsExcessWorkers(t *testing.T) {
	sys := buildRelayRingT(t, 3, 1, 12)
	_, err := Run(sys, Config{Workers: 8, Protocol: ProtoOptimistic}, relayHorizon, nil)
	if err == nil || !strings.Contains(err.Error(), "exceeds the number of LPs") {
		t.Fatalf("want excess-workers rejection, got %v", err)
	}
}

// TestValidateRejectsOverflowedThrottle: a negative throttle window cast into
// the unsigned vtime.Time must be rejected rather than silently acting as a
// near-infinite bound.
func TestValidateRejectsOverflowedThrottle(t *testing.T) {
	sys := buildRelayRingT(t, 3, 1, 12)
	cfg := Config{Workers: 2, Protocol: ProtoOptimistic}
	cfg.ThrottleWindow = ^cfg.ThrottleWindow // i.e. vtime.Time(-1)
	_, err := Run(sys, cfg, relayHorizon, nil)
	if err == nil || !strings.Contains(err.Error(), "ThrottleWindow") {
		t.Fatalf("want ThrottleWindow rejection, got %v", err)
	}
	// The ablations' "practically unbounded" value of half the range stays
	// legal.
	cfg.ThrottleWindow = 1<<63 - 1
	if err := cfg.Validate(); err != nil {
		t.Fatalf("half-range window must validate, got %v", err)
	}
}

// TestEmptySystem: a system whose models schedule nothing terminates
// immediately at every protocol.
func TestEmptySystem(t *testing.T) {
	for _, proto := range []Protocol{ProtoConservative, ProtoOptimistic, ProtoDynamic} {
		sys := NewSystem()
		m := &relay{} // no seeds: Init schedules nothing
		sys.AddLP("idle", m)
		res, err := runParallel(sys, Config{Workers: 2, Protocol: proto, GVTEvery: 64}, relayHorizon, nil)
		if err != nil {
			t.Fatalf("%v: %v", proto, err)
		}
		if res.Metrics.Events != 0 {
			t.Errorf("%v: events on an empty system", proto)
		}
	}
}

// TestZeroHorizon: nothing before time zero exists, so nothing runs.
func TestZeroHorizon(t *testing.T) {
	sys := buildRelayRingT(t, 6, 2, 10)
	res, err := Run(sys, Config{Workers: 2, Protocol: ProtoOptimistic, GVTEvery: 64}, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Events != 0 {
		t.Errorf("events processed past a zero horizon: %d", res.Metrics.Events)
	}
}

// TestRepeatedRunsFreshSystems: protocol runs do not leak state between
// separately built systems (a regression guard for global state).
func TestRepeatedRunsFreshSystems(t *testing.T) {
	var first string
	for i := 0; i < 3; i++ {
		sys := buildRelayRingT(t, 8, 2, 20)
		sink := &collector{}
		if _, err := Run(sys, Config{Workers: 3, Protocol: ProtoDynamic, GVTEvery: 128},
			relayHorizon, sink); err != nil {
			t.Fatal(err)
		}
		s := fmt.Sprint(sink.sorted())
		if i == 0 {
			first = s
		} else if s != first {
			t.Fatalf("run %d diverged", i)
		}
	}
}
