package pdes

import "govhdl/internal/vtime"

// procRec is one processed event in an optimistic LP's history. Sends are
// recorded by value (antiRec) rather than by pointer so the receiving worker
// exclusively owns the emitted Event objects and can recycle them (pool.go).
// The state snapshot may be shared between consecutive records (and with
// lpRT.lastSnap) when the model reports an unchanged StateVersion; snapshots
// are contractually immutable, so sharing is safe.
type procRec struct {
	ev    *Event
	state any       // model snapshot taken before executing ev; nil between checkpoints
	sends []antiRec // events emitted while executing ev (for anti-messages)
	recs  []any     // trace records emitted while executing ev
	// mem is the Config.MemBudget charge taken for this record (record +
	// snapshot + send records); credited back when the record is destroyed
	// (commit, fossil collection or rollback). Zero when no budget is set.
	mem int64
}

// edgeIn is the receiver-side state of one static input edge.
type edgeIn struct {
	src     LPID
	cc      vtime.VT // channel clock: no future event from src arrives before cc
	srcCons bool     // whether src is currently conservative (cc trustworthy)
}

// lpRT is the engine-side runtime of one LP.
type lpRT struct {
	decl  *lpDecl
	model Model
	mode  Mode

	pending   eventHeap
	processed []procRec // optimistic history, nondecreasing event timestamps
	orphans   []*Event  // anti-messages whose positive has not arrived (defensive)

	now   vtime.VT // timestamp of the last processed event
	floor vtime.VT // commit horizon: nothing at or below floor can roll back

	sinceCkpt int  // executions since the last state snapshot
	queued    bool // present in the worker scheduling heap

	// Snapshot sharing (copy-on-write state saving): when the model reports
	// a StateVersion, the engine reuses lastSnap for every checkpoint taken
	// while the version is unchanged instead of deep-copying identical
	// state. Invalidated on rollback (RestoreState mutates the model).
	versioned VersionedModel
	lastSnap  any
	lastVer   uint64

	// snapBytes is the MemBudget charge for one real state snapshot of this
	// LP's model (MemSizedModel if implemented, else memSnapDefault).
	snapBytes int64

	lastPromise []vtime.VT // per out-edge (parallel to decl.out): last null promise

	// commitLog records every committed execution by value (checkpoint
	// runs only, see Config.CheckpointRounds): the restore path rebuilds
	// model state by replaying it, because model snapshots are opaque.
	commitLog []ckptEvent

	// Adaptation window counters, reset at each GVT round.
	execs       uint64 // events executed
	rolled      uint64 // events rolled back
	wakes       uint64 // scheduling attempts
	blockedHits uint64 // scheduling attempts with pending but unsafe events
	// switchRound is the GVT round of the last dynamic mode switch
	// (0 = never switched), for Config.AdaptCooldown.
	switchRound uint64

	edges  []edgeIn
	edgeOf map[LPID]int // src LPID -> index into edges
}

func newLPRT(d *lpDecl, mode Mode) *lpRT {
	lp := &lpRT{
		decl:   d,
		model:  d.model,
		mode:   mode,
		edgeOf: make(map[LPID]int, len(d.in)),
	}
	if vm, ok := d.model.(VersionedModel); ok {
		lp.versioned = vm
	}
	lp.snapBytes = memSnapDefault
	if sm, ok := d.model.(MemSizedModel); ok {
		if n := sm.SnapshotBytes(); n > 0 {
			lp.snapBytes = int64(n)
		}
	}
	lp.edges = make([]edgeIn, len(d.in))
	for i, src := range d.in {
		lp.edges[i] = edgeIn{src: src}
		lp.edgeOf[src] = i
	}
	lp.lastPromise = make([]vtime.VT, len(d.out))
	return lp
}

// guaranteeMin returns the earliest timestamp a future event could still
// arrive with: the minimum over input edges of the edge guarantee. The
// guarantee of an edge from a conservative LP is its channel clock (floored
// by GVT); from an optimistic LP it is GVT alone, since optimistic senders
// can cancel anything not yet committed. An LP with no inputs can never
// receive anything: +inf.
func (lp *lpRT) guaranteeMin(gvt vtime.VT) vtime.VT {
	min := vtime.Inf
	for i := range lp.edges {
		e := &lp.edges[i]
		g := gvt
		if e.srcCons && gvt.Less(e.cc) {
			g = e.cc
		}
		if g.Less(min) {
			min = g
		}
	}
	return min
}

// safeToProcess reports whether the minimum pending event may be processed
// by a conservative LP: no strictly-smaller event can still arrive
// (arbitrary ordering), or — for user-consistent ordering — no event with an
// equal timestamp either.
func (lp *lpRT) safeToProcess(gvt vtime.VT, user bool) bool {
	ts := lp.pending.MinTS()
	g := lp.guaranteeMin(gvt)
	if user {
		return ts.Less(g)
	}
	return ts.LessEq(g)
}

// promise returns the null-message promise this (conservative) LP can make.
// Sends triggered by an already-pending event happen at or after that
// event's timestamp; sends triggered by a future input happen at or after
// the input guarantee plus the LP's declared lookahead (the lookahead
// contract covers everything emitted while executing an input event,
// including self-schedules, which then appear in pending and bound later
// promises). The promise is the minimum of the two. Models implementing
// ActiveFaninModel narrow the input guarantee to the edges that can
// actually trigger an emission.
func (lp *lpRT) promise(gvt vtime.VT) vtime.VT {
	var g vtime.VT
	if am, ok := lp.model.(ActiveFaninModel); ok {
		if active := am.ActiveFanin(); active != nil {
			g = vtime.Inf
			for _, src := range active {
				i, ok := lp.edgeOf[src]
				if !ok {
					continue
				}
				e := &lp.edges[i]
				eg := gvt
				if e.srcCons && gvt.Less(e.cc) {
					eg = e.cc
				}
				if eg.Less(g) {
					g = eg
				}
			}
		} else {
			g = lp.guaranteeMin(gvt)
		}
	} else {
		g = lp.guaranteeMin(gvt)
	}
	if g != vtime.Inf {
		if la := lp.decl.lookahead; la > 0 {
			g = vtime.VT{PT: g.PT + la, LT: 0}
		} else if lt := lp.decl.lookaheadLT; lt > 0 {
			g = g.PlusPhases(lt)
		}
	}
	return vtime.Min(lp.pending.MinTS(), g)
}

// raiseCC raises the channel clock of the edge from src to at least ts,
// which must be the *sender's local time at send*, not the receive
// timestamp: a conservative LP processes events in nondecreasing order, so
// its local time is monotone and all its future sends are issued at or after
// it — but the receive timestamps themselves need not be monotone when send
// delays vary. Returns false if no such edge exists (self-delivery, or an
// undeclared edge, which the caller treats as a programming error for
// cross-LP events).
func (lp *lpRT) raiseCC(src LPID, ts vtime.VT) bool {
	i, ok := lp.edgeOf[src]
	if !ok {
		return src == lp.decl.id
	}
	if lp.edges[i].cc.Less(ts) {
		lp.edges[i].cc = ts
	}
	return true
}

// rollbackIndex returns the index of the first processed record strictly
// after ts (or at/after ts when inclusive), i.e. the rollback point for a
// straggler at ts. len(processed) means no rollback needed.
func (lp *lpRT) rollbackIndex(ts vtime.VT, inclusive bool) int {
	// Processed records are nondecreasing in timestamp; binary search.
	lo, hi := 0, len(lp.processed)
	for lo < hi {
		mid := (lo + hi) / 2
		mts := lp.processed[mid].ev.TS
		after := ts.Less(mts)
		if inclusive {
			after = after || mts == ts
		}
		if after {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// restoreBase returns the latest index j <= i whose record holds a state
// snapshot. The engine maintains the invariant that processed[0] always has
// a snapshot, so a base always exists for i >= 0.
func (lp *lpRT) restoreBase(i int) int {
	if i >= len(lp.processed) {
		i = len(lp.processed) - 1
	}
	for j := i; j >= 0; j-- {
		if lp.processed[j].state != nil {
			return j
		}
	}
	return -1
}
