package pdes

// Run-level supervision: the GVT stall watchdog and the shared accounting
// that the memory budget and the watchdog hang off.
//
// This file is the only place in the engine that reads the wall clock (it is
// allowlisted for the nondeterminism analyzer, like runner.go): supervision
// observes progress and memory, and may unwind or rescue a wedged run, but it
// never feeds wall-clock values into event processing — the committed trace
// of a run that completes is identical with or without a watchdog.

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"govhdl/internal/vtime"
)

// StallPolicy selects the remedy when committed GVT stops advancing.
type StallPolicy uint8

const (
	// StallFail dumps the diagnostic report and fails the run with a
	// SimError (the default).
	StallFail StallPolicy = iota
	// StallForceOpt first tries the paper's self-adaptive escape hatch:
	// force the blocked conservative LP with the earliest withheld event
	// into optimistic mode at the next GVT round, repeatedly if needed.
	// Only if that produces no progress either does the run fail with the
	// dump. The same policy turns the controller's deadlock detector from
	// an abort into a rescue.
	StallForceOpt
)

func (p StallPolicy) String() string {
	if p == StallForceOpt {
		return "force-opt"
	}
	return "fail"
}

// Approximate per-object byte charges for Config.MemBudget accounting. They
// deliberately over-approximate the struct sizes a little: the budget tracks
// reclaimable optimistic memory, and the slack covers heap and slice
// bookkeeping the runtime adds around each object.
const (
	// memPerRec covers one procRec plus the retained *Event it anchors.
	memPerRec = 192
	// memPerSend covers one antiRec send record.
	memPerSend = 48
	// memSnapDefault is charged per real state snapshot for models that do
	// not implement MemSizedModel.
	memSnapDefault = 256
	// memSnapShared is charged when copy-on-write state saving reuses the
	// previous snapshot: only a reference is retained.
	memSnapShared = 16
	// adaptSnapCap is the snapshot size above which the dynamic protocol
	// stops proposing Conservative -> Optimistic switches: the paper's
	// heavy-state rule applied at runtime. An LP whose state save costs
	// several defaults per event (a shard wrapping many members, a large
	// memory) pays that on every optimistic execution, a cost the
	// blocked-ratio heuristic cannot observe.
	adaptSnapCap = 4 * memSnapDefault
)

// runState is shared by the workers, the controller and the watchdog of one
// RunOn call: progress and memory accounting, plus the watchdog's requests.
// In distributed mode each process has its own runState; GVT advancement is
// observed by every process (workers bump progress when a broadcast raises
// their GVT), so each process's watchdog supervises independently.
type runState struct {
	// progress counts committed-GVT advancements; the watchdog only ever
	// compares successive values.
	progress atomic.Uint64
	// dumpEpoch asks workers to refresh their diagnostic snapshots: a worker
	// publishes when its local epoch lags, so a wedged worker is visible as
	// a stale snapshot rather than a blocked collection.
	dumpEpoch atomic.Uint32
	// forceOpt is the watchdog's pending rescue request, consumed by the
	// controller at its next GVT round.
	forceOpt atomic.Bool
	// memUsed/memPeak track Config.MemBudget bytes (see worker.memAdd).
	memUsed atomic.Int64
	memPeak atomic.Int64

	// Migration support (migrate.go, Config.Migrate runs only). All three are
	// written by RunOn before any worker starts; localModel entries are
	// mutated only by the worker owning the LP at a fully barriered migration
	// cut, so no extra synchronization is needed.
	//
	// hostedEps marks the endpoints this process hosts. localModel[id] records
	// whether this process's shared model object (System.lps[id].model) holds
	// the LP's current committed state — false once the LP migrates to
	// another process, true again after an install replays it. pristine[id] is
	// the model's pre-Init SaveState snapshot, the defined base an install
	// rebuilds a stale local model from.
	hostedEps  []bool
	localModel []bool
	pristine   []any
}

// takeForceOpt consumes a pending rescue request.
func (rs *runState) takeForceOpt() bool { return rs.forceOpt.CompareAndSwap(true, false) }

// LPDiag is one LP's entry in a stall report.
type LPDiag struct {
	LP         LPID
	Name       string
	Mode       Mode
	Now        vtime.VT // local virtual clock (last processed timestamp)
	Pending    int      // unprocessed events queued at the LP
	MinPending vtime.VT // earliest unprocessed timestamp (vtime.Inf when none)
	Guarantee  vtime.VT // earliest timestamp that could still arrive
	// BlockedOn names the in-edge bounding the guarantee when the LP is
	// conservative, has pending events and none are safe; NoLP otherwise.
	BlockedOn LPID
}

// WorkerDiag is one worker's entry in a stall report.
type WorkerDiag struct {
	Worker       int
	GVT          vtime.VT // last committed GVT this worker observed
	Paused       bool     // inside a GVT/checkpoint round at publish time
	Waiting      bool     // parked in a blocking Recv (snapshot is pre-block state)
	ExecTotal    uint64   // events executed so far
	MailboxDepth int      // messages waiting in the worker's endpoint
	// Stale marks a snapshot the worker failed to refresh for the report.
	// Combined with !Waiting it means the worker is likely wedged inside a
	// model Execute call; a Waiting worker's snapshot is simply its
	// (accurate) pre-block state.
	Stale bool
	LPs   []LPDiag
}

// StallReport is the diagnostic snapshot the watchdog assembles when GVT
// fails to advance within Config.StallTimeout.
type StallReport struct {
	GVT     vtime.VT      // last GVT this process observed
	Elapsed time.Duration // wall-clock time since the last advancement
	MemUsed int64         // tracked optimistic bytes (MemBudget runs only)
	Rescued bool          // a force-opt rescue was attempted before this dump
	Workers []WorkerDiag
}

// String renders the report for a terminal dump.
func (r *StallReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "stall watchdog: committed GVT stuck at %v for %v\n", r.GVT, r.Elapsed.Round(time.Millisecond))
	if r.MemUsed > 0 {
		fmt.Fprintf(&b, "  tracked optimistic memory: %d bytes\n", r.MemUsed)
	}
	if r.Rescued {
		b.WriteString("  force-opt rescue was attempted without effect\n")
	}
	for i := range r.Workers {
		w := &r.Workers[i]
		state := "running"
		if w.Paused {
			state = "paused (mid GVT/checkpoint round)"
		}
		if w.Waiting {
			state += ", blocked in Recv (waiting for messages that never arrived)"
		} else if w.Stale {
			state += ", UNRESPONSIVE (snapshot is stale; worker may be wedged in Execute)"
		}
		fmt.Fprintf(&b, "  worker %d: %s, %d events executed, mailbox depth %d\n",
			w.Worker, state, w.ExecTotal, w.MailboxDepth)
		for j := range w.LPs {
			lp := &w.LPs[j]
			fmt.Fprintf(&b, "    %-16s %-12v now=%v pending=%d", lp.Name, lp.Mode, lp.Now, lp.Pending)
			if lp.Pending > 0 {
				fmt.Fprintf(&b, " min=%v guarantee=%v", lp.MinPending, lp.Guarantee)
			}
			if lp.BlockedOn != NoLP {
				fmt.Fprintf(&b, " blocked-on=LP%d", lp.BlockedOn)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// watchdog supervises one RunOn call from its own goroutine.
type watchdog struct {
	rs      *runState
	cfg     *Config
	workers []*worker
	eps     []Endpoint
	stop    chan struct{}
	done    chan struct{}
}

// startWatchdog arms the stall watchdog. The returned function stops it and
// waits for its goroutine; RunOn calls it once the run has unwound.
func startWatchdog(rs *runState, cfg *Config, workers []*worker, eps []Endpoint) func() {
	wd := &watchdog{
		rs:      rs,
		cfg:     cfg,
		workers: workers,
		eps:     eps,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	go wd.run()
	return func() {
		close(wd.stop)
		<-wd.done
	}
}

func (wd *watchdog) run() {
	defer close(wd.done)
	timeout := wd.cfg.StallTimeout
	t := time.NewTimer(timeout)
	defer t.Stop()
	last := wd.rs.progress.Load()
	lastAdvance := time.Now()
	rescued := false
	for {
		select {
		case <-wd.stop:
			return
		case <-t.C:
		}
		if p := wd.rs.progress.Load(); p != last {
			last, lastAdvance, rescued = p, time.Now(), false
			t.Reset(timeout)
			continue
		}
		report := wd.collect(time.Since(lastAdvance), rescued)
		if wd.cfg.StallPolicy == StallForceOpt && !rescued {
			// Ask the controller to force the most-starved blocked
			// conservative LP optimistic at its next round, then watch for
			// one more window before declaring the run wedged. The request
			// only helps if rounds still complete; a run wedged mid-round
			// falls through to the failure path on the next expiry.
			rescued = true
			wd.rs.forceOpt.Store(true)
			if wd.cfg.StallDump != nil {
				wd.cfg.StallDump(report)
			}
			t.Reset(timeout)
			continue
		}
		if wd.cfg.StallDump != nil {
			wd.cfg.StallDump(report)
		}
		err := &SimError{Text: fmt.Sprintf(
			"pdes: stall watchdog: committed GVT did not advance for %v (policy %v); see the diagnostic dump",
			report.Elapsed.Round(time.Millisecond), wd.cfg.StallPolicy), Stall: true}
		for _, ep := range wd.eps {
			ep.Poison(err)
		}
		return
	}
}

// collect gathers the diagnostic snapshot: it bumps the dump epoch, grants
// the workers a grace period to publish fresh state, then copies whatever
// each worker managed to publish (stale snapshots are flagged, not waited
// for — a wedged worker is precisely what the report must be able to show).
func (wd *watchdog) collect(elapsed time.Duration, rescued bool) *StallReport {
	epoch := wd.rs.dumpEpoch.Add(1)
	grace := wd.cfg.StallTimeout / 4
	if grace > 250*time.Millisecond {
		grace = 250 * time.Millisecond
	}
	if grace > 0 {
		select {
		case <-time.After(grace):
		case <-wd.stop:
		}
	}
	r := &StallReport{Elapsed: elapsed, MemUsed: wd.rs.memUsed.Load(), Rescued: rescued}
	for _, w := range wd.workers {
		d := w.copyDiag()
		d.Stale = w.diagEpochSeen() != epoch
		d.MailboxDepth = w.ep.QueueLen()
		if r.GVT.Less(d.GVT) {
			r.GVT = d.GVT
		}
		r.Workers = append(r.Workers, d)
	}
	return r
}
