package pdes

import (
	"strings"
	"testing"
	"testing/quick"
)

// TestPropertyRecyclingSafe: with use-after-free poisoning enabled, random
// optimistic workloads (stragglers, anti-messages, fossil collection, mode
// switches) never observe a recycled event through a live reference and never
// free one twice. put poisons the object, get unpoisons it, and checkLive
// panics on a stale pointer at the routing and execution boundaries — so a
// premature recycle of anything still reachable from a pending heap, a
// history record, or an in-flight anti-message fails loudly instead of
// corrupting the run. CI runs this under -race, which additionally checks the
// single-owner handoff of pooled objects between sender and receiver.
func TestPropertyRecyclingSafe(t *testing.T) {
	if testing.Short() {
		t.Skip("property test")
	}
	poolCheck.Store(true)
	defer poolCheck.Store(false)
	type params struct {
		N       uint8
		Seeds   uint8
		X0      uint8
		Workers uint8
		Proto   uint8
		Ckpt    uint8
		GVT     uint16
	}
	run := func(p params) bool {
		n := int(p.N%8) + 3
		seeds := int(p.Seeds%3) + 1
		x0 := int(p.X0%20) + 8
		workers := int(p.Workers%4) + 1
		if workers > n {
			workers = n
		}
		// Optimistic-heavy protocols: recycling is only interesting when
		// rollback, annihilation and fossil collection all happen.
		protos := []Protocol{ProtoOptimistic, ProtoMixed, ProtoDynamic}
		proto := protos[int(p.Proto)%len(protos)]
		ckpt := int(p.Ckpt%4) + 1
		gvtEvery := int(p.GVT%256) + 16

		wantSys, _ := buildRelayRing(n, seeds, x0)
		want := &collector{}
		if _, err := RunSequential(wantSys, relayHorizon, want); err != nil {
			t.Logf("sequential: %v", err)
			return false
		}
		sys, _ := buildRelayRing(n, seeds, x0)
		sink := &collector{}
		if _, err := Run(sys, Config{
			Workers:         workers,
			Protocol:        proto,
			CheckpointEvery: ckpt,
			GVTEvery:        gvtEvery,
		}, relayHorizon, sink); err != nil {
			t.Logf("%+v: %v", p, err)
			return false
		}
		// Bit-identical committed traces double as the safety oracle: a
		// recycled event that was still load-bearing would change them.
		if strings.Join(sink.sorted(), "\n") != strings.Join(want.sorted(), "\n") {
			t.Logf("%+v: trace mismatch", p)
			return false
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPoolPoisoningCatchesDoubleFree: the poisoning machinery itself works —
// a double put of the same event panics when checks are on.
func TestPoolPoisoningCatchesDoubleFree(t *testing.T) {
	poolCheck.Store(true)
	defer poolCheck.Store(false)
	var p eventPool
	e := p.get()
	p.put(e)
	defer func() {
		if recover() == nil {
			t.Fatal("double free went undetected")
		}
	}()
	p.put(e)
}
