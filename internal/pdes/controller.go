package pdes

import (
	"govhdl/internal/stats"
	"govhdl/internal/vtime"
)

// controller runs on endpoint 0 and coordinates the stop-the-world GVT
// rounds: pause every worker, match cumulative send/receive counts so no
// message is in transit, take the global minimum of unprocessed event
// timestamps, broadcast the new GVT together with mode switches, and detect
// termination and deadlock.
type controller struct {
	ep      Endpoint
	cfg     *Config
	horizon vtime.VT
	workers int // worker endpoints are 1..workers
	metrics *stats.Metrics
	modes   []Mode  // authoritative mode table
	sys     *System // for forced-mode declarations (stall rescue skips them)
	rs      *runState

	gvt        vtime.VT
	finalClock float64
	err        *SimError

	rounds        uint64
	prevGVT       vtime.VT
	prevProcessed uint64
	sinceCkpt     int // committed rounds since the last checkpoint cut
	// Adaptive GVT cadence (Config.GVTAdapt): the current interval and the
	// cumulative worker-to-worker message total at the previous round, whose
	// per-round delta measures the partition cut's traffic.
	interval int
	prevSent uint64

	// Per-round scratch and message pool: the round protocol gives the
	// controller exclusive use of these between a broadcast and the last
	// reply, so they are reused instead of reallocated every round.
	acks    []*Msg
	expect  []uint64
	msgs    msgPool
	blocked []BlockedLP // blocked conservative LPs reported in this round's acks

	// Migration (migrate.go, Config.Migrate runs only): the authoritative
	// LP-to-worker ownership table and the per-LP executed-event counts
	// accumulated from GVT acks since the last migration cut.
	owner []int
	loads []uint64
}

func newController(ep Endpoint, cfg *Config, horizon vtime.VT, modes []Mode, metrics *stats.Metrics) *controller {
	c := &controller{
		ep:      ep,
		cfg:     cfg,
		horizon: horizon,
		workers: ep.N() - 1,
		metrics: metrics,
		modes:   modes,
		acks:    make([]*Msg, ep.N()),
		expect:  make([]uint64, ep.N()),
	}
	if cfg.Migrate != nil {
		c.loads = make([]uint64, len(modes))
	}
	if cfg.Restore != nil {
		// GVT resumes from the restored cut; the monotonicity check holds
		// because every restored pending event is at or above it.
		c.gvt = cfg.Restore.GVT
		c.prevGVT = cfg.Restore.GVT
	}
	return c
}

func (c *controller) run() {
	// Wait until every worker has finished initialization.
	ready := make([]bool, c.workers+1)
	for n := 0; n < c.workers; {
		m := c.ep.Recv()
		switch m.Kind {
		case msgFatal:
			c.abort(m.Err)
			return
		case msgPoison:
			c.err = m.Err
			return
		case msgIdle:
			if !ready[m.From] {
				ready[m.From] = true
				n++
			}
			c.msgs.put(m)
		}
	}

	stallCandidate := true // the initial all-ready state counts as all-idle
	for {
		done, stopped := c.round(stallCandidate)
		if stopped || done {
			return
		}
		// Wait for the next trigger: a request, or all workers idle.
		idle := make([]bool, c.workers+1)
		idleCount := 0
		stallCandidate = false
		for {
			m := c.ep.Recv()
			if m.Kind == msgFatal {
				c.abort(m.Err)
				return
			}
			if m.Kind == msgPoison {
				c.err = m.Err
				return
			}
			if m.Kind != msgIdle {
				continue
			}
			req, isIdle, from := m.Request, m.Idle, m.From
			c.msgs.put(m)
			if req {
				break
			}
			if isIdle && !idle[from] {
				idle[from] = true
				idleCount++
			}
			if idleCount == c.workers {
				stallCandidate = true
				break
			}
		}
	}
}

// round performs one GVT round. stallCandidate marks rounds triggered by
// system-wide idleness; two consecutive such rounds without progress mean
// deadlock.
func (c *controller) round(stallCandidate bool) (done, stopped bool) {
	c.metrics.GVTRounds.Add(1)
	for w := 1; w <= c.workers; w++ {
		m := c.msgs.get()
		m.Kind = msgGVTPause
		c.ep.Send(w, m)
	}

	acks := c.acks
	for n := 0; n < c.workers; {
		m := c.ep.Recv()
		switch m.Kind {
		case msgFatal:
			c.abort(m.Err)
			return false, true
		case msgPoison:
			c.err = m.Err
			return false, true
		case msgGVTAck:
			if acks[m.From] == nil {
				acks[m.From] = m
				n++
			}
		case msgIdle:
			c.msgs.put(m) // stale trigger, dropped
		}
	}

	var totalProcessed uint64
	expect := c.expect
	for i := range expect {
		expect[i] = 0
	}
	var consLPs, optLPs []LPID
	c.blocked = c.blocked[:0]
	for w := 1; w <= c.workers; w++ {
		a := acks[w]
		// Copy blocked reports out of the ack before it is recycled.
		c.blocked = append(c.blocked, a.Blocked...)
		for _, l := range a.Loads {
			c.loads[l.LP] += l.Execs
		}
		// Null messages count as progress: under user-consistent
		// conservative ordering, channel-clock promises may need several
		// propagation hops (and several rounds) before any event becomes
		// processable. Only a round with no events AND no new promises is
		// a genuine stall.
		totalProcessed += a.Processed + a.Nulls
		for dst, n := range a.Sent {
			if dst >= 1 && dst <= c.workers {
				expect[dst] += n
			}
		}
		for _, mp := range a.Modes {
			if c.modes[mp.LP] == mp.Mode {
				continue
			}
			c.modes[mp.LP] = mp.Mode
			if mp.Mode == Conservative {
				consLPs = append(consLPs, mp.LP)
			} else {
				optLPs = append(optLPs, mp.LP)
			}
		}
	}

	// The acks (and the worker-owned Sent scratch they reference) are fully
	// consumed; recycle them before unblocking anyone.
	for w := 1; w <= c.workers; w++ {
		c.msgs.put(acks[w])
		acks[w] = nil
	}

	for w := 1; w <= c.workers; w++ {
		m := c.msgs.get()
		m.Kind, m.Expect = msgGVTDrain, expect[w]
		c.ep.Send(w, m)
	}

	gvt := vtime.Inf
	barrier := 0.0
	for n := 0; n < c.workers; {
		m := c.ep.Recv()
		switch m.Kind {
		case msgFatal:
			c.abort(m.Err)
			return false, true
		case msgPoison:
			c.err = m.Err
			return false, true
		case msgGVTMin:
			if m.Min.Less(gvt) {
				gvt = m.Min
			}
			if m.Clock > barrier {
				barrier = m.Clock
			}
			n++
			c.msgs.put(m)
		case msgIdle:
			c.msgs.put(m)
		}
	}

	if gvt.Less(c.gvt) {
		// GVT must be monotone; regression means an accounting bug.
		c.abort(&SimError{Text: "pdes: GVT regression: " + gvt.String() + " < " + c.gvt.String()})
		return false, true
	}
	c.gvt = gvt
	isDone := !gvt.Less(c.horizon)

	if c.rs != nil && (c.prevGVT.Less(gvt) || totalProcessed != c.prevProcessed) {
		// Progress for the stall watchdog: GVT advanced, or events/nulls were
		// processed beneath an unmoved GVT (still healthy).
		c.rs.progress.Add(1)
	}
	if c.cfg.OnGVT != nil {
		// Safe point for incremental trace consumption: the round's acks prove
		// every worker handled the previous msgGVTNew — and therefore finished
		// fossil-collecting (committing) everything below the previous GVT —
		// before pausing for this round.
		c.cfg.OnGVT(gvt)
	}

	deadlocked := !isDone && stallCandidate && c.rounds > 0 && gvt == c.prevGVT && totalProcessed == c.prevProcessed
	rescueAsked := c.rs != nil && c.rs.takeForceOpt()
	if (deadlocked || rescueAsked) && !isDone && c.cfg.StallPolicy == StallForceOpt {
		// The self-adaptive escape hatch: instead of aborting, force the
		// blocked conservative LP with the earliest withheld event into
		// optimistic mode. Each rescue unblocks at least that LP, and there
		// are finitely many conservative LPs, so repeated stalls terminate —
		// either the run completes or nothing rescuable remains and the
		// deadlock falls through to the failure path below.
		if lp, ok := c.pickRescue(); ok {
			c.modes[lp] = Optimistic
			optLPs = append(optLPs, lp)
			c.metrics.StallRescues.Add(1)
			deadlocked = false
		}
	}
	if deadlocked {
		c.abort(&SimError{Text: "pdes: deadlock: all workers idle, GVT stuck at " + gvt.String() +
			" (user-consistent conservative ordering without lookahead blocks, per the paper)", Stall: true})
		return false, true
	}
	if c.cfg.GVTAdapt && !isDone {
		var totalSent uint64
		for w := 1; w <= c.workers; w++ {
			totalSent += expect[w]
		}
		c.retuneCadence(totalSent-c.prevSent, totalProcessed-c.prevProcessed)
		c.prevSent = totalSent
	}
	c.rounds++
	c.prevGVT, c.prevProcessed = gvt, totalProcessed

	ckpt := false
	if !isDone && c.cfg.CheckpointRounds > 0 {
		c.sinceCkpt++
		if c.sinceCkpt >= c.cfg.CheckpointRounds {
			c.sinceCkpt = 0
			ckpt = true
		}
	}
	// A round ends in at most one cut; migration yields to a due checkpoint
	// and the planner simply sees the same state next round.
	var moves []Move
	if !isDone && !ckpt && c.cfg.Migrate != nil {
		var ok bool
		if moves, ok = c.planMoves(gvt); !ok {
			return false, true
		}
	}

	for w := 1; w <= c.workers; w++ {
		// The ConsLPs/OptLPs backing arrays are shared across the broadcast;
		// receivers only read them and recycling a Msg drops the slice
		// header without touching the array.
		m := c.msgs.get()
		m.Kind = msgGVTNew
		m.GVT = gvt
		m.Clock = barrier
		m.ConsLPs = consLPs
		m.OptLPs = optLPs
		m.Done = isDone
		m.Ckpt = ckpt
		m.NextGVT = c.interval
		m.Moves = moves
		c.ep.Send(w, m)
	}
	if isDone {
		c.finalClock = barrier + c.cfg.Costs.GVTCost
	}
	if ckpt {
		return false, c.checkpointRound(gvt)
	}
	if len(moves) > 0 {
		return false, c.migrationRound(gvt, moves)
	}
	return isDone, false
}

// retuneCadence adapts the GVT interval to the observed cut traffic: when
// few of the round's processed events crossed workers (a well-partitioned or
// sharded run — synchronization is pure overhead), the interval doubles;
// when the cut is dense (remote messages drive progress and bound optimism),
// it halves. Bounded by [GVTEvery, GVTEveryMax]. Only the event-count
// trigger is affected; idle-triggered rounds keep progress and termination
// independent of the cadence, and the committed trace is invariant to round
// timing by construction.
func (c *controller) retuneCadence(sentDelta, procDelta uint64) {
	if c.interval == 0 {
		c.interval = c.cfg.GVTEvery
	}
	switch {
	case sentDelta*8 < procDelta:
		c.interval *= 2
		if c.interval > c.cfg.GVTEveryMax {
			c.interval = c.cfg.GVTEveryMax
		}
	case sentDelta*2 > procDelta:
		c.interval /= 2
		if c.interval < c.cfg.GVTEvery {
			c.interval = c.cfg.GVTEvery
		}
	}
}

// checkpointRound coordinates a checkpoint cut after broadcasting a
// Ckpt-flagged msgGVTNew: collect every worker's post-commit counts, compute
// per-worker drain targets exactly as a GVT round does, gather the serialized
// states once each worker's inbox has drained, hand the assembled Checkpoint
// to the sink, and release the workers.
func (c *controller) checkpointRound(gvt vtime.VT) (stopped bool) {
	acks := c.acks
	for n := 0; n < c.workers; {
		m := c.ep.Recv()
		switch m.Kind {
		case msgFatal:
			c.abort(m.Err)
			return true
		case msgPoison:
			c.err = m.Err
			return true
		case msgCkptAck:
			if acks[m.From] == nil {
				acks[m.From] = m
				n++
			}
		case msgIdle:
			c.msgs.put(m) // stale trigger, dropped
		}
	}

	expect := c.expect
	for i := range expect {
		expect[i] = 0
	}
	for w := 1; w <= c.workers; w++ {
		for dst, n := range acks[w].Sent {
			if dst >= 1 && dst <= c.workers {
				expect[dst] += n
			}
		}
	}
	for w := 1; w <= c.workers; w++ {
		c.msgs.put(acks[w])
		acks[w] = nil
	}
	for w := 1; w <= c.workers; w++ {
		m := c.msgs.get()
		m.Kind, m.Expect = msgCkptDrain, expect[w]
		c.ep.Send(w, m)
	}

	blobs := make([][]byte, c.workers+1)
	for n := 0; n < c.workers; {
		m := c.ep.Recv()
		switch m.Kind {
		case msgFatal:
			c.abort(m.Err)
			return true
		case msgPoison:
			c.err = m.Err
			return true
		case msgCkptState:
			if blobs[m.From] == nil {
				blobs[m.From] = m.Blob
				n++
			}
			c.msgs.put(m)
		case msgIdle:
			c.msgs.put(m)
		}
	}

	ck := &Checkpoint{
		Format:  checkpointFormat,
		GVT:     gvt,
		Round:   c.rounds,
		Workers: c.workers,
		NumLPs:  len(c.modes),
		Modes:   append([]Mode(nil), c.modes...),
		Blobs:   blobs,
	}
	if sink := c.cfg.CheckpointSink; sink != nil {
		if err := sink(ck); err != nil {
			c.abort(&SimError{Text: "pdes: checkpoint sink: " + err.Error()})
			return true
		}
	}
	for w := 1; w <= c.workers; w++ {
		m := c.msgs.get()
		m.Kind = msgCkptDone
		c.ep.Send(w, m)
	}
	return false
}

// pickRescue chooses the stall-rescue victim from the round's blocked
// reports: the blocked conservative LP with the earliest withheld timestamp
// (ties broken by LP id, so the pick is deterministic regardless of ack
// arrival order). Forced-mode LPs are never adapted — the paper's heavy-state
// processes cannot save state, so they cannot run optimistically.
func (c *controller) pickRescue() (LPID, bool) {
	var best BlockedLP
	found := false
	for _, b := range c.blocked {
		if c.modes[b.LP] != Conservative || c.sys.lps[b.LP].forced {
			continue
		}
		if !found || b.TS.Less(best.TS) || (b.TS == best.TS && b.LP < best.LP) {
			best, found = b, true
		}
	}
	return best.LP, found
}

func (c *controller) abort(err *SimError) {
	c.err = err
	for w := 1; w <= c.workers; w++ {
		c.ep.Send(w, &Msg{Kind: msgStop, Err: err})
	}
}
