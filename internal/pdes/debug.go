package pdes

import "fmt"

// Debug instrumentation. Both hooks are inert in production: dbgID is a
// single predictable branch on the hot paths, and debugOrphanHook is nil
// unless a test installs it. They exist because the hardest engine bugs
// (lost anti-messages, GVT/fossil races) are only diagnosable by following
// one event's full lifecycle across workers — see
// TestRegressionDeferredAntiGVT for the bug that motivated them.

// debugTraceID, when nonzero, logs every engine action touching that event
// ID.
var debugTraceID uint64

// dbgID logs one engine action for the traced event.
func dbgID(w *worker, where string, e *Event, extra string) {
	if debugTraceID == 0 || e == nil || e.ID != debugTraceID {
		return
	}
	fmt.Printf("TRACE[%x] worker=%d %s %v neg=%v gvt=%v paused=%v %s\n",
		e.ID, w.ep.Self(), where, e.TS, e.Neg, w.gvt, w.paused, extra)
}
