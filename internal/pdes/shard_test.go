package pdes

import (
	"encoding/gob"
	"fmt"
	"strings"
	"testing"

	"govhdl/internal/vtime"
)

func init() {
	gob.Register(0) // relay token payloads inside sharded checkpoint blobs
}

// runShardedRing builds a fresh relay ring, shards it and runs the shard
// system, returning the member-attributed sorted trace and final sums.
func runShardedRing(t *testing.T, n, seeds, x0, shards int, part Partition, cfg Config) ([]string, []int64) {
	t.Helper()
	sys, models := buildRelayRing(n, seeds, x0)
	ss, err := ShardSystem(sys, shards, part)
	if err != nil {
		t.Fatalf("ShardSystem: %v", err)
	}
	sink := &collector{}
	res, err := Run(ss.Sys(), cfg, relayHorizon, ss.WrapSink(sink))
	if err != nil {
		t.Fatalf("sharded run: %v", err)
	}
	if res.GVT.Less(vtime.VT{PT: relayHorizon}) {
		t.Errorf("final GVT %v below horizon", res.GVT)
	}
	sums := make([]int64, n)
	for i, m := range models {
		sums[i] = m.sum
	}
	return sink.sorted(), sums
}

// TestShardedMatchesSequential is the core sharding invariant: any shard
// count, worker count, protocol and partitioner must reproduce the
// sequential oracle's committed trace and final model states exactly.
func TestShardedMatchesSequential(t *testing.T) {
	const n, seeds, x0 = 12, 3, 40
	want, wantSums := runOracle(t, n, seeds, x0)
	protos := []Protocol{ProtoConservative, ProtoOptimistic, ProtoMixed, ProtoDynamic}
	for _, proto := range protos {
		for _, shards := range []int{1, 3, 5} {
			for _, part := range []Partition{PartitionRoundRobin, PartitionTopo} {
				workers := shards
				if workers > 2 {
					workers = 2
				}
				name := fmt.Sprintf("%v/s%d/p%d", proto, shards, part)
				t.Run(name, func(t *testing.T) {
					got, sums := runShardedRing(t, n, seeds, x0, shards, part, Config{
						Workers:   workers,
						Protocol:  proto,
						Lookahead: true,
						GVTEvery:  256,
					})
					if strings.Join(got, "\n") != strings.Join(want, "\n") {
						t.Errorf("trace mismatch: got %d records, want %d", len(got), len(want))
						for i := 0; i < len(got) && i < len(want); i++ {
							if got[i] != want[i] {
								t.Errorf("first diff at %d: got %q want %q", i, got[i], want[i])
								break
							}
						}
					}
					for i := range sums {
						if sums[i] != wantSums[i] {
							t.Errorf("relay%d sum = %d, want %d", i, sums[i], wantSums[i])
						}
					}
				})
			}
		}
	}
}

// TestShardedAdaptiveGVT checks that the cut-traffic-adaptive cadence leaves
// the committed trace untouched.
func TestShardedAdaptiveGVT(t *testing.T) {
	const n, seeds, x0 = 12, 3, 40
	want, _ := runOracle(t, n, seeds, x0)
	got, _ := runShardedRing(t, n, seeds, x0, 4, PartitionTopo, Config{
		Workers:     2,
		Protocol:    ProtoDynamic,
		Lookahead:   true,
		GVTEvery:    64,
		GVTAdapt:    true,
		GVTEveryMax: 4096,
	})
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("adaptive-GVT trace mismatch: got %d records, want %d", len(got), len(want))
	}
}

// TestShardedThrottled exercises shard rollback under a tight optimism
// window and memory budget, where shard snapshots are saved and restored
// constantly.
func TestShardedThrottled(t *testing.T) {
	const n, seeds, x0 = 12, 3, 40
	want, wantSums := runOracle(t, n, seeds, x0)
	got, sums := runShardedRing(t, n, seeds, x0, 4, PartitionTopo, Config{
		Workers:        2,
		Protocol:       ProtoOptimistic,
		GVTEvery:       64,
		ThrottleWindow: 20 * vtime.NS,
		MemBudget:      1 << 20,
	})
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("throttled sharded trace mismatch: got %d records, want %d", len(got), len(want))
	}
	for i := range sums {
		if sums[i] != wantSums[i] {
			t.Errorf("relay%d sum = %d, want %d", i, sums[i], wantSums[i])
		}
	}
}

// TestShardedCheckpointRestore takes a checkpoint mid-run of a sharded
// system and restores it into a freshly built sharded system: the restored
// run must complete with the oracle's trace.
func TestShardedCheckpointRestore(t *testing.T) {
	const n, seeds, x0, shards = 12, 3, 40, 4
	want, _ := runOracle(t, n, seeds, x0)

	var ck *Checkpoint
	cfg := Config{
		Workers:          2,
		Protocol:         ProtoMixed,
		GVTEvery:         32,
		CheckpointRounds: 2,
		CheckpointSink: func(c *Checkpoint) error {
			if ck == nil {
				ck = c // keep the first cut: restore replays the most history
			}
			return nil
		},
	}
	if _, _ = runShardedRing(t, n, seeds, x0, shards, PartitionTopo, cfg); ck == nil {
		t.Skip("run finished before the first checkpoint cut")
	}

	sys, models := buildRelayRing(n, seeds, x0)
	ss, err := ShardSystem(sys, shards, PartitionTopo)
	if err != nil {
		t.Fatalf("ShardSystem: %v", err)
	}
	sink := &collector{}
	cfg.Restore = ck
	cfg.CheckpointSink = func(*Checkpoint) error { return nil }
	if _, err := Run(ss.Sys(), cfg, relayHorizon, ss.WrapSink(sink)); err != nil {
		t.Fatalf("restored sharded run: %v", err)
	}
	got := sink.sorted()
	if strings.Join(got, "\n") != strings.Join(want, "\n") {
		t.Errorf("restored trace mismatch: got %d records, want %d", len(got), len(want))
		for i := 0; i < len(got) && i < len(want); i++ {
			if got[i] != want[i] {
				t.Errorf("first diff at %d: got %q want %q", i, got[i], want[i])
				break
			}
		}
	}
	_ = models
}

func TestShardSystemValidation(t *testing.T) {
	sys, _ := buildRelayRing(6, 2, 10)
	if _, err := ShardSystem(sys, 0, PartitionTopo); err == nil {
		t.Error("0 shards not rejected")
	}
	if _, err := ShardSystem(sys, 7, PartitionTopo); err == nil {
		t.Error("more shards than LPs not rejected")
	}
	sys2, _ := buildRelayRing(6, 2, 10)
	sys2.SetComparator(func(a, b *Event) bool { return a.ID < b.ID })
	if _, err := ShardSystem(sys2, 2, PartitionTopo); err == nil {
		t.Error("user-consistent comparator not rejected")
	}
}

// cutSize counts directed edges crossing the partition.
func cutSize(sys *System, groups [][]LPID) int {
	owner := make([]int, sys.NumLPs())
	for p, g := range groups {
		for _, id := range g {
			owner[id] = p
		}
	}
	cut := 0
	for id := 0; id < sys.NumLPs(); id++ {
		for _, dst := range sys.Fanout(LPID(id)) {
			if owner[id] != owner[dst] {
				cut++
			}
		}
	}
	return cut
}

// TestTopoPartition checks balance, determinism, full coverage and that the
// topology-aware cut beats round-robin on a locally connected graph.
func TestTopoPartition(t *testing.T) {
	sys, _ := buildRelayRing(24, 4, 20)
	const parts = 4
	topo := sys.partition(PartitionTopo, parts)
	again := sys.partition(PartitionTopo, parts)
	seen := make([]bool, sys.NumLPs())
	total := 0
	for p, g := range topo {
		if len(g) < 5 || len(g) > 7 {
			t.Errorf("part %d has %d LPs, want balanced (~6)", p, len(g))
		}
		total += len(g)
		for i, id := range g {
			if seen[id] {
				t.Errorf("LP %d assigned twice", id)
			}
			seen[id] = true
			if again[p][i] != id {
				t.Fatalf("topoPartition is not deterministic at part %d index %d", p, i)
			}
		}
	}
	if total != sys.NumLPs() {
		t.Fatalf("assigned %d of %d LPs", total, sys.NumLPs())
	}
	rr := sys.partition(PartitionRoundRobin, parts)
	if ct, cr := cutSize(sys, topo), cutSize(sys, rr); ct >= cr {
		t.Errorf("topo cut %d not smaller than round-robin cut %d", ct, cr)
	}
}

// TestShardLookahead checks the entry-to-exit path bound on a hand-built
// chain: in(other shard) -> a(la 2ns) -> b(la 3ns) -> out(other shard).
func TestShardLookahead(t *testing.T) {
	sys := NewSystem()
	mk := func(name string, la vtime.Time, lt uint64) LPID {
		return sys.AddLP(name, &relay{}, WithLookahead(la), WithLTLookahead(lt))
	}
	in := mk("in", 0, 0)
	a := mk("a", 2*vtime.NS, 1)
	b := mk("b", 3*vtime.NS, 2)
	out := mk("out", 0, 0)
	sys.Connect(in, a)
	sys.Connect(a, b)
	sys.Connect(b, out)

	shardOf := []LPID{0, 1, 1, 2}
	pt, lt, bounded := shardLookahead(sys, shardOf, 1, []LPID{a, b})
	if !bounded {
		t.Fatal("chain shard reported unbounded")
	}
	if pt != 5*vtime.NS {
		t.Errorf("PT lookahead = %v, want 5ns", pt)
	}
	if lt != 3 {
		t.Errorf("LT lookahead = %d, want 3", lt)
	}

	// A shard whose members never feed another shard has no exit: bounded
	// must be false so the promise relies on pending events alone.
	if _, _, bounded := shardLookahead(sys, []LPID{0, 0, 1, 1}, 1, []LPID{b, out}); bounded {
		// b -> out is intra-shard and out has no fan-out; no exit exists.
		t.Error("exit-free shard reported bounded")
	}
}

// TestMailboxTryRecvAll checks the batched drain: order preserved, queue
// emptied, and a blocked take still wakes under the waiting-gated Signal.
func TestMailboxTryRecvAll(t *testing.T) {
	eps := NewLocalFabric(2)
	br, ok := eps[1].(batchReceiver)
	if !ok {
		t.Fatal("local endpoint does not implement batchReceiver")
	}
	for i := 0; i < 5; i++ {
		eps[0].Send(1, &Msg{Kind: msgEvent, Round: uint64(i)})
	}
	buf := br.TryRecvAll(nil)
	if len(buf) != 5 {
		t.Fatalf("drained %d messages, want 5", len(buf))
	}
	for i, m := range buf {
		if m.Round != uint64(i) {
			t.Fatalf("message %d out of order: Round=%d", i, m.Round)
		}
	}
	if got := br.TryRecvAll(buf[:0]); len(got) != 0 {
		t.Fatalf("second drain returned %d messages", len(got))
	}
	done := make(chan *Msg)
	go func() { done <- eps[1].Recv() }()
	eps[0].Send(1, &Msg{Kind: msgNull})
	if m := <-done; m.Kind != msgNull {
		t.Fatalf("blocked Recv woke with kind %d", m.Kind)
	}
}

// TestModeProposalsHeavyStateStaysConservative checks the paper's heavy-state
// rule in the dynamic adaptor: a conservative LP whose snapshot is far above
// the default (a shard wrapping many members, a large memory) is never
// proposed for optimism however often it blocks, because it would pay that
// snapshot on every optimistic execution.
func TestModeProposalsHeavyStateStaysConservative(t *testing.T) {
	cfg := Config{Protocol: ProtoDynamic}
	cfg.fillDefaults()
	mk := func(id LPID, snap int64) *lpRT {
		return &lpRT{
			decl:        &lpDecl{id: id},
			mode:        Conservative,
			wakes:       16,
			blockedHits: 16, // blocked on every wake: maximally opt-eligible
			snapBytes:   snap,
		}
	}
	light := mk(0, memSnapDefault)
	heavy := mk(1, adaptSnapCap+1)
	w := &worker{cfg: &cfg, owned: []*lpRT{light, heavy}}
	props := w.modeProposals()
	if len(props) != 1 {
		t.Fatalf("got %d proposals %v, want exactly 1 (the light LP)", len(props), props)
	}
	if props[0].LP != 0 || props[0].Mode != Optimistic {
		t.Fatalf("proposal %v, want LP 0 -> Optimistic", props[0])
	}
}
