// Package faultinject wraps the PDES message substrate with deterministic,
// seeded fault injection for robustness testing: wire-level faults (killed,
// truncated, muted, or delayed connections) compose with package transport
// via WithConnWrapper, and fabric-level faults (process death after N sends,
// randomized send delays) wrap any []pdes.Endpoint, including the in-process
// fabric, via WrapFabric.
//
// Everything is driven by a Plan with an explicit Seed, so a chaos run that
// exposes a bug is replayable: the same seed produces the same fault
// schedule relative to the traffic pattern.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"

	"govhdl/internal/pdes"
)

// Plan schedules the faults to inject. The zero value injects nothing.
// Counters are per connection (wire faults) or per endpoint (fabric faults).
type Plan struct {
	// Seed drives every randomized decision. Per-endpoint generators are
	// derived as Seed+self so endpoints fault independently but repeatably.
	Seed int64

	// Wire faults (transport.WithConnWrapper via Plan.Conn).

	// KillAfterWrites hard-closes the connection on write number N+1,
	// simulating abrupt process death. 0 disables.
	KillAfterWrites int
	// TruncateOnKill writes half of the fatal frame before closing, so the
	// survivor sees a corrupt stream instead of a clean EOF.
	TruncateOnKill bool
	// MuteAfterWrites blackholes writes after N, keeping the connection
	// open but silent — the failure mode heartbeat timeouts exist for.
	// 0 disables.
	MuteAfterWrites int
	// WriteDelayEvery sleeps WriteDelay before every Nth write. 0 disables.
	WriteDelayEvery int
	WriteDelay      time.Duration
	// ReadDelayEvery sleeps ReadDelay before every Nth read. 0 disables.
	ReadDelayEvery int
	ReadDelay      time.Duration
	// JoinDelay postpones the connection's very first write (the handshake
	// hello) by this duration, simulating a node that joins the cluster late:
	// a slow container start, a delayed dial, an operator adding capacity
	// mid-run. The connection behaves normally afterwards. 0 disables.
	JoinDelay time.Duration

	// Fabric faults (WrapFabric).

	// DieAfterSends kills the whole wrapped fabric after N sends from any
	// single endpoint: subsequent sends are dropped and every Recv/TryRecv
	// returns poison, simulating process death under the in-process
	// fabric. 0 disables.
	DieAfterSends int
	// MuteAfterSends silently drops each endpoint's sends after its Nth,
	// WITHOUT killing the fabric: receivers see silence, not poison. This
	// is the wedged-peer failure mode the GVT stall watchdog exists for —
	// every worker ends up blocked on messages that will never arrive.
	// 0 disables.
	MuteAfterSends int
	// SendDelayProb delays each send with this probability by a uniform
	// duration up to MaxSendDelay, reordering cross-worker arrival timing
	// (never per-pair FIFO order, which the substrate guarantees).
	SendDelayProb float64
	MaxSendDelay  time.Duration
	// PartitionAfterSends partitions endpoints PartitionA and PartitionB from
	// each other: once either endpoint has made more than N sends, its sends
	// to the other are silently dropped — both endpoints stay alive and every
	// other route keeps flowing. This is the asymmetric network split that
	// neither kills a process nor silences it entirely; only a stall watchdog
	// or heartbeat can diagnose it. 0 disables.
	PartitionAfterSends int
	PartitionA          int
	PartitionB          int
}

// Conn returns a connection wrapper for transport.WithConnWrapper that
// applies the plan's wire faults. Each wrapped connection gets its own
// counters and generator.
func (p Plan) Conn() func(net.Conn) net.Conn {
	return func(c net.Conn) net.Conn {
		return &faultConn{Conn: c, plan: p, rng: rand.New(rand.NewSource(p.Seed))}
	}
}

type faultConn struct {
	net.Conn
	plan Plan

	mu     sync.Mutex
	rng    *rand.Rand
	writes int
	reads  int
	dead   bool
}

func (f *faultConn) Write(p []byte) (int, error) {
	f.mu.Lock()
	f.writes++
	w := f.writes
	dead := f.dead
	kill := !dead && f.plan.KillAfterWrites > 0 && w > f.plan.KillAfterWrites
	if kill {
		f.dead = true
	}
	mute := f.plan.MuteAfterWrites > 0 && w > f.plan.MuteAfterWrites
	delay := f.plan.WriteDelayEvery > 0 && w%f.plan.WriteDelayEvery == 0
	joinDelay := w == 1 && f.plan.JoinDelay > 0
	f.mu.Unlock()

	if dead {
		return 0, errors.New("faultinject: connection already killed")
	}
	if joinDelay {
		time.Sleep(f.plan.JoinDelay)
	}
	if kill {
		if f.plan.TruncateOnKill && len(p) > 1 {
			f.Conn.Write(p[:len(p)/2])
		}
		f.Conn.Close()
		return 0, fmt.Errorf("faultinject: connection killed after %d writes", w-1)
	}
	if mute {
		return len(p), nil // blackhole: peer sees silence, not an error
	}
	if delay {
		time.Sleep(f.plan.WriteDelay)
	}
	return f.Conn.Write(p)
}

func (f *faultConn) Read(p []byte) (int, error) {
	f.mu.Lock()
	f.reads++
	delay := f.plan.ReadDelayEvery > 0 && f.reads%f.plan.ReadDelayEvery == 0
	f.mu.Unlock()
	if delay {
		time.Sleep(f.plan.ReadDelay)
	}
	return f.Conn.Read(p)
}

// Injector is the shared kill switch of a wrapped fabric.
type Injector struct {
	once   sync.Once
	killed chan struct{}

	mu  sync.Mutex
	err error
}

// Err reports the injected failure, or nil while the fabric is healthy.
func (in *Injector) Err() error {
	select {
	case <-in.killed:
		in.mu.Lock()
		defer in.mu.Unlock()
		return in.err
	default:
		return nil
	}
}

// Killed returns a channel closed once the fabric has been killed.
func (in *Injector) Killed() <-chan struct{} { return in.killed }

func (in *Injector) kill(err error) {
	in.once.Do(func() {
		in.mu.Lock()
		in.err = err
		in.mu.Unlock()
		close(in.killed)
	})
}

// WrapFabric wraps every endpoint with the plan's fabric faults. The
// returned Injector reports whether (and why) the fabric was killed.
func WrapFabric(eps []pdes.Endpoint, plan Plan) ([]pdes.Endpoint, *Injector) {
	in := &Injector{killed: make(chan struct{})}
	out := make([]pdes.Endpoint, len(eps))
	for i, ep := range eps {
		out[i] = &faultEndpoint{
			Endpoint: ep,
			plan:     plan,
			inj:      in,
			rng:      rand.New(rand.NewSource(plan.Seed + int64(ep.Self()))),
		}
	}
	return out, in
}

type faultEndpoint struct {
	pdes.Endpoint
	plan Plan
	inj  *Injector

	mu    sync.Mutex
	rng   *rand.Rand
	sends int
}

// tick advances the send counter and reports whether the send must be
// dropped because the fabric is (now) dead. It also applies randomized
// send delays while alive.
func (e *faultEndpoint) tick(n int) (drop bool) {
	select {
	case <-e.inj.killed:
		return true
	default:
	}
	e.mu.Lock()
	e.sends += n
	die := e.plan.DieAfterSends > 0 && e.sends > e.plan.DieAfterSends
	mute := !die && e.plan.MuteAfterSends > 0 && e.sends > e.plan.MuteAfterSends
	var delay time.Duration
	if !die && !mute && e.plan.SendDelayProb > 0 && e.rng.Float64() < e.plan.SendDelayProb {
		delay = time.Duration(e.rng.Int63n(int64(e.plan.MaxSendDelay) + 1))
	}
	e.mu.Unlock()
	if die {
		e.inj.kill(fmt.Errorf("faultinject: endpoint %d died after %d sends (seed %d)",
			e.Self(), e.plan.DieAfterSends, e.plan.Seed))
		return true
	}
	if mute {
		return true // blackhole: the fabric stays "alive" but this peer is silent
	}
	if delay > 0 {
		time.Sleep(delay)
	}
	return false
}

// partitioned reports whether a send to dst falls into an active partition:
// this endpoint and dst are the partitioned pair, and this endpoint's send
// count has crossed the threshold. Callers invoke it after tick, so the
// counter includes the current send.
func (e *faultEndpoint) partitioned(dst int) bool {
	if e.plan.PartitionAfterSends <= 0 {
		return false
	}
	self := e.Self()
	if !(self == e.plan.PartitionA && dst == e.plan.PartitionB) &&
		!(self == e.plan.PartitionB && dst == e.plan.PartitionA) {
		return false
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.sends > e.plan.PartitionAfterSends
}

func (e *faultEndpoint) Send(dst int, m *pdes.Msg) {
	if e.tick(1) || e.partitioned(dst) {
		return
	}
	e.Endpoint.Send(dst, m)
}

func (e *faultEndpoint) SendBatch(dst int, ms []*pdes.Msg) {
	if e.tick(len(ms)) || e.partitioned(dst) {
		return
	}
	e.Endpoint.SendBatch(dst, ms)
}

// Recv polls instead of delegating to the blocking Recv: the underlying
// fabric never learns about the injected death, so a blocked receive would
// otherwise hang forever once senders start dropping.
func (e *faultEndpoint) Recv() *pdes.Msg {
	for {
		select {
		case <-e.inj.killed:
			return pdes.PoisonMsg(e.inj.Err())
		default:
		}
		if m, ok := e.Endpoint.TryRecv(); ok {
			return m
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func (e *faultEndpoint) TryRecv() (*pdes.Msg, bool) {
	select {
	case <-e.inj.killed:
		return pdes.PoisonMsg(e.inj.Err()), true
	default:
	}
	return e.Endpoint.TryRecv()
}

// CorruptFile flips nbytes pseudo-random bytes of the file at path, seeded so
// the damage is replayable. It skips the first skip bytes (set skip to the
// frame header size to corrupt only the payload, or 0 to allow header damage
// too) and never produces a no-op: each chosen byte is XORed with a non-zero
// mask. This is the corrupt-checkpoint-bytes fault: it models bit rot, a torn
// copy, or a partial overwrite of the newest checkpoint generation, and
// exists to prove that restore rejects the damaged file and falls back to the
// previous generation.
func CorruptFile(path string, seed int64, skip, nbytes int) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if skip < 0 {
		skip = 0
	}
	if skip >= len(b) {
		return fmt.Errorf("faultinject: corrupt %s: skip %d >= file size %d", path, skip, len(b))
	}
	if nbytes < 1 {
		nbytes = 1
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < nbytes; i++ {
		off := skip + rng.Intn(len(b)-skip)
		b[off] ^= byte(1 + rng.Intn(255))
	}
	return os.WriteFile(path, b, 0o644)
}
