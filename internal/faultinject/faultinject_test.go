package faultinject

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"govhdl/internal/pdes"
	"govhdl/internal/vtime"
)

func init() {
	gob.Register(uint64(0)) // ring token payloads inside checkpoint blobs
}

// ringModel circulates tokens around a ring of LPs (same fixture as the
// pdes checkpoint tests): deterministic committed trace, nontrivial
// cross-worker traffic.
type ringModel struct {
	next  pdes.LPID
	seed  int
	step  vtime.Time
	count uint64
	sum   uint64
}

type ringState struct{ count, sum uint64 }

func (m *ringModel) Init(ctx *pdes.Ctx) {
	for j := 0; j < m.seed; j++ {
		ctx.Schedule(vtime.VT{PT: vtime.Time(j + 1)}, 0, uint64(j+1))
	}
}

func (m *ringModel) Execute(ctx *pdes.Ctx, ev *pdes.Event) {
	tok := ev.Data.(uint64)
	m.count++
	m.sum += tok
	ctx.Record(fmt.Sprintf("tok=%d count=%d sum=%d", tok, m.count, m.sum))
	ctx.Send(m.next, vtime.VT{PT: ev.TS.PT + m.step}, 0, tok)
}

func (m *ringModel) SaveState() any     { return ringState{m.count, m.sum} }
func (m *ringModel) RestoreState(s any) { st := s.(ringState); m.count, m.sum = st.count, st.sum }

func buildRing(n, seed int) *pdes.System {
	sys := pdes.NewSystem()
	ids := make([]pdes.LPID, n)
	for i := 0; i < n; i++ {
		m := &ringModel{next: pdes.LPID((i + 1) % n), step: 7}
		if i == 0 {
			m.seed = seed
		}
		ids[i] = sys.AddLP(fmt.Sprintf("ring%d", i), m)
	}
	for i := 0; i < n; i++ {
		sys.Connect(ids[i], ids[(i+1)%n])
	}
	return sys
}

type memSink struct {
	mu    sync.Mutex
	lines []string
}

func (s *memSink) Commit(lp pdes.LPID, ts vtime.VT, item any) {
	s.mu.Lock()
	s.lines = append(s.lines, fmt.Sprintf("%d @%v %v", lp, ts, item))
	s.mu.Unlock()
}

func (s *memSink) snapshot() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.lines...)
}

func sorted(parts ...[]string) []string {
	var all []string
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.Strings(all)
	return all
}

func oracle(t *testing.T, nLPs, seed int, until vtime.Time) []string {
	t.Helper()
	sink := &memSink{}
	if _, err := pdes.RunSequential(buildRing(nLPs, seed), until, sink); err != nil {
		t.Fatalf("sequential oracle: %v", err)
	}
	lines := sorted(sink.snapshot())
	if len(lines) == 0 {
		t.Fatal("oracle produced no records")
	}
	return lines
}

// TestSendJitterPreservesTrace checks that randomized send delays perturb
// scheduling without perturbing the committed trace.
func TestSendJitterPreservesTrace(t *testing.T) {
	const (
		nLPs    = 8
		seed    = 4
		until   = vtime.Time(800)
		workers = 3
	)
	want := oracle(t, nLPs, seed, until)

	plan := Plan{Seed: 42, SendDelayProb: 0.05, MaxSendDelay: 300 * time.Microsecond}
	eps, inj := WrapFabric(pdes.NewLocalFabric(workers+1), plan)
	sink := &memSink{}
	cfg := pdes.Config{Workers: workers, Protocol: pdes.ProtoOptimistic, GVTEvery: 64, ThrottleWindow: 100}
	if _, err := pdes.RunOn(buildRing(nLPs, seed), cfg, until, sink, eps); err != nil {
		t.Fatalf("jittered run: %v", err)
	}
	if inj.Err() != nil {
		t.Fatalf("jitter must not kill the fabric: %v", inj.Err())
	}
	got := sorted(sink.snapshot())
	if len(got) != len(want) {
		t.Fatalf("trace length mismatch: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs:\n  want: %s\n  got:  %s", i, want[i], got[i])
		}
	}
}

// TestInjectedDeathCheckpointRestore is the in-process chaos scenario: a
// seeded fault kills the fabric mid-run, the run unwinds with a diagnosed
// error (never a hang), and restarting from the last GVT-consistent
// checkpoint reproduces the uninterrupted trace exactly.
func TestInjectedDeathCheckpointRestore(t *testing.T) {
	const (
		nLPs    = 12
		seed    = 5
		until   = vtime.Time(2000)
		workers = 4
	)
	want := oracle(t, nLPs, seed, until)

	// Doomed run: checkpoints every committed round until endpoint death.
	var (
		cks   []*pdes.Checkpoint
		snaps [][]string
	)
	sink1 := &memSink{}
	plan := Plan{Seed: 7, DieAfterSends: 300}
	eps, inj := WrapFabric(pdes.NewLocalFabric(workers+1), plan)
	cfg := pdes.Config{
		Workers:          workers,
		Protocol:         pdes.ProtoOptimistic,
		GVTEvery:         64,
		ThrottleWindow:   100,
		CheckpointRounds: 1,
		CheckpointSink: func(ck *pdes.Checkpoint) error {
			cks = append(cks, ck)
			snaps = append(snaps, sink1.snapshot())
			return nil
		},
	}

	errCh := make(chan error, 1)
	go func() {
		_, err := pdes.RunOn(buildRing(nLPs, seed), cfg, until, sink1, eps)
		errCh <- err
	}()
	var runErr error
	select {
	case runErr = <-errCh:
	case <-time.After(60 * time.Second):
		t.Fatal("doomed run hung instead of failing fast")
	}
	if runErr == nil {
		t.Fatal("doomed run completed; the injected death never fired")
	}
	if inj.Err() == nil {
		t.Fatal("injector reports no death")
	}
	if len(cks) == 0 {
		t.Fatal("no checkpoint completed before the injected death")
	}

	// Survivor run: restore the last checkpoint on a healthy fabric.
	last := len(cks) - 1
	ck := cks[last]
	if !ck.GVT.Less(vtime.VT{PT: until}) {
		t.Fatalf("checkpoint GVT %v is at the horizon; nothing to restore", ck.GVT)
	}
	sink2 := &memSink{}
	cfg2 := pdes.Config{
		Workers:        workers,
		Protocol:       pdes.ProtoOptimistic,
		GVTEvery:       64,
		ThrottleWindow: 100,
		Restore:        ck,
	}
	res, err := pdes.Run(buildRing(nLPs, seed), cfg2, until, sink2)
	if err != nil {
		t.Fatalf("restored run: %v", err)
	}
	if res.GVT.Less(vtime.VT{PT: until}) {
		t.Fatalf("restored run stopped at GVT %v, want >= %v", res.GVT, until)
	}
	// The restored run replays the committed prefix itself, so its sink
	// alone must reproduce the uninterrupted trace byte-for-byte.
	got := sorted(sink2.snapshot())
	if len(got) != len(want) {
		t.Fatalf("combined trace length mismatch: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs:\n  want: %s\n  got:  %s", i, want[i], got[i])
		}
	}
}

// TestPartitionAfterDropsPairTraffic: once the threshold passes, traffic
// between the partitioned pair is dropped in both directions while every
// other route keeps flowing and nobody dies.
func TestPartitionAfterDropsPairTraffic(t *testing.T) {
	recvOne := func(ep pdes.Endpoint) (*pdes.Msg, bool) {
		deadline := time.Now().Add(200 * time.Millisecond)
		for time.Now().Before(deadline) {
			if m, ok := ep.TryRecv(); ok {
				return m, true
			}
			time.Sleep(time.Millisecond)
		}
		return nil, false
	}

	plan := Plan{PartitionAfterSends: 2, PartitionA: 1, PartitionB: 2}
	eps, inj := WrapFabric(pdes.NewLocalFabric(3), plan)
	e1, e2 := eps[1], eps[2]

	// Below the threshold the pair still talks.
	e1.Send(2, &pdes.Msg{Round: 1})
	e1.Send(2, &pdes.Msg{Round: 2})
	for want := uint64(1); want <= 2; want++ {
		m, ok := recvOne(e2)
		if !ok || m.Round != want {
			t.Fatalf("pre-partition message %d not delivered (got %+v, ok=%v)", want, m, ok)
		}
	}
	// Past the threshold: pair traffic is dropped, both directions.
	e1.Send(2, &pdes.Msg{Round: 3})
	if m, ok := recvOne(e2); ok {
		t.Fatalf("partitioned send delivered: %+v", m)
	}
	e2.Send(1, &pdes.Msg{Round: 4})
	e2.Send(1, &pdes.Msg{Round: 5})
	e2.Send(1, &pdes.Msg{Round: 6})
	got := 0
	for {
		m, ok := recvOne(e1)
		if !ok {
			break
		}
		got++
		if m.Round == 6 {
			t.Fatalf("send past the reverse threshold delivered: %+v", m)
		}
	}
	if got != 2 {
		t.Fatalf("reverse direction delivered %d messages before partitioning, want 2", got)
	}
	// Other routes are unaffected, and nobody died.
	e1.Send(0, &pdes.Msg{Round: 7})
	if m, ok := recvOne(eps[0]); !ok || m.Round != 7 {
		t.Fatalf("unrelated route broken: %+v, ok=%v", m, ok)
	}
	if inj.Err() != nil {
		t.Fatalf("a partition must not kill the fabric: %v", inj.Err())
	}
}

// TestJoinDelayPostponesFirstWrite: the delayed-join wire fault holds back
// only the connection's first write (the handshake hello).
func TestJoinDelayPostponesFirstWrite(t *testing.T) {
	const delay = 50 * time.Millisecond
	a, b := net.Pipe()
	defer b.Close()
	wrapped := Plan{JoinDelay: delay}.Conn()(a)

	done := make(chan time.Duration, 2)
	go func() {
		start := time.Now()
		wrapped.Write([]byte("hello"))
		done <- time.Since(start)
		start = time.Now()
		wrapped.Write([]byte("again"))
		done <- time.Since(start)
	}()
	buf := make([]byte, 16)
	for i := 0; i < 2; i++ {
		if _, err := b.Read(buf); err != nil {
			t.Fatal(err)
		}
	}
	if first := <-done; first < delay {
		t.Fatalf("first write completed in %v, want >= %v", first, delay)
	}
	if second := <-done; second >= delay {
		t.Fatalf("second write also delayed (%v); only the join must be", second)
	}
}

// TestMutedFabricTriggersStallWatchdog is the wedged-peer chaos scenario:
// MuteAfterSends silences every endpoint past its Nth send without killing
// the fabric, so no poison ever arrives and the run would otherwise hang
// forever with every worker parked in Recv. The GVT stall watchdog must
// diagnose it: a dump showing workers blocked on messages that never
// arrived, and a non-transport failure (a failover retry would stall the
// same way, so the error must not be classified recoverable).
func TestMutedFabricTriggersStallWatchdog(t *testing.T) {
	const (
		nLPs    = 12
		seed    = 5
		until   = vtime.Time(4000)
		workers = 4
	)
	plan := Plan{Seed: 11, MuteAfterSends: 200}
	eps, inj := WrapFabric(pdes.NewLocalFabric(workers+1), plan)

	var (
		mu      sync.Mutex
		reports []*pdes.StallReport
	)
	cfg := pdes.Config{
		Workers:        workers,
		Protocol:       pdes.ProtoOptimistic,
		GVTEvery:       64,
		ThrottleWindow: 100,
		StallTimeout:   400 * time.Millisecond,
		StallDump: func(r *pdes.StallReport) {
			mu.Lock()
			reports = append(reports, r)
			mu.Unlock()
		},
	}
	errCh := make(chan error, 1)
	go func() {
		_, err := pdes.RunOn(buildRing(nLPs, seed), cfg, until, nil, eps)
		errCh <- err
	}()
	var runErr error
	select {
	case runErr = <-errCh:
	case <-time.After(30 * time.Second):
		t.Fatal("muted run hung despite the stall watchdog")
	}
	if runErr == nil {
		t.Fatal("muted run completed; the mute never bit")
	}
	if !strings.Contains(runErr.Error(), "stall watchdog") {
		t.Fatalf("unexpected error: %v", runErr)
	}
	var se *pdes.SimError
	if !errors.As(runErr, &se) {
		t.Fatalf("watchdog verdict is not a SimError: %v", runErr)
	}
	if se.Transport {
		t.Error("stall verdict classified as transport failure; failover would retry it")
	}
	if inj.Err() != nil {
		t.Fatalf("mute must not kill the fabric: %v", inj.Err())
	}

	mu.Lock()
	defer mu.Unlock()
	if len(reports) == 0 {
		t.Fatal("no diagnostic dump produced")
	}
	r := reports[len(reports)-1]
	if len(r.Workers) != workers {
		t.Fatalf("dump covers %d workers, want %d", len(r.Workers), workers)
	}
	waiting := 0
	for _, w := range r.Workers {
		if w.Waiting {
			waiting++
		}
	}
	if waiting == 0 {
		t.Errorf("no worker reported as parked in Recv:\n%s", r)
	}
}
