package supervise

import (
	"encoding/gob"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"govhdl/internal/faultinject"
	"govhdl/internal/pdes"
	"govhdl/internal/vtime"
)

func init() {
	gob.Register(uint64(0)) // ring token payloads inside checkpoint blobs
}

// ringModel circulates tokens around a ring of LPs (the same fixture as the
// pdes checkpoint and faultinject tests): deterministic committed trace,
// nontrivial cross-worker traffic.
type ringModel struct {
	next  pdes.LPID
	seed  int
	step  vtime.Time
	count uint64
	sum   uint64
}

type ringState struct{ count, sum uint64 }

func (m *ringModel) Init(ctx *pdes.Ctx) {
	for j := 0; j < m.seed; j++ {
		ctx.Schedule(vtime.VT{PT: vtime.Time(j + 1)}, 0, uint64(j+1))
	}
}

func (m *ringModel) Execute(ctx *pdes.Ctx, ev *pdes.Event) {
	tok := ev.Data.(uint64)
	m.count++
	m.sum += tok
	ctx.Record(fmt.Sprintf("tok=%d count=%d sum=%d", tok, m.count, m.sum))
	ctx.Send(m.next, vtime.VT{PT: ev.TS.PT + m.step}, 0, tok)
}

func (m *ringModel) SaveState() any     { return ringState{m.count, m.sum} }
func (m *ringModel) RestoreState(s any) { st := s.(ringState); m.count, m.sum = st.count, st.sum }

func buildRing(n, seed int) *pdes.System {
	sys := pdes.NewSystem()
	ids := make([]pdes.LPID, n)
	for i := 0; i < n; i++ {
		m := &ringModel{next: pdes.LPID((i + 1) % n), step: 7}
		if i == 0 {
			m.seed = seed
		}
		ids[i] = sys.AddLP(fmt.Sprintf("ring%d", i), m)
	}
	for i := 0; i < n; i++ {
		sys.Connect(ids[i], ids[(i+1)%n])
	}
	return sys
}

type memSink struct {
	mu    sync.Mutex
	lines []string
}

func (s *memSink) Commit(lp pdes.LPID, ts vtime.VT, item any) {
	s.mu.Lock()
	s.lines = append(s.lines, fmt.Sprintf("%d @%v %v", lp, ts, item))
	s.mu.Unlock()
}

func (s *memSink) snapshot() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]string(nil), s.lines...)
}

func sortedLines(lines []string) []string {
	out := append([]string(nil), lines...)
	sort.Strings(out)
	return out
}

const (
	ringLPs     = 12
	ringSeed    = 5
	ringUntil   = vtime.Time(2000)
	ringWorkers = 4
)

func oracle(t *testing.T) []string {
	t.Helper()
	sink := &memSink{}
	if _, err := pdes.RunSequential(buildRing(ringLPs, ringSeed), ringUntil, sink); err != nil {
		t.Fatalf("sequential oracle: %v", err)
	}
	lines := sortedLines(sink.snapshot())
	if len(lines) == 0 {
		t.Fatal("oracle produced no records")
	}
	return lines
}

// failoverAttempt builds the RunFunc the pvsim -failover path uses: attempt
// 0 runs on a fabric doomed by the seeded plan, attempts >= 1 absorb
// everything locally on a clean fabric, resuming from the supervisor's
// latest checkpoint. The returned pointer exposes the surviving attempt's
// sink for trace assertions.
func failoverAttempt(t *testing.T, sup *Supervisor, plan faultinject.Plan) (RunFunc, *atomicSink) {
	t.Helper()
	final := &atomicSink{}
	run := func(attempt int, restore *pdes.Checkpoint) (*pdes.Result, error) {
		sink := &memSink{}
		final.set(sink)
		cfg := pdes.Config{
			Workers:          ringWorkers,
			Protocol:         pdes.ProtoOptimistic,
			GVTEvery:         64,
			ThrottleWindow:   100,
			CheckpointRounds: 1,
			CheckpointSink: func(ck *pdes.Checkpoint) error {
				sup.Checkpoint(ck)
				return nil
			},
			Restore: restore,
		}
		eps := pdes.NewLocalFabric(ringWorkers + 1)
		if attempt == 0 {
			eps, _ = faultinject.WrapFabric(eps, plan)
		}
		return pdes.RunOn(buildRing(ringLPs, ringSeed), cfg, ringUntil, sink, eps)
	}
	return run, final
}

type atomicSink struct {
	mu   sync.Mutex
	sink *memSink
}

func (a *atomicSink) set(s *memSink) { a.mu.Lock(); a.sink = s; a.mu.Unlock() }
func (a *atomicSink) get() *memSink  { a.mu.Lock(); defer a.mu.Unlock(); return a.sink }

func diffTrace(t *testing.T, want, got []string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("trace length mismatch: got %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d differs:\n  want: %s\n  got:  %s", i, want[i], got[i])
		}
	}
}

// TestFailoverReproducesTrace is the kill-one-node chaos scenario driven
// through the supervisor: a seeded fault kills the fabric mid-run after
// checkpoints have been cut, the supervisor absorbs the work locally from
// the latest cut, and the surviving run's trace is byte-identical to the
// uninterrupted oracle — with no manual restore step anywhere.
func TestFailoverReproducesTrace(t *testing.T) {
	want := oracle(t)
	sup := &Supervisor{}
	var failovers []int
	sup.OnFailover = func(attempt int, err error, ck *pdes.Checkpoint) {
		failovers = append(failovers, attempt)
		if !Recoverable(err) {
			t.Errorf("OnFailover observed an unrecoverable error: %v", err)
		}
		if ck == nil {
			t.Error("fabric died after 300 sends but no checkpoint was retained")
		}
	}
	run, final := failoverAttempt(t, sup, faultinject.Plan{Seed: 7, DieAfterSends: 300})

	done := make(chan struct{})
	var (
		res    *pdes.Result
		runErr error
	)
	go func() {
		defer close(done)
		res, runErr = sup.Run(run)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("failover run hung")
	}
	if runErr != nil {
		t.Fatalf("supervised run failed: %v", runErr)
	}
	if res.GVT.Less(vtime.VT{PT: ringUntil}) {
		t.Fatalf("supervised run stopped at GVT %v, want >= %v", res.GVT, ringUntil)
	}
	if len(failovers) != 1 || failovers[0] != 0 {
		t.Fatalf("failovers = %v, want exactly one from attempt 0", failovers)
	}
	if sup.Latest() == nil {
		t.Fatal("supervisor retained no checkpoint")
	}
	diffTrace(t, want, sortedLines(final.get().snapshot()))
}

// TestFailoverFromScratchWithoutCheckpoint kills the fabric before the
// first cut: the supervisor must restart from scratch (nil checkpoint) and
// still reproduce the oracle trace.
func TestFailoverFromScratchWithoutCheckpoint(t *testing.T) {
	want := oracle(t)
	sup := &Supervisor{}
	sawNil := false
	sup.OnFailover = func(attempt int, err error, ck *pdes.Checkpoint) {
		if ck == nil {
			sawNil = true
		}
	}
	// Die almost immediately: workers barely start before poison, well
	// before the first committed round can cut a checkpoint.
	run, final := failoverAttempt(t, sup, faultinject.Plan{Seed: 3, DieAfterSends: 2})

	done := make(chan struct{})
	var runErr error
	go func() {
		defer close(done)
		_, runErr = sup.Run(run)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("failover run hung")
	}
	if runErr != nil {
		t.Fatalf("supervised run failed: %v", runErr)
	}
	if !sawNil {
		t.Skip("a checkpoint completed before the injected death; from-scratch path not exercised")
	}
	diffTrace(t, want, sortedLines(final.get().snapshot()))
}

// TestUnrecoverableErrorNotRetried: simulation-semantics failures (deadlock,
// stall verdicts, model bugs) recur deterministically on replay, so the
// supervisor must surface them after one attempt.
func TestUnrecoverableErrorNotRetried(t *testing.T) {
	sup := &Supervisor{OnFailover: func(int, error, *pdes.Checkpoint) {
		t.Error("OnFailover called for an unrecoverable error")
	}}
	attempts := 0
	simErr := &pdes.SimError{Text: "pdes: deadlock: all workers idle"}
	_, err := sup.Run(func(attempt int, restore *pdes.Checkpoint) (*pdes.Result, error) {
		attempts++
		return nil, simErr
	})
	if attempts != 1 {
		t.Fatalf("unrecoverable error retried: %d attempts", attempts)
	}
	if !errors.Is(err, simErr) {
		t.Fatalf("error rewritten: %v", err)
	}
}

// TestFailoverBudgetExhausted: persistent transport failures must end in a
// diagnosed give-up, not an infinite retry loop.
func TestFailoverBudgetExhausted(t *testing.T) {
	sup := &Supervisor{MaxFailovers: 2}
	attempts := 0
	_, err := sup.Run(func(attempt int, restore *pdes.Checkpoint) (*pdes.Result, error) {
		attempts++
		return nil, &pdes.SimError{Text: "pdes: transport failure: peer gone", Transport: true}
	})
	if attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (primary + 2 failovers)", attempts)
	}
	if err == nil || !strings.Contains(err.Error(), "giving up after 2 failovers") {
		t.Fatalf("unexpected error: %v", err)
	}
	if Recoverable(err) {
		t.Error("the give-up error itself must not be classified recoverable")
	}
}

// TestPlanRecoveryClampAndRemap pins the recovery-shape arithmetic: a
// surviving host with fewer cores than the cut's workers gets a clamped
// count and a migrated checkpoint; a roomy host keeps the original shape and
// the original checkpoint object.
func TestPlanRecoveryClampAndRemap(t *testing.T) {
	var cks []*pdes.Checkpoint
	cfg := pdes.Config{
		Workers:          ringWorkers,
		Protocol:         pdes.ProtoOptimistic,
		GVTEvery:         64,
		ThrottleWindow:   100,
		CheckpointRounds: 1,
		CheckpointSink:   func(ck *pdes.Checkpoint) error { cks = append(cks, ck); return nil },
	}
	if _, err := pdes.RunOn(buildRing(ringLPs, ringSeed), cfg, ringUntil, &memSink{},
		pdes.NewLocalFabric(ringWorkers+1)); err != nil {
		t.Fatal(err)
	}
	if len(cks) == 0 {
		t.Fatal("no checkpoints were cut")
	}
	ck := cks[len(cks)/2]

	sys := buildRing(ringLPs, ringSeed)
	// Two cores: clamp 4 -> 2 and migrate the checkpoint.
	plan, err := PlanRecovery(sys, ck, ringWorkers, 2, pdes.PartitionRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Workers != 2 || !plan.Clamped || !plan.Migrated {
		t.Fatalf("clamped plan wrong: %+v", plan)
	}
	if plan.Restore == ck || plan.Restore.Workers != 2 {
		t.Fatalf("checkpoint not migrated: workers=%d", plan.Restore.Workers)
	}
	// Plenty of cores: original shape, original checkpoint, no migration.
	plan, err = PlanRecovery(sys, ck, ringWorkers, 8, pdes.PartitionRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Workers != ringWorkers || plan.Clamped || plan.Migrated || plan.Restore != ck {
		t.Fatalf("unclamped plan wrong: %+v", plan)
	}
	// No checkpoint yet: from-scratch restart, still clamped.
	plan, err = PlanRecovery(sys, nil, ringWorkers, 2, pdes.PartitionRoundRobin)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Workers != 2 || !plan.Clamped || plan.Migrated || plan.Restore != nil {
		t.Fatalf("from-scratch plan wrong: %+v", plan)
	}
}

// TestSurvivorWorkers pins the on-death policy matrix.
func TestSurvivorWorkers(t *testing.T) {
	cases := []struct {
		orig, hosted, survivors, minNodes int
		workers                           int
		migrate                           bool
	}{
		{4, 2, 2, 0, 2, true},  // 1 of 3 nodes dies, 2 survive: migrate
		{4, 2, 1, 0, 4, false}, // hub alone: full absorb
		{4, 2, 2, 3, 4, false}, // min-nodes 3 not met: full absorb
		{4, 3, 3, 3, 3, true},  // min-nodes 3 met: migrate
		{4, 0, 2, 0, 4, false}, // survivors host no workers: full absorb
		{4, 4, 2, 0, 4, false}, // nothing was lost: keep the shape
	}
	for _, c := range cases {
		w, m := SurvivorWorkers(c.orig, c.hosted, c.survivors, c.minNodes)
		if w != c.workers || m != c.migrate {
			t.Errorf("SurvivorWorkers(%d,%d,%d,%d) = (%d,%v), want (%d,%v)",
				c.orig, c.hosted, c.survivors, c.minNodes, w, m, c.workers, c.migrate)
		}
	}
}

// TestFailoverMigratesToSurvivors is the kill-one-of-three chaos scenario
// with migration instead of full absorb: the primary 4-worker run dies
// mid-run, and the recovery — planned for a 2-core survivor — resumes from
// the checkpoint remapped to 2 workers. The dead workers' LPs migrate onto
// the survivors, the attempt log records the clamp and the migration, and
// the final trace is byte-identical to the uninterrupted oracle.
func TestFailoverMigratesToSurvivors(t *testing.T) {
	want := oracle(t)
	sup := &Supervisor{}
	final := &atomicSink{}
	migrated := false
	run := func(attempt int, restore *pdes.Checkpoint) (*pdes.Result, error) {
		sink := &memSink{}
		final.set(sink)
		cfg := pdes.Config{
			Workers:          ringWorkers,
			Protocol:         pdes.ProtoOptimistic,
			GVTEvery:         64,
			ThrottleWindow:   100,
			CheckpointRounds: 1,
			CheckpointSink: func(ck *pdes.Checkpoint) error {
				sup.Checkpoint(ck)
				return nil
			},
		}
		if attempt == 0 {
			sup.RecordPlan(0, &RecoveryPlan{Workers: ringWorkers})
			eps, _ := faultinject.WrapFabric(pdes.NewLocalFabric(ringWorkers+1),
				faultinject.Plan{Seed: 7, DieAfterSends: 300})
			return pdes.RunOn(buildRing(ringLPs, ringSeed), cfg, ringUntil, sink, eps)
		}
		// The survivor has two cores: clamp and migrate.
		plan, err := PlanRecovery(buildRing(ringLPs, ringSeed), restore, ringWorkers, 2, pdes.PartitionRoundRobin)
		if err != nil {
			return nil, err
		}
		sup.RecordPlan(attempt, plan)
		migrated = migrated || plan.Migrated
		cfg.Workers = plan.Workers
		cfg.Restore = plan.Restore
		return pdes.RunOn(buildRing(ringLPs, ringSeed), cfg, ringUntil, sink,
			pdes.NewLocalFabric(plan.Workers+1))
	}

	done := make(chan struct{})
	var (
		res    *pdes.Result
		runErr error
	)
	go func() {
		defer close(done)
		res, runErr = sup.Run(run)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("failover run hung")
	}
	if runErr != nil {
		t.Fatalf("supervised run failed: %v", runErr)
	}
	if res.GVT.Less(vtime.VT{PT: ringUntil}) {
		t.Fatalf("recovered run stopped at GVT %v", res.GVT)
	}
	if !migrated {
		t.Skip("the fabric died before the first checkpoint; migration path not exercised")
	}
	log := sup.Log()
	if len(log) < 2 {
		t.Fatalf("attempt log too short: %+v", log)
	}
	last := log[len(log)-1]
	if last.Workers != 2 || !last.Clamped || !last.Migrated || last.Err != "" {
		t.Fatalf("recovery attempt log entry wrong: %+v", last)
	}
	if first := log[0]; first.Err == "" {
		t.Fatalf("primary attempt must log its death: %+v", first)
	}
	diffTrace(t, want, sortedLines(final.get().snapshot()))
}

// TestRecoverableClassification pins the retry predicate.
func TestRecoverableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("plain"), false},
		{&pdes.SimError{Text: "deadlock"}, false},
		{&pdes.SimError{Text: "transport", Transport: true}, true},
		{fmt.Errorf("wrapped: %w", &pdes.SimError{Text: "transport", Transport: true}), true},
	}
	for _, c := range cases {
		if got := Recoverable(c.err); got != c.want {
			t.Errorf("Recoverable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
