package supervise

import (
	"path/filepath"
	"strings"
	"testing"

	"govhdl/internal/ckptio"
	"govhdl/internal/faultinject"
	"govhdl/internal/pdes"
)

// TestSeedFromLineageFallsBackPastCorruptLatest is the checkpoint-lineage
// acceptance path end to end: a checkpointed run writes a generation lineage
// to disk, the newest generation is deliberately corrupted, and the
// supervisor seeds the next attempt from the newest generation that still
// verifies — producing a final trace byte-identical to the uninterrupted
// oracle.
func TestSeedFromLineageFallsBackPastCorruptLatest(t *testing.T) {
	want := oracle(t)
	path := filepath.Join(t.TempDir(), "ring.gvcp")

	// Primary run: cut a checkpoint every committed round, each becoming the
	// newest generation of the on-disk lineage.
	gens := 0
	cfg := pdes.Config{
		Workers:          ringWorkers,
		Protocol:         pdes.ProtoOptimistic,
		GVTEvery:         64,
		ThrottleWindow:   100,
		CheckpointRounds: 1,
		CheckpointSink: func(ck *pdes.Checkpoint) error {
			gens++
			return ckptio.Write(path, 3, &ckptio.File{Ckpt: ck})
		},
	}
	if _, err := pdes.RunOn(buildRing(ringLPs, ringSeed), cfg, ringUntil, &memSink{},
		pdes.NewLocalFabric(ringWorkers+1)); err != nil {
		t.Fatal(err)
	}
	if gens < 2 {
		t.Fatalf("only %d checkpoints were cut; the fallback needs a lineage", gens)
	}

	// Corrupt the newest generation's payload.
	if err := faultinject.CorruptFile(path, 99, 48, 16); err != nil {
		t.Fatal(err)
	}

	sup := &Supervisor{}
	f, gen, skipped, err := sup.SeedFromLineage(path)
	if err != nil {
		t.Fatalf("SeedFromLineage: %v", err)
	}
	if gen != ckptio.GenPath(path, 1) {
		t.Fatalf("seeded from %s, want the previous generation", gen)
	}
	if len(skipped) != 1 || !strings.Contains(skipped[0].Error(), "sha256") {
		t.Fatalf("skipped = %v, want the corrupt latest's sha256 failure", skipped)
	}
	if sup.Latest() != f.Ckpt {
		t.Fatalf("supervisor not primed with the recovered checkpoint")
	}

	// Recovery attempt from the fallen-back checkpoint: restore replays the
	// committed prefix, so the final trace must still match the oracle.
	sink := &memSink{}
	cfg.CheckpointSink = func(*pdes.Checkpoint) error { return nil }
	cfg.Restore = sup.Latest()
	if _, err := pdes.RunOn(buildRing(ringLPs, ringSeed), cfg, ringUntil, sink,
		pdes.NewLocalFabric(ringWorkers+1)); err != nil {
		t.Fatal(err)
	}
	diffTrace(t, want, sortedLines(sink.snapshot()))
}

// A lineage whose every generation is corrupt must surface a diagnosis, not
// a silent from-scratch restart.
func TestSeedFromLineageAllCorrupt(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ring.gvcp")
	cfg := pdes.Config{
		Workers:          ringWorkers,
		Protocol:         pdes.ProtoOptimistic,
		GVTEvery:         64,
		ThrottleWindow:   100,
		CheckpointRounds: 1,
		CheckpointSink: func(ck *pdes.Checkpoint) error {
			return ckptio.Write(path, 2, &ckptio.File{Ckpt: ck})
		},
	}
	if _, err := pdes.RunOn(buildRing(ringLPs, ringSeed), cfg, ringUntil, &memSink{},
		pdes.NewLocalFabric(ringWorkers+1)); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 2; n++ {
		if err := faultinject.CorruptFile(ckptio.GenPath(path, n), int64(n+1), 48, 16); err != nil {
			t.Fatal(err)
		}
	}
	sup := &Supervisor{}
	if _, _, _, err := sup.SeedFromLineage(path); err == nil {
		t.Fatal("a fully corrupt lineage was accepted")
	}
	if sup.Latest() != nil {
		t.Fatal("supervisor was primed from a corrupt lineage")
	}
}
