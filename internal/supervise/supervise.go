// Package supervise implements automatic failover for the process hosting
// the GVT controller: it runs the simulation, retains the latest
// GVT-consistent checkpoint, and when an attempt dies of a recoverable
// transport failure (peer death, heartbeat timeout, stream corruption) it
// re-runs from that checkpoint with the dead node's LPs absorbed locally —
// no operator intervention, and a committed trace byte-identical to an
// uninterrupted run, because checkpoint restore deterministically replays
// the committed prefix before resuming.
//
// The division of labor: package pdes knows how to cut and restore a
// consistent state, package transport knows how to fail fast and
// diagnose, and this package knows which failures are worth retrying and
// what state to retry from.
//
// Recovery shape. By default an absorb run keeps the same Config.Workers
// (the paper's LP-to-processor mapping is a partition over a fixed worker
// count, and the restored mode/ownership tables are indexed by it); the
// survivors simply host all workers in one process over the in-process
// fabric. But rerunning a 16-worker cut on a 4-core survivor just thrashes:
// PlanRecovery clamps the worker count to what the surviving host can
// actually execute and migrates the checkpoint to the new grouping with
// pdes.RemapCheckpoint — the dead nodes' LPs land on the survivors' workers
// instead of being absorbed at the original shape. Every attempt's shape
// (worker count, whether it was clamped, whether LPs migrated) is recorded
// in the supervisor's attempt log.
package supervise

import (
	"errors"
	"fmt"
	"sync"

	"govhdl/internal/ckptio"
	"govhdl/internal/pdes"
)

// DefaultMaxFailovers bounds how many times Run re-attempts after failures.
// Each absorb run is fully local, so repeated recoverable failures indicate
// a fault-injection plan or a broken machine rather than flaky peers.
const DefaultMaxFailovers = 3

// RunFunc executes one simulation attempt. Attempt 0 is the primary run
// (distributed or fault-injected); attempts >= 1 are recovery runs and must
// be fully local, with fresh model state, resuming from restore (nil means
// no checkpoint was cut yet: restart from scratch — still deterministic).
// The callee must route every checkpoint cut through Supervisor.Checkpoint.
type RunFunc func(attempt int, restore *pdes.Checkpoint) (*pdes.Result, error)

// Supervisor coordinates the attempt loop. The zero value is ready to use.
type Supervisor struct {
	// MaxFailovers caps recovery attempts; 0 means DefaultMaxFailovers.
	MaxFailovers int
	// OnFailover, if set, observes each recovery decision before the next
	// attempt starts: the attempt that died, its error, and the checkpoint
	// the next attempt will resume from (nil for a from-scratch restart).
	OnFailover func(attempt int, err error, ck *pdes.Checkpoint)

	mu     sync.Mutex
	latest *pdes.Checkpoint
	log    []Attempt
}

// Attempt is one entry in the supervisor's attempt log: the shape an attempt
// ran with and how it ended.
type Attempt struct {
	N        int    // attempt number (0 = primary)
	Workers  int    // worker count the attempt ran with (0 if never planned)
	Clamped  bool   // worker count was reduced to fit the surviving host
	Migrated bool   // LPs migrated to a new worker grouping for this attempt
	Err      string // how the attempt ended; "" while running or on success
}

// RecoveryPlan describes how a recovery attempt should run.
type RecoveryPlan struct {
	// Workers is the worker count for the recovery run: the original count
	// clamped to what the surviving host can execute.
	Workers int
	// Restore is the checkpoint to resume from, remapped to Workers when
	// that differs from the cut's worker count; nil means from scratch.
	Restore *pdes.Checkpoint
	// Clamped reports that Workers is smaller than the original because of
	// the surviving host's capacity.
	Clamped bool
	// Migrated reports that the checkpoint was regrouped: the dead nodes'
	// LPs migrate onto the surviving workers instead of a full-shape absorb.
	Migrated bool
}

// PlanRecovery computes the shape of an absorb attempt on a surviving host
// with avail executable cores (runtime.GOMAXPROCS(0) for the local machine).
// origWorkers is the primary run's Config.Workers. The checkpoint, when one
// exists and the clamped worker count differs from its cut, is migrated to
// the new grouping with pdes.RemapCheckpoint.
func PlanRecovery(sys *pdes.System, ck *pdes.Checkpoint, origWorkers, avail int, part pdes.Partition) (*RecoveryPlan, error) {
	if origWorkers < 1 {
		return nil, fmt.Errorf("supervise: original worker count %d out of range", origWorkers)
	}
	if avail < 1 {
		avail = 1
	}
	workers := origWorkers
	clamped := false
	if workers > avail {
		workers, clamped = avail, true
	}
	if n := sys.NumLPs(); workers > n {
		workers = n
	}
	plan := &RecoveryPlan{Workers: workers, Restore: ck, Clamped: clamped}
	if ck != nil && workers != ck.Workers {
		remapped, err := pdes.RemapCheckpoint(ck, sys, workers, part)
		if err != nil {
			return nil, fmt.Errorf("supervise: migrating the checkpoint to %d workers: %w", workers, err)
		}
		plan.Restore = remapped
		plan.Migrated = true
	}
	return plan, nil
}

// SurvivorWorkers applies the on-death policy matrix: when at least minNodes
// nodes (never fewer than two) survive a death, the recovery runs with the
// workers those survivors hosted — the dead node's LPs migrate onto them —
// otherwise it falls back to a full absorb at the original worker count.
// survivorHosted counts the worker endpoints the surviving nodes host.
func SurvivorWorkers(orig, survivorHosted, survivors, minNodes int) (workers int, migrate bool) {
	if minNodes < 2 {
		minNodes = 2
	}
	if survivors < minNodes || survivorHosted < 1 || survivorHosted >= orig {
		return orig, false
	}
	return survivorHosted, true
}

// RecordPlan stores (or updates) the shape of an attempt in the log; the
// RunFunc calls it once it has planned the attempt.
func (s *Supervisor) RecordPlan(attempt int, p *RecoveryPlan) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.attempt(attempt)
	a.Workers, a.Clamped, a.Migrated = p.Workers, p.Clamped, p.Migrated
}

// Log returns a copy of the attempt log.
func (s *Supervisor) Log() []Attempt {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Attempt(nil), s.log...)
}

// attempt returns the log entry for an attempt, creating it if needed.
// Callers hold s.mu.
func (s *Supervisor) attempt(n int) *Attempt {
	for i := range s.log {
		if s.log[i].N == n {
			return &s.log[i]
		}
	}
	s.log = append(s.log, Attempt{N: n})
	return &s.log[len(s.log)-1]
}

func (s *Supervisor) recordOutcome(n int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.attempt(n)
	if err != nil {
		a.Err = err.Error()
	} else {
		a.Err = ""
	}
}

// Checkpoint records the most recent cut; safe for concurrent use with Run.
func (s *Supervisor) Checkpoint(ck *pdes.Checkpoint) {
	s.mu.Lock()
	s.latest = ck
	s.mu.Unlock()
}

// SeedFromLineage primes the supervisor from an on-disk checkpoint lineage:
// it loads the newest generation under path whose frame verifies (falling
// back past torn or corrupted newer generations instead of dying on them),
// installs its checkpoint as the restore point for the next attempt, and
// returns the full file (trace prefix, sharding) along with the generation
// actually used and the verification errors of every generation skipped on
// the way — the caller should surface those, a corrupt latest checkpoint is
// worth an operator's attention even when recovery succeeds.
func (s *Supervisor) SeedFromLineage(path string) (f *ckptio.File, gen string, skipped []error, err error) {
	f, gen, skipped, err = ckptio.Recover(path)
	if err != nil {
		return nil, "", skipped, err
	}
	s.Checkpoint(f.Ckpt)
	return f, gen, skipped, nil
}

// Latest returns the most recent checkpoint, or nil before the first cut.
func (s *Supervisor) Latest() *pdes.Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latest
}

// Run drives run until an attempt succeeds, fails unrecoverably, or the
// failover budget is exhausted.
func (s *Supervisor) Run(run RunFunc) (*pdes.Result, error) {
	max := s.MaxFailovers
	if max <= 0 {
		max = DefaultMaxFailovers
	}
	var lastErr error
	for attempt := 0; attempt <= max; attempt++ {
		res, err := run(attempt, s.Latest())
		s.recordOutcome(attempt, err)
		if err == nil {
			return res, nil
		}
		if !Recoverable(err) {
			return res, err
		}
		lastErr = err
		if s.OnFailover != nil {
			s.OnFailover(attempt, err, s.Latest())
		}
	}
	return nil, &giveUpError{failovers: max, err: lastErr}
}

// giveUpError marks an exhausted failover budget. It unwraps to the last
// attempt's error for inspection, but Recoverable treats it as terminal:
// the retries it would justify have already been spent.
type giveUpError struct {
	failovers int
	err       error
}

func (g *giveUpError) Error() string {
	return fmt.Sprintf("supervise: giving up after %d failovers: %v", g.failovers, g.err)
}

func (g *giveUpError) Unwrap() error { return g.err }

// Recoverable reports whether err is a transport-layer failure that a
// failover can absorb. Simulation errors — deadlock, a stall-watchdog
// verdict, a model panic — would recur deterministically on replay and are
// never retried.
func Recoverable(err error) bool {
	var g *giveUpError
	if errors.As(err, &g) {
		return false
	}
	var se *pdes.SimError
	return errors.As(err, &se) && se.Transport
}
