// Package supervise implements automatic failover for the process hosting
// the GVT controller: it runs the simulation, retains the latest
// GVT-consistent checkpoint, and when an attempt dies of a recoverable
// transport failure (peer death, heartbeat timeout, stream corruption) it
// re-runs from that checkpoint with the dead node's LPs absorbed locally —
// no operator intervention, and a committed trace byte-identical to an
// uninterrupted run, because checkpoint restore deterministically replays
// the committed prefix before resuming.
//
// The division of labor: package pdes knows how to cut and restore a
// consistent state, package transport knows how to fail fast and
// diagnose, and this package knows which failures are worth retrying and
// what state to retry from. The absorb run keeps the same Config.Workers
// (the paper's LP-to-processor mapping is a partition over a fixed worker
// count, and the restored mode/ownership tables are indexed by it); the
// survivors simply host all workers in one process over the in-process
// fabric.
package supervise

import (
	"errors"
	"fmt"
	"sync"

	"govhdl/internal/pdes"
)

// DefaultMaxFailovers bounds how many times Run re-attempts after failures.
// Each absorb run is fully local, so repeated recoverable failures indicate
// a fault-injection plan or a broken machine rather than flaky peers.
const DefaultMaxFailovers = 3

// RunFunc executes one simulation attempt. Attempt 0 is the primary run
// (distributed or fault-injected); attempts >= 1 are recovery runs and must
// be fully local, with fresh model state, resuming from restore (nil means
// no checkpoint was cut yet: restart from scratch — still deterministic).
// The callee must route every checkpoint cut through Supervisor.Checkpoint.
type RunFunc func(attempt int, restore *pdes.Checkpoint) (*pdes.Result, error)

// Supervisor coordinates the attempt loop. The zero value is ready to use.
type Supervisor struct {
	// MaxFailovers caps recovery attempts; 0 means DefaultMaxFailovers.
	MaxFailovers int
	// OnFailover, if set, observes each recovery decision before the next
	// attempt starts: the attempt that died, its error, and the checkpoint
	// the next attempt will resume from (nil for a from-scratch restart).
	OnFailover func(attempt int, err error, ck *pdes.Checkpoint)

	mu     sync.Mutex
	latest *pdes.Checkpoint
}

// Checkpoint records the most recent cut; safe for concurrent use with Run.
func (s *Supervisor) Checkpoint(ck *pdes.Checkpoint) {
	s.mu.Lock()
	s.latest = ck
	s.mu.Unlock()
}

// Latest returns the most recent checkpoint, or nil before the first cut.
func (s *Supervisor) Latest() *pdes.Checkpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.latest
}

// Run drives run until an attempt succeeds, fails unrecoverably, or the
// failover budget is exhausted.
func (s *Supervisor) Run(run RunFunc) (*pdes.Result, error) {
	max := s.MaxFailovers
	if max <= 0 {
		max = DefaultMaxFailovers
	}
	var lastErr error
	for attempt := 0; attempt <= max; attempt++ {
		res, err := run(attempt, s.Latest())
		if err == nil {
			return res, nil
		}
		if !Recoverable(err) {
			return res, err
		}
		lastErr = err
		if s.OnFailover != nil {
			s.OnFailover(attempt, err, s.Latest())
		}
	}
	return nil, &giveUpError{failovers: max, err: lastErr}
}

// giveUpError marks an exhausted failover budget. It unwraps to the last
// attempt's error for inspection, but Recoverable treats it as terminal:
// the retries it would justify have already been spent.
type giveUpError struct {
	failovers int
	err       error
}

func (g *giveUpError) Error() string {
	return fmt.Sprintf("supervise: giving up after %d failovers: %v", g.failovers, g.err)
}

func (g *giveUpError) Unwrap() error { return g.err }

// Recoverable reports whether err is a transport-layer failure that a
// failover can absorb. Simulation errors — deadlock, a stall-watchdog
// verdict, a model panic — would recur deterministically on replay and are
// never retried.
func Recoverable(err error) bool {
	var g *giveUpError
	if errors.As(err, &g) {
		return false
	}
	var se *pdes.SimError
	return errors.As(err, &se) && se.Transport
}
