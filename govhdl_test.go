package govhdl

import (
	"strings"
	"testing"

	"govhdl/internal/stdlogic"
)

const facadeSrc = `
entity blinker is end entity;
architecture sim of blinker is
  signal led : std_logic := '0';
begin
  p : process
  begin
    wait for 10 ns;
    led <= not led;
  end process;
end architecture;
`

func TestFacadeCompileAndSimulate(t *testing.T) {
	m, err := Compile("blinker", Source{Name: "blinker.vhd", Text: facadeSrc})
	if err != nil {
		t.Fatal(err)
	}
	if m.LPs() != 2 { // one signal + one process
		t.Errorf("LPs = %d, want 2", m.LPs())
	}
	res, err := m.Simulate(Options{Protocol: Dynamic, Workers: 2, Until: 100 * NS})
	if err != nil {
		t.Fatal(err)
	}
	lines := res.TraceLines()
	if len(lines) != 9 { // toggles at 10..90 ns
		t.Errorf("got %d trace lines, want 9:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	v, ok := m.SignalValue("blinker.led")
	if !ok {
		t.Fatalf("signal not found among %v", m.SignalNames())
	}
	if v.(stdlogic.Std) != stdlogic.L1 { // 9 toggles from '0'
		t.Errorf("final led = %v, want '1'", v)
	}
	var vcd strings.Builder
	if err := res.WriteVCD(&vcd); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(vcd.String(), "$var wire 1 ! blinker.led $end") {
		t.Errorf("VCD missing led var:\n%s", vcd.String())
	}
}

func TestFacadeSequentialAndErrors(t *testing.T) {
	if _, err := Compile("nothere", Source{Name: "x.vhd", Text: facadeSrc}); err == nil {
		t.Error("Compile accepted a missing top entity")
	}
	if _, err := Compile("x", Source{Name: "x.vhd", Text: "entity ; garbage"}); err == nil {
		t.Error("Compile accepted garbage source")
	}
	m, err := Compile("blinker", Source{Name: "blinker.vhd", Text: facadeSrc})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Simulate(Options{Protocol: Sequential, Until: 50 * NS, NoTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != nil || res.TraceLines() != nil {
		t.Error("NoTrace run still recorded")
	}
	if res.Run.Metrics.Events == 0 {
		t.Error("no events")
	}
}

func TestFacadeNetlistFlow(t *testing.T) {
	b := NewNetlist("half", NS)
	x, y := b.Wire("x"), b.Wire("y")
	sum, carry := b.Wire("sum"), b.Wire("carry")
	b.Xor(sum, x, y)
	b.And(carry, x, y)
	m := FromDesign(b.Design())
	if _, err := m.Simulate(Options{Protocol: Conservative, Workers: 2, Until: 10 * NS}); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	fsm := BenchmarkFSM(6)
	m := FromDesign(fsm.Design)
	horizon := fsm.DefaultHorizon
	if _, err := m.Simulate(Options{Protocol: Mixed, Workers: 3, Until: horizon, NoTrace: true}); err != nil {
		t.Fatal(err)
	}
	if err := fsm.Verify(horizon); err != nil {
		t.Fatal(err)
	}
}
