module govhdl

go 1.22
