package govhdl

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"govhdl/internal/pdes"
	"govhdl/internal/supervise"
	"govhdl/internal/trace"
	"govhdl/internal/vtime"
)

// ModelFactory produces a fresh Model for one simulation attempt. A model's
// signal and process state is consumed by a run, and a session may run more
// than once (transparent retry after a recoverable transport fault), so the
// session asks for a new model per attempt. Factories built on a cached
// design use kernel.Design.CloneFresh; factories for ad-hoc runs re-compile
// or re-build.
type ModelFactory func() (*Model, error)

// SessionOptions parameterizes one simulation session.
type SessionOptions struct {
	Options
	// Deadline bounds the session's wall-clock duration (all attempts
	// together); 0 means none. A session past its deadline is canceled and
	// Run returns an error wrapping ErrDeadlineExceeded.
	Deadline time.Duration
	// MaxFailovers caps transparent retries after recoverable transport
	// faults; 0 selects the supervise default.
	MaxFailovers int
}

// TraceFunc receives finalized trace increments: entries is a batch of the
// deterministic (TS, LP, item)-sorted committed trace, lines the rendered
// form. The concatenation of all batches equals Result.TraceLines() of the
// finished run — including across transparent retries, which replay
// deterministically so already-delivered entries are skipped, never re-sent.
type TraceFunc func(entries []trace.Entry, lines []string)

// ErrDeadlineExceeded marks a session that was canceled by its own deadline.
var ErrDeadlineExceeded = errors.New("govhdl: session deadline exceeded")

// ErrorKind classifies a session failure for callers that map errors onto
// protocol-level responses (a server's status codes, a CLI's exit codes).
type ErrorKind int

const (
	// KindInternal is an engine-side failure: not the design's fault.
	KindInternal ErrorKind = iota
	// KindModel is a diagnostic from the simulated design (a division by
	// zero, a delta-cycle runaway, a failed elaboration): the caller's fault.
	KindModel
	// KindCanceled is an explicit Session.Cancel.
	KindCanceled
	// KindDeadline is a session canceled by its own SessionOptions.Deadline.
	KindDeadline
	// KindStall is a stall-watchdog or deadlock verdict.
	KindStall
	// KindTransport is a transport fault that outlived the failover budget.
	KindTransport
)

func (k ErrorKind) String() string {
	switch k {
	case KindModel:
		return "model"
	case KindCanceled:
		return "canceled"
	case KindDeadline:
		return "deadline"
	case KindStall:
		return "stall"
	case KindTransport:
		return "transport"
	default:
		return "internal"
	}
}

// Classify maps a session error onto its kind. Deadline takes precedence
// over the Canceled verdict it is implemented with.
func Classify(err error) ErrorKind {
	switch {
	case errors.Is(err, ErrDeadlineExceeded):
		return KindDeadline
	case pdes.IsModelError(err):
		return KindModel
	case pdes.IsCanceled(err):
		return KindCanceled
	case pdes.IsStall(err):
		return KindStall
	}
	var se *pdes.SimError
	if errors.As(err, &se) && se.Transport {
		return KindTransport
	}
	return KindInternal
}

// Session is one simulation run with a lifecycle: create, optionally
// register a streaming consumer, Run (blocking), Cancel from any goroutine.
// A session is single-use; Run may be called once.
//
// Failure isolation: a recoverable transport fault retries the run
// transparently (deterministic replay keeps the delivered trace exact); a
// model diagnostic, stall verdict, cancel or deadline fails only this
// session with a classified error (see Classify).
type Session struct {
	factory ModelFactory
	opts    SessionOptions
	onTrace TraceFunc

	cancel     chan struct{}
	cancelOnce sync.Once
	deadlined  atomic.Bool

	mu        sync.Mutex
	ran       bool
	model     *Model
	rec       *trace.Recorder
	delivered int // finalized entries handed to onTrace, across attempts

	// fabric, when set, supplies the endpoints for parallel attempts —
	// the fault-injection hook for failover tests.
	fabric func(n int) []pdes.Endpoint
}

// NewSession creates a session. The factory is invoked once per attempt.
func NewSession(factory ModelFactory, o SessionOptions) *Session {
	if o.Until == 0 {
		o.Until = 1 * MS
	}
	if o.Workers == 0 {
		o.Workers = 1
	}
	return &Session{factory: factory, opts: o, cancel: make(chan struct{})}
}

// NewSession builds a single-attempt session over an already-compiled model.
// Transparent retry needs a fresh model per attempt, which an existing model
// cannot provide, so prefer NewSession with a factory when retries matter.
func (m *Model) NewSession(o SessionOptions) *Session {
	used := false
	return NewSession(func() (*Model, error) {
		if used {
			return nil, fmt.Errorf("govhdl: model state was consumed by the previous attempt; use a ModelFactory for retryable sessions")
		}
		used = true
		return m, nil
	}, o)
}

// OnTrace registers the streaming consumer. Must be called before Run; the
// callback fires on the session's goroutines, serially.
func (s *Session) OnTrace(fn TraceFunc) { s.onTrace = fn }

// Cancel aborts the session from any goroutine; idempotent. The run unwinds
// promptly (workers are poisoned mid-round; the sequential loop polls) and
// Run returns an error classified KindCanceled.
func (s *Session) Cancel() { s.cancelOnce.Do(func() { close(s.cancel) }) }

// Model returns the model of the current (or last) attempt, nil before Run
// first invokes the factory. LP numbering is identical across attempts.
func (s *Session) Model() *Model {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.model
}

// Run executes the session to completion and returns its result. Blocking;
// use a goroutine and Cancel/Deadline for asynchronous control.
func (s *Session) Run() (*Result, error) {
	s.mu.Lock()
	if s.ran {
		s.mu.Unlock()
		return nil, fmt.Errorf("govhdl: session already run")
	}
	s.ran = true
	s.mu.Unlock()

	if d := s.opts.Deadline; d > 0 {
		t := time.AfterFunc(d, func() {
			s.deadlined.Store(true)
			s.Cancel()
		})
		defer t.Stop()
	}

	sup := &supervise.Supervisor{MaxFailovers: s.opts.MaxFailovers}
	res, err := sup.Run(func(attempt int, _ *pdes.Checkpoint) (*pdes.Result, error) {
		return s.attempt()
	})
	if err != nil {
		if s.deadlined.Load() && Classify(err) == KindCanceled {
			return nil, fmt.Errorf("%w (%v): %v", ErrDeadlineExceeded, s.opts.Deadline, err)
		}
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return &Result{Run: res, Trace: s.rec, model: s.model}, nil
}

// attempt executes one simulation attempt with streaming delivery.
func (s *Session) attempt() (*pdes.Result, error) {
	m, err := s.factory()
	if err != nil {
		return nil, err
	}
	o := s.opts.Options
	var rec *trace.Recorder
	var sink pdes.TraceSink
	if !o.NoTrace {
		rec = trace.NewRecorder()
		sink = rec
	}
	s.mu.Lock()
	s.model, s.rec = m, rec
	s.mu.Unlock()

	// Cross-attempt dedup: a retry deterministically replays the committed
	// trace, so the first `delivered` finalized entries are skipped instead
	// of re-sent. attemptSeen counts this attempt's finalized entries.
	attemptSeen := 0
	deliver := func(entries []trace.Entry) {
		if len(entries) == 0 {
			return
		}
		s.mu.Lock()
		skip := 0
		if attemptSeen < s.delivered {
			skip = s.delivered - attemptSeen
			if skip > len(entries) {
				skip = len(entries)
			}
		}
		attemptSeen += len(entries)
		if attemptSeen > s.delivered {
			s.delivered = attemptSeen
		}
		s.mu.Unlock()
		fresh := entries[skip:]
		if len(fresh) == 0 {
			return
		}
		lines := make([]string, len(fresh))
		for i, e := range fresh {
			lines[i] = trace.Line(m.sys, e)
		}
		s.onTrace(fresh, lines)
	}

	cfg := o.config()
	cfg.Cancel = s.cancel

	stream := s.onTrace != nil && rec != nil
	var cur *trace.Cursor
	if stream && o.Protocol != Sequential && o.CheckpointEvery <= 1 {
		// Incremental delivery at GVT rounds. The lag-one watermark (trace
		// below the previous GVT is fully committed when OnGVT fires) holds
		// for CheckpointEvery <= 1 — the default, where every processed
		// record carries a snapshot and fossil collection commits everything
		// below GVT each pass. Sparse-checkpoint runs defer to the final
		// drain instead.
		cur = trace.NewCursor(rec)
		var lastWM vtime.VT
		cfg.OnGVT = func(gvt vtime.VT) {
			deliver(cur.Advance(lastWM))
			lastWM = gvt
		}
	}

	var res *pdes.Result
	if o.Protocol == Sequential {
		res, err = pdes.RunSequentialCancelable(m.sys, o.Until, sink, s.cancel)
	} else if s.fabric != nil {
		res, err = pdes.RunOn(m.sys, cfg, o.Until, sink, s.fabric(cfg.Workers+1))
	} else {
		res, err = pdes.Run(m.sys, cfg, o.Until, sink)
	}
	if err != nil {
		return nil, err
	}
	if stream {
		if cur == nil {
			cur = trace.NewCursor(rec)
		}
		deliver(cur.Drain())
	}
	return res, nil
}
